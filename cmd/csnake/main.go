// Command csnake runs a full CSnake campaign -- profile runs, 3PA-driven
// fault injection, fault causality analysis, and the beam search for
// self-sustaining cascading failures -- against one target system and
// prints the detected cycles.
//
// Usage: csnake [-system NAME] [-seed N] [-reps N] [-budget N] [-fast]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core/csnake"
	"repro/internal/harness"
	"repro/internal/systems/dfs"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/objstore"
	"repro/internal/systems/stream"
	"repro/internal/systems/sysreg"
)

func systemByName(name string) (sysreg.System, bool) {
	switch name {
	case "hdfs2", "HDFS 2":
		return dfs.NewV2(), true
	case "hdfs3", "HDFS 3":
		return dfs.NewV3(), true
	case "hbase", "HBase":
		return kvstore.New(), true
	case "flink", "Flink":
		return stream.New(), true
	case "ozone", "OZone":
		return objstore.New(), true
	}
	return nil, false
}

func main() {
	name := flag.String("system", "hdfs2", "target system: hdfs2|hdfs3|hbase|flink|ozone")
	seed := flag.Int64("seed", 42, "campaign seed")
	reps := flag.Int("reps", 0, "seeds per run configuration (0 = paper default 5)")
	budget := flag.Int("budget", 0, "budget factor x|F| (0 = default)")
	fast := flag.Bool("fast", false, "light configuration (3 reps, 3 delay magnitudes)")
	flag.Parse()

	sys, ok := systemByName(*name)
	if !ok {
		log.Fatalf("unknown system %q", *name)
	}
	cfg := csnake.DefaultConfig(*seed)
	if *fast {
		cfg.Harness = harness.Config{Reps: 3, DelayMagnitudes: []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second}}
	}
	if *reps > 0 {
		cfg.Harness.Reps = *reps
	}
	if *budget > 0 {
		cfg.BudgetFactor = *budget
	}

	start := time.Now()
	rep := csnake.Run(sys, cfg)
	fmt.Printf("system=%s |F|=%d experiments=%d sims=%d edges=%d cycles=%d clusters=%d wall=%v\n",
		rep.System, rep.Space.Size(), len(rep.Runs), rep.Sims, len(rep.Edges), len(rep.Cycles), len(rep.CycleClusters), time.Since(start).Round(time.Millisecond))

	labeled := csnake.Label(rep, sys.Bugs())
	for _, lc := range labeled {
		tag := "FP (expected contention or unconfirmed)"
		if lc.Bug != "" {
			tag = "TP " + lc.Bug
		}
		best := lc.Cluster.Cycles[0]
		fmt.Printf("  [%s] score=%.2f %s\n", tag, best.Score, best)
	}
	fmt.Printf("detected ground-truth bugs: %v\n", csnake.DetectedBugs(rep, sys.Bugs()))
}
