// Command csnake runs a full CSnake campaign -- profile runs, 3PA-driven
// fault injection, fault causality analysis, and the beam search for
// self-sustaining cascading failures -- against one target system and
// prints the detected cycles.
//
// Target systems are resolved through the sysreg registry (each system
// package self-registers in init()); -system accepts a canonical name or
// alias, and -list prints everything registered.
//
// Usage: csnake [-system NAME] [-seed N] [-reps N] [-budget N] [-parallel N] [-fast] [-progress] [-list]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core/beam"
	"repro/internal/core/csnake"
	"repro/internal/faults"
	"repro/internal/systems/sysreg"

	_ "repro/internal/systems/dfs"
	_ "repro/internal/systems/kvstore"
	_ "repro/internal/systems/objstore"
	_ "repro/internal/systems/stream"
)

// progress streams campaign events to stderr.
type progress struct {
	csnake.NopObserver
	experiments int
}

func (p *progress) CampaignStarted(system string, size, budget int) {
	fmt.Fprintf(os.Stderr, "campaign %s: |F|=%d budget=%d\n", system, size, budget)
}

func (p *progress) ProfileCached(test string, sims int) {
	fmt.Fprintf(os.Stderr, "  profiled %s (%d runs)\n", test, sims)
}

func (p *progress) ExperimentExecuted(f faults.ID, test string, edges, intf int) {
	p.experiments++
	fmt.Fprintf(os.Stderr, "  [%4d] inject %s into %s: %d edges, %d interfered\n",
		p.experiments, f, test, edges, intf)
}

func (p *progress) CycleFound(c beam.Cycle) {
	fmt.Fprintf(os.Stderr, "  cycle: %s\n", c)
}

func main() {
	name := flag.String("system", "hdfs2", "target system (see -list)")
	seed := flag.Int64("seed", 42, "campaign seed")
	reps := flag.Int("reps", 0, "seeds per run configuration (0 = paper default 5)")
	budget := flag.Int("budget", 0, "budget factor x|F| (0 = default)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker-pool width for simulation runs (results are identical for any value)")
	fast := flag.Bool("fast", false, "light configuration (3 reps, 3 delay magnitudes)")
	verbose := flag.Bool("progress", false, "stream campaign progress to stderr")
	list := flag.Bool("list", false, "list registered systems and exit")
	flag.Parse()

	if *list {
		for _, n := range sysreg.Names() {
			fmt.Println(n)
		}
		return
	}

	sys, ok := sysreg.Lookup(*name)
	if !ok {
		log.Fatalf("unknown system %q (known: %s)", *name, strings.Join(sysreg.Aliases(), ", "))
	}

	// -fast composes through options: it narrows reps and the magnitude
	// sweep without clobbering BaseSeed or the FCA configuration.
	opts := []csnake.Option{
		csnake.WithSeed(*seed),
		csnake.WithParallelism(*parallel),
	}
	if *fast {
		opts = append(opts,
			csnake.WithReps(3),
			csnake.WithDelayMagnitudes(500*time.Millisecond, 2*time.Second, 8*time.Second))
	}
	opts = append(opts, csnake.WithReps(*reps), csnake.WithBudgetFactor(*budget))
	if *verbose {
		opts = append(opts, csnake.WithObserver(&progress{}))
	}

	start := time.Now()
	rep, err := csnake.NewCampaign(sys, opts...).Run()
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}
	fmt.Printf("system=%s |F|=%d experiments=%d sims=%d edges=%d cycles=%d clusters=%d parallel=%d wall=%v\n",
		rep.System, rep.Space.Size(), len(rep.Runs), rep.Sims, len(rep.Edges), len(rep.Cycles), len(rep.CycleClusters), *parallel, time.Since(start).Round(time.Millisecond))

	labeled := csnake.Label(rep, sys.Bugs())
	for _, lc := range labeled {
		tag := "FP (expected contention or unconfirmed)"
		if lc.Bug != "" {
			tag = "TP " + lc.Bug
		}
		best := lc.Cluster.Cycles[0]
		fmt.Printf("  [%s] score=%.2f %s\n", tag, best.Score, best)
	}
	fmt.Printf("detected ground-truth bugs: %v\n", csnake.DetectedBugs(rep, sys.Bugs()))
}
