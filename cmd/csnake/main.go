// Command csnake runs a full CSnake campaign -- profile runs, 3PA-driven
// fault injection, fault causality analysis, and the beam search for
// self-sustaining cascading failures -- against one target system and
// prints the detected cycles.
//
// Target systems are resolved through the sysreg registry (each system
// package self-registers in init()); -system accepts a canonical name or
// alias, and -list prints everything registered.
//
// The causal graph a campaign accumulates is a first-class artifact:
// -edges-out persists it (fault ids, edges with occurrence evidence,
// SimScores, and loop-nest families) as JSON, and -edges-in loads one or
// more persisted graphs, stitches them into a single graph, and re-runs
// the beam search offline -- no simulations, identical cycles. Combining
// the two merges graphs from several campaigns into one file.
//
// -anytime switches to the round-based streaming pipeline: the 3PA
// schedule emits waves of experiments, an incremental beam search folds
// each wave's causal-graph delta, and every round's cycle count streams
// to stderr. -early-stop N ends the campaign once the clustered cycle
// set is stable for N rounds; -wave sets the round granularity; -adaptive
// reweights phase-3 draws toward near-cycle faults.
//
// -trace-out streams the campaign's causal-edge discoveries as monitor
// JSONL records (the online-monitoring wire format); -monitor replays
// such a trace through the online cascade monitor without running any
// simulations, printing closed/broken cycle alerts as the evidence
// arrives. -monitor-batch sets the replay batch size, -monitor-window /
// -monitor-buckets bound evidence retention (0 window = keep all, the
// offline-equivalent configuration).
//
// Usage: csnake [-system NAME] [-seed N] [-reps N] [-budget N] [-parallel N]
//
//	[-fast] [-progress] [-list] [-edges-out FILE] [-edges-in FILE,...]
//	[-anytime] [-early-stop N] [-wave N] [-adaptive] [-no-prefix-share]
//	[-trace-out FILE] [-monitor FILE [-monitor-batch N]
//	[-monitor-window DUR] [-monitor-buckets N]]
//	[-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core/beam"
	"repro/internal/core/csnake"
	"repro/internal/core/graph"
	"repro/internal/faults"
	"repro/internal/monitor"
	"repro/internal/report"
	"repro/internal/systems/sysreg"

	_ "repro/internal/systems/dfs"
	_ "repro/internal/systems/kvstore"
	_ "repro/internal/systems/metastore"
	_ "repro/internal/systems/objstore"
	_ "repro/internal/systems/stream"
)

// progress streams campaign events to stderr. With quiet set (anytime
// mode without -progress) only campaign- and round-level lines print;
// the per-experiment firehose stays off.
type progress struct {
	csnake.NopObserver
	quiet       bool
	experiments int
}

func (p *progress) CampaignStarted(system string, size, budget int) {
	fmt.Fprintf(os.Stderr, "campaign %s: |F|=%d budget=%d\n", system, size, budget)
}

func (p *progress) ProfileCached(test string, sims int) {
	if p.quiet {
		return
	}
	fmt.Fprintf(os.Stderr, "  profiled %s (%d runs)\n", test, sims)
}

func (p *progress) ExperimentExecuted(f faults.ID, test string, edges, intf int) {
	p.experiments++
	if p.quiet {
		return
	}
	fmt.Fprintf(os.Stderr, "  [%4d] inject %s into %s: %d edges, %d interfered\n",
		p.experiments, f, test, edges, intf)
}

func (p *progress) CycleFound(c beam.Cycle) {
	if p.quiet {
		return
	}
	fmt.Fprintf(os.Stderr, "  cycle: %s\n", c)
}

func (p *progress) RoundCompleted(r csnake.Round) {
	fmt.Fprintf(os.Stderr, "round %d (phase %d): %d runs (%d/%d budget), +%d edges, %d cycles in %d clusters\n",
		r.Round, r.Phase, r.Runs, r.Spent, r.Budget, r.NewEdges, r.CycleCount, len(r.Clusters))
}

func main() {
	name := flag.String("system", "hdfs2", "target system (see -list)")
	seed := flag.Int64("seed", 42, "campaign seed")
	reps := flag.Int("reps", 0, "seeds per run configuration (0 = paper default 5)")
	budget := flag.Int("budget", 0, "budget factor x|F| (0 = default)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker-pool width for simulation runs (results are identical for any value)")
	fast := flag.Bool("fast", false, "light configuration (3 reps, 3 delay magnitudes)")
	verbose := flag.Bool("progress", false, "stream campaign progress to stderr")
	anytime := flag.Bool("anytime", false, "round-based streaming pipeline with live round progress")
	earlyStop := flag.Int("early-stop", 0, "stop once the clustered cycle set is stable for N rounds (implies -anytime)")
	wave := flag.Int("wave", 0, "experiments per anytime round (0 = |F|; implies -anytime)")
	adaptive := flag.Bool("adaptive", false, "adaptive protocol: phase-3 budget chases near-cycles (implies -anytime)")
	noShare := flag.Bool("no-prefix-share", false, "disable fork-at-injection prefix sharing (results are byte-identical either way)")
	list := flag.Bool("list", false, "list registered systems and exit")
	edgesOut := flag.String("edges-out", "", "write the campaign's causal graph (or the -edges-in merge) as JSON")
	edgesIn := flag.String("edges-in", "", "comma-separated persisted graphs: skip the campaign, stitch them, and re-search")
	jsonOut := flag.Bool("json", false, "print the machine-readable campaign report (the csnaked report schema) to stdout")
	traceOut := flag.String("trace-out", "", "stream the campaign's trace as monitor JSONL records to FILE")
	monitorIn := flag.String("monitor", "", "replay a JSONL trace through the online cascade monitor (no simulations)")
	monitorBatch := flag.Int("monitor-batch", 256, "records per monitor replay batch (alerts fire at batch granularity)")
	monitorWindow := flag.Duration("monitor-window", 0, "monitor evidence retention span (0 = keep everything)")
	monitorBuckets := flag.Int("monitor-buckets", 0, "monitor decay buckets (0 = default 8)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to FILE for the whole invocation")
	memProfile := flag.String("memprofile", "", "write a heap profile to FILE on exit")
	flag.Parse()

	// Profiles bracket everything the command does (campaign, offline
	// re-search, or monitor replay) so hot paths in any mode show up.
	// stopProfiles must run before every exit; log.Fatal paths skip it,
	// which only loses the profile of an already-failed invocation.
	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	if *list {
		for _, n := range sysreg.Names() {
			if al := sysreg.AliasesOf(n); len(al) > 0 {
				fmt.Printf("%-12s (aliases: %s)\n", n, strings.Join(al, ", "))
			} else {
				fmt.Println(n)
			}
		}
		return
	}

	if *monitorIn != "" {
		replayMonitor(*monitorIn, *monitorBatch, *monitorWindow, *monitorBuckets)
		return
	}

	if *edgesIn != "" {
		researchGraphs(strings.Split(*edgesIn, ","), *edgesOut)
		return
	}

	sys, err := sysreg.Resolve(*name)
	if err != nil {
		log.Fatal(err)
	}

	// -fast composes through options: it narrows reps and the magnitude
	// sweep without clobbering BaseSeed or the FCA configuration.
	opts := []csnake.Option{
		csnake.WithSeed(*seed),
		csnake.WithParallelism(*parallel),
	}
	if *fast {
		opts = append(opts,
			csnake.WithReps(3),
			csnake.WithDelayMagnitudes(500*time.Millisecond, 2*time.Second, 8*time.Second))
	}
	opts = append(opts, csnake.WithReps(*reps), csnake.WithBudgetFactor(*budget),
		csnake.WithPrefixSharing(!*noShare))
	streaming := *anytime || *earlyStop > 0 || *adaptive || *wave > 0
	if streaming {
		opts = append(opts, csnake.WithAnytime(),
			csnake.WithEarlyStop(*earlyStop), csnake.WithWaveSize(*wave))
		if *adaptive {
			opts = append(opts, csnake.WithProtocol(csnake.ProtocolAdaptive))
		}
	}
	if *verbose || streaming {
		// Anytime mode always narrates rounds: live progress is its point.
		opts = append(opts, csnake.WithObserver(&progress{quiet: !*verbose}))
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		traceFile = f
		opts = append(opts, csnake.WithTraceExport(f))
	}

	start := time.Now()
	rep, err := csnake.NewCampaign(sys, opts...).Run()
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote monitor trace to %s\n", *traceOut)
	}
	if rep.EarlyStopped {
		last := rep.Rounds[len(rep.Rounds)-1]
		fmt.Fprintf(os.Stderr, "early stop after round %d: cycle clusters stable, %d of %d budget unspent\n",
			last.Round, last.Budget-last.Spent, last.Budget)
	}
	if *edgesOut != "" {
		if err := rep.Graph.WriteFile(*edgesOut); err != nil {
			log.Fatalf("edges-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote causal graph (%d edges, %d faults) to %s\n",
			rep.Graph.Len(), rep.Graph.NumFaults(), *edgesOut)
	}
	if *jsonOut {
		// Same document GET /v1/campaigns/{id}/report serves: one schema
		// for scripted consumers, whether the campaign ran here or in
		// csnaked. The human-readable summary moves to stderr.
		if err := report.WriteJSON(os.Stdout, rep, sys.Bugs()); err != nil {
			log.Fatalf("json: %v", err)
		}
		fmt.Fprintf(os.Stderr, "system=%s |F|=%d experiments=%d sims=%d edges=%d cycles=%d clusters=%d wall=%v\n",
			rep.System, rep.Space.Size(), len(rep.Runs), rep.Sims, len(rep.Edges), len(rep.Cycles), len(rep.CycleClusters), time.Since(start).Round(time.Millisecond))
		narrateCheckpoint(rep)
		return
	}
	fmt.Printf("system=%s |F|=%d experiments=%d sims=%d edges=%d cycles=%d clusters=%d parallel=%d wall=%v\n",
		rep.System, rep.Space.Size(), len(rep.Runs), rep.Sims, len(rep.Edges), len(rep.Cycles), len(rep.CycleClusters), *parallel, time.Since(start).Round(time.Millisecond))
	narrateCheckpoint(rep)

	labeled := csnake.Label(rep, sys.Bugs())
	for _, lc := range labeled {
		tag := "FP (expected contention or unconfirmed)"
		if lc.Bug != "" {
			tag = "TP " + lc.Bug
		}
		best := lc.Cluster.Cycles[0]
		fmt.Printf("  [%s] score=%.2f %s\n", tag, best.Score, best)
	}
	fmt.Printf("detected ground-truth bugs: %v\n", csnake.DetectedBugs(rep, sys.Bugs()))
}

// startProfiles starts a CPU profile and/or arranges a heap profile,
// returning the function that finalises both. Either path may be empty.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				log.Fatalf("cpuprofile: %v", err)
			}
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC() // settle live-heap numbers before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}
}

// narrateCheckpoint prints the prefix-sharing summary to stderr: how
// many injected runs forked from checkpoints or cloned cached profile
// runs instead of re-simulating their warm-up (silent with sharing off).
func narrateCheckpoint(rep *csnake.Report) {
	ck := rep.Checkpoint
	if ck.PrefixRuns == 0 && ck.Avoided() == 0 && ck.Misses == 0 {
		return
	}
	fmt.Fprintf(os.Stderr,
		"prefix sharing: %d runs avoided re-simulating their warm-up (%d forked from checkpoints, %d cloned), %d from scratch; %d prefix engines, %.1f MiB checkpoints held, %d evicted\n",
		ck.Avoided(), ck.Hits, ck.Clones, ck.Misses,
		ck.PrefixRuns, float64(ck.BytesHeld)/(1<<20), ck.Evictions)
}

// researchGraphs loads persisted causal graphs, stitches them into one,
// optionally persists the merge, and re-runs the beam search using the
// SimScores and loop-nest families that rode along in the files.
func researchGraphs(paths []string, out string) {
	merged := graph.New()
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		g, err := graph.ReadFile(p)
		if err != nil {
			log.Fatalf("edges-in: %v", err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s: system=%s edges=%d faults=%d\n",
			p, g.System(), g.Len(), g.NumFaults())
		merged.Merge(g)
	}
	if out != "" {
		if err := merged.WriteFile(out); err != nil {
			log.Fatalf("edges-out: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote merged graph (%d edges, %d faults) to %s\n",
			merged.Len(), merged.NumFaults(), out)
	}
	start := time.Now()
	cycles := beam.SearchGraph(merged, nil, beam.Options{})
	// Group equivalent cycles by the fault sets involved (no cluster
	// assignment is persisted, so faults distinguish themselves) and show
	// each group's best representative, like the campaign path does.
	clusters := beam.ClusterCycles(cycles, func(faults.ID) (int, bool) { return 0, false })
	fmt.Printf("system=%s edges=%d faults=%d keys=%d cycles=%d clusters=%d wall=%v\n",
		merged.System(), merged.Len(), merged.NumFaults(), merged.NumKeys(),
		len(cycles), len(clusters), time.Since(start).Round(time.Millisecond))
	const maxShown = 25
	for i, cc := range clusters {
		if i == maxShown {
			fmt.Printf("  ... and %d more clusters\n", len(clusters)-maxShown)
			break
		}
		best := cc.Cycles[0]
		fmt.Printf("  [%d cycles] score=%.2f %s\n", len(cc.Cycles), best.Score, best)
	}
}

// replayMonitor streams a recorded JSONL trace through the online
// cascade monitor in fixed-size batches, printing every closed/broken
// cycle alert as the evidence arrives, then the final monitor state.
func replayMonitor(path string, batch int, window time.Duration, buckets int) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("monitor: %v", err)
	}
	defer f.Close()
	if batch < 1 {
		batch = 1
	}
	mon := monitor.New(monitor.Config{
		Window:  window,
		Buckets: buckets,
		OnAlert: func(a monitor.Alert) {
			fmt.Printf("alert #%d %s: score=%.2f len=%d faults=%s\n    %s\n",
				a.Seq, a.Kind, a.Score, a.Len, strings.Join(a.Faults, ","), a.Cycle)
		},
	})
	br := bufio.NewReaderSize(f, 1<<20)
	var buf bytes.Buffer
	lines := 0
	ingest := func() {
		if buf.Len() == 0 {
			return
		}
		if _, err := mon.Ingest(&buf); err != nil {
			log.Fatalf("monitor: %v", err)
		}
		buf.Reset()
		lines = 0
	}
	for {
		line, err := br.ReadBytes('\n')
		buf.Write(line)
		if len(line) > 0 {
			lines++
		}
		if lines >= batch {
			ingest()
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("monitor: read %s: %v", path, err)
		}
	}
	ingest()
	s := mon.Stats()
	fmt.Printf("monitor %s: records=%d skipped=%d edges=%d stale=%d batches=%d alerts=%d cycles=%d rebuilds=%d evicted=%d retained=%d\n",
		s.System, s.Records, s.Skipped, s.Edges, s.Stale, s.Batches, s.Alerts,
		s.CyclesActive, s.Rebuilds, s.Evicted, s.Retained)
	for _, c := range mon.Cycles() {
		fmt.Printf("  active: score=%.2f %s\n", c.Score, c)
	}
}
