// Command experiments regenerates the paper's evaluation artefacts:
//
//	experiments -table 2              Table 2 (static inventory)
//	experiments -table 3              Table 3 (bugs, Alloc/Rnd/Alt columns)
//	experiments -table 4              Table 4 (cycles/clusters/TP, 1-delay variant)
//	experiments -fuzz                 §8.2.1 blackbox fuzzing comparison
//	experiments -overhead             §8.5 instrumentation overhead
//	experiments -convergence          anytime rounds: cycles found vs budget spent
//
// By default the light (fast) execution configuration is used; pass
// -paper for the full 5-repetition, 7-magnitude settings. Target systems
// come from the sysreg registry; -system restricts to one of them by
// canonical name or alias.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/baselines"
	"repro/internal/core/csnake"
	"repro/internal/report"
	"repro/internal/systems/sysreg"

	_ "repro/internal/systems/dfs"
	_ "repro/internal/systems/kvstore"
	_ "repro/internal/systems/metastore"
	_ "repro/internal/systems/objstore"
	_ "repro/internal/systems/stream"
)

// campaignProgress narrates experiment execution on stderr.
type campaignProgress struct {
	csnake.NopObserver
}

func (campaignProgress) CampaignStarted(system string, size, budget int) {
	fmt.Fprintf(os.Stderr, "campaign: %s (|F|=%d, budget=%d)...\n", system, size, budget)
}

func campaignOpts(seed int64, paper bool, parallel int) []csnake.Option {
	opts := []csnake.Option{
		csnake.WithSeed(seed),
		csnake.WithParallelism(parallel),
		csnake.WithObserver(campaignProgress{}),
	}
	if !paper {
		opts = append(opts,
			csnake.WithReps(3),
			csnake.WithDelayMagnitudes(500*time.Millisecond, 2*time.Second, 8*time.Second))
	}
	return opts
}

func main() {
	table := flag.Int("table", 0, "paper table to regenerate (2, 3, or 4)")
	fuzz := flag.Bool("fuzz", false, "run the blackbox fuzzing comparison (§8.2.1)")
	overhead := flag.Bool("overhead", false, "measure instrumentation overhead (§8.5)")
	convergence := flag.Bool("convergence", false, "run anytime campaigns and print per-round convergence")
	wave := flag.Int("wave", 0, "experiments per anytime round (0 = |F|); only with -convergence")
	seed := flag.Int64("seed", 42, "campaign seed")
	paper := flag.Bool("paper", false, "paper-faithful execution settings (slower)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker-pool width for simulation runs")
	system := flag.String("system", "", "restrict to one registered system (canonical name or alias)")
	flag.Parse()

	systems := sysreg.All()
	if *system != "" {
		sys, err := sysreg.Resolve(*system)
		if err != nil {
			log.Fatal(err)
		}
		systems = []sysreg.System{sys}
	}

	switch {
	case *table == 2:
		rows, err := report.Table2(".", systems)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Table 2: injection points, monitor points, and integration tests")
		report.WriteTable2(os.Stdout, rows)

	case *table == 3:
		var rows []report.Table3Row
		for _, sys := range systems {
			art := report.RunCampaign(sys, campaignOpts(*seed, *paper, *parallel)...)
			if art.Err != nil {
				log.Fatalf("campaign %s: %v", sys.Name(), art.Err)
			}
			fmt.Fprintf(os.Stderr, "  %s\n", report.Summary(art))

			naive := baselines.Naive(sys, baselines.NaiveConfig{BaseSeed: *seed, Parallelism: *parallel})

			rndOpts := append(campaignOpts(*seed+1, *paper, *parallel),
				csnake.WithProtocol(csnake.ProtocolRandom))
			rndRep, err := csnake.NewCampaign(sys, rndOpts...).Run()
			if err != nil {
				log.Fatal(err)
			}
			rndDetected := map[string]bool{}
			for _, id := range csnake.DetectedBugs(rndRep, sys.Bugs()) {
				rndDetected[id] = true
			}
			rows = append(rows, report.Table3(art, naive, rndDetected)...)
		}
		fmt.Println("Table 3: self-sustaining cascading failures")
		report.WriteTable3(os.Stdout, rows)

	case *table == 4:
		var rows []report.Table4Row
		for _, sys := range systems {
			art := report.RunCampaign(sys, campaignOpts(*seed, *paper, *parallel)...)
			if art.Err != nil {
				log.Fatalf("campaign %s: %v", sys.Name(), art.Err)
			}
			rows = append(rows, report.Table4(art))
		}
		fmt.Println("Table 4: cycles, clusters, true positives -- unlimited (one-delay) beam search")
		report.WriteTable4(os.Stdout, rows)

	case *fuzz:
		fmt.Println("Blackbox nemesis fuzzing comparison (Jepsen/Blockade analogue, §8.2.1)")
		for _, sys := range systems {
			res := baselines.Fuzz(sys, baselines.FuzzConfig{BaseSeed: *seed, Parallelism: *parallel})
			fmt.Printf("%-10s runs=%d generic-anomalies=%d cascading-failures-identified=%d\n",
				sys.Name(), res.Runs, res.GenericAnomalies, len(res.BugsDetected))
		}

	case *convergence:
		fmt.Println("Anytime convergence: cycles and detected bugs per round vs budget spent")
		var rows []report.ConvergenceRow
		for _, sys := range systems {
			opts := append(campaignOpts(*seed, *paper, *parallel),
				csnake.WithAnytime(), csnake.WithWaveSize(*wave))
			art := report.RunCampaign(sys, opts...)
			if art.Err != nil {
				log.Fatalf("campaign %s: %v", sys.Name(), art.Err)
			}
			rows = append(rows, report.Convergence(art)...)
		}
		report.WriteConvergence(os.Stdout, rows)

	case *overhead:
		fmt.Println("Instrumentation overhead (§8.5): monitored vs bare profile runs")
		var rows []report.Overhead
		for _, sys := range systems {
			rows = append(rows, report.MeasureOverhead(sys))
		}
		report.WriteOverhead(os.Stdout, rows)

	default:
		flag.Usage()
		os.Exit(2)
	}

}
