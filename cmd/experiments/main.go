// Command experiments regenerates the paper's evaluation artefacts:
//
//	experiments -table 2              Table 2 (static inventory)
//	experiments -table 3              Table 3 (bugs, Alloc/Rnd/Alt columns)
//	experiments -table 4              Table 4 (cycles/clusters/TP, 1-delay variant)
//	experiments -fuzz                 §8.2.1 blackbox fuzzing comparison
//	experiments -overhead             §8.5 instrumentation overhead
//
// By default the light (fast) execution configuration is used; pass
// -paper for the full 5-repetition, 7-magnitude settings.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/baselines"
	"repro/internal/core/csnake"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/systems/dfs"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/objstore"
	"repro/internal/systems/stream"
	"repro/internal/systems/sysreg"
)

func allSystems() []sysreg.System {
	return []sysreg.System{dfs.NewV2(), dfs.NewV3(), kvstore.New(), stream.New(), objstore.New()}
}

func campaignConfig(seed int64, paper bool) csnake.Config {
	cfg := csnake.DefaultConfig(seed)
	if !paper {
		cfg.Harness = harness.Config{
			Reps:            3,
			DelayMagnitudes: []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second},
		}
	}
	return cfg
}

func main() {
	table := flag.Int("table", 0, "paper table to regenerate (2, 3, or 4)")
	fuzz := flag.Bool("fuzz", false, "run the blackbox fuzzing comparison (§8.2.1)")
	overhead := flag.Bool("overhead", false, "measure instrumentation overhead (§8.5)")
	seed := flag.Int64("seed", 42, "campaign seed")
	paper := flag.Bool("paper", false, "paper-faithful execution settings (slower)")
	system := flag.String("system", "", "restrict to one system (hdfs2|hdfs3|hbase|flink|ozone)")
	flag.Parse()

	systems := allSystems()
	if *system != "" {
		systems = nil
		for _, s := range allSystems() {
			switch *system {
			case "hdfs2":
				if s.Name() == "HDFS 2" {
					systems = append(systems, s)
				}
			case "hdfs3":
				if s.Name() == "HDFS 3" {
					systems = append(systems, s)
				}
			case "hbase":
				if s.Name() == "HBase" {
					systems = append(systems, s)
				}
			case "flink":
				if s.Name() == "Flink" {
					systems = append(systems, s)
				}
			case "ozone":
				if s.Name() == "OZone" {
					systems = append(systems, s)
				}
			}
		}
		if len(systems) == 0 {
			log.Fatalf("unknown system %q", *system)
		}
	}

	switch {
	case *table == 2:
		rows, err := report.Table2(".", systems)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Table 2: injection points, monitor points, and integration tests")
		report.WriteTable2(os.Stdout, rows)

	case *table == 3:
		var rows []report.Table3Row
		for _, sys := range systems {
			fmt.Fprintf(os.Stderr, "campaign: %s...\n", sys.Name())
			art := report.RunCampaign(sys, campaignConfig(*seed, *paper))
			fmt.Fprintf(os.Stderr, "  %s\n", report.Summary(art))

			naive := baselines.Naive(sys, baselines.NaiveConfig{BaseSeed: *seed})

			rndCfg := campaignConfig(*seed+1, *paper)
			rndCfg.Protocol = csnake.ProtocolRandom
			rndRep := csnake.Run(sys, rndCfg)
			rndDetected := map[string]bool{}
			for _, id := range csnake.DetectedBugs(rndRep, sys.Bugs()) {
				rndDetected[id] = true
			}
			rows = append(rows, report.Table3(art, naive, rndDetected)...)
		}
		fmt.Println("Table 3: self-sustaining cascading failures")
		report.WriteTable3(os.Stdout, rows)

	case *table == 4:
		var rows []report.Table4Row
		for _, sys := range systems {
			fmt.Fprintf(os.Stderr, "campaign: %s...\n", sys.Name())
			art := report.RunCampaign(sys, campaignConfig(*seed, *paper))
			rows = append(rows, report.Table4(art))
		}
		fmt.Println("Table 4: cycles, clusters, true positives -- unlimited (one-delay) beam search")
		report.WriteTable4(os.Stdout, rows)

	case *fuzz:
		fmt.Println("Blackbox nemesis fuzzing comparison (Jepsen/Blockade analogue, §8.2.1)")
		for _, sys := range systems {
			res := baselines.Fuzz(sys, baselines.FuzzConfig{BaseSeed: *seed})
			fmt.Printf("%-10s runs=%d generic-anomalies=%d cascading-failures-identified=%d\n",
				sys.Name(), res.Runs, res.GenericAnomalies, len(res.BugsDetected))
		}

	case *overhead:
		fmt.Println("Instrumentation overhead (§8.5): monitored vs bare profile runs")
		var rows []report.Overhead
		for _, sys := range systems {
			rows = append(rows, report.MeasureOverhead(sys, 3))
		}
		report.WriteOverhead(os.Stdout, rows)

	default:
		flag.Usage()
		os.Exit(2)
	}

}
