// Command analyze runs CSnake's static analyzer over the target systems
// and prints the Table 2 inventory (injection/monitor points and test
// counts per system). Systems are resolved through the sysreg registry.
//
// Usage: analyze [-root DIR] [-system NAME]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/systems/sysreg"

	_ "repro/internal/systems/dfs"
	_ "repro/internal/systems/kvstore"
	_ "repro/internal/systems/metastore"
	_ "repro/internal/systems/objstore"
	_ "repro/internal/systems/stream"
)

func main() {
	root := flag.String("root", ".", "repository root containing the instrumented sources")
	system := flag.String("system", "", "restrict to one registered system (canonical name or alias)")
	flag.Parse()

	systems := sysreg.All()
	if *system != "" {
		sys, err := sysreg.Resolve(*system)
		if err != nil {
			log.Fatal(err)
		}
		systems = []sysreg.System{sys}
	}
	rows, err := report.Table2(*root, systems)
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	fmt.Println("Table 2: injection points, monitor points, and integration tests per system")
	report.WriteTable2(os.Stdout, rows)
}
