// Command analyze runs CSnake's static analyzer over the target systems
// and prints the Table 2 inventory (injection/monitor points and test
// counts per system).
//
// Usage: analyze [-root DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/systems/dfs"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/objstore"
	"repro/internal/systems/stream"
	"repro/internal/systems/sysreg"
)

func main() {
	root := flag.String("root", ".", "repository root containing the instrumented sources")
	flag.Parse()

	systems := []sysreg.System{dfs.NewV2(), dfs.NewV3(), kvstore.New(), stream.New(), objstore.New()}
	rows, err := report.Table2(*root, systems)
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	fmt.Println("Table 2: injection points, monitor points, and integration tests per system")
	report.WriteTable2(os.Stdout, rows)
}
