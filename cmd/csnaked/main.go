// Command csnaked is the CSnake campaign server: a long-running daemon
// that accepts campaign jobs over HTTP, executes them concurrently
// under one shared simulation budget, streams round progress as
// server-sent events, and serves every finished campaign's causal graph
// as a persisted, mergeable artifact.
//
// With -data the daemon is crash-safe: jobs are journaled, anytime
// campaigns checkpoint after every round, and a restart (graceful or
// kill -9) replays the journal and resumes every unfinished job. On
// SIGINT/SIGTERM the daemon drains gracefully: admissions stop, running
// campaigns are interrupted at the next round boundary and journaled
// for resume, and the HTTP server shuts down cleanly.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST   /v1/campaigns             submit a campaign spec
//	GET    /v1/campaigns             list jobs
//	GET    /v1/campaigns/{id}        job status + rounds so far
//	DELETE /v1/campaigns/{id}        cancel
//	GET    /v1/campaigns/{id}/events SSE round/state stream
//	GET    /v1/campaigns/{id}/report machine-readable campaign report
//	GET    /v1/campaigns/{id}/cycles clustered cycles only
//	GET    /v1/graphs                stored graph artifacts
//	GET    /v1/graphs/{id}           one raw schema-v1 graph document
//	POST   /v1/graphs/merge          stitch stored graphs (+ re-search)
//	POST   /v1/monitors              create an online cascade monitor
//	GET    /v1/monitors              list monitors
//	GET    /v1/monitors/{id}         monitor status + engine counters
//	DELETE /v1/monitors/{id}         delete a monitor
//	POST   /v1/monitors/{id}/events  ingest a JSONL trace batch
//	GET    /v1/monitors/{id}/alerts  SSE alert stream (?follow=0: backlog only)
//	GET    /metrics                  text metrics
//	GET    /healthz                  liveness + counter snapshot
//
// -pprof ADDR starts an opt-in net/http/pprof listener on a separate
// address (keep it loopback- or firewall-protected: profiles expose
// internals), for profiling live campaigns without a restart.
//
// Usage: csnaked [-addr HOST:PORT] [-workers N] [-max-jobs N]
// [-max-queue N] [-shed-high-water F] [-data DIR] [-drain-timeout D]
// [-pprof HOST:PORT]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/systems/sysreg"

	_ "repro/internal/systems/dfs"
	_ "repro/internal/systems/kvstore"
	_ "repro/internal/systems/metastore"
	_ "repro/internal/systems/objstore"
	_ "repro/internal/systems/stream"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address")
	workers := flag.Int("workers", 0, "shared simulation worker tokens across all jobs (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", 4, "campaign jobs running at once; the rest queue by priority")
	maxQueue := flag.Int("max-queue", 0, "waiting jobs before submissions get 429 (0 = default 256)")
	shedHW := flag.Float64("shed-high-water", 0, "reject submissions while the pool's in-use fraction is at or above this (0 = disabled)")
	dataDir := flag.String("data", "", "directory for persisted graph artifacts and the job journal (empty = in-memory only)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain waits for running campaigns to reach a round boundary")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (off by default; keep it private)")
	flag.Parse()

	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on the
		// default mux, which the API server deliberately does not use --
		// profiling stays off the public address.
		go func() {
			log.Printf("csnaked: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("csnaked: pprof listener: %v", err)
			}
		}()
	}

	m, err := service.NewManager(service.Config{
		Workers:       *workers,
		MaxJobs:       *maxJobs,
		MaxQueue:      *maxQueue,
		ShedHighWater: *shedHW,
		DataDir:       *dataDir,
	})
	if err != nil {
		log.Fatalf("csnaked: %v", err)
	}
	if n := m.Store().Len(); n > 0 {
		log.Printf("csnaked: reloaded %d graph artifact(s) from %s", n, *dataDir)
	}
	if n := m.Snapshot().JobsResumed; n > 0 {
		log.Printf("csnaked: resumed %d interrupted job(s) from the journal", n)
	}
	log.Printf("csnaked: serving on http://%s (workers=%d, max-jobs=%d, systems: %s)",
		*addr, m.Pool().Cap(), *maxJobs, strings.Join(sysreg.Names(), ", "))

	srv := &http.Server{Addr: *addr, Handler: service.NewServer(m)}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("csnaked: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	// Graceful drain: stop admissions and interrupt running campaigns at
	// their next round boundary (journaled as interrupted, resumable at
	// the next boot), then shut the HTTP server down.
	log.Printf("csnaked: signal received, draining (timeout %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := m.Drain(dctx); err != nil {
		log.Printf("csnaked: drain incomplete: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("csnaked: http shutdown: %v", err)
	}
	m.Close()
	log.Printf("csnaked: stopped")
}
