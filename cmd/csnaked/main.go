// Command csnaked is the CSnake campaign server: a long-running daemon
// that accepts campaign jobs over HTTP, executes them concurrently
// under one shared simulation budget, streams round progress as
// server-sent events, and serves every finished campaign's causal graph
// as a persisted, mergeable artifact.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST   /v1/campaigns             submit a campaign spec
//	GET    /v1/campaigns             list jobs
//	GET    /v1/campaigns/{id}        job status + rounds so far
//	DELETE /v1/campaigns/{id}        cancel
//	GET    /v1/campaigns/{id}/events SSE round/state stream
//	GET    /v1/campaigns/{id}/report machine-readable campaign report
//	GET    /v1/campaigns/{id}/cycles clustered cycles only
//	GET    /v1/graphs                stored graph artifacts
//	GET    /v1/graphs/{id}           one raw schema-v1 graph document
//	POST   /v1/graphs/merge          stitch stored graphs (+ re-search)
//	GET    /metrics                  text metrics
//	GET    /healthz                  liveness + counter snapshot
//
// Usage: csnaked [-addr HOST:PORT] [-workers N] [-max-jobs N] [-data DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"repro/internal/service"
	"repro/internal/systems/sysreg"

	_ "repro/internal/systems/dfs"
	_ "repro/internal/systems/kvstore"
	_ "repro/internal/systems/metastore"
	_ "repro/internal/systems/objstore"
	_ "repro/internal/systems/stream"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address")
	workers := flag.Int("workers", 0, "shared simulation worker tokens across all jobs (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", 4, "campaign jobs running at once; the rest queue by priority")
	dataDir := flag.String("data", "", "directory for persisted graph artifacts (empty = in-memory only)")
	flag.Parse()

	m, err := service.NewManager(service.Config{
		Workers: *workers,
		MaxJobs: *maxJobs,
		DataDir: *dataDir,
	})
	if err != nil {
		log.Fatalf("csnaked: %v", err)
	}
	if n := m.Store().Len(); n > 0 {
		log.Printf("csnaked: reloaded %d graph artifact(s) from %s", n, *dataDir)
	}
	log.Printf("csnaked: serving on http://%s (workers=%d, max-jobs=%d, systems: %s)",
		*addr, m.Pool().Cap(), *maxJobs, strings.Join(sysreg.Names(), ", "))
	if err := http.ListenAndServe(*addr, service.NewServer(m)); err != nil {
		log.Fatal(fmt.Errorf("csnaked: %w", err))
	}
}
