// Package repro's root benchmark harness regenerates every quantitative
// artefact of the paper's evaluation section (see DESIGN.md's experiment
// index): one benchmark per table plus the §8.2/§8.2.1/§8.5 measurements,
// and micro-benchmarks for the core algorithms. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core/alloc"
	"repro/internal/core/beam"
	"repro/internal/core/compat"
	"repro/internal/core/csnake"
	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/inject"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/systems/dfs"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/metastore"
	"repro/internal/systems/objstore"
	"repro/internal/systems/stream"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"
)

func lightConfig(seed int64) csnake.Config {
	cfg := csnake.DefaultConfig(seed)
	cfg.Harness = harness.Config{
		Reps:            3,
		DelayMagnitudes: []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second},
	}
	return cfg
}

// --- E1: Table 2 (static analysis inventory) ---

func BenchmarkTable2_StaticAnalysis(b *testing.B) {
	systems := []sysreg.System{dfs.NewV2(), dfs.NewV3(), kvstore.New(), metastore.New(), stream.New(), objstore.New()}
	for i := 0; i < b.N; i++ {
		rows, err := report.Table2(".", systems)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- E2: Table 3 (full campaign per system) ---

func benchCampaign(b *testing.B, sys sysreg.System) {
	for i := 0; i < b.N; i++ {
		rep, err := csnake.Run(sys, lightConfig(42))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Space.Size() == 0 || len(rep.Runs) == 0 {
			b.Fatal("empty campaign")
		}
		b.ReportMetric(float64(len(rep.Edges)), "edges")
		b.ReportMetric(float64(len(rep.CycleClusters)), "clusters")
		b.ReportMetric(float64(len(csnake.DetectedBugs(rep, sys.Bugs()))), "bugs")
	}
}

func BenchmarkTable3_CampaignHDFS2(b *testing.B)     { benchCampaign(b, dfs.NewV2()) }
func BenchmarkTable3_CampaignHDFS3(b *testing.B)     { benchCampaign(b, dfs.NewV3()) }
func BenchmarkTable3_CampaignHBase(b *testing.B)     { benchCampaign(b, kvstore.New()) }
func BenchmarkTable3_CampaignFlink(b *testing.B)     { benchCampaign(b, stream.New()) }
func BenchmarkTable3_CampaignMetaStore(b *testing.B) { benchCampaign(b, metastore.New()) }
func BenchmarkTable3_CampaignOZone(b *testing.B)     { benchCampaign(b, objstore.New()) }

// --- E2b: serial vs parallel campaign execution (Campaign API) ---

func benchCampaignParallel(b *testing.B, parallelism int) {
	for i := 0; i < b.N; i++ {
		rep, err := csnake.NewCampaign(stream.New(),
			csnake.WithConfig(lightConfig(42)),
			csnake.WithParallelism(parallelism),
		).Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Runs) == 0 {
			b.Fatal("empty campaign")
		}
		b.ReportMetric(float64(rep.Sims), "sims")
		b.ReportMetric(float64(len(rep.Edges)), "edges")
	}
}

func BenchmarkCampaign_Serial(b *testing.B)   { benchCampaignParallel(b, 1) }
func BenchmarkCampaign_Parallel(b *testing.B) { benchCampaignParallel(b, runtime.NumCPU()) }

// BenchmarkCampaign_Scaling traces the core-count scaling curve on the
// consensus-target campaign: the same workload at p = 1, 2, 4 and
// NumCPU worker bounds (deduplicated when the host has few cores). All
// points produce byte-identical reports -- the sharded accumulation and
// wave-order merge guarantee it -- so the curve measures pure execution
// scaling, not search-quality drift. On a single-core host the curve is
// flat by construction; the interesting shape needs real parallelism.
func BenchmarkCampaign_Scaling(b *testing.B) {
	ps := []int{1, 2, 4, runtime.NumCPU()}
	seen := make(map[int]bool)
	for _, p := range ps {
		if seen[p] {
			continue
		}
		seen[p] = true
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCampaignScalingPoint(b, p)
		})
	}
}

func benchCampaignScalingPoint(b *testing.B, parallelism int) {
	for i := 0; i < b.N; i++ {
		rep, err := csnake.NewCampaign(metastore.New(),
			csnake.WithConfig(lightConfig(42)),
			csnake.WithParallelism(parallelism),
		).Run()
		if err != nil {
			b.Fatal(err)
		}
		bugs := csnake.DetectedBugs(rep, metastore.New().Bugs())
		if len(bugs) != 2 {
			b.Fatalf("campaign lost detection at p=%d: %v", parallelism, bugs)
		}
		b.ReportMetric(float64(rep.Sims), "sims")
		b.ReportMetric(float64(len(rep.Edges)), "edges")
	}
}

// --- E2c: anytime pipeline -- batch vs streaming vs early stop ---

// benchCampaignMetaStore measures the consensus-target campaign under a
// given pipeline configuration; the anytime+early-stop variant's
// wall-clock win over the batch baseline is the PR's acceptance metric.
func benchCampaignMetaStore(b *testing.B, opts ...csnake.Option) {
	for i := 0; i < b.N; i++ {
		rep, err := csnake.NewCampaign(metastore.New(),
			append([]csnake.Option{csnake.WithConfig(lightConfig(42))}, opts...)...).Run()
		if err != nil {
			b.Fatal(err)
		}
		bugs := csnake.DetectedBugs(rep, metastore.New().Bugs())
		if len(bugs) != 2 {
			b.Fatalf("campaign lost detection: %v", bugs)
		}
		b.ReportMetric(float64(rep.Sims), "sims")
		b.ReportMetric(float64(len(rep.Runs)), "experiments")
	}
}

func BenchmarkCampaign_MetaStoreBatch(b *testing.B) { benchCampaignMetaStore(b) }

// Full streaming at the default |F|-run wave granularity: every round
// pays an incremental search, so the full-budget variant trades
// wall-clock for per-round answers (MetaStore's graph is cycle-dense --
// the distinct-cycle count grows into six figures by the final rounds).
func BenchmarkCampaign_MetaStoreAnytime(b *testing.B) {
	benchCampaignMetaStore(b, csnake.WithAnytime())
}

func BenchmarkCampaign_MetaStoreAnytimeEarlyStop(b *testing.B) {
	benchCampaignMetaStore(b, csnake.WithEarlyStop(3), csnake.WithWaveSize(4))
}

// --- E2c': prefix sharing -- fork-at-injection vs scratch re-simulation ---

// stagedSys is a bench-only target: metastore's Raft cluster under
// workloads shaped so that every injectable fault point is first
// reached roughly halfway into the horizon, behind a proposal-heavy
// warm-up. Real campaigns spread first-reach times from near zero, so
// the average shared prefix is short; this system isolates the
// prefix-sharing win by construction -- the stretched election timeout
// gates the election family to ~15s, the late transfer and pauser gate
// elections and snapshot transfers to ~20s, and the fault space keeps
// only those late points (the always-hot ones -- replication round,
// fsync, apply, propose -- are excluded, since runs injecting them
// diverge immediately and share nothing).
type stagedSys struct{}

func (stagedSys) Name() string { return "MetaStoreStaged" }

func (stagedSys) Points() []faults.Point {
	keep := map[faults.ID]bool{
		metastore.PtElectionLoop: true,
		metastore.PtVoteRPCIOE:   true,
		metastore.PtQuorumOK:     true,
		metastore.PtLogUpToDate:  true,
		metastore.PtSnapSendLoop: true,
		metastore.PtSnapRPCIOE:   true,
	}
	var pts []faults.Point
	for _, pt := range metastore.New().Points() {
		if keep[pt.ID] {
			pts = append(pts, pt)
		}
	}
	return pts
}

func (stagedSys) Nests() []faults.LoopNest { return nil }
func (stagedSys) SourceDirs() []string     { return nil }
func (stagedSys) Bugs() []sysreg.Bug       { return nil }

func stagedWL(name, desc string, cfg metastore.Config, scenario func(*metastore.Cluster)) sysreg.Workload {
	return sysreg.Workload{
		Name: name, Desc: desc, Horizon: 40 * time.Second,
		Run: func(ctx *sysreg.RunContext) {
			c := metastore.NewCluster(ctx, cfg)
			scenario(c)
			ctx.Ckpt = c
		},
	}
}

func (stagedSys) Workloads() []sysreg.Workload {
	// Every variant front-loads ~31s of saturating proposal traffic (the
	// bulk of a run's events -- replication, fsync, and apply scale with
	// entries) and only makes the injectable faults reachable in the
	// final quarter: elections cannot happen before the ~34s transfer,
	// and the snapshot path needs the ~34.5s pause to open a >SnapLag
	// log gap against the late proposer. The 3PA protocol injects each
	// (fault, workload) pair at most once, so the variants are what give
	// the schedule room to spend a real budget -- each one covers all
	// six faults.
	cfg := metastore.Config{
		ElectionTimeout: 15 * time.Second, ElectionJitter: 2 * time.Second,
		SnapLag: 30,
	}
	// The workload names are deliberate: the harness draws each plan's
	// rep seeds from a per-workload pool rotated by a (name, fault) hash
	// (see harness.planSeeds), and these names make all six faults' seed
	// windows overlap, so the campaign's ~90 injected runs concentrate on
	// ~4 (workload, seed) pairs per workload. That is the regime prefix
	// sharing is built for -- many runs re-simulating one warm-up -- and
	// keeps the benchmark's prefix-engine count (the sharing overhead)
	// from washing out the measured win.
	names := []string{"staged_10564", "staged_14328", "staged_36299", "staged_180063", "staged_214295"}
	var wls []sysreg.Workload
	for i := 0; i < 5; i++ {
		i := i
		wls = append(wls, stagedWL(names[i],
			"late transfer + pause-forced snapshot behind a heavy warm-up", cfg,
			func(c *metastore.Cluster) {
				jitter := time.Duration(i) * 50 * time.Millisecond
				c.SpawnProposer("c1", 300, 6, 95*time.Millisecond, jitter)
				c.SpawnProposer("c2", 290, 6, 105*time.Millisecond, 150*time.Millisecond+jitter)
				c.SpawnProposer("c3", 280, 6, 110*time.Millisecond, 300*time.Millisecond+jitter)
				c.SpawnProposer("late", 40, 6, 100*time.Millisecond, 34500*time.Millisecond)
				c.SpawnTransferLoop("admin", 35*time.Second+time.Duration(i)*300*time.Millisecond, 3*time.Second, 2)
				c.SpawnPauser("churn", 2, 35500*time.Millisecond+time.Duration(i)*200*time.Millisecond,
					1500*time.Millisecond, 10*time.Second, 1)
			}))
	}
	return wls
}

// benchCampaignStaged is the PR's acceptance pair: the same campaign
// with prefix sharing on vs off. Results are byte-identical (the
// harness tests pin that); sims parity is asserted here so the pair
// cannot drift apart silently.
func benchCampaignStaged(b *testing.B, share bool) {
	for i := 0; i < b.N; i++ {
		rep, err := csnake.NewCampaign(stagedSys{},
			csnake.WithSeed(42),
			csnake.WithReps(3),
			csnake.WithBudgetFactor(20),
			csnake.WithDelayMagnitudes(time.Second, 2*time.Second, 3500*time.Millisecond, 5*time.Second),
			csnake.WithParallelism(1),
			csnake.WithPrefixSharing(share),
		).Run()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Sims == 0 {
			b.Fatal("empty campaign")
		}
		b.ReportMetric(float64(rep.Sims), "sims")
		b.ReportMetric(float64(rep.Checkpoint.Avoided()), "avoided")
	}
}

func BenchmarkCampaign_MetaStorePrefixShare(b *testing.B)    { benchCampaignStaged(b, true) }
func BenchmarkCampaign_MetaStorePrefixShareOff(b *testing.B) { benchCampaignStaged(b, false) }

// --- E2d: the campaign service -- shared worker budget across jobs ---

// benchServiceCampaigns submits four HBase campaigns to a csnaked job
// manager and awaits them all. maxJobs=4 runs them concurrently under
// the shared worker-token pool; maxJobs=1 is the sequential baseline.
// The gap is the service's concurrency win at equal total work (results
// are byte-identical either way -- the determinism tests pin that).
func benchServiceCampaigns(b *testing.B, maxJobs int) {
	specs := make([]service.CampaignSpec, 4)
	for i := range specs {
		seed := int64(42 + i)
		specs[i] = service.CampaignSpec{
			System:            "hbase",
			Seed:              &seed,
			Reps:              3,
			DelayMagnitudesMS: []int64{500, 2000, 8000},
			Parallelism:       runtime.NumCPU(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := service.NewManager(service.Config{Workers: runtime.NumCPU(), MaxJobs: maxJobs})
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]string, len(specs))
		for j, spec := range specs {
			st, err := m.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			ids[j] = st.ID
		}
		var sims int
		for _, id := range ids {
			st, err := m.Await(id)
			if err != nil {
				b.Fatal(err)
			}
			if st.State != service.StateSucceeded {
				b.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
			}
			sims += st.Sims
		}
		b.ReportMetric(float64(sims), "sims")
	}
}

func BenchmarkService_ConcurrentCampaigns(b *testing.B) { benchServiceCampaigns(b, 4) }
func BenchmarkService_SequentialCampaigns(b *testing.B) { benchServiceCampaigns(b, 1) }

// --- E3: Table 4 (cycle clustering, unlimited vs one-delay search) ---

func BenchmarkTable4_CycleClustering(b *testing.B) {
	art := report.RunCampaign(kvstore.New(), csnake.WithConfig(lightConfig(42)))
	if art.Err != nil {
		b.Fatal(art.Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := report.Table4(art)
		b.ReportMetric(float64(row.Cycles), "cycles")
		b.ReportMetric(float64(row.Cycles1), "cycles_1delay")
		b.ReportMetric(float64(row.TP), "tp")
	}
}

// --- E4: §8.2 naive single-fault strategy ---

func BenchmarkAltStrategy_Naive(b *testing.B) {
	sys := objstore.New()
	for i := 0; i < b.N; i++ {
		findings := baselines.Naive(sys, baselines.NaiveConfig{Reps: 2,
			DelayMagnitudes: []time.Duration{2 * time.Second}, BaseSeed: 42})
		b.ReportMetric(float64(len(findings)), "findings")
		b.ReportMetric(float64(len(baselines.DetectedByNaive(findings, sys.Bugs()))), "bugs")
	}
}

// --- E5: §8.2 random allocation protocol ---

func BenchmarkRandomAllocation(b *testing.B) {
	sys := stream.New()
	for i := 0; i < b.N; i++ {
		cfg := lightConfig(43)
		cfg.Protocol = csnake.ProtocolRandom
		rep, err := csnake.Run(sys, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(csnake.DetectedBugs(rep, sys.Bugs()))), "bugs")
	}
}

// --- E6: §8.2.1 blackbox fuzzing comparison ---

func BenchmarkFuzzerBaseline(b *testing.B) {
	sys := objstore.New()
	for i := 0; i < b.N; i++ {
		res := baselines.Fuzz(sys, baselines.FuzzConfig{RunsPerWorkload: 2, BaseSeed: 42})
		if len(res.BugsDetected) != 0 {
			b.Fatal("a blackbox fuzzer cannot name causal cycles")
		}
		b.ReportMetric(float64(res.GenericAnomalies), "anomalies")
	}
}

// --- E7: §8.5 instrumentation overhead ---

func BenchmarkOverhead_InstrumentedProfileRun(b *testing.B) {
	sys := dfs.NewV2()
	driver := harness.New(sys, sysreg.Space(sys), harness.Config{Reps: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// OverheadSample averages harness.OverheadSamples paired runs
		// internally (single wall-clock pairs are dominated by allocator
		// warm-up noise).
		inst, bare := driver.OverheadSample("ibr_storm", int64(i*harness.OverheadSamples))
		if bare > 0 {
			b.ReportMetric(100*(float64(inst)/float64(bare)-1), "overhead_pct")
		}
	}
}

// --- micro-benchmarks for the core algorithms ---

func BenchmarkSimEngine_MessageRoundTrips(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(sim.Options{Seed: int64(i)})
		srv := eng.NewMailbox("srv", "rpc")
		eng.Spawn("srv", "server", func(p *sim.Proc) {
			for {
				m, ok := p.Recv(srv, -1)
				if !ok {
					return
				}
				p.Reply(m.(sim.Req), nil, nil)
			}
		})
		eng.Spawn("cli", "client", func(p *sim.Proc) {
			for j := 0; j < 1000; j++ {
				p.Call(srv, j, time.Second)
			}
		})
		eng.Run(time.Hour)
		eng.Close()
	}
}

func BenchmarkFCA_Analyze(b *testing.B) {
	space := faults.NewSpace([]faults.Point{
		{ID: "s.t", Kind: faults.Throw}, {ID: "s.l", Kind: faults.Loop},
	}, nil)
	plan := inject.Plan{Kind: inject.Exception, Target: "s.t"}
	profile, injected := syntheticSets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fca.Analyze(space, plan, "t", profile, injected, fca.DefaultConfig())
	}
}

func BenchmarkBeamSearch(b *testing.B) {
	// The intended workflow: the campaign (or a loaded file) holds a
	// prebuilt interned graph and every search matches on its integer
	// index -- zero state-key strings are built per search.
	g := graph.FromEdges(syntheticEdges(120))
	g.Index() // prebuild, as the campaign's first search would
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		beam.SearchGraph(g, nil, beam.Options{MaxLen: 6})
	}
}

func BenchmarkBeamSearchFromSlice(b *testing.B) {
	// Legacy entry point: interning the flat slice is part of each call.
	edges := syntheticEdges(120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		beam.Search(edges, nil, beam.Options{MaxLen: 6})
	}
}

func BenchmarkGraphBuild(b *testing.B) {
	edges := syntheticEdges(120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.FromEdges(edges)
		g.Index()
	}
}

func BenchmarkGraphIndexDeltaRefresh(b *testing.B) {
	// The anytime round loop's access pattern: a handful of insertions,
	// then a re-index. The delta-aware refresh reuses every untouched
	// entry instead of re-interning key sets and re-materializing edges.
	g := graph.New()
	g.AddAll(syntheticEdges(512))
	g.Index()
	st := compat.State{Occ: []trace.Occurrence{{Stack: []string{"fn"}}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Add(fca.Edge{
			From: faults.ID(fmt.Sprintf("f.%d", i%30)), To: faults.ID(fmt.Sprintf("fx.%d", i%64)),
			Kind: faults.EI, Test: "t0", FromState: st, ToState: st,
		})
		if g.Index() == nil {
			b.Fatal("no index")
		}
	}
}

func BenchmarkGraphPrefixSnapshot(b *testing.B) {
	edges := syntheticEdges(512)
	g := graph.New()
	for i, e := range edges {
		g.Add(e)
		if (i+1)%8 == 0 {
			g.Mark()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mid-campaign snapshot: the allocPhase/Table 3 access pattern.
		p := g.Prefix(32)
		if p.Len() == 0 {
			b.Fatal("empty prefix")
		}
	}
}

func BenchmarkGraphJSONRoundTrip(b *testing.B) {
	g := graph.FromEdges(syntheticEdges(256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(g)
		if err != nil {
			b.Fatal(err)
		}
		g2 := graph.New()
		if err := json.Unmarshal(data, g2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIDFClustering(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var corpus [][]faults.ID
	for i := 0; i < 100; i++ {
		var set []faults.ID
		for j := 0; j < 5; j++ {
			set = append(set, faults.ID(fmt.Sprintf("f.%d", rng.Intn(30))))
		}
		corpus = append(corpus, set)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idf := cluster.TrainIDF(corpus)
		vecs := make([]cluster.Vector, len(corpus))
		for k, set := range corpus {
			vecs[k] = idf.Vectorize(set)
		}
		cluster.Hierarchical(len(vecs), func(a, c int) float64 {
			return cluster.CosineDistance(vecs[a], vecs[c])
		}, 0.5)
	}
}

func BenchmarkWelchTTest(b *testing.B) {
	x := []float64{10, 12, 11, 13, 12}
	y := []float64{15, 17, 16, 18, 16}
	for i := 0; i < b.N; i++ {
		stats.TTestGreater(y, x)
	}
}

func Benchmark3PAProtocol(b *testing.B) {
	space := mkBenchSpace(24)
	for i := 0; i < b.N; i++ {
		p := &alloc.Protocol{Space: space, Rng: rand.New(rand.NewSource(int64(i)))}
		p.Run(scriptedExecutor{})
	}
}

// --- synthetic fixtures ---

func syntheticSets() (*trace.Set, *trace.Set) {
	profile, injected := &trace.Set{}, &trace.Set{}
	for i := 0; i < 5; i++ {
		pr := trace.NewRun("t", int64(i))
		pr.AddLoopIters("s.l", 10+i%2)
		profile.Add(pr)
		in := trace.NewRun("t", int64(100+i))
		in.InjFired = true
		in.AddLoopIters("s.l", 30+i%3)
		in.Activate("s.t", trace.Occurrence{Stack: []string{"f", "g"}})
		injected.Add(in)
	}
	return profile, injected
}

func syntheticEdges(n int) []fca.Edge {
	rng := rand.New(rand.NewSource(3))
	var out []fca.Edge
	for i := 0; i < n; i++ {
		from := faults.ID(fmt.Sprintf("f.%d", rng.Intn(30)))
		to := faults.ID(fmt.Sprintf("f.%d", rng.Intn(30)))
		st := compat.State{Occ: []trace.Occurrence{{Stack: []string{fmt.Sprintf("fn%d", rng.Intn(4))}}}}
		out = append(out, fca.Edge{
			From: from, To: to, Kind: faults.EI,
			FromClass: faults.ClassException, ToClass: faults.ClassException,
			Test: fmt.Sprintf("t%d", rng.Intn(6)), FromState: st, ToState: st,
		})
	}
	return out
}

func mkBenchSpace(n int) *faults.Space {
	var pts []faults.Point
	for i := 0; i < n; i++ {
		pts = append(pts, faults.Point{ID: faults.ID(fmt.Sprintf("b.f%02d", i)), Kind: faults.Throw})
	}
	return faults.NewSpace(pts, nil)
}

type scriptedExecutor struct{}

func (scriptedExecutor) TestsFor(f faults.ID) []alloc.TestInfo {
	return []alloc.TestInfo{{Name: "t1", Coverage: 10}, {Name: "t2", Coverage: 8}, {Name: "t3", Coverage: 5}}
}

func (scriptedExecutor) Execute(f faults.ID, test string) []faults.ID {
	return []faults.ID{faults.ID("x." + test)}
}
