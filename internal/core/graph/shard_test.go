package graph_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core/graph"
)

// TestMergeShardMatchesSerial pins the sharded-accumulation contract:
// replaying per-worker shards into a graph in order produces the same
// graph -- same deduplicated edges, same marks, and byte-identical JSON
// (which pins the dense-id interning order, the part parallel insertion
// would scramble first) -- as issuing the identical Add/Mark sequence
// serially.
func TestMergeShardMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for round := 0; round < 20; round++ {
		edges := randomEdges(rng, 10+rng.Intn(150))

		// Split the stream into experiment-sized chunks, each ending in a
		// mark, exactly as ExecuteWave's workers would accumulate them.
		serial := graph.New()
		var shards []*graph.Shard
		i := 0
		for i < len(edges) {
			n := 1 + rng.Intn(12)
			if i+n > len(edges) {
				n = len(edges) - i
			}
			chunk := edges[i : i+n]
			i += n

			for _, e := range chunk {
				serial.Add(e)
			}
			serial.Mark()

			var s graph.Shard
			s.AddAll(chunk)
			s.Mark()
			shards = append(shards, &s)
		}

		merged := graph.New()
		for _, s := range shards {
			merged.MergeShard(s)
		}

		if !reflect.DeepEqual(merged.Edges(), serial.Edges()) {
			t.Fatalf("round %d: merged edges diverge from serial", round)
		}
		if merged.Len() != serial.Len() || merged.NumKeys() != serial.NumKeys() {
			t.Fatalf("round %d: sizes diverge: len %d/%d keys %d/%d",
				round, merged.Len(), serial.Len(), merged.NumKeys(), serial.NumKeys())
		}
		sj, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		mj, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, mj) {
			t.Fatalf("round %d: JSON serializations diverge (interning order?)", round)
		}
	}
}

// TestShardMarkOnlyKeepsAlignment pins the cancelled-experiment case: a
// shard holding nothing but a mark still advances the merged graph's
// round marks, so Prefix(n) stays aligned with the experiment count.
func TestShardMarkOnlyKeepsAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := randomEdges(rng, 8)

	var full, empty graph.Shard
	full.AddAll(edges)
	full.Mark()
	empty.Mark()

	g := graph.New()
	g.MergeShard(&full)
	g.MergeShard(&empty)
	g.MergeShard(&full)

	want := graph.New()
	for _, e := range edges {
		want.Add(e)
	}
	want.Mark()
	want.Mark()
	for _, e := range edges {
		want.Add(e)
	}
	want.Mark()

	for n := 0; n <= 3; n++ {
		if got, exp := g.Prefix(n).Len(), want.Prefix(n).Len(); got != exp {
			t.Fatalf("Prefix(%d).Len() = %d, want %d", n, got, exp)
		}
	}
}
