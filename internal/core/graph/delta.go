package graph

import (
	"sort"

	"repro/internal/faults"
)

// Delta describes how a graph's dynamic-edge set grew over a window of
// raw insertions [FromSeq, ToSeq): the artifact one anytime-campaign
// round publishes so downstream consumers (the incremental beam search,
// round observers) can re-examine only what the round's experiments
// actually changed.
//
// Determinism contract: a graph's raw insertion sequence is a pure
// function of the campaign's configuration and seed (the harness merges
// parallel run results in deterministic order before inserting), so the
// delta of any [FromSeq, ToSeq) window -- its edge indices, new-record
// count, and touched fault set -- is identical across serial, parallel,
// and resumed executions of the same campaign.
type Delta struct {
	FromSeq, ToSeq int
	// New counts dynamic edge records first discovered inside the window.
	New int
	// Edges lists the logical indices of every dynamic edge the window
	// added or whose occurrence evidence it extended, ascending. Merges
	// wholly rejected by the evidence cap do not count: they cannot change
	// key sets, materialized edges, or match outcomes.
	Edges []int
	// Faults lists the distinct fault ids those edges connect, in interned
	// (dense-id) order.
	Faults []faults.ID
}

// Empty reports whether the window changed nothing a search could see.
func (d Delta) Empty() bool { return len(d.Edges) == 0 }

// DeltaSince computes the delta of the window [fromSeq, g.RawLen()).
// fromSeq <= 0 yields a delta covering every dynamic edge.
func (g *Graph) DeltaSince(fromSeq int) Delta {
	d := Delta{FromSeq: fromSeq, ToSeq: g.seq}
	var touched []int32
	seen := make(map[int32]bool)
	for i := range g.dyn {
		r := &g.dyn[i]
		if r.lastSeq < fromSeq {
			continue
		}
		if r.firstSeq >= fromSeq {
			d.New++
		}
		d.Edges = append(d.Edges, i)
		for _, f := range [2]int32{r.from, r.to} {
			if !seen[f] {
				seen[f] = true
				touched = append(touched, f)
			}
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	d.Faults = make([]faults.ID, len(touched))
	for i, f := range touched {
		d.Faults[i] = g.faultIDs[f]
	}
	return d
}
