package graph_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
	"repro/internal/trace"
)

func TestDeltaSinceTracksNewAndTouchedEdges(t *testing.T) {
	g := graph.New()
	g.Add(dynEdge("a", "b", faults.EI, "t1", []trace.Occurrence{occ("s1")}, nil))
	g.Add(dynEdge("b", "c", faults.EI, "t1", nil, nil))
	mark := g.RawLen()

	// One brand-new identity and one evidence merge into an old record.
	g.Add(dynEdge("c", "a", faults.EI, "t1", nil, nil))
	g.Add(dynEdge("a", "b", faults.EI, "t1", []trace.Occurrence{occ("s2")}, nil))

	d := g.DeltaSince(mark)
	if d.FromSeq != mark || d.ToSeq != g.RawLen() {
		t.Fatalf("window = [%d, %d), want [%d, %d)", d.FromSeq, d.ToSeq, mark, g.RawLen())
	}
	if d.New != 1 {
		t.Fatalf("new edges = %d, want 1", d.New)
	}
	// Logical indices: a->b is record 0 (touched), c->a is record 2 (new).
	if !reflect.DeepEqual(d.Edges, []int{0, 2}) {
		t.Fatalf("delta edges = %v, want [0 2]", d.Edges)
	}
	want := []faults.ID{"a", "b", "c"}
	if !reflect.DeepEqual(d.Faults, want) {
		t.Fatalf("delta faults = %v, want %v", d.Faults, want)
	}
	if !g.DeltaSince(g.RawLen()).Empty() {
		t.Fatal("empty window reported a non-empty delta")
	}
}

func TestDeltaIgnoresCapRejectedMerges(t *testing.T) {
	g := graph.New()
	var ev []trace.Occurrence
	for i := 0; i < trace.OccCap; i++ {
		ev = append(ev, occ("s", string(rune('a'+i))))
	}
	g.Add(dynEdge("a", "b", faults.EI, "t1", ev, nil))
	mark := g.RawLen()
	// The record's evidence is already at the cap: this merge is wholly
	// rejected and must not surface in the delta.
	g.Add(dynEdge("a", "b", faults.EI, "t1", []trace.Occurrence{occ("late")}, nil))
	if d := g.DeltaSince(mark); !d.Empty() {
		t.Fatalf("cap-rejected merge surfaced in delta: %+v", d)
	}
}

// TestIncrementalIndexMatchesFullRebuild pins the delta-aware Index()
// refresh: growing a graph in chunks and re-indexing after each chunk
// must produce exactly the index a from-scratch build of the same edge
// stream produces, including the static-tail shift as the dynamic
// section grows.
func TestIncrementalIndexMatchesFullRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	stream := randomEdges(rng, 160)
	static := []fca.Edge{
		{From: "f.0", To: "f.1", Kind: faults.ICFG, FromClass: faults.ClassDelay, ToClass: faults.ClassDelay},
		{From: "f.1", To: "f.2", Kind: faults.CFG, FromClass: faults.ClassDelay, ToClass: faults.ClassDelay},
	}

	g := graph.New()
	g.AddStatic(static)
	for chunk := 0; chunk*20 < len(stream); chunk++ {
		lo, hi := chunk*20, (chunk+1)*20
		if hi > len(stream) {
			hi = len(stream)
		}
		g.AddAll(stream[lo:hi])
		got := g.Index()

		ref := graph.New()
		ref.AddStatic(static)
		ref.AddAll(stream[:hi])
		want := ref.Index()

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("incremental index diverges from full rebuild after chunk %d", chunk)
		}
	}
}

func TestSnapshotSharesFreshParentIndex(t *testing.T) {
	g := graph.New()
	g.Add(dynEdge("a", "b", faults.EI, "t1", nil, nil))
	ix := g.Index()
	if got := g.Snapshot().Index(); got != ix {
		t.Fatal("full snapshot of an indexed graph rebuilt the index")
	}
	// After further growth, re-indexing the parent and snapshotting again
	// shares the refreshed index, not the outdated one.
	g.Add(dynEdge("b", "a", faults.EI, "t1", nil, nil))
	fresh := g.Index()
	if fresh == ix {
		t.Fatal("stale index was not refreshed")
	}
	if got := g.Snapshot().Index(); got != fresh {
		t.Fatal("post-growth snapshot did not share the refreshed index")
	}
}
