package graph_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
)

func at(ms int64) time.Time { return time.Unix(0, ms*int64(time.Millisecond)) }

// TestWindowUnbounded checks span=0: every observation is retained and
// the graph matches a plain accumulation of the same stream.
func TestWindowUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	edges := randomEdges(rng, 60)

	w := graph.NewWindow(0, 4)
	w.SetSystem("Toy")
	ref := graph.New()
	ref.SetSystem("Toy")
	for i, e := range edges {
		accepted, rebuilt := w.Observe(e, at(int64(i)))
		if !accepted || rebuilt {
			t.Fatalf("obs %d: accepted=%v rebuilt=%v; unbounded never evicts", i, accepted, rebuilt)
		}
		ref.Add(e)
	}
	if w.Evicted() != 0 || w.Rebuilds() != 0 || w.Stale() != 0 {
		t.Fatalf("unbounded window leaked decay stats: evicted=%d rebuilds=%d stale=%d",
			w.Evicted(), w.Rebuilds(), w.Stale())
	}
	if !reflect.DeepEqual(w.Graph().Edges(), ref.Edges()) {
		t.Fatal("unbounded window diverged from plain accumulation")
	}
}

// TestWindowRebuildEquivalence is the core decay invariant: after any
// eviction, the rebuilt graph is identical to a fresh graph that only
// ever saw the surviving observations, in their arrival order.
func TestWindowRebuildEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	edges := randomEdges(rng, 120)

	// 1s window over 4 buckets; stamp 10 observations per 100ms so the
	// stream crosses the horizon several times.
	w := graph.NewWindow(time.Second, 4)
	w.SetSystem("Toy")
	w.AddStatic(fca.Edge{
		From: "f.0", To: "f.1", Kind: faults.ICFG,
		FromClass: faults.ClassException, ToClass: faults.ClassException,
	})

	type stamped struct {
		e  fca.Edge
		ms int64
	}
	var applied []stamped
	for i, e := range edges {
		ms := int64(i) * 100
		accepted, _ := w.Observe(e, at(ms))
		if !accepted {
			t.Fatalf("forward-only stream must never go stale (obs %d)", i)
		}
		applied = append(applied, stamped{e, ms})
	}
	if w.Rebuilds() == 0 {
		t.Fatal("stream was meant to trigger evictions")
	}
	if w.Retained()+w.Evicted() != len(edges) {
		t.Fatalf("retained %d + evicted %d != observed %d", w.Retained(), w.Evicted(), len(edges))
	}

	// Reference: replay only the observations still inside the final
	// window into a fresh graph.
	horizonMS := applied[len(applied)-1].ms
	width := int64(time.Second / 4 / time.Millisecond)
	minBucket := horizonMS/width - 3
	ref := graph.New()
	ref.SetSystem("Toy")
	ref.AddStatic([]fca.Edge{{
		From: "f.0", To: "f.1", Kind: faults.ICFG,
		FromClass: faults.ClassException, ToClass: faults.ClassException,
	}})
	for _, s := range applied {
		if s.ms/width >= minBucket {
			ref.Add(s.e)
		}
	}
	if !reflect.DeepEqual(w.Graph().Edges(), ref.Edges()) {
		t.Fatal("rebuilt graph diverged from replaying the surviving observations")
	}
}

// TestWindowStaleAndStatics: observations behind the advanced horizon
// are rejected and counted; static edges and annotations survive every
// rebuild.
func TestWindowStaleAndStatics(t *testing.T) {
	w := graph.NewWindow(time.Second, 4)
	w.SetSystem("Toy")
	st := fca.Edge{
		From: "s.a", To: "s.b", Kind: faults.ICFG,
		FromClass: faults.ClassException, ToClass: faults.ClassException,
	}
	// Static routed through Observe: accepted, never evicted.
	if acc, reb := w.Observe(st, at(0)); !acc || reb {
		t.Fatalf("static observe: accepted=%v rebuilt=%v", acc, reb)
	}
	w.SetNestGroup("f.2", 3)
	w.SetScore("f.2", 0.5)

	dyn := dynEdge("f.1", "f.2", faults.EI, "t1", nil, nil)
	w.Observe(dyn, at(10))
	// Jump 10s ahead: the t=10ms observation must be evicted.
	w.Observe(dynEdge("f.2", "f.3", faults.EI, "t2", nil, nil), at(10_000))
	if w.Rebuilds() != 1 || w.Evicted() != 1 {
		t.Fatalf("want 1 rebuild / 1 evicted, got %d / %d", w.Rebuilds(), w.Evicted())
	}
	// Annotate re-applies pending annotations, exactly as the monitor
	// does before each search.
	w.Annotate()
	g := w.Graph()
	if g.Len() != 2 { // the static edge plus the t=10s dynamic
		t.Fatalf("want 2 edges after rebuild, got %d", g.Len())
	}
	if g.System() != "Toy" {
		t.Fatalf("system lost in rebuild: %q", g.System())
	}
	if got := g.NestGroups()["f.2"]; got != 3 {
		t.Fatalf("nest annotation lost in rebuild: %d", got)
	}
	if got := g.Score("f.2"); got != 0.5 {
		t.Fatalf("score annotation lost in rebuild: %v", got)
	}

	// Now an observation behind the horizon: rejected, counted, graph
	// untouched.
	acc, _ := w.Observe(dyn, at(500))
	if acc || w.Stale() != 1 {
		t.Fatalf("stale observe: accepted=%v stale=%d", acc, w.Stale())
	}
	if w.Graph().Len() != 2 {
		t.Fatalf("stale observation mutated the graph: %d edges", w.Graph().Len())
	}
}
