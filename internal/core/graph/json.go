package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/core/compat"
	"repro/internal/core/fca"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Version is the on-disk schema version of a serialized graph.
const Version = 1

// The wire format is deliberately flat and index-based: fault ids and
// test names are stored once in tables and edges refer to them by index.
// Occurrence evidence is stored raw (stacks + branch traces); interned
// state keys are derived, so they are recomputed at load and never
// serialized. SimScores and loop-nest families ride along so a persisted
// graph can be re-searched in isolation, with the same ranking and
// structural-cycle filtering as the originating campaign.
type jsonGraph struct {
	Version int        `json:"version"`
	System  string     `json:"system,omitempty"`
	Faults  []string   `json:"faults"`
	Tests   []string   `json:"tests"`
	Edges   []jsonEdge `json:"edges"`
	Static  []jsonEdge `json:"static,omitempty"`
	// Scores and Nests are keyed by index into Faults.
	Scores map[string]float64 `json:"scores,omitempty"`
	Nests  map[string]int     `json:"nests,omitempty"`
}

type jsonEdge struct {
	From      int       `json:"f"`
	To        int       `json:"t"`
	Kind      int       `json:"k"`
	FromClass int       `json:"fc"`
	ToClass   int       `json:"tc"`
	Test      int       `json:"w"`
	FromDelay bool      `json:"fd,omitempty"`
	ToDelay   bool      `json:"td,omitempty"`
	FromOcc   []jsonOcc `json:"fo,omitempty"`
	ToOcc     []jsonOcc `json:"to,omitempty"`
}

type jsonOcc struct {
	Stack    []string     `json:"s,omitempty"`
	Branches []jsonBranch `json:"b,omitempty"`
}

type jsonBranch struct {
	ID    string `json:"i"`
	Taken bool   `json:"t"`
}

func wireOcc(entries []occEntry) []jsonOcc {
	if len(entries) == 0 {
		return nil
	}
	out := make([]jsonOcc, len(entries))
	for i, e := range entries {
		jo := jsonOcc{Stack: e.occ.Stack}
		for _, b := range e.occ.Branches {
			jo.Branches = append(jo.Branches, jsonBranch{ID: b.ID, Taken: b.Taken})
		}
		out[i] = jo
	}
	return out
}

func unwireOcc(occ []jsonOcc) []trace.Occurrence {
	if len(occ) == 0 {
		return nil
	}
	out := make([]trace.Occurrence, len(occ))
	for i, jo := range occ {
		o := trace.Occurrence{Stack: jo.Stack}
		for _, b := range jo.Branches {
			o.Branches = append(o.Branches, sim.BranchEval{ID: b.ID, Taken: b.Taken})
		}
		out[i] = o
	}
	return out
}

func (g *Graph) wireEdge(r *edgeRec) jsonEdge {
	return jsonEdge{
		From: int(r.from), To: int(r.to),
		Kind:      int(r.kind),
		FromClass: int(r.fromClass), ToClass: int(r.toClass),
		Test:      int(r.test),
		FromDelay: r.fromDelay, ToDelay: r.toDelay,
		FromOcc: wireOcc(r.fromOcc), ToOcc: wireOcc(r.toOcc),
	}
}

// MarshalJSON serializes the graph (schema Version).
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{
		Version: Version,
		System:  g.system,
		Faults:  make([]string, len(g.faultIDs)),
		Tests:   append([]string(nil), g.tests...),
	}
	for i, id := range g.faultIDs {
		jg.Faults[i] = string(id)
	}
	for i := range g.dyn {
		jg.Edges = append(jg.Edges, g.wireEdge(&g.dyn[i]))
	}
	for i := range g.static {
		jg.Static = append(jg.Static, g.wireEdge(&g.static[i]))
	}
	if len(g.scores) > 0 {
		jg.Scores = make(map[string]float64, len(g.scores))
		for fi, s := range g.scores {
			jg.Scores[fmt.Sprintf("%d", fi)] = s
		}
	}
	if len(g.nestGroup) > 0 {
		jg.Nests = make(map[string]int, len(g.nestGroup))
		for fi, grp := range g.nestGroup {
			jg.Nests[fmt.Sprintf("%d", fi)] = grp
		}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON loads a serialized graph into g, which must be a fresh
// mutable graph (as produced by New). Edges are re-inserted through the
// interning path, so state keys are rebuilt and identities re-checked;
// loading is therefore also a well-formedness pass.
func (g *Graph) UnmarshalJSON(data []byte) error {
	g.mutable("UnmarshalJSON")
	if g.Len() != 0 || g.seq != 0 {
		return fmt.Errorf("graph: unmarshal into non-empty graph")
	}
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if jg.Version != Version {
		return fmt.Errorf("graph: unsupported version %d (want %d)", jg.Version, Version)
	}
	g.system = jg.System
	// Pre-intern the serialized fault and test tables so the loaded graph
	// reproduces the source graph's intern order exactly (edge insertion
	// order alone would intern dynamic-edge faults before static-edge
	// ones). A marshal -> unmarshal -> marshal round trip is therefore
	// byte-stable, which campaign resume relies on.
	for _, f := range jg.Faults {
		g.internFault(faults.ID(f))
	}
	for _, tn := range jg.Tests {
		g.internTest(tn)
	}
	add := func(je jsonEdge, section string, insert func(fca.Edge)) error {
		if je.From < 0 || je.From >= len(jg.Faults) || je.To < 0 || je.To >= len(jg.Faults) {
			return fmt.Errorf("graph: %s edge fault index out of range", section)
		}
		if je.Test < 0 || je.Test >= len(jg.Tests) {
			return fmt.Errorf("graph: %s edge test index out of range", section)
		}
		if je.Kind < int(faults.ED) || je.Kind > int(faults.CFG) {
			return fmt.Errorf("graph: %s edge kind %d out of range", section, je.Kind)
		}
		for _, c := range []int{je.FromClass, je.ToClass} {
			if c < int(faults.ClassException) || c > int(faults.ClassDelay) {
				return fmt.Errorf("graph: %s edge fault class %d out of range", section, c)
			}
		}
		insert(fca.Edge{
			From: faults.ID(jg.Faults[je.From]), To: faults.ID(jg.Faults[je.To]),
			Kind:      faults.EdgeKind(je.Kind),
			FromClass: faults.FaultClass(je.FromClass), ToClass: faults.FaultClass(je.ToClass),
			Test:      jg.Tests[je.Test],
			FromState: compat.State{Occ: unwireOcc(je.FromOcc), DelayFault: je.FromDelay},
			ToState:   compat.State{Occ: unwireOcc(je.ToOcc), DelayFault: je.ToDelay},
		})
		return nil
	}
	for _, je := range jg.Edges {
		if faults.EdgeKind(je.Kind).Static() {
			return fmt.Errorf("graph: static kind in dynamic edge section")
		}
		if err := add(je, "dynamic", g.Add); err != nil {
			return err
		}
	}
	for _, je := range jg.Static {
		if !faults.EdgeKind(je.Kind).Static() {
			return fmt.Errorf("graph: dynamic kind in static edge section")
		}
		if err := add(je, "static", g.addStatic); err != nil {
			return err
		}
	}
	// Score/nest annotations refer to the serialized fault table; map them
	// through the (identically ordered, but re-derived) interned table.
	for key, s := range jg.Scores {
		fi, err := strconv.Atoi(key)
		if err != nil || fi < 0 || fi >= len(jg.Faults) {
			return fmt.Errorf("graph: bad score key %q", key)
		}
		g.SetScore(faults.ID(jg.Faults[fi]), s)
	}
	for key, grp := range jg.Nests {
		fi, err := strconv.Atoi(key)
		if err != nil || fi < 0 || fi >= len(jg.Faults) {
			return fmt.Errorf("graph: bad nest key %q", key)
		}
		g.SetNestGroup(faults.ID(jg.Faults[fi]), grp)
	}
	return nil
}

// Save writes the graph as JSON to w.
func (g *Graph) Save(w io.Writer) error {
	data, err := json.Marshal(g)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteFile persists the graph to path.
func (g *Graph) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a serialized graph from r.
func Load(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	g := New()
	if err := json.Unmarshal(data, g); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadFile loads a serialized graph from path.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
