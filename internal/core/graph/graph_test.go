package graph_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core/compat"
	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

func occ(stack ...string) trace.Occurrence { return trace.Occurrence{Stack: stack} }

func occB(stack []string, branches ...sim.BranchEval) trace.Occurrence {
	return trace.Occurrence{Stack: stack, Branches: branches}
}

func dynEdge(from, to faults.ID, kind faults.EdgeKind, test string, fromOcc, toOcc []trace.Occurrence) fca.Edge {
	return fca.Edge{
		From: from, To: to, Kind: kind,
		FromClass: faults.ClassException, ToClass: faults.ClassException,
		Test:      test,
		FromState: compat.State{Occ: fromOcc},
		ToState:   compat.State{Occ: toOcc},
	}
}

// randomEdges generates a raw edge stream with plenty of duplicate
// identities and varied evidence, as an FCA run would produce.
func randomEdges(rng *rand.Rand, n int) []fca.Edge {
	kinds := []faults.EdgeKind{faults.EI, faults.SI, faults.ED, faults.SD}
	var out []fca.Edge
	for i := 0; i < n; i++ {
		e := fca.Edge{
			From: faults.ID(fmt.Sprintf("f.%d", rng.Intn(8))),
			To:   faults.ID(fmt.Sprintf("f.%d", rng.Intn(8))),
			Kind: kinds[rng.Intn(len(kinds))],
			Test: fmt.Sprintf("t%d", rng.Intn(3)),
		}
		e.FromClass = faults.FaultClass(rng.Intn(3))
		e.ToClass = faults.FaultClass(rng.Intn(3))
		for j := rng.Intn(4); j > 0; j-- {
			o := occ(fmt.Sprintf("fn%d", rng.Intn(5)), fmt.Sprintf("fn%d", rng.Intn(5)))
			if rng.Intn(2) == 0 {
				o.Branches = []sim.BranchEval{{ID: fmt.Sprintf("b%d", rng.Intn(4)), Taken: rng.Intn(2) == 0}}
			}
			e.FromState.Occ = append(e.FromState.Occ, o)
		}
		for j := rng.Intn(4); j > 0; j-- {
			e.ToState.Occ = append(e.ToState.Occ, occ(fmt.Sprintf("g%d", rng.Intn(5))))
		}
		out = append(out, e)
	}
	return out
}

// TestIncrementalDedupMatchesLegacy pins the tentpole equivalence: a
// graph built by incremental insertion materializes exactly what the
// legacy batch fca.Dedup produced -- same unique edges, same order, same
// capped evidence merge.
func TestIncrementalDedupMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 20; round++ {
		edges := randomEdges(rng, 5+rng.Intn(120))
		want := fca.Dedup(edges)
		got := graph.FromEdges(edges).Edges()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: graph dedup diverges from fca.Dedup\ngot:  %+v\nwant: %+v", round, got, want)
		}
	}
}

// TestDedupEvidenceCap pins the OccCap merge rule: the first insertion's
// evidence is kept whole and later duplicates top it up to the cap.
func TestDedupEvidenceCap(t *testing.T) {
	var first []trace.Occurrence
	for i := 0; i < trace.OccCap-1; i++ {
		first = append(first, occ(fmt.Sprintf("s%d", i)))
	}
	e1 := dynEdge("a", "b", faults.EI, "t", first, nil)
	e2 := dynEdge("a", "b", faults.EI, "t",
		[]trace.Occurrence{occ("extra1"), occ("extra2"), occ("extra3")}, nil)
	g := graph.FromEdges([]fca.Edge{e1, e2})
	if g.Len() != 1 {
		t.Fatalf("unique edges = %d, want 1", g.Len())
	}
	merged := g.Edges()[0].FromState.Occ
	if len(merged) != trace.OccCap {
		t.Fatalf("merged evidence = %d occurrences, want capped at %d", len(merged), trace.OccCap)
	}
	if merged[trace.OccCap-1].Stack[0] != "extra1" {
		t.Fatalf("merge order wrong: %v", merged[trace.OccCap-1])
	}
}

// TestPrefixMatchesRawRededup checks prefix snapshots against the seed
// semantics: Prefix(n).Edges() must equal Dedup(raw prefix ++ static).
func TestPrefixMatchesRawRededup(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	raw := randomEdges(rng, 60)
	static := []fca.Edge{
		{From: "l.child", To: "l.parent", Kind: faults.ICFG,
			FromClass: faults.ClassDelay, ToClass: faults.ClassDelay,
			FromState: compat.State{DelayFault: true}, ToState: compat.State{DelayFault: true}},
	}
	g := graph.New()
	g.AddStatic(static)
	var marks []int
	for i, e := range raw {
		g.Add(e)
		if (i+1)%7 == 0 {
			g.Mark()
			marks = append(marks, i+1)
		}
	}
	g.Mark()
	for n := 0; n <= len(marks)+1; n++ {
		cut := 0
		if n > 0 && n <= len(marks) {
			cut = marks[n-1]
		} else if n > len(marks) {
			cut = len(raw)
		}
		want := fca.Dedup(append(append([]fca.Edge(nil), raw[:cut]...), static...))
		got := g.Prefix(n).Edges()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Prefix(%d) diverges from raw re-dedup at cut %d:\ngot %d edges, want %d", n, cut, len(got), len(want))
		}
	}
}

// TestPrefixIsImmutableUnderGrowth: a snapshot taken mid-stream must not
// see edges or evidence added afterwards.
func TestPrefixIsImmutableUnderGrowth(t *testing.T) {
	g := graph.New()
	g.Add(dynEdge("a", "b", faults.EI, "t", []trace.Occurrence{occ("s1")}, nil))
	g.Mark()
	snap := g.Prefix(1)
	before := snap.Edges()
	// Same identity: merges evidence into the parent's record. New
	// identity: appends. Neither may leak into the snapshot.
	g.Add(dynEdge("a", "b", faults.EI, "t", []trace.Occurrence{occ("s2")}, nil))
	g.Add(dynEdge("b", "c", faults.EI, "t", nil, nil))
	g.Mark()
	after := snap.Edges()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("snapshot changed under parent growth:\nbefore: %+v\nafter:  %+v", before, after)
	}
	if len(after) != 1 || len(after[0].FromState.Occ) != 1 {
		t.Fatalf("snapshot = %+v, want the single pre-snapshot edge with one occurrence", after)
	}
	if got := g.Edges(); len(got) != 2 || len(got[0].FromState.Occ) != 2 {
		t.Fatalf("parent = %+v, want 2 edges with merged evidence", got)
	}
}

func TestSealedSnapshotRejectsMutation(t *testing.T) {
	g := graph.New()
	g.Add(dynEdge("a", "b", faults.EI, "t", nil, nil))
	snap := g.Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a sealed snapshot must panic")
		}
	}()
	snap.Add(dynEdge("b", "c", faults.EI, "t", nil, nil))
}

// TestJSONGolden pins the wire format: schema changes must be deliberate
// (bump graph.Version and regenerate).
func TestJSONGolden(t *testing.T) {
	g := graph.New()
	g.SetSystem("demo")
	g.Add(dynEdge("d.a", "d.b", faults.EI, "t1",
		[]trace.Occurrence{occB([]string{"f", "g"}, sim.BranchEval{ID: "br1", Taken: true})},
		[]trace.Occurrence{occ("h")}))
	g.AddStatic([]fca.Edge{{
		From: "d.child", To: "d.parent", Kind: faults.ICFG,
		FromClass: faults.ClassDelay, ToClass: faults.ClassDelay,
		FromState: compat.State{DelayFault: true}, ToState: compat.State{DelayFault: true},
	}})
	g.SetScore("d.a", 0.25)
	g.SetNestGroup("d.child", 3)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"version":1,"system":"demo",` +
		`"faults":["d.a","d.b","d.child","d.parent"],"tests":["t1",""],` +
		`"edges":[{"f":0,"t":1,"k":2,"fc":0,"tc":0,"w":0,` +
		`"fo":[{"s":["f","g"],"b":[{"i":"br1","t":true}]}],"to":[{"s":["h"]}]}],` +
		`"static":[{"f":2,"t":3,"k":4,"fc":2,"tc":2,"w":1,"fd":true,"td":true}],` +
		`"scores":{"0":0.25},"nests":{"2":3}}`
	if string(data) != golden {
		t.Fatalf("wire format drifted:\ngot:  %s\nwant: %s", data, golden)
	}
}

// TestJSONRoundTrip: a loaded graph materializes the same edges, scores,
// nests, and system tag, and re-serializes byte-identically.
func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := graph.FromEdges(randomEdges(rng, 80))
	g.SetSystem("rt")
	g.AddStatic([]fca.Edge{{
		From: "f.0", To: "f.1", Kind: faults.CFG,
		FromClass: faults.ClassDelay, ToClass: faults.ClassDelay,
		FromState: compat.State{DelayFault: true}, ToState: compat.State{DelayFault: true},
	}})
	g.SetScore("f.0", 0.5)
	g.SetScore("f.3", 0.125)
	g.SetNestGroup("f.1", 1)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	g2 := graph.New()
	if err := json.Unmarshal(data, g2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("edges diverge after round trip")
	}
	if g2.System() != "rt" || g2.Score("f.0") != 0.5 || g2.Score("f.3") != 0.125 || g2.Score("f.2") != 1 {
		t.Fatalf("annotations lost: system=%q scores=%v/%v/%v", g2.System(), g2.Score("f.0"), g2.Score("f.3"), g2.Score("f.2"))
	}
	if !reflect.DeepEqual(g2.NestGroups(), map[faults.ID]int{"f.1": 1}) {
		t.Fatalf("nests = %v", g2.NestGroups())
	}
	data2, err := json.Marshal(g2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("re-serialization not byte-identical")
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	for name, doc := range map[string]string{
		"bad version":        `{"version":99,"faults":[],"tests":[],"edges":[]}`,
		"fault out of range": `{"version":1,"faults":["a"],"tests":["t"],"edges":[{"f":0,"t":5,"k":2,"fc":0,"tc":0,"w":0}]}`,
		"static in dynamic":  `{"version":1,"faults":["a","b"],"tests":[""],"edges":[{"f":0,"t":1,"k":4,"fc":2,"tc":2,"w":0}]}`,
		"kind out of range":  `{"version":1,"faults":["a","b"],"tests":["t"],"edges":[{"f":0,"t":1,"k":99,"fc":0,"tc":0,"w":0}]}`,
		"class out of range": `{"version":1,"faults":["a","b"],"tests":["t"],"edges":[{"f":0,"t":1,"k":2,"fc":7,"tc":0,"w":0}]}`,
		"garbage score key":  `{"version":1,"faults":["a","b"],"tests":["t"],"edges":[{"f":0,"t":1,"k":2,"fc":0,"tc":0,"w":0}],"scores":{"0junk":0.5}}`,
	} {
		g := graph.New()
		if err := json.Unmarshal([]byte(doc), g); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestMergeStitchesGraphs: merging two campaign graphs unions their
// edges (merging duplicate identities' evidence) and carries annotations.
func TestMergeStitchesGraphs(t *testing.T) {
	a := graph.New()
	a.SetSystem("sysA")
	a.Add(dynEdge("x", "y", faults.EI, "t1", []trace.Occurrence{occ("s1")}, nil))
	a.SetScore("x", 0.5)
	b := graph.New()
	b.SetSystem("sysB")
	b.Add(dynEdge("x", "y", faults.EI, "t1", []trace.Occurrence{occ("s2")}, nil)) // same identity
	b.Add(dynEdge("y", "x", faults.EI, "t2", nil, nil))
	b.SetScore("y", 0.25)

	m := graph.New()
	m.Merge(a)
	m.Merge(b)
	if m.Len() != 2 {
		t.Fatalf("merged edges = %d, want 2", m.Len())
	}
	xy := m.Edges()[0]
	if len(xy.FromState.Occ) != 2 {
		t.Fatalf("evidence not merged across graphs: %+v", xy.FromState)
	}
	if m.Score("x") != 0.5 || m.Score("y") != 0.25 {
		t.Fatalf("scores = %v, %v", m.Score("x"), m.Score("y"))
	}
	if m.System() != "sysA+sysB" {
		t.Fatalf("system = %q", m.System())
	}
}

// TestMergeOffsetsNestGroups: nest families from different campaigns must
// not collapse into one family just because both used small group ids.
func TestMergeOffsetsNestGroups(t *testing.T) {
	a := graph.New()
	a.Add(dynEdge("a1", "a2", faults.SD, "t", nil, nil))
	a.SetNestGroup("a1", 0)
	a.SetNestGroup("a2", 0)
	b := graph.New()
	b.Add(dynEdge("b1", "b2", faults.SD, "t", nil, nil))
	b.SetNestGroup("b1", 0)
	b.SetNestGroup("b2", 0)
	m := graph.New()
	m.Merge(a)
	m.Merge(b)
	groups := m.NestGroups()
	if groups["a1"] == groups["b1"] {
		t.Fatalf("families collided after merge: %v", groups)
	}
	if groups["a1"] != groups["a2"] || groups["b1"] != groups["b2"] {
		t.Fatalf("families split after merge: %v", groups)
	}
}

func TestIndexAdjacencyAndInterning(t *testing.T) {
	edges := []fca.Edge{
		dynEdge("a", "b", faults.EI, "t1", []trace.Occurrence{occ("s"), occ("s")}, nil),
		dynEdge("a", "c", faults.EI, "t1", nil, nil),
		dynEdge("b", "a", faults.EI, "t2", nil, nil),
	}
	g := graph.FromEdges(edges)
	ix := g.Index()
	if ix.N != 3 {
		t.Fatalf("N = %d", ix.N)
	}
	if len(ix.ByFrom[ix.From[0]]) != 2 {
		t.Fatalf("adjacency of 'a' = %v, want 2 departures", ix.ByFrom[ix.From[0]])
	}
	if len(ix.FromStack[0]) != 1 || len(ix.FromFull[0]) != 1 {
		t.Fatalf("duplicate occurrences must intern to one key: %v / %v", ix.FromStack[0], ix.FromFull[0])
	}
	if g.Index() != ix {
		t.Fatal("index not cached")
	}
}

// TestPrefixMarksExcludeLaterExperiments: a Prefix(n) snapshot reports
// exactly n experiment boundaries, even when later experiments found no
// edges and therefore share the cut value.
func TestPrefixMarksExcludeLaterExperiments(t *testing.T) {
	g := graph.New()
	g.Add(dynEdge("a", "b", faults.EI, "t", nil, nil))
	g.Mark() // experiment 1: 1 edge
	g.Mark() // experiment 2: no edges (same cut)
	g.Add(dynEdge("b", "c", faults.EI, "t", nil, nil))
	g.Mark() // experiment 3
	for n := 0; n <= 3; n++ {
		if got := len(g.Prefix(n).Marks()); got != n {
			t.Errorf("Prefix(%d).Marks() has %d entries, want %d", n, got, n)
		}
	}
	if got := len(g.Snapshot().Marks()); got != 3 {
		t.Errorf("Snapshot().Marks() has %d entries, want 3", got)
	}
}

// TestPrefixNegativeYieldsStaticOnly pins the documented n <= 0 contract
// (the legacy EdgesUpTo accepted any non-positive n).
func TestPrefixNegativeYieldsStaticOnly(t *testing.T) {
	g := graph.New()
	g.AddStatic([]fca.Edge{{
		From: "l.c", To: "l.p", Kind: faults.ICFG,
		FromClass: faults.ClassDelay, ToClass: faults.ClassDelay,
	}})
	g.Add(dynEdge("a", "b", faults.EI, "t", nil, nil))
	g.Mark()
	for _, n := range []int{-3, -1, 0} {
		p := g.Prefix(n)
		if p.Len() != 1 || len(p.Marks()) != 0 {
			t.Errorf("Prefix(%d): edges=%d marks=%d, want static-only with no marks", n, p.Len(), len(p.Marks()))
		}
	}
}

// TestMergeRemapsSharedNestFamilies: stitching two campaigns of the SAME
// system must keep each physical loop nest in one family -- families
// bridged by a commonly-annotated fault remap onto the target's id
// instead of being offset apart.
func TestMergeRemapsSharedNestFamilies(t *testing.T) {
	a := graph.New()
	a.Add(dynEdge("n.p", "n.c", faults.SD, "t1", nil, nil))
	a.SetNestGroup("n.p", 0)
	a.SetNestGroup("n.c", 0)
	b := graph.New()
	// Same system, second campaign: shares n.p, additionally saw n.c2.
	b.Add(dynEdge("n.p", "n.c2", faults.SD, "t2", nil, nil))
	b.SetNestGroup("n.p", 5) // arbitrary local id for the same physical nest
	b.SetNestGroup("n.c2", 5)
	m := graph.New()
	m.Merge(a)
	m.Merge(b)
	groups := m.NestGroups()
	if groups["n.p"] != groups["n.c"] || groups["n.p"] != groups["n.c2"] {
		t.Fatalf("shared nest split across families after merge: %v", groups)
	}
}

// TestPrefixZeroOnUnmarkedGraph: n <= 0 yields static-only even when the
// graph carries no experiment marks at all (FromEdges, loaded files).
func TestPrefixZeroOnUnmarkedGraph(t *testing.T) {
	g := graph.FromEdges([]fca.Edge{dynEdge("a", "b", faults.EI, "t", nil, nil)})
	if got := g.Prefix(0).Len(); got != 0 {
		t.Fatalf("Prefix(0) on unmarked graph has %d edges, want 0 (static only)", got)
	}
}
