// This file holds Window, the decaying evidence store behind online
// monitoring: a time-bucketed retention window over dynamic edge
// observations. Steady-state observations append straight into the live
// graph (producing the same raw-insertion sequence an offline campaign
// would), and when time advances past the retention horizon the window
// rebuilds the graph by replaying only the surviving observations in
// their original arrival order.
//
// Rebuild-by-replay is deliberate: in-place retraction of expired
// evidence cannot be equivalent to replay, because Add rejects evidence
// merges past trace.OccCap -- an observation rejected while old evidence
// held the cap is unrecoverable once that old evidence expires. Replay
// re-runs the cap admission over exactly the surviving stream, so the
// rebuilt graph is byte-equivalent to one that only ever saw the
// retained observations.
//
// Determinism contract: bucket assignment and eviction depend only on
// each observation's timestamp, never on how the stream was batched, so
// any batching of the same (edge, timestamp) stream yields identical
// graphs after every observation.
package graph

import (
	"time"

	"repro/internal/core/fca"
	"repro/internal/faults"
)

// windowObs is one retained dynamic-edge observation.
type windowObs struct {
	bucket int64
	edge   fca.Edge
}

// Window is a decaying store of dynamic edge evidence over a live graph.
// Zero value is not usable; construct with NewWindow. Not safe for
// concurrent use; callers (the monitor) serialize externally.
type Window struct {
	width   time.Duration // bucket width; 0 = unbounded (never evict)
	buckets int64

	g   *Graph
	obs []windowObs // retained observations, arrival order

	static []fca.Edge
	nests  map[faults.ID]int
	scores map[faults.ID]float64
	system string

	cur    int64 // highest bucket observed
	seeded bool  // cur is valid

	rebuilds int
	evicted  int
	stale    int
}

// NewWindow builds a window retaining span of evidence in the given
// number of decay buckets (minimum 1). span = 0 disables decay: the
// window retains everything, and the graph is the plain accumulation of
// every observation -- the configuration equivalence tests replay under.
func NewWindow(span time.Duration, buckets int) *Window {
	if buckets < 1 {
		buckets = 1
	}
	var width time.Duration
	if span > 0 {
		width = span / time.Duration(buckets)
		if width <= 0 {
			width = time.Nanosecond
		}
	}
	return &Window{width: width, buckets: int64(buckets), g: New()}
}

// Graph returns the live graph the window maintains. The pointer is
// invalidated by the next eviction (the graph is rebuilt, not mutated);
// callers re-fetch after every Observe that reports a rebuild.
func (w *Window) Graph() *Graph { return w.g }

// SetSystem records the originating system name.
func (w *Window) SetSystem(name string) {
	w.system = name
	w.g.SetSystem(name)
}

// AddStatic inserts a static connector edge. Static edges carry no
// timestamp and survive every eviction.
func (w *Window) AddStatic(e fca.Edge) {
	w.static = append(w.static, e)
	w.g.AddStatic([]fca.Edge{e})
}

// SetNestGroup records a loop-nest family annotation. It is retained
// across rebuilds and applied to the live graph (a no-op until the
// fault appears in an edge; Annotate re-applies pending entries).
func (w *Window) SetNestGroup(f faults.ID, group int) {
	if w.nests == nil {
		w.nests = make(map[faults.ID]int)
	}
	w.nests[f] = group
	w.g.SetNestGroup(f, group)
}

// SetScore records a SimScore annotation, retained across rebuilds.
func (w *Window) SetScore(f faults.ID, score float64) {
	if w.scores == nil {
		w.scores = make(map[faults.ID]float64)
	}
	w.scores[f] = score
	w.g.SetScore(f, score)
}

// Annotate re-applies every retained nest/score annotation to the live
// graph. Graph annotations silently skip faults not yet interned, so
// the monitor calls this before each search: an annotation that arrived
// before its fault's first edge becomes effective as soon as the fault
// appears.
func (w *Window) Annotate() {
	for f, grp := range w.nests {
		w.g.SetNestGroup(f, grp)
	}
	for f, s := range w.scores {
		w.g.SetScore(f, s)
	}
}

// bucketOf maps a timestamp to its bucket index (floor division, so
// pre-epoch timestamps still order correctly).
func (w *Window) bucketOf(at time.Time) int64 {
	ns := at.UnixNano()
	width := int64(w.width)
	b := ns / width
	if ns%width < 0 {
		b--
	}
	return b
}

// Observe folds one dynamic edge observation stamped at into the
// window. accepted reports whether the observation entered the graph
// (false when it predates the retention horizon); rebuilt reports
// whether advancing time evicted a bucket and replaced the graph.
// Static-kind edges are routed to AddStatic and never expire.
func (w *Window) Observe(e fca.Edge, at time.Time) (accepted, rebuilt bool) {
	if e.Kind.Static() {
		w.AddStatic(e)
		return true, false
	}
	if w.width == 0 {
		// Unbounded: no retention bookkeeping, the graph is append-only.
		w.g.Add(e)
		return true, false
	}
	b := w.bucketOf(at)
	if !w.seeded || b > w.cur {
		w.cur = b
		w.seeded = true
	}
	min := w.cur - w.buckets + 1
	if b < min {
		// Too old for the window that newer observations already advanced
		// past: dropping is the only batch-size-independent choice.
		w.stale++
		return false, rebuilt
	}
	if w.evict(min) {
		rebuilt = true
	}
	w.obs = append(w.obs, windowObs{bucket: b, edge: e})
	w.g.Add(e)
	return true, rebuilt
}

// evict drops retained observations below the min bucket and, if any
// were dropped, rebuilds the graph by replaying the survivors.
func (w *Window) evict(min int64) bool {
	keep := w.obs[:0]
	dropped := 0
	for _, o := range w.obs {
		if o.bucket >= min {
			keep = append(keep, o)
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		return false
	}
	// Zero the tail so evicted edges don't pin their evidence alive.
	for i := len(keep); i < len(w.obs); i++ {
		w.obs[i] = windowObs{}
	}
	w.obs = keep
	w.evicted += dropped
	w.rebuild()
	return true
}

// rebuild replays the retained observations into a fresh graph: static
// edges first (matching the harness's construction order), then every
// surviving dynamic observation in arrival order, then the annotations.
func (w *Window) rebuild() {
	g := New()
	g.SetSystem(w.system)
	g.AddStatic(w.static)
	for _, o := range w.obs {
		g.Add(o.edge)
	}
	w.g = g
	w.Annotate()
	w.rebuilds++
}

// Retained returns the number of observations currently in the window.
func (w *Window) Retained() int {
	if w.width == 0 {
		return w.g.RawLen()
	}
	return len(w.obs)
}

// Rebuilds returns how many evictions have replaced the graph.
func (w *Window) Rebuilds() int { return w.rebuilds }

// Evicted returns the total observations dropped by expiry.
func (w *Window) Evicted() int { return w.evicted }

// Stale returns the observations rejected for predating the window.
func (w *Window) Stale() int { return w.stale }
