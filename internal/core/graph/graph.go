// Package graph is the interned causal-graph core of the detector: the
// first-class, indexed, serializable form of the causal edge set that the
// whole pipeline (harness accumulation, beam search, report tables,
// cross-campaign stitching) operates on.
//
// A Graph interns fault ids, workload (test) names, and occurrence state
// keys -- the sorted stack-only and stack+branch keys the compatibility
// check compares -- into dense integer ids exactly once, at insertion.
// Edges are deduplicated by construction: adding an edge whose identity
// (From, To, Kind, Test) is already present merges its occurrence
// evidence into the existing record (capped at trace.OccCap), mirroring
// the legacy batch fca.Dedup semantics. Every dynamic insertion carries a
// raw sequence number and Mark records experiment boundaries, so Prefix
// produces cheap snapshots equivalent to re-deduplicating a raw-stream
// prefix -- without copying or re-keying the raw stream.
//
// Graphs round-trip to JSON (including per-fault SimScores and loop-nest
// families, so a persisted graph is re-searchable in isolation) and Merge
// stitches graphs from multiple campaigns or systems into one.
package graph

import (
	"sort"
	"strings"

	"repro/internal/core/compat"
	"repro/internal/core/fca"
	"repro/internal/faults"
	"repro/internal/trace"
)

// edgeKey is the interned identity of an edge: the dense equivalent of
// the legacy fca.Edge.Key() string.
type edgeKey struct {
	from, to int32
	kind     faults.EdgeKind
	test     int32
}

// occEntry is one piece of occurrence evidence attached to an edge
// endpoint, tagged with the raw insertion sequence that contributed it so
// prefix snapshots can filter evidence without replaying the raw stream.
type occEntry struct {
	seq      int
	occ      trace.Occurrence
	stackKey int32
	fullKey  int32
}

// edgeRec is the interned edge record.
type edgeRec struct {
	from, to  int32
	kind      faults.EdgeKind
	fromClass faults.FaultClass
	toClass   faults.FaultClass
	test      int32
	fromDelay bool
	toDelay   bool
	firstSeq  int // raw sequence of the first insertion (-1 for static)
	// lastSeq is the raw sequence of the last insertion that actually
	// extended this record's evidence (== firstSeq until a merge grows an
	// occ list). Deltas and incremental index refreshes use it to decide
	// which records a window of insertions touched; merges rejected by the
	// evidence cap do not advance it, because they cannot change any
	// derived state (key sets, materialized edges, match outcomes).
	lastSeq int
	fromOcc []occEntry
	toOcc   []occEntry
}

// Graph is the interned causal-edge store. The zero value is not usable;
// construct with New or FromEdges. A Graph is not safe for concurrent
// mutation; callers (the harness driver) serialize Add/Mark externally.
// Snapshots returned by Prefix/Snapshot are sealed: they reject further
// mutation but may be read, annotated, indexed, and serialized freely,
// concurrently with continued growth of their parent.
type Graph struct {
	// interning tables. Sealed snapshots capture the slice headers (the
	// parent only ever appends, so shared backing stays valid) and copy
	// the small fault lookup map; they drop the key/test lookup maps.
	faultIDs []faults.ID
	faultIdx map[faults.ID]int32
	keys     []string
	keyIdx   map[string]int32
	tests    []string
	testIdx  map[string]int32

	dyn    []edgeRec         // dynamic edges, first-discovery order
	static []edgeRec         // static ICFG/CFG edges, ordered after every dynamic edge
	byKey  map[edgeKey]int32 // +1 offset into dyn, or -(i+1) into static; nil once sealed

	marks []int // raw-sequence boundary after each experiment (Mark call)
	seq   int   // raw dynamic insertions so far

	system    string
	scores    map[int32]float64
	nestGroup map[int32]int

	sealed bool
	// Cached search index plus the watermarks it was built at. Dynamic
	// staleness is measured by raw sequence (ixSeq vs seq): a stale index
	// is refreshed in place of a full rebuild by reusing every entry whose
	// record the window did not touch. staticGen counts static-section
	// changes (appends or evidence growth), which are rare and force a
	// full rebuild.
	ix        *Index
	ixSeq     int
	ixStatics int
	staticGen int
}

// New returns an empty mutable graph.
func New() *Graph {
	return &Graph{
		faultIdx: make(map[faults.ID]int32),
		keyIdx:   make(map[string]int32),
		testIdx:  make(map[string]int32),
		byKey:    make(map[edgeKey]int32),
	}
}

// FromEdges builds a graph from a flat edge slice, interning and
// deduplicating in one pass. Static ICFG/CFG edges are routed to the
// static section so ordering matches a driver-accumulated graph.
func FromEdges(edges []fca.Edge) *Graph {
	g := New()
	g.AddAll(edges)
	return g
}

// SetSystem records the originating system name (persisted).
func (g *Graph) SetSystem(name string) { g.system = name }

// System returns the recorded system name ("" when unset; merged graphs
// join the distinct names with "+").
func (g *Graph) System() string { return g.system }

// mutable panics when the graph is a sealed snapshot.
func (g *Graph) mutable(op string) {
	if g.sealed {
		panic("graph: " + op + " on sealed snapshot")
	}
}

func (g *Graph) internFault(id faults.ID) int32 {
	if i, ok := g.faultIdx[id]; ok {
		return i
	}
	i := int32(len(g.faultIDs))
	g.faultIDs = append(g.faultIDs, id)
	g.faultIdx[id] = i
	return i
}

func (g *Graph) internKey(k string) int32 {
	if i, ok := g.keyIdx[k]; ok {
		return i
	}
	i := int32(len(g.keys))
	g.keys = append(g.keys, k)
	g.keyIdx[k] = i
	return i
}

func (g *Graph) internTest(t string) int32 {
	if i, ok := g.testIdx[t]; ok {
		return i
	}
	i := int32(len(g.tests))
	g.tests = append(g.tests, t)
	g.testIdx[t] = i
	return i
}

// occKeys canonicalises one occurrence into its stack-only and
// stack+branch key strings -- computed exactly once, at insertion.
func occKeys(o trace.Occurrence) (stack, full string) {
	stack = strings.Join(o.Stack, ">")
	var b strings.Builder
	b.Grow(len(stack) + 1 + 8*len(o.Branches))
	b.WriteString(stack)
	b.WriteByte('|')
	for _, be := range o.Branches {
		b.WriteString(be.ID)
		if be.Taken {
			b.WriteString("=T;")
		} else {
			b.WriteString("=F;")
		}
	}
	return stack, b.String()
}

func (g *Graph) internOcc(seq int, occ []trace.Occurrence) []occEntry {
	if len(occ) == 0 {
		return nil
	}
	out := make([]occEntry, len(occ))
	for i, o := range occ {
		sk, fk := occKeys(o)
		out[i] = occEntry{seq: seq, occ: o, stackKey: g.internKey(sk), fullKey: g.internKey(fk)}
	}
	return out
}

// mergeInto appends evidence while the accepted total stays under
// trace.OccCap, mirroring fca.Dedup's mergeOcc (the first insertion's
// evidence is kept whole even if it already exceeds the cap; later
// evidence is interned only if accepted).
func (g *Graph) mergeInto(dst []occEntry, seq int, occ []trace.Occurrence) []occEntry {
	for _, o := range occ {
		if len(dst) >= trace.OccCap {
			break
		}
		sk, fk := occKeys(o)
		dst = append(dst, occEntry{seq: seq, occ: o, stackKey: g.internKey(sk), fullKey: g.internKey(fk)})
	}
	return dst
}

// Add inserts one dynamic edge, merging occurrence evidence when the edge
// identity is already present. Static ICFG/CFG edges are routed to
// AddStatic so that materialization order (dynamic first, then static)
// matches the legacy Dedup(dynamic ++ static) layout.
func (g *Graph) Add(e fca.Edge) {
	g.mutable("Add")
	if e.Kind.Static() {
		g.addStatic(e)
		return
	}
	seq := g.seq
	g.seq++
	k := edgeKey{
		from: g.internFault(e.From),
		to:   g.internFault(e.To),
		kind: e.Kind,
		test: g.internTest(e.Test),
	}
	if ref, ok := g.byKey[k]; ok && ref > 0 {
		r := &g.dyn[ref-1]
		nf, nt := len(r.fromOcc), len(r.toOcc)
		r.fromOcc = g.mergeInto(r.fromOcc, seq, e.FromState.Occ)
		r.toOcc = g.mergeInto(r.toOcc, seq, e.ToState.Occ)
		if len(r.fromOcc) > nf || len(r.toOcc) > nt {
			r.lastSeq = seq
		}
		return
	}
	g.dyn = append(g.dyn, edgeRec{
		from: k.from, to: k.to, kind: e.Kind,
		fromClass: e.FromClass, toClass: e.ToClass,
		test:      k.test,
		fromDelay: e.FromState.DelayFault,
		toDelay:   e.ToState.DelayFault,
		firstSeq:  seq,
		lastSeq:   seq,
		fromOcc:   g.internOcc(seq, e.FromState.Occ),
		toOcc:     g.internOcc(seq, e.ToState.Occ),
	})
	g.byKey[k] = int32(len(g.dyn)) // +1 offset
}

// AddAll inserts a batch of edges in order.
func (g *Graph) AddAll(edges []fca.Edge) {
	for _, e := range edges {
		g.Add(e)
	}
}

// AddStatic inserts static ICFG/CFG loop edges. They carry no raw
// sequence (every prefix snapshot includes them, as EdgesUpTo always
// appended the static set) and order after all dynamic edges.
func (g *Graph) AddStatic(edges []fca.Edge) {
	g.mutable("AddStatic")
	for _, e := range edges {
		g.addStatic(e)
	}
}

func (g *Graph) addStatic(e fca.Edge) {
	g.staticGen++
	k := edgeKey{
		from: g.internFault(e.From),
		to:   g.internFault(e.To),
		kind: e.Kind,
		test: g.internTest(e.Test),
	}
	if ref, ok := g.byKey[k]; ok && ref < 0 {
		r := &g.static[-ref-1]
		r.fromOcc = g.mergeInto(r.fromOcc, -1, e.FromState.Occ)
		r.toOcc = g.mergeInto(r.toOcc, -1, e.ToState.Occ)
		return
	}
	g.static = append(g.static, edgeRec{
		from: k.from, to: k.to, kind: e.Kind,
		fromClass: e.FromClass, toClass: e.ToClass,
		test:      k.test,
		fromDelay: e.FromState.DelayFault,
		toDelay:   e.ToState.DelayFault,
		firstSeq:  -1,
		lastSeq:   -1,
	})
	g.byKey[k] = -int32(len(g.static)) // -(i+1) offset
}

// Mark records an experiment boundary: the prefix ending here is
// addressable via Prefix. Equivalent to the legacy driver's marks slice.
func (g *Graph) Mark() {
	g.mutable("Mark")
	g.marks = append(g.marks, g.seq)
}

// Marks returns the cumulative raw dynamic-edge count after each Mark
// call, in call order (the legacy Driver.Marks contract).
func (g *Graph) Marks() []int {
	return append([]int(nil), g.marks...)
}

// Len returns the number of unique edges (dynamic + static).
func (g *Graph) Len() int { return len(g.dyn) + len(g.static) }

// DynLen returns the number of unique dynamic edges: the size of the
// logical-index prefix that is stable as the graph grows (static edges
// order after it and shift with every new dynamic record).
func (g *Graph) DynLen() int { return len(g.dyn) }

// RawLen returns the number of raw dynamic insertions (pre-dedup).
func (g *Graph) RawLen() int { return g.seq }

// NumFaults returns the number of interned fault ids.
func (g *Graph) NumFaults() int { return len(g.faultIDs) }

// NumKeys returns the number of interned occurrence state keys.
func (g *Graph) NumKeys() int { return len(g.keys) }

// rec returns the record at logical index i (dynamic section first).
func (g *Graph) rec(i int) *edgeRec {
	if i < len(g.dyn) {
		return &g.dyn[i]
	}
	return &g.static[i-len(g.dyn)]
}

// materialize converts a record back to the flat fca.Edge form.
func (g *Graph) materialize(r *edgeRec) fca.Edge {
	return fca.Edge{
		From: g.faultIDs[r.from], To: g.faultIDs[r.to],
		Kind:      r.kind,
		FromClass: r.fromClass, ToClass: r.toClass,
		Test:      g.tests[r.test],
		FromState: compat.State{Occ: occList(r.fromOcc), DelayFault: r.fromDelay},
		ToState:   compat.State{Occ: occList(r.toOcc), DelayFault: r.toDelay},
	}
}

func occList(entries []occEntry) []trace.Occurrence {
	if len(entries) == 0 {
		return nil
	}
	out := make([]trace.Occurrence, len(entries))
	for i, e := range entries {
		out[i] = e.occ
	}
	return out
}

// EdgeAt materializes the edge at logical index i.
func (g *Graph) EdgeAt(i int) fca.Edge { return g.materialize(g.rec(i)) }

// Edges materializes every unique edge in logical order: dynamic edges in
// first-discovery order followed by the static loop edges -- byte-for-byte
// the order and evidence the legacy fca.Dedup(dynamic ++ static) produced.
func (g *Graph) Edges() []fca.Edge {
	out := make([]fca.Edge, 0, g.Len())
	for i := 0; i < g.Len(); i++ {
		out = append(out, g.materialize(g.rec(i)))
	}
	return out
}

// Snapshot returns a sealed copy-on-read view of the whole graph,
// including dynamic edges added after the last Mark. The snapshot shares
// the parent's interned tables (append-only) and evidence, so it is cheap
// and safe to read while the parent keeps growing under the caller's lock
// discipline.
func (g *Graph) Snapshot() *Graph { return g.prefixSeq(g.seq, len(g.marks)) }

// Prefix returns a sealed snapshot of the first n experiments (Mark
// boundaries) plus all static edges: the incremental replacement for the
// EdgesUpTo copy-and-rededup dance. n <= 0 yields only static edges;
// n >= len(Marks()) yields the full graph.
func (g *Graph) Prefix(n int) *Graph {
	if n <= 0 {
		// Checked first: on a graph with no marks at all (FromEdges, a
		// loaded file) the full-graph shortcut below would otherwise
		// swallow n = 0 and violate the static-only contract.
		return g.prefixSeq(0, 0)
	}
	if n >= len(g.marks) {
		return g.Snapshot()
	}
	return g.prefixSeq(g.marks[n-1], n)
}

// prefixSeq builds the sealed snapshot with raw-sequence cut, carrying
// the first nMarks experiment boundaries (later zero-edge experiments
// share the cut value but are not part of the prefix). Edge records
// first seen at or after the cut are dropped; surviving records keep
// only evidence contributed before the cut.
func (g *Graph) prefixSeq(cut, nMarks int) *Graph {
	s := &Graph{
		faultIDs: g.faultIDs, // slice headers captured; parent only appends
		keys:     g.keys,
		tests:    g.tests,
		faultIdx: make(map[faults.ID]int32, len(g.faultIdx)),
		system:   g.system,
		seq:      cut,
		sealed:   true,
	}
	for id, i := range g.faultIdx {
		s.faultIdx[id] = i
	}
	s.marks = append([]int(nil), g.marks[:nMarks]...)
	// Records are struct-copied so that later in-place evidence merges on
	// the parent never alias the snapshot's slice headers.
	if cut >= g.seq {
		s.dyn = append([]edgeRec(nil), g.dyn...)
	} else {
		for i := range g.dyn {
			r := &g.dyn[i]
			if r.firstSeq >= cut {
				// dyn is in first-discovery order: everything after is newer.
				break
			}
			s.dyn = append(s.dyn, filterRec(r, cut))
		}
	}
	s.static = append([]edgeRec(nil), g.static...)
	if cut >= g.seq && g.ixFresh() {
		// A full snapshot is structurally identical to its parent: share
		// the parent's (read-only) index so per-round searches of anytime
		// campaigns do not rebuild it from scratch.
		s.ix = g.ix
		s.ixSeq = s.seq
	}
	if g.scores != nil {
		s.scores = make(map[int32]float64, len(g.scores))
		for k, v := range g.scores {
			s.scores[k] = v
		}
	}
	if g.nestGroup != nil {
		s.nestGroup = make(map[int32]int, len(g.nestGroup))
		for k, v := range g.nestGroup {
			s.nestGroup[k] = v
		}
	}
	return s
}

// filterRec copies r with evidence restricted to seq < cut. The occ cap
// is monotone in seq order, so the filtered list equals what incremental
// merging of the raw prefix would have accepted.
func filterRec(r *edgeRec, cut int) edgeRec {
	out := *r
	out.fromOcc = filterOcc(r.fromOcc, cut)
	out.toOcc = filterOcc(r.toOcc, cut)
	out.lastSeq = out.firstSeq
	for _, entries := range [2][]occEntry{out.fromOcc, out.toOcc} {
		if n := len(entries); n > 0 && entries[n-1].seq > out.lastSeq {
			out.lastSeq = entries[n-1].seq
		}
	}
	return out
}

func filterOcc(entries []occEntry, cut int) []occEntry {
	n := len(entries)
	for n > 0 && entries[n-1].seq >= cut {
		n--
	}
	if n == 0 {
		return nil
	}
	return entries[:n:n]
}

// Merge stitches another graph into g: o's dynamic edges are re-added
// (each counts as one raw insertion, evidence merging under the cap) and
// its static edges join the static section. Scores and nest families
// merge with first-writer-wins on conflicting faults; nest group ids from
// o are offset so families from different campaigns never collide.
func (g *Graph) Merge(o *Graph) {
	g.mutable("Merge")
	for i := range o.dyn {
		g.Add(o.materialize(&o.dyn[i]))
	}
	for i := range o.static {
		g.addStatic(o.materialize(&o.static[i]))
	}
	g.Mark()
	if len(o.scores) > 0 {
		for fi, sc := range o.scores {
			id := o.faultIDs[fi]
			if _, ok := g.scoreOf(id); !ok {
				g.SetScore(id, sc)
			}
		}
	}
	if len(o.nestGroup) > 0 {
		next := 0
		for _, grp := range g.nestGroup {
			if grp >= next {
				next = grp + 1
			}
		}
		// Families shared with g (via a commonly-annotated fault, e.g. when
		// stitching two campaigns of the same system) keep g's id, so a
		// physical loop nest never splits across ids; families new to g get
		// fresh ids so nests from different systems never collide. Both
		// passes walk o's dense fault table in order for determinism.
		remap := make(map[int]int)
		for fi := range o.faultIDs {
			grp, ok := o.nestGroup[int32(fi)]
			if !ok {
				continue
			}
			if _, mapped := remap[grp]; mapped {
				continue
			}
			if gi, interned := g.faultIdx[o.faultIDs[fi]]; interned {
				if ggrp, exists := g.nestGroup[gi]; exists {
					remap[grp] = ggrp
				}
			}
		}
		for fi := range o.faultIDs {
			grp, ok := o.nestGroup[int32(fi)]
			if !ok {
				continue
			}
			id := o.faultIDs[fi]
			gi, interned := g.faultIdx[id]
			if !interned {
				continue // edge-less fault: nothing to annotate
			}
			if _, exists := g.nestGroup[gi]; exists {
				continue // first writer wins
			}
			m, mapped := remap[grp]
			if !mapped {
				m = next
				next++
				remap[grp] = m
			}
			g.SetNestGroup(id, m)
		}
	}
	if o.system != "" && o.system != g.system {
		if g.system == "" {
			g.system = o.system
		} else {
			g.system = g.system + "+" + o.system
		}
	}
}

// SetScore annotates a fault with its cluster SimScore (§5.2). Faults
// that never appear in an edge are ignored: scores are only consulted for
// edge sources.
func (g *Graph) SetScore(f faults.ID, score float64) {
	i, ok := g.faultIdx[f]
	if !ok {
		return
	}
	if g.scores == nil {
		g.scores = make(map[int32]float64)
	}
	g.scores[i] = score
}

func (g *Graph) scoreOf(f faults.ID) (float64, bool) {
	if i, ok := g.faultIdx[f]; ok {
		if s, ok := g.scores[i]; ok {
			return s, true
		}
	}
	return 1, false
}

// Score returns the annotated SimScore of f, defaulting to 1 (the
// no-cluster-information score).
func (g *Graph) Score(f faults.ID) float64 {
	s, _ := g.scoreOf(f)
	return s
}

// ScoreFunc returns the per-fault score lookup for the beam search.
func (g *Graph) ScoreFunc() func(faults.ID) float64 { return g.Score }

// SetNestGroup annotates a fault with its loop-nest family (used to drop
// structural single-nest cycles). Edge-less faults are ignored.
func (g *Graph) SetNestGroup(f faults.ID, group int) {
	i, ok := g.faultIdx[f]
	if !ok {
		return
	}
	if g.nestGroup == nil {
		g.nestGroup = make(map[int32]int)
	}
	g.nestGroup[i] = group
}

// NestGroups returns the annotated loop-nest families keyed by fault id
// (nil when none were recorded).
func (g *Graph) NestGroups() map[faults.ID]int {
	if len(g.nestGroup) == 0 {
		return nil
	}
	out := make(map[faults.ID]int, len(g.nestGroup))
	for i, grp := range g.nestGroup {
		out[g.faultIDs[i]] = grp
	}
	return out
}

// Index is the search-ready columnar view of a graph: dense fault ids,
// interned key-id sets, and a From-indexed adjacency. Building it touches
// no strings; the beam search matches entirely on integers.
type Index struct {
	N         int
	From, To  []int32
	Kind      []faults.EdgeKind
	FromClass []faults.FaultClass
	ToClass   []faults.FaultClass
	FromDelay []bool
	ToDelay   []bool
	Connector []bool
	// Sorted unique interned key-id sets per edge endpoint.
	FromStack, FromFull [][]int32
	ToStack, ToFull     [][]int32
	// ByFrom maps a dense fault id to the logical indices of edges
	// departing it.
	ByFrom [][]int32
	// FaultOf maps dense fault ids back to fault identifiers.
	FaultOf []faults.ID
	// Edges is the materialized flat form, aligned with the columnar
	// arrays, for rendering found cycles. Treat it as read-only: it is
	// cached per graph version and shared across searches.
	Edges []fca.Edge
}

// ixFresh reports whether the cached index still describes the graph.
func (g *Graph) ixFresh() bool {
	return g.ix != nil && g.ixSeq == g.seq && g.ixStatics == g.staticGen
}

// Index returns (building and caching on first use) the columnar search
// view. A cached index left stale by dynamic insertions is refreshed
// delta-aware: entries of records the insertion window did not touch are
// reused (no key-set recomputation, no evidence re-materialization), only
// new and evidence-extended records are filled from scratch. Static-
// section changes (rare: Merge, construction) force a full rebuild.
func (g *Graph) Index() *Index {
	if g.ixFresh() {
		return g.ix
	}
	if g.ix != nil && g.ixStatics == g.staticGen {
		g.ix = g.updateIndex(g.ix, g.ixSeq)
	} else {
		g.ix = g.buildIndex()
	}
	g.ixSeq = g.seq
	g.ixStatics = g.staticGen
	return g.ix
}

// newIndexShell allocates an index with empty columns of length n.
func (g *Graph) newIndexShell(n int) *Index {
	return &Index{
		N:         n,
		From:      make([]int32, n),
		To:        make([]int32, n),
		Kind:      make([]faults.EdgeKind, n),
		FromClass: make([]faults.FaultClass, n),
		ToClass:   make([]faults.FaultClass, n),
		FromDelay: make([]bool, n),
		ToDelay:   make([]bool, n),
		Connector: make([]bool, n),
		FromStack: make([][]int32, n),
		FromFull:  make([][]int32, n),
		ToStack:   make([][]int32, n),
		ToFull:    make([][]int32, n),
		ByFrom:    make([][]int32, len(g.faultIDs)),
		FaultOf:   g.faultIDs,
		Edges:     make([]fca.Edge, n),
	}
}

// fillIndexAt computes entry i of the index from its record: the only
// place per-edge derived state (key sets, the materialized edge) is born.
func (g *Graph) fillIndexAt(ix *Index, i int, r *edgeRec) {
	ix.From[i], ix.To[i] = r.from, r.to
	ix.Kind[i] = r.kind
	ix.FromClass[i], ix.ToClass[i] = r.fromClass, r.toClass
	ix.FromDelay[i], ix.ToDelay[i] = r.fromDelay, r.toDelay
	ix.Connector[i] = r.kind.Static()
	ix.FromStack[i], ix.FromFull[i] = keySets(r.fromOcc)
	ix.ToStack[i], ix.ToFull[i] = keySets(r.toOcc)
	ix.Edges[i] = g.materialize(r)
}

// copyIndexAt moves entry j of src to entry i of dst. Inner slices (key
// sets, occurrence lists) are immutable once built, so sharing them across
// index generations is safe.
func copyIndexAt(dst *Index, i int, src *Index, j int) {
	dst.From[i], dst.To[i] = src.From[j], src.To[j]
	dst.Kind[i] = src.Kind[j]
	dst.FromClass[i], dst.ToClass[i] = src.FromClass[j], src.ToClass[j]
	dst.FromDelay[i], dst.ToDelay[i] = src.FromDelay[j], src.ToDelay[j]
	dst.Connector[i] = src.Connector[j]
	dst.FromStack[i], dst.FromFull[i] = src.FromStack[j], src.FromFull[j]
	dst.ToStack[i], dst.ToFull[i] = src.ToStack[j], src.ToFull[j]
	dst.Edges[i] = src.Edges[j]
}

func (g *Graph) buildIndex() *Index {
	n := g.Len()
	ix := g.newIndexShell(n)
	for i := 0; i < n; i++ {
		r := g.rec(i)
		g.fillIndexAt(ix, i, r)
		ix.ByFrom[r.from] = append(ix.ByFrom[r.from], int32(i))
	}
	return ix
}

// updateIndex refreshes a stale base index built at raw-sequence baseSeq,
// with an unchanged static section. Dynamic records the window [baseSeq,
// seq) touched -- plus the records it added -- are refilled; everything
// else, including the static tail (whose logical indices shift as the
// dynamic section grows), is copied entry-wise from the base. ByFrom is
// rebuilt, as new edges may depart any fault.
func (g *Graph) updateIndex(base *Index, baseSeq int) *Index {
	n := g.Len()
	nDyn := len(g.dyn)
	baseDyn := base.N - len(g.static)
	ix := g.newIndexShell(n)
	for i := 0; i < n; i++ {
		switch {
		case i < nDyn && (i >= baseDyn || g.dyn[i].lastSeq >= baseSeq):
			g.fillIndexAt(ix, i, &g.dyn[i])
		case i < nDyn:
			copyIndexAt(ix, i, base, i)
		default:
			copyIndexAt(ix, i, base, baseDyn+(i-nDyn))
		}
		ix.ByFrom[ix.From[i]] = append(ix.ByFrom[ix.From[i]], int32(i))
	}
	return ix
}

// keySets collects the sorted unique stack-only and stack+branch key ids
// of an endpoint's evidence. Entry counts are capped at trace.OccCap, so
// this is a handful of integer comparisons per edge.
func keySets(entries []occEntry) (stack, full []int32) {
	if len(entries) == 0 {
		return nil, nil
	}
	stack = make([]int32, 0, len(entries))
	full = make([]int32, 0, len(entries))
	for _, e := range entries {
		stack = insertSorted(stack, e.stackKey)
		full = insertSorted(full, e.fullKey)
	}
	return stack, full
}

// insertSorted inserts v into sorted set s, keeping it sorted and unique.
func insertSorted(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
