package graph

import (
	"repro/internal/core/fca"
	"repro/internal/trace"
)

// Shard is a private, lock-free accumulation buffer for one worker's
// slice of a wave: the parallel executor folds each experiment's edges
// and marks into its own Shard with no shared state, then the wave-seal
// step replays every shard into the campaign Graph -- in deterministic
// experiment order, under the driver lock -- via MergeShard.
//
// The expensive per-occurrence work (canonicalising stacks and branch
// vectors into their intern-key strings, see occKeys) happens here, on
// the worker, outside any lock. MergeShard then replays the exact
// Add/Mark call sequence the serial path would have issued, reusing the
// precomputed strings: the intern tables, raw sequence numbers, OccCap
// evidence merges, and Prefix snapshots all come out byte-identical to
// serial accumulation, while the critical section shrinks to map
// lookups and appends.
//
// A Shard is not safe for concurrent use; each worker owns its own.
type Shard struct {
	ops []shardOp
}

// occKeyStrings holds the precomputed stack-only and stack+branch key
// strings for one occurrence -- the worker-side stack-intern cache that
// MergeShard promotes into the graph's intern table on acceptance.
type occKeyStrings struct {
	stack, full string
}

type shardOp struct {
	mark bool // a Mark boundary; edge fields unused
	edge fca.Edge
	// Key strings aligned 1:1 with edge.FromState.Occ / ToState.Occ.
	// nil for static edges (rare; replayed through addStatic as-is).
	fromKeys, toKeys []occKeyStrings
}

// Add buffers one edge, precomputing its occurrence key strings.
func (s *Shard) Add(e fca.Edge) {
	op := shardOp{edge: e}
	if !e.Kind.Static() {
		op.fromKeys = precomputeKeys(e.FromState.Occ)
		op.toKeys = precomputeKeys(e.ToState.Occ)
	}
	s.ops = append(s.ops, op)
}

// AddAll buffers a batch of edges in order.
func (s *Shard) AddAll(edges []fca.Edge) {
	for _, e := range edges {
		s.Add(e)
	}
}

// Mark buffers an experiment boundary.
func (s *Shard) Mark() {
	s.ops = append(s.ops, shardOp{mark: true})
}

// Ops returns the number of buffered operations (edges + marks).
func (s *Shard) Ops() int { return len(s.ops) }

func precomputeKeys(occ []trace.Occurrence) []occKeyStrings {
	if len(occ) == 0 {
		return nil
	}
	out := make([]occKeyStrings, len(occ))
	for i, o := range occ {
		out[i].stack, out[i].full = occKeys(o)
	}
	return out
}

// MergeShard replays a worker shard into g under the caller's lock
// discipline, issuing exactly the Add/Mark sequence the serial path
// would have: one raw sequence number per dynamic edge, evidence merged
// under trace.OccCap, key strings interned only for accepted
// occurrences (and in the same order), static edges routed to the
// static section. Replaying shards in deterministic experiment order
// therefore yields a graph byte-identical to serial accumulation.
func (g *Graph) MergeShard(s *Shard) {
	g.mutable("MergeShard")
	for i := range s.ops {
		op := &s.ops[i]
		switch {
		case op.mark:
			g.marks = append(g.marks, g.seq)
		case op.edge.Kind.Static():
			g.addStatic(op.edge)
		default:
			g.addPrekeyed(&op.edge, op.fromKeys, op.toKeys)
		}
	}
}

// addPrekeyed mirrors Add for a dynamic edge whose occurrence key
// strings were already computed (outside the lock) by a Shard.
func (g *Graph) addPrekeyed(e *fca.Edge, fromKeys, toKeys []occKeyStrings) {
	seq := g.seq
	g.seq++
	k := edgeKey{
		from: g.internFault(e.From),
		to:   g.internFault(e.To),
		kind: e.Kind,
		test: g.internTest(e.Test),
	}
	if ref, ok := g.byKey[k]; ok && ref > 0 {
		r := &g.dyn[ref-1]
		nf, nt := len(r.fromOcc), len(r.toOcc)
		r.fromOcc = g.mergePrekeyed(r.fromOcc, seq, e.FromState.Occ, fromKeys)
		r.toOcc = g.mergePrekeyed(r.toOcc, seq, e.ToState.Occ, toKeys)
		if len(r.fromOcc) > nf || len(r.toOcc) > nt {
			r.lastSeq = seq
		}
		return
	}
	g.dyn = append(g.dyn, edgeRec{
		from: k.from, to: k.to, kind: e.Kind,
		fromClass: e.FromClass, toClass: e.ToClass,
		test:      k.test,
		fromDelay: e.FromState.DelayFault,
		toDelay:   e.ToState.DelayFault,
		firstSeq:  seq,
		lastSeq:   seq,
		fromOcc:   g.internPrekeyed(seq, e.FromState.Occ, fromKeys),
		toOcc:     g.internPrekeyed(seq, e.ToState.Occ, toKeys),
	})
	g.byKey[k] = int32(len(g.dyn)) // +1 offset
}

// internPrekeyed is internOcc with the key strings supplied.
func (g *Graph) internPrekeyed(seq int, occ []trace.Occurrence, keys []occKeyStrings) []occEntry {
	if len(occ) == 0 {
		return nil
	}
	out := make([]occEntry, len(occ))
	for i, o := range occ {
		out[i] = occEntry{seq: seq, occ: o, stackKey: g.internKey(keys[i].stack), fullKey: g.internKey(keys[i].full)}
	}
	return out
}

// mergePrekeyed is mergeInto with the key strings supplied: keys are
// interned only for occurrences accepted under the cap, exactly as the
// serial merge does, so intern-table order is unchanged.
func (g *Graph) mergePrekeyed(dst []occEntry, seq int, occ []trace.Occurrence, keys []occKeyStrings) []occEntry {
	for i, o := range occ {
		if len(dst) >= trace.OccCap {
			break
		}
		dst = append(dst, occEntry{seq: seq, occ: o, stackKey: g.internKey(keys[i].stack), fullKey: g.internKey(keys[i].full)})
	}
	return dst
}
