package fca

import (
	"testing"

	"repro/internal/core/compat"
	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/trace"
)

func space() *faults.Space {
	return faults.NewSpace([]faults.Point{
		{ID: "s.throw1", Kind: faults.Throw},
		{ID: "s.throw2", Kind: faults.Throw},
		{ID: "s.neg", Kind: faults.Negation},
		{ID: "s.loopA", Kind: faults.Loop},
		{ID: "s.loopB", Kind: faults.Loop},
		{ID: "s.loopC", Kind: faults.Loop},
	}, []faults.LoopNest{
		{Parent: "s.loopA", Children: []faults.ID{"s.loopB", "s.loopC"}},
	})
}

// mkSet builds a run set of n runs customised per run by fn.
func mkSet(test string, n int, fn func(i int, r *trace.Run)) *trace.Set {
	s := &trace.Set{}
	for i := 0; i < n; i++ {
		r := trace.NewRun(test, int64(i))
		if fn != nil {
			fn(i, r)
		}
		s.Add(r)
	}
	return s
}

func TestExceptionInterferenceDetected(t *testing.T) {
	profile := mkSet("t1", 5, nil)
	injected := mkSet("t1", 5, func(i int, r *trace.Run) {
		r.InjFired = true
		r.Activate("s.throw2", trace.Occurrence{Stack: []string{"f", "g"}})
	})
	plan := inject.Plan{Kind: inject.Exception, Target: "s.throw1"}
	edges, intf := Analyze(space(), plan, "t1", profile, injected, DefaultConfig())
	if len(edges) != 1 {
		t.Fatalf("edges = %v, want 1", edges)
	}
	e := edges[0]
	if e.From != "s.throw1" || e.To != "s.throw2" || e.Kind != faults.EI {
		t.Fatalf("edge = %+v", e)
	}
	if e.FromClass != faults.ClassException || e.ToClass != faults.ClassException {
		t.Fatalf("classes = %v -> %v", e.FromClass, e.ToClass)
	}
	if len(intf) != 1 || intf[0] != "s.throw2" {
		t.Fatalf("interference = %v", intf)
	}
	if len(e.ToState.Occ) == 0 {
		t.Fatal("interference state missing occurrence evidence")
	}
}

func TestNotCounterfactualWhenProfileAlsoActivates(t *testing.T) {
	profile := mkSet("t1", 5, func(i int, r *trace.Run) {
		if i == 0 {
			r.Activate("s.throw2", trace.Occurrence{})
		}
	})
	injected := mkSet("t1", 5, func(i int, r *trace.Run) {
		r.Activate("s.throw2", trace.Occurrence{})
	})
	edges, _ := Analyze(space(), inject.Plan{Kind: inject.Exception, Target: "s.throw1"}, "t1", profile, injected, DefaultConfig())
	if len(edges) != 0 {
		t.Fatalf("edges = %v, want none (fault fires in profile run too)", edges)
	}
}

func TestMinorityActivationIgnored(t *testing.T) {
	profile := mkSet("t1", 5, nil)
	injected := mkSet("t1", 5, func(i int, r *trace.Run) {
		if i < 2 { // below the 3-run majority default
			r.Activate("s.throw2", trace.Occurrence{})
		}
	})
	edges, _ := Analyze(space(), inject.Plan{Kind: inject.Exception, Target: "s.throw1"}, "t1", profile, injected, DefaultConfig())
	if len(edges) != 0 {
		t.Fatalf("edges = %v, want none under nondeterminism threshold", edges)
	}
}

func TestDelayCausesExceptionIsED(t *testing.T) {
	profile := mkSet("t1", 5, nil)
	injected := mkSet("t1", 5, func(i int, r *trace.Run) {
		r.Activate("s.throw1", trace.Occurrence{})
	})
	plan := inject.Plan{Kind: inject.Delay, Target: "s.loopA"}
	edges, _ := Analyze(space(), plan, "t1", profile, injected, DefaultConfig())
	if len(edges) != 1 || edges[0].Kind != faults.ED {
		t.Fatalf("edges = %v, want one E(D)", edges)
	}
	if !edges[0].FromState.DelayFault {
		t.Fatal("delay injection state must be marked DelayFault")
	}
}

func TestIterationIncreaseSignificant(t *testing.T) {
	profile := mkSet("t1", 5, func(i int, r *trace.Run) {
		r.AddLoopIters("s.loopB", 10+i%2)
	})
	injected := mkSet("t1", 5, func(i int, r *trace.Run) {
		r.AddLoopIters("s.loopB", 40+i%3)
	})
	plan := inject.Plan{Kind: inject.Exception, Target: "s.throw1"}
	edges, _ := Analyze(space(), plan, "t1", profile, injected, DefaultConfig())
	if len(edges) != 1 {
		t.Fatalf("edges = %v, want 1", edges)
	}
	e := edges[0]
	if e.Kind != faults.SI || e.To != "s.loopB" || e.ToClass != faults.ClassDelay {
		t.Fatalf("edge = %+v", e)
	}
	if !e.ToState.DelayFault {
		t.Fatal("loop interference state must be DelayFault")
	}
}

func TestIterationNoiseNotSignificant(t *testing.T) {
	profile := mkSet("t1", 5, func(i int, r *trace.Run) {
		r.AddLoopIters("s.loopB", 10+i%3)
	})
	injected := mkSet("t1", 5, func(i int, r *trace.Run) {
		r.AddLoopIters("s.loopB", 10+(i+1)%3)
	})
	edges, _ := Analyze(space(), inject.Plan{Kind: inject.Exception, Target: "s.throw1"}, "t1", profile, injected, DefaultConfig())
	if len(edges) != 0 {
		t.Fatalf("edges = %v, want none for statistically flat counts", edges)
	}
}

func TestDelayedLoopItselfExcluded(t *testing.T) {
	profile := mkSet("t1", 5, func(i int, r *trace.Run) {
		r.AddLoopIters("s.loopA", 5)
	})
	injected := mkSet("t1", 5, func(i int, r *trace.Run) {
		r.AddLoopIters("s.loopA", 50) // the injected loop itself grew
	})
	edges, _ := Analyze(space(), inject.Plan{Kind: inject.Delay, Target: "s.loopA"}, "t1", profile, injected, DefaultConfig())
	if len(edges) != 0 {
		t.Fatalf("edges = %v, the injected loop must not be its own effect", edges)
	}
}

func TestDelayCausesDelayIsSD(t *testing.T) {
	profile := mkSet("t1", 5, func(i int, r *trace.Run) { r.AddLoopIters("s.loopB", 8) })
	injected := mkSet("t1", 5, func(i int, r *trace.Run) { r.AddLoopIters("s.loopB", 30+i) })
	edges, _ := Analyze(space(), inject.Plan{Kind: inject.Delay, Target: "s.loopA"}, "t1", profile, injected, DefaultConfig())
	if len(edges) != 1 || edges[0].Kind != faults.SD {
		t.Fatalf("edges = %v, want one S+(D)", edges)
	}
}

func TestNegationInjectionClass(t *testing.T) {
	profile := mkSet("t1", 5, nil)
	injected := mkSet("t1", 5, func(i int, r *trace.Run) {
		r.Activate("s.throw1", trace.Occurrence{})
	})
	edges, _ := Analyze(space(), inject.Plan{Kind: inject.Negate, Target: "s.neg"}, "t1", profile, injected, DefaultConfig())
	if len(edges) != 1 || edges[0].FromClass != faults.ClassNegation || edges[0].Kind != faults.EI {
		t.Fatalf("edges = %v", edges)
	}
}

func TestProfilePlanYieldsNothing(t *testing.T) {
	set := mkSet("t1", 5, func(i int, r *trace.Run) { r.Activate("s.throw1", trace.Occurrence{}) })
	edges, intf := Analyze(space(), inject.Profile(), "t1", set, set, DefaultConfig())
	if edges != nil || intf != nil {
		t.Fatal("profile plan must not produce edges")
	}
}

func TestStaticLoopEdges(t *testing.T) {
	edges := StaticLoopEdges(space())
	want := map[string]bool{
		"s.loopB-ICFG-s.loopA": true,
		"s.loopC-ICFG-s.loopA": true,
		"s.loopA-CFG-s.loopC":  true,
	}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %d", edges, len(want))
	}
	for _, e := range edges {
		k := string(e.From) + "-" + e.Kind.String() + "-" + string(e.To)
		if !want[k] {
			t.Errorf("unexpected static edge %s", k)
		}
		if e.Test != "" {
			t.Errorf("static edge carries test %q", e.Test)
		}
	}
}

func TestStaticLoopEdgesSkipFilteredLoops(t *testing.T) {
	sp := faults.NewSpace([]faults.Point{
		{ID: "s.loopA", Kind: faults.Loop},
		// s.loopB filtered out (constant bound), so no edges through it.
		{ID: "s.loopB", Kind: faults.Loop, ConstBound: true},
	}, []faults.LoopNest{{Parent: "s.loopA", Children: []faults.ID{"s.loopB"}}})
	if edges := StaticLoopEdges(sp); len(edges) != 0 {
		t.Fatalf("edges = %v, want none through filtered loop", edges)
	}
}

func TestDedupMergesStates(t *testing.T) {
	mkState := func(n int) compat.State {
		s := compat.State{}
		for i := 0; i < n; i++ {
			s.Occ = append(s.Occ, trace.Occurrence{Stack: []string{"f"}})
		}
		return s
	}
	e1 := Edge{From: "a", To: "b", Kind: faults.EI, Test: "t1", ToState: mkState(1)}
	e2 := Edge{From: "a", To: "b", Kind: faults.EI, Test: "t1", ToState: mkState(2)}
	e3 := Edge{From: "a", To: "b", Kind: faults.EI, Test: "t2"}
	out := Dedup([]Edge{e1, e2, e3})
	if len(out) != 2 {
		t.Fatalf("deduped to %d, want 2", len(out))
	}
	if len(out[0].ToState.Occ) != 3 {
		t.Fatalf("merged occurrences = %d, want 3", len(out[0].ToState.Occ))
	}
}
