// Package fca implements CSnake's fault causality analysis (§4.3): the
// counterfactual comparison of an injection run's execution trace against
// its profile run. Any additional fault triggered only under injection is
// taken to be counterfactually caused by the injected fault, yielding the
// causal edges of Table 1:
//
//	E(D)  delay      -> exception/negation   (execution trace interference)
//	S+(D) delay      -> delay                (iteration count interference)
//	E(I)  exc/neg    -> exception/negation
//	S+(I) exc/neg    -> delay
//	ICFG  child-loop delay -> parent-loop delay   (static, §4.3 Figure 5)
//	CFG   parent-loop delay -> sibling-loop delay (static)
//
// Both runs are repeated (five seeds by default); exception/negation
// interference requires activation in a majority of injection runs and in
// no profile run, and delay interference requires a one-sided Welch t-test
// on loop iteration counts at p < 0.1.
package fca

import (
	"fmt"

	"repro/internal/core/compat"
	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config tunes the counterfactual criteria.
type Config struct {
	// PValue is the significance threshold for iteration increases
	// (paper: 0.1).
	PValue float64
	// MinActivationRuns is the minimum number of injection runs an
	// additional exception/negation must appear in (default 3 of 5).
	MinActivationRuns int
	// MinIncreaseFactor is a noise floor on iteration interference: the
	// mean injected count must exceed the mean profile count by this
	// factor (default 1.2). Simulated runs have less scheduling noise
	// than the paper's JVM testbed, so the bare t-test would flag
	// single-iteration systematic shifts.
	MinIncreaseFactor float64
}

// DefaultConfig returns the paper's parameters plus the simulator noise
// floor.
func DefaultConfig() Config {
	return Config{PValue: 0.1, MinActivationRuns: 3, MinIncreaseFactor: 1.2}
}

// Edge is one discovered causal relationship f_From -> f_To, together
// with the evidence needed for stitching: the test it was discovered in
// and the local states of both endpoints (§6.2).
type Edge struct {
	From      faults.ID
	To        faults.ID
	Kind      faults.EdgeKind
	FromClass faults.FaultClass
	ToClass   faults.FaultClass
	// Test names the workload the relationship was observed in; empty for
	// the static ICFG/CFG loop edges.
	Test string
	// FromState approximates the activation condition of the *injection*
	// (the injection-site local state).
	FromState compat.State
	// ToState approximates the activation condition of the *interference*
	// (the additional fault's occurrence states).
	ToState compat.State
}

// Key returns a stable identity for deduplication.
func (e Edge) Key() string {
	return fmt.Sprintf("%s|%s|%v|%s", e.From, e.To, e.Kind, e.Test)
}

func (e Edge) String() string {
	return fmt.Sprintf("%s -%v-> %s [%s]", e.From, e.Kind, e.To, e.Test)
}

// Analyze diffs the injection run set against the profile run set for one
// (plan, test) experiment and returns the causal edges rooted at the
// injected fault. The interference list (additional fault ids, used by
// 3PA's clustering) is returned alongside.
func Analyze(space *faults.Space, plan inject.Plan, test string, profile, injected *trace.Set, cfg Config) ([]Edge, []faults.ID) {
	if cfg.PValue == 0 {
		cfg.PValue = 0.1
	}
	if cfg.MinActivationRuns == 0 {
		cfg.MinActivationRuns = 3
	}
	if cfg.MinIncreaseFactor == 0 {
		cfg.MinIncreaseFactor = 1.2
	}
	if plan.Kind == inject.None || injected.Len() == 0 {
		return nil, nil
	}

	from := plan.Target
	fromClass := classOf(plan)
	fromState := compat.State{Occ: injected.InjSites(), DelayFault: fromClass == faults.ClassDelay}

	var edges []Edge
	var intf []faults.ID

	// 1. Execution trace interference: additional exceptions/negations.
	for _, id := range injected.ActivatedAnywhere() {
		if injected.ActivationRate(id) < cfg.MinActivationRuns {
			continue
		}
		if profile.ActivationRate(id) > 0 {
			continue // not counterfactual: fires without the injection too
		}
		toClass := space.Class(id)
		kind := faults.EI
		if fromClass == faults.ClassDelay {
			kind = faults.ED
		}
		edges = append(edges, Edge{
			From: from, To: id, Kind: kind,
			FromClass: fromClass, ToClass: toClass,
			Test:      test,
			FromState: fromState,
			ToState:   compat.State{Occ: injected.Occurrences(id)},
		})
		intf = append(intf, id)
	}

	// 2. Iteration count interference: statistically increased loops.
	for _, id := range injected.LoopIDs() {
		if plan.Kind == inject.Delay && plan.Target == id {
			continue // the delayed loop itself is the cause, not an effect
		}
		injSamples := injected.IterSamples(id)
		profSamples := profile.IterSamples(id)
		if stats.Mean(injSamples) < stats.Mean(profSamples)*cfg.MinIncreaseFactor {
			continue
		}
		p := stats.TTestGreater(injSamples, profSamples)
		if p >= cfg.PValue {
			continue
		}
		kind := faults.SI
		if fromClass == faults.ClassDelay {
			kind = faults.SD
		}
		edges = append(edges, Edge{
			From: from, To: id, Kind: kind,
			FromClass: fromClass, ToClass: faults.ClassDelay,
			Test:      test,
			FromState: fromState,
			ToState:   compat.State{Occ: injected.LoopSites(id), DelayFault: true},
		})
		intf = append(intf, id)
	}

	return edges, intf
}

func classOf(plan inject.Plan) faults.FaultClass {
	switch plan.Kind {
	case inject.Delay:
		return faults.ClassDelay
	case inject.Negate:
		return faults.ClassNegation
	default:
		return faults.ClassException
	}
}

// StaticLoopEdges materialises the ICFG/CFG relationships from the loop
// nests (§4.3): each child loop's delay propagates to its parent (ICFG),
// and a delayed parent propagates to the child's next sibling (CFG).
// These edges carry no test or state and are always compatible.
func StaticLoopEdges(space *faults.Space) []Edge {
	var edges []Edge
	add := func(from, to faults.ID, kind faults.EdgeKind) {
		if _, ok := space.Lookup(from); !ok {
			return
		}
		if _, ok := space.Lookup(to); !ok {
			return
		}
		edges = append(edges, Edge{
			From: from, To: to, Kind: kind,
			FromClass: faults.ClassDelay, ToClass: faults.ClassDelay,
			FromState: compat.State{DelayFault: true},
			ToState:   compat.State{DelayFault: true},
		})
	}
	for _, nest := range space.Nests {
		for i, child := range nest.Children {
			add(child, nest.Parent, faults.ICFG)
			if i+1 < len(nest.Children) {
				add(nest.Parent, nest.Children[i+1], faults.CFG)
			}
		}
	}
	return edges
}

// Dedup removes duplicate edges (same endpoints, kind, and test), keeping
// the first occurrence, whose states absorb the later ones' occurrence
// evidence.
//
// The pipeline no longer calls this: the harness accumulates edges into
// an internal/core/graph.Graph, which deduplicates incrementally at
// insertion with exactly these semantics. Dedup remains as the executable
// reference specification (the graph tests assert equivalence against it)
// and for callers holding flat edge slices.
func Dedup(edges []Edge) []Edge {
	seen := make(map[string]int)
	var out []Edge
	for _, e := range edges {
		if idx, ok := seen[e.Key()]; ok {
			out[idx].FromState.Occ = mergeOcc(out[idx].FromState.Occ, e.FromState.Occ)
			out[idx].ToState.Occ = mergeOcc(out[idx].ToState.Occ, e.ToState.Occ)
			continue
		}
		seen[e.Key()] = len(out)
		out = append(out, e)
	}
	return out
}

func mergeOcc(a, b []trace.Occurrence) []trace.Occurrence {
	for _, o := range b {
		if len(a) >= trace.OccCap {
			break
		}
		a = append(a, o)
	}
	return a
}
