package compat

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func occ(stack []string, branches ...sim.BranchEval) trace.Occurrence {
	return trace.Occurrence{Stack: stack, Branches: branches}
}

func be(id string, taken bool) sim.BranchEval { return sim.BranchEval{ID: id, Taken: taken} }

func TestCompatibleIdenticalStates(t *testing.T) {
	a := State{Occ: []trace.Occurrence{occ([]string{"BlockReceiver", "createTmp"}, be("b1", true))}}
	b := State{Occ: []trace.Occurrence{occ([]string{"BlockReceiver", "createTmp"}, be("b1", true))}}
	if !Compatible(a, b) {
		t.Fatal("identical states should be compatible")
	}
}

func TestIncompatibleBranchOutcomes(t *testing.T) {
	// Same call site, opposite branch outcome: the conditions of the two
	// tests are mutually exclusive (the paper's f1->f2 under c1 vs f2->f1
	// under not-c1 example).
	a := State{Occ: []trace.Occurrence{occ([]string{"f", "g"}, be("c1", true))}}
	b := State{Occ: []trace.Occurrence{occ([]string{"f", "g"}, be("c1", false))}}
	if Compatible(a, b) {
		t.Fatal("opposite branch outcomes must be incompatible")
	}
}

func TestIncompatibleCallStacks(t *testing.T) {
	// Same fault, different call sites: different request types (§6.2).
	a := State{Occ: []trace.Occurrence{occ([]string{"BlockReceiver", "createTmp"})}}
	b := State{Occ: []trace.Occurrence{occ([]string{"Recovery", "createTmp"})}}
	if Compatible(a, b) {
		t.Fatal("different 2-level call stacks must be incompatible")
	}
}

func TestCompatibleViaAnyOccurrencePair(t *testing.T) {
	a := State{Occ: []trace.Occurrence{
		occ([]string{"x", "y"}, be("b", true)),
		occ([]string{"f", "g"}, be("c", false)),
	}}
	b := State{Occ: []trace.Occurrence{occ([]string{"f", "g"}, be("c", false))}}
	if !Compatible(a, b) {
		t.Fatal("one matching occurrence pair suffices")
	}
}

func TestDelayFaultComparesStacksOnly(t *testing.T) {
	a := State{Occ: []trace.Occurrence{occ([]string{"f", "g"}, be("b", true))}, DelayFault: true}
	b := State{Occ: []trace.Occurrence{occ([]string{"f", "g"}, be("b", false))}}
	if !Compatible(a, b) {
		t.Fatal("delay faults must ignore branch traces (any-iteration rule)")
	}
	c := State{Occ: []trace.Occurrence{occ([]string{"other", "g"})}, DelayFault: true}
	if Compatible(c, b) {
		t.Fatal("delay faults still require matching stacks")
	}
}

func TestEmptyStatesArePermissive(t *testing.T) {
	full := State{Occ: []trace.Occurrence{occ([]string{"f", "g"})}}
	if !Compatible(State{}, full) || !Compatible(full, State{}) || !Compatible(State{}, State{}) {
		t.Fatal("missing evidence must not block stitching")
	}
}

func TestBranchOrderMatters(t *testing.T) {
	a := State{Occ: []trace.Occurrence{occ([]string{"f"}, be("b1", true), be("b2", false))}}
	b := State{Occ: []trace.Occurrence{occ([]string{"f"}, be("b2", false), be("b1", true))}}
	if Compatible(a, b) {
		t.Fatal("branch traces are sequences; order must be respected")
	}
}

func TestKeysDeterministicAndDeduplicated(t *testing.T) {
	s := State{Occ: []trace.Occurrence{
		occ([]string{"f", "g"}, be("b", true)),
		occ([]string{"f", "g"}, be("b", true)),
		occ([]string{"a", "b"}, be("b", false)),
	}}
	k1 := s.Keys()
	k2 := s.Keys()
	if len(k1) != 2 {
		t.Fatalf("keys = %v, want 2 distinct", k1)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("Keys() not deterministic")
		}
	}
}
