// Package compat implements CSnake's local compatibility check (§6.2).
//
// A full path-constraint satisfiability check would require symbolic
// execution; CSnake instead approximates the activation condition of a
// fault by (1) the local execution trace -- branch statements and their
// outcomes within the fault's enclosing loop iteration or function -- and
// (2) the two innermost call-stack frames (2-call-site sensitivity).
// Two causal relationships discovered in different tests may be stitched
// through a common fault f2 only when f2's local state in both tests
// matches.
package compat

import (
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// State is the approximated activation condition of one fault in one
// test: the set of occurrence states observed for it (capped by
// trace.OccCap). For delay (loop) faults only calling context is
// available, mirroring the paper's conservative any-iteration rule.
type State struct {
	Occ []trace.Occurrence
	// DelayFault marks loop faults, for which only call stacks are
	// compared.
	DelayFault bool
}

// Empty reports whether the state carries no occurrence evidence.
func (s State) Empty() bool { return len(s.Occ) == 0 }

// stackKey canonicalises a 2-level call stack.
func stackKey(stack []string) string { return strings.Join(stack, ">") }

// branchKey canonicalises a local branch trace.
func branchKey(bs []sim.BranchEval) string {
	var b strings.Builder
	for _, e := range bs {
		b.WriteString(e.ID)
		if e.Taken {
			b.WriteString("=T;")
		} else {
			b.WriteString("=F;")
		}
	}
	return b.String()
}

// Keys returns the canonical (stack, branch-trace) keys of a state. For
// delay faults branch traces are ignored.
func (s State) Keys() []string {
	seen := make(map[string]bool, len(s.Occ))
	for _, o := range s.Occ {
		k := stackKey(o.Stack)
		if !s.DelayFault {
			k += "|" + branchKey(o.Branches)
		}
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Compatible reports whether two states of the same fault, observed in
// different tests, approximate compatible activation conditions: some
// occurrence pair must agree on the 2-level call stack and -- unless
// either side is a delay fault -- on the local branch trace of the
// fault-happening iteration.
//
// Missing evidence is treated permissively: static ICFG/CFG edges and
// faults whose states were not captured always pass, matching the paper's
// aim of *eliminating* clearly-incompatible stitchings rather than proving
// compatibility.
func Compatible(a, b State) bool {
	if a.Empty() || b.Empty() {
		return true
	}
	stacksOnly := a.DelayFault || b.DelayFault
	for _, oa := range a.Occ {
		for _, ob := range b.Occ {
			if stackKey(oa.Stack) != stackKey(ob.Stack) {
				continue
			}
			if stacksOnly || branchKey(oa.Branches) == branchKey(ob.Branches) {
				return true
			}
		}
	}
	return false
}
