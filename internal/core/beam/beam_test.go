package beam

import (
	"strings"
	"testing"

	"repro/internal/core/compat"
	"repro/internal/core/fca"
	"repro/internal/faults"
	"repro/internal/trace"
)

func st(stack ...string) compat.State {
	return compat.State{Occ: []trace.Occurrence{{Stack: stack}}}
}

func delaySt(stack ...string) compat.State {
	s := st(stack...)
	s.DelayFault = true
	return s
}

// edge builds a dynamic edge with compatible-by-stack states.
func edge(from, to faults.ID, kind faults.EdgeKind, fc, tc faults.FaultClass, test string, fromStack, toStack compat.State) fca.Edge {
	return fca.Edge{
		From: from, To: to, Kind: kind,
		FromClass: fc, ToClass: tc,
		Test: test, FromState: fromStack, ToState: toStack,
	}
}

func TestTwoEdgeCycleAcrossWorkloads(t *testing.T) {
	// The paper's core scenario: f1 -> f2 in t1 and f2 -> f1 in t2 stitch
	// into the causal cycle f1 -> f2 -> f1.
	e1 := edge("f1", "f2", faults.EI, faults.ClassException, faults.ClassException,
		"t1", st("h1"), st("site2"))
	e2 := edge("f2", "f1", faults.EI, faults.ClassException, faults.ClassException,
		"t2", st("site2"), st("h1"))
	cycles := Search([]fca.Edge{e1, e2}, nil, Options{})
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v, want 1", cycles)
	}
	if len(cycles[0].Edges) != 2 {
		t.Fatalf("cycle length = %d, want 2", len(cycles[0].Edges))
	}
}

func TestIncompatibleStatesBlockStitching(t *testing.T) {
	// f2's interference site in t1 differs from its injection site in t2:
	// the local compatibility check must reject the stitch.
	e1 := edge("f1", "f2", faults.EI, faults.ClassException, faults.ClassException,
		"t1", st("h1"), st("siteA"))
	e2 := edge("f2", "f1", faults.EI, faults.ClassException, faults.ClassException,
		"t2", st("siteB"), st("h1"))
	cycles := Search([]fca.Edge{e1, e2}, nil, Options{})
	if len(cycles) != 0 {
		t.Fatalf("cycles = %v, want none (incompatible states)", cycles)
	}
}

func TestClassMismatchBlocksStitching(t *testing.T) {
	// f2 is an exception in edge 1 but the second edge's source is a
	// delay fault with the same id (cannot happen with a well-formed
	// space, but the matcher must still refuse).
	e1 := edge("f1", "f2", faults.EI, faults.ClassException, faults.ClassException,
		"t1", st("h1"), st("s"))
	e2 := edge("f2", "f1", faults.ED, faults.ClassDelay, faults.ClassException,
		"t2", delaySt("s"), st("h1"))
	cycles := Search([]fca.Edge{e1, e2}, nil, Options{})
	if len(cycles) != 0 {
		t.Fatalf("cycles = %v, want none (class mismatch)", cycles)
	}
}

func TestSelfEdgeIsLengthOneCycle(t *testing.T) {
	e := edge("f1", "f1", faults.EI, faults.ClassException, faults.ClassException,
		"t1", st("h"), st("h"))
	cycles := Search([]fca.Edge{e}, nil, Options{})
	if len(cycles) != 1 || len(cycles[0].Edges) != 1 {
		t.Fatalf("cycles = %v, want one length-1 cycle", cycles)
	}
}

func TestNestedLoopICFGCycle(t *testing.T) {
	// f1(exception) -S+(I)-> loopB; loopB -ICFG-> loopA (static);
	// loopA(delay) -E(D)-> f1. Pattern 2a of §6.1.
	e1 := edge("f1", "loopB", faults.SI, faults.ClassException, faults.ClassDelay,
		"t1", st("h1"), delaySt("batch"))
	icfg := fca.Edge{From: "loopB", To: "loopA", Kind: faults.ICFG,
		FromClass: faults.ClassDelay, ToClass: faults.ClassDelay,
		FromState: compat.State{DelayFault: true}, ToState: compat.State{DelayFault: true}}
	e2 := edge("loopA", "f1", faults.ED, faults.ClassDelay, faults.ClassException,
		"t2", delaySt("outer"), st("h1"))
	cycles := Search([]fca.Edge{e1, icfg, e2}, nil, Options{})
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	if len(cycles[0].Edges) != 3 {
		t.Fatalf("cycle = %v, want 3 edges", cycles[0])
	}
	d, e, n := cycles[0].Composition()
	if d != 1 || e != 1 || n != 0 {
		t.Fatalf("composition = %dD|%dE|%dN, want 1D|1E|0N (ICFG connector not counted)", d, e, n)
	}
}

func TestMaxDelayInjectionCap(t *testing.T) {
	// Cycle requiring two distinct delay injections.
	e1 := edge("loopA", "loopB", faults.SD, faults.ClassDelay, faults.ClassDelay,
		"t1", delaySt("a"), delaySt("b"))
	e2 := edge("loopB", "loopA", faults.SD, faults.ClassDelay, faults.ClassDelay,
		"t2", delaySt("b"), delaySt("a"))
	if cycles := Search([]fca.Edge{e1, e2}, nil, Options{MaxDelayInjections: -1}); len(cycles) != 1 {
		t.Fatalf("unlimited: cycles = %v, want 1", cycles)
	}
	if cycles := Search([]fca.Edge{e1, e2}, nil, Options{MaxDelayInjections: 1}); len(cycles) != 0 {
		t.Fatalf("capped: cycles = %v, want 0", cycles)
	}
}

func TestThreeEdgeCycleFaultsAndComposition(t *testing.T) {
	// delay -> exception -> negation -> delay (the HBase §8.3.1 shape).
	e1 := edge("loop.deploy", "ioe.assign", faults.ED, faults.ClassDelay, faults.ClassException,
		"t1", delaySt("deploy"), st("assign"))
	e2 := edge("ioe.assign", "neg.balancer", faults.EI, faults.ClassException, faults.ClassNegation,
		"t2", st("assign"), st("balancer"))
	e3 := edge("neg.balancer", "loop.deploy", faults.SI, faults.ClassNegation, faults.ClassDelay,
		"t3", st("balancer"), delaySt("deploy"))
	cycles := Search([]fca.Edge{e1, e2, e3}, nil, Options{})
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	d, e, n := cycles[0].Composition()
	if d != 1 || e != 1 || n != 1 {
		t.Fatalf("composition = %dD|%dE|%dN, want 1D|1E|1N", d, e, n)
	}
	fs := cycles[0].Faults()
	if len(fs) != 3 {
		t.Fatalf("faults = %v", fs)
	}
}

func TestCycleDeduplicationAcrossRotations(t *testing.T) {
	e1 := edge("a", "b", faults.EI, faults.ClassException, faults.ClassException,
		"t1", st("sa"), st("sb"))
	e2 := edge("b", "a", faults.EI, faults.ClassException, faults.ClassException,
		"t2", st("sb"), st("sa"))
	cycles := Search([]fca.Edge{e1, e2}, nil, Options{MaxLen: 6})
	// Both [e1,e2] and [e2,e1] close; they are the same cycle.
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1 after rotation dedup", len(cycles))
	}
}

func TestScoreRankingPrefersConditionalClusters(t *testing.T) {
	simScore := func(f faults.ID) float64 {
		if strings.HasPrefix(string(f), "cond.") {
			return 0.1
		}
		return 0.9
	}
	e1 := edge("cond.a", "cond.b", faults.EI, faults.ClassException, faults.ClassException,
		"t1", st("x"), st("y"))
	e2 := edge("cond.b", "cond.a", faults.EI, faults.ClassException, faults.ClassException,
		"t2", st("y"), st("x"))
	e3 := edge("flat.a", "flat.b", faults.EI, faults.ClassException, faults.ClassException,
		"t3", st("p"), st("q"))
	e4 := edge("flat.b", "flat.a", faults.EI, faults.ClassException, faults.ClassException,
		"t4", st("q"), st("p"))
	cycles := Search([]fca.Edge{e1, e2, e3, e4}, simScore, Options{})
	if len(cycles) != 2 {
		t.Fatalf("cycles = %d, want 2", len(cycles))
	}
	if cycles[0].Score >= cycles[1].Score {
		t.Fatalf("scores = %v, %v: conditional cycle must rank first", cycles[0].Score, cycles[1].Score)
	}
	if !strings.HasPrefix(string(cycles[0].Faults()[0]), "cond.") {
		t.Fatalf("first cycle = %v, want the conditional one", cycles[0])
	}
}

func TestBeamSizePrunesHighScoreChains(t *testing.T) {
	simScore := func(f faults.ID) float64 {
		if f == "good.a" || f == "good.b" {
			return 0.0
		}
		return 1.0
	}
	var edges []fca.Edge
	// One good 2-cycle plus many bad chains that would also close.
	edges = append(edges,
		edge("good.a", "good.b", faults.EI, faults.ClassException, faults.ClassException, "t1", st("ga"), st("gb")),
		edge("good.b", "good.a", faults.EI, faults.ClassException, faults.ClassException, "t2", st("gb"), st("ga")))
	for _, pair := range []string{"w", "x", "y", "z"} {
		a := faults.ID("bad." + pair + "1")
		b := faults.ID("bad." + pair + "2")
		edges = append(edges,
			edge(a, b, faults.EI, faults.ClassException, faults.ClassException, "t3", st(pair+"a"), st(pair+"b")),
			edge(b, a, faults.EI, faults.ClassException, faults.ClassException, "t4", st(pair+"b"), st(pair+"a")))
	}
	// Beam of 2 keeps only the two best (good) chains per level; the bad
	// cycles never get a chance to close beyond level 1... but level-1
	// expansion already closes 2-cycles, so use a 3-step shape instead:
	// here we simply assert the good cycle is found and ranked first.
	cycles := Search(edges, simScore, Options{BeamSize: 2})
	if len(cycles) == 0 {
		t.Fatal("no cycles found")
	}
	if cycles[0].Faults()[0] != "good.a" && cycles[0].Faults()[0] != "good.b" {
		t.Fatalf("first cycle = %v, want the good pair", cycles[0])
	}
}

func TestNoCycleInDAG(t *testing.T) {
	e1 := edge("a", "b", faults.EI, faults.ClassException, faults.ClassException, "t1", st("x"), st("y"))
	e2 := edge("b", "c", faults.EI, faults.ClassException, faults.ClassException, "t2", st("y"), st("z"))
	if cycles := Search([]fca.Edge{e1, e2}, nil, Options{}); len(cycles) != 0 {
		t.Fatalf("cycles = %v in a DAG", cycles)
	}
}

func TestEmptyEdgeSet(t *testing.T) {
	if cycles := Search(nil, nil, Options{}); len(cycles) != 0 {
		t.Fatal("cycles from nothing")
	}
}

func TestClusterCyclesGroupsEquivalentBugs(t *testing.T) {
	clusterOf := func(f faults.ID) (int, bool) {
		switch f {
		case "f1", "f3": // causally equivalent
			return 0, true
		case "f2":
			return 1, true
		}
		return 0, false
	}
	mk := func(a, b faults.ID) Cycle {
		return Cycle{Edges: []fca.Edge{
			edge(a, b, faults.EI, faults.ClassException, faults.ClassException, "t1", st("x"), st("y")),
			edge(b, a, faults.EI, faults.ClassException, faults.ClassException, "t2", st("y"), st("x")),
		}}
	}
	// f1->f2->f1 and f3->f2->f3 involve clusters {0,1}: same bug (§6.3).
	groups := ClusterCycles([]Cycle{mk("f1", "f2"), mk("f3", "f2")}, clusterOf)
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	if len(groups[0].Cycles) != 2 {
		t.Fatalf("member cycles = %d, want 2", len(groups[0].Cycles))
	}
}

func TestClusterCyclesSeparatesDifferentBugs(t *testing.T) {
	clusterOf := func(f faults.ID) (int, bool) { return 0, false } // all unclustered
	mk := func(a, b faults.ID) Cycle {
		return Cycle{Edges: []fca.Edge{
			edge(a, b, faults.EI, faults.ClassException, faults.ClassException, "t1", st("x"), st("y")),
			edge(b, a, faults.EI, faults.ClassException, faults.ClassException, "t2", st("y"), st("x")),
		}}
	}
	groups := ClusterCycles([]Cycle{mk("f1", "f2"), mk("f3", "f4")}, clusterOf)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
}

func TestSearchDeterministic(t *testing.T) {
	mkEdges := func() []fca.Edge {
		return []fca.Edge{
			edge("a", "b", faults.EI, faults.ClassException, faults.ClassException, "t1", st("x"), st("y")),
			edge("b", "a", faults.EI, faults.ClassException, faults.ClassException, "t2", st("y"), st("x")),
			edge("b", "c", faults.EI, faults.ClassException, faults.ClassException, "t3", st("y"), st("z")),
			edge("c", "a", faults.EI, faults.ClassException, faults.ClassException, "t4", st("z"), st("x")),
		}
	}
	render := func(cs []Cycle) string {
		var b strings.Builder
		for _, c := range cs {
			b.WriteString(c.Signature())
			b.WriteByte('\n')
		}
		return b.String()
	}
	a := render(Search(mkEdges(), nil, Options{Workers: 4}))
	b := render(Search(mkEdges(), nil, Options{Workers: 1}))
	if a != b {
		t.Fatalf("worker count changed results:\n%s\nvs\n%s", a, b)
	}
}
