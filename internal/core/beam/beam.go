// Package beam implements CSnake's parallel beam search for
// self-sustaining cascading failures (§6.3, Algorithm 1) and the reported
// cycle clustering.
//
// Starting from all discovered causal edges as length-1 propagation
// chains, each search level appends every matching edge to every active
// chain, keeping the best B chains ranked by the mean intra-cluster
// interference similarity score of the injected faults involved (lower is
// better: such chains involve conditional error-handling logic). A chain
// whose last edge matches its first edge is a cycle: a fault that causes
// itself through a chain of compatible causal relationships.
package beam

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
)

// Options tunes the search.
type Options struct {
	// BeamSize is the number of active chains kept per level (paper: 5M;
	// default here 100k, ample for simulator-scale fault spaces).
	BeamSize int
	// MaxLen caps chain length as a safety valve (default 8).
	MaxLen int
	// MaxDelayInjections bounds the number of distinct delay injections
	// per cycle; Table 4's parenthesised variant uses 1. Zero or negative
	// means unlimited (the zero value is the paper's default search).
	MaxDelayInjections int
	// Workers sets the parallel expansion width (default GOMAXPROCS).
	Workers int
	// NestGroups maps loop faults to their loop-nest family. Cycles whose
	// faults all live inside one nest family are structural artifacts
	// (a child loop trivially "delays" its own parent) and are dropped.
	NestGroups map[faults.ID]int
}

func (o *Options) defaults() {
	if o.BeamSize == 0 {
		o.BeamSize = 100_000
	}
	if o.MaxLen == 0 {
		o.MaxLen = 8
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxDelayInjections <= 0 {
		o.MaxDelayInjections = -1
	}
}

// Cycle is one reported self-sustaining cascading failure.
type Cycle struct {
	Edges []fca.Edge
	// Score is the chain ranking score: mean SimScore of the injected
	// faults' clusters (lower = more conditional behaviour involved).
	Score float64
}

// Faults returns the distinct injected faults (edge sources of
// dynamically-discovered edges) in cycle order.
func (c Cycle) Faults() []faults.ID {
	var out []faults.ID
	seen := make(map[faults.ID]bool)
	for _, e := range c.Edges {
		if e.Kind.Static() {
			continue // static connectors are not injections
		}
		if !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
	}
	return out
}

// Composition counts the injected faults by class: the Table 3 "Cycle"
// column (xD | yE | zN).
func (c Cycle) Composition() (delays, exceptions, negations int) {
	seen := make(map[faults.ID]bool)
	for _, e := range c.Edges {
		if e.Kind.Static() || seen[e.From] {
			continue
		}
		seen[e.From] = true
		switch e.FromClass {
		case faults.ClassDelay:
			delays++
		case faults.ClassNegation:
			negations++
		default:
			exceptions++
		}
	}
	return
}

// String renders the cycle as f1 -kind-> f2 -kind-> ... -> f1.
func (c Cycle) String() string {
	var b strings.Builder
	for i, e := range c.Edges {
		if i == 0 {
			fmt.Fprintf(&b, "%s", e.From)
		}
		fmt.Fprintf(&b, " -%v-> %s", e.Kind, e.To)
	}
	return b.String()
}

// Signature returns a rotation-invariant identity so the same cycle found
// from different starting edges deduplicates.
func (c Cycle) Signature() string {
	// Plain concatenation: this runs once per candidate chain inside the
	// search hot path, where fmt's reflection is measurable.
	parts := make([]string, len(c.Edges))
	for i, e := range c.Edges {
		parts[i] = string(e.From) + "-" + e.Kind.String() + "-" + e.Test
	}
	return minRotation(parts)
}

func minRotation(parts []string) string {
	n := len(parts)
	if n == 0 {
		return ""
	}
	// Select the minimal rotation by lazy byte-wise comparison, then
	// materialise only the winner: the naive build-every-rotation version
	// was the single largest allocator in small-space campaigns.
	best := 0
	for r := 1; r < n; r++ {
		if rotationLess(parts, r, best) {
			best = r
		}
	}
	total := 0
	for _, p := range parts {
		total += len(p) + 1
	}
	var b strings.Builder
	b.Grow(total)
	for i := 0; i < n; i++ {
		b.WriteString(parts[(best+i)%n])
		b.WriteByte('|')
	}
	return b.String()
}

// rotationLess reports whether rotation a of parts (each part virtually
// suffixed with '|') concatenates to a strictly smaller string than
// rotation b, without building either string.
func rotationLess(parts []string, a, b int) bool {
	n := len(parts)
	vbyte := func(i, o int) byte {
		if p := parts[i]; o < len(p) {
			return p[o]
		}
		return '|'
	}
	ai, ao := 0, 0 // rotation-relative part index and byte offset
	bi, bo := 0, 0
	for ai < n {
		ia, ib := (a+ai)%n, (b+bi)%n
		ca, cb := vbyte(ia, ao), vbyte(ib, bo)
		if ca != cb {
			return ca < cb
		}
		if ao++; ao == len(parts[ia])+1 {
			ao, ai = 0, ai+1
		}
		if bo++; bo == len(parts[ib])+1 {
			bo, bi = 0, bi+1
		}
	}
	return false // identical
}

// Search runs the parallel beam search over a flat causal edge slice: a
// convenience wrapper that interns the edges into a graph.Graph (merging
// duplicate edges by construction) and delegates to SearchGraph.
// simScoreOf maps an injected fault to its cluster's SimScore (§5.2); nil
// means a constant score.
func Search(edges []fca.Edge, simScoreOf func(faults.ID) float64, opt Options) []Cycle {
	if len(edges) == 0 {
		return nil
	}
	return SearchGraph(graph.FromEdges(edges), simScoreOf, opt)
}

// SearchGraph runs the parallel beam search over a prebuilt interned
// causal graph: the fast path. The graph's columnar index carries dense
// fault ids and the interned state-key id sets computed once at edge
// insertion, so Algorithm 1's match() costs a sorted integer-set
// intersection and a search builds zero state-key strings. Chains are
// index vectors that never repeat an edge (a repeated edge only
// re-traverses an already-reported sub-cycle).
//
// A nil simScoreOf falls back to the graph's SimScore annotations (or the
// constant 1 when none were recorded), and an unset opt.NestGroups falls
// back to the graph's persisted loop-nest families -- a graph reloaded
// from disk re-searches exactly like the originating campaign.
func SearchGraph(g *graph.Graph, simScoreOf func(faults.ID) float64, opt Options) []Cycle {
	opt.defaults()
	if simScoreOf == nil {
		simScoreOf = g.ScoreFunc()
	}
	if opt.NestGroups == nil {
		opt.NestGroups = g.NestGroups()
	}
	return searchFast(g, simScoreOf, opt)
}

// CycleCluster groups equivalent reported cycles: cycles whose injected
// faults come from the same causally-equivalent fault clusters are likely
// the same bug (§6.3 "Clustering Reported Cycles").
type CycleCluster struct {
	// Key is the sorted multiset of fault-cluster indices.
	Key string
	// Cycles are the member cycles, best score first.
	Cycles []Cycle
}

// ClusterCycles groups cycles by the fault clusters involved. clusterOf
// maps a fault to its cluster index; faults never clustered map to -1 and
// are distinguished by their own id.
func ClusterCycles(cycles []Cycle, clusterOf func(faults.ID) (int, bool)) []CycleCluster {
	// Decorate each cycle with its signature once: recomputing it inside
	// the sort comparator (O(n log n) times) used to dominate the whole
	// campaign's allocation profile.
	type sigged struct {
		cy  Cycle
		sig string
	}
	byKey := make(map[string][]sigged)
	for _, cy := range cycles {
		var parts []string
		for _, f := range cy.Faults() {
			if gi, ok := clusterOf(f); ok {
				parts = append(parts, fmt.Sprintf("g%d", gi))
			} else {
				parts = append(parts, string(f))
			}
		}
		sort.Strings(parts)
		key := strings.Join(parts, ",")
		byKey[key] = append(byKey[key], sigged{cy: cy, sig: cy.Signature()})
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]CycleCluster, 0, len(keys))
	for _, k := range keys {
		cs := byKey[k]
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].cy.Score != cs[j].cy.Score {
				return cs[i].cy.Score < cs[j].cy.Score
			}
			return cs[i].sig < cs[j].sig
		})
		members := make([]Cycle, len(cs))
		for i, s := range cs {
			members[i] = s.cy
		}
		out = append(out, CycleCluster{Key: k, Cycles: members})
	}
	return out
}
