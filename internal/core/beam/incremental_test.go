package beam

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core/compat"
	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
	"repro/internal/trace"
)

// cycleRichEdges generates a dynamic edge stream over a small fault set
// with overlapping stacks, so chains close often and evidence merges
// regularly extend existing records (the duplicate-identity rate is
// high).
func cycleRichEdges(rng *rand.Rand, n int) []fca.Edge {
	mkSt := func() compat.State {
		return compat.State{Occ: []trace.Occurrence{{Stack: []string{fmt.Sprintf("fn%d", rng.Intn(3))}}}}
	}
	var out []fca.Edge
	for i := 0; i < n; i++ {
		out = append(out, fca.Edge{
			From:      faults.ID(fmt.Sprintf("f.%d", rng.Intn(6))),
			To:        faults.ID(fmt.Sprintf("f.%d", rng.Intn(6))),
			Kind:      faults.EI,
			Test:      fmt.Sprintf("t%d", rng.Intn(3)),
			FromClass: faults.ClassException, ToClass: faults.ClassException,
			FromState: mkSt(), ToState: mkSt(),
		})
	}
	return out
}

func assertSameCycles(t *testing.T, tag string, got, want []Cycle) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: cycle counts diverge: incremental %d, full %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i].Score != want[i].Score || got[i].Signature() != want[i].Signature() {
			t.Fatalf("%s: cycle %d diverges:\nincremental: score=%v %s\nfull:        score=%v %s",
				tag, i, got[i].Score, got[i].Signature(), want[i].Score, want[i].Signature())
		}
		if !reflect.DeepEqual(got[i].Edges, want[i].Edges) {
			t.Fatalf("%s: cycle %d edge lists diverge", tag, i)
		}
	}
}

// TestIncrementalMatchesFullSearchOverRandomGrowth is the engine-level
// equivalence fuzz: a graph grown chunk by chunk from a random
// duplicate-heavy edge stream, searched incrementally after every chunk,
// must match a from-scratch SearchGraph on each round -- including
// rounds where evidence merges invalidate previously reported cycles
// and rounds where SimScores change between searches.
func TestIncrementalMatchesFullSearchOverRandomGrowth(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		stream := cycleRichEdges(rng, 150)
		opt := Options{MaxLen: 5}
		inc := NewIncremental(opt)
		g := graph.New()
		for round := 0; len(stream) > 0; round++ {
			n := 1 + rng.Intn(20)
			if n > len(stream) {
				n = len(stream)
			}
			g.AddAll(stream[:n])
			stream = stream[n:]
			if round == 3 {
				// SimScores land mid-campaign (after phase-two scoring):
				// the fold must pick them up without re-enumeration.
				g.SetScore("f.0", 0.25)
				g.SetScore("f.1", 0.5)
			}
			got := inc.Search(g, nil)
			want := SearchGraph(g, nil, opt)
			assertSameCycles(t, fmt.Sprintf("seed %d round %d", seed, round), got, want)
		}
	}
}

// TestIncrementalMatchesFullSearchUnderTruncation: with a beam small
// enough to truncate, the incremental engine must detect the pruned
// enumeration and fall back to full re-searches -- still matching
// SearchGraph exactly.
func TestIncrementalMatchesFullSearchUnderTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	stream := cycleRichEdges(rng, 120)
	opt := Options{MaxLen: 5, BeamSize: 3}
	inc := NewIncremental(opt)
	g := graph.New()
	for round := 0; len(stream) > 0; round++ {
		n := 15
		if n > len(stream) {
			n = len(stream)
		}
		g.AddAll(stream[:n])
		stream = stream[n:]
		got := inc.Search(g, nil)
		want := SearchGraph(g, nil, opt)
		assertSameCycles(t, fmt.Sprintf("round %d", round), got, want)
	}
}

// TestIncrementalSurvivesStaticSectionGrowth: static connector edges
// shift logical indices; the searcher must recover (it re-enumerates)
// and still match the full search.
func TestIncrementalSurvivesStaticSectionGrowth(t *testing.T) {
	opt := Options{MaxLen: 4}
	inc := NewIncremental(opt)
	g := graph.New()
	g.AddAll(cycleRichEdges(rand.New(rand.NewSource(2)), 40))
	assertSameCycles(t, "before", inc.Search(g, nil), SearchGraph(g, nil, opt))

	g.AddStatic([]fca.Edge{{
		From: "f.0", To: "f.1", Kind: faults.ICFG,
		FromClass: faults.ClassDelay, ToClass: faults.ClassDelay,
	}})
	g.AddAll(cycleRichEdges(rand.New(rand.NewSource(3)), 40))
	assertSameCycles(t, "after", inc.Search(g, nil), SearchGraph(g, nil, opt))
}

func TestNearCycleFaultsOneEdgeShort(t *testing.T) {
	// a -> b and b -> a exist but the closing compatibility fails: the
	// return edge's target state does not intersect the first edge's
	// source state. Both faults sit on a near-cycle.
	e1 := edge("a", "b", faults.EI, faults.ClassException, faults.ClassException, "t1",
		st("x"), st("y"))
	e2 := edge("b", "a", faults.EI, faults.ClassException, faults.ClassException, "t2",
		st("y"), st("z")) // z vs x: close fails
	g := graph.FromEdges([]fca.Edge{e1, e2})
	if cycles := SearchGraph(g, nil, Options{}); len(cycles) != 0 {
		t.Fatalf("test setup broken: expected no closed cycles, got %v", cycles)
	}
	near := NearCycleFaults(g, Options{})
	if !near["a"] || !near["b"] {
		t.Fatalf("near-cycle faults = %v, want a and b", near)
	}

	// Completing the evidence closes the loop: the faults are no longer
	// one edge short (the cycle is reported instead).
	g2 := graph.FromEdges([]fca.Edge{e1,
		edge("b", "a", faults.EI, faults.ClassException, faults.ClassException, "t2",
			st("y"), st("x"))})
	if cycles := SearchGraph(g2, nil, Options{}); len(cycles) == 0 {
		t.Fatal("closing evidence did not produce a cycle")
	}
}
