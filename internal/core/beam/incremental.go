// This file holds the incremental beam search behind anytime campaigns:
// instead of re-enumerating every chain after each round, it maintains
// the set of reported cyclic chains across graph deltas and re-examines
// only candidates reachable from delta-touched edges.
//
// Soundness rests on match() being edge-local: matchIdx(i, j) depends
// only on edges i and j, so both the validity and the reportability of a
// cyclic chain built entirely from edges the delta did not touch are
// exactly what they were the round before. New cycles must therefore
// pass through at least one delta-touched edge, and every rotation of a
// cycle is a valid chain, so seeding the expansion at the touched edges
// alone reaches each of them -- in close-through mode, because the
// one-shot engine drops chains from the queue once they close, and the
// rotation rooted at a touched edge may close early even though another
// rotation of the same cycle survives to full length. Discovered chains
// are stored only if the one-shot search would report them (at least one
// rotation arrives without an early close). Conversely, a stored chain
// can die -- evidence merges flip match() in both directions (empty
// evidence passes by default) -- so stored chains through touched edges
// are revalidated each round. Scores are never stored: SimScores change
// as the allocation protocol learns, so every round re-folds the chain
// store with the current scores, reproducing the one-shot search's
// dedup and ordering bit for bit.
//
// The equivalence to a full re-search is exact as long as the beam never
// truncates (the default 100k beam is ample for simulator-scale graphs).
// Truncation makes the enumeration non-exhaustive and chain reuse
// unsound, so the engine detects it and permanently falls back to
// delegating every round to the one-shot search, which is equal by
// definition.

package beam

import (
	"strconv"
	"sync"

	"repro/internal/core/graph"
	"repro/internal/faults"
)

// Incremental is a stateful beam search over a growing causal graph.
// Build one with NewIncremental and call Search after every round with
// the current graph (successive snapshots of one campaign's graph): the
// result is identical to SearchGraph over the same graph and options.
// Not safe for concurrent use.
type Incremental struct {
	opt Options
	// groups are the loop-nest families resolved at the first Search and
	// pinned: rounds of one campaign must filter identically.
	groups map[faults.ID]int
	// store holds every currently-reported cyclic chain, keyed by its
	// canonical stable-id encoding. Dynamic edges are identified by their
	// (stable) position in the dynamic section; static edges by negative
	// ids, since their logical indices shift as the dynamic section grows.
	store map[string]*chainEntry
	// lastSeq/lastStatics are the graph watermarks of the last Search;
	// full delegates to the one-shot search forever after a beam
	// truncation.
	lastSeq     int
	lastStatics int
	primed      bool
	full        bool
}

// chainEntry is one stored cyclic chain plus the derived state that is
// invariant until a delta touches one of its edges: the signature (a
// function of the edges' identities, immutable) and the arriving
// rotations (a function of matchIdx among the chain's edges). The
// logical form of the chain is cached against the dynamic-section size
// it was computed for. Only scores must be re-derived every round.
type chainEntry struct {
	sids []int
	sig  string
	rots []int
	// can/canDyn cache the canonical logical rotation; stale when the
	// dynamic section grew past canDyn (only chains through static edges
	// actually shift).
	can    []int
	canDyn int
}

// logical returns the chain's canonical logical rotation under the
// current dynamic-section size. The canonical rotation choice itself is
// stable: growing nDyn shifts every static index by the same amount and
// preserves all pairwise index comparisons (dynamic ids are always
// smaller than static ones).
func (e *chainEntry) logical(nDyn int) []int {
	if e.can == nil || e.canDyn != nDyn {
		e.can = make([]int, len(e.sids))
		for i, sid := range e.sids {
			e.can[i] = logicalOf(sid, nDyn)
		}
		e.canDyn = nDyn
	}
	return e.can
}

// NewIncremental builds an incremental search with fixed options.
// opt.NestGroups (or, when nil, the first searched graph's persisted
// families) is pinned for the life of the searcher.
//
// A caller-narrowed beam (non-zero opt.BeamSize) disables incremental
// reuse entirely: every Search delegates to the one-shot engine. A
// bounded beam prunes globally, and a delta-seeded enumeration staying
// under the beam proves nothing about whether the full enumeration
// would -- delegation is the only way to keep the result exactly equal
// to SearchGraph. The default beam is a safety valve sized far beyond
// simulator-scale frontiers; the engine still abandons incremental
// reuse at the first sign of beam pressure (a truncating enumeration,
// or a chain store as large as the beam itself).
func NewIncremental(opt Options) *Incremental {
	custom := opt.BeamSize != 0
	opt.defaults()
	return &Incremental{opt: opt, store: make(map[string]*chainEntry), full: custom}
}

// stableOf converts a logical edge index to its stable id.
func stableOf(i, nDyn int) int {
	if i < nDyn {
		return i
	}
	return -(i - nDyn + 1)
}

// logicalOf converts a stable id back to the logical index under the
// current dynamic-section size.
func logicalOf(sid, nDyn int) int {
	if sid >= 0 {
		return sid
	}
	return nDyn + (-sid - 1)
}

func encodeChain(sids []int) string {
	b := make([]byte, 0, 4*len(sids))
	for _, s := range sids {
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, '|')
	}
	return string(b)
}

// Search folds the graph's growth since the previous call into the chain
// store and returns the full cycle list, equal to
// SearchGraph(g, simScoreOf, opt) for the same graph and pinned options.
func (inc *Incremental) Search(g *graph.Graph, simScoreOf func(faults.ID) float64) []Cycle {
	return inc.search(g, nil, simScoreOf)
}

// SearchDelta is Search with the round's delta already in hand (the
// anytime pipeline computes it when the wave executes): when the delta's
// window matches exactly what this searcher has not yet folded, the
// graph is not re-scanned; any mismatch falls back to recomputing.
func (inc *Incremental) SearchDelta(g *graph.Graph, delta graph.Delta, simScoreOf func(faults.ID) float64) []Cycle {
	return inc.search(g, &delta, simScoreOf)
}

func (inc *Incremental) search(g *graph.Graph, delta *graph.Delta, simScoreOf func(faults.ID) float64) []Cycle {
	opt := inc.opt
	if simScoreOf == nil {
		simScoreOf = g.ScoreFunc()
	}
	if inc.groups == nil {
		inc.groups = opt.NestGroups
		if inc.groups == nil {
			inc.groups = g.NestGroups()
		}
	}
	opt.NestGroups = inc.groups

	if inc.full {
		return searchFast(g, simScoreOf, opt)
	}

	m := newMatcher(g, simScoreOf)
	nDyn := g.DynLen()
	if g.Len()-nDyn != inc.lastStatics {
		// The static section changed (graph stitching mid-campaign): stored
		// stable ids are void. Start over.
		inc.primed = false
	}
	if !inc.primed {
		inc.rebuild(m, opt, nDyn)
	} else {
		var edges []int
		if delta != nil && delta.FromSeq == inc.lastSeq && delta.ToSeq == g.RawLen() {
			edges = delta.Edges
		} else {
			edges = g.DeltaSince(inc.lastSeq).Edges
		}
		inc.update(m, opt, nDyn, edges)
	}
	if len(inc.store) >= opt.BeamSize {
		// More reported cycles than beam slots: a future full enumeration
		// is plausibly under beam pressure even if the restricted ones were
		// not. Stop trusting restricted discovery before that can happen.
		inc.full = true
	}
	if inc.full {
		// This round's enumeration truncated the beam: chain reuse is
		// unsound, now and for every later round.
		return searchFast(g, simScoreOf, opt)
	}
	inc.primed = true
	inc.lastSeq = g.RawLen()
	inc.lastStatics = g.Len() - nDyn

	// Fold the store with the current scores: dedup by signature with the
	// one-shot search's deterministic preference, then order by (score,
	// signature). Signatures and arriving rotations are cached per chain
	// (invariant until a delta touches it), so a round's re-rank builds
	// no strings and runs no match checks for unchanged chains.
	best := make(map[string]*bestEntry, len(inc.store))
	for _, e := range inc.store {
		can := e.logical(nDyn)
		m.mergeBestSig(best, e.sig, can, m.chainScoreAt(can, e.rots))
	}
	return orderBest(best)
}

// storeSink returns a chain sink that records closed cycles as canonical
// stable-id chains, dropping single-nest-family structural artifacts and
// (in close-through discovery, vetArrival) chains the one-shot search
// would never report. The signature and arriving rotations are derived
// once here, not per round.
func (inc *Incremental) storeSink(m *matcher, opt Options, nDyn int, vetArrival bool, mu *sync.Mutex) chainSink {
	return func(c *ichain) {
		can := canonicalRotation(c.idx)
		if m.oneNestFamilyIdx(can, opt.NestGroups) {
			return
		}
		sids := make([]int, len(can))
		for i, k := range can {
			sids[i] = stableOf(k, nDyn)
		}
		key := encodeChain(sids)
		mu.Lock()
		_, dup := inc.store[key]
		mu.Unlock()
		if dup {
			return
		}
		rots := m.arrivingRotations(can)
		if vetArrival && len(rots) == 0 {
			return
		}
		e := &chainEntry{
			sids:   sids,
			sig:    m.signatureOf(can),
			rots:   rots,
			can:    append([]int(nil), can...),
			canDyn: nDyn,
		}
		mu.Lock()
		if _, ok := inc.store[key]; !ok {
			inc.store[key] = e
		}
		mu.Unlock()
	}
}

// rebuild re-enumerates the store from scratch (first round or
// static-section change) with the one-shot semantics: every arrival is a
// reported cycle by definition.
func (inc *Incremental) rebuild(m *matcher, opt Options, nDyn int) {
	inc.store = make(map[string]*chainEntry)
	var mu sync.Mutex
	if m.runChains(allSeeds(m.ix.N), opt, false, nil, inc.storeSink(m, opt, nDyn, false, &mu)) {
		inc.full = true
	}
}

// update folds one delta: revalidate stored chains through touched edges
// (validity, reportability, and the arrival set can all flip), then
// discover new cycles by seeding a close-through expansion at exactly
// those edges.
func (inc *Incremental) update(m *matcher, opt Options, nDyn int, touched []int) {
	if len(touched) == 0 {
		return
	}
	aff := make(map[int]bool, len(touched))
	for _, i := range touched {
		aff[stableOf(i, nDyn)] = true
	}
	for key, e := range inc.store {
		hit := false
		for _, sid := range e.sids {
			if aff[sid] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		can := e.logical(nDyn)
		if !m.validCycle(can, opt) {
			delete(inc.store, key)
			continue
		}
		if e.rots = m.arrivingRotations(can); len(e.rots) == 0 {
			delete(inc.store, key)
		}
	}
	var mu sync.Mutex
	if m.runChains(touched, opt, true, nil, inc.storeSink(m, opt, nDyn, true, &mu)) {
		inc.full = true
	}
}

// Reset discards all incremental state: the chain store, the graph
// watermarks, and the pinned nest families. The next Search re-primes
// from scratch, exactly like a freshly-built searcher, and re-resolves
// nest families from its options or the searched graph. Callers use it
// when the graph they feed is rebuilt rather than grown -- the online
// monitor's evidence window evicting a bucket replaces the whole graph,
// so watermarks taken against the old graph are meaningless. A beam
// truncation (full) is NOT cleared: the fallback was triggered by scale,
// and a rebuilt graph of similar scale would only re-trigger it after
// one unsound round.
func (inc *Incremental) Reset() {
	inc.store = make(map[string]*chainEntry)
	inc.groups = nil
	inc.lastSeq = 0
	inc.lastStatics = 0
	inc.primed = false
}

// NearCycleFaults reports every fault sitting on a near-cycle of g: a
// valid chain whose endpoint returns to its start fault while the closing
// compatibility check fails -- a cycle one piece of causal evidence short
// of being reported. The adaptive allocation protocol reweights phase-
// three draws toward clusters containing these faults, spending the
// remaining budget where one more experiment could close a loop.
func NearCycleFaults(g *graph.Graph, opt Options) map[faults.ID]bool {
	opt.defaults()
	if opt.NestGroups == nil {
		opt.NestGroups = g.NestGroups()
	}
	m := newMatcher(g, func(faults.ID) float64 { return 1 })
	ix := m.ix
	var mu sync.Mutex
	out := make(map[faults.ID]bool)
	near := func(idx []int) {
		mu.Lock()
		for _, k := range idx {
			out[ix.FaultOf[ix.From[k]]] = true
			out[ix.FaultOf[ix.To[k]]] = true
		}
		mu.Unlock()
	}
	m.runChains(allSeeds(ix.N), opt, false, near, func(*ichain) {})
	return out
}
