package beam

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core/compat"
	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
	"repro/internal/trace"
)

// mkMatcher builds the search matcher over a graph interned from a flat
// edge slice, as Search does.
func mkMatcher(edges []fca.Edge, simScoreOf func(faults.ID) float64) *matcher {
	if simScoreOf == nil {
		simScoreOf = func(faults.ID) float64 { return 1 }
	}
	return newMatcher(graph.FromEdges(edges), simScoreOf)
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b []int32
		want bool
	}{
		{nil, nil, false},
		{[]int32{1}, nil, false},
		{[]int32{1, 3}, []int32{2, 3}, true},
		{[]int32{1, 2}, []int32{3, 4}, false},
		{[]int32{7}, []int32{7}, true},
	}
	for _, c := range cases {
		if got := intersects(c.a, c.b); got != c.want {
			t.Errorf("intersects(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

func TestIntersectsCommutativeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		mk := func(xs []uint8) []int32 {
			m := map[int32]bool{}
			for _, x := range xs {
				m[int32(x%16)] = true
			}
			out := make([]int32, 0, len(m))
			for k := range m {
				out = append(out, k)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		sa, sb := mk(a), mk(b)
		return intersects(sa, sb) == intersects(sb, sa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInternedKeysDeduplicated pins the insertion-time interning: two
// occurrences with the same stack (and empty branch trace) collapse to a
// single interned key in both the stack-only and full key sets.
func TestInternedKeysDeduplicated(t *testing.T) {
	s := compat.State{Occ: []trace.Occurrence{
		{Stack: []string{"f", "g"}, Branches: nil},
		{Stack: []string{"f", "g"}},
	}}
	e := fca.Edge{From: "a", To: "b", Kind: faults.EI, Test: "t", ToState: s}
	m := mkMatcher([]fca.Edge{e}, nil)
	if got := m.ix.ToStack[0]; len(got) != 1 {
		t.Fatalf("stack key set = %v, want deduplicated to 1", got)
	}
	if got := m.ix.ToFull[0]; len(got) != 1 {
		t.Fatalf("full key set = %v, want deduplicated to 1", got)
	}
}

func TestConnectorSequencingRules(t *testing.T) {
	mk := func(from, to faults.ID, kind faults.EdgeKind) fca.Edge {
		return fca.Edge{From: from, To: to, Kind: kind,
			FromClass: faults.ClassDelay, ToClass: faults.ClassDelay,
			FromState: compat.State{DelayFault: true}, ToState: compat.State{DelayFault: true}}
	}
	// Static connectors sort after the dynamic edge in graph order; keep
	// the index mapping explicit by looking edges up by kind+endpoints.
	edges := []fca.Edge{
		mk("a", "b", faults.ICFG),
		mk("b", "c", faults.ICFG),
		mk("b", "c", faults.CFG),
		mk("c", "d", faults.CFG),
		mk("c", "d", faults.SD),
	}
	m := mkMatcher(edges, nil)
	find := func(from faults.ID, kind faults.EdgeKind) int {
		for i := range m.edges {
			if m.edges[i].From == from && m.edges[i].Kind == kind {
				return i
			}
		}
		t.Fatalf("edge %s/%v not found", from, kind)
		return -1
	}
	ab := find("a", faults.ICFG)
	bcI := find("b", faults.ICFG)
	bcC := find("b", faults.CFG)
	cdC := find("c", faults.CFG)
	cdS := find("c", faults.SD)
	if m.matchIdx(ab, bcI) {
		t.Error("ICFG -> ICFG must not chain")
	}
	if !m.matchIdx(ab, bcC) {
		t.Error("ICFG -> CFG must chain (pattern 2b)")
	}
	if m.matchIdx(bcC, cdC) {
		t.Error("CFG -> CFG must not chain")
	}
	if !m.matchIdx(bcC, cdS) {
		t.Error("CFG -> dynamic S+(D) must chain")
	}
}

func TestOneNestFamilyFilter(t *testing.T) {
	groups := map[faults.ID]int{"p": 0, "c1": 0, "c2": 0}
	mk := func(from, to faults.ID, kind faults.EdgeKind) fca.Edge {
		return fca.Edge{From: from, To: to, Kind: kind,
			FromClass: faults.ClassDelay, ToClass: faults.ClassDelay}
	}
	inNest := Cycle{Edges: []fca.Edge{mk("p", "c1", faults.SD), mk("c1", "p", faults.ICFG)}}
	if !oneNestFamily(inNest, groups) {
		t.Error("pure nest-family cycle must be filtered")
	}
	crossing := Cycle{Edges: []fca.Edge{mk("p", "x", faults.SD), mk("x", "p", faults.SD)}}
	if oneNestFamily(crossing, groups) {
		t.Error("cycle leaving the nest must be kept")
	}
	if oneNestFamily(inNest, nil) {
		t.Error("no nest info means no filtering")
	}
}

func TestCountsDelayDistinct(t *testing.T) {
	edges := []fca.Edge{
		{From: "l1", To: "x", Kind: faults.SD, FromClass: faults.ClassDelay, ToClass: faults.ClassDelay},
		{From: "l1", To: "y", Kind: faults.ED, FromClass: faults.ClassDelay, ToClass: faults.ClassException},
		{From: "l2", To: "z", Kind: faults.SD, FromClass: faults.ClassDelay, ToClass: faults.ClassDelay},
	}
	m := mkMatcher(edges, nil)
	c := &ichain{idx: []int{0}}
	if m.countsDelay(c, 1) {
		t.Error("same delay fault must not count twice")
	}
	if !m.countsDelay(c, 2) {
		t.Error("a new delay fault must count")
	}
}

// TestSearchGraphMatchesSearch pins the wrapper equivalence: searching a
// prebuilt graph and searching the flat slice it was interned from yield
// identical cycles.
func TestSearchGraphMatchesSearch(t *testing.T) {
	st := func(stack ...string) compat.State {
		return compat.State{Occ: []trace.Occurrence{{Stack: stack}}}
	}
	edges := []fca.Edge{
		{From: "a", To: "b", Kind: faults.EI, Test: "t1", FromState: st("x"), ToState: st("y")},
		{From: "b", To: "a", Kind: faults.EI, Test: "t2", FromState: st("y"), ToState: st("x")},
		{From: "b", To: "c", Kind: faults.EI, Test: "t3", FromState: st("y"), ToState: st("z")},
		{From: "c", To: "a", Kind: faults.EI, Test: "t4", FromState: st("z"), ToState: st("x")},
	}
	g := graph.FromEdges(edges)
	viaGraph := SearchGraph(g, nil, Options{})
	viaSlice := Search(edges, nil, Options{})
	if len(viaGraph) != len(viaSlice) {
		t.Fatalf("cycle counts diverge: %d vs %d", len(viaGraph), len(viaSlice))
	}
	for i := range viaGraph {
		if viaGraph[i].Signature() != viaSlice[i].Signature() || viaGraph[i].Score != viaSlice[i].Score {
			t.Fatalf("cycle %d diverges: %v vs %v", i, viaGraph[i], viaSlice[i])
		}
	}
}
