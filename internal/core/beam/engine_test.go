package beam

import (
	"testing"
	"testing/quick"

	"repro/internal/core/compat"
	"repro/internal/core/fca"
	"repro/internal/faults"
	"repro/internal/trace"
)

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b []string
		want bool
	}{
		{nil, nil, false},
		{[]string{"a"}, nil, false},
		{[]string{"a", "c"}, []string{"b", "c"}, true},
		{[]string{"a", "b"}, []string{"c", "d"}, false},
		{[]string{"x"}, []string{"x"}, true},
	}
	for _, c := range cases {
		if got := intersects(c.a, c.b); got != c.want {
			t.Errorf("intersects(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

func TestIntersectsCommutativeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		mk := func(xs []uint8) []string {
			m := map[string]bool{}
			for _, x := range xs {
				m[string(rune('a'+x%16))] = true
			}
			return sortedKeys(m)
		}
		sa, sb := mk(a), mk(b)
		return intersects(sa, sb) == intersects(sb, sa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStateKeysDelayVsFull(t *testing.T) {
	s := compat.State{Occ: []trace.Occurrence{
		{Stack: []string{"f", "g"}, Branches: nil},
		{Stack: []string{"f", "g"}},
	}}
	stack, full := stateKeys(s)
	if len(stack) != 1 {
		t.Fatalf("stack keys = %v, want deduplicated", stack)
	}
	if len(full) != 1 {
		t.Fatalf("full keys = %v", full)
	}
}

func TestConnectorSequencingRules(t *testing.T) {
	mk := func(from, to faults.ID, kind faults.EdgeKind) fca.Edge {
		return fca.Edge{From: from, To: to, Kind: kind,
			FromClass: faults.ClassDelay, ToClass: faults.ClassDelay,
			FromState: compat.State{DelayFault: true}, ToState: compat.State{DelayFault: true}}
	}
	m := newMatcher([]fca.Edge{
		mk("a", "b", faults.ICFG), // 0
		mk("b", "c", faults.ICFG), // 1
		mk("b", "c", faults.CFG),  // 2
		mk("c", "d", faults.CFG),  // 3
		mk("c", "d", faults.SD),   // 4
	}, func(faults.ID) float64 { return 1 })
	if m.matchIdx(0, 1) {
		t.Error("ICFG -> ICFG must not chain")
	}
	if !m.matchIdx(0, 2) {
		t.Error("ICFG -> CFG must chain (pattern 2b)")
	}
	if m.matchIdx(2, 3) {
		t.Error("CFG -> CFG must not chain")
	}
	if !m.matchIdx(2, 4) {
		t.Error("CFG -> dynamic S+(D) must chain")
	}
}

func TestOneNestFamilyFilter(t *testing.T) {
	groups := map[faults.ID]int{"p": 0, "c1": 0, "c2": 0}
	mk := func(from, to faults.ID, kind faults.EdgeKind) fca.Edge {
		return fca.Edge{From: from, To: to, Kind: kind,
			FromClass: faults.ClassDelay, ToClass: faults.ClassDelay}
	}
	inNest := Cycle{Edges: []fca.Edge{mk("p", "c1", faults.SD), mk("c1", "p", faults.ICFG)}}
	if !oneNestFamily(inNest, groups) {
		t.Error("pure nest-family cycle must be filtered")
	}
	crossing := Cycle{Edges: []fca.Edge{mk("p", "x", faults.SD), mk("x", "p", faults.SD)}}
	if oneNestFamily(crossing, groups) {
		t.Error("cycle leaving the nest must be kept")
	}
	if oneNestFamily(inNest, nil) {
		t.Error("no nest info means no filtering")
	}
}

func TestCountsDelayDistinct(t *testing.T) {
	edges := []fca.Edge{
		{From: "l1", To: "x", Kind: faults.SD, FromClass: faults.ClassDelay, ToClass: faults.ClassDelay},
		{From: "l1", To: "y", Kind: faults.ED, FromClass: faults.ClassDelay, ToClass: faults.ClassException},
		{From: "l2", To: "z", Kind: faults.SD, FromClass: faults.ClassDelay, ToClass: faults.ClassDelay},
	}
	m := newMatcher(edges, func(faults.ID) float64 { return 1 })
	c := &ichain{idx: []int{0}}
	if m.countsDelay(c, 1) {
		t.Error("same delay fault must not count twice")
	}
	if !m.countsDelay(c, 2) {
		t.Error("a new delay fault must count")
	}
}
