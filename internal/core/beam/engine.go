package beam

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/core/compat"
	"repro/internal/core/fca"
	"repro/internal/faults"
)

// matcher is the preprocessed search index: per-edge canonical state keys
// (computed once, instead of rebuilding strings on every match), plus a
// From-fault index so expansion only scans plausible successors.
type matcher struct {
	edges  []fca.Edge
	byFrom map[faults.ID][]int

	fromStack [][]string // sorted stack-only keys of FromState
	fromFull  [][]string // sorted stack|branch keys of FromState
	toStack   [][]string
	toFull    [][]string
	fromDelay []bool
	toDelay   []bool
	scores    []float64 // SimScore of the injected fault (From)
	connector []bool    // ICFG/CFG edges (not injections)
}

func newMatcher(edges []fca.Edge, simScoreOf func(faults.ID) float64) *matcher {
	m := &matcher{
		edges:     edges,
		byFrom:    make(map[faults.ID][]int),
		fromStack: make([][]string, len(edges)),
		fromFull:  make([][]string, len(edges)),
		toStack:   make([][]string, len(edges)),
		toFull:    make([][]string, len(edges)),
		fromDelay: make([]bool, len(edges)),
		toDelay:   make([]bool, len(edges)),
		scores:    make([]float64, len(edges)),
		connector: make([]bool, len(edges)),
	}
	for i, e := range edges {
		m.byFrom[e.From] = append(m.byFrom[e.From], i)
		m.fromStack[i], m.fromFull[i] = stateKeys(e.FromState)
		m.toStack[i], m.toFull[i] = stateKeys(e.ToState)
		m.fromDelay[i] = e.FromState.DelayFault
		m.toDelay[i] = e.ToState.DelayFault
		m.scores[i] = simScoreOf(e.From)
		m.connector[i] = e.Kind == faults.ICFG || e.Kind == faults.CFG
	}
	return m
}

// stateKeys canonicalises a compat.State into sorted stack-only and
// stack+branch key sets.
func stateKeys(s compat.State) (stack, full []string) {
	ss := make(map[string]bool, len(s.Occ))
	fs := make(map[string]bool, len(s.Occ))
	for _, o := range s.Occ {
		sk := strings.Join(o.Stack, ">")
		ss[sk] = true
		var b strings.Builder
		b.WriteString(sk)
		b.WriteByte('|')
		for _, be := range o.Branches {
			b.WriteString(be.ID)
			if be.Taken {
				b.WriteString("=T;")
			} else {
				b.WriteString("=F;")
			}
		}
		fs[b.String()] = true
	}
	return sortedKeys(ss), sortedKeys(fs)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// intersects reports whether two sorted string sets share an element.
func intersects(a, b []string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// matchIdx implements Algorithm 1's match over preprocessed edges i -> j.
func (m *matcher) matchIdx(i, j int) bool {
	e1, e2 := &m.edges[i], &m.edges[j]
	if e1.To != e2.From || e1.ToClass != e2.FromClass {
		return false
	}
	// Connector sequencing per §6.1: an ICFG (child->parent) edge may be
	// followed by a CFG (parent->sibling) edge or by a dynamic edge; two
	// like connectors in a row only walk the static nest without any
	// dynamic evidence.
	if e1.Kind == faults.ICFG && e2.Kind == faults.ICFG {
		return false
	}
	if e1.Kind == faults.CFG && (e2.Kind == faults.CFG || e2.Kind == faults.ICFG) {
		return false
	}
	switch e2.Kind {
	case faults.ED, faults.SD, faults.ICFG, faults.CFG:
		if e1.ToClass != faults.ClassDelay {
			return false
		}
	case faults.EI, faults.SI:
		if e1.ToClass == faults.ClassDelay {
			return false
		}
	}
	// Local compatibility: missing evidence passes; delay faults compare
	// stacks only.
	toS, toF := m.toStack[i], m.toFull[i]
	fromS, fromF := m.fromStack[j], m.fromFull[j]
	if len(toS) == 0 || len(fromS) == 0 {
		return true
	}
	if m.toDelay[i] || m.fromDelay[j] {
		return intersects(toS, fromS)
	}
	return intersects(toF, fromF)
}

// ichain is the compact chain representation: indices into the edge slice.
type ichain struct {
	idx      []int
	score    float64
	injs     int
	delayInj uint8 // count of distinct delay injections
}

func (m *matcher) meanScore(c *ichain) float64 {
	if c.injs == 0 {
		return 1
	}
	return c.score / float64(c.injs)
}

// contains reports whether the chain already uses edge j (chains never
// repeat an edge: a repeated edge only re-traverses an already-found
// sub-cycle).
func (c *ichain) contains(j int) bool {
	for _, k := range c.idx {
		if k == j {
			return true
		}
	}
	return false
}

// countsDelay reports whether appending edge j adds a NEW distinct delay
// injection.
func (m *matcher) countsDelay(c *ichain, j int) bool {
	if m.connector[j] || m.edges[j].FromClass != faults.ClassDelay {
		return false
	}
	from := m.edges[j].From
	for _, k := range c.idx {
		if !m.connector[k] && m.edges[k].From == from {
			return false
		}
	}
	return true
}

// searchFast is the optimized parallel beam search engine behind Search.
func searchFast(edges []fca.Edge, simScoreOf func(faults.ID) float64, opt Options) []Cycle {
	m := newMatcher(edges, simScoreOf)

	mkChain := func(i int) ichain {
		c := ichain{idx: []int{i}}
		if !m.connector[i] {
			c.injs = 1
			c.score = m.scores[i]
			if m.edges[i].FromClass == faults.ClassDelay {
				c.delayInj = 1
			}
		}
		return c
	}

	// bestEntry caches the winning candidate per signature: the cycle
	// normalized to its canonical edge-index rotation, plus that rotation
	// for cheap integer comparisons.
	type bestEntry struct {
		cy  Cycle
		idx []int
	}
	var (
		mu   sync.Mutex
		best = map[string]*bestEntry{}
	)
	// addCycle merges candidates per rotation-invariant signature with a
	// deterministic preference (lowest score, then smallest canonical
	// edge-index rotation): distinct chains can share a signature, and
	// first-arrival dedup would let goroutine scheduling pick the
	// surviving representative -- the search must be a pure function of
	// its input. Comparing index rotations instead of rendered edge keys
	// keeps the duplicate-arrival path (every rotation of every cycle)
	// free of string building.
	addCycle := func(c *ichain) {
		can := canonicalRotation(c.idx)
		cy := Cycle{Edges: make([]fca.Edge, len(can)), Score: m.meanScore(c)}
		for i, k := range can {
			cy.Edges[i] = edges[k]
		}
		if oneNestFamily(cy, opt.NestGroups) {
			return
		}
		sig := cy.Signature()
		mu.Lock()
		if e, ok := best[sig]; !ok || cy.Score < e.cy.Score ||
			(cy.Score == e.cy.Score && lessIdx(can, e.idx)) {
			best[sig] = &bestEntry{cy: cy, idx: can}
		}
		mu.Unlock()
	}

	queue := make([]ichain, 0, len(edges))
	for i := range edges {
		c := mkChain(i)
		if opt.MaxDelayInjections >= 0 && int(c.delayInj) > opt.MaxDelayInjections {
			continue
		}
		if m.matchIdx(i, i) {
			addCycle(&c)
		}
		queue = append(queue, c)
	}

	for level := 1; level < opt.MaxLen && len(queue) > 0; level++ {
		next := m.expand(queue, opt, addCycle)
		sort.Slice(next, func(a, b int) bool {
			sa, sb := m.meanScore(&next[a]), m.meanScore(&next[b])
			if sa != sb {
				return sa < sb
			}
			return lessIdx(next[a].idx, next[b].idx)
		})
		if len(next) > opt.BeamSize {
			next = next[:opt.BeamSize]
		}
		queue = next
	}

	cycles := make([]Cycle, 0, len(best))
	for _, e := range best {
		cycles = append(cycles, e.cy)
	}
	sort.Slice(cycles, func(i, j int) bool {
		if cycles[i].Score != cycles[j].Score {
			return cycles[i].Score < cycles[j].Score
		}
		return cycles[i].Signature() < cycles[j].Signature()
	})
	return cycles
}

// canonicalRotation returns the lexicographically-smallest rotation of a
// chain's edge-index sequence: every rotation of a cycle normalizes to
// the same representative, and the order is total over distinct edge
// sequences (indices are unique within a chain).
func canonicalRotation(idx []int) []int {
	bestR := 0
	for r := 1; r < len(idx); r++ {
		for i := 0; i < len(idx); i++ {
			a, b := idx[(r+i)%len(idx)], idx[(bestR+i)%len(idx)]
			if a != b {
				if a < b {
					bestR = r
				}
				break
			}
		}
	}
	out := make([]int, len(idx))
	for i := range idx {
		out[i] = idx[(bestR+i)%len(idx)]
	}
	return out
}

// oneNestFamily reports whether every fault touched by the cycle belongs
// to a single loop-nest family: such "cycles" merely restate that a nested
// loop shares fate with its parent.
func oneNestFamily(cy Cycle, groups map[faults.ID]int) bool {
	if len(groups) == 0 {
		return false
	}
	family := -1
	for _, e := range cy.Edges {
		for _, f := range []faults.ID{e.From, e.To} {
			g, ok := groups[f]
			if !ok {
				return false // a fault outside any nest: real cycle
			}
			if family == -1 {
				family = g
			} else if family != g {
				return false
			}
		}
	}
	return family != -1
}

func lessIdx(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func (m *matcher) expand(queue []ichain, opt Options, addCycle func(*ichain)) []ichain {
	shards := opt.Workers
	if shards > len(queue) {
		shards = len(queue)
	}
	if shards == 0 {
		return nil
	}
	results := make([][]ichain, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []ichain
			for qi := w; qi < len(queue); qi += shards {
				c := &queue[qi]
				last := c.idx[len(c.idx)-1]
				for _, j := range m.byFrom[m.edges[last].To] {
					if c.contains(j) || !m.matchIdx(last, j) {
						continue
					}
					nd := c.delayInj
					if m.countsDelay(c, j) {
						nd++
					}
					if opt.MaxDelayInjections >= 0 && int(nd) > opt.MaxDelayInjections {
						continue
					}
					nc := ichain{
						idx:      append(append(make([]int, 0, len(c.idx)+1), c.idx...), j),
						score:    c.score,
						injs:     c.injs,
						delayInj: nd,
					}
					if !m.connector[j] {
						nc.injs++
						nc.score += m.scores[j]
					}
					if m.matchIdx(j, nc.idx[0]) {
						addCycle(&nc)
					} else {
						local = append(local, nc)
					}
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	var next []ichain
	for _, r := range results {
		next = append(next, r...)
	}
	return next
}
