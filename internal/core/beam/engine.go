package beam

import (
	"sort"
	"sync"

	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
)

// matcher is the search engine's view of a prebuilt graph: the columnar
// index (dense fault ids and interned state-key id sets, computed once at
// graph insertion), the materialized edges for cycle output, and the
// per-edge scores. Matching costs integer comparisons only -- no state
// key is ever built or hashed during a search.
type matcher struct {
	ix     *graph.Index
	edges  []fca.Edge // materialized once, for cycle output
	scores []float64  // SimScore of the injected fault (From)
}

func newMatcher(g *graph.Graph, simScoreOf func(faults.ID) float64) *matcher {
	ix := g.Index()
	m := &matcher{
		ix:     ix,
		edges:  ix.Edges,
		scores: make([]float64, ix.N),
	}
	for i := 0; i < ix.N; i++ {
		m.scores[i] = simScoreOf(ix.FaultOf[ix.From[i]])
	}
	return m
}

// intersects reports whether two sorted interned-key-id sets share an
// element.
func intersects(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// matchIdx implements Algorithm 1's match over indexed edges i -> j.
func (m *matcher) matchIdx(i, j int) bool {
	ix := m.ix
	if ix.To[i] != ix.From[j] || ix.ToClass[i] != ix.FromClass[j] {
		return false
	}
	// Connector sequencing per §6.1: an ICFG (child->parent) edge may be
	// followed by a CFG (parent->sibling) edge or by a dynamic edge; two
	// like connectors in a row only walk the static nest without any
	// dynamic evidence.
	if ix.Kind[i] == faults.ICFG && ix.Kind[j] == faults.ICFG {
		return false
	}
	if ix.Kind[i] == faults.CFG && (ix.Kind[j] == faults.CFG || ix.Kind[j] == faults.ICFG) {
		return false
	}
	switch ix.Kind[j] {
	case faults.ED, faults.SD, faults.ICFG, faults.CFG:
		if ix.ToClass[i] != faults.ClassDelay {
			return false
		}
	case faults.EI, faults.SI:
		if ix.ToClass[i] == faults.ClassDelay {
			return false
		}
	}
	// Local compatibility: missing evidence passes; delay faults compare
	// stacks only.
	toS, fromS := ix.ToStack[i], ix.FromStack[j]
	if len(toS) == 0 || len(fromS) == 0 {
		return true
	}
	if ix.ToDelay[i] || ix.FromDelay[j] {
		return intersects(toS, fromS)
	}
	return intersects(ix.ToFull[i], ix.FromFull[j])
}

// ichain is the compact chain representation: indices into the edge slice.
type ichain struct {
	idx      []int
	score    float64
	injs     int
	delayInj uint8 // count of distinct delay injections
}

func (m *matcher) meanScore(c *ichain) float64 {
	if c.injs == 0 {
		return 1
	}
	return c.score / float64(c.injs)
}

// contains reports whether the chain already uses edge j (chains never
// repeat an edge: a repeated edge only re-traverses an already-found
// sub-cycle).
func (c *ichain) contains(j int) bool {
	for _, k := range c.idx {
		if k == j {
			return true
		}
	}
	return false
}

// countsDelay reports whether appending edge j adds a NEW distinct delay
// injection.
func (m *matcher) countsDelay(c *ichain, j int) bool {
	ix := m.ix
	if ix.Connector[j] || ix.FromClass[j] != faults.ClassDelay {
		return false
	}
	from := ix.From[j]
	for _, k := range c.idx {
		if !ix.Connector[k] && ix.From[k] == from {
			return false
		}
	}
	return true
}

// mkChain seeds a length-1 chain from edge i.
func (m *matcher) mkChain(i int) ichain {
	ix := m.ix
	c := ichain{idx: []int{i}}
	if !ix.Connector[i] {
		c.injs = 1
		c.score = m.scores[i]
		if ix.FromClass[i] == faults.ClassDelay {
			c.delayInj = 1
		}
	}
	return c
}

// chainSink receives every cyclic chain the expansion closes, with the
// chain state as discovered (its idx starts at the rotation the search
// grew it from). Sinks may be called concurrently from expansion workers
// and must serialize internally.
type chainSink func(c *ichain)

// nearSink receives every chain whose newest edge returns to the chain's
// start fault without passing the closing compatibility check: a cycle
// one piece of evidence short of closing. Same concurrency contract as
// chainSink.
type nearSink func(idx []int)

// runChains is the shared chain-expansion core behind the one-shot
// search, the incremental search, and the near-cycle probe: it grows
// chains from the given seed edges, level-synchronous with a beam of
// opt.BeamSize, reporting closed cycles to sink (and almost-closed
// chains to near, when non-nil). A chain that closes leaves the queue --
// extending it would only re-traverse the reported cycle -- except in
// close-through mode (through = true), where closed chains keep
// expanding; the incremental search uses that mode to discover every
// cycle through a delta-touched seed even when the rotation rooted there
// closes early. The returned flag reports whether any level truncated
// the beam -- in which case the enumeration was not exhaustive and
// incremental reuse of its results is unsound.
func (m *matcher) runChains(seeds []int, opt Options, through bool, near nearSink, sink chainSink) bool {
	ix := m.ix
	truncated := false
	queue := make([]ichain, 0, len(seeds))
	for _, i := range seeds {
		c := m.mkChain(i)
		if opt.MaxDelayInjections >= 0 && int(c.delayInj) > opt.MaxDelayInjections {
			continue
		}
		if m.matchIdx(i, i) {
			// Sink a copy: addressing c itself would heap-box every seed
			// chain (the sink callee is opaque to escape analysis).
			closed := c
			sink(&closed)
		} else if near != nil && ix.To[i] == ix.From[i] {
			near(c.idx)
		}
		queue = append(queue, c)
	}
	for level := 1; level < opt.MaxLen && len(queue) > 0; level++ {
		next := m.expand(queue, opt, through, near, sink)
		sort.Slice(next, func(a, b int) bool {
			sa, sb := m.meanScore(&next[a]), m.meanScore(&next[b])
			if sa != sb {
				return sa < sb
			}
			return lessIdx(next[a].idx, next[b].idx)
		})
		if len(next) > opt.BeamSize {
			truncated = true
			next = next[:opt.BeamSize]
		}
		queue = next
	}
	return truncated
}

func (m *matcher) expand(queue []ichain, opt Options, through bool, near nearSink, sink chainSink) []ichain {
	ix := m.ix
	shards := opt.Workers
	if shards > len(queue) {
		shards = len(queue)
	}
	if shards == 0 {
		return nil
	}
	results := make([][]ichain, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []ichain
			for qi := w; qi < len(queue); qi += shards {
				c := &queue[qi]
				last := c.idx[len(c.idx)-1]
				for _, j32 := range ix.ByFrom[ix.To[last]] {
					j := int(j32)
					if c.contains(j) || !m.matchIdx(last, j) {
						continue
					}
					nd := c.delayInj
					if m.countsDelay(c, j) {
						nd++
					}
					if opt.MaxDelayInjections >= 0 && int(nd) > opt.MaxDelayInjections {
						continue
					}
					nc := ichain{
						idx:      append(append(make([]int, 0, len(c.idx)+1), c.idx...), j),
						score:    c.score,
						injs:     c.injs,
						delayInj: nd,
					}
					if !ix.Connector[j] {
						nc.injs++
						nc.score += m.scores[j]
					}
					if m.matchIdx(j, nc.idx[0]) {
						sink(&nc)
						if through {
							local = append(local, nc)
						}
					} else {
						if near != nil && ix.To[j] == ix.From[nc.idx[0]] {
							near(nc.idx)
						}
						local = append(local, nc)
					}
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	var next []ichain
	for _, r := range results {
		next = append(next, r...)
	}
	return next
}

// bestEntry caches the winning candidate per signature: the cycle
// normalized to its canonical edge-index rotation, plus that rotation
// for cheap integer comparisons.
type bestEntry struct {
	cy  Cycle
	idx []int
}

// mergeBest merges one canonical candidate into the per-signature winners
// with a deterministic preference (lowest score, then smallest canonical
// edge-index rotation): distinct chains can share a signature, and
// first-arrival dedup would let goroutine scheduling pick the surviving
// representative -- the search must be a pure function of its input.
// Comparing index rotations instead of rendered edge keys keeps the
// duplicate-arrival path (every rotation of every cycle) free of string
// building, and the Cycle itself (the edge slice) is materialized only
// when the candidate actually wins its dedup slot.
func (m *matcher) mergeBest(best map[string]*bestEntry, can []int, score float64) {
	m.mergeBestSig(best, m.signatureOf(can), can, score)
}

// mergeBestSig is mergeBest with a precomputed signature (the
// incremental fold caches signatures per stored chain, so re-ranking a
// round builds no strings for unchanged chains).
func (m *matcher) mergeBestSig(best map[string]*bestEntry, sig string, can []int, score float64) {
	if e, ok := best[sig]; !ok || score < e.cy.Score ||
		(score == e.cy.Score && lessIdx(can, e.idx)) {
		cy := Cycle{Edges: make([]fca.Edge, len(can)), Score: score}
		for i, k := range can {
			cy.Edges[i] = m.edges[k]
		}
		best[sig] = &bestEntry{cy: cy, idx: can}
	}
}

// orderBest renders the final cycle list sorted by (score, signature),
// using the signatures already computed as dedup keys -- never inside the
// comparator.
func orderBest(best map[string]*bestEntry) []Cycle {
	type sigCycle struct {
		sig string
		cy  Cycle
	}
	ordered := make([]sigCycle, 0, len(best))
	for sig, e := range best {
		ordered = append(ordered, sigCycle{sig: sig, cy: e.cy})
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].cy.Score != ordered[j].cy.Score {
			return ordered[i].cy.Score < ordered[j].cy.Score
		}
		return ordered[i].sig < ordered[j].sig
	})
	cycles := make([]Cycle, len(ordered))
	for i, sc := range ordered {
		cycles[i] = sc.cy
	}
	return cycles
}

// searchFast is the optimized parallel beam search engine behind Search
// and SearchGraph.
func searchFast(g *graph.Graph, simScoreOf func(faults.ID) float64, opt Options) []Cycle {
	m := newMatcher(g, simScoreOf)
	var (
		mu   sync.Mutex
		best = map[string]*bestEntry{}
	)
	sink := func(c *ichain) {
		can := canonicalRotation(c.idx)
		if m.oneNestFamilyIdx(can, opt.NestGroups) {
			return
		}
		score := m.meanScore(c)
		mu.Lock()
		m.mergeBest(best, can, score)
		mu.Unlock()
	}
	m.runChains(allSeeds(m.ix.N), opt, false, nil, sink)
	return orderBest(best)
}

func allSeeds(n int) []int {
	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	return seeds
}

// rotationArrives reports whether the one-shot expansion, seeded at
// rotation r of the cyclic chain, reaches full length: no proper prefix
// of length >= 2 may close early, because closed chains leave the queue.
// (A self-closing single seed edge stays queued, so length-1 prefixes
// never block.)
func (m *matcher) rotationArrives(can []int, r int) bool {
	n := len(can)
	first := can[r%n]
	for k := 2; k < n; k++ {
		if m.matchIdx(can[(r+k-1)%n], first) {
			return false
		}
	}
	return true
}

// arrivingRotations lists the rotations of a cyclic chain the one-shot
// search enumerates (rotationArrives), as offsets into can. An empty
// result means the chain is never reported. Arrival depends only on
// matchIdx among the chain's own edges, so the incremental searcher
// caches the result per stored chain and recomputes it only when a
// delta touches one of those edges.
func (m *matcher) arrivingRotations(can []int) []int {
	var rots []int
	for r := range can {
		if m.rotationArrives(can, r) {
			rots = append(rots, r)
		}
	}
	return rots
}

// chainScoreAt computes the dedup score of a stored cyclic chain: the
// minimum over its arriving rotations of the rotation-order float
// accumulation. The one-shot search accumulates a chain's score in
// discovery order (the rotation it grew from) and keeps the
// per-signature minimum across the rotations that actually arrive;
// replaying that minimum keeps incremental folds bit-identical to a full
// re-search even when float summation order matters in the last ulp.
func (m *matcher) chainScoreAt(can []int, rots []int) float64 {
	ix := m.ix
	injs := 0
	for _, k := range can {
		if !ix.Connector[k] {
			injs++
		}
	}
	if injs == 0 {
		return 1
	}
	best := 0.0
	seen := false
	for _, r := range rots {
		sum := 0.0
		for i := 0; i < len(can); i++ {
			if k := can[(r+i)%len(can)]; !ix.Connector[k] {
				sum += m.scores[k]
			}
		}
		if v := sum / float64(injs); !seen || v < best {
			best = v
			seen = true
		}
	}
	return best
}

// validCycle re-checks a stored cyclic chain against the current graph
// evidence: every cyclic-consecutive pair must still match, and the
// distinct-delay-injection limit must still hold. Evidence merges can
// flip a match in either direction (an empty evidence set passes by
// default; its first occurrence may fail to intersect), so chains through
// evidence-touched edges must be revalidated each round.
func (m *matcher) validCycle(can []int, opt Options) bool {
	ix := m.ix
	n := len(can)
	for i := 0; i < n; i++ {
		if !m.matchIdx(can[i], can[(i+1)%n]) {
			return false
		}
	}
	if opt.MaxDelayInjections >= 0 {
		delays := 0
		for i, k := range can {
			if ix.Connector[k] || ix.FromClass[k] != faults.ClassDelay {
				continue
			}
			fresh := true
			for _, p := range can[:i] {
				if !ix.Connector[p] && ix.From[p] == ix.From[k] {
					fresh = false
					break
				}
			}
			if fresh {
				delays++
			}
		}
		if delays > opt.MaxDelayInjections {
			return false
		}
	}
	return true
}

// canonicalRotation returns the lexicographically-smallest rotation of a
// chain's edge-index sequence: every rotation of a cycle normalizes to
// the same representative, and the order is total over distinct edge
// sequences (indices are unique within a chain). Already-canonical
// chains are returned as-is (the caller owns idx and never mutates it
// afterwards).
func canonicalRotation(idx []int) []int {
	bestR := 0
	for r := 1; r < len(idx); r++ {
		for i := 0; i < len(idx); i++ {
			a, b := idx[(r+i)%len(idx)], idx[(bestR+i)%len(idx)]
			if a != b {
				if a < b {
					bestR = r
				}
				break
			}
		}
	}
	if bestR == 0 {
		return idx
	}
	out := make([]int, len(idx))
	for i := range idx {
		out[i] = idx[(bestR+i)%len(idx)]
	}
	return out
}

// signatureOf renders the rotation-invariant signature of a canonical
// edge-index rotation without materializing the Cycle. It matches
// Cycle.Signature exactly (Signature is rotation-invariant, so feeding
// the canonical rotation yields the same string).
func (m *matcher) signatureOf(can []int) string {
	parts := make([]string, len(can))
	for i, k := range can {
		e := &m.edges[k]
		parts[i] = string(e.From) + "-" + e.Kind.String() + "-" + e.Test
	}
	return minRotation(parts)
}

// oneNestFamilyIdx is oneNestFamily over edge indices (no Cycle needed).
func (m *matcher) oneNestFamilyIdx(can []int, groups map[faults.ID]int) bool {
	if len(groups) == 0 {
		return false
	}
	ix := m.ix
	family := -1
	for _, k := range can {
		for _, f := range [2]faults.ID{ix.FaultOf[ix.From[k]], ix.FaultOf[ix.To[k]]} {
			g, ok := groups[f]
			if !ok {
				return false // a fault outside any nest: real cycle
			}
			if family == -1 {
				family = g
			} else if family != g {
				return false
			}
		}
	}
	return family != -1
}

// oneNestFamily reports whether every fault touched by the cycle belongs
// to a single loop-nest family: such "cycles" merely restate that a nested
// loop shares fate with its parent.
func oneNestFamily(cy Cycle, groups map[faults.ID]int) bool {
	if len(groups) == 0 {
		return false
	}
	family := -1
	for _, e := range cy.Edges {
		for _, f := range []faults.ID{e.From, e.To} {
			g, ok := groups[f]
			if !ok {
				return false // a fault outside any nest: real cycle
			}
			if family == -1 {
				family = g
			} else if family != g {
				return false
			}
		}
	}
	return family != -1
}

func lessIdx(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
