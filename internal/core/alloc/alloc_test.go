package alloc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faults"
)

// fakeExec is a scripted executor: interference[f][t] is the set of
// additional faults injecting f under workload t triggers.
type fakeExec struct {
	tests        map[faults.ID][]TestInfo
	interference map[faults.ID]map[string][]faults.ID
	calls        []string
	dupCheck     map[string]bool
	t            *testing.T
}

func (f *fakeExec) TestsFor(id faults.ID) []TestInfo { return f.tests[id] }

func (f *fakeExec) Execute(id faults.ID, test string) []faults.ID {
	key := string(id) + "@" + test
	if f.dupCheck == nil {
		f.dupCheck = map[string]bool{}
	}
	if f.dupCheck[key] {
		f.t.Errorf("Execute called twice for %s", key)
	}
	f.dupCheck[key] = true
	f.calls = append(f.calls, key)
	return f.interference[id][test]
}

func mkSpace(n int) *faults.Space {
	var pts []faults.Point
	for i := 0; i < n; i++ {
		pts = append(pts, faults.Point{ID: faults.ID(fmt.Sprintf("s.f%02d", i)), Kind: faults.Throw})
	}
	return faults.NewSpace(pts, nil)
}

// uniformExec gives every fault the same covering tests and scripted
// outcomes.
func uniformExec(t *testing.T, space *faults.Space, tests []string, intf func(f faults.ID, test string) []faults.ID) *fakeExec {
	fe := &fakeExec{
		tests:        map[faults.ID][]TestInfo{},
		interference: map[faults.ID]map[string][]faults.ID{},
		t:            t,
	}
	for _, f := range space.IDs() {
		for i, tn := range tests {
			fe.tests[f] = append(fe.tests[f], TestInfo{Name: tn, Coverage: 100 - i})
		}
		m := map[string][]faults.ID{}
		for _, tn := range tests {
			m[tn] = intf(f, tn)
		}
		fe.interference[f] = m
	}
	return fe
}

func run3PA(t *testing.T, space *faults.Space, ex Executor, seed int64) *Result {
	p := &Protocol{Space: space, Rng: rand.New(rand.NewSource(seed))}
	return p.Run(ex)
}

func TestPhaseOneInjectsEveryFaultIntoHighestCoverageTest(t *testing.T) {
	space := mkSpace(6)
	ex := uniformExec(t, space, []string{"tBig", "tSmall"}, func(f faults.ID, test string) []faults.ID {
		return nil
	})
	res := run3PA(t, space, ex, 1)
	phase1 := 0
	for _, r := range res.Runs {
		if r.Phase == Phase1 {
			phase1++
			if r.Test != "tBig" {
				t.Errorf("phase-1 run for %s used %s, want highest-coverage tBig", r.Fault, r.Test)
			}
		}
	}
	if phase1 != 6 {
		t.Fatalf("phase-1 runs = %d, want one per fault", phase1)
	}
}

func TestBudgetIsFourTimesFaultCount(t *testing.T) {
	space := mkSpace(5)
	ex := uniformExec(t, space, []string{"t1", "t2", "t3", "t4", "t5"}, func(f faults.ID, test string) []faults.ID {
		return []faults.ID{f} // unique per fault: all singleton clusters
	})
	res := run3PA(t, space, ex, 2)
	if res.Budget != 20 {
		t.Fatalf("budget = %d, want 4x|F| = 20", res.Budget)
	}
	if len(res.Runs) != 20 {
		t.Fatalf("executed %d runs, want full budget 20", len(res.Runs))
	}
}

func TestCausallyEquivalentFaultsCluster(t *testing.T) {
	space := mkSpace(6)
	// Faults 0-2 all trigger fX; faults 3-5 trigger fY: two clusters.
	ex := uniformExec(t, space, []string{"t1", "t2", "t3"}, func(f faults.ID, test string) []faults.ID {
		if f < "s.f03" {
			return []faults.ID{"s.fX"}
		}
		return []faults.ID{"s.fY"}
	})
	res := run3PA(t, space, ex, 3)
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v, want 2", res.Clusters)
	}
	if res.ClusterOf["s.f00"] == res.ClusterOf["s.f05"] {
		t.Fatal("dissimilar faults ended in the same cluster")
	}
	if res.ClusterOf["s.f00"] != res.ClusterOf["s.f01"] {
		t.Fatal("causally-equivalent faults ended in different clusters")
	}
}

func TestNonImpactfulInjectionsClusterTogether(t *testing.T) {
	space := mkSpace(4)
	ex := uniformExec(t, space, []string{"t1", "t2"}, func(f faults.ID, test string) []faults.ID {
		return nil // nothing ever happens
	})
	res := run3PA(t, space, ex, 4)
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %v, want all non-impactful faults together", res.Clusters)
	}
	// Perfectly matched interference: SimScore 1, weight floor epsilon.
	if res.SimScores[0] != 1 {
		t.Fatalf("SimScore = %v, want 1", res.SimScores[0])
	}
}

func TestConditionalClusterGetsHigherPhase3Share(t *testing.T) {
	space := mkSpace(8)
	manyTests := []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"}
	// Faults 0-3: same interference everywhere (unconditional cluster).
	// Faults 4-7: interference depends on the workload (conditional).
	ex := uniformExec(t, space, manyTests, func(f faults.ID, test string) []faults.ID {
		if f < "s.f04" {
			return []faults.ID{"s.stable"}
		}
		return []faults.ID{faults.ID("s.dep." + test)}
	})
	res := run3PA(t, space, ex, 5)
	counts := map[int]int{}
	for _, r := range res.Runs {
		if r.Phase == Phase3 {
			counts[res.ClusterOf[r.Fault]]++
		}
	}
	stable := res.ClusterOf["s.f00"]
	conditional := res.ClusterOf["s.f04"]
	if stable == conditional {
		t.Fatal("expected distinct clusters")
	}
	if counts[conditional] <= counts[stable] {
		t.Fatalf("phase-3 allocation: conditional=%d stable=%d, want conditional favoured", counts[conditional], counts[stable])
	}
}

func TestSimScoreOfUnknownFaultIsOne(t *testing.T) {
	res := &Result{ClusterOf: map[faults.ID]int{}}
	if s := res.SimScoreOf("nope"); s != 1 {
		t.Fatalf("SimScoreOf(unknown) = %v, want 1", s)
	}
}

func TestUnreachableFaultSkipped(t *testing.T) {
	space := mkSpace(3)
	ex := uniformExec(t, space, []string{"t1"}, func(f faults.ID, test string) []faults.ID { return nil })
	delete(ex.tests, "s.f01") // no workload reaches f01
	res := run3PA(t, space, ex, 6)
	for _, r := range res.Runs {
		if r.Fault == "s.f01" {
			t.Fatal("unreachable fault was injected")
		}
	}
	if _, ok := res.ClusterOf["s.f01"]; ok {
		t.Fatal("unreachable fault was clustered")
	}
}

func TestBudgetRespectsExhaustion(t *testing.T) {
	// Only one test per fault: 3PA cannot spend more than |F| runs.
	space := mkSpace(4)
	ex := uniformExec(t, space, []string{"only"}, func(f faults.ID, test string) []faults.ID { return nil })
	res := run3PA(t, space, ex, 7)
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d, want 4 (every pair exhausted)", len(res.Runs))
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	mk := func(seed int64) []string {
		space := mkSpace(6)
		ex := uniformExec(t, space, []string{"t1", "t2", "t3", "t4"}, func(f faults.ID, test string) []faults.ID {
			return []faults.ID{faults.ID("x." + test)}
		})
		res := run3PA(t, space, ex, seed)
		var out []string
		for _, r := range res.Runs {
			out = append(out, fmt.Sprintf("%d:%s@%s", r.Phase, r.Fault, r.Test))
		}
		return out
	}
	a, b := mk(11), mk(11)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestPhaseTwoSpreadsAcrossClusters(t *testing.T) {
	space := mkSpace(6)
	ex := uniformExec(t, space, []string{"t1", "t2", "t3", "t4", "t5"}, func(f faults.ID, test string) []faults.ID {
		if f < "s.f03" {
			return []faults.ID{"s.gA"}
		}
		return []faults.ID{"s.gB"}
	})
	res := run3PA(t, space, ex, 8)
	p2 := map[int]int{}
	for _, r := range res.Runs {
		if r.Phase == Phase2 {
			p2[res.ClusterOf[r.Fault]]++
		}
	}
	if len(p2) != 2 {
		t.Fatalf("phase-2 clusters touched = %v, want both", p2)
	}
	diff := p2[0] - p2[1]
	if diff < -1 || diff > 1 {
		t.Fatalf("round-robin imbalance: %v", p2)
	}
}

func TestRandomBaselineSameBudget(t *testing.T) {
	space := mkSpace(5)
	ex := uniformExec(t, space, []string{"t1", "t2", "t3", "t4"}, func(f faults.ID, test string) []faults.ID { return nil })
	recs := Random(space, 4, rand.New(rand.NewSource(9)), ex)
	if len(recs) != 20 {
		t.Fatalf("random runs = %d, want 20", len(recs))
	}
	seen := map[string]bool{}
	for _, r := range recs {
		k := string(r.Fault) + "@" + r.Test
		if seen[k] {
			t.Fatalf("random baseline repeated pair %s", k)
		}
		seen[k] = true
	}
}

func TestRandomBaselineCapsAtPoolSize(t *testing.T) {
	space := mkSpace(3)
	ex := uniformExec(t, space, []string{"t1"}, func(f faults.ID, test string) []faults.ID { return nil })
	recs := Random(space, 4, rand.New(rand.NewSource(10)), ex)
	if len(recs) != 3 {
		t.Fatalf("random runs = %d, want pool size 3", len(recs))
	}
}
