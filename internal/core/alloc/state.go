// This file makes the allocation schedules checkpointable: a schedule's
// planning position can be exported at any wave boundary as a plain
// JSON-able ScheduleState and restored into a freshly constructed
// schedule of the same configuration, which then plans exactly the runs
// the original would have planned next. Together with CountedSource --
// a rand.Source64 that counts state advances so a resumed campaign can
// fast-forward its RNG to the checkpointed position -- this is the
// alloc-layer half of crash-safe campaign resume: a restored schedule
// driven by a fast-forwarded RNG is byte-identical to one that was
// never interrupted.

package alloc

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/faults"
)

// CountedSource is a rand.Source64 wrapping the standard library source
// that counts state advances. Every Int63 or Uint64 call advances the
// underlying generator by exactly one state step, so Draws() identifies
// the generator's position and FastForwardTo replays a fresh source to
// the same position -- regardless of which mix of rand.Rand methods
// consumed the stream. The wrapper is stream-transparent: a rand.Rand
// over a CountedSource draws the same values as one over
// rand.NewSource(seed) directly.
type CountedSource struct {
	src rand.Source64
	n   int64
}

// NewCountedSource returns a counting source seeded with seed.
func NewCountedSource(seed int64) *CountedSource {
	return &CountedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *CountedSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *CountedSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *CountedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// Draws returns the number of state advances consumed so far.
func (c *CountedSource) Draws() int64 { return c.n }

// FastForwardTo advances the source until exactly n states have been
// consumed. It fails if the source is already past n: positions only
// move forward.
func (c *CountedSource) FastForwardTo(n int64) error {
	if n < c.n {
		return fmt.Errorf("alloc: cannot rewind RNG from %d to %d draws", c.n, n)
	}
	for c.n < n {
		c.n++
		c.src.Uint64()
	}
	return nil
}

// Resumable is implemented by schedules whose planning position can be
// checkpointed and restored. Both Schedule (3PA) and RandomSchedule
// implement it.
type Resumable interface {
	// ExportState snapshots the schedule at a wave boundary (every
	// previously emitted run folded). It panics mid-wave, like Next.
	ExportState() *ScheduleState
	// RestoreState rehydrates a freshly constructed schedule of the same
	// configuration to the exported position. The caller separately
	// fast-forwards the schedule's RNG to the draw count recorded
	// alongside the state.
	RestoreState(st *ScheduleState) error
}

// UsedPairs lists the workloads already paired with one fault, for the
// schedule's never-repeat bookkeeping. Tests are sorted for stable
// serialization.
type UsedPairs struct {
	Fault string   `json:"fault"`
	Tests []string `json:"tests"`
}

// RunState is the JSON form of one folded RunRecord.
type RunState struct {
	Fault string   `json:"fault"`
	Test  string   `json:"test"`
	Phase int      `json:"phase"`
	Intf  []string `json:"intf,omitempty"`
}

// ScheduleState is a schedule's complete planning position at a wave
// boundary: the state-machine stage and per-phase cursors, the used-pair
// bookkeeping, and the folded result so far (clusters, scores, run
// records -- the two phase barriers consume them). It is pure data,
// stable under JSON round trips.
type ScheduleState struct {
	// Kind is "3pa" (Schedule) or "random" (RandomSchedule).
	Kind    string `json:"kind"`
	Stage   int    `json:"stage,omitempty"`
	Planned int    `json:"planned"`
	Budget  int    `json:"budget"`

	P1Idx       int       `json:"p1Idx,omitempty"`
	P2Quota     int       `json:"p2Quota,omitempty"`
	P2Spent     int       `json:"p2Spent,omitempty"`
	P2Turn      int       `json:"p2Turn,omitempty"`
	P2Exhausted bool      `json:"p2Exhausted,omitempty"`
	P3Exhausted bool      `json:"p3Exhausted,omitempty"`
	BaseWeights []float64 `json:"baseWeights,omitempty"`

	Used      []UsedPairs `json:"used,omitempty"`
	Clusters  [][]string  `json:"clusters,omitempty"`
	SimScores []float64   `json:"simScores,omitempty"`
	Runs      []RunState  `json:"runs,omitempty"`
}

func runStateOf(r RunRecord) RunState {
	out := RunState{Fault: string(r.Fault), Test: r.Test, Phase: int(r.Phase)}
	for _, f := range r.Intf {
		out.Intf = append(out.Intf, string(f))
	}
	return out
}

func runRecordOf(r RunState) RunRecord {
	out := RunRecord{Fault: faults.ID(r.Fault), Test: r.Test, Phase: Phase(r.Phase)}
	for _, f := range r.Intf {
		out.Intf = append(out.Intf, faults.ID(f))
	}
	return out
}

// ExportState snapshots the 3PA schedule's planning position.
func (s *Schedule) ExportState() *ScheduleState {
	if len(s.wave) > 0 {
		panic("alloc: ExportState with an unfolded wave in flight")
	}
	st := &ScheduleState{
		Kind:        "3pa",
		Stage:       int(s.st),
		Planned:     s.planned,
		Budget:      s.res.Budget,
		P1Idx:       s.p1idx,
		P2Quota:     s.p2quota,
		P2Spent:     s.p2spent,
		P2Turn:      s.p2turn,
		P2Exhausted: s.p2exhausted,
		P3Exhausted: s.p3exhausted,
		BaseWeights: append([]float64(nil), s.baseWeights...),
		SimScores:   append([]float64(nil), s.res.SimScores...),
	}
	var fs []string
	for f := range s.used {
		fs = append(fs, string(f))
	}
	sort.Strings(fs)
	for _, f := range fs {
		var ts []string
		for t := range s.used[faults.ID(f)] {
			ts = append(ts, t)
		}
		sort.Strings(ts)
		st.Used = append(st.Used, UsedPairs{Fault: f, Tests: ts})
	}
	for _, members := range s.res.Clusters {
		g := make([]string, len(members))
		for i, f := range members {
			g[i] = string(f)
		}
		st.Clusters = append(st.Clusters, g)
	}
	for _, r := range s.res.Runs {
		st.Runs = append(st.Runs, runStateOf(r))
	}
	return st
}

// RestoreState rehydrates a freshly built 3PA schedule to st's position.
func (s *Schedule) RestoreState(st *ScheduleState) error {
	if st == nil || st.Kind != "3pa" {
		return fmt.Errorf("alloc: schedule state is not a 3pa checkpoint")
	}
	if s.planned != 0 || len(s.res.Runs) != 0 {
		return fmt.Errorf("alloc: RestoreState on a schedule that already planned runs")
	}
	if st.Stage < int(stPhase1) || st.Stage > int(stDone) {
		return fmt.Errorf("alloc: schedule state has invalid stage %d", st.Stage)
	}
	if st.Budget != s.res.Budget {
		return fmt.Errorf("alloc: checkpoint budget %d != configured budget %d", st.Budget, s.res.Budget)
	}
	if st.Planned != len(st.Runs) {
		return fmt.Errorf("alloc: checkpoint planned %d runs but folded %d", st.Planned, len(st.Runs))
	}
	s.st = stage(st.Stage)
	s.planned = st.Planned
	s.p1idx = st.P1Idx
	s.p2quota, s.p2spent, s.p2turn = st.P2Quota, st.P2Spent, st.P2Turn
	s.p2exhausted, s.p3exhausted = st.P2Exhausted, st.P3Exhausted
	s.baseWeights = append([]float64(nil), st.BaseWeights...)
	s.used = make(map[faults.ID]map[string]bool, len(st.Used))
	for _, u := range st.Used {
		mm := make(map[string]bool, len(u.Tests))
		for _, t := range u.Tests {
			mm[t] = true
		}
		s.used[faults.ID(u.Fault)] = mm
	}
	s.res.Clusters = nil
	s.res.ClusterOf = make(map[faults.ID]int)
	for gi, g := range st.Clusters {
		members := make([]faults.ID, len(g))
		for i, f := range g {
			members[i] = faults.ID(f)
			s.res.ClusterOf[faults.ID(f)] = gi
		}
		s.res.Clusters = append(s.res.Clusters, members)
	}
	s.res.SimScores = append([]float64(nil), st.SimScores...)
	s.res.Runs = make([]RunRecord, len(st.Runs))
	for i, r := range st.Runs {
		s.res.Runs[i] = runRecordOf(r)
	}
	return nil
}

// ExportState snapshots the random schedule's cursor.
func (s *RandomSchedule) ExportState() *ScheduleState {
	if len(s.wave) > 0 {
		panic("alloc: ExportState with an unfolded wave in flight")
	}
	st := &ScheduleState{Kind: "random", Planned: s.next, Budget: s.res.Budget}
	for _, r := range s.res.Runs {
		st.Runs = append(st.Runs, runStateOf(r))
	}
	return st
}

// RestoreState rehydrates a freshly built random schedule. The pool is
// re-shuffled identically at construction (same seed, same space), so
// only the cursor and the folded records need restoring.
func (s *RandomSchedule) RestoreState(st *ScheduleState) error {
	if st == nil || st.Kind != "random" {
		return fmt.Errorf("alloc: schedule state is not a random checkpoint")
	}
	if s.next != 0 {
		return fmt.Errorf("alloc: RestoreState on a schedule that already planned runs")
	}
	if st.Budget != s.res.Budget {
		return fmt.Errorf("alloc: checkpoint budget %d != configured budget %d", st.Budget, s.res.Budget)
	}
	if st.Planned < 0 || st.Planned > len(s.pool) {
		return fmt.Errorf("alloc: checkpoint cursor %d outside pool of %d", st.Planned, len(s.pool))
	}
	if st.Planned != len(st.Runs) {
		return fmt.Errorf("alloc: checkpoint planned %d runs but folded %d", st.Planned, len(st.Runs))
	}
	s.next = st.Planned
	s.res.Runs = make([]RunRecord, len(st.Runs))
	for i, r := range st.Runs {
		s.res.Runs[i] = runRecordOf(r)
	}
	return nil
}
