// Package alloc implements CSnake's three-phase allocation (3PA) protocol
// of test budget (§5, §A) plus the random-allocation comparison protocol
// of §8.2.
//
// The total budget is 4x|F| experiments. Phase one (25%) injects every
// fault into the covering workload with the highest coverage and clusters
// faults by the IDF-vectorised similarity of their interference sets
// (causally-equivalent fault detection). Phase two (50%) distributes
// budget round-robin across clusters, injecting randomly-chosen cluster
// members into fresh workloads, then computes each cluster's intra-cluster
// interference similarity score. Phase three (25%) allocates the remainder
// by weighted random draw with weight max(eps, 1-SimScore), favouring
// clusters with conditional (workload-dependent) causal consequences.
// Unused quota transfers to larger clusters in phase two and to
// smaller-weight clusters in phase three.
//
// The protocol machinery is a resumable schedule state machine (Schedule,
// in schedule.go): it plans waves of (fault, test) runs without executing
// anything, and folds execution results back in at the two decision
// barriers (clustering after phase one, scoring after phase two). The
// blocking Protocol.Run entry point drives the state machine to
// completion one whole phase at a time and is byte-identical to the
// pre-state-machine implementation; anytime campaigns drive the same
// machine wave by wave.
package alloc

import (
	"math/rand"

	"repro/internal/core/graph"
	"repro/internal/faults"
)

// Epsilon is the minimum phase-three allocation weight (§A.4).
const Epsilon = 0.01

// TestInfo describes one workload able to reach a fault.
type TestInfo struct {
	Name string
	// Coverage is the number of injection/monitor points the workload's
	// profile run covers; phase one picks the largest.
	Coverage int
}

// Executor abstracts the experiment runner the blocking protocol drives.
// Execute must be deterministic for a given (fault, test) pair and is
// never called twice with the same pair.
type Executor interface {
	Planner
	// Execute performs the full injection experiment (all repetitions,
	// all delay magnitudes) of fault f under the named workload and
	// returns the set of additional faults triggered.
	Execute(f faults.ID, test string) []faults.ID
}

// Phase identifies which 3PA phase scheduled a run.
type Phase int

const (
	Phase1 Phase = 1
	Phase2 Phase = 2
	Phase3 Phase = 3
)

// RunRecord remembers one scheduled experiment and its interference.
type RunRecord struct {
	Fault faults.ID
	Test  string
	Phase Phase
	Intf  []faults.ID
}

// Result is the outcome of a protocol execution.
type Result struct {
	// Clusters groups causally-equivalent faults (phase-one clustering).
	Clusters [][]faults.ID
	// ClusterOf maps each injected fault to its cluster index.
	ClusterOf map[faults.ID]int
	// SimScores holds the intra-cluster interference similarity per
	// cluster (computed after phase two, §A.3).
	SimScores []float64
	// Runs lists every executed experiment in schedule order.
	Runs []RunRecord
	// Budget is the total experiment budget that was available.
	Budget int
}

// SimScoreOf returns the cluster SimScore for a fault (1.0 for faults
// outside any cluster, i.e. never injected, and before phase-two scoring
// has happened).
func (r *Result) SimScoreOf(f faults.ID) float64 {
	if idx, ok := r.ClusterOf[f]; ok && idx < len(r.SimScores) {
		return r.SimScores[idx]
	}
	return 1
}

// Protocol runs 3PA over a fault space.
type Protocol struct {
	Space *faults.Space
	// BudgetFactor scales |F| into the total budget (paper: 4).
	BudgetFactor int
	// Budget, when positive, overrides BudgetFactor x |F| with an absolute
	// experiment budget. A budget below |F| truncates phase one: later
	// faults (in space order) are never injected.
	Budget int
	// ClusterThreshold is the hierarchical-clustering merge cutoff on
	// cosine distance (default 0.5).
	ClusterThreshold float64
	// Rng drives the protocol's random choices (required).
	Rng *rand.Rand
}

// Run executes the three phases against ex and returns the result: it
// drives the resumable Schedule to completion, one whole phase per wave.
func (p *Protocol) Run(ex Executor) *Result {
	if p.BudgetFactor == 0 {
		p.BudgetFactor = 4
	}
	if p.ClusterThreshold == 0 {
		p.ClusterThreshold = 0.5
	}
	s := NewSchedule(ScheduleConfig{
		Space:            p.Space,
		BudgetFactor:     p.BudgetFactor,
		Budget:           p.Budget,
		ClusterThreshold: p.ClusterThreshold,
		Rng:              p.Rng,
	}, ex)
	drive(s, ex)
	return s.Result()
}

// WaveExecutor is the optional wave-capable extension of Executor: an
// executor that runs a whole planned wave at once (the harness driver
// fans the wave's experiments across its worker pool, merging per-
// experiment shards in wave order) while staying byte-identical to
// issuing the same runs through serial Execute calls. drive prefers it
// when available, so blocking batch campaigns inherit wave-level
// parallelism: with Next(0) each wave spans a whole phase, and the only
// serialization left is the two decision barriers (clustering after
// phase one, scoring after phase two) where planning genuinely needs
// the folded results.
type WaveExecutor interface {
	ExecuteWave(wave []PlannedRun) ([]RunRecord, graph.Delta)
}

// drive runs a schedule to completion against a blocking executor,
// fanning whole-phase waves through ExecuteWave when the executor
// supports it.
func drive(s Scheduler, ex Executor) {
	wx, _ := ex.(WaveExecutor)
	for {
		wave := s.Next(0)
		if len(wave) == 0 {
			return
		}
		var recs []RunRecord
		if wx != nil {
			recs, _ = wx.ExecuteWave(wave)
		} else {
			recs = make([]RunRecord, len(wave))
			for i, pr := range wave {
				recs[i] = RunRecord{
					Fault: pr.Fault, Test: pr.Test, Phase: pr.Phase,
					Intf: ex.Execute(pr.Fault, pr.Test),
				}
			}
		}
		s.Fold(recs)
	}
}

// --- random baseline (§8.2) ---

// Random runs the comparison protocol: the same number of experiments as a
// 3PA campaign, with uniformly random (fault, covering-test) pairs and no
// feedback. Returns the run records (Phase is 0).
func Random(space *faults.Space, budgetFactor int, rng *rand.Rand, ex Executor) []RunRecord {
	s := NewRandomSchedule(space, budgetFactor, rng, ex)
	drive(s, ex)
	return s.Result().Runs
}
