// Package alloc implements CSnake's three-phase allocation (3PA) protocol
// of test budget (§5, §A) plus the random-allocation comparison protocol
// of §8.2.
//
// The total budget is 4x|F| experiments. Phase one (25%) injects every
// fault into the covering workload with the highest coverage and clusters
// faults by the IDF-vectorised similarity of their interference sets
// (causally-equivalent fault detection). Phase two (50%) distributes
// budget round-robin across clusters, injecting randomly-chosen cluster
// members into fresh workloads, then computes each cluster's intra-cluster
// interference similarity score. Phase three (25%) allocates the remainder
// by weighted random draw with weight max(eps, 1-SimScore), favouring
// clusters with conditional (workload-dependent) causal consequences.
// Unused quota transfers to larger clusters in phase two and to
// smaller-weight clusters in phase three.
package alloc

import (
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/faults"
)

// Epsilon is the minimum phase-three allocation weight (§A.4).
const Epsilon = 0.01

// TestInfo describes one workload able to reach a fault.
type TestInfo struct {
	Name string
	// Coverage is the number of injection/monitor points the workload's
	// profile run covers; phase one picks the largest.
	Coverage int
}

// Executor abstracts the experiment runner the protocol drives. Execute
// must be deterministic for a given (fault, test) pair and is never called
// twice with the same pair.
type Executor interface {
	// TestsFor lists the workloads whose profile runs cover fault f.
	TestsFor(f faults.ID) []TestInfo
	// Execute performs the full injection experiment (all repetitions,
	// all delay magnitudes) of fault f under the named workload and
	// returns the set of additional faults triggered.
	Execute(f faults.ID, test string) []faults.ID
}

// Phase identifies which 3PA phase scheduled a run.
type Phase int

const (
	Phase1 Phase = 1
	Phase2 Phase = 2
	Phase3 Phase = 3
)

// RunRecord remembers one scheduled experiment and its interference.
type RunRecord struct {
	Fault faults.ID
	Test  string
	Phase Phase
	Intf  []faults.ID
}

// Result is the outcome of a protocol execution.
type Result struct {
	// Clusters groups causally-equivalent faults (phase-one clustering).
	Clusters [][]faults.ID
	// ClusterOf maps each injected fault to its cluster index.
	ClusterOf map[faults.ID]int
	// SimScores holds the intra-cluster interference similarity per
	// cluster (computed after phase two, §A.3).
	SimScores []float64
	// Runs lists every executed experiment in schedule order.
	Runs []RunRecord
	// Budget is the total experiment budget that was available.
	Budget int
}

// SimScoreOf returns the cluster SimScore for a fault (1.0 for faults
// outside any cluster, i.e. never injected).
func (r *Result) SimScoreOf(f faults.ID) float64 {
	if idx, ok := r.ClusterOf[f]; ok && idx < len(r.SimScores) {
		return r.SimScores[idx]
	}
	return 1
}

// Protocol runs 3PA over a fault space.
type Protocol struct {
	Space *faults.Space
	// BudgetFactor scales |F| into the total budget (paper: 4).
	BudgetFactor int
	// ClusterThreshold is the hierarchical-clustering merge cutoff on
	// cosine distance (default 0.5).
	ClusterThreshold float64
	// Rng drives the protocol's random choices (required).
	Rng *rand.Rand
}

// Run executes the three phases against ex and returns the result.
func (p *Protocol) Run(ex Executor) *Result {
	if p.BudgetFactor == 0 {
		p.BudgetFactor = 4
	}
	if p.ClusterThreshold == 0 {
		p.ClusterThreshold = 0.5
	}
	st := &state{
		proto: p,
		ex:    newCache(ex),
		used:  make(map[faults.ID]map[string]bool),
		res: &Result{
			ClusterOf: make(map[faults.ID]int),
			Budget:    p.BudgetFactor * p.Space.Size(),
		},
	}
	st.phaseOne()
	st.clusterFaults()
	st.phaseTwo()
	st.scoreClusters()
	st.phaseThree()
	return st.res
}

type state struct {
	proto *Protocol
	ex    *executorCache
	res   *Result
	// used tracks (fault, test) pairs already executed.
	used map[faults.ID]map[string]bool
}

// executorCache memoises TestsFor, which protocols consult repeatedly.
type executorCache struct {
	ex    Executor
	tests map[faults.ID][]TestInfo
}

func (c *executorCache) TestsFor(f faults.ID) []TestInfo {
	if ts, ok := c.tests[f]; ok {
		return ts
	}
	ts := c.ex.TestsFor(f)
	c.tests[f] = ts
	return ts
}

func (c *executorCache) Execute(f faults.ID, t string) []faults.ID { return c.ex.Execute(f, t) }

func newCache(ex Executor) *executorCache {
	return &executorCache{ex: ex, tests: make(map[faults.ID][]TestInfo)}
}

// run executes one experiment, recording bookkeeping.
func (s *state) run(f faults.ID, test string, phase Phase) {
	if s.used[f] == nil {
		s.used[f] = make(map[string]bool)
	}
	s.used[f][test] = true
	intf := s.ex.Execute(f, test)
	s.res.Runs = append(s.res.Runs, RunRecord{Fault: f, Test: test, Phase: phase, Intf: intf})
}

func (s *state) spent() int { return len(s.res.Runs) }

// freshTest returns an unused covering workload for f, chosen uniformly at
// random; ok is false when all covering workloads are exhausted.
func (s *state) freshTest(f faults.ID) (string, bool) {
	var candidates []string
	for _, ti := range s.ex.TestsFor(f) {
		if !s.used[f][ti.Name] {
			candidates = append(candidates, ti.Name)
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	return candidates[s.proto.Rng.Intn(len(candidates))], true
}

// clusterExhausted reports whether every (fault, test) pair in the cluster
// has been used.
func (s *state) clusterExhausted(members []faults.ID) bool {
	for _, f := range members {
		if _, ok := s.freshTestPeek(f); ok {
			return false
		}
	}
	return true
}

func (s *state) freshTestPeek(f faults.ID) (string, bool) {
	for _, ti := range s.ex.TestsFor(f) {
		if !s.used[f][ti.Name] {
			return ti.Name, true
		}
	}
	return "", false
}

// --- phase one ---

// phaseOne injects each fault once, into the covering workload with the
// highest coverage.
func (s *state) phaseOne() {
	for _, f := range s.proto.Space.IDs() {
		tests := s.ex.TestsFor(f)
		if len(tests) == 0 {
			continue // unreachable fault: no workload covers it
		}
		best := tests[0]
		for _, ti := range tests[1:] {
			if ti.Coverage > best.Coverage {
				best = ti
			}
		}
		s.run(f, best.Name, Phase1)
	}
}

// --- clustering ---

// clusterFaults groups faults by phase-one interference similarity.
func (s *state) clusterFaults() {
	var injected []faults.ID
	var sets [][]faults.ID
	for _, r := range s.res.Runs {
		injected = append(injected, r.Fault)
		sets = append(sets, r.Intf)
	}
	if len(injected) == 0 {
		return
	}
	idf := cluster.TrainIDF(sets)
	vecs := make([]cluster.Vector, len(sets))
	for i, set := range sets {
		vecs[i] = idf.Vectorize(set)
	}
	groups := cluster.Hierarchical(len(injected), func(i, j int) float64 {
		return cluster.CosineDistance(vecs[i], vecs[j])
	}, s.proto.ClusterThreshold)
	for gi, g := range groups {
		var members []faults.ID
		for _, idx := range g {
			members = append(members, injected[idx])
			s.res.ClusterOf[injected[idx]] = gi
		}
		s.res.Clusters = append(s.res.Clusters, members)
	}
}

// --- phase two ---

// phaseTwo spends half the budget round-robin across clusters, injecting a
// random member into a fresh workload each turn; quota of exhausted
// clusters transfers randomly to a larger cluster.
func (s *state) phaseTwo() {
	if len(s.res.Clusters) == 0 {
		return
	}
	quota := s.res.Budget/2 + s.res.Budget/4 - s.spent() // through 75% of budget
	if quota <= 0 {
		return
	}
	order := make([]int, len(s.res.Clusters))
	for i := range order {
		order[i] = i
	}
	for spent, turn := 0, 0; spent < quota; turn++ {
		if s.allExhausted() {
			return
		}
		gi := order[turn%len(order)]
		if !s.tryClusterInjection(gi, Phase2) {
			// Transfer to a random larger cluster with capacity.
			if ti, ok := s.largerClusterWithCapacity(gi); ok {
				if s.tryClusterInjection(ti, Phase2) {
					spent++
				}
			}
			continue
		}
		spent++
	}
}

// tryClusterInjection picks a random member with a fresh workload and runs
// it; false when the cluster is exhausted.
func (s *state) tryClusterInjection(gi int, phase Phase) bool {
	members := s.res.Clusters[gi]
	// Random starting offset, then scan for a member with capacity.
	start := s.proto.Rng.Intn(len(members))
	for k := 0; k < len(members); k++ {
		f := members[(start+k)%len(members)]
		if test, ok := s.freshTest(f); ok {
			s.run(f, test, phase)
			return true
		}
	}
	return false
}

func (s *state) allExhausted() bool {
	for gi := range s.res.Clusters {
		if !s.clusterExhausted(s.res.Clusters[gi]) {
			return false
		}
	}
	return true
}

// largerClusterWithCapacity picks uniformly among clusters strictly larger
// than gi that still have unused pairs; falls back to any cluster with
// capacity.
func (s *state) largerClusterWithCapacity(gi int) (int, bool) {
	var larger, any []int
	for i, members := range s.res.Clusters {
		if i == gi || s.clusterExhausted(members) {
			continue
		}
		any = append(any, i)
		if len(members) > len(s.res.Clusters[gi]) {
			larger = append(larger, i)
		}
	}
	pool := larger
	if len(pool) == 0 {
		pool = any
	}
	if len(pool) == 0 {
		return 0, false
	}
	return pool[s.proto.Rng.Intn(len(pool))], true
}

// --- scoring ---

// scoreClusters trains the second IDF vectorizer on phase-one and
// phase-two data and computes each cluster's SimScore (§A.3).
func (s *state) scoreClusters() {
	var sets [][]faults.ID
	for _, r := range s.res.Runs {
		sets = append(sets, r.Intf)
	}
	idf := cluster.TrainIDF(sets)
	s.res.SimScores = make([]float64, len(s.res.Clusters))
	for gi, members := range s.res.Clusters {
		inCluster := make(map[faults.ID]bool, len(members))
		for _, f := range members {
			inCluster[f] = true
		}
		byFault := make(map[faults.ID][]cluster.Vector)
		for _, r := range s.res.Runs {
			if inCluster[r.Fault] {
				byFault[r.Fault] = append(byFault[r.Fault], idf.Vectorize(r.Intf))
			}
		}
		s.res.SimScores[gi] = cluster.SimScore(byFault)
	}
}

// --- phase three ---

// phaseThree spends the remaining budget with weighted random cluster
// selection, weight max(eps, 1-SimScore); quota from exhausted clusters
// transfers to clusters with smaller weight.
func (s *state) phaseThree() {
	if len(s.res.Clusters) == 0 {
		return
	}
	weights := make([]float64, len(s.res.Clusters))
	for gi := range s.res.Clusters {
		w := 1 - s.res.SimScores[gi]
		if w < Epsilon {
			w = Epsilon
		}
		weights[gi] = w
	}
	for s.spent() < s.res.Budget {
		if s.allExhausted() {
			return
		}
		gi := s.weightedPick(weights)
		if s.tryClusterInjection(gi, Phase3) {
			continue
		}
		// Exhausted: transfer to a smaller-weight cluster with capacity.
		if ti, ok := s.smallerWeightWithCapacity(weights, gi); ok {
			s.tryClusterInjection(ti, Phase3)
		}
	}
}

func (s *state) weightedPick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := s.proto.Rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

func (s *state) smallerWeightWithCapacity(weights []float64, gi int) (int, bool) {
	type cand struct {
		idx int
		w   float64
	}
	var smaller, any []cand
	for i, members := range s.res.Clusters {
		if i == gi || s.clusterExhausted(members) {
			continue
		}
		c := cand{i, weights[i]}
		any = append(any, c)
		if weights[i] < weights[gi] {
			smaller = append(smaller, c)
		}
	}
	pool := smaller
	if len(pool) == 0 {
		pool = any
	}
	if len(pool) == 0 {
		return 0, false
	}
	sort.Slice(pool, func(a, b int) bool { return pool[a].w < pool[b].w })
	return pool[0].idx, true
}

// --- random baseline (§8.2) ---

// Random runs the comparison protocol: the same number of experiments as a
// 3PA campaign, with uniformly random (fault, covering-test) pairs and no
// feedback. Returns the run records (Phase is 0).
func Random(space *faults.Space, budgetFactor int, rng *rand.Rand, ex Executor) []RunRecord {
	if budgetFactor == 0 {
		budgetFactor = 4
	}
	cache := newCache(ex)
	type pair struct {
		f faults.ID
		t string
	}
	var pool []pair
	for _, f := range space.IDs() {
		for _, ti := range cache.TestsFor(f) {
			pool = append(pool, pair{f, ti.Name})
		}
	}
	budget := budgetFactor * space.Size()
	if budget > len(pool) {
		budget = len(pool)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	var out []RunRecord
	for _, pr := range pool[:budget] {
		intf := cache.Execute(pr.f, pr.t)
		out = append(out, RunRecord{Fault: pr.f, Test: pr.t, Intf: intf})
	}
	return out
}
