// This file holds the resumable allocation state machine behind the
// anytime campaign pipeline: Schedule (3PA) and RandomSchedule (§8.2
// baseline) plan waves of (fault, test) runs without executing anything;
// the caller executes each wave and folds the results back in. Planning
// within a phase depends only on the RNG and the used-pair bookkeeping --
// never on execution results -- so a schedule driven wave-by-wave emits
// exactly the runs the blocking Protocol.Run emits. Results are consumed
// at the two phase barriers only: clustering after phase one and SimScore
// computation after phase two.

package alloc

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/faults"
)

// PlannedRun is one scheduled experiment that has not been executed yet.
type PlannedRun struct {
	Fault faults.ID
	Test  string
	Phase Phase
}

// Planner is the read-only coverage oracle schedules plan against.
type Planner interface {
	// TestsFor lists the workloads whose profile runs cover fault f.
	TestsFor(f faults.ID) []TestInfo
}

// Scheduler is the wave-emitting allocation abstraction the anytime
// campaign drives. The contract is strictly alternating: every wave
// returned by Next must be executed and folded back via Fold before the
// next call to Next.
type Scheduler interface {
	// Next plans the next wave of at most max runs (max <= 0 means no
	// cap: plan to the next decision barrier). An empty wave means the
	// schedule is complete.
	Next(max int) []PlannedRun
	// Fold records the execution results of the wave Next returned, in
	// emission order.
	Fold(recs []RunRecord)
	// Done reports whether the schedule has nothing left to plan.
	Done() bool
	// Budget returns the total experiment budget.
	Budget() int
	// Spent returns the number of runs planned so far.
	Spent() int
	// Result assembles the (possibly partial) allocation result.
	Result() *Result
}

// plannerCache memoises TestsFor, which schedules consult repeatedly.
type plannerCache struct {
	p     Planner
	tests map[faults.ID][]TestInfo
}

func newPlannerCache(p Planner) *plannerCache {
	return &plannerCache{p: p, tests: make(map[faults.ID][]TestInfo)}
}

func (c *plannerCache) TestsFor(f faults.ID) []TestInfo {
	if ts, ok := c.tests[f]; ok {
		return ts
	}
	ts := c.p.TestsFor(f)
	c.tests[f] = ts
	return ts
}

// stage is the schedule's position in the 3PA state machine.
type stage int

const (
	stPhase1 stage = iota
	stCluster
	stPhase2
	stScore
	stPhase3
	stDone
)

// ScheduleConfig parameterises a 3PA schedule.
type ScheduleConfig struct {
	Space *faults.Space
	// BudgetFactor scales |F| into the total budget (0 = paper's 4).
	BudgetFactor int
	// Budget, when positive, overrides BudgetFactor x |F| with an
	// absolute budget. A budget below |F| truncates phase one.
	Budget int
	// ClusterThreshold is the hierarchical-clustering cutoff (0 = 0.5).
	ClusterThreshold float64
	// Rng drives the schedule's random choices (required).
	Rng *rand.Rand
	// Phase3Weights optionally replaces the phase-three cluster draw
	// weights. It is consulted at every phase-three wave boundary with
	// the current (partial) result and a fresh copy of the default
	// weights max(Epsilon, 1-SimScore), and returns the weights to draw
	// with -- the adaptive protocol's budget-reallocation hook. It must
	// be deterministic for the campaign's configuration and seed.
	Phase3Weights func(res *Result, defaults []float64) []float64
}

// Schedule is the resumable 3PA state machine. Build one with NewSchedule
// and alternate Next/Fold until Next returns an empty wave.
type Schedule struct {
	cfg     ScheduleConfig
	planner *plannerCache

	res  *Result
	used map[faults.ID]map[string]bool
	// planned counts runs emitted so far; wave holds the emitted,
	// not-yet-folded runs.
	planned int
	wave    []PlannedRun
	st      stage

	p1idx int // cursor into Space.IDs()

	p2quota, p2spent, p2turn int
	p2exhausted              bool

	baseWeights []float64
	p3exhausted bool
}

// NewSchedule builds a 3PA schedule over planner's coverage.
func NewSchedule(cfg ScheduleConfig, planner Planner) *Schedule {
	if cfg.Rng == nil {
		panic("alloc: NewSchedule requires an Rng")
	}
	if cfg.BudgetFactor == 0 {
		cfg.BudgetFactor = 4
	}
	if cfg.ClusterThreshold == 0 {
		cfg.ClusterThreshold = 0.5
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = cfg.BudgetFactor * cfg.Space.Size()
	}
	return &Schedule{
		cfg:     cfg,
		planner: newPlannerCache(planner),
		used:    make(map[faults.ID]map[string]bool),
		res: &Result{
			ClusterOf: make(map[faults.ID]int),
			Budget:    budget,
		},
	}
}

// Budget returns the total experiment budget.
func (s *Schedule) Budget() int { return s.res.Budget }

// Spent returns the number of runs planned so far.
func (s *Schedule) Spent() int { return s.planned }

// Done reports whether the schedule has nothing left to plan.
func (s *Schedule) Done() bool { return s.st == stDone }

// Phase returns the phase the schedule is currently planning (Phase3
// once done).
func (s *Schedule) Phase() Phase {
	switch s.st {
	case stPhase1:
		return Phase1
	case stCluster, stPhase2:
		return Phase2
	default:
		return Phase3
	}
}

// Result returns the allocation result assembled so far: complete once
// Done, partial (fewer runs, unscored clusters) while the schedule is
// still running or when a campaign stops early.
func (s *Schedule) Result() *Result { return s.res }

// ScoreFunc returns the SimScore lookup over the current partial result
// (1.0 for every fault until phase-two scoring has happened).
func (s *Schedule) ScoreFunc() func(faults.ID) float64 { return s.res.SimScoreOf }

// Next plans the next wave. It advances through decision barriers only
// when every previously emitted run has been folded, so a barrier always
// sees the full interference evidence of the phases before it.
func (s *Schedule) Next(max int) []PlannedRun {
	if len(s.wave) > 0 {
		panic("alloc: Next called before Fold of the previous wave")
	}
	var out []PlannedRun
	for s.st != stDone {
		switch s.st {
		case stPhase1:
			out = s.planPhase1(out, max)
			if s.p1idx >= len(s.cfg.Space.IDs()) || s.planned >= s.res.Budget {
				s.st = stCluster
			}
		case stCluster:
			// PIPELINE BARRIER 1 (clustering): planning cannot cross into
			// phase two until every phase-one run has been folded -- the
			// interference sets of *all* phase-one experiments feed the
			// causally-equivalent-fault clustering. This (and stScore) are
			// the only points where the wave pipeline must drain; within a
			// phase, waves may execute and be analysed concurrently because
			// planning depends only on the RNG and used-pair bookkeeping.
			if len(out) > 0 || len(s.res.Runs) < s.planned {
				return s.emit(out)
			}
			s.clusterFaults()
			s.initPhase2()
			s.st = stPhase2
		case stPhase2:
			out = s.planPhase2(out, max)
			if s.p2spent >= s.p2quota || s.p2exhausted {
				s.st = stScore
			}
		case stScore:
			// PIPELINE BARRIER 2 (scoring): phase-three weights derive from
			// the per-cluster SimScores, which need the complete phase-two
			// interference evidence. Callers snapshotting SimScores/ClusterOf
			// for concurrent analysis must copy them *before* calling Next
			// again: crossing this barrier mutates both in place.
			if len(out) > 0 || len(s.res.Runs) < s.planned {
				return s.emit(out)
			}
			s.scoreClusters()
			s.initPhase3()
			s.st = stPhase3
		case stPhase3:
			out = s.planPhase3(out, max)
			if s.planned >= s.res.Budget || s.p3exhausted || len(s.res.Clusters) == 0 {
				s.st = stDone
			}
		}
		if max > 0 && len(out) >= max {
			break
		}
	}
	return s.emit(out)
}

func (s *Schedule) emit(out []PlannedRun) []PlannedRun {
	s.wave = out
	return out
}

// Fold records the executed wave's results, in emission order.
func (s *Schedule) Fold(recs []RunRecord) {
	if len(recs) != len(s.wave) {
		panic(fmt.Sprintf("alloc: Fold of %d records for a wave of %d runs", len(recs), len(s.wave)))
	}
	for i, r := range recs {
		pr := s.wave[i]
		if r.Fault != pr.Fault || r.Test != pr.Test || r.Phase != pr.Phase {
			panic(fmt.Sprintf("alloc: Fold record %d = %s@%s (phase %d), want %s@%s (phase %d)",
				i, r.Fault, r.Test, r.Phase, pr.Fault, pr.Test, pr.Phase))
		}
	}
	s.res.Runs = append(s.res.Runs, recs...)
	s.wave = nil
}

// plan emits one run, recording the pair as used so later planning in the
// same phase never repeats it.
func (s *Schedule) plan(out []PlannedRun, f faults.ID, test string, phase Phase) []PlannedRun {
	if s.used[f] == nil {
		s.used[f] = make(map[string]bool)
	}
	s.used[f][test] = true
	s.planned++
	return append(out, PlannedRun{Fault: f, Test: test, Phase: phase})
}

// freshTest returns an unused covering workload for f, chosen uniformly at
// random; ok is false when all covering workloads are exhausted.
func (s *Schedule) freshTest(f faults.ID) (string, bool) {
	var candidates []string
	for _, ti := range s.planner.TestsFor(f) {
		if !s.used[f][ti.Name] {
			candidates = append(candidates, ti.Name)
		}
	}
	if len(candidates) == 0 {
		return "", false
	}
	return candidates[s.cfg.Rng.Intn(len(candidates))], true
}

// clusterExhausted reports whether every (fault, test) pair in the cluster
// has been used.
func (s *Schedule) clusterExhausted(members []faults.ID) bool {
	for _, f := range members {
		if s.hasFreshTest(f) {
			return false
		}
	}
	return true
}

func (s *Schedule) hasFreshTest(f faults.ID) bool {
	for _, ti := range s.planner.TestsFor(f) {
		if !s.used[f][ti.Name] {
			return true
		}
	}
	return false
}

func (s *Schedule) allExhausted() bool {
	for gi := range s.res.Clusters {
		if !s.clusterExhausted(s.res.Clusters[gi]) {
			return false
		}
	}
	return true
}

// --- phase one ---

// planPhase1 injects each fault once, into the covering workload with the
// highest coverage, until the fault list or the budget runs out.
func (s *Schedule) planPhase1(out []PlannedRun, max int) []PlannedRun {
	ids := s.cfg.Space.IDs()
	for ; s.p1idx < len(ids) && s.planned < s.res.Budget; s.p1idx++ {
		if max > 0 && len(out) >= max {
			return out
		}
		f := ids[s.p1idx]
		tests := s.planner.TestsFor(f)
		if len(tests) == 0 {
			continue // unreachable fault: no workload covers it
		}
		best := tests[0]
		for _, ti := range tests[1:] {
			if ti.Coverage > best.Coverage {
				best = ti
			}
		}
		out = s.plan(out, f, best.Name, Phase1)
	}
	return out
}

// --- clustering barrier ---

// clusterFaults groups faults by phase-one interference similarity.
func (s *Schedule) clusterFaults() {
	var injected []faults.ID
	var sets [][]faults.ID
	for _, r := range s.res.Runs {
		injected = append(injected, r.Fault)
		sets = append(sets, r.Intf)
	}
	if len(injected) == 0 {
		return
	}
	idf := cluster.TrainIDF(sets)
	vecs := make([]cluster.Vector, len(sets))
	for i, set := range sets {
		vecs[i] = idf.Vectorize(set)
	}
	groups := cluster.Hierarchical(len(injected), func(i, j int) float64 {
		return cluster.CosineDistance(vecs[i], vecs[j])
	}, s.cfg.ClusterThreshold)
	for gi, g := range groups {
		var members []faults.ID
		for _, idx := range g {
			members = append(members, injected[idx])
			s.res.ClusterOf[injected[idx]] = gi
		}
		s.res.Clusters = append(s.res.Clusters, members)
	}
}

// --- phase two ---

func (s *Schedule) initPhase2() {
	if len(s.res.Clusters) == 0 {
		s.p2quota = 0
		return
	}
	s.p2quota = s.res.Budget/2 + s.res.Budget/4 - s.planned // through 75% of budget
	if s.p2quota < 0 {
		s.p2quota = 0
	}
}

// planPhase2 spends half the budget round-robin across clusters, injecting
// a random member into a fresh workload each turn; quota of exhausted
// clusters transfers randomly to a larger cluster.
func (s *Schedule) planPhase2(out []PlannedRun, max int) []PlannedRun {
	for s.p2spent < s.p2quota {
		if max > 0 && len(out) >= max {
			return out
		}
		if s.allExhausted() {
			s.p2exhausted = true
			return out
		}
		gi := s.p2turn % len(s.res.Clusters)
		s.p2turn++
		next, ok := s.tryClusterInjection(out, gi, Phase2)
		if !ok {
			// Transfer to a random larger cluster with capacity.
			if ti, tok := s.largerClusterWithCapacity(gi); tok {
				if next, ok = s.tryClusterInjection(out, ti, Phase2); ok {
					out = next
					s.p2spent++
				}
			}
			continue
		}
		out = next
		s.p2spent++
	}
	return out
}

// tryClusterInjection picks a random member with a fresh workload and
// plans it; ok is false when the cluster is exhausted.
func (s *Schedule) tryClusterInjection(out []PlannedRun, gi int, phase Phase) ([]PlannedRun, bool) {
	members := s.res.Clusters[gi]
	// Random starting offset, then scan for a member with capacity.
	start := s.cfg.Rng.Intn(len(members))
	for k := 0; k < len(members); k++ {
		f := members[(start+k)%len(members)]
		if test, ok := s.freshTest(f); ok {
			return s.plan(out, f, test, phase), true
		}
	}
	return out, false
}

// largerClusterWithCapacity picks uniformly among clusters strictly larger
// than gi that still have unused pairs; falls back to any cluster with
// capacity.
func (s *Schedule) largerClusterWithCapacity(gi int) (int, bool) {
	var larger, any []int
	for i, members := range s.res.Clusters {
		if i == gi || s.clusterExhausted(members) {
			continue
		}
		any = append(any, i)
		if len(members) > len(s.res.Clusters[gi]) {
			larger = append(larger, i)
		}
	}
	pool := larger
	if len(pool) == 0 {
		pool = any
	}
	if len(pool) == 0 {
		return 0, false
	}
	return pool[s.cfg.Rng.Intn(len(pool))], true
}

// --- scoring barrier ---

// scoreClusters trains the second IDF vectorizer on phase-one and
// phase-two data and computes each cluster's SimScore (§A.3).
func (s *Schedule) scoreClusters() {
	var sets [][]faults.ID
	for _, r := range s.res.Runs {
		sets = append(sets, r.Intf)
	}
	idf := cluster.TrainIDF(sets)
	s.res.SimScores = make([]float64, len(s.res.Clusters))
	for gi, members := range s.res.Clusters {
		inCluster := make(map[faults.ID]bool, len(members))
		for _, f := range members {
			inCluster[f] = true
		}
		byFault := make(map[faults.ID][]cluster.Vector)
		for _, r := range s.res.Runs {
			if inCluster[r.Fault] {
				byFault[r.Fault] = append(byFault[r.Fault], idf.Vectorize(r.Intf))
			}
		}
		s.res.SimScores[gi] = cluster.SimScore(byFault)
	}
}

// --- phase three ---

func (s *Schedule) initPhase3() {
	s.baseWeights = make([]float64, len(s.res.Clusters))
	for gi := range s.res.Clusters {
		w := 1 - s.res.SimScores[gi]
		if w < Epsilon {
			w = Epsilon
		}
		s.baseWeights[gi] = w
	}
}

// phase3Weights resolves the draw weights for the current wave: the
// default max(Epsilon, 1-SimScore) formula, or whatever the reallocation
// hook returns for it.
func (s *Schedule) phase3Weights() []float64 {
	if s.cfg.Phase3Weights == nil {
		return s.baseWeights
	}
	return s.cfg.Phase3Weights(s.res, append([]float64(nil), s.baseWeights...))
}

// planPhase3 spends the remaining budget with weighted random cluster
// selection; quota from exhausted clusters transfers to clusters with
// smaller weight.
func (s *Schedule) planPhase3(out []PlannedRun, max int) []PlannedRun {
	if len(s.res.Clusters) == 0 {
		return out
	}
	weights := s.phase3Weights()
	for s.planned < s.res.Budget {
		if max > 0 && len(out) >= max {
			return out
		}
		if s.allExhausted() {
			s.p3exhausted = true
			return out
		}
		gi := s.weightedPick(weights)
		next, ok := s.tryClusterInjection(out, gi, Phase3)
		if ok {
			out = next
			continue
		}
		// Exhausted: transfer to a smaller-weight cluster with capacity.
		if ti, tok := s.smallerWeightWithCapacity(weights, gi); tok {
			out, _ = s.tryClusterInjection(out, ti, Phase3)
		}
	}
	return out
}

func (s *Schedule) weightedPick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := s.cfg.Rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

func (s *Schedule) smallerWeightWithCapacity(weights []float64, gi int) (int, bool) {
	type cand struct {
		idx int
		w   float64
	}
	var smaller, any []cand
	for i, members := range s.res.Clusters {
		if i == gi || s.clusterExhausted(members) {
			continue
		}
		c := cand{i, weights[i]}
		any = append(any, c)
		if weights[i] < weights[gi] {
			smaller = append(smaller, c)
		}
	}
	pool := smaller
	if len(pool) == 0 {
		pool = any
	}
	if len(pool) == 0 {
		return 0, false
	}
	sort.Slice(pool, func(a, b int) bool { return pool[a].w < pool[b].w })
	return pool[0].idx, true
}

// --- random baseline schedule (§8.2) ---

// RandomSchedule emits the §8.2 random-allocation schedule in waves: the
// pool of (fault, covering-test) pairs is shuffled once at construction,
// so wave-driven and blocking executions produce identical run lists.
type RandomSchedule struct {
	pool []PlannedRun
	next int
	wave []PlannedRun
	res  *Result
}

// NewRandomSchedule precomputes the shuffled random schedule.
func NewRandomSchedule(space *faults.Space, budgetFactor int, rng *rand.Rand, planner Planner) *RandomSchedule {
	if budgetFactor == 0 {
		budgetFactor = 4
	}
	cache := newPlannerCache(planner)
	var pool []PlannedRun
	for _, f := range space.IDs() {
		for _, ti := range cache.TestsFor(f) {
			pool = append(pool, PlannedRun{Fault: f, Test: ti.Name})
		}
	}
	budget := budgetFactor * space.Size()
	if budget > len(pool) {
		budget = len(pool)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return &RandomSchedule{pool: pool[:budget], res: &Result{Budget: budget}}
}

func (s *RandomSchedule) Next(max int) []PlannedRun {
	if len(s.wave) > 0 {
		panic("alloc: Next called before Fold of the previous wave")
	}
	hi := len(s.pool)
	if max > 0 && s.next+max < hi {
		hi = s.next + max
	}
	s.wave = s.pool[s.next:hi]
	s.next = hi
	return s.wave
}

func (s *RandomSchedule) Fold(recs []RunRecord) {
	if len(recs) != len(s.wave) {
		panic(fmt.Sprintf("alloc: Fold of %d records for a wave of %d runs", len(recs), len(s.wave)))
	}
	s.res.Runs = append(s.res.Runs, recs...)
	s.wave = nil
}

func (s *RandomSchedule) Done() bool      { return s.next >= len(s.pool) }
func (s *RandomSchedule) Budget() int     { return s.res.Budget }
func (s *RandomSchedule) Spent() int      { return s.next }
func (s *RandomSchedule) Result() *Result { return s.res }
