package alloc

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faults"
)

// driveWaves runs a schedule to completion in fixed-size waves against a
// scripted executor, returning the result.
func driveWaves(t *testing.T, s Scheduler, ex Executor, waveSize int) *Result {
	t.Helper()
	for i := 0; ; i++ {
		wave := s.Next(waveSize)
		if len(wave) == 0 {
			if !s.Done() {
				t.Fatal("empty wave from an unfinished schedule")
			}
			return s.Result()
		}
		if waveSize > 0 && len(wave) > waveSize {
			t.Fatalf("wave %d has %d runs, cap %d", i, len(wave), waveSize)
		}
		recs := make([]RunRecord, len(wave))
		for j, pr := range wave {
			recs[j] = RunRecord{Fault: pr.Fault, Test: pr.Test, Phase: pr.Phase,
				Intf: ex.Execute(pr.Fault, pr.Test)}
		}
		s.Fold(recs)
	}
}

func scheduleFor(space *faults.Space, seed int64, planner Planner) *Schedule {
	return NewSchedule(ScheduleConfig{Space: space, Rng: rand.New(rand.NewSource(seed))}, planner)
}

// TestWaveScheduleMatchesBlockingProtocol pins the tentpole equivalence:
// the same 3PA schedule, emitted in waves of any size, executes exactly
// the runs the blocking Protocol.Run executes -- same pairs, same phases,
// same order.
func TestWaveScheduleMatchesBlockingProtocol(t *testing.T) {
	intf := func(f faults.ID, test string) []faults.ID {
		if f < "s.f04" {
			return []faults.ID{"s.gA"}
		}
		return []faults.ID{faults.ID("x." + test)}
	}
	for _, waveSize := range []int{1, 3, 7, 100} {
		space := mkSpace(8)
		ref := run3PA(t, space, uniformExec(t, space, []string{"t1", "t2", "t3", "t4"}, intf), 21)

		ex := uniformExec(t, space, []string{"t1", "t2", "t3", "t4"}, intf)
		got := driveWaves(t, scheduleFor(space, 21, ex), ex, waveSize)

		if !reflect.DeepEqual(got.Runs, ref.Runs) {
			t.Fatalf("wave size %d: schedule diverges from blocking protocol\ngot:  %v\nwant: %v",
				waveSize, got.Runs, ref.Runs)
		}
		if !reflect.DeepEqual(got.Clusters, ref.Clusters) || !reflect.DeepEqual(got.SimScores, ref.SimScores) {
			t.Fatalf("wave size %d: clustering/scoring diverges", waveSize)
		}
	}
}

// TestBudgetSmallerThanFaultCount: an absolute budget below |F| truncates
// phase one -- later faults are never injected -- and leaves nothing for
// phases two and three.
func TestBudgetSmallerThanFaultCount(t *testing.T) {
	space := mkSpace(8)
	ex := uniformExec(t, space, []string{"t1", "t2"}, func(f faults.ID, test string) []faults.ID {
		return []faults.ID{f}
	})
	p := &Protocol{Space: space, Budget: 5, Rng: rand.New(rand.NewSource(3))}
	res := p.Run(ex)
	if res.Budget != 5 {
		t.Fatalf("budget = %d, want the absolute override 5", res.Budget)
	}
	if len(res.Runs) != 5 {
		t.Fatalf("runs = %d, want exactly the budget", len(res.Runs))
	}
	for i, r := range res.Runs {
		if r.Phase != Phase1 {
			t.Fatalf("run %d in phase %d, want all budget consumed by phase 1", i, r.Phase)
		}
		if want := space.IDs()[i]; r.Fault != want {
			t.Fatalf("run %d injected %s, want space order %s", i, r.Fault, want)
		}
	}
}

// TestSingleClusterTransferPaths: with every fault in one cluster there
// is no transfer target, so exhaustion must terminate phases two and
// three instead of looping on failed transfers.
func TestSingleClusterTransferPaths(t *testing.T) {
	space := mkSpace(3)
	// Two tests per fault: 6 pairs total; budget 4x3 = 12 >> pool, so both
	// later phases hit cluster exhaustion with no sibling to transfer to.
	ex := uniformExec(t, space, []string{"t1", "t2"}, func(f faults.ID, test string) []faults.ID {
		return nil // identical interference: one cluster
	})
	res := run3PA(t, space, ex, 5)
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(res.Clusters))
	}
	if len(res.Runs) != 6 {
		t.Fatalf("runs = %d, want the whole 6-pair pool", len(res.Runs))
	}
	seen := map[string]bool{}
	for _, r := range res.Runs {
		seen[string(r.Fault)+"@"+r.Test] = true
	}
	if len(seen) != 6 {
		t.Fatalf("distinct pairs = %d, want 6", len(seen))
	}
}

// TestRandomProtocolDeterministicForFixedSeed pins the §8.2 baseline:
// identical seeds yield identical schedules, wave-driven or blocking.
func TestRandomProtocolDeterministicForFixedSeed(t *testing.T) {
	mk := func() (*faults.Space, *fakeExec) {
		space := mkSpace(6)
		return space, uniformExec(t, space, []string{"t1", "t2", "t3"}, func(f faults.ID, test string) []faults.ID {
			return []faults.ID{faults.ID("x." + test)}
		})
	}
	space, ex := mk()
	a := Random(space, 2, rand.New(rand.NewSource(17)), ex)
	space, ex = mk()
	b := Random(space, 2, rand.New(rand.NewSource(17)), ex)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("random schedules diverge for the same seed:\n%v\n%v", a, b)
	}
	space, ex = mk()
	waved := driveWaves(t, NewRandomSchedule(space, 2, rand.New(rand.NewSource(17)), ex), ex, 4)
	if !reflect.DeepEqual(waved.Runs, a) {
		t.Fatalf("wave-driven random schedule diverges from blocking Random:\n%v\n%v", waved.Runs, a)
	}
}

// TestPhase3WeightHookSteersDraws: a reallocation hook that zeroes every
// cluster but one must concentrate phase-three draws on it.
func TestPhase3WeightHookSteersDraws(t *testing.T) {
	space := mkSpace(8)
	manyTests := []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"}
	intf := func(f faults.ID, test string) []faults.ID {
		if f < "s.f04" {
			return []faults.ID{"s.stable"}
		}
		return []faults.ID{faults.ID("s.dep." + test)}
	}
	ex := uniformExec(t, space, manyTests, intf)
	sched := NewSchedule(ScheduleConfig{
		Space: space,
		Rng:   rand.New(rand.NewSource(5)),
		Phase3Weights: func(res *Result, defaults []float64) []float64 {
			// Force everything onto the cluster of s.f00.
			target := res.ClusterOf["s.f00"]
			for i := range defaults {
				if i != target {
					defaults[i] = 0
				} else {
					defaults[i] = 1
				}
			}
			return defaults
		},
	}, ex)
	res := driveWaves(t, sched, ex, 0)
	target := res.ClusterOf["s.f00"]
	for _, r := range res.Runs {
		if r.Phase == Phase3 && res.ClusterOf[r.Fault] != target {
			// Transfers may still move budget once the target exhausts; the
			// target cluster has 4 faults x 8 tests = 32 pairs, far more
			// than the remaining budget, so it never exhausts here.
			t.Fatalf("phase-3 run %s@%s outside the forced cluster", r.Fault, r.Test)
		}
	}
	n3 := 0
	for _, r := range res.Runs {
		if r.Phase == Phase3 {
			n3++
		}
	}
	if n3 == 0 {
		t.Fatal("no phase-3 runs planned")
	}
}

// TestScheduleFoldValidation: folding records that do not match the
// emitted wave must panic rather than silently corrupt the result.
func TestScheduleFoldValidation(t *testing.T) {
	space := mkSpace(2)
	ex := uniformExec(t, space, []string{"t1"}, func(faults.ID, string) []faults.ID { return nil })
	s := scheduleFor(space, 1, ex)
	wave := s.Next(1)
	if len(wave) != 1 {
		t.Fatalf("wave = %v", wave)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Fold did not panic")
		}
	}()
	s.Fold([]RunRecord{{Fault: "bogus", Test: "t1", Phase: Phase1}})
}

// TestPartialResultSimScoresDefault: before phase-two scoring a partial
// result scores every fault 1.0 (no cluster information yet).
func TestPartialResultSimScoresDefault(t *testing.T) {
	space := mkSpace(4)
	ex := uniformExec(t, space, []string{"t1", "t2"}, func(f faults.ID, test string) []faults.ID {
		return []faults.ID{f}
	})
	s := scheduleFor(space, 9, ex)
	wave := s.Next(2) // inside phase 1
	if len(wave) != 2 || s.Done() {
		t.Fatalf("unexpected first wave %v (done=%v)", wave, s.Done())
	}
	if got := s.Result().SimScoreOf(space.IDs()[0]); got != 1 {
		t.Fatalf("partial SimScore = %v, want 1", got)
	}
	if s.Phase() != Phase1 {
		t.Fatalf("phase = %v, want Phase1", s.Phase())
	}
	recs := make([]RunRecord, len(wave))
	for i, pr := range wave {
		recs[i] = RunRecord{Fault: pr.Fault, Test: pr.Test, Phase: pr.Phase,
			Intf: ex.Execute(pr.Fault, pr.Test)}
	}
	s.Fold(recs)
	if s.Spent() != 2 {
		t.Fatalf("spent = %d, want 2", s.Spent())
	}
}
