package alloc

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faults"
)

// TestCountedSourceTransparent: a rand.Rand over a CountedSource draws
// the same stream as one over the plain source, through a mixed workload
// of every method family the schedules use (Intn, Float64, Shuffle,
// Int63, Uint64).
func TestCountedSourceTransparent(t *testing.T) {
	mixed := func(r *rand.Rand) []float64 {
		var out []float64
		perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
		for i := 0; i < 50; i++ {
			out = append(out, float64(r.Intn(97)), r.Float64(), float64(r.Int63()%1000), float64(r.Uint64()%1000))
			r.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			out = append(out, float64(perm[0]))
		}
		return out
	}
	plain := mixed(rand.New(rand.NewSource(99)))
	counted := mixed(rand.New(NewCountedSource(99)))
	if !reflect.DeepEqual(plain, counted) {
		t.Fatal("counted source changed the random stream")
	}
}

// TestCountedSourceFastForward: consuming n draws through arbitrary
// rand.Rand methods, then fast-forwarding a fresh source to n, puts both
// sources in the same state -- the RNG half of campaign resume.
func TestCountedSourceFastForward(t *testing.T) {
	src := NewCountedSource(7)
	r := rand.New(src)
	for i := 0; i < 123; i++ {
		switch i % 4 {
		case 0:
			r.Intn(13)
		case 1:
			r.Float64()
		case 2:
			r.Uint64()
		default:
			r.Shuffle(5, func(int, int) {})
		}
	}
	n := src.Draws()
	if n == 0 {
		t.Fatal("no draws counted")
	}

	resumed := NewCountedSource(7)
	if err := resumed.FastForwardTo(n); err != nil {
		t.Fatal(err)
	}
	r2 := rand.New(resumed)
	for i := 0; i < 100; i++ {
		if a, b := r.Int63(), r2.Int63(); a != b {
			t.Fatalf("draw %d after fast-forward: %d != %d", i, a, b)
		}
	}
	if err := resumed.FastForwardTo(0); err == nil {
		t.Fatal("rewinding a source succeeded")
	}
}

// drivePartial executes up to `waves` fixed-size waves of sched,
// returning the planned runs in emission order.
func drivePartial(t *testing.T, sched Scheduler, ex Executor, waves, waveSize int) []PlannedRun {
	t.Helper()
	var out []PlannedRun
	for w := 0; w < waves && !sched.Done(); w++ {
		wave := sched.Next(waveSize)
		if len(wave) == 0 {
			break
		}
		recs := make([]RunRecord, len(wave))
		for i, pr := range wave {
			recs[i] = RunRecord{Fault: pr.Fault, Test: pr.Test, Phase: pr.Phase,
				Intf: ex.Execute(pr.Fault, pr.Test)}
		}
		sched.Fold(recs)
		out = append(out, wave...)
	}
	return out
}

func stateIntf(f faults.ID, test string) []faults.ID {
	if f < "s.f03" {
		return []faults.ID{"s.gA"}
	}
	return []faults.ID{faults.ID("x." + test)}
}

// TestScheduleExportRestoreResumes is the alloc-layer resume contract:
// export a 3PA schedule mid-flight (at several boundaries, crossing both
// phase barriers), restore into a fresh schedule with a fast-forwarded
// RNG, and the continuation plans exactly the runs the uninterrupted
// schedule plans. The state round-trips through JSON, as the service
// persists it.
func TestScheduleExportRestoreResumes(t *testing.T) {
	tests := []string{"t1", "t2", "t3", "t4"}
	for _, cut := range []int{1, 2, 4, 7} {
		space := mkSpace(6)
		mk := func(src rand.Source) *Schedule {
			return NewSchedule(ScheduleConfig{Space: space, BudgetFactor: 3, Rng: rand.New(src)},
				uniformExec(t, space, tests, stateIntf))
		}

		// Uninterrupted baseline.
		base := mk(NewCountedSource(11))
		all := drivePartial(t, base, uniformExec(t, space, tests, stateIntf), 1000, 3)

		// Interrupted: cut after `cut` waves, export, JSON round trip.
		src := NewCountedSource(11)
		first := mk(src)
		prefix := drivePartial(t, first, uniformExec(t, space, tests, stateIntf), cut, 3)
		data, err := json.Marshal(first.ExportState())
		if err != nil {
			t.Fatal(err)
		}
		var st ScheduleState
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}

		// Restore into a fresh schedule + fast-forwarded RNG.
		src2 := NewCountedSource(11)
		resumed := mk(src2)
		if err := resumed.RestoreState(&st); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if err := src2.FastForwardTo(src.Draws()); err != nil {
			t.Fatal(err)
		}
		rest := drivePartial(t, resumed, uniformExec(t, space, tests, stateIntf), 1000, 3)

		got := append(append([]PlannedRun(nil), prefix...), rest...)
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("cut %d: resumed plan diverged:\n got %v\nwant %v", cut, got, all)
		}
		if !reflect.DeepEqual(resumed.Result().Runs, base.Result().Runs) {
			t.Fatalf("cut %d: resumed result differs from baseline", cut)
		}
	}
}

// TestRandomScheduleExportRestore: same contract for the §8.2 baseline.
// Construction re-consumes the shuffle draws, so the restored RNG is
// already at the checkpoint position.
func TestRandomScheduleExportRestore(t *testing.T) {
	tests := []string{"t1", "t2", "t3"}
	space := mkSpace(5)
	base := NewRandomSchedule(space, 2, rand.New(NewCountedSource(5)),
		uniformExec(t, space, tests, stateIntf))
	all := drivePartial(t, base, uniformExec(t, space, tests, stateIntf), 1000, 2)

	src := NewCountedSource(5)
	first := NewRandomSchedule(space, 2, rand.New(src), uniformExec(t, space, tests, stateIntf))
	prefix := drivePartial(t, first, uniformExec(t, space, tests, stateIntf), 2, 2)
	st := first.ExportState()

	src2 := NewCountedSource(5)
	resumed := NewRandomSchedule(space, 2, rand.New(src2), uniformExec(t, space, tests, stateIntf))
	if src2.Draws() != src.Draws() {
		t.Fatalf("construction consumed %d draws, original %d", src2.Draws(), src.Draws())
	}
	if err := resumed.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	rest := drivePartial(t, resumed, uniformExec(t, space, tests, stateIntf), 1000, 2)
	got := append(append([]PlannedRun(nil), prefix...), rest...)
	if !reflect.DeepEqual(got, all) {
		t.Fatalf("resumed random plan diverged:\n got %v\nwant %v", got, all)
	}
}

// TestRestoreStateRejectsMismatch pins the validation: wrong kind, a
// started schedule, and a budget mismatch all refuse to restore.
func TestRestoreStateRejectsMismatch(t *testing.T) {
	tests := []string{"t1", "t2"}
	space := mkSpace(4)
	mk := func() *Schedule {
		return NewSchedule(ScheduleConfig{Space: space, BudgetFactor: 2, Rng: rand.New(NewCountedSource(1))},
			uniformExec(t, space, tests, stateIntf))
	}
	good := mk()
	drivePartial(t, good, uniformExec(t, space, tests, stateIntf), 1, 2)
	st := good.ExportState()

	if err := mk().RestoreState(&ScheduleState{Kind: "random"}); err == nil {
		t.Fatal("3pa schedule accepted a random checkpoint")
	}
	started := mk()
	drivePartial(t, started, uniformExec(t, space, tests, stateIntf), 1, 2)
	if err := started.RestoreState(st); err == nil {
		t.Fatal("started schedule accepted a restore")
	}
	bad := *st
	bad.Budget++
	if err := mk().RestoreState(&bad); err == nil {
		t.Fatal("budget mismatch accepted")
	}
}
