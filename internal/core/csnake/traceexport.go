// This file wires campaigns to the online monitor's trace stream: with
// WithTraceExport a campaign writes every causal-edge discovery (plus
// the static preamble, nest families, and final SimScores) as monitor
// JSONL records, replayable through internal/monitor or POSTable to a
// csnaked monitor. The export taps the driver's serialized observer
// stream, so the record order is exactly the graph's raw insertion
// order and a full-window replay reproduces the campaign graph
// byte-identically.

package csnake

import (
	"io"

	"repro/internal/core/fca"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/monitor"
)

// WithTraceExport streams the campaign's trace to w as monitor JSONL
// records. The writer is flushed at every report capture (and at
// campaign end); write errors are sticky and silently stop the export
// without affecting the campaign. nil disables export.
func WithTraceExport(w io.Writer) Option {
	return func(c *Campaign) { c.traceOut = w }
}

// traceObserver adapts a TraceWriter to the harness observer interface:
// edges become edge records, experiment completions become marks.
type traceObserver struct {
	tw *monitor.TraceWriter
}

func (t traceObserver) ProfileCached(string, int) {}

func (t traceObserver) ExperimentExecuted(faults.ID, string, int, int) { t.tw.Mark() }

func (t traceObserver) EdgeDiscovered(e fca.Edge) { t.tw.Edge(e) }

// installTraceExport builds the trace writer, emits the stream preamble
// (hello, static connector edges, resolved nest families), and returns
// the observer to fan the driver's edge stream into. Call only after
// cfg.Beam.NestGroups is resolved.
func (c *Campaign) installTraceExport(cfg Config, statics []fca.Edge) (*monitor.TraceWriter, harness.Observer) {
	if c.traceOut == nil {
		return nil, nil
	}
	tw := monitor.NewTraceWriter(c.traceOut)
	tw.Hello(c.sys.Name())
	tw.Static(statics)
	tw.NestGroups(cfg.Beam.NestGroups)
	return tw, traceObserver{tw: tw}
}
