// This file is the campaign-resume entry point: an anytime campaign can
// emit a Checkpoint after every sealed round (WithCheckpoints) and a
// later campaign of the same configuration can restart from one
// (WithResume), re-driving the schedule, RNG, and causal graph from the
// checkpointed position. The determinism contract extends across the
// interruption: a resumed campaign's final Report is byte-identical to
// the report of a campaign that was never interrupted.

package csnake

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core/alloc"
	"repro/internal/core/graph"
	"repro/internal/harness"
)

// CheckpointSchema is the version stamped into emitted checkpoints;
// WithResume rejects any other value.
const CheckpointSchema = 1

// ErrResume wraps every checkpoint-rejection error: the checkpoint does
// not match the campaign (wrong system, seed, schema, or protocol
// shape), or is internally inconsistent. Callers that persist
// checkpoints opportunistically should treat ErrResume as "discard the
// checkpoint and re-run from scratch", not as a campaign failure.
var ErrResume = errors.New("csnake: resume checkpoint rejected")

// Checkpoint is a round-granular snapshot of a running anytime campaign:
// everything needed to re-drive it from the end of round Rounds. It is
// pure data, stable under JSON round trips.
type Checkpoint struct {
	Schema int    `json:"schema"`
	System string `json:"system"`
	Seed   int64  `json:"seed"`

	// Rounds is the number of sealed rounds; Sims the cumulative
	// simulation count and RNGDraws the RNG position at that boundary.
	Rounds   int   `json:"rounds"`
	Sims     int   `json:"sims"`
	RNGDraws int64 `json:"rngDraws"`

	// Stable and LastFingerprint carry the early-stop convergence state.
	Stable          int    `json:"stable,omitempty"`
	LastFingerprint string `json:"lastFingerprint,omitempty"`

	// Schedule is the allocation schedule's planning position.
	Schedule *alloc.ScheduleState `json:"schedule"`

	// Graph is the round-sealed causal graph (graph JSON schema).
	Graph json.RawMessage `json:"graph"`
}

// WithCheckpoints installs a per-round checkpoint sink on an anytime
// campaign: after every sealed round fn receives a Checkpoint resuming
// at that round. fn runs on the campaign goroutine between rounds --
// persistence cost directly lengthens the round. Batch campaigns emit
// no checkpoints (they re-run from scratch deterministically).
func WithCheckpoints(fn func(*Checkpoint)) Option {
	return func(c *Campaign) { c.ckptFn = fn }
}

// WithResume restarts the campaign from cp instead of from scratch. The
// campaign must be anytime-shaped and configured identically to the one
// that emitted cp (same system, seed, protocol, budget); Run returns an
// error wrapping ErrResume otherwise. nil is a no-op.
func WithResume(cp *Checkpoint) Option {
	return func(c *Campaign) { c.resume = cp }
}

// resumeErr tags an error as a checkpoint rejection.
func resumeErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrResume, fmt.Sprintf(format, args...))
}

// adoptResume validates cp against the campaign and installs the
// checkpointed graph into the driver. It runs before the scheduler is
// built (the adaptive protocol's weight hook probes the driver's graph).
func (c *Campaign) adoptResume(cp *Checkpoint, cfg Config, driver *harness.Driver) error {
	if cp.Schema != CheckpointSchema {
		return resumeErr("schema %d (want %d)", cp.Schema, CheckpointSchema)
	}
	if cp.System != c.sys.Name() {
		return resumeErr("checkpoint for system %q, campaign targets %q", cp.System, c.sys.Name())
	}
	if cp.Seed != cfg.Seed {
		return resumeErr("checkpoint seed %d, campaign seed %d", cp.Seed, cfg.Seed)
	}
	if cp.Schedule == nil {
		return resumeErr("checkpoint has no schedule state")
	}
	if cp.Rounds < 0 || cp.Sims < 0 || cp.RNGDraws < 0 {
		return resumeErr("negative cursor (rounds %d, sims %d, draws %d)", cp.Rounds, cp.Sims, cp.RNGDraws)
	}
	g := graph.New()
	if err := g.UnmarshalJSON(cp.Graph); err != nil {
		return resumeErr("graph: %v", err)
	}
	if err := driver.AdoptGraph(g); err != nil {
		return resumeErr("%v", err)
	}
	return nil
}

// checkpointOf seals the campaign's position after a round: schedule
// state, RNG draw count, cumulative sims, convergence counters, and the
// serialized graph.
func checkpointOf(c *Campaign, cfg Config, driver *harness.Driver, sched alloc.Scheduler,
	src *alloc.CountedSource, rounds, stable int, lastFP string) (*Checkpoint, error) {

	res, ok := sched.(alloc.Resumable)
	if !ok {
		return nil, fmt.Errorf("csnake: scheduler %T is not resumable", sched)
	}
	gb, err := json.Marshal(driver.Graph())
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Schema:          CheckpointSchema,
		System:          c.sys.Name(),
		Seed:            cfg.Seed,
		Rounds:          rounds,
		Sims:            driver.SimCount(),
		RNGDraws:        src.Draws(),
		Stable:          stable,
		LastFingerprint: lastFP,
		Schedule:        res.ExportState(),
		Graph:           gb,
	}, nil
}
