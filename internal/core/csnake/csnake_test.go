package csnake

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/systems/dfs"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/metastore"
	"repro/internal/systems/objstore"
	"repro/internal/systems/stream"
	"repro/internal/systems/sysreg"
)

func lightConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Harness = harness.Config{
		Reps:            3,
		DelayMagnitudes: []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second},
	}
	return cfg
}

// TestCaseStudyEdgesViaHarness drives the §8.3.2 experiment pair through
// the real driver and checks both causal edges exist and stitch.
func TestCaseStudyEdgesViaHarness(t *testing.T) {
	sys := dfs.NewV2()
	d := harness.New(sys, sysreg.Space(sys), harness.Config{
		Reps: 3, DelayMagnitudes: []time.Duration{time.Second, 2 * time.Second}})
	d.Execute(dfs.PtNNIBRProcessLoop, "ibr_storm")
	d.Execute(dfs.PtDNIBRRPCIOE, "ibr_interval")
	var fwd, back bool
	for _, e := range d.Edges() {
		if e.From == dfs.PtNNIBRProcessLoop && e.To == dfs.PtDNIBRRPCIOE {
			fwd = true
		}
		if e.From == dfs.PtDNIBRRPCIOE && e.To == dfs.PtNNIBRProcessLoop {
			back = true
		}
	}
	if !fwd || !back {
		t.Fatalf("case-study edges missing: fwd=%v back=%v edges=%v", fwd, back, d.Edges())
	}
}

// TestCampaignDetectsSeededBugs runs full light campaigns on the smaller
// systems and requires the seeded ground-truth bugs to be found.
func TestCampaignDetectsSeededBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are heavyweight")
	}
	cases := []struct {
		sys  sysreg.System
		want []string
	}{
		{kvstore.New(), []string{"HBASE-1", "HBASE-2"}},
		{stream.New(), []string{"FLINK-1", "FLINK-2"}},
		{objstore.New(), []string{"OZONE-2", "OZONE-3"}},
	}
	for _, c := range cases {
		rep, err := Run(c.sys, lightConfig(42))
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, id := range DetectedBugs(rep, c.sys.Bugs()) {
			got[id] = true
		}
		for _, id := range c.want {
			if !got[id] {
				t.Errorf("%s: bug %s not detected (found %v, %d edges, %d cycles)",
					c.sys.Name(), id, DetectedBugs(rep, c.sys.Bugs()), len(rep.Edges), len(rep.Cycles))
			}
		}
	}
}

// TestCampaignHDFS2FindsMajority checks the HDFS 2 campaign finds at
// least half of the six seeded bugs under the light configuration (the
// full configuration finds more; budget scheduling is randomised).
func TestCampaignHDFS2FindsMajority(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are heavyweight")
	}
	sys := dfs.NewV2()
	rep, err := Run(sys, lightConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	found := DetectedBugs(rep, sys.Bugs())
	if len(found) < 3 {
		t.Fatalf("detected %v, want >= 3 of 6", found)
	}
	tp, total := TruePositiveClusters(rep, sys.Bugs())
	if tp == 0 || total == 0 {
		t.Fatalf("tp=%d total=%d", tp, total)
	}
	if rep.Alloc == nil || len(rep.Alloc.Clusters) == 0 {
		t.Fatal("missing 3PA result")
	}
}

// TestMetastoreCampaignDetectsStormsSerialParallel is the consensus
// target's acceptance regression: one light campaign against the
// Raft-style metadata store must deterministically stitch both seeded
// self-sustaining cycles -- the election-loop storm (RAFT-1) and the
// snapshot-transfer storm (RAFT-2) -- and a fully parallel campaign must
// be byte-identical to the serial one.
func TestMetastoreCampaignDetectsStormsSerialParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are heavyweight")
	}
	sys := metastore.New()
	runAt := func(par int) *Report {
		rep, err := NewCampaign(sys, WithConfig(lightConfig(42)), WithParallelism(par)).Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := runAt(1)
	parallel := runAt(8)

	got := map[string]bool{}
	for _, id := range DetectedBugs(serial, sys.Bugs()) {
		got[id] = true
	}
	for _, id := range []string{"RAFT-1", "RAFT-2"} {
		if !got[id] {
			t.Errorf("seeded storm %s not detected (found %v, %d edges, %d cycles)",
				id, DetectedBugs(serial, sys.Bugs()), len(serial.Edges), len(serial.Cycles))
		}
	}

	if serial.Sims != parallel.Sims {
		t.Fatalf("sim counts diverge: %d vs %d", serial.Sims, parallel.Sims)
	}
	if !reflect.DeepEqual(serial.Edges, parallel.Edges) {
		t.Fatal("edge sets diverge between serial and parallel campaigns")
	}
	if fmt.Sprintf("%+v", serial.Cycles) != fmt.Sprintf("%+v", parallel.Cycles) {
		t.Fatal("cycle sets diverge between serial and parallel campaigns")
	}
	if fmt.Sprintf("%+v", serial.CycleClusters) != fmt.Sprintf("%+v", parallel.CycleClusters) {
		t.Fatal("cycle clusters diverge between serial and parallel campaigns")
	}
	if !reflect.DeepEqual(DetectedBugs(serial, sys.Bugs()), DetectedBugs(parallel, sys.Bugs())) {
		t.Fatal("detected bug sets diverge between serial and parallel campaigns")
	}
}

// TestRandomProtocolRuns ensures the comparison protocol produces a
// well-formed report.
func TestRandomProtocolRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are heavyweight")
	}
	cfg := lightConfig(7)
	cfg.Protocol = ProtocolRandom
	rep, err := Run(kvstore.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alloc != nil {
		t.Fatal("random protocol must not produce a 3PA result")
	}
	if len(rep.Runs) == 0 {
		t.Fatal("no runs")
	}
}

func TestNestGroups(t *testing.T) {
	space := faults.NewSpace([]faults.Point{
		{ID: "a.p", Kind: faults.Loop},
		{ID: "a.c1", Kind: faults.Loop},
		{ID: "a.c2", Kind: faults.Loop},
		{ID: "a.other", Kind: faults.Loop},
	}, []faults.LoopNest{{Parent: "a.p", Children: []faults.ID{"a.c1", "a.c2"}}})
	groups := NestGroups(space)
	if groups["a.p"] != groups["a.c1"] || groups["a.c1"] != groups["a.c2"] {
		t.Fatalf("nest family split: %v", groups)
	}
	if _, ok := groups["a.other"]; ok {
		t.Fatal("non-nested loop assigned to a family")
	}
}

func TestLabelMatchesCoreFaults(t *testing.T) {
	bug := sysreg.Bug{ID: "B1", CoreFaults: []faults.ID{"f.a", "f.b"}}
	rep := &Report{}
	if got := DetectedBugs(rep, []sysreg.Bug{bug}); len(got) != 0 {
		t.Fatalf("empty report detected %v", got)
	}
}
