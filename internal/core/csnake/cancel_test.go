package csnake

import (
	"context"
	"errors"
	"testing"
)

// TestAnytimeCancellationMidWave is the regression test for campaign
// teardown: a cancellation that lands mid-wave (here: during the second
// experiment of the first wave) must surface as context.Canceled -- not
// as a nil error with a partial report -- and must not fire
// CampaignFinished, whose contract is "the campaign ran to completion".
func TestAnytimeCancellationMidWave(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &eventRecorder{onExperiment: func(n int) {
		if n == 2 {
			cancel()
		}
	}}
	rep, err := NewCampaign(tinySystem{},
		append(tinyOpts(), WithAnytime(), WithWaveSize(3),
			WithContext(ctx), WithObserver(rec))...).Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled campaign returned no partial report")
	}
	for _, e := range rec.snapshot() {
		if e == "finished" {
			t.Fatal("CampaignFinished fired for a cancelled campaign")
		}
	}
}

// TestBatchCancellation covers the batch path: cancelling before the run
// starts yields context.Canceled immediately.
func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := &eventRecorder{}
	_, err := NewCampaign(tinySystem{},
		append(tinyOpts(), WithContext(ctx), WithObserver(rec))...).Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, e := range rec.snapshot() {
		if e == "finished" {
			t.Fatal("CampaignFinished fired for a cancelled campaign")
		}
	}
}

// TestCancelledCampaignReleasesTraces asserts the teardown resource
// contract: after Driver.Release the profile cache holds no pooled runs,
// whether the campaign finished or was cancelled, and Release is
// idempotent.
func TestCancelledCampaignReleasesTraces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &eventRecorder{onExperiment: func(n int) {
		if n == 2 {
			cancel()
		}
	}}
	_, driver, err := NewCampaign(tinySystem{},
		append(tinyOpts(), WithAnytime(), WithWaveSize(3),
			WithContext(ctx), WithObserver(rec))...).RunWithDriver()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if driver == nil {
		t.Fatal("no driver returned")
	}
	if held := driver.ProfileRunsHeld(); held == 0 {
		t.Skip("campaign cancelled before any profile run was recorded")
	}
	driver.Release()
	if held := driver.ProfileRunsHeld(); held != 0 {
		t.Fatalf("after Release: %d profile runs still held", held)
	}
	driver.Release() // idempotent
	if held := driver.ProfileRunsHeld(); held != 0 {
		t.Fatalf("after second Release: %d profile runs held", held)
	}
}

// Run (without WithDriver) releases pooled traces itself.
func TestRunReleasesTraces(t *testing.T) {
	rep, driver, err := NewCampaign(tinySystem{}, tinyOpts()...).RunWithDriver()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || driver == nil {
		t.Fatal("missing report or driver")
	}
	if held := driver.ProfileRunsHeld(); held == 0 {
		t.Fatal("expected pooled profile runs before Release")
	}
	driver.Release()
	if held := driver.ProfileRunsHeld(); held != 0 {
		t.Fatalf("after Release: %d profile runs still held", held)
	}
}
