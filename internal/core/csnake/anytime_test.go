package csnake

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/core/alloc"
	"repro/internal/core/beam"
	"repro/internal/harness"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/metastore"
	"repro/internal/systems/sysreg"
)

// assertReportsIdentical compares the campaign outputs that must be byte
// identical between pipelines.
func assertReportsIdentical(t *testing.T, tag string, a, b *Report) {
	t.Helper()
	if a.Sims != b.Sims {
		t.Fatalf("%s: sim counts diverge: %d vs %d", tag, a.Sims, b.Sims)
	}
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Fatalf("%s: run schedules diverge", tag)
	}
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Fatalf("%s: edge sets diverge", tag)
	}
	if fmt.Sprintf("%+v", a.Cycles) != fmt.Sprintf("%+v", b.Cycles) {
		t.Fatalf("%s: cycles diverge:\n%+v\n%+v", tag, a.Cycles, b.Cycles)
	}
	if fmt.Sprintf("%+v", a.CycleClusters) != fmt.Sprintf("%+v", b.CycleClusters) {
		t.Fatalf("%s: cycle clusters diverge", tag)
	}
}

// TestAnytimeMatchesBatchCampaign: a full anytime campaign (no early
// stop) must finish with exactly the batch campaign's report -- same
// runs, edges, cycles, clusters -- serial and parallel, and for every
// wave granularity.
func TestAnytimeMatchesBatchCampaign(t *testing.T) {
	batch, err := NewCampaign(tinySystem{}, tinyOpts()...).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, waveSize := range []int{1, 3, 100} {
		for _, par := range []int{1, 8} {
			rep, err := NewCampaign(tinySystem{},
				append(tinyOpts(), WithAnytime(), WithWaveSize(waveSize), WithParallelism(par))...).Run()
			if err != nil {
				t.Fatal(err)
			}
			tag := fmt.Sprintf("wave=%d par=%d", waveSize, par)
			assertReportsIdentical(t, tag, rep, batch)
			if len(rep.Rounds) == 0 {
				t.Fatalf("%s: anytime campaign recorded no rounds", tag)
			}
			last := rep.Rounds[len(rep.Rounds)-1]
			if last.Spent != len(rep.Runs) || last.Budget != batch.Alloc.Budget {
				t.Fatalf("%s: last round spent %d/%d, want %d/%d",
					tag, last.Spent, last.Budget, len(rep.Runs), batch.Alloc.Budget)
			}
			if rep.EarlyStopped {
				t.Fatalf("%s: full campaign claims early stop", tag)
			}
		}
	}
}

// TestAnytimeRandomProtocolMatchesBatch: the §8.2 baseline through the
// round pipeline equals its batch run too.
func TestAnytimeRandomProtocolMatchesBatch(t *testing.T) {
	opts := append(tinyOpts(), WithProtocol(ProtocolRandom))
	batch, err := NewCampaign(tinySystem{}, opts...).Run()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewCampaign(tinySystem{}, append(opts, WithAnytime(), WithWaveSize(2))...).Run()
	if err != nil {
		t.Fatal(err)
	}
	assertReportsIdentical(t, "random", rep, batch)
	if rep.Alloc != nil {
		t.Fatal("random anytime campaign produced a 3PA result")
	}
}

// TestAdaptiveProtocolDeterministicSerialParallel: the near-cycle
// reallocation must stay a pure function of the campaign seed.
func TestAdaptiveProtocolDeterministicSerialParallel(t *testing.T) {
	runAt := func(par int) *Report {
		rep, err := NewCampaign(tinySystem{},
			append(tinyOpts(), WithProtocol(ProtocolAdaptive), WithParallelism(par))...).Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := runAt(1)
	parallel := runAt(8)
	assertReportsIdentical(t, "adaptive", serial, parallel)
	if len(serial.Rounds) == 0 {
		t.Fatal("adaptive campaign recorded no rounds")
	}
	// The tiny system has only 2 faults x 2 workloads = 4 pairs: the
	// schedule must exhaust the whole pool (the budget exceeds it).
	if serial.Alloc == nil || len(serial.Runs) != 4 {
		t.Fatalf("adaptive campaign spent %d of %d, want the exhausted 4-pair pool",
			len(serial.Runs), serial.Alloc.Budget)
	}
}

// TestRoundObserverStreamsRounds: the optional observer extension
// receives one event per round, in order, matching Report.Rounds.
func TestRoundObserverStreamsRounds(t *testing.T) {
	rec := &roundRecorder{}
	rep, err := NewCampaign(tinySystem{},
		append(tinyOpts(), WithAnytime(), WithObserver(rec))...).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.rounds) != len(rep.Rounds) {
		t.Fatalf("observer saw %d rounds, report has %d", len(rec.rounds), len(rep.Rounds))
	}
	for i, r := range rec.rounds {
		if r.Round != i+1 || r.Round != rep.Rounds[i].Round || r.Spent != rep.Rounds[i].Spent {
			t.Fatalf("round event %d = %+v, report %+v", i, r, rep.Rounds[i])
		}
	}
}

type roundRecorder struct {
	NopObserver
	rounds []Round
}

func (r *roundRecorder) RoundCompleted(round Round) { r.rounds = append(r.rounds, round) }

// TestIncrementalSearchEquivalentOnRealCampaign is the satellite
// fuzz-style regression: a real-system campaign driven round by round,
// with the incremental search compared against a full SearchGraph after
// every single delta.
func TestIncrementalSearchEquivalentOnRealCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("real-system campaign skipped in -short mode")
	}
	sys := kvstore.New()
	space := sysreg.Space(sys)
	driver := harness.New(sys, space, harness.Config{
		Reps: 2, DelayMagnitudes: []time.Duration{2 * time.Second},
	})
	driver.ProfileAll()

	opt := beam.Options{NestGroups: NestGroups(space)}
	sched := alloc.NewSchedule(alloc.ScheduleConfig{
		Space: space, BudgetFactor: 8, Rng: rand.New(rand.NewSource(42)),
	}, driver)
	inc := beam.NewIncremental(opt)
	res := sched.Result()

	rounds := 0
	for !sched.Done() {
		wave := sched.Next(3) // small waves: many deltas, many comparisons
		if len(wave) == 0 {
			break
		}
		recs, _ := driver.ExecuteWave(wave)
		sched.Fold(recs)

		g := driver.Graph()
		got := inc.Search(g, res.SimScoreOf)
		want := beam.SearchGraph(g, res.SimScoreOf, opt)
		if len(got) != len(want) {
			t.Fatalf("round %d: incremental found %d cycles, full search %d", rounds, len(got), len(want))
		}
		for i := range got {
			if got[i].Score != want[i].Score || got[i].Signature() != want[i].Signature() {
				t.Fatalf("round %d cycle %d diverges:\nincremental: %v %s\nfull:        %v %s",
					rounds, i, got[i].Score, got[i].Signature(), want[i].Score, want[i].Signature())
			}
			if !reflect.DeepEqual(got[i].Edges, want[i].Edges) {
				t.Fatalf("round %d cycle %d edge lists diverge", rounds, i)
			}
		}
		rounds++
	}
	if rounds < 10 {
		t.Fatalf("only %d rounds executed; equivalence fuzz needs a real schedule", rounds)
	}
}

// TestEarlyStopDetectsMetastoreStormsUnderBudget: the acceptance
// regression for WithEarlyStop -- both seeded MetaStore storms must be
// detected with less than the full budget.
func TestEarlyStopDetectsMetastoreStormsUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("real-system campaign skipped in -short mode")
	}
	sys := metastore.New()
	rep, err := NewCampaign(sys,
		WithConfig(lightConfig(42)),
		WithEarlyStop(3),
		WithWaveSize(4),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EarlyStopped {
		t.Fatal("campaign ran the full budget without stabilizing")
	}
	if len(rep.Rounds) == 0 {
		t.Fatal("no rounds recorded")
	}
	last := rep.Rounds[len(rep.Rounds)-1]
	if last.Spent >= last.Budget {
		t.Fatalf("early stop saved nothing: spent %d of %d", last.Spent, last.Budget)
	}
	got := map[string]bool{}
	for _, id := range DetectedBugs(rep, sys.Bugs()) {
		got[id] = true
	}
	for _, id := range []string{"RAFT-1", "RAFT-2"} {
		if !got[id] {
			t.Errorf("storm %s not detected before early stop (found %v after %d/%d runs)",
				id, DetectedBugs(rep, sys.Bugs()), last.Spent, last.Budget)
		}
	}
}
