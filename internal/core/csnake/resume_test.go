package csnake

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/systems/metastore"
	"repro/internal/systems/sysreg"
)

// resumeRun executes one checkpoint-emitting anytime campaign and
// returns its report plus every per-round checkpoint it emitted.
func resumeRun(t *testing.T, sys sysreg.System, opts []Option) (*Report, []*Checkpoint) {
	t.Helper()
	var cps []*Checkpoint
	rep, err := NewCampaign(sys,
		append(append([]Option(nil), opts...), WithCheckpoints(func(cp *Checkpoint) { cps = append(cps, cp) }))...).Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep, cps
}

// assertResumedIdentical pins the crash-recovery determinism contract:
// a campaign resumed from the checkpoint of round `cut` finishes with
// the uninterrupted campaign's report -- same graph bytes, same cycles,
// and rounds that splice seamlessly onto the baseline's prefix.
func assertResumedIdentical(t *testing.T, tag string, baseline, resumed *Report, cut int) {
	t.Helper()
	assertReportsIdentical(t, tag, resumed, baseline)
	if !reflect.DeepEqual(resumed.Alloc, baseline.Alloc) {
		t.Fatalf("%s: allocation results diverge", tag)
	}
	bb, err := json.Marshal(baseline.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.Marshal(resumed.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if string(bb) != string(rb) {
		t.Fatalf("%s: resumed graph serialization diverges from baseline", tag)
	}
	spliced := append(append([]Round(nil), baseline.Rounds[:cut]...), resumed.Rounds...)
	if !reflect.DeepEqual(spliced, baseline.Rounds) {
		t.Fatalf("%s: baseline rounds[:%d] + resumed rounds != baseline rounds:\n%+v\nvs\n%+v",
			tag, cut, spliced, baseline.Rounds)
	}
	if resumed.EarlyStopped != baseline.EarlyStopped {
		t.Fatalf("%s: early-stop flags diverge", tag)
	}
}

// TestResumeMatchesUninterrupted: for the 3PA and random protocols, cut
// the campaign at several round boundaries (crossing phase barriers),
// resume from the persisted checkpoint (JSON round trip, as the service
// stores it), and require the result identical to never interrupting.
func TestResumeMatchesUninterrupted(t *testing.T) {
	protocols := []struct {
		name string
		opts []Option
	}{
		{"3pa", append(tinyOpts(), WithAnytime(), WithWaveSize(2))},
		{"random", append(tinyOpts(), WithAnytime(), WithWaveSize(2), WithProtocol(ProtocolRandom))},
	}
	for _, p := range protocols {
		baseline, err := NewCampaign(tinySystem{}, p.opts...).Run()
		if err != nil {
			t.Fatal(err)
		}
		first, cps := resumeRun(t, tinySystem{}, p.opts)
		assertReportsIdentical(t, p.name+" checkpoint-emitting run", first, baseline)
		if len(cps) != len(baseline.Rounds) {
			t.Fatalf("%s: %d checkpoints for %d rounds", p.name, len(cps), len(baseline.Rounds))
		}

		for _, cut := range []int{1, len(cps) - 1} {
			if cut < 1 || cut > len(cps) {
				continue
			}
			tag := fmt.Sprintf("%s cut=%d", p.name, cut)
			data, err := json.Marshal(cps[cut-1])
			if err != nil {
				t.Fatal(err)
			}
			var cp Checkpoint
			if err := json.Unmarshal(data, &cp); err != nil {
				t.Fatal(err)
			}
			if cp.Rounds != cut {
				t.Fatalf("%s: checkpoint records %d rounds", tag, cp.Rounds)
			}
			resumed, err := NewCampaign(tinySystem{}, append(append([]Option(nil), p.opts...), WithResume(&cp))...).Run()
			if err != nil {
				t.Fatal(err)
			}
			assertResumedIdentical(t, tag, baseline, resumed, cut)
		}
	}
}

// TestResumeAfterEarlyStopCheckpoint: on a real system whose campaign
// early-stops, resume both from a mid-flight checkpoint and from the
// checkpoint of the round that satisfied the early-stop criterion (the
// daemon crashed between sealing the round and publishing the report);
// the latter must finish without executing further rounds. Both match
// the uninterrupted baseline.
func TestResumeAfterEarlyStopCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real-system campaign skipped in -short mode")
	}
	sys := metastore.New()
	opts := []Option{WithConfig(lightConfig(42)), WithEarlyStop(3), WithWaveSize(4)}
	baseline, err := NewCampaign(sys, opts...).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.EarlyStopped {
		t.Fatal("campaign ran the full budget without stabilizing")
	}
	_, cps := resumeRun(t, sys, opts)

	mid := cps[len(cps)/2]
	resumed, err := NewCampaign(sys, append(append([]Option(nil), opts...), WithResume(mid))...).Run()
	if err != nil {
		t.Fatal(err)
	}
	assertResumedIdentical(t, "early-stop mid", baseline, resumed, mid.Rounds)

	last := cps[len(cps)-1]
	resumed, err = NewCampaign(sys, append(append([]Option(nil), opts...), WithResume(last))...).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Rounds) != 0 {
		t.Fatalf("resume past the early-stop round executed %d extra rounds", len(resumed.Rounds))
	}
	assertResumedIdentical(t, "early-stop tail", baseline, resumed, last.Rounds)
}

// TestResumeRejectsMismatchedCheckpoint pins the ErrResume contract:
// wrong seed, wrong system, wrong schema, and a checkpoint on a batch
// campaign all fail with an error wrapping ErrResume.
func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	opts := append(tinyOpts(), WithAnytime(), WithWaveSize(2))
	_, cps := resumeRun(t, tinySystem{}, opts)
	cp := *cps[0]

	expect := func(tag string, opts []Option) {
		t.Helper()
		_, err := NewCampaign(tinySystem{}, opts...).Run()
		if !errors.Is(err, ErrResume) {
			t.Fatalf("%s: got %v, want ErrResume", tag, err)
		}
	}

	seedCp := cp
	seedCp.Seed++
	expect("seed mismatch", append(append([]Option(nil), opts...), WithResume(&seedCp)))

	sysCp := cp
	sysCp.System = "other-system"
	expect("system mismatch", append(append([]Option(nil), opts...), WithResume(&sysCp)))

	schemaCp := cp
	schemaCp.Schema = 99
	expect("schema mismatch", append(append([]Option(nil), opts...), WithResume(&schemaCp)))

	expect("batch campaign", append(tinyOpts(), WithResume(&cp)))
}
