// This file holds the round-based streaming pipeline behind WithAnytime,
// WithEarlyStop, and ProtocolAdaptive: the allocation schedule emits
// waves of (fault, test) runs, the harness driver executes each wave and
// publishes the causal-graph delta it contributed, and an incremental
// beam search folds every delta into the cycle set -- so the campaign
// has a complete (and converging) answer after every round instead of
// only at the end. A full anytime run executes exactly the experiments
// the batch pipeline executes, accumulates exactly the same graph, and
// finishes with an identical report; early stopping trades the unspent
// budget for the answer already in hand.

package csnake

import (
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core/alloc"
	"repro/internal/core/beam"
	"repro/internal/faults"
	"repro/internal/harness"
)

// runAnytime drives the round loop. capture seals the driver's graph
// into the report with its annotations; it is shared with the batch path
// so both finish identically. The campaign RNG rides a CountedSource so
// a checkpoint can record the draw position and a resumed campaign can
// fast-forward to it.
func (c *Campaign) runAnytime(cfg Config, space *faults.Space, driver *harness.Driver,
	rep *Report, capture func()) (*Report, *harness.Driver, error) {

	src := alloc.NewCountedSource(cfg.Seed)
	rng := rand.New(src)

	// Resuming: install the checkpointed graph before the scheduler is
	// built (the random schedule re-shuffles its pool at construction,
	// consuming the same draws the original did; the adaptive weight hook
	// closes over the driver's graph).
	if c.resume != nil {
		if err := c.adoptResume(c.resume, cfg, driver); err != nil {
			return rep, driver, err
		}
	}

	sched := c.newScheduler(cfg, space, driver, rng)
	isRandom := cfg.Protocol == ProtocolRandom

	var roundBase, stable int
	var lastFP string
	if cp := c.resume; cp != nil {
		res, ok := sched.(alloc.Resumable)
		if !ok {
			return rep, driver, resumeErr("scheduler %T is not resumable", sched)
		}
		if err := res.RestoreState(cp.Schedule); err != nil {
			return rep, driver, resumeErr("%v", err)
		}
		if err := src.FastForwardTo(cp.RNGDraws); err != nil {
			return rep, driver, resumeErr("%v", err)
		}
		if err := driver.OffsetSims(cp.Sims - driver.SimCount()); err != nil {
			return rep, driver, resumeErr("checkpoint sims %d below the campaign's own %d", cp.Sims, driver.SimCount())
		}
		roundBase, stable, lastFP = cp.Rounds, cp.Stable, cp.LastFingerprint
		// The checkpoint may already satisfy the early-stop criterion (the
		// original crashed between sealing its last round and finishing):
		// the resumed campaign must not run extra rounds past it.
		if cfg.EarlyStopRounds > 0 && stable >= cfg.EarlyStopRounds {
			rep.EarlyStopped = true
		}
	}

	// scoreOf and clusterOf mirror the batch path: constant 1 / unknown
	// until the 3PA schedule has clustered and scored.
	res := sched.Result()
	scoreOf := func(f faults.ID) float64 {
		if isRandom {
			return 1
		}
		return res.SimScoreOf(f)
	}
	clusterOf := func(f faults.ID) (int, bool) {
		if isRandom {
			return 0, false
		}
		gi, ok := res.ClusterOf[f]
		return gi, ok
	}

	waveSize := cfg.WaveSize
	if waveSize <= 0 {
		waveSize = space.Size()
		if waveSize < 1 {
			waveSize = 1
		}
	}

	inc := beam.NewIncremental(cfg.Beam)
	var (
		cycles   []beam.Cycle
		clusters []beam.CycleCluster
	)

	// Pipelined analysis: when no consumer needs round k's analysis
	// before wave k+1 may start, the FCA-fed incremental search and the
	// cycle clustering of a sealed round run on a background goroutine,
	// concurrently with the next wave's simulations. Analysis consumes
	// only immutable state -- the sealed wave-k graph snapshot, the wave's
	// delta, and a copy of the schedule's scoring state taken before Next
	// can mutate it at a phase barrier -- so the computed rounds are
	// byte-identical to the blocking order; only wall-clock overlaps.
	//
	// Early stopping genuinely needs round k's cluster fingerprint before
	// planning round k+1, and checkpointing must seal rounds in lockstep
	// with the schedule state it persists, so both keep the blocking loop.
	pipeline := cfg.EarlyStopRounds == 0 && c.ckptFn == nil
	type pendingRound struct {
		r        Round
		done     chan struct{}
		cycles   []beam.Cycle
		clusters []beam.CycleCluster
		panicked any
	}
	var pend *pendingRound
	// finishPending joins the in-flight analysis and seals its round:
	// append, observer, convergence bookkeeping -- everything the blocking
	// loop does after searching, in the same order.
	finishPending := func() {
		if pend == nil {
			return
		}
		<-pend.done
		if pend.panicked != nil {
			panic(pend.panicked)
		}
		cycles, clusters = pend.cycles, pend.clusters
		r := pend.r
		r.CycleCount = len(cycles)
		r.Clusters = compactClusters(clusters)
		rep.Rounds = append(rep.Rounds, r)
		if ro, ok := c.obs.(RoundObserver); ok {
			ro.RoundCompleted(r)
		}
		fp := clusterFingerprint(clusters)
		if len(cycles) > 0 && fp == lastFP {
			stable++
		} else {
			stable = 0
		}
		lastFP = fp
		pend = nil
	}

	roundNum := roundBase
	for !rep.EarlyStopped && !sched.Done() && c.ctx.Err() == nil {
		wave := sched.Next(waveSize)
		if len(wave) == 0 {
			break
		}
		recs, delta := driver.ExecuteWave(wave)
		sched.Fold(recs)
		if c.ctx.Err() != nil {
			// The wave was cut short: its empty experiments are folded (the
			// schedule stays consistent) but searching partial evidence
			// would not be meaningful.
			break
		}

		roundNum++
		r := Round{
			Round:         roundNum,
			Phase:         wave[len(wave)-1].Phase,
			Runs:          len(wave),
			Spent:         sched.Spent(),
			Budget:        sched.Budget(),
			NewEdges:      delta.New,
			TouchedEdges:  len(delta.Edges),
			TouchedFaults: len(delta.Faults),
		}

		if pipeline {
			// Join round k-1 (its analysis overlapped this wave's sims),
			// then hand round k to the background analyser. The snapshot
			// and the scoring-state copy are taken now, between Fold and
			// the next Next: exactly the state the blocking search sees.
			finishPending()
			snap := driver.Graph()
			snapScore, snapCluster := snapshotScoring(res, isRandom)
			p := &pendingRound{r: r, done: make(chan struct{})}
			pend = p
			go func() {
				defer close(p.done)
				defer func() { p.panicked = recover() }()
				p.cycles = inc.SearchDelta(snap, delta, snapScore)
				p.clusters = beam.ClusterCycles(p.cycles, snapCluster)
			}()
			continue
		}

		cycles = inc.SearchDelta(driver.Graph(), delta, scoreOf)
		clusters = beam.ClusterCycles(cycles, clusterOf)
		r.CycleCount = len(cycles)
		r.Clusters = compactClusters(clusters)
		rep.Rounds = append(rep.Rounds, r)
		if ro, ok := c.obs.(RoundObserver); ok {
			ro.RoundCompleted(r)
		}

		fp := clusterFingerprint(clusters)
		if len(cycles) > 0 && fp == lastFP {
			stable++
		} else {
			stable = 0
		}
		lastFP = fp
		if c.ckptFn != nil {
			// Checkpoint persistence is best-effort: a round whose
			// checkpoint could not be built still completes, the campaign
			// just resumes from an earlier round after a crash.
			if cp, err := checkpointOf(c, cfg, driver, sched, src, r.Round, stable, lastFP); err == nil {
				c.ckptFn(cp)
			}
		}
		if cfg.EarlyStopRounds > 0 && len(cycles) > 0 && stable >= cfg.EarlyStopRounds {
			rep.EarlyStopped = true
			break
		}
	}
	finishPending()

	if !isRandom {
		rep.Alloc = res
	}
	rep.Runs = res.Runs
	capture()
	if c.ctx.Err() != nil {
		return rep, driver, c.ctx.Err()
	}
	// Final search with the finished allocation's scores: the last
	// round's search can predate phase-two scoring (the schedule may
	// finish clustering and scoring only while planning later, empty
	// waves), and the batch pipeline ranks with the final SimScores. The
	// graph is unchanged since the last round, so this is a fold-only
	// re-rank for the incremental engine -- and a plain full search when
	// no round ever executed.
	cycles = inc.Search(driver.Graph(), scoreOf)
	clusters = beam.ClusterCycles(cycles, clusterOf)
	rep.Cycles = cycles
	rep.CycleClusters = clusters
	// Same teardown contract as the batch path: a cancellation racing the
	// final re-rank still returns context.Canceled, and CampaignFinished
	// never fires for a cancelled campaign.
	if err := c.ctx.Err(); err != nil {
		return rep, driver, err
	}
	if c.obs != nil {
		for _, cy := range rep.Cycles {
			c.obs.CycleFound(cy)
		}
		c.obs.CampaignFinished(rep)
	}
	return rep, driver, nil
}

// snapshotScoring freezes the schedule's scoring state for a background
// round analysis: crossing a phase barrier in Next mutates SimScores and
// ClusterOf in place, so the pipelined search is handed a copy equal to
// what the blocking search would have seen at this round. The random
// baseline never clusters or scores, so its snapshot is the constants.
func snapshotScoring(res *alloc.Result, isRandom bool) (func(faults.ID) float64, func(faults.ID) (int, bool)) {
	if isRandom {
		return func(faults.ID) float64 { return 1 },
			func(faults.ID) (int, bool) { return 0, false }
	}
	scores := append([]float64(nil), res.SimScores...)
	clusterOf := make(map[faults.ID]int, len(res.ClusterOf))
	for f, gi := range res.ClusterOf {
		clusterOf[f] = gi
	}
	return func(f faults.ID) float64 {
			if gi, ok := clusterOf[f]; ok && gi < len(scores) {
				return scores[gi]
			}
			return 1
		}, func(f faults.ID) (int, bool) {
			gi, ok := clusterOf[f]
			return gi, ok
		}
}

// newScheduler builds the wave-emitting schedule for the configured
// protocol.
func (c *Campaign) newScheduler(cfg Config, space *faults.Space, driver *harness.Driver, rng *rand.Rand) alloc.Scheduler {
	if cfg.Protocol == ProtocolRandom {
		return alloc.NewRandomSchedule(space, cfg.BudgetFactor, rng, driver)
	}
	scfg := alloc.ScheduleConfig{
		Space:            space,
		BudgetFactor:     cfg.BudgetFactor,
		ClusterThreshold: cfg.ClusterThreshold,
		Rng:              rng,
	}
	if cfg.Protocol == ProtocolAdaptive {
		scfg.Phase3Weights = adaptiveWeights(driver, cfg.Beam)
	}
	return alloc.NewSchedule(scfg, driver)
}

// adaptiveWeights is ProtocolAdaptive's phase-three reallocation hook: at
// every phase-three wave boundary it probes the current causal graph for
// near-cycle faults and multiplies the draw weight of every cluster
// containing one by AdaptiveBoost. Deterministic: the graph is a pure
// function of the campaign configuration and the executed schedule
// prefix, serial or parallel.
func adaptiveWeights(driver *harness.Driver, opt beam.Options) func(*alloc.Result, []float64) []float64 {
	return func(res *alloc.Result, defaults []float64) []float64 {
		near := beam.NearCycleFaults(driver.Graph(), opt)
		if len(near) == 0 {
			return defaults
		}
		for gi, members := range res.Clusters {
			for _, f := range members {
				if near[f] {
					defaults[gi] *= AdaptiveBoost
					break
				}
			}
		}
		return defaults
	}
}

// compactClusters trims a clustered cycle set for retention in
// Report.Rounds: within each cluster, one representative cycle (the
// best-ranked) is kept per distinct injected-fault set. Bug labeling
// (LabelClusters) inspects only the injected-fault sets of a cluster's
// cycles, so per-round detection results are unchanged, while the
// retained memory stays O(clusters) instead of O(raw cycles) x rounds --
// cycle-dense targets grow six-figure raw cycle counts in late rounds.
func compactClusters(clusters []beam.CycleCluster) []beam.CycleCluster {
	out := make([]beam.CycleCluster, len(clusters))
	for i, cc := range clusters {
		seen := make(map[string]bool, 4)
		var members []beam.Cycle
		for _, cy := range cc.Cycles {
			fs := cy.Faults()
			ids := make([]string, len(fs))
			for j, f := range fs {
				ids[j] = string(f)
			}
			sort.Strings(ids)
			key := strings.Join(ids, ",")
			if !seen[key] {
				seen[key] = true
				members = append(members, cy)
			}
		}
		out[i] = beam.CycleCluster{Key: cc.Key, Cycles: members}
	}
	return out
}

// clusterFingerprint renders the identity of the clustered cycle set for
// the early-stop convergence check: the ordered cluster keys. Clusters
// group cycles by the causally-equivalent fault clusters involved -- the
// granularity reports and bug labeling operate at -- so the campaign has
// converged when no round adds or removes a cluster, even while later
// experiments keep multiplying raw member cycles inside existing
// clusters.
func clusterFingerprint(clusters []beam.CycleCluster) string {
	var b strings.Builder
	for _, cc := range clusters {
		b.WriteString(cc.Key)
		b.WriteByte('\n')
	}
	return b.String()
}
