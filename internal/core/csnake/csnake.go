// Package csnake is the public face of the reproduction: it wires the
// whole CSnake pipeline of Figure 3 -- fault space construction, workload
// driving under the 3PA budget protocol, fault causality analysis, and the
// compatibility-checked parallel beam search -- into a single Campaign.
//
// A minimal use resolves a registered system and runs a campaign:
//
//	sys, _ := sysreg.Lookup("hdfs2") // blank-import repro/internal/systems/dfs
//	report, err := csnake.NewCampaign(sys,
//		csnake.WithSeed(42),
//		csnake.WithParallelism(runtime.NumCPU()),
//	).Run()
//	for _, cc := range report.CycleClusters { fmt.Println(cc.Cycles[0]) }
//
// WithAnytime (and WithEarlyStop, which implies it) switches the same
// campaign to a round-based streaming pipeline: experiment waves, graph
// deltas, an incremental cycle search after every round, and per-round
// convergence data in Report.Rounds -- with a final report identical to
// the batch pipeline's when the budget runs to completion.
package csnake

import (
	"sort"

	"repro/internal/core/alloc"
	"repro/internal/core/beam"
	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/systems/sysreg"
)

// Config assembles the knobs of a campaign.
type Config struct {
	// Seed drives every random choice in the campaign (3PA draws and run
	// seeds derive from it).
	Seed int64
	// Harness configures repetitions, delay magnitudes, and FCA.
	Harness harness.Config
	// BudgetFactor scales |F| into the 3PA budget (paper: 4).
	BudgetFactor int
	// ClusterThreshold is the causally-equivalent-fault merge cutoff.
	ClusterThreshold float64
	// Beam configures cycle search.
	Beam beam.Options
	// Protocol selects the allocation protocol; default Protocol3PA.
	Protocol ProtocolKind
	// Anytime switches the campaign to the round-based streaming
	// pipeline: the allocation schedule emits waves of experiments, each
	// wave's causal-graph delta feeds an incremental cycle search, and
	// the report carries per-round convergence data. A full anytime
	// campaign reaches exactly the batch campaign's final report.
	Anytime bool
	// EarlyStopRounds, when positive, stops an anytime campaign once the
	// clustered cycle set is non-empty and has been stable for this many
	// consecutive rounds, saving the remaining budget. Implies Anytime.
	EarlyStopRounds int
	// WaveSize is the number of experiments per anytime round (0 = |F|,
	// i.e. roughly BudgetFactor rounds after the profile runs).
	WaveSize int
}

// ProtocolKind selects the budget allocation strategy.
type ProtocolKind int

const (
	// Protocol3PA is CSnake's three-phase allocation.
	Protocol3PA ProtocolKind = iota
	// ProtocolRandom is the §8.2 random-allocation comparison baseline.
	ProtocolRandom
	// ProtocolAdaptive is 3PA with anytime feedback: at every phase-three
	// wave boundary the cluster draw weights are recomputed, boosting
	// clusters that contain faults sitting on near-cycles of the current
	// causal graph (valid propagation chains one piece of evidence short
	// of closing) -- the remaining budget chases loops that one more
	// experiment could close. Implies the round-based pipeline.
	ProtocolAdaptive
)

// AdaptiveBoost is the phase-three weight multiplier ProtocolAdaptive
// applies to clusters containing near-cycle faults.
const AdaptiveBoost = 4.0

// DefaultConfig returns paper-faithful parameters with the given seed.
// One deliberate deviation: the default budget factor is 8 rather than the
// paper's minimum of 4, because this reproduction's workload pools are two
// orders of magnitude smaller than the JUnit suites -- nearly every fault
// is reachable from most workloads, so per-fault test diversity costs
// proportionally more budget.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		Harness:      harness.DefaultConfig(),
		BudgetFactor: 8,
	}
}

// Report is the outcome of a campaign.
type Report struct {
	System string
	// Space is the filtered fault space (|F| faults).
	Space *faults.Space
	// Alloc is the 3PA result (nil for the random protocol).
	Alloc *alloc.Result
	// Runs is the executed schedule (either protocol).
	Runs []alloc.RunRecord
	// Graph is the interned causal graph: deduplicated by construction,
	// annotated with per-fault SimScores and loop-nest families, and
	// serializable for cross-campaign stitching (JSON round trip).
	Graph *graph.Graph
	// Edges is the deduplicated causal edge set (materialized from Graph).
	Edges []fca.Edge
	// Cycles are the raw reported self-sustaining cascading failures.
	Cycles []beam.Cycle
	// CycleClusters groups equivalent cycles (§6.3).
	CycleClusters []beam.CycleCluster
	// Sims is the number of simulated executions performed.
	Sims int
	// Checkpoint reports the prefix-sharing cache counters (all zero when
	// sharing is disabled). Performance telemetry only: campaign results
	// are byte-identical with sharing on or off.
	Checkpoint harness.CheckpointStats
	// Rounds carries the per-round convergence trajectory of an anytime
	// campaign (nil for batch campaigns).
	Rounds []Round
	// EarlyStopped reports that WithEarlyStop ended the campaign before
	// the budget was spent.
	EarlyStopped bool
}

// Round summarizes one round of an anytime campaign: the wave it
// executed, the causal-graph delta the wave contributed, and the cycle
// set known afterwards.
type Round struct {
	// Round is the 1-based round number.
	Round int
	// Phase is the allocation phase of the wave's last run (0 under the
	// random protocol).
	Phase alloc.Phase
	// Runs is the number of experiments this round executed; Spent the
	// cumulative count, out of Budget.
	Runs, Spent, Budget int
	// NewEdges counts new causal-edge identities the round discovered;
	// TouchedEdges additionally counts evidence-extended ones, connecting
	// TouchedFaults distinct faults.
	NewEdges, TouchedEdges, TouchedFaults int
	// CycleCount is the number of raw cycles known after this round.
	CycleCount int
	// Clusters is the clustered cycle set as of this round, compacted for
	// retention: each cluster keeps its best-ranked cycle per distinct
	// injected-fault set (all bug labeling needs), not every raw member --
	// cycle-dense targets reach six-figure raw counts in late rounds.
	// CycleCount carries the uncompacted total.
	Clusters []beam.CycleCluster
}

// Run executes a full campaign against sys with a fixed Config: it is
// the one-shot wrapper over the Campaign builder, serial and unobserved.
// The error is the campaign's termination error (context cancellation);
// the report is always returned, partial on error.
func Run(sys sysreg.System, cfg Config) (*Report, error) {
	rep, _, err := RunWithDriver(sys, cfg)
	return rep, err
}

// RunWithDriver is Run, additionally returning the harness driver so
// callers (the report tables) can inspect edge provenance.
func RunWithDriver(sys sysreg.System, cfg Config) (*Report, *harness.Driver, error) {
	return NewCampaign(sys, WithConfig(cfg)).RunWithDriver()
}

// NestGroups assigns every loop in a nest (parent and children) to one
// family, merging nests that share loops. The beam search uses the
// families to drop structural parent-child "cycles".
func NestGroups(space *faults.Space) map[faults.ID]int {
	groups := make(map[faults.ID]int)
	next := 0
	for _, nest := range space.Nests {
		members := append([]faults.ID{nest.Parent}, nest.Children...)
		id := -1
		for _, f := range members {
			if g, ok := groups[f]; ok {
				id = g
				break
			}
		}
		if id == -1 {
			id = next
			next++
		}
		for _, f := range members {
			groups[f] = id
		}
	}
	return groups
}

// LabeledCluster classifies one reported cycle cluster against the
// system's ground-truth bugs.
type LabeledCluster struct {
	Cluster beam.CycleCluster
	// Bug is the matched ground-truth bug id ("" when unmatched: a false
	// positive, typically expected contention per §8.4.2).
	Bug string
}

// Label matches reported cycle clusters against ground truth: a cluster is
// attributed to a bug when one of its cycles covers all the bug's core
// faults.
func Label(rep *Report, bugs []sysreg.Bug) []LabeledCluster {
	return LabelClusters(rep.CycleClusters, bugs)
}

// LabelClusters is Label over a bare cluster list: anytime callers use it
// to classify each round's intermediate cycle set (Round.Clusters).
func LabelClusters(clusters []beam.CycleCluster, bugs []sysreg.Bug) []LabeledCluster {
	out := make([]LabeledCluster, 0, len(clusters))
	for _, cc := range clusters {
		label := ""
		for _, bug := range bugs {
			if clusterMatches(cc, bug) {
				label = bug.ID
				break
			}
		}
		out = append(out, LabeledCluster{Cluster: cc, Bug: label})
	}
	return out
}

func clusterMatches(cc beam.CycleCluster, bug sysreg.Bug) bool {
	for _, cy := range cc.Cycles {
		have := make(map[faults.ID]bool)
		for _, f := range cy.Faults() {
			have[f] = true
		}
		all := true
		for _, f := range bug.CoreFaults {
			if !have[f] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// DetectedBugs returns the distinct ground-truth bug ids found in a
// report, sorted.
func DetectedBugs(rep *Report, bugs []sysreg.Bug) []string {
	seen := make(map[string]bool)
	for _, lc := range Label(rep, bugs) {
		if lc.Bug != "" {
			seen[lc.Bug] = true
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// TruePositiveClusters counts labelled clusters (TP) and total clusters.
func TruePositiveClusters(rep *Report, bugs []sysreg.Bug) (tp, total int) {
	labeled := Label(rep, bugs)
	for _, lc := range labeled {
		if lc.Bug != "" {
			tp++
		}
	}
	return tp, len(labeled)
}
