// Randomized scale-out identity sweep: the sharded accumulation and
// pipelined wave analysis promise byte-identical reports for ANY
// combination of wave size, worker count, and pipeline mode -- not just
// the handful of configurations the targeted tests pin. This sweep
// draws configurations from a seeded RNG and compares each against its
// own serial baseline, so a merge-order or snapshot bug that only
// manifests at an odd wave/parallelism pairing still has a test that
// can reach it.

package csnake

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// sweepConfig is one randomly drawn campaign shape.
type sweepConfig struct {
	seed     int64
	wave     int
	parallel int
	anytime  bool
	adaptive bool
}

func (c sweepConfig) String() string {
	mode := "batch"
	if c.anytime {
		mode = fmt.Sprintf("anytime/wave=%d", c.wave)
		if c.adaptive {
			mode += "/adaptive"
		}
	}
	return fmt.Sprintf("seed=%d p=%d %s", c.seed, c.parallel, mode)
}

func (c sweepConfig) opts(parallel int) []Option {
	opts := []Option{
		WithSeed(c.seed),
		WithReps(2),
		WithDelayMagnitudes(500 * time.Millisecond), // one magnitude keeps the sweep fast
		WithParallelism(parallel),
	}
	if c.anytime {
		opts = append(opts, WithAnytime(), WithWaveSize(c.wave))
		if c.adaptive {
			opts = append(opts, WithProtocol(ProtocolAdaptive))
		}
	}
	return opts
}

func TestRandomizedParallelSweepByteIdentical(t *testing.T) {
	// Fixed sweep seed: the drawn configurations are stable across runs,
	// so a failure here reproduces.
	rng := rand.New(rand.NewSource(1031))
	n := 8
	if testing.Short() {
		n = 4
	}
	parallelisms := []int{2, 4, 8}
	for i := 0; i < n; i++ {
		cfg := sweepConfig{
			seed:     int64(rng.Intn(1000)),
			wave:     1 + rng.Intn(6),
			parallel: parallelisms[rng.Intn(len(parallelisms))],
			anytime:  rng.Intn(2) == 0,
			adaptive: rng.Intn(3) == 0,
		}
		t.Run(cfg.String(), func(t *testing.T) {
			serial, err := NewCampaign(tinySystem{}, cfg.opts(1)...).Run()
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := NewCampaign(tinySystem{}, cfg.opts(cfg.parallel)...).Run()
			if err != nil {
				t.Fatal(err)
			}
			if serial.Sims != parallel.Sims {
				t.Fatalf("sim counts diverge: %d vs %d", serial.Sims, parallel.Sims)
			}
			if !reflect.DeepEqual(serial.Edges, parallel.Edges) {
				t.Fatalf("edge sets diverge:\nserial:   %v\nparallel: %v", serial.Edges, parallel.Edges)
			}
			if !reflect.DeepEqual(serial.Runs, parallel.Runs) {
				t.Fatal("run schedules diverge")
			}
			if fmt.Sprintf("%+v", serial.Cycles) != fmt.Sprintf("%+v", parallel.Cycles) {
				t.Fatal("cycle sets diverge")
			}
			if fmt.Sprintf("%+v", serial.CycleClusters) != fmt.Sprintf("%+v", parallel.CycleClusters) {
				t.Fatal("cycle clusters diverge")
			}
			if len(serial.Rounds) != len(parallel.Rounds) {
				t.Fatalf("round counts diverge: %d vs %d", len(serial.Rounds), len(parallel.Rounds))
			}
			for r := range serial.Rounds {
				if fmt.Sprintf("%+v", serial.Rounds[r]) != fmt.Sprintf("%+v", parallel.Rounds[r]) {
					t.Fatalf("round %d diverges:\nserial:   %+v\nparallel: %+v",
						r, serial.Rounds[r], parallel.Rounds[r])
				}
			}
		})
	}
}
