package csnake

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core/beam"
	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/sysreg"
)

// --- a tiny, fast target system for campaign-level tests ---

const (
	tinyWorkLoop faults.ID = "tiny.worker.loop"
	tinyJobIOE   faults.ID = "tiny.job.deadline_ioe"
)

type tinyJob struct{ deadline time.Duration }

type tinySystem struct{}

func (tinySystem) Name() string { return "TinyTest" }
func (tinySystem) Points() []faults.Point {
	return []faults.Point{
		{ID: tinyWorkLoop, Kind: faults.Loop, System: "TinyTest", Func: "worker", BodySize: 10, HasIO: true},
		{ID: tinyJobIOE, Kind: faults.Throw, System: "TinyTest", Func: "worker"},
	}
}
func (tinySystem) Nests() []faults.LoopNest { return nil }
func (tinySystem) SourceDirs() []string     { return nil }
func (tinySystem) Bugs() []sysreg.Bug {
	return []sysreg.Bug{{
		ID: "TINY-1", Title: "Front-of-queue retry",
		CoreFaults: []faults.ID{tinyWorkLoop, tinyJobIOE},
		Delays:     1, Exceptions: 1, SingleTest: true,
	}}
}
func (tinySystem) Workloads() []sysreg.Workload {
	run := func(jobs int, gap time.Duration) func(ctx *sysreg.RunContext) {
		return func(ctx *sysreg.RunContext) {
			eng, rt := ctx.Engine, ctx.RT
			q := eng.NewMailbox("srv", "jobs")
			eng.Spawn("srv", "worker", func(p *sim.Proc) {
				defer rt.Fn(p, "worker")()
				for {
					m, ok := p.Recv(q, -1)
					if !ok {
						return
					}
					j := m.(tinyJob)
					rt.Loop(p, tinyWorkLoop)
					p.Work(300 * time.Millisecond)
					if rt.Guard(p, tinyJobIOE, p.Now() > j.deadline) {
						p.Send(q, tinyJob{deadline: p.Now() + 200*time.Millisecond})
					}
				}
			})
			eng.Spawn("cli", "producer", func(p *sim.Proc) {
				for i := 0; i < jobs; i++ {
					p.Send(q, tinyJob{deadline: p.Now() + 2*time.Second})
					p.Sleep(gap)
				}
			})
		}
	}
	return []sysreg.Workload{
		{Name: "burst", Desc: "a burst of jobs", Horizon: 30 * time.Second, Run: run(12, 450*time.Millisecond)},
		{Name: "trickle", Desc: "a slow trickle", Horizon: 30 * time.Second, Run: run(6, 2*time.Second)},
	}
}

func tinyOpts() []Option {
	return []Option{
		WithSeed(7),
		WithReps(3),
		WithDelayMagnitudes(200*time.Millisecond, time.Second),
	}
}

// --- option application and defaulting ---

func TestCampaignDefaults(t *testing.T) {
	c := NewCampaign(tinySystem{})
	if got, want := c.Config(), DefaultConfig(42); !reflect.DeepEqual(got, want) {
		t.Fatalf("default config = %+v, want %+v", got, want)
	}
	if c.Parallelism() != 1 {
		t.Fatalf("default parallelism = %d, want 1", c.Parallelism())
	}
	if c.System().Name() != "TinyTest" {
		t.Fatalf("system = %q", c.System().Name())
	}
}

func TestCampaignOptionsApply(t *testing.T) {
	fcaCfg := fca.DefaultConfig()
	fcaCfg.PValue = 0.01
	c := NewCampaign(tinySystem{},
		WithSeed(99),
		WithReps(3),
		WithDelayMagnitudes(time.Second, 2*time.Second),
		WithBaseSeed(17),
		WithBudgetFactor(5),
		WithClusterThreshold(0.25),
		WithBeam(beam.Options{MaxLen: 4}),
		WithProtocol(ProtocolRandom),
		WithFCA(fcaCfg),
		WithParallelism(6),
	)
	cfg := c.Config()
	if cfg.Seed != 99 || cfg.Harness.Reps != 3 || cfg.Harness.BaseSeed != 17 {
		t.Fatalf("seed/reps/baseseed wrong: %+v", cfg)
	}
	if !reflect.DeepEqual(cfg.Harness.DelayMagnitudes, []time.Duration{time.Second, 2 * time.Second}) {
		t.Fatalf("magnitudes = %v", cfg.Harness.DelayMagnitudes)
	}
	if cfg.BudgetFactor != 5 || cfg.ClusterThreshold != 0.25 || cfg.Beam.MaxLen != 4 {
		t.Fatalf("budget/threshold/beam wrong: %+v", cfg)
	}
	if cfg.Protocol != ProtocolRandom || cfg.Harness.FCA.PValue != 0.01 {
		t.Fatalf("protocol/fca wrong: %+v", cfg)
	}
	if c.Parallelism() != 6 {
		t.Fatalf("parallelism = %d", c.Parallelism())
	}
}

func TestCampaignInvalidOptionValuesIgnored(t *testing.T) {
	c := NewCampaign(tinySystem{},
		WithReps(5),
		WithReps(0),          // no-op: keeps 5 (the -fast composition fix)
		WithBudgetFactor(-1), // no-op
		WithDelayMagnitudes(),
		WithParallelism(-3), // clamps to serial
		WithContext(nil),    // keeps Background
	)
	cfg := c.Config()
	if cfg.Harness.Reps != 5 {
		t.Fatalf("WithReps(0) clobbered reps: %d", cfg.Harness.Reps)
	}
	if cfg.BudgetFactor != DefaultConfig(42).BudgetFactor {
		t.Fatalf("WithBudgetFactor(-1) clobbered budget: %d", cfg.BudgetFactor)
	}
	if len(cfg.Harness.DelayMagnitudes) != len(DefaultConfig(42).Harness.DelayMagnitudes) {
		t.Fatalf("empty WithDelayMagnitudes clobbered sweep: %v", cfg.Harness.DelayMagnitudes)
	}
	if c.Parallelism() != 1 {
		t.Fatalf("parallelism = %d, want 1", c.Parallelism())
	}
}

func TestWithConfigAdoptsHarnessParallelism(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Harness.Parallelism = 4
	if got := NewCampaign(tinySystem{}, WithConfig(cfg)).Parallelism(); got != 4 {
		t.Fatalf("parallelism = %d, want 4", got)
	}
}

// --- observer event stream ---

type eventRecorder struct {
	mu           sync.Mutex
	events       []string
	onExperiment func(n int)
	experiments  int
}

func (r *eventRecorder) add(e string) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *eventRecorder) ProfileCached(test string, sims int) { r.add("profile:" + test) }
func (r *eventRecorder) ExperimentExecuted(f faults.ID, test string, edges, intf int) {
	r.add(fmt.Sprintf("experiment:%s@%s", f, test))
	r.mu.Lock()
	r.experiments++
	n, cb := r.experiments, r.onExperiment
	r.mu.Unlock()
	if cb != nil {
		cb(n)
	}
}
func (r *eventRecorder) EdgeDiscovered(e fca.Edge)          { r.add("edge") }
func (r *eventRecorder) CampaignStarted(s string, n, b int) { r.add("started:" + s) }
func (r *eventRecorder) CycleFound(c beam.Cycle)            { r.add("cycle") }
func (r *eventRecorder) CampaignFinished(rep *Report)       { r.add("finished") }

func (r *eventRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func TestObserverEventOrdering(t *testing.T) {
	rec := &eventRecorder{}
	rep, err := NewCampaign(tinySystem{}, append(tinyOpts(), WithObserver(rec))...).Run()
	if err != nil {
		t.Fatal(err)
	}
	events := rec.snapshot()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if events[0] != "started:TinyTest" {
		t.Fatalf("first event = %q, want campaign start", events[0])
	}
	if events[len(events)-1] != "finished" {
		t.Fatalf("last event = %q, want finished", events[len(events)-1])
	}
	var profiles, experiments, edges, cycles int
	firstExperiment, lastProfile, lastExperiment, firstCycle := -1, -1, -1, -1
	for i, e := range events {
		switch {
		case e == "started:TinyTest", e == "finished":
		case e == "edge":
			edges++
		case e == "cycle":
			cycles++
			if firstCycle == -1 {
				firstCycle = i
			}
		case len(e) > 8 && e[:8] == "profile:":
			profiles++
			lastProfile = i
		default:
			experiments++
			lastExperiment = i
			if firstExperiment == -1 {
				firstExperiment = i
			}
		}
	}
	if profiles != 2 {
		t.Fatalf("profiles = %d, want one per workload", profiles)
	}
	if experiments == 0 || edges == 0 || cycles == 0 {
		t.Fatalf("experiments=%d edges=%d cycles=%d, want all > 0", experiments, edges, cycles)
	}
	// Serial campaign: all profiles cached before the first experiment,
	// all cycles reported after the last experiment.
	if lastProfile > firstExperiment {
		t.Fatalf("profile event at %d after first experiment at %d", lastProfile, firstExperiment)
	}
	if firstCycle < lastExperiment {
		t.Fatalf("cycle event at %d before last experiment at %d", firstCycle, lastExperiment)
	}
	if len(rep.Cycles) != cycles {
		t.Fatalf("CycleFound fired %d times for %d cycles", cycles, len(rep.Cycles))
	}
}

// --- context cancellation ---

func TestContextCancellationMidCampaign(t *testing.T) {
	// A full reference run, to compare effort against.
	full, err := NewCampaign(tinySystem{}, tinyOpts()...).Run()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	rec := &eventRecorder{onExperiment: func(n int) {
		if n == 1 {
			cancel()
		}
	}}
	rep, err := NewCampaign(tinySystem{},
		append(tinyOpts(), WithContext(ctx), WithObserver(rec))...).Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled campaign returned no partial report")
	}
	if rep.Sims >= full.Sims {
		t.Fatalf("cancelled campaign simulated %d runs, full campaign %d", rep.Sims, full.Sims)
	}
	if rep.Cycles != nil {
		t.Fatalf("cancelled campaign reported cycles: %v", rep.Cycles)
	}
	for _, e := range rec.snapshot() {
		if e == "finished" {
			t.Fatal("CampaignFinished fired for a cancelled campaign")
		}
	}
}

// --- determinism: parallel == serial ---

func TestParallelCampaignIsDeterministic(t *testing.T) {
	runAt := func(par int) *Report {
		rep, err := NewCampaign(tinySystem{}, append(tinyOpts(), WithParallelism(par))...).Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := runAt(1)
	parallel := runAt(8)

	if !reflect.DeepEqual(serial.Edges, parallel.Edges) {
		t.Fatalf("edge sets diverge:\nserial:   %v\nparallel: %v", serial.Edges, parallel.Edges)
	}
	if fmt.Sprintf("%v", serial.Cycles) != fmt.Sprintf("%v", parallel.Cycles) {
		t.Fatalf("cycles diverge:\nserial:   %v\nparallel: %v", serial.Cycles, parallel.Cycles)
	}
	if !reflect.DeepEqual(serial.Runs, parallel.Runs) {
		t.Fatal("run schedules diverge")
	}
	if len(serial.CycleClusters) != len(parallel.CycleClusters) {
		t.Fatalf("cluster counts diverge: %d vs %d", len(serial.CycleClusters), len(parallel.CycleClusters))
	}
	for i := range serial.CycleClusters {
		if fmt.Sprintf("%v", serial.CycleClusters[i].Cycles) != fmt.Sprintf("%v", parallel.CycleClusters[i].Cycles) {
			t.Fatalf("cluster %d diverges", i)
		}
	}
	if serial.Sims != parallel.Sims {
		t.Fatalf("sim counts diverge: %d vs %d", serial.Sims, parallel.Sims)
	}
	if !reflect.DeepEqual(DetectedBugs(serial, tinySystem{}.Bugs()), DetectedBugs(parallel, tinySystem{}.Bugs())) {
		t.Fatal("detected bug sets diverge")
	}
}

// TestRealSystemCampaignParallelByteIdentical pins the hot-path rewrite
// (pooled trace runs, value event queue, interned occurrence stacks)
// against the PR 1 guarantee on a real system: a fully parallel campaign
// produces a byte-identical report to the serial one.
func TestRealSystemCampaignParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full real-system campaign skipped in -short mode")
	}
	cfg := DefaultConfig(42)
	cfg.Harness = harness.Config{Reps: 2, DelayMagnitudes: []time.Duration{2 * time.Second}}
	runAt := func(par int) *Report {
		rep, err := NewCampaign(kvstore.New(), WithConfig(cfg), WithParallelism(par)).Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := runAt(1)
	parallel := runAt(8)
	if serial.Sims != parallel.Sims {
		t.Fatalf("sim counts diverge: %d vs %d", serial.Sims, parallel.Sims)
	}
	if !reflect.DeepEqual(serial.Edges, parallel.Edges) {
		t.Fatalf("edge sets diverge:\nserial:   %v\nparallel: %v", serial.Edges, parallel.Edges)
	}
	if fmt.Sprintf("%+v", serial.Cycles) != fmt.Sprintf("%+v", parallel.Cycles) {
		t.Fatal("cycle sets diverge")
	}
	if fmt.Sprintf("%+v", serial.CycleClusters) != fmt.Sprintf("%+v", parallel.CycleClusters) {
		t.Fatal("cycle clusters diverge")
	}
}

// TestLegacyRunMatchesCampaign pins the compatibility wrapper: the old
// one-shot entry point is the builder with WithConfig.
func TestLegacyRunMatchesCampaign(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Harness.Reps = 3
	cfg.Harness.DelayMagnitudes = []time.Duration{200 * time.Millisecond, time.Second}
	legacy, err := Run(tinySystem{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaBuilder, err := NewCampaign(tinySystem{}, WithConfig(cfg)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Edges, viaBuilder.Edges) || legacy.Sims != viaBuilder.Sims {
		t.Fatal("legacy Run diverges from Campaign with the same config")
	}
}

// TestGraphRoundTripResearch pins the persistence acceptance criterion:
// a campaign's causal graph serialized to JSON, loaded back, and
// re-searched with the persisted SimScores and nest families yields
// exactly the in-process cycle signatures (and scores).
func TestGraphRoundTripResearch(t *testing.T) {
	rep, err := NewCampaign(tinySystem{}, tinyOpts()...).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Graph == nil {
		t.Fatal("report carries no graph")
	}
	if len(rep.Cycles) == 0 {
		t.Fatal("tiny campaign found no cycles; round trip untestable")
	}
	data, err := json.Marshal(rep.Graph)
	if err != nil {
		t.Fatal(err)
	}
	loaded := graph.New()
	if err := json.Unmarshal(data, loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.System() != rep.System {
		t.Fatalf("system = %q, want %q", loaded.System(), rep.System)
	}
	// nil score fn and NestGroups: the offline search must reconstruct
	// both from the persisted annotations alone.
	offline := beam.SearchGraph(loaded, nil, beam.Options{})
	if len(offline) != len(rep.Cycles) {
		t.Fatalf("offline cycles = %d, in-process = %d", len(offline), len(rep.Cycles))
	}
	for i := range offline {
		if offline[i].Signature() != rep.Cycles[i].Signature() {
			t.Fatalf("cycle %d signature diverges:\noffline:    %s\nin-process: %s",
				i, offline[i].Signature(), rep.Cycles[i].Signature())
		}
		if offline[i].Score != rep.Cycles[i].Score {
			t.Fatalf("cycle %d score diverges: %v vs %v", i, offline[i].Score, rep.Cycles[i].Score)
		}
	}
}

// TestReportGraphMatchesEdges: the materialized edge slice and the graph
// must stay two views of the same artifact.
func TestReportGraphMatchesEdges(t *testing.T) {
	rep, err := NewCampaign(tinySystem{}, tinyOpts()...).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Edges, rep.Graph.Edges()) {
		t.Fatal("Report.Edges diverges from Report.Graph.Edges()")
	}
}

// TestCustomNestGroupsPersistToGraph: a caller-supplied Beam.NestGroups
// override must be what the persisted graph carries, so the offline
// re-search filters with the same families as the in-process one.
func TestCustomNestGroupsPersistToGraph(t *testing.T) {
	custom := map[faults.ID]int{tinyWorkLoop: 7}
	rep, err := NewCampaign(tinySystem{},
		append(tinyOpts(), WithBeam(beam.Options{NestGroups: custom}))...).Run()
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Graph.NestGroups()
	if got[tinyWorkLoop] != 7 {
		t.Fatalf("persisted nest groups = %v, want the caller's override", got)
	}
}
