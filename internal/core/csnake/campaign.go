// This file holds Campaign, the first-class handle on one CSnake
// detection campaign: a builder constructed from functional options,
// driving a (possibly parallel) harness.Driver, observable through an
// event stream, and cancellable through a context. The one-shot
// Run/RunWithDriver functions in csnake.go remain as thin wrappers for
// callers that do not need any of that.

package csnake

import (
	"context"
	"io"
	"math/rand"
	"time"

	"repro/internal/core/alloc"
	"repro/internal/core/beam"
	"repro/internal/core/fca"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/systems/sysreg"
)

// Observer receives campaign progress events. It extends the driver-level
// harness.Observer with campaign lifecycle events; embed NopObserver to
// implement only the events of interest. With WithParallelism(n > 1) the
// driver-level events may be delivered from pool goroutines (one at a
// time, but not from the caller's goroutine).
type Observer interface {
	harness.Observer
	// CampaignStarted fires once, after the fault space is built: size is
	// |F| and budget the total experiment budget.
	CampaignStarted(system string, size, budget int)
	// CycleFound fires for every raw self-sustaining cycle the beam
	// search reports, in score order.
	CycleFound(c beam.Cycle)
	// CampaignFinished fires once with the complete report (it does not
	// fire when the campaign is cancelled).
	CampaignFinished(rep *Report)
}

// RoundObserver is an optional extension a campaign Observer may
// implement to receive per-round anytime events: after every executed
// wave it gets the round summary (wave size, graph delta counts, the
// cycle set known so far). Batch campaigns emit no round events.
type RoundObserver interface {
	RoundCompleted(r Round)
}

// NopObserver implements Observer with no-ops, for embedding.
type NopObserver struct{}

func (NopObserver) ProfileCached(string, int)                      {}
func (NopObserver) ExperimentExecuted(faults.ID, string, int, int) {}
func (NopObserver) EdgeDiscovered(fca.Edge)                        {}
func (NopObserver) CampaignStarted(string, int, int)               {}
func (NopObserver) CycleFound(beam.Cycle)                          {}
func (NopObserver) CampaignFinished(*Report)                       {}

// Campaign is a configured, reusable campaign description. Build one with
// NewCampaign and execute it with Run or RunWithDriver; each execution
// creates a fresh driver, so a Campaign value can be run repeatedly.
type Campaign struct {
	sys      sysreg.System
	cfg      Config
	par      int
	obs      Observer
	ctx      context.Context
	ckptFn   func(*Checkpoint)
	resume   *Checkpoint
	traceOut io.Writer
}

// Option mutates a Campaign under construction.
type Option func(*Campaign)

// NewCampaign builds a campaign against sys. Without options it is
// equivalent to Run(sys, DefaultConfig(42)): paper-faithful parameters,
// serial execution, no observer, background context.
func NewCampaign(sys sysreg.System, opts ...Option) *Campaign {
	c := &Campaign{
		sys: sys,
		cfg: DefaultConfig(42),
		par: 1,
		ctx: context.Background(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WithConfig replaces the whole Config (applied before later options, so
// it composes with WithReps etc. regardless of order only when first). A
// positive cfg.Harness.Parallelism is adopted as the campaign's
// parallelism, so legacy Config-based callers get the worker pool too.
func WithConfig(cfg Config) Option {
	return func(c *Campaign) {
		c.cfg = cfg
		if cfg.Harness.Parallelism > 0 {
			c.par = cfg.Harness.Parallelism
		}
	}
}

// WithSeed sets the campaign seed driving all random choices.
func WithSeed(seed int64) Option { return func(c *Campaign) { c.cfg.Seed = seed } }

// WithReps sets the number of seeds per run configuration; n <= 0 keeps
// the current value.
func WithReps(n int) Option {
	return func(c *Campaign) {
		if n > 0 {
			c.cfg.Harness.Reps = n
		}
	}
}

// WithDelayMagnitudes sets the delay-injection magnitude sweep; an empty
// list keeps the current value.
func WithDelayMagnitudes(mags ...time.Duration) Option {
	return func(c *Campaign) {
		if len(mags) > 0 {
			c.cfg.Harness.DelayMagnitudes = append([]time.Duration(nil), mags...)
		}
	}
}

// WithBaseSeed sets the harness base seed offsetting all run seeds.
func WithBaseSeed(s int64) Option { return func(c *Campaign) { c.cfg.Harness.BaseSeed = s } }

// WithFCA sets the fault-causality-analysis configuration.
func WithFCA(cfg fca.Config) Option { return func(c *Campaign) { c.cfg.Harness.FCA = cfg } }

// WithBudgetFactor scales |F| into the experiment budget; n <= 0 keeps
// the current value.
func WithBudgetFactor(n int) Option {
	return func(c *Campaign) {
		if n > 0 {
			c.cfg.BudgetFactor = n
		}
	}
}

// WithClusterThreshold sets the causally-equivalent-fault merge cutoff.
func WithClusterThreshold(t float64) Option {
	return func(c *Campaign) { c.cfg.ClusterThreshold = t }
}

// WithBeam sets the cycle-search options.
func WithBeam(opt beam.Options) Option { return func(c *Campaign) { c.cfg.Beam = opt } }

// WithProtocol selects the allocation protocol (3PA, the §8.2 random
// baseline, or the adaptive near-cycle-chasing variant).
func WithProtocol(p ProtocolKind) Option { return func(c *Campaign) { c.cfg.Protocol = p } }

// WithAnytime switches the campaign to the round-based streaming
// pipeline: waves of experiments, per-wave graph deltas, an incremental
// cycle search after every round, and per-round convergence data in
// Report.Rounds. The final report of a full anytime campaign is
// identical to the batch campaign's.
func WithAnytime() Option { return func(c *Campaign) { c.cfg.Anytime = true } }

// WithEarlyStop stops an anytime campaign once the clustered cycle set
// is non-empty and stable for k consecutive rounds (implies anytime);
// k <= 0 keeps the current value.
func WithEarlyStop(k int) Option {
	return func(c *Campaign) {
		if k > 0 {
			c.cfg.Anytime = true
			c.cfg.EarlyStopRounds = k
		}
	}
}

// WithWaveSize sets the experiments-per-round granularity of an anytime
// campaign; n <= 0 keeps the default (|F| runs per round).
func WithWaveSize(n int) Option {
	return func(c *Campaign) {
		if n > 0 {
			c.cfg.WaveSize = n
		}
	}
}

// WithParallelism bounds how many simulated runs execute concurrently.
// Results are bit-identical for every value; n <= 1 means serial.
func WithParallelism(n int) Option {
	return func(c *Campaign) {
		if n < 1 {
			n = 1
		}
		c.par = n
	}
}

// WithPrefixSharing toggles fork-at-injection prefix sharing (default
// on): injected runs fork from checkpoints of their (workload, seed)
// profile prefix instead of re-simulating the shared warm-up. Results
// are byte-identical either way -- off is an escape hatch and the
// benchmark baseline; Report.Checkpoint carries the cache counters.
func WithPrefixSharing(on bool) Option {
	return func(c *Campaign) { c.cfg.Harness.NoPrefixShare = !on }
}

// WithWorkerPool layers a shared simulation budget under the campaign's
// parallelism: every simulated run must hold both a campaign worker slot
// (WithParallelism) and a token from pool while it executes, so several
// campaigns sharing one pool are bounded by its capacity in total. The
// pool affects only scheduling, never results -- a campaign squeezed
// through a shared pool is byte-identical to the same campaign running
// alone. nil keeps the campaign unshared.
func WithWorkerPool(pool *harness.TokenPool) Option {
	return func(c *Campaign) { c.cfg.Harness.Pool = pool }
}

// WithObserver installs a campaign observer (nil disables events).
func WithObserver(o Observer) Option { return func(c *Campaign) { c.obs = o } }

// WithContext attaches a cancellation context: once it is cancelled the
// campaign stops launching simulations and Run returns ctx.Err() along
// with whatever partial results exist.
func WithContext(ctx context.Context) Option {
	return func(c *Campaign) {
		if ctx != nil {
			c.ctx = ctx
		}
	}
}

// Config returns the resolved campaign configuration.
func (c *Campaign) Config() Config { return c.cfg }

// Parallelism returns the resolved worker-pool width.
func (c *Campaign) Parallelism() int { return c.par }

// System returns the campaign's target system.
func (c *Campaign) System() sysreg.System { return c.sys }

// Run executes the campaign: profile runs, budgeted fault injection, FCA,
// and the beam search. On cancellation it returns the partial report and
// the context error. The internal driver is torn down before returning
// (its pooled traces released); callers that need the driver afterwards
// use RunWithDriver and own the teardown.
func (c *Campaign) Run() (*Report, error) {
	rep, driver, err := c.RunWithDriver()
	driver.Release()
	return rep, err
}

// RunWithDriver is Run, additionally returning the harness driver so
// callers (the report tables) can inspect edge provenance.
func (c *Campaign) RunWithDriver() (*Report, *harness.Driver, error) {
	cfg := c.cfg
	space := sysreg.Space(c.sys)
	hcfg := cfg.Harness
	hcfg.Parallelism = c.par
	driver := harness.New(c.sys, space, hcfg)
	driver.Bind(c.ctx)

	budgetFactor := cfg.BudgetFactor
	if budgetFactor == 0 {
		budgetFactor = 4
	}
	if c.obs != nil {
		c.obs.CampaignStarted(c.sys.Name(), space.Size(), budgetFactor*space.Size())
	}

	rep := &Report{System: c.sys.Name(), Space: space}
	// Resolve the effective nest families once: the in-process beam
	// search, the graph annotations, and hence any offline re-search all
	// use the same map (including a caller-supplied override).
	if cfg.Beam.NestGroups == nil {
		cfg.Beam.NestGroups = NestGroups(space)
	}
	// The trace export preamble needs the resolved nest families, so the
	// observer (progress + optional trace tap) is installed only now,
	// before any simulation runs.
	tw, texp := c.installTraceExport(cfg, fca.StaticLoopEdges(space))
	if o := harness.MultiObserver(c.obs, texp); o != nil {
		driver.Observe(o)
	}
	// capture snapshots the driver's causal graph and annotates it with
	// everything a detached re-search needs: per-fault SimScores (when the
	// 3PA clustering produced any) and the loop-nest families. A graph
	// persisted from the report therefore re-searches identically offline.
	capture := func() {
		rep.Graph = driver.Graph()
		for f, gi := range cfg.Beam.NestGroups {
			rep.Graph.SetNestGroup(f, gi)
		}
		if rep.Alloc != nil {
			for _, f := range space.IDs() {
				rep.Graph.SetScore(f, rep.Alloc.SimScoreOf(f))
			}
		}
		rep.Edges = rep.Graph.Edges()
		rep.Sims = driver.SimCount()
		rep.Checkpoint = driver.CheckpointStats()
		if tw != nil {
			// Scores ride the trace too (last record wins on replay), so a
			// monitor's re-search ranks cycles like the offline one.
			if rep.Alloc != nil {
				for _, f := range space.IDs() {
					tw.Score(f, rep.Alloc.SimScoreOf(f))
				}
			}
			tw.Flush()
		}
	}
	finish := func() (*Report, *harness.Driver, error) {
		capture()
		return rep, driver, c.ctx.Err()
	}

	driver.ProfileAll()
	if c.ctx.Err() != nil {
		return finish()
	}

	if cfg.Anytime || cfg.EarlyStopRounds > 0 || cfg.Protocol == ProtocolAdaptive {
		return c.runAnytime(cfg, space, driver, rep, capture)
	}
	if c.resume != nil {
		// Batch campaigns re-run from scratch deterministically; a stale
		// checkpoint on one is a caller bug, not something to ignore.
		return rep, driver, resumeErr("batch campaigns do not resume")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Protocol {
	case ProtocolRandom:
		rep.Runs = alloc.Random(space, cfg.BudgetFactor, rng, driver)
	default:
		proto := &alloc.Protocol{
			Space:            space,
			BudgetFactor:     cfg.BudgetFactor,
			ClusterThreshold: cfg.ClusterThreshold,
			Rng:              rng,
		}
		rep.Alloc = proto.Run(driver)
		rep.Runs = rep.Alloc.Runs
	}
	if c.ctx.Err() != nil {
		return finish()
	}

	capture()

	scoreOf := func(f faults.ID) float64 {
		if rep.Alloc != nil {
			return rep.Alloc.SimScoreOf(f)
		}
		return 1
	}
	rep.Cycles = beam.SearchGraph(rep.Graph, scoreOf, cfg.Beam)
	rep.CycleClusters = beam.ClusterCycles(rep.Cycles, func(f faults.ID) (int, bool) {
		if rep.Alloc == nil {
			return 0, false
		}
		gi, ok := rep.Alloc.ClusterOf[f]
		return gi, ok
	})
	// A cancellation racing the final search must still surface: the
	// contract is that a cancelled campaign always returns the context
	// error and never fires CampaignFinished.
	if err := c.ctx.Err(); err != nil {
		return rep, driver, err
	}
	if c.obs != nil {
		for _, cy := range rep.Cycles {
			c.obs.CycleFound(cy)
		}
		c.obs.CampaignFinished(rep)
	}
	return rep, driver, nil
}
