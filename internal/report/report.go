// Package report regenerates the paper's evaluation artefacts: Table 2
// (injection/monitor point and test counts), Table 3 (detected
// self-sustaining cascading failures with allocation phase, random-
// allocation and naive-strategy comparisons), Table 4 (cycle/cluster/TP
// counts, unlimited vs one-delay beam search), the §8.2.1 fuzzing
// comparison, the §8.5 instrumentation overhead measurement, and the
// anytime-campaign convergence table (cycles found vs budget spent).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/baselines"
	"repro/internal/core/alloc"
	"repro/internal/core/beam"
	"repro/internal/core/csnake"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/systems/sysreg"
)

// Table2Row is one system's static-analysis inventory.
type Table2Row struct {
	System     string
	Loops      int
	Exceptions int
	Negations  int
	Branches   int
	Tests      int
}

// Table2 runs the static analyzer over each system.
func Table2(root string, systems []sysreg.System) ([]Table2Row, error) {
	var rows []Table2Row
	for _, sys := range systems {
		inv, err := analyzer.Analyze(root, sys.SourceDirs())
		if err != nil {
			return nil, err
		}
		c := inv.Count()
		rows = append(rows, Table2Row{
			System:     sys.Name(),
			Loops:      c.Loops,
			Exceptions: c.Exceptions,
			Negations:  c.Negations,
			Branches:   c.Branches,
			Tests:      len(sys.Workloads()),
		})
	}
	return rows, nil
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-10s %6s %10s %9s %7s %6s\n", "System", "Loop", "Exception", "Negation", "Branch", "Test")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %10d %9d %7d %6d\n", r.System, r.Loops, r.Exceptions, r.Negations, r.Branches, r.Tests)
	}
}

// Table3Row is one detected (or missed) ground-truth bug.
type Table3Row struct {
	System     string
	Bug        sysreg.Bug
	Detected   bool
	Cycle      string // composition, e.g. "1D | 2E | 0N"
	AllocPhase int    // 3PA phase after which all causal edges were known
	Random     bool   // detected under random allocation
	Alt        bool   // detected by the naive single-fault strategy
}

// CampaignArtifacts bundles everything Table 3/4 need from one system.
type CampaignArtifacts struct {
	System sysreg.System
	Report *csnake.Report
	// Driver gives access to edge provenance for phase attribution.
	Driver *harness.Driver
	Config csnake.Config
	// Err is the campaign's termination error (context cancellation).
	Err error
}

// RunCampaign executes the standard campaign for a system and keeps the
// artefacts needed by the tables. Options are forwarded to the Campaign
// builder, so callers compose execution settings (parallelism, observer,
// light reps) the same way everywhere.
func RunCampaign(sys sysreg.System, opts ...csnake.Option) *CampaignArtifacts {
	c := csnake.NewCampaign(sys, opts...)
	rep, driver, err := c.RunWithDriver()
	return &CampaignArtifacts{System: sys, Report: rep, Driver: driver, Config: c.Config(), Err: err}
}

// Table3 classifies each ground-truth bug of the campaign's system.
func Table3(art *CampaignArtifacts, naive []baselines.NaiveFinding, randomDetected map[string]bool) []Table3Row {
	sys := art.System
	rep := art.Report
	naiveBugs := map[string]bool{}
	for _, id := range baselines.DetectedByNaive(naive, sys.Bugs()) {
		naiveBugs[id] = true
	}
	detected := map[string]bool{}
	for _, id := range csnake.DetectedBugs(rep, sys.Bugs()) {
		detected[id] = true
	}
	// The per-phase prefix searches depend only on the campaign, not on
	// the bug under classification: run them once and probe per bug.
	phases := phaseReports(art)
	var rows []Table3Row
	for _, bug := range sys.Bugs() {
		if bug.Duplicate {
			continue
		}
		row := Table3Row{
			System:   sys.Name(),
			Bug:      bug,
			Detected: detected[bug.ID],
			Random:   randomDetected[bug.ID],
			Alt:      naiveBugs[bug.ID],
		}
		if row.Detected {
			row.Cycle = detectedComposition(rep, bug)
			row.AllocPhase = allocPhase(phases, bug)
		}
		rows = append(rows, row)
	}
	return rows
}

// detectedComposition reports the composition of the best cycle matching
// the bug.
func detectedComposition(rep *csnake.Report, bug sysreg.Bug) string {
	for _, lc := range csnake.Label(rep, []sysreg.Bug{bug}) {
		if lc.Bug == bug.ID && len(lc.Cluster.Cycles) > 0 {
			d, e, n := lc.Cluster.Cycles[0].Composition()
			return fmt.Sprintf("%dD | %dE | %dN", d, e, n)
		}
	}
	return ""
}

// phaseReports builds the three cumulative per-phase sub-reports (the
// campaign as it looked after phases 1, 2, 3). Each phase is re-searched
// from a prefix snapshot of the driver's interned graph: the
// per-experiment boundaries address the prefix directly, with no raw-edge
// copying, re-deduplication, or state-key recomputation. Bug-independent,
// so Table 3 computes this once and probes it per bug. Returns nil when
// the campaign has no 3PA result.
func phaseReports(art *CampaignArtifacts) []*csnake.Report {
	if art.Report.Alloc == nil {
		return nil
	}
	runs := art.Report.Alloc.Runs
	opt := art.Config.Beam
	if opt.NestGroups == nil {
		opt.NestGroups = csnake.NestGroups(art.Report.Space)
	}
	subs := make([]*csnake.Report, 0, 3)
	for phase := 1; phase <= 3; phase++ {
		n := 0
		for i, r := range runs {
			if int(r.Phase) <= phase {
				n = i + 1
			}
		}
		g := art.Driver.GraphUpTo(n)
		sub := &csnake.Report{
			System: art.Report.System,
			Space:  art.Report.Space,
			Alloc:  art.Report.Alloc,
			Graph:  g,
			Edges:  g.Edges(),
			Cycles: beam.SearchGraph(g, art.Report.Alloc.SimScoreOf, opt),
		}
		sub.CycleClusters = beam.ClusterCycles(sub.Cycles, func(f faults.ID) (int, bool) {
			gi, ok := art.Report.Alloc.ClusterOf[f]
			return gi, ok
		})
		subs = append(subs, sub)
	}
	return subs
}

// allocPhase finds the first 3PA phase whose accumulated causal edges
// already reveal the bug (the Table 3 "Alloc." column).
func allocPhase(phases []*csnake.Report, bug sysreg.Bug) int {
	if len(phases) == 0 {
		return 0
	}
	for i, sub := range phases {
		for _, id := range csnake.DetectedBugs(sub, []sysreg.Bug{bug}) {
			if id == bug.ID {
				return i + 1
			}
		}
	}
	return len(phases)
}

// WriteTable3 renders Table 3.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-8s %-10s %-34s %-14s %-6s %-5s %-5s %-9s\n",
		"System", "Bug", "Delayed task", "Cycle", "Alloc", "Rnd?", "Alt?", "Detected")
	for _, r := range rows {
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "-"
		}
		phase := "-"
		if r.Detected && r.AllocPhase > 0 {
			phase = fmt.Sprintf("%d", r.AllocPhase)
		}
		fmt.Fprintf(w, "%-8s %-10s %-34s %-14s %-6s %-5s %-5s %-9s\n",
			r.System, r.Bug.ID, r.Bug.Title, r.Cycle, phase, mark(r.Random), mark(r.Alt), mark(r.Detected))
	}
}

// Table4Row is one system's cycle-clustering summary, with the
// parenthesised one-delay-injection variant.
type Table4Row struct {
	System                  string
	Cycles, Clusters, TP    int
	Cycles1, Clusters1, TP1 int // beam search limited to one delay injection
}

// Table4 computes both beam-search variants from a finished campaign.
func Table4(art *CampaignArtifacts) Table4Row {
	rep := art.Report
	sys := art.System
	tp, total := csnake.TruePositiveClusters(rep, sys.Bugs())
	row := Table4Row{
		System:   sys.Name(),
		Cycles:   len(rep.Cycles),
		Clusters: total,
		TP:       tp,
	}
	opt := art.Config.Beam
	opt.MaxDelayInjections = 1
	if opt.NestGroups == nil {
		opt.NestGroups = csnake.NestGroups(rep.Space)
	}
	scoreOf := func(f faults.ID) float64 {
		if rep.Alloc != nil {
			return rep.Alloc.SimScoreOf(f)
		}
		return 1
	}
	limited := &csnake.Report{System: rep.System, Space: rep.Space, Alloc: rep.Alloc, Graph: rep.Graph, Edges: rep.Edges}
	if rep.Graph != nil {
		// Reuse the campaign's interned graph: the one-delay variant
		// re-searches the same index instead of re-keying the edge slice.
		limited.Cycles = beam.SearchGraph(rep.Graph, scoreOf, opt)
	} else {
		limited.Cycles = beam.Search(rep.Edges, scoreOf, opt)
	}
	limited.CycleClusters = beam.ClusterCycles(limited.Cycles, func(f faults.ID) (int, bool) {
		if rep.Alloc == nil {
			return 0, false
		}
		gi, ok := rep.Alloc.ClusterOf[f]
		return gi, ok
	})
	tp1, total1 := csnake.TruePositiveClusters(limited, sys.Bugs())
	row.Cycles1 = len(limited.Cycles)
	row.Clusters1 = total1
	row.TP1 = tp1
	return row
}

// WriteTable4 renders Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "%-10s %-12s %-12s %-12s\n", "System", "Cycle", "Cluster", "TP")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-12s %-12s %-12s\n", r.System,
			fmt.Sprintf("%d (%d)", r.Cycles, r.Cycles1),
			fmt.Sprintf("%d (%d)", r.Clusters, r.Clusters1),
			fmt.Sprintf("%d (%d)", r.TP, r.TP1))
	}
}

// ConvergenceRow is one anytime-campaign round in the convergence table:
// how much of the detection surfaced after what fraction of the budget.
type ConvergenceRow struct {
	System string
	Round  int
	Phase  alloc.Phase
	// Spent / Budget is the cumulative experiment count; SpentFrac the
	// fraction of budget consumed after this round.
	Spent, Budget int
	SpentFrac     float64
	Cycles        int
	Clusters      int
	// Detected lists the ground-truth bugs identifiable from this round's
	// clustered cycle set, sorted.
	Detected []string
}

// Convergence renders an anytime campaign's round trajectory against the
// system's ground truth: the "cycles found vs budget spent" table. Nil
// for batch campaigns (no rounds recorded).
func Convergence(art *CampaignArtifacts) []ConvergenceRow {
	rep := art.Report
	var rows []ConvergenceRow
	for _, r := range rep.Rounds {
		row := ConvergenceRow{
			System:   rep.System,
			Round:    r.Round,
			Phase:    r.Phase,
			Spent:    r.Spent,
			Budget:   r.Budget,
			Cycles:   r.CycleCount,
			Clusters: len(r.Clusters),
		}
		if r.Budget > 0 {
			row.SpentFrac = float64(r.Spent) / float64(r.Budget)
		}
		seen := map[string]bool{}
		for _, lc := range csnake.LabelClusters(r.Clusters, art.System.Bugs()) {
			if lc.Bug != "" && !seen[lc.Bug] {
				seen[lc.Bug] = true
				row.Detected = append(row.Detected, lc.Bug)
			}
		}
		sort.Strings(row.Detected)
		rows = append(rows, row)
	}
	return rows
}

// WriteConvergence renders the convergence table.
func WriteConvergence(w io.Writer, rows []ConvergenceRow) {
	fmt.Fprintf(w, "%-10s %5s %5s %11s %7s %8s %8s  %s\n",
		"System", "Round", "Phase", "Spent", "Budget%", "Cycles", "Clusters", "Detected")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %5d %5d %11s %6.0f%% %8d %8d  %s\n",
			r.System, r.Round, r.Phase,
			fmt.Sprintf("%d/%d", r.Spent, r.Budget), 100*r.SpentFrac,
			r.Cycles, r.Clusters, strings.Join(r.Detected, ","))
	}
}

// Overhead measures instrumentation overhead (§8.5) across a system's
// workloads: wall-clock of monitored profile runs vs monitoring-disabled
// runs.
type Overhead struct {
	System  string
	AvgPct  float64
	MinPct  float64
	MaxPct  float64
	Samples int
}

// MeasureOverhead runs each workload with monitoring on and off. The
// multi-sample averaging lives in harness.Driver.OverheadSample (the
// single source of truth for the §8.5 measurement).
func MeasureOverhead(sys sysreg.System) Overhead {
	driver := harness.New(sys, sysreg.Space(sys), harness.Config{Reps: 1})
	out := Overhead{System: sys.Name(), MinPct: -1}
	var sum float64
	for _, w := range sys.Workloads() {
		inst, bare := driver.OverheadSample(w.Name, 100)
		if bare == 0 {
			continue
		}
		pct := 100 * (float64(inst)/float64(bare) - 1)
		if pct < 0 {
			pct = 0
		}
		sum += pct
		out.Samples++
		if out.MinPct < 0 || pct < out.MinPct {
			out.MinPct = pct
		}
		if pct > out.MaxPct {
			out.MaxPct = pct
		}
	}
	if out.Samples > 0 {
		out.AvgPct = sum / float64(out.Samples)
	}
	return out
}

// WriteOverhead renders the §8.5 measurement.
func WriteOverhead(w io.Writer, rows []Overhead) {
	fmt.Fprintf(w, "%-10s %10s %10s %10s\n", "System", "Avg%", "Min%", "Max%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9.0f%% %9.0f%% %9.0f%%\n", r.System, r.AvgPct, r.MinPct, r.MaxPct)
	}
}

// Summary renders a one-line campaign summary.
func Summary(art *CampaignArtifacts) string {
	rep := art.Report
	var b strings.Builder
	fmt.Fprintf(&b, "%s: |F|=%d budget=%d edges=%d cycles=%d clusters=%d sims=%d",
		rep.System, rep.Space.Size(), len(rep.Runs), len(rep.Edges), len(rep.Cycles), len(rep.CycleClusters), rep.Sims)
	bugs := csnake.DetectedBugs(rep, art.System.Bugs())
	sort.Strings(bugs)
	fmt.Fprintf(&b, " detected=%v", bugs)
	return b.String()
}
