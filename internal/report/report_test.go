package report

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/systems/dfs"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/sysreg"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Join(filepath.Dir(file), "..", "..")
}

func TestTable2AgainstSources(t *testing.T) {
	rows, err := Table2(repoRoot(t), []sysreg.System{dfs.NewV2(), kvstore.New()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	hdfs := rows[0]
	if hdfs.System != "HDFS 2" || hdfs.Loops < 14 || hdfs.Exceptions < 12 || hdfs.Negations < 6 || hdfs.Tests != 14 {
		t.Fatalf("HDFS 2 row = %+v", hdfs)
	}
	var b strings.Builder
	WriteTable2(&b, rows)
	if !strings.Contains(b.String(), "HDFS 2") || !strings.Contains(b.String(), "HBase") {
		t.Fatalf("render:\n%s", b.String())
	}
}

func TestWriteTable3Rendering(t *testing.T) {
	rows := []Table3Row{
		{System: "X", Bug: sysreg.Bug{ID: "X-1", Title: "Some task"},
			Detected: true, Cycle: "1D | 1E | 0N", AllocPhase: 2, Random: true, Alt: false},
		{System: "X", Bug: sysreg.Bug{ID: "X-2", Title: "Other"}, Detected: false},
	}
	var b strings.Builder
	WriteTable3(&b, rows)
	out := b.String()
	for _, want := range []string{"X-1", "1D | 1E | 0N", "Some task"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteTable4Rendering(t *testing.T) {
	var b strings.Builder
	WriteTable4(&b, []Table4Row{{System: "X", Cycles: 38, Clusters: 15, TP: 6, Cycles1: 23, Clusters1: 9, TP1: 6}})
	if !strings.Contains(b.String(), "38 (23)") || !strings.Contains(b.String(), "6 (6)") {
		t.Fatalf("render:\n%s", b.String())
	}
}

func TestMeasureOverheadShape(t *testing.T) {
	o := MeasureOverhead(kvstore.New())
	if o.Samples == 0 {
		t.Fatal("no samples")
	}
	if o.MinPct > o.AvgPct || o.AvgPct > o.MaxPct {
		t.Fatalf("ordering violated: %+v", o)
	}
	var b strings.Builder
	WriteOverhead(&b, []Overhead{o})
	if !strings.Contains(b.String(), "HBase") {
		t.Fatalf("render:\n%s", b.String())
	}
}
