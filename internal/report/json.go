// This file is the machine-readable campaign report: one JSON schema
// shared by the csnake CLI (-json) and the csnaked campaign service, so
// scripted consumers read the same document whether a campaign ran as a
// one-shot process or as a served job. The encoding is a pure function
// of the report -- no wall-clock, no map iteration order -- so two
// byte-identical campaigns encode to byte-identical JSON.

package report

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/core/beam"
	"repro/internal/core/csnake"
	"repro/internal/systems/sysreg"
)

// JSONSchema is the version tag of the machine-readable report format.
const JSONSchema = 1

// JSONReport is the wire form of a campaign report.
type JSONReport struct {
	Schema int    `json:"schema"`
	System string `json:"system"`
	// Faults is |F|, the filtered fault-space size.
	Faults int `json:"faults"`
	// Budget is the experiment budget (0 when the protocol recorded none).
	Budget int `json:"budget,omitempty"`
	// Experiments is the number of injection experiments executed; Sims
	// the number of simulated executions behind them.
	Experiments int `json:"experiments"`
	Sims        int `json:"sims"`
	// Edges is the deduplicated causal-edge count.
	Edges int `json:"edges"`
	// EarlyStopped marks an anytime campaign that converged before the
	// budget ran out.
	EarlyStopped bool `json:"earlyStopped,omitempty"`
	// Cycles is the raw reported cycle count; Clusters groups them.
	Cycles   int           `json:"cycles"`
	Clusters []JSONCluster `json:"clusters"`
	// DetectedBugs are the distinct ground-truth bug ids identified,
	// sorted ("" entries never appear).
	DetectedBugs []string `json:"detectedBugs"`
	// Rounds is the anytime round trajectory (absent for batch).
	Rounds []JSONRound `json:"rounds,omitempty"`
}

// JSONCluster is one reported cycle cluster with its best representative.
type JSONCluster struct {
	Key string `json:"key"`
	// Bug is the matched ground-truth id ("" = unlabelled, omitted).
	Bug string `json:"bug,omitempty"`
	// Cycles is the cluster's raw member count.
	Cycles int       `json:"cycles"`
	Best   JSONCycle `json:"best"`
}

// JSONCycle is one self-sustaining cycle.
type JSONCycle struct {
	Score float64 `json:"score"`
	// Faults are the distinct injected faults in cycle order.
	Faults []string `json:"faults"`
	// Chain renders the full edge chain (f1 -kind-> f2 -> ... -> f1).
	Chain string `json:"chain"`
}

// JSONRound is one anytime round.
type JSONRound struct {
	Round         int `json:"round"`
	Phase         int `json:"phase"`
	Runs          int `json:"runs"`
	Spent         int `json:"spent"`
	Budget        int `json:"budget"`
	NewEdges      int `json:"newEdges"`
	TouchedEdges  int `json:"touchedEdges"`
	TouchedFaults int `json:"touchedFaults"`
	Cycles        int `json:"cycles"`
	Clusters      int `json:"clusters"`
	// Detected lists the ground-truth bugs identifiable from this round's
	// clustered cycle set, sorted.
	Detected []string `json:"detected,omitempty"`
}

// JSONCycleOf encodes one cycle.
func JSONCycleOf(c beam.Cycle) JSONCycle {
	fs := c.Faults()
	out := JSONCycle{Score: c.Score, Faults: make([]string, len(fs)), Chain: c.String()}
	for i, f := range fs {
		out.Faults[i] = string(f)
	}
	return out
}

// JSONClustersOf encodes a clustered cycle set, labelling each cluster
// against the given ground truth (pass nil bugs for unlabelled output,
// e.g. when re-searching a merged cross-campaign graph).
func JSONClustersOf(clusters []beam.CycleCluster, bugs []sysreg.Bug) []JSONCluster {
	out := make([]JSONCluster, 0, len(clusters))
	for _, lc := range csnake.LabelClusters(clusters, bugs) {
		cc := lc.Cluster
		jc := JSONCluster{Key: cc.Key, Bug: lc.Bug, Cycles: len(cc.Cycles)}
		if len(cc.Cycles) > 0 {
			jc.Best = JSONCycleOf(cc.Cycles[0])
		}
		out = append(out, jc)
	}
	return out
}

// JSONRoundOf encodes one anytime round, classifying its cluster set
// against the ground truth.
func JSONRoundOf(r csnake.Round, bugs []sysreg.Bug) JSONRound {
	out := JSONRound{
		Round:         r.Round,
		Phase:         int(r.Phase),
		Runs:          r.Runs,
		Spent:         r.Spent,
		Budget:        r.Budget,
		NewEdges:      r.NewEdges,
		TouchedEdges:  r.TouchedEdges,
		TouchedFaults: r.TouchedFaults,
		Cycles:        r.CycleCount,
		Clusters:      len(r.Clusters),
	}
	seen := map[string]bool{}
	for _, lc := range csnake.LabelClusters(r.Clusters, bugs) {
		if lc.Bug != "" && !seen[lc.Bug] {
			seen[lc.Bug] = true
			out.Detected = append(out.Detected, lc.Bug)
		}
	}
	sort.Strings(out.Detected)
	return out
}

// NewJSON encodes a finished (possibly partial) campaign report against
// the system's ground-truth bugs.
func NewJSON(rep *csnake.Report, bugs []sysreg.Bug) *JSONReport {
	out := &JSONReport{
		Schema:       JSONSchema,
		System:       rep.System,
		Experiments:  len(rep.Runs),
		Sims:         rep.Sims,
		Edges:        len(rep.Edges),
		EarlyStopped: rep.EarlyStopped,
		Cycles:       len(rep.Cycles),
		Clusters:     JSONClustersOf(rep.CycleClusters, bugs),
		DetectedBugs: []string{},
	}
	if rep.Space != nil {
		out.Faults = rep.Space.Size()
	}
	if rep.Alloc != nil {
		out.Budget = rep.Alloc.Budget
	} else if n := len(rep.Rounds); n > 0 {
		out.Budget = rep.Rounds[n-1].Budget
	}
	for _, jc := range out.Clusters {
		if jc.Bug != "" {
			found := false
			for _, b := range out.DetectedBugs {
				if b == jc.Bug {
					found = true
					break
				}
			}
			if !found {
				out.DetectedBugs = append(out.DetectedBugs, jc.Bug)
			}
		}
	}
	sort.Strings(out.DetectedBugs)
	for _, r := range rep.Rounds {
		out.Rounds = append(out.Rounds, JSONRoundOf(r, bugs))
	}
	return out
}

// WriteJSON writes the indented machine-readable report to w.
func WriteJSON(w io.Writer, rep *csnake.Report, bugs []sysreg.Bug) error {
	data, err := json.MarshalIndent(NewJSON(rep, bugs), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
