// Package trace defines the execution traces CSnake records during profile
// and injection runs (§4.3): which throw points were reached, which error
// detectors observed errors, per-loop iteration counts, point coverage, and
// per-occurrence local state (branch trace + 2-level call stack) for the
// local compatibility check (§6.2).
package trace

import (
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// OccCap bounds how many per-fault occurrence states a run keeps. The
// compatibility check only needs representative local traces, and capping
// keeps retry storms from exhausting memory.
const OccCap = 8

// Occurrence captures the local state at one fault activation: the two
// innermost call-stack frames and the branch trace of the fault-happening
// loop iteration (or enclosing function when the fault is not in a loop).
type Occurrence struct {
	Stack    []string
	Branches []sim.BranchEval
}

// Run is the trace of one simulated execution of one workload.
type Run struct {
	Test string
	Seed int64

	// Reached counts natural activations per exception/negation point:
	// the throw statement executed, or the detector returned its error
	// value by itself. Injected activations are excluded (they are the
	// cause under study, not an effect).
	Reached map[faults.ID]int
	// LoopIters counts loop iterations per loop point.
	LoopIters map[faults.ID]int
	// Covered marks every point whose hook executed at all, regardless of
	// outcome. Coverage drives workload selection (§5.2 phase one).
	Covered map[faults.ID]bool
	// Occ holds up to OccCap occurrence states per naturally-activated
	// fault.
	Occ map[faults.ID][]Occurrence
	// LoopSite holds one call-stack-only state per executed loop (first
	// iteration observed), used when a delay fault participates in the
	// compatibility check: the paper compares only calling context for
	// delays (§6.2's conservative any-iteration rule).
	LoopSite map[faults.ID]Occurrence

	// InjFired reports whether the planned injection actually triggered.
	InjFired bool
	// InjSite is the local state at the injection site when it fired.
	InjSite Occurrence

	// Result summarises the sim run; Wall is the real (host) time spent,
	// used by the §8.5 overhead experiment.
	Result sim.RunResult
	Wall   time.Duration
}

// NewRun returns an empty run trace.
func NewRun(test string, seed int64) *Run {
	return &Run{
		Test:      test,
		Seed:      seed,
		Reached:   make(map[faults.ID]int),
		LoopIters: make(map[faults.ID]int),
		Covered:   make(map[faults.ID]bool),
		Occ:       make(map[faults.ID][]Occurrence),
		LoopSite:  make(map[faults.ID]Occurrence),
	}
}

// Cover marks a point as covered.
func (r *Run) Cover(id faults.ID) { r.Covered[id] = true }

// Activate records a natural fault activation with its local state.
func (r *Run) Activate(id faults.ID, occ Occurrence) {
	r.Reached[id]++
	if len(r.Occ[id]) < OccCap {
		r.Occ[id] = append(r.Occ[id], occ)
	}
}

// LoopIter records one loop iteration.
func (r *Run) LoopIter(id faults.ID) { r.LoopIters[id]++ }

// SeeLoop records the loop's calling context once per run.
func (r *Run) SeeLoop(id faults.ID, occ Occurrence) {
	if _, ok := r.LoopSite[id]; !ok {
		r.LoopSite[id] = occ
	}
}

// ActivatedIDs returns the ids of all naturally-activated faults, sorted.
func (r *Run) ActivatedIDs() []faults.ID {
	out := make([]faults.ID, 0, len(r.Reached))
	for id := range r.Reached {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CoveredIDs returns all covered point ids, sorted.
func (r *Run) CoveredIDs() []faults.ID {
	out := make([]faults.ID, 0, len(r.Covered))
	for id := range r.Covered {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Set is the bundle of repeated runs for one (plan, workload) pair: the
// paper executes each profile and injection configuration five times to
// absorb nondeterminism (§4.3).
type Set struct {
	Runs []*Run
}

// Add appends a run to the set.
func (s *Set) Add(r *Run) { s.Runs = append(s.Runs, r) }

// Len returns the number of runs.
func (s *Set) Len() int { return len(s.Runs) }

// ActivationRate returns in how many runs the fault id naturally activated.
func (s *Set) ActivationRate(id faults.ID) int {
	n := 0
	for _, r := range s.Runs {
		if r.Reached[id] > 0 {
			n++
		}
	}
	return n
}

// IterSamples returns the per-run iteration counts for loop id.
func (s *Set) IterSamples(id faults.ID) []float64 {
	out := make([]float64, len(s.Runs))
	for i, r := range s.Runs {
		out[i] = float64(r.LoopIters[id])
	}
	return out
}

// ActivatedAnywhere returns ids activated in at least one run, sorted.
func (s *Set) ActivatedAnywhere() []faults.ID {
	seen := make(map[faults.ID]bool)
	for _, r := range s.Runs {
		for id := range r.Reached {
			seen[id] = true
		}
	}
	out := make([]faults.ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LoopIDs returns every loop id that iterated in at least one run, sorted.
func (s *Set) LoopIDs() []faults.ID {
	seen := make(map[faults.ID]bool)
	for _, r := range s.Runs {
		for id := range r.LoopIters {
			seen[id] = true
		}
	}
	out := make([]faults.ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Occurrences returns up to OccCap occurrence states for id pooled across
// the set's runs.
func (s *Set) Occurrences(id faults.ID) []Occurrence {
	var out []Occurrence
	for _, r := range s.Runs {
		for _, o := range r.Occ[id] {
			if len(out) >= OccCap {
				return out
			}
			out = append(out, o)
		}
	}
	return out
}

// LoopSites returns the recorded calling contexts for loop id across the
// set's runs (at most one per run).
func (s *Set) LoopSites(id faults.ID) []Occurrence {
	var out []Occurrence
	for _, r := range s.Runs {
		if occ, ok := r.LoopSite[id]; ok {
			out = append(out, occ)
		}
	}
	return out
}

// InjSites returns the injection-site states of runs where the injection
// fired.
func (s *Set) InjSites() []Occurrence {
	var out []Occurrence
	for _, r := range s.Runs {
		if r.InjFired {
			out = append(out, r.InjSite)
		}
	}
	return out
}

// Coverage returns the union of covered points across runs.
func (s *Set) Coverage() map[faults.ID]bool {
	out := make(map[faults.ID]bool)
	for _, r := range s.Runs {
		for id := range r.Covered {
			out[id] = true
		}
	}
	return out
}
