// Package trace defines the execution traces CSnake records during profile
// and injection runs (§4.3): which throw points were reached, which error
// detectors observed errors, per-loop iteration counts, point coverage, and
// per-occurrence local state (branch trace + 2-level call stack) for the
// local compatibility check (§6.2).
//
// Recording is the hottest non-simulator path of a campaign: every hook of
// every simulated event lands here. A Run therefore stores its per-fault
// counters in flat slices indexed by a dense int id -- the fault space's
// declaration index for injectable points, plus a small per-run overflow
// table for monitor-only ids -- instead of string-keyed maps, and Runs are
// recycled through a Pool across the harness's seeded repetitions.
package trace

import (
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// OccCap bounds how many per-fault occurrence states a run keeps. The
// compatibility check only needs representative local traces, and capping
// keeps retry storms from exhausting memory.
const OccCap = 8

// Occurrence captures the local state at one fault activation: the two
// innermost call-stack frames and the branch trace of the fault-happening
// loop iteration (or enclosing function when the fault is not in a loop).
// Both slices are shared snapshots (interned stacks, copy-on-write branch
// traces) and must be treated as immutable.
type Occurrence struct {
	Stack    []string
	Branches []sim.BranchEval
}

// Run is the trace of one simulated execution of one workload.
//
// Per-fault state lives in flat slices indexed by dense id: ids resolved
// through the run's fault space occupy [0, base), ids outside the space
// (monitor-only branches, statically filtered points) are interned into a
// per-run overflow table at [base, ...). Use the accessor methods
// (Reached, LoopIters, Covered, OccOf, LoopSiteOf) to read them.
type Run struct {
	Test string
	Seed int64

	space    *faults.Space
	base     int // space.Size() at construction; overflow ids start here
	extra    map[faults.ID]int
	extraIDs []faults.ID

	// Flat per-dense-id state. All of these grow in lockstep via grow().
	reached   []int // natural activations (injected ones are excluded)
	loopIters []int // loop iterations per loop point
	covered   []bool
	reachAt   []time.Duration // virtual time of first coverage (valid iff covered)
	occ       [][]Occurrence  // up to OccCap occurrence states per fault
	loopSite  []Occurrence    // first observed calling context per loop
	loopSeen  []bool

	// InjFired reports whether the planned injection actually triggered.
	InjFired bool
	// InjSite is the local state at the injection site when it fired.
	InjSite Occurrence

	// Result summarises the sim run; Wall is the real (host) time spent,
	// used by the §8.5 overhead experiment.
	Result sim.RunResult
	Wall   time.Duration
}

// NewRun returns an empty run trace with no backing fault space: every id
// it sees is interned into the run-local overflow table. The harness uses
// Pool instead, which shares the space's dense index across runs.
func NewRun(test string, seed int64) *Run {
	return &Run{Test: test, Seed: seed}
}

// newRunFor returns an empty run trace whose dense ids [0, space.Size())
// are the space's point indices.
func newRunFor(space *faults.Space) *Run {
	r := &Run{space: space}
	if space != nil {
		r.base = space.Size()
		r.grow(r.base - 1)
	}
	return r
}

// grow extends the flat state slices to cover dense id d.
func (r *Run) grow(d int) {
	if d < len(r.reached) {
		return
	}
	n := d + 1
	for len(r.reached) < n {
		r.reached = append(r.reached, 0)
		r.loopIters = append(r.loopIters, 0)
		r.covered = append(r.covered, false)
		r.reachAt = append(r.reachAt, 0)
		r.occ = append(r.occ, nil)
		r.loopSite = append(r.loopSite, Occurrence{})
		r.loopSeen = append(r.loopSeen, false)
	}
}

// dense resolves id to its dense index, interning unknown ids into the
// run-local overflow table. The returned index is always covered by the
// flat state slices: space ids are pre-grown at construction, overflow
// ids grow on interning.
func (r *Run) dense(id faults.ID) int {
	if r.space != nil {
		if d, ok := r.space.Index(id); ok {
			return d
		}
	}
	if d, ok := r.extra[id]; ok {
		return r.base + d
	}
	if r.extra == nil {
		r.extra = make(map[faults.ID]int, 8)
	}
	d := r.base + len(r.extraIDs)
	r.extra[id] = len(r.extraIDs)
	r.extraIDs = append(r.extraIDs, id)
	r.grow(d)
	return d
}

// denseRO resolves id without interning; ok is false for ids never seen.
func (r *Run) denseRO(id faults.ID) (int, bool) {
	if r.space != nil {
		if d, ok := r.space.Index(id); ok {
			return d, true
		}
	}
	d, ok := r.extra[id]
	return r.base + d, ok
}

// universe returns the dense id count currently addressable in this run.
func (r *Run) universe() int { return r.base + len(r.extraIDs) }

// idAt maps a dense index back to its fault ID.
func (r *Run) idAt(d int) faults.ID {
	if d < r.base {
		return r.space.IDAt(d)
	}
	return r.extraIDs[d-r.base]
}

// Reset clears all recorded state so the Run can be reused for another
// seed. The dense id tables (space index and overflow interning) and the
// slice capacities survive, which is what makes pooled reuse cheap; the
// recorded values, occurrence references, and injection state do not.
func (r *Run) Reset() {
	r.Test, r.Seed = "", 0
	clear(r.reached)
	clear(r.loopIters)
	clear(r.covered)
	clear(r.reachAt)
	clear(r.loopSeen)
	clear(r.loopSite) // drop occurrence references, not just counters
	for i := range r.occ {
		clear(r.occ[i]) // release refs before truncating the backing array
		r.occ[i] = r.occ[i][:0]
	}
	r.InjFired = false
	r.InjSite = Occurrence{}
	r.Result = sim.RunResult{}
	r.Wall = 0
}

// Cover marks a point as covered, recording the virtual time of its
// first coverage. The first-reach time is what the prefix-sharing
// harness uses as a fault's divergence point: an injection run at the
// same seed is identical to the profile run strictly before it.
func (r *Run) Cover(id faults.ID, at time.Duration) {
	d := r.dense(id)
	if !r.covered[d] {
		r.covered[d] = true
		r.reachAt[d] = at
	}
}

// FirstReach returns the virtual time at which the point's hook first
// executed; ok is false when the point was never covered in this run.
func (r *Run) FirstReach(id faults.ID) (time.Duration, bool) {
	if d, ok := r.denseRO(id); ok && d < len(r.covered) && r.covered[d] {
		return r.reachAt[d], true
	}
	return 0, false
}

// Activate records a natural fault activation with its local state.
func (r *Run) Activate(id faults.ID, occ Occurrence) {
	d := r.dense(id)
	r.reached[d]++
	if len(r.occ[d]) < OccCap {
		r.occ[d] = append(r.occ[d], occ)
	}
}

// CoverActivate records coverage and a natural activation in one dense
// id resolution: the fused form of Cover followed by Activate. The
// dense lookup is the dominant cost of a hook that fires on every
// monitored event, so the hot hooks (inject.Guard/Negate) use the fused
// forms; recorded state is identical to the two separate calls.
func (r *Run) CoverActivate(id faults.ID, at time.Duration, occ Occurrence) {
	d := r.dense(id)
	if !r.covered[d] {
		r.covered[d] = true
		r.reachAt[d] = at
	}
	r.reached[d]++
	if len(r.occ[d]) < OccCap {
		r.occ[d] = append(r.occ[d], occ)
	}
}

// LoopTick records coverage and one loop iteration in a single dense id
// resolution (the fused form of Cover + LoopIter) and reports whether
// the loop's calling context has not been recorded yet -- so the caller
// captures a stack and calls SeeLoop only once per (run, loop) instead
// of paying the capture and a third lookup on every iteration. Recorded
// state is identical to Cover + LoopIter + SeeLoop per iteration.
func (r *Run) LoopTick(id faults.ID, at time.Duration) (needSite bool) {
	d := r.dense(id)
	if !r.covered[d] {
		r.covered[d] = true
		r.reachAt[d] = at
	}
	r.loopIters[d]++
	return !r.loopSeen[d]
}

// LoopIter records one loop iteration.
func (r *Run) LoopIter(id faults.ID) {
	r.loopIters[r.dense(id)]++
}

// AddLoopIters records n loop iterations at once (test fixtures).
func (r *Run) AddLoopIters(id faults.ID, n int) {
	r.loopIters[r.dense(id)] += n
}

// SeeLoop records the loop's calling context once per run.
func (r *Run) SeeLoop(id faults.ID, occ Occurrence) {
	d := r.dense(id)
	if !r.loopSeen[d] {
		r.loopSeen[d] = true
		r.loopSite[d] = occ
	}
}

// Reached returns the natural activation count of id.
func (r *Run) Reached(id faults.ID) int {
	if d, ok := r.denseRO(id); ok && d < len(r.reached) {
		return r.reached[d]
	}
	return 0
}

// LoopIters returns the recorded iteration count of loop id.
func (r *Run) LoopIters(id faults.ID) int {
	if d, ok := r.denseRO(id); ok && d < len(r.loopIters) {
		return r.loopIters[d]
	}
	return 0
}

// Covered reports whether the point's hook executed at all.
func (r *Run) Covered(id faults.ID) bool {
	if d, ok := r.denseRO(id); ok && d < len(r.covered) {
		return r.covered[d]
	}
	return false
}

// OccOf returns the recorded occurrence states of id (nil when none).
// The slice is owned by the run; callers must not mutate it.
func (r *Run) OccOf(id faults.ID) []Occurrence {
	if d, ok := r.denseRO(id); ok && d < len(r.occ) {
		return r.occ[d]
	}
	return nil
}

// LoopSiteOf returns the loop's recorded calling context, if any.
func (r *Run) LoopSiteOf(id faults.ID) (Occurrence, bool) {
	if d, ok := r.denseRO(id); ok && d < len(r.loopSeen) && r.loopSeen[d] {
		return r.loopSite[d], true
	}
	return Occurrence{}, false
}

// CopyFrom overwrites r with a deep logical copy of src. Dense ids in
// the shared space prefix copy positionally; overflow ids are re-interned
// into r by fault ID, because pooled runs accumulate overflow interning
// order from previous reuses and the same monitor-only id may sit at
// different dense indices in the two runs. Occurrence values are copied
// by value -- their Stack/Branches slices are immutable shared snapshots,
// so aliasing them is safe.
//
// The prefix-sharing harness uses this twice: to snapshot a recorder's
// state at a checkpoint (so a forked run continues recording on a copy)
// and to clone a whole cached profile run when an injection run is
// provably identical to it.
func (r *Run) CopyFrom(src *Run) {
	r.Test, r.Seed = src.Test, src.Seed
	r.InjFired = src.InjFired
	r.InjSite = src.InjSite
	r.Result = src.Result
	r.Wall = src.Wall
	for d, n := 0, src.universe(); d < n; d++ {
		td := d
		if d >= src.base {
			td = r.dense(src.extraIDs[d-src.base])
		} else {
			r.grow(td)
		}
		r.reached[td] = src.reached[d]
		r.loopIters[td] = src.loopIters[d]
		r.covered[td] = src.covered[d]
		r.reachAt[td] = src.reachAt[d]
		r.occ[td] = append(r.occ[td][:0], src.occ[d]...)
		r.loopSite[td] = src.loopSite[d]
		r.loopSeen[td] = src.loopSeen[d]
	}
}

// SizeBytes estimates the run's retained memory: flat per-id rates plus
// the occurrence payloads (whose Stack/Branches backing arrays are shared
// snapshots, counted at pointer rates). The prefix-sharing checkpoint
// cache uses it for byte budgeting, not exact accounting.
func (r *Run) SizeBytes() int {
	n := 256 + r.universe()*120
	for _, os := range r.occ {
		for _, o := range os {
			n += 64 + len(o.Stack)*16 + len(o.Branches)*24
		}
	}
	return n
}

// Fingerprint digests everything analysis downstream of the harness can
// observe in the run: per-fault counters, coverage times, occurrence
// evidence, injection outcome, and the sim result. Wall (host time) is
// excluded, and ids are folded in sorted order so pooled reuse and
// overflow interning order do not matter. Equal fingerprints mean the
// runs are observationally byte-identical; the prefix-sharing identity
// tests compare forked runs against from-scratch runs with it.
func (r *Run) Fingerprint() uint64 {
	h := fnv64{sum: 1469598103934665603}
	h.wStr(r.Test)
	h.wInt(r.Seed)
	h.wBool(r.InjFired)
	h.wOcc(r.InjSite)
	h.wInt(int64(r.Result.Reason))
	h.wInt(int64(r.Result.Now))
	h.wInt(int64(r.Result.Events))
	anyState := func(rr *Run, d int) bool {
		return reachedAt(rr, d) || coveredAt(rr, d) || loopIterAt(rr, d) ||
			(d < len(rr.loopSeen) && rr.loopSeen[d]) ||
			(d < len(rr.occ) && len(rr.occ[d]) > 0)
	}
	for _, id := range sortedIDsWhere([]*Run{r}, anyState) {
		d, _ := r.denseRO(id)
		h.wStr(string(id))
		h.wInt(int64(r.reached[d]))
		h.wInt(int64(r.loopIters[d]))
		h.wBool(r.covered[d])
		h.wInt(int64(r.reachAt[d]))
		h.wInt(int64(len(r.occ[d])))
		for _, o := range r.occ[d] {
			h.wOcc(o)
		}
		h.wBool(r.loopSeen[d])
		h.wOcc(r.loopSite[d])
	}
	return h.sum
}

// fnv64 is an incremental FNV-1a hasher with length-prefixed field
// framing (so adjacent fields cannot alias across boundaries).
type fnv64 struct{ sum uint64 }

func (h *fnv64) wByte(b byte) { h.sum = (h.sum ^ uint64(b)) * 1099511628211 }

func (h *fnv64) wInt(v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h.wByte(byte(u >> (8 * i)))
	}
}

func (h *fnv64) wStr(s string) {
	h.wInt(int64(len(s)))
	for i := 0; i < len(s); i++ {
		h.wByte(s[i])
	}
}

func (h *fnv64) wBool(b bool) {
	if b {
		h.wByte(1)
	} else {
		h.wByte(0)
	}
}

func (h *fnv64) wOcc(o Occurrence) {
	h.wInt(int64(len(o.Stack)))
	for _, s := range o.Stack {
		h.wStr(s)
	}
	h.wInt(int64(len(o.Branches)))
	for _, b := range o.Branches {
		h.wStr(b.ID)
		h.wBool(b.Taken)
	}
}

// TotalReached returns the sum of natural activation counts across all
// points (the anomaly signal of the fuzzing baseline).
func (r *Run) TotalReached() int {
	n := 0
	for _, c := range r.reached {
		n += c
	}
	return n
}

// sortedIDsWhere returns the ids for which pred holds in at least one of
// the runs, in lexicographic order. It is the one shared implementation
// behind every sorted-key helper (per-run and per-set): pred is called
// with each run and each dense id the run has state for.
func sortedIDsWhere(runs []*Run, pred func(r *Run, d int) bool) []faults.ID {
	var out []faults.ID
	var seen map[faults.ID]bool
	for _, r := range runs {
		for d, n := 0, r.universe(); d < n; d++ {
			if !pred(r, d) {
				continue
			}
			id := r.idAt(d)
			if seen[id] {
				continue
			}
			if seen == nil {
				seen = make(map[faults.ID]bool, 8)
			}
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func reachedAt(r *Run, d int) bool  { return d < len(r.reached) && r.reached[d] > 0 }
func coveredAt(r *Run, d int) bool  { return d < len(r.covered) && r.covered[d] }
func loopIterAt(r *Run, d int) bool { return d < len(r.loopIters) && r.loopIters[d] > 0 }

// ActivatedIDs returns the ids of all naturally-activated faults, sorted.
func (r *Run) ActivatedIDs() []faults.ID {
	return sortedIDsWhere([]*Run{r}, reachedAt)
}

// CoveredIDs returns all covered point ids, sorted.
func (r *Run) CoveredIDs() []faults.ID {
	return sortedIDsWhere([]*Run{r}, coveredAt)
}

// LoopIDs returns every loop id that iterated in this run, sorted.
func (r *Run) LoopIDs() []faults.ID {
	return sortedIDsWhere([]*Run{r}, loopIterAt)
}

// Pool recycles Run objects across the seeded repetitions of a campaign.
// All runs drawn from one Pool share the fault space's dense id index;
// Put resets the run and makes it available for the next seed. Pools are
// safe for concurrent use (the harness's worker pool draws from one).
type Pool struct {
	space *faults.Space
	p     sync.Pool
}

// NewPool returns a Run pool bound to a fault space (which may be nil).
func NewPool(space *faults.Space) *Pool {
	pl := &Pool{space: space}
	pl.p.New = func() interface{} { return newRunFor(space) }
	return pl
}

// Get returns an empty Run for one (test, seed) execution.
func (p *Pool) Get(test string, seed int64) *Run {
	r := p.p.Get().(*Run)
	r.Test, r.Seed = test, seed
	return r
}

// Put resets r and recycles it. Callers must not retain any reference
// into the run afterwards (occurrence slices extracted *before* Put, e.g.
// by FCA, stay valid: extraction copies the occurrence values). nil is
// ignored.
func (p *Pool) Put(r *Run) {
	if r == nil {
		return
	}
	r.Reset()
	p.p.Put(r)
}

// Set is the bundle of repeated runs for one (plan, workload) pair: the
// paper executes each profile and injection configuration five times to
// absorb nondeterminism (§4.3).
type Set struct {
	Runs []*Run
}

// Add appends a run to the set.
func (s *Set) Add(r *Run) { s.Runs = append(s.Runs, r) }

// Len returns the number of runs.
func (s *Set) Len() int { return len(s.Runs) }

// ActivationRate returns in how many runs the fault id naturally activated.
func (s *Set) ActivationRate(id faults.ID) int {
	n := 0
	for _, r := range s.Runs {
		if r.Reached(id) > 0 {
			n++
		}
	}
	return n
}

// IterSamples returns the per-run iteration counts for loop id.
func (s *Set) IterSamples(id faults.ID) []float64 {
	out := make([]float64, len(s.Runs))
	for i, r := range s.Runs {
		out[i] = float64(r.LoopIters(id))
	}
	return out
}

// ActivatedAnywhere returns ids activated in at least one run, sorted.
func (s *Set) ActivatedAnywhere() []faults.ID {
	return sortedIDsWhere(s.Runs, reachedAt)
}

// LoopIDs returns every loop id that iterated in at least one run, sorted.
func (s *Set) LoopIDs() []faults.ID {
	return sortedIDsWhere(s.Runs, loopIterAt)
}

// Occurrences returns up to OccCap occurrence states for id pooled across
// the set's runs.
func (s *Set) Occurrences(id faults.ID) []Occurrence {
	var out []Occurrence
	for _, r := range s.Runs {
		for _, o := range r.OccOf(id) {
			if len(out) >= OccCap {
				return out
			}
			out = append(out, o)
		}
	}
	return out
}

// LoopSites returns the recorded calling contexts for loop id across the
// set's runs (at most one per run).
func (s *Set) LoopSites(id faults.ID) []Occurrence {
	var out []Occurrence
	for _, r := range s.Runs {
		if occ, ok := r.LoopSiteOf(id); ok {
			out = append(out, occ)
		}
	}
	return out
}

// InjSites returns the injection-site states of runs where the injection
// fired.
func (s *Set) InjSites() []Occurrence {
	var out []Occurrence
	for _, r := range s.Runs {
		if r.InjFired {
			out = append(out, r.InjSite)
		}
	}
	return out
}

// Coverage returns the union of covered points across runs.
func (s *Set) Coverage() map[faults.ID]bool {
	out := make(map[faults.ID]bool)
	for _, id := range sortedIDsWhere(s.Runs, coveredAt) {
		out[id] = true
	}
	return out
}
