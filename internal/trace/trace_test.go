package trace

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

func TestRunAccounting(t *testing.T) {
	r := NewRun("t1", 7)
	r.Cover("f.a", 0)
	r.Activate("f.a", Occurrence{Stack: []string{"x"}})
	r.Activate("f.a", Occurrence{Stack: []string{"y"}})
	r.LoopIter("l.1")
	r.LoopIter("l.1")
	r.SeeLoop("l.1", Occurrence{Stack: []string{"fn"}})
	r.SeeLoop("l.1", Occurrence{Stack: []string{"other"}}) // ignored: first wins

	if r.Reached("f.a") != 2 {
		t.Errorf("Reached = %d", r.Reached("f.a"))
	}
	if r.LoopIters("l.1") != 2 {
		t.Errorf("LoopIters = %d", r.LoopIters("l.1"))
	}
	site, ok := r.LoopSiteOf("l.1")
	if !ok || site.Stack[0] != "fn" {
		t.Errorf("LoopSite = %v ok=%v, want first occurrence kept", site, ok)
	}
	if ids := r.ActivatedIDs(); len(ids) != 1 || ids[0] != "f.a" {
		t.Errorf("ActivatedIDs = %v", ids)
	}
	// Coverage is recorded by the hooks explicitly; Activate/LoopIter do
	// not imply it.
	if ids := r.CoveredIDs(); len(ids) != 1 || ids[0] != "f.a" {
		t.Errorf("CoveredIDs = %v", ids)
	}
	if got := len(r.OccOf("f.a")); got != 2 {
		t.Errorf("OccOf = %d occurrences", got)
	}
	if r.Reached("f.unseen") != 0 || r.Covered("f.unseen") || r.LoopIters("f.unseen") != 0 {
		t.Error("unseen ids must read as zero")
	}
}

// TestRunSpaceBackedDenseIDs checks that a space-backed run records state
// for both in-space points (dense index) and out-of-space monitor ids
// (overflow table), with identical read semantics.
func TestRunSpaceBackedDenseIDs(t *testing.T) {
	space := faults.NewSpace([]faults.Point{
		{ID: "s.a", Kind: faults.Throw},
		{ID: "s.b", Kind: faults.Loop, HasIO: true},
	}, nil)
	r := NewPool(space).Get("t", 1)
	r.Cover("s.a", 0)
	r.Activate("s.a", Occurrence{Stack: []string{"f"}})
	r.LoopIter("s.b")
	r.Cover("s.monitor_only", 0) // not in the space: overflow id
	if !r.Covered("s.a") || !r.Covered("s.monitor_only") || r.Covered("s.b") {
		t.Fatalf("coverage: a=%v mon=%v b=%v", r.Covered("s.a"), r.Covered("s.monitor_only"), r.Covered("s.b"))
	}
	if r.Reached("s.a") != 1 || r.LoopIters("s.b") != 1 {
		t.Fatalf("reached=%d iters=%d", r.Reached("s.a"), r.LoopIters("s.b"))
	}
	want := []faults.ID{"s.a", "s.monitor_only"}
	if got := r.CoveredIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("CoveredIDs = %v, want %v", got, want)
	}
}

// TestPoolReuseLeaksNothing proves a Reset run carries no state between
// seeds: every counter, occurrence, injection flag, and result field of a
// recycled run reads exactly like a fresh one.
func TestPoolReuseLeaksNothing(t *testing.T) {
	space := faults.NewSpace([]faults.Point{
		{ID: "s.a", Kind: faults.Throw},
		{ID: "s.l", Kind: faults.Loop, HasIO: true},
	}, nil)
	pool := NewPool(space)

	dirty := pool.Get("t", 1)
	dirty.Cover("s.a", 0)
	dirty.Activate("s.a", Occurrence{Stack: []string{"f"}, Branches: []sim.BranchEval{{ID: "b", Taken: true}}})
	dirty.LoopIter("s.l")
	dirty.SeeLoop("s.l", Occurrence{Stack: []string{"g"}})
	dirty.Cover("s.overflow", 0)
	dirty.InjFired = true
	dirty.InjSite = Occurrence{Stack: []string{"inj"}}
	dirty.Result = sim.RunResult{Reason: sim.StopHorizon, Now: time.Second, Events: 9}
	dirty.Wall = time.Millisecond
	pool.Put(dirty)

	// sync.Pool gives no reuse guarantee, so exercise Reset directly too:
	// Get until we observe the recycled object (first Get almost always).
	r := pool.Get("t2", 2)
	if r.Test != "t2" || r.Seed != 2 {
		t.Fatalf("identity not set: %q/%d", r.Test, r.Seed)
	}
	for _, id := range []faults.ID{"s.a", "s.l", "s.overflow"} {
		if r.Reached(id) != 0 || r.LoopIters(id) != 0 || r.Covered(id) {
			t.Fatalf("leaked counters for %s", id)
		}
		if len(r.OccOf(id)) != 0 {
			t.Fatalf("leaked occurrences for %s", id)
		}
		if _, ok := r.LoopSiteOf(id); ok {
			t.Fatalf("leaked loop site for %s", id)
		}
	}
	if r.InjFired || r.InjSite.Stack != nil || r.InjSite.Branches != nil {
		t.Fatal("leaked injection state")
	}
	if r.Result != (sim.RunResult{}) || r.Wall != 0 {
		t.Fatal("leaked run result")
	}
	if ids := r.ActivatedIDs(); len(ids) != 0 {
		t.Fatalf("leaked activations: %v", ids)
	}
	if ids := r.CoveredIDs(); len(ids) != 0 {
		t.Fatalf("leaked coverage: %v", ids)
	}
	if ids := r.LoopIDs(); len(ids) != 0 {
		t.Fatalf("leaked loop ids: %v", ids)
	}
	if n := r.TotalReached(); n != 0 {
		t.Fatalf("leaked total activations: %d", n)
	}
}

func TestSetAggregation(t *testing.T) {
	set := &Set{}
	for i := 0; i < 4; i++ {
		r := NewRun("t", int64(i))
		if i < 3 {
			r.Activate("f.a", Occurrence{})
		}
		r.AddLoopIters("l", 10+i)
		if i == 0 {
			r.InjFired = true
			r.InjSite = Occurrence{Stack: []string{"site"}}
		}
		set.Add(r)
	}
	if set.Len() != 4 {
		t.Fatalf("len = %d", set.Len())
	}
	if got := set.ActivationRate("f.a"); got != 3 {
		t.Errorf("ActivationRate = %d", got)
	}
	samples := set.IterSamples("l")
	if len(samples) != 4 || samples[0] != 10 || samples[3] != 13 {
		t.Errorf("IterSamples = %v", samples)
	}
	if got := set.ActivatedAnywhere(); len(got) != 1 || got[0] != "f.a" {
		t.Errorf("ActivatedAnywhere = %v", got)
	}
	if got := set.InjSites(); len(got) != 1 || got[0].Stack[0] != "site" {
		t.Errorf("InjSites = %v", got)
	}
	if got := set.LoopIDs(); len(got) != 1 || got[0] != "l" {
		t.Errorf("LoopIDs = %v", got)
	}
}

func TestOccurrenceCapPooled(t *testing.T) {
	set := &Set{}
	for i := 0; i < 3; i++ {
		r := NewRun("t", int64(i))
		for j := 0; j < OccCap; j++ {
			r.Activate("f.a", Occurrence{Stack: []string{"s"}})
		}
		set.Add(r)
	}
	if got := len(set.Occurrences("f.a")); got != OccCap {
		t.Errorf("pooled occurrences = %d, want cap %d", got, OccCap)
	}
}

func TestCoverageUnion(t *testing.T) {
	set := &Set{}
	a := NewRun("t", 1)
	a.Cover("f.a", 0)
	b := NewRun("t", 2)
	b.Cover("f.b", 0)
	set.Add(a)
	set.Add(b)
	cov := set.Coverage()
	if !cov["f.a"] || !cov["f.b"] {
		t.Fatalf("coverage union = %v", cov)
	}
}
