package trace

import (
	"testing"

	"repro/internal/faults"
)

func TestRunAccounting(t *testing.T) {
	r := NewRun("t1", 7)
	r.Cover("f.a")
	r.Activate("f.a", Occurrence{Stack: []string{"x"}})
	r.Activate("f.a", Occurrence{Stack: []string{"y"}})
	r.LoopIter("l.1")
	r.LoopIter("l.1")
	r.SeeLoop("l.1", Occurrence{Stack: []string{"fn"}})
	r.SeeLoop("l.1", Occurrence{Stack: []string{"other"}}) // ignored: first wins

	if r.Reached["f.a"] != 2 {
		t.Errorf("Reached = %d", r.Reached["f.a"])
	}
	if r.LoopIters["l.1"] != 2 {
		t.Errorf("LoopIters = %d", r.LoopIters["l.1"])
	}
	if got := r.LoopSite["l.1"].Stack[0]; got != "fn" {
		t.Errorf("LoopSite = %q, want first occurrence kept", got)
	}
	if ids := r.ActivatedIDs(); len(ids) != 1 || ids[0] != "f.a" {
		t.Errorf("ActivatedIDs = %v", ids)
	}
	// Coverage is recorded by the hooks explicitly; Activate/LoopIter do
	// not imply it.
	if ids := r.CoveredIDs(); len(ids) != 1 || ids[0] != "f.a" {
		t.Errorf("CoveredIDs = %v", ids)
	}
}

func TestSetAggregation(t *testing.T) {
	set := &Set{}
	for i := 0; i < 4; i++ {
		r := NewRun("t", int64(i))
		if i < 3 {
			r.Activate("f.a", Occurrence{})
		}
		r.LoopIters["l"] = 10 + i
		if i == 0 {
			r.InjFired = true
			r.InjSite = Occurrence{Stack: []string{"site"}}
		}
		set.Add(r)
	}
	if set.Len() != 4 {
		t.Fatalf("len = %d", set.Len())
	}
	if got := set.ActivationRate("f.a"); got != 3 {
		t.Errorf("ActivationRate = %d", got)
	}
	samples := set.IterSamples("l")
	if len(samples) != 4 || samples[0] != 10 || samples[3] != 13 {
		t.Errorf("IterSamples = %v", samples)
	}
	if got := set.ActivatedAnywhere(); len(got) != 1 || got[0] != "f.a" {
		t.Errorf("ActivatedAnywhere = %v", got)
	}
	if got := set.InjSites(); len(got) != 1 || got[0].Stack[0] != "site" {
		t.Errorf("InjSites = %v", got)
	}
	if got := set.LoopIDs(); len(got) != 1 || got[0] != "l" {
		t.Errorf("LoopIDs = %v", got)
	}
}

func TestOccurrenceCapPooled(t *testing.T) {
	set := &Set{}
	for i := 0; i < 3; i++ {
		r := NewRun("t", int64(i))
		for j := 0; j < OccCap; j++ {
			r.Activate("f.a", Occurrence{Stack: []string{"s"}})
		}
		set.Add(r)
	}
	if got := len(set.Occurrences("f.a")); got != OccCap {
		t.Errorf("pooled occurrences = %d, want cap %d", got, OccCap)
	}
}

func TestCoverageUnion(t *testing.T) {
	set := &Set{}
	a := NewRun("t", 1)
	a.Cover("f.a")
	b := NewRun("t", 2)
	b.Cover("f.b")
	set.Add(a)
	set.Add(b)
	cov := set.Coverage()
	if !cov["f.a"] || !cov["f.b"] {
		t.Fatalf("coverage union = %v", cov)
	}
	var _ faults.ID = "typecheck"
}
