package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Errorf("mean = %v, want 5", m)
	}
	if v := Variance(xs); !approx(v, 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", v, 32.0/7.0)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestStudentCDFReferenceValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		t, df, want float64
	}{
		{0, 5, 0.5},
		{1.476, 5, 0.90},    // t_{0.90,5}
		{2.015, 5, 0.95},    // t_{0.95,5}
		{2.571, 5, 0.975},   // t_{0.975,5}
		{1.533, 4, 0.90},    // t_{0.90,4}
		{2.132, 4, 0.95},    // t_{0.95,4}
		{1.282, 1000, 0.90}, // approaches the normal quantile
		{-2.015, 5, 0.05},   // symmetry
	}
	for _, c := range cases {
		got := StudentCDF(c.t, c.df)
		if !approx(got, c.want, 2e-3) {
			t.Errorf("StudentCDF(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestStudentCDFSymmetryProperty(t *testing.T) {
	f := func(rawT int16, rawDF uint8) bool {
		tt := float64(rawT) / 1000
		df := float64(rawDF%60) + 1
		lo := StudentCDF(tt, df)
		hi := StudentCDF(-tt, df)
		return approx(lo+hi, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStudentCDFMonotoneProperty(t *testing.T) {
	f := func(a, b int16, rawDF uint8) bool {
		x, y := float64(a)/500, float64(b)/500
		if x > y {
			x, y = y, x
		}
		df := float64(rawDF%40) + 2
		return StudentCDF(x, df) <= StudentCDF(y, df)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 {
		t.Error("I_0 != 0")
	}
	if RegIncBeta(2, 3, 1) != 1 {
		t.Error("I_1 != 1")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !approx(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(1, b) = 1-(1-x)^b.
	if got := RegIncBeta(1, 4, 0.3); !approx(got, 1-math.Pow(0.7, 4), 1e-10) {
		t.Errorf("I_.3(1,4) = %v", got)
	}
}

func TestTTestClearIncrease(t *testing.T) {
	base := []float64{10, 11, 10, 12, 11}
	inflated := []float64{25, 27, 24, 26, 28}
	p := TTestGreater(inflated, base)
	if p >= 0.01 {
		t.Fatalf("p = %v, want < 0.01 for an obvious increase", p)
	}
}

func TestTTestNoIncrease(t *testing.T) {
	a := []float64{10, 11, 10, 12, 11}
	b := []float64{11, 10, 12, 10, 11}
	p := TTestGreater(a, b)
	if p < 0.1 {
		t.Fatalf("p = %v, want >= 0.1 for identical distributions", p)
	}
}

func TestTTestDecreaseIsNotSignificant(t *testing.T) {
	a := []float64{5, 6, 5, 6, 5}
	b := []float64{20, 22, 21, 19, 20}
	if p := TTestGreater(a, b); p < 0.9 {
		t.Fatalf("p = %v, want near 1 when a < b", p)
	}
}

func TestTTestConstantSamples(t *testing.T) {
	if p := TTestGreater([]float64{7, 7, 7}, []float64{3, 3, 3}); p != 0 {
		t.Errorf("constant increase: p = %v, want 0", p)
	}
	if p := TTestGreater([]float64{3, 3}, []float64{3, 3}); p != 1 {
		t.Errorf("constant equal: p = %v, want 1", p)
	}
	if p := TTestGreater([]float64{1, 1}, []float64{9, 9}); p != 1 {
		t.Errorf("constant decrease: p = %v, want 1", p)
	}
}

func TestTTestTinySamples(t *testing.T) {
	if p := TTestGreater([]float64{5}, []float64{1, 2, 3}); p != 1 {
		t.Errorf("n=1 with variance: p = %v, want 1 (cannot conclude)", p)
	}
	if p := TTestGreater([]float64{5}, []float64{2}); p != 0 {
		t.Errorf("two constants: p = %v, want 0 via comparison fallback", p)
	}
}

func TestTTestPValueInUnitIntervalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seedA, seedB uint8) bool {
		n := int(seedA%5) + 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()*float64(seedA%7+1) + float64(seedB%13)
			b[i] = rng.NormFloat64()*float64(seedB%7+1) + float64(seedA%13)
		}
		p := TTestGreater(a, b)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTTestDetectsModerateShiftAtPaperThreshold(t *testing.T) {
	// The paper's criterion is p < 0.1 with five runs per side. A shift of
	// about two standard deviations should clear it.
	base := []float64{100, 102, 98, 101, 99}
	shifted := []float64{104, 106, 103, 105, 107}
	if p := TTestGreater(shifted, base); p >= 0.1 {
		t.Fatalf("p = %v, want < 0.1", p)
	}
}
