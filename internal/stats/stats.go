// Package stats implements the statistical machinery FCA needs: a
// one-sided Welch t-test over loop iteration counts (§4.3 uses p < 0.1 to
// call an iteration increase significant) built on a from-scratch
// regularized incomplete beta function, since only the standard library is
// available.
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// TTestGreater performs a one-sided Welch t-test of H1: mean(a) > mean(b),
// returning the p-value. Degenerate inputs are handled conservatively:
//   - fewer than 2 samples on either side: p = 1 (cannot conclude), unless
//     both sides are all-equal constants, which reduces to a comparison;
//   - both variances zero: p = 0 if mean(a) > mean(b), else 1.
func TTestGreater(a, b []float64) float64 {
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	if va == 0 && vb == 0 {
		if allEqual(a) && allEqual(b) && len(a) > 0 && len(b) > 0 {
			if ma > mb {
				return 0
			}
			return 1
		}
	}
	if len(a) < 2 || len(b) < 2 {
		return 1
	}
	se := math.Sqrt(va/na + vb/nb)
	if se == 0 {
		if ma > mb {
			return 0
		}
		return 1
	}
	t := (ma - mb) / se
	// Welch–Satterthwaite degrees of freedom.
	num := (va/na + vb/nb) * (va/na + vb/nb)
	den := (va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1))
	df := num / den
	if math.IsNaN(df) || df <= 0 {
		return 1
	}
	return 1 - StudentCDF(t, df)
}

func allEqual(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[0] {
			return false
		}
	}
	return true
}

// StudentCDF returns P(T <= t) for Student's t distribution with df
// degrees of freedom.
func StudentCDF(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's method), following the
// classical Numerical Recipes formulation.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
