// Package baselines implements the two comparison strategies of §8.2:
// the naive single-fault strategy (inject one fault, watch whether it
// causes itself within the same workload) and a Jepsen/Blockade-style
// blackbox nemesis fuzzer (coarse external faults, generic oracles, no
// causal visibility).
package baselines

import (
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"
)

// NaiveConfig tunes the single-fault strategy.
type NaiveConfig struct {
	Reps            int
	DelayMagnitudes []time.Duration
	BaseSeed        int64
	PValue          float64
	MinIncrease     float64
	// Parallelism fans the per-fault experiments of a workload out across
	// a worker pool; results are identical for any value (each run owns an
	// independent engine, and findings are emitted in fault-space order).
	Parallelism int
}

func (c *NaiveConfig) defaults() {
	if c.Reps == 0 {
		c.Reps = 3
	}
	if len(c.DelayMagnitudes) == 0 {
		c.DelayMagnitudes = []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second}
	}
	if c.PValue == 0 {
		c.PValue = 0.1
	}
	if c.MinIncrease == 0 {
		c.MinIncrease = 1.2
	}
}

// NaiveFinding reports one fault that caused itself in one workload.
type NaiveFinding struct {
	Fault faults.ID
	Test  string
}

// runSet executes reps seeded runs of workload w under plan.
func runSet(sys sysreg.System, w sysreg.Workload, plan inject.Plan, reps int, base int64) *trace.Set {
	set := &trace.Set{}
	for i := 0; i < reps; i++ {
		rec := trace.NewRun(w.Name, base+int64(i))
		rt := inject.New(plan, rec)
		eng := sim.NewEngine(sim.Options{Seed: base + int64(i)})
		w.Run(&sysreg.RunContext{Engine: eng, RT: rt})
		rec.Result = eng.Run(w.Horizon)
		eng.Close()
		set.Add(rec)
	}
	return set
}

// Naive runs the §8.2 alternative strategy over every (fault, workload)
// pair: a delay fault "causes itself" when its own loop iterations
// statistically increase under its own injection; an exception/negation
// fault does when it activates naturally after being injected, despite a
// quiet profile.
func Naive(sys sysreg.System, cfg NaiveConfig) []NaiveFinding {
	cfg.defaults()
	space := sysreg.Space(sys)
	var out []NaiveFinding
	for _, w := range sys.Workloads() {
		profile := runSet(sys, w, inject.Profile(), cfg.Reps, cfg.BaseSeed+11)
		cov := profile.Coverage()
		found := make([]bool, len(space.Points))
		harness.FanOut(cfg.Parallelism, len(space.Points), func(i int) {
			pt := space.Points[i]
			if !cov[pt.ID] {
				return
			}
			if pt.Kind == faults.Loop {
				found[i] = naiveDelaySelf(sys, w, pt.ID, profile, cfg)
				return
			}
			if profile.ActivationRate(pt.ID) > 0 {
				return // not counterfactual
			}
			set := runSet(sys, w, inject.PlanFor(pt, 0), cfg.Reps, cfg.BaseSeed+101)
			found[i] = set.ActivationRate(pt.ID) >= (cfg.Reps+1)/2
		})
		for i, hit := range found {
			if hit {
				out = append(out, NaiveFinding{Fault: space.Points[i].ID, Test: w.Name})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fault != out[j].Fault {
			return out[i].Fault < out[j].Fault
		}
		return out[i].Test < out[j].Test
	})
	return out
}

func naiveDelaySelf(sys sysreg.System, w sysreg.Workload, id faults.ID, profile *trace.Set, cfg NaiveConfig) bool {
	for mi, mag := range cfg.DelayMagnitudes {
		set := runSet(sys, w, inject.Plan{Kind: inject.Delay, Target: id, Delay: mag}, cfg.Reps, cfg.BaseSeed+int64(211+mi))
		injSamples := set.IterSamples(id)
		profSamples := profile.IterSamples(id)
		if stats.Mean(injSamples) < stats.Mean(profSamples)*cfg.MinIncrease {
			continue
		}
		if stats.TTestGreater(injSamples, profSamples) < cfg.PValue {
			return true
		}
	}
	return false
}

// DetectedByNaive maps naive findings onto ground-truth bugs: a bug counts
// as naive-detectable when all its core faults self-sustained in a single
// workload... in practice the strategy only observes ONE fault at a time,
// so a bug is credited when any of its core faults caused itself.
func DetectedByNaive(findings []NaiveFinding, bugs []sysreg.Bug) []string {
	found := map[faults.ID]bool{}
	for _, f := range findings {
		found[f.Fault] = true
	}
	var out []string
	for _, b := range bugs {
		for _, cf := range b.CoreFaults {
			if found[cf] {
				out = append(out, b.ID)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// FuzzConfig tunes the blackbox nemesis fuzzer.
type FuzzConfig struct {
	RunsPerWorkload int
	BaseSeed        int64
	// Parallelism fans the nemesis runs of a workload out across a worker
	// pool; counters are merged in run order.
	Parallelism int
}

// FuzzResult summarises one nemesis campaign.
type FuzzResult struct {
	Runs int
	// GenericAnomalies counts runs whose generic oracle tripped (the
	// system kept logging faults after the nemesis healed).
	GenericAnomalies int
	// BugsDetected lists seeded cascading failures the fuzzer identified.
	// A blackbox fuzzer has no fault-propagation visibility: it can see
	// that something is wrong, but cannot name a causal cycle, so this is
	// empty by construction -- the §8.2.1 result.
	BugsDetected []string
}

// Fuzz runs a Jepsen/Blockade-style nemesis campaign: random partitions,
// node pauses, and a crash, injected mid-run and healed, with a generic
// post-heal oracle.
func Fuzz(sys sysreg.System, cfg FuzzConfig) FuzzResult {
	if cfg.RunsPerWorkload == 0 {
		cfg.RunsPerWorkload = 3
	}
	res := FuzzResult{}
	for _, w := range sys.Workloads() {
		anomalous := make([]bool, cfg.RunsPerWorkload)
		harness.FanOut(cfg.Parallelism, cfg.RunsPerWorkload, func(r int) {
			seed := cfg.BaseSeed + int64(r*977)
			rec := trace.NewRun(w.Name, seed)
			rt := inject.New(inject.Profile(), rec)
			eng := sim.NewEngine(sim.Options{Seed: seed})
			w.Run(&sysreg.RunContext{Engine: eng, RT: rt})

			// Nemesis schedule: partition at 1/4 horizon, heal at 1/2,
			// pause a node briefly, crash one node on the last rep.
			h := w.Horizon
			rng := eng.Rand()
			nodeA, nodeB := pickNodes(rng)
			eng.After(h/4, func() { eng.SetPartition(nodeA, nodeB, true) })
			eng.After(h/2, func() { eng.SetPartition(nodeA, nodeB, false) })
			eng.After(h/3, func() { eng.PauseNode(nodeB) })
			eng.After(h/3+2*time.Second, func() { eng.ResumeNode(nodeB) })
			if r == cfg.RunsPerWorkload-1 {
				eng.After(2*h/3, func() { eng.CrashNode(nodeA) })
			}

			// Generic oracle: snapshot fault activity before the heal
			// point and compare with post-heal activity.
			var healCount int
			eng.After(h*3/4, func() {
				healCount = totalActivations(rec)
			})
			eng.Run(h)
			eng.Close()
			anomalous[r] = totalActivations(rec) > healCount+2
		})
		res.Runs += cfg.RunsPerWorkload
		for _, a := range anomalous {
			if a {
				res.GenericAnomalies++
			}
		}
	}
	return res
}

func totalActivations(r *trace.Run) int { return r.TotalReached() }

func pickNodes(rng interface{ Intn(int) int }) (string, string) {
	candidates := []string{"dn0", "dn1", "dn2", "rs0", "rs1", "tm0", "tm1", "scm", "nn", "master", "jm"}
	a := candidates[rng.Intn(len(candidates))]
	b := candidates[rng.Intn(len(candidates))]
	return a, b
}
