package baselines

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/systems/objstore"
	"repro/internal/systems/stream"
	"repro/internal/systems/sysreg"
)

func TestNaiveFindsSingleTestBugOnly(t *testing.T) {
	sys := objstore.New()
	findings := Naive(sys, NaiveConfig{
		Reps:            2,
		DelayMagnitudes: []time.Duration{2 * time.Second},
		BaseSeed:        42,
	})
	bugs := DetectedByNaive(findings, sys.Bugs())
	got := map[string]bool{}
	for _, b := range bugs {
		got[b] = true
	}
	// The strategy sees single faults in single workloads; bugs flagged
	// SingleTest should dominate its catches. OZONE-2's heartbeat loop
	// and OZONE-3's quarantine storm self-sustain in one test.
	if len(findings) == 0 {
		t.Fatal("naive strategy found nothing at all")
	}
	for _, b := range sys.Bugs() {
		if b.SingleTest && !got[b.ID] {
			t.Errorf("single-test bug %s missed by the naive strategy (findings %v)", b.ID, findings)
		}
	}
}

func TestDetectedByNaiveMapping(t *testing.T) {
	bugs := []sysreg.Bug{
		{ID: "B1", CoreFaults: []faults.ID{"f.a", "f.b"}},
		{ID: "B2", CoreFaults: []faults.ID{"f.c"}},
	}
	got := DetectedByNaive([]NaiveFinding{{Fault: "f.b", Test: "t"}}, bugs)
	if len(got) != 1 || got[0] != "B1" {
		t.Fatalf("got %v", got)
	}
}

func TestFuzzIdentifiesNoCascades(t *testing.T) {
	res := Fuzz(stream.New(), FuzzConfig{RunsPerWorkload: 2, BaseSeed: 42})
	if res.Runs == 0 {
		t.Fatal("no fuzz runs")
	}
	if len(res.BugsDetected) != 0 {
		t.Fatalf("a blackbox fuzzer cannot identify causal cycles, got %v", res.BugsDetected)
	}
}
