package cluster

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/faults"
)

func ids(ss ...string) []faults.ID {
	out := make([]faults.ID, len(ss))
	for i, s := range ss {
		out[i] = faults.ID(s)
	}
	return out
}

func TestIDFWeightsCommonFaultsLower(t *testing.T) {
	// f.common appears in every experiment, f.rare in one.
	corpus := [][]faults.ID{
		ids("f.common", "f.rare"),
		ids("f.common"),
		ids("f.common"),
		ids("f.common"),
	}
	m := TrainIDF(corpus)
	if wc, wr := m.Weight("f.common"), m.Weight("f.rare"); wc >= wr {
		t.Fatalf("common weight %v >= rare weight %v", wc, wr)
	}
	if w := m.Weight("f.unseen"); w <= m.Weight("f.rare") {
		t.Errorf("unseen fault should weigh most: %v", w)
	}
}

func TestIDFSmoothingNoZeroDivision(t *testing.T) {
	m := TrainIDF(nil)
	if w := m.Weight("f.x"); math.IsInf(w, 0) || math.IsNaN(w) {
		t.Fatalf("weight on empty corpus = %v", w)
	}
}

func TestIDFDuplicatesInOneExperimentCountOnce(t *testing.T) {
	m := TrainIDF([][]faults.ID{ids("f.a", "f.a", "f.a"), ids("f.b")})
	if m.docFreq["f.a"] != 1 {
		t.Fatalf("docFreq = %d, want 1", m.docFreq["f.a"])
	}
}

func TestVectorizeL2Normalised(t *testing.T) {
	m := TrainIDF([][]faults.ID{ids("f.a", "f.b"), ids("f.a"), ids("f.c")})
	v := m.Vectorize(ids("f.a", "f.b", "f.c"))
	norm := 0.0
	for _, w := range v.Weights() {
		norm += w * w
	}
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("|v|^2 = %v, want 1", norm)
	}
	if v.Get("f.a") >= v.Get("f.c") {
		t.Error("frequent fault should have smaller normalised weight")
	}
}

func TestVectorizeEmptySet(t *testing.T) {
	m := TrainIDF([][]faults.ID{ids("f.a")})
	if v := m.Vectorize(nil); v.Len() != 0 {
		t.Fatalf("empty interference vector = %v", v)
	}
}

func TestCosineDistanceCases(t *testing.T) {
	m := TrainIDF([][]faults.ID{ids("f.a", "f.b"), ids("f.c"), ids("f.d")})
	va := m.Vectorize(ids("f.a", "f.b"))
	vb := m.Vectorize(ids("f.a", "f.b"))
	vc := m.Vectorize(ids("f.c", "f.d"))
	if d := CosineDistance(va, vb); d > 1e-12 {
		t.Errorf("identical sets distance = %v, want 0", d)
	}
	if d := CosineDistance(va, vc); math.Abs(d-1) > 1e-12 {
		t.Errorf("disjoint sets distance = %v, want 1", d)
	}
	if d := CosineDistance(Vector{}, Vector{}); d != 0 {
		t.Errorf("empty-empty distance = %v, want 0 (non-impactful injections cluster)", d)
	}
	if d := CosineDistance(Vector{}, va); d != 1 {
		t.Errorf("empty vs non-empty = %v, want 1", d)
	}
}

func TestCosineDistanceRangeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		mk := func(raw []uint8) []faults.ID {
			var out []faults.ID
			for _, r := range raw {
				out = append(out, faults.ID(fmt.Sprintf("f.%d", r%16)))
			}
			return out
		}
		sa, sb := mk(a), mk(b)
		m := TrainIDF([][]faults.ID{sa, sb})
		d := CosineDistance(m.Vectorize(sa), m.Vectorize(sb))
		return d >= 0 && d <= 1 && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineDistanceSymmetryProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		mk := func(raw []uint8) []faults.ID {
			var out []faults.ID
			for _, r := range raw {
				out = append(out, faults.ID(fmt.Sprintf("f.%d", r%8)))
			}
			return out
		}
		m := TrainIDF([][]faults.ID{mk(a), mk(b)})
		va, vb := m.Vectorize(mk(a)), m.Vectorize(mk(b))
		return math.Abs(CosineDistance(va, vb)-CosineDistance(vb, va)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalTwoObviousGroups(t *testing.T) {
	// Items 0-2 mutually close, 3-5 mutually close, groups far apart.
	dist := func(i, j int) float64 {
		if (i < 3) == (j < 3) {
			return 0.1
		}
		return 0.9
	}
	groups := Hierarchical(6, dist, 0.5)
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 clusters", groups)
	}
	if len(groups[0]) != 3 || groups[0][0] != 0 || groups[1][0] != 3 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestHierarchicalThresholdZeroKeepsSingletonsApart(t *testing.T) {
	dist := func(i, j int) float64 { return 1 }
	groups := Hierarchical(4, dist, 0.5)
	if len(groups) != 4 {
		t.Fatalf("groups = %v, want 4 singletons", groups)
	}
}

func TestHierarchicalAllIdenticalMergeToOne(t *testing.T) {
	dist := func(i, j int) float64 { return 0 }
	groups := Hierarchical(5, dist, 0.5)
	if len(groups) != 1 || len(groups[0]) != 5 {
		t.Fatalf("groups = %v, want one cluster of 5", groups)
	}
}

func TestHierarchicalEmpty(t *testing.T) {
	if g := Hierarchical(0, nil, 0.5); g != nil {
		t.Fatalf("groups = %v, want nil", g)
	}
}

func TestHierarchicalPartitionProperty(t *testing.T) {
	// Property: output is a partition of 0..n-1 regardless of distances.
	f := func(raw []uint8, thr uint8) bool {
		n := len(raw)
		if n == 0 || n > 20 {
			return true
		}
		dist := func(i, j int) float64 {
			return float64(raw[(i*31+j*17)%n]%100) / 100
		}
		groups := Hierarchical(n, dist, float64(thr%100)/100)
		seen := make(map[int]bool)
		for _, g := range groups {
			for _, i := range g {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimScoreIdenticalInterferences(t *testing.T) {
	m := TrainIDF([][]faults.ID{ids("f.x"), ids("f.x")})
	v := m.Vectorize(ids("f.x"))
	score := SimScore(map[faults.ID][]Vector{
		"f.a": {v},
		"f.b": {v},
	})
	if math.Abs(score-1) > 1e-12 {
		t.Fatalf("score = %v, want 1 for identical interferences", score)
	}
}

func TestSimScoreDisjointInterferences(t *testing.T) {
	m := TrainIDF([][]faults.ID{ids("f.x"), ids("f.y")})
	score := SimScore(map[faults.ID][]Vector{
		"f.a": {m.Vectorize(ids("f.x"))},
		"f.b": {m.Vectorize(ids("f.y"))},
	})
	if math.Abs(score) > 1e-12 {
		t.Fatalf("score = %v, want 0 for disjoint interferences", score)
	}
}

func TestSimScoreSingletonFaultUsesOwnWorkloads(t *testing.T) {
	// One fault injected into two workloads with different consequences:
	// conditional causality must lower the score below 1.
	m := TrainIDF([][]faults.ID{ids("f.x"), ids("f.y")})
	score := SimScore(map[faults.ID][]Vector{
		"f.a": {m.Vectorize(ids("f.x")), m.Vectorize(ids("f.y"))},
	})
	if score > 0.01 {
		t.Fatalf("score = %v, want ~0 for conditional singleton", score)
	}
}

func TestSimScoreSingleVector(t *testing.T) {
	m := TrainIDF([][]faults.ID{ids("f.x")})
	score := SimScore(map[faults.ID][]Vector{"f.a": {m.Vectorize(ids("f.x"))}})
	if score != 1 {
		t.Fatalf("score = %v, want 1 with no pairs", score)
	}
}

func TestSimScoreRangeProperty(t *testing.T) {
	f := func(raw [][]uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		var corpus [][]faults.ID
		byFault := make(map[faults.ID][]Vector)
		for fi, sets := range raw {
			var set []faults.ID
			for _, r := range sets {
				set = append(set, faults.ID(fmt.Sprintf("f.%d", r%10)))
			}
			corpus = append(corpus, set)
			fid := faults.ID(fmt.Sprintf("inj.%d", fi%3))
			m := TrainIDF(corpus)
			byFault[fid] = append(byFault[fid], m.Vectorize(set))
		}
		s := SimScore(byFault)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestFillMatrixParallelIdentical pins the parallel distance-matrix
// fill to the serial one, cell for cell: the Table-4 clustering cost is
// parallelised by computing each cell once into its own slot, never by
// reordering a floating-point reduction, so every worker count must
// produce bit-identical matrices (and hence identical clusters).
func TestFillMatrixParallelIdentical(t *testing.T) {
	const n = 150 // above parallelFillThreshold
	// A deterministic, irregular distance: enough structure to make any
	// mis-indexed row or torn write visible.
	dist := func(i, j int) float64 {
		return math.Abs(math.Sin(float64(i*31+j*17))) / (1 + math.Mod(float64(i+j), 7))
	}
	ref := fillMatrix(n, dist, 1)
	for _, workers := range []int{2, 3, 8, 64} {
		got := fillMatrix(n, dist, workers)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: d[%d][%d] = %v, want %v", workers, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestHierarchicalParallelFillSameClusters runs Hierarchical on a
// vector corpus large enough to trigger the parallel fill and checks
// the clusters equal those computed over a serially-filled matrix.
func TestHierarchicalParallelFillSameClusters(t *testing.T) {
	const n = 96
	corpus := make([][]faults.ID, n)
	for i := range corpus {
		corpus[i] = ids(
			fmt.Sprintf("f.shared%d", i%5),
			fmt.Sprintf("f.own%d", i/8),
		)
	}
	idf := TrainIDF(corpus)
	vecs := make([]Vector, n)
	for i, set := range corpus {
		vecs[i] = idf.Vectorize(set)
	}
	dist := func(i, j int) float64 { return CosineDistance(vecs[i], vecs[j]) }

	got := Hierarchical(n, dist, 0.5)

	// Reference: the same agglomeration over a serial fill. Hierarchical
	// resolves its worker count from GOMAXPROCS, so drive the serial path
	// explicitly through fillMatrix and compare via a fresh Hierarchical
	// run (its fill is deterministic, so any difference must come from
	// the matrix).
	ref := fillMatrix(n, dist, 1)
	par := fillMatrix(n, dist, 8)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if ref[i][j] != par[i][j] {
				t.Fatalf("matrix mismatch at (%d,%d)", i, j)
			}
		}
	}
	again := Hierarchical(n, dist, 0.5)
	if fmt.Sprint(got) != fmt.Sprint(again) {
		t.Fatalf("Hierarchical not deterministic:\n%v\n%v", got, again)
	}
}
