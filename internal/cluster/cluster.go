// Package cluster implements the causally-equivalent-fault machinery of
// §5.2/§A: IDF vectorization of interference sets, cosine distance,
// average-linkage hierarchical clustering, and the intra-cluster
// interference similarity score (SimScore) that drives 3PA phase three and
// the beam-search ranking.
package cluster

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
)

// Vector is a sparse, L2-normalised IDF vector over the fault corpus,
// stored as parallel id/weight slices in ascending ID order. The sorted
// representation makes every accumulation deterministically ordered by
// construction (no per-operation key sorting) and turns the pairwise
// distance -- called O(n^2) times by the hierarchical clustering -- into
// an allocation-free merge walk.
type Vector struct {
	ids []faults.ID
	ws  []float64
}

// Len returns the number of non-zero components.
func (v Vector) Len() int { return len(v.ids) }

// At returns the i-th (id, weight) component in ascending ID order.
func (v Vector) At(i int) (faults.ID, float64) { return v.ids[i], v.ws[i] }

// Get returns the weight of f, or 0 when absent.
func (v Vector) Get(f faults.ID) float64 {
	lo, hi := 0, len(v.ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.ids[mid] < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.ids) && v.ids[lo] == f {
		return v.ws[lo]
	}
	return 0
}

// Weights returns the weight components in ascending ID order. Callers
// must not mutate the result.
func (v Vector) Weights() []float64 { return v.ws }

// IDF is an inverse-document-frequency model trained over injection
// experiments: "documents" are experiments, "words" are the additional
// faults they triggered (§A.1). Faults triggered by many different
// injections (utility-function faults) receive low weight, like stop
// words in text mining.
type IDF struct {
	n       int
	docFreq map[faults.ID]int
}

// TrainIDF fits an IDF model on the interference sets of all experiments
// run so far. Each element of interferences is the deduplicated set of
// additional faults one experiment triggered.
func TrainIDF(interferences [][]faults.ID) *IDF {
	m := &IDF{n: len(interferences), docFreq: make(map[faults.ID]int)}
	for _, intf := range interferences {
		seen := make(map[faults.ID]bool, len(intf))
		for _, f := range intf {
			if !seen[f] {
				seen[f] = true
				m.docFreq[f]++
			}
		}
	}
	return m
}

// Weight returns the smoothed IDF weight log((1+N)/(1+N_f)) (§A.1 eq. 3).
func (m *IDF) Weight(f faults.ID) float64 {
	return math.Log(float64(1+m.n) / float64(1+m.docFreq[f]))
}

// Vectorize maps an interference set to its L2-normalised IDF vector
// (§A.1 eq. 4). The zero set maps to the empty vector. Accumulation runs
// in ascending ID order: float addition is not associative, and unordered
// summation would make scores (and everything downstream of them --
// clustering, beam ranking, the reported cycle set) jitter from run to
// run.
func (m *IDF) Vectorize(intf []faults.ID) Vector {
	if len(intf) == 0 {
		return Vector{}
	}
	ids := append([]faults.ID(nil), intf...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Deduplicate in place (sorted).
	u := ids[:1]
	for _, f := range ids[1:] {
		if f != u[len(u)-1] {
			u = append(u, f)
		}
	}
	ws := make([]float64, len(u))
	norm := 0.0
	for i, f := range u {
		ws[i] = m.Weight(f)
		norm += ws[i] * ws[i]
	}
	if norm == 0 {
		return Vector{}
	}
	norm = math.Sqrt(norm)
	for i := range ws {
		ws[i] /= norm
	}
	return Vector{ids: u, ws: ws}
}

// CosineDistance returns 1 - cos(a, b), in [0, 1] for non-negative
// vectors. Two empty vectors (non-impactful injections) are identical
// (distance 0); an empty vector against a non-empty one is maximally
// distant (distance 1). The merge walk accumulates in ascending ID order
// -- the same order the map-backed implementation sorted into -- so the
// result is a pure function of the vectors, bit for bit.
func CosineDistance(a, b Vector) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 0
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 1
	}
	dot, na, nb := 0.0, 0.0, 0.0
	j := 0
	for i, f := range a.ids {
		w := a.ws[i]
		na += w * w
		for j < len(b.ids) && b.ids[j] < f {
			j++
		}
		if j < len(b.ids) && b.ids[j] == f {
			dot += w * b.ws[j]
		}
	}
	for _, w := range b.ws {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 1
	}
	d := 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// parallelFillThreshold is the item count below which Hierarchical
// fills its distance matrix inline: tiny matrices are not worth the
// goroutine handoff.
const parallelFillThreshold = 64

// Hierarchical performs agglomerative average-linkage clustering over
// items with the given pairwise distance, merging while the closest pair
// of clusters is within threshold. It returns cluster membership as a
// slice of item-index groups, deterministic for a fixed input order.
//
// Above a small size the pairwise distance matrix is filled in parallel
// (each cell is computed once and written to its own slot, so the fill
// is deterministic by construction); dist must therefore be safe for
// concurrent calls -- CosineDistance over pre-built vectors, the one
// distance this codebase uses, is a pure read. The agglomeration loop
// itself stays serial: merge order is data-dependent and the matrix fill
// dominates (it is the O(n^2) Table-4 cost on cycle-dense targets).
func Hierarchical(n int, dist func(i, j int) float64, threshold float64) [][]int {
	if n == 0 {
		return nil
	}
	// Cache the symmetric distance matrix.
	d := fillMatrix(n, dist, runtime.GOMAXPROCS(0))
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	avg := func(a, b []int) float64 {
		s := 0.0
		for _, i := range a {
			for _, j := range b {
				s += d[i][j]
			}
		}
		return s / float64(len(a)*len(b))
	}
	for len(clusters) > 1 {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if v := avg(clusters[i], clusters[j]); v < best {
					bi, bj, best = i, j, v
				}
			}
		}
		if best > threshold {
			break
		}
		merged := append(append([]int{}, clusters[bi]...), clusters[bj]...)
		sort.Ints(merged)
		next := make([][]int, 0, len(clusters)-1)
		for k, c := range clusters {
			if k != bi && k != bj {
				next = append(next, c)
			}
		}
		clusters = append(next, merged)
	}
	// Deterministic output order: by smallest member index.
	sort.Slice(clusters, func(a, b int) bool { return clusters[a][0] < clusters[b][0] })
	return clusters
}

// fillMatrix computes the symmetric n x n pairwise distance matrix,
// fanning the rows across up to workers goroutines when the matrix is
// big enough to be worth it. Each cell is computed exactly once and
// written to its own slots, so the result is identical for every worker
// count -- the fill is deterministic by construction, not by reduction
// order.
func fillMatrix(n int, dist func(i, j int) float64, workers int) [][]float64 {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	fillRow := func(i int) {
		for j := i + 1; j < n; j++ {
			v := dist(i, j)
			d[i][j], d[j][i] = v, v
		}
	}
	if n < parallelFillThreshold || workers <= 1 {
		for i := 0; i < n; i++ {
			fillRow(i)
		}
		return d
	}
	// Row-partitioned fan-out. Rows shrink linearly (row i has n-1-i
	// cells), so workers pull rows from a shared counter instead of
	// taking fixed stripes -- the tail rows are nearly free and a static
	// split would leave the first worker with half the work.
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fillRow(i)
			}
		}()
	}
	wg.Wait()
	return d
}

// SimScore computes the intra-cluster interference similarity (§A.3
// eq. 6): 1 minus the mean pairwise cosine distance between vectorized
// interference results of *different* faults in the cluster. When the
// cluster holds a single fault, pairs across that fault's different
// workloads are used instead, so conditional behaviour of singleton
// clusters still lowers the score. With fewer than two vectors the score
// is 1 (no evidence of diversity).
func SimScore(byFault map[faults.ID][]Vector) float64 {
	type tagged struct {
		fault faults.ID
		v     Vector
	}
	var all []tagged
	ids := make([]faults.ID, 0, len(byFault))
	for id := range byFault {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, v := range byFault[id] {
			all = append(all, tagged{id, v})
		}
	}
	if len(all) < 2 {
		return 1
	}
	sum, cnt := 0.0, 0
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i].fault == all[j].fault {
				continue
			}
			sum += CosineDistance(all[i].v, all[j].v)
			cnt++
		}
	}
	if cnt == 0 {
		// Singleton-fault cluster: fall back to same-fault pairs.
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				sum += CosineDistance(all[i].v, all[j].v)
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 1
	}
	return 1 - sum/float64(cnt)
}
