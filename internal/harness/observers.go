// This file holds observer combinators. The driver accepts exactly one
// Observer; MultiObserver lets a campaign keep its progress observer
// while also tapping the edge stream for trace export.
package harness

import (
	"repro/internal/core/fca"
	"repro/internal/faults"
)

// multiObserver fans every callback out to each member, in order. The
// driver already serializes callbacks under its emit lock, so members
// see the same deterministic sequence they would see alone.
type multiObserver struct {
	obs []Observer
}

// MultiObserver combines observers into one. Nil members are dropped;
// a single survivor is returned unwrapped, and zero survivors yield nil
// (the driver treats a nil observer as "no observer").
func MultiObserver(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return multiObserver{obs: kept}
}

func (m multiObserver) ProfileCached(test string, sims int) {
	for _, o := range m.obs {
		o.ProfileCached(test, sims)
	}
}

func (m multiObserver) ExperimentExecuted(fault faults.ID, test string, edges, interference int) {
	for _, o := range m.obs {
		o.ExperimentExecuted(fault, test, edges, interference)
	}
}

func (m multiObserver) EdgeDiscovered(e fca.Edge) {
	for _, o := range m.obs {
		o.EdgeDiscovered(e)
	}
}
