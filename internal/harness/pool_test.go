package harness

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core/alloc"
	"repro/internal/systems/dfs"
	"repro/internal/systems/sysreg"
)

func TestTokenPoolBasics(t *testing.T) {
	p := NewTokenPool(2)
	if p.Cap() != 2 || p.InUse() != 0 {
		t.Fatalf("fresh pool: cap=%d inuse=%d", p.Cap(), p.InUse())
	}
	ctx := context.Background()
	if !p.Acquire(ctx) || !p.Acquire(ctx) {
		t.Fatal("acquire under capacity failed")
	}
	if p.InUse() != 2 {
		t.Fatalf("inuse = %d, want 2", p.InUse())
	}
	// A full pool blocks until a token frees or the context dies.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if p.Acquire(cctx) {
		t.Fatal("acquire on a full pool with a dead context succeeded")
	}
	p.Release()
	if !p.Acquire(ctx) {
		t.Fatal("acquire after release failed")
	}
	p.Release()
	p.Release()
	if p.InUse() != 0 {
		t.Fatalf("inuse = %d after all releases", p.InUse())
	}
}

func TestTokenPoolMinimumCapacity(t *testing.T) {
	for _, n := range []int{0, -3} {
		if got := NewTokenPool(n).Cap(); got != 1 {
			t.Fatalf("NewTokenPool(%d).Cap() = %d, want 1", n, got)
		}
	}
}

// TestTokenPoolBoundsConcurrency drives many goroutines through a small
// pool and asserts the in-flight count never exceeds capacity.
func TestTokenPoolBoundsConcurrency(t *testing.T) {
	const capacity, workers = 3, 24
	p := NewTokenPool(capacity)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !p.Acquire(context.Background()) {
				t.Error("acquire failed")
				return
			}
			n := inFlight.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			p.Release()
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > capacity {
		t.Fatalf("peak in-flight = %d, exceeds pool capacity %d", got, capacity)
	}
	if p.InUse() != 0 {
		t.Fatalf("inuse = %d after all workers finished", p.InUse())
	}
}

// TestSharedPoolDeterminism is the layered-budget contract: a driver
// executing under a shared (and maximally contended) token pool produces
// exactly the records and graph it produces without one. The pool
// throttles scheduling, never results.
func TestSharedPoolDeterminism(t *testing.T) {
	sys := dfs.NewV2()
	space := sysreg.Space(sys)
	var wave []alloc.PlannedRun
	for _, id := range space.IDs()[:4] {
		wave = append(wave, alloc.PlannedRun{Fault: id, Test: "basic_write"})
	}

	run := func(pool *TokenPool) ([]alloc.RunRecord, int) {
		d := New(sys, space, Config{
			Reps:            2,
			DelayMagnitudes: []time.Duration{2 * time.Second},
			Parallelism:     4,
			Pool:            pool,
		})
		defer d.Release()
		recs, _ := d.ExecuteWave(wave)
		return recs, d.Graph().Len()
	}

	baseRecs, baseEdges := run(nil)
	shared := NewTokenPool(1) // worst case: full serialization
	poolRecs, poolEdges := run(shared)
	if !reflect.DeepEqual(baseRecs, poolRecs) {
		t.Fatalf("run records differ under shared pool:\n  base:   %+v\n  pooled: %+v",
			baseRecs, poolRecs)
	}
	if baseEdges != poolEdges {
		t.Fatalf("edge counts differ under shared pool: %d vs %d", baseEdges, poolEdges)
	}
	if shared.InUse() != 0 {
		t.Fatalf("shared pool leaked %d tokens", shared.InUse())
	}
}

// TestPoolCancellationReleasesTokens: a driver whose context dies while
// its runs hold pool tokens must return them all on unwind.
func TestPoolCancellationReleasesTokens(t *testing.T) {
	sys := dfs.NewV2()
	space := sysreg.Space(sys)
	ctx, cancel := context.WithCancel(context.Background())
	pool := NewTokenPool(2)
	d := New(sys, space, Config{
		Reps:            2,
		DelayMagnitudes: []time.Duration{2 * time.Second},
		Parallelism:     2,
		Pool:            pool,
	})
	defer d.Release()
	d.Bind(ctx)
	var wave []alloc.PlannedRun
	for _, id := range space.IDs() {
		wave = append(wave, alloc.PlannedRun{Fault: id, Test: "basic_write"})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.ExecuteWave(wave)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ExecuteWave did not unwind after cancellation")
	}
	if pool.InUse() != 0 {
		t.Fatalf("cancelled driver leaked %d pool tokens", pool.InUse())
	}
}

// TestWorkerPanicSurfacesOnCaller: a panic on a pool worker goroutine
// re-raises on the goroutine that called into the driver (after all
// workers have settled), so a service job's recover barrier can catch
// it instead of the process dying.
func TestWorkerPanicSurfacesOnCaller(t *testing.T) {
	sys := dfs.NewV2()
	space := sysreg.Space(sys)
	d := New(sys, space, Config{
		Reps:            2,
		DelayMagnitudes: []time.Duration{2 * time.Second},
		Parallelism:     4,
	})
	defer d.Release()
	var ran atomic.Int64
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic from worker goroutine did not surface on the caller")
			}
		}()
		d.each(8, func(i int) {
			ran.Add(1)
			if i == 3 {
				panic("worker exploded")
			}
		})
	}()
	if got := ran.Load(); got != 8 {
		t.Fatalf("each ran %d of 8 workers; the panic must not strand siblings", got)
	}
}
