// Prefix-sharing simulation: fork-at-injection checkpoints for seeded
// run sets.
//
// Every injection plan runs at seeds drawn from its workload's shared
// seed pool, so an injected run is byte-identical to the *profile* run
// at the same (workload, seed) until the injection's first reach time --
// the first instant the instrumented target point is evaluated. The
// driver exploits that twice:
//
//   - clone: if the cached profile twin of the injected run never
//     covered the target, the injection can never arm, and the injected
//     run IS the profile run; the driver copies the cached record
//     instead of simulating at all.
//
//   - fork: otherwise the driver replays only the suffix. A lazy
//     *prefix engine* per (workload, seed) simulates the shared profile
//     prefix incrementally: on demand it advances to just below the
//     injection's divergence time -- known exactly when the profile
//     twin is cached, estimated from sibling seeds otherwise --
//     capturing an Engine.Checkpoint plus a system Snapshot and a
//     recorder copy at the divergence target and the nearest earlier
//     backbone instant (wherever the engine happens to be quiescent).
//     An injected run then restores the latest probe whose trace has
//     not yet covered the target and simulates only the suffix.
//     Divergence below 1/16 of the horizon goes straight to scratch:
//     real campaigns are dominated by points that are hot from the
//     first milliseconds, where a fork cannot repay its fixed cost.
//
// The probe-trace coverage test is the correctness gate: a probe that
// never evaluated the target is by construction byte-identical to the
// injected run's own prefix, so divergence *estimates* only tune
// performance, never results. Both paths are byte-identical to
// from-scratch execution (same traces, edges, cycles, reports, and
// RunResult; the event budget is cumulative for exactly this reason),
// so the cache is a pure performance layer: capture failures,
// evictions, systems that do not implement sysreg.Checkpointable, and
// Config.NoPrefixShare all simply fall back to scratch simulation.
package harness

import (
	"errors"
	"sync"
	"time"

	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"
)

// snapSizeBytes is the flat byte estimate for a system state snapshot
// (an opaque `any` the cache cannot introspect).
const snapSizeBytes = 8 << 10

// backboneDivisors define the geometric grid of capture instants a
// prefix engine probes on its way to a divergence target: horizon/256,
// /64, /16, /4, /2 (ascending). Early instants dominate because fault
// points overwhelmingly first fire in the opening fraction of a run;
// the backbone gives overshooting divergence estimates a nearby earlier
// probe to fall back to.
var backboneDivisors = []int64{256, 64, 16, 4, 2}

// ckKey identifies one (workload, seed) prefix.
type ckKey struct {
	test string
	seed int64
}

// prefixProbe is one captured fork point: the engine checkpoint, the
// system's own state snapshot, and a copy of the trace recorder, all at
// the same quiescent instant. Forked runs treat every field as
// read-only; one probe can seed any number of forks, concurrently.
type prefixProbe struct {
	at   time.Duration
	ck   *sim.Checkpoint
	snap any
	tr   *trace.Run
}

// prefixEntry is the per-(workload, seed) prefix engine: a live
// simulation of the shared profile prefix, advanced lazily and only as
// far as some injected run's divergence estimate requires. The entry
// owns the engine and its probe list; the byte-bounded cache decides
// which entries stay resident (an evicted entry is closed and never
// rebuilt -- later forks on its key fall back to scratch runs).
type prefixEntry struct {
	mu      sync.Mutex
	key     ckKey
	started bool
	dead    bool
	eng     *sim.Engine
	ctx     *sysreg.RunContext
	sys     sysreg.Checkpointable
	rec     *trace.Run    // the live prefix recorder
	at      time.Duration // how far the engine has simulated
	probes  []*prefixProbe
	bytes   int64
}

// CheckpointStats reports the prefix-sharing cache counters. All numbers
// are performance telemetry: they vary with Parallelism and eviction
// pressure, while campaign results stay byte-identical.
type CheckpointStats struct {
	// PrefixRuns is the number of live prefix engines started. Each
	// simulates the shared profile prefix only up to its deepest probe,
	// not the full horizon, and is not counted in SimCount.
	PrefixRuns int64
	// Hits is the number of injected runs forked from a checkpoint.
	Hits int64
	// Clones is the number of injected runs cloned outright because the
	// profile twin never reached the injection target: simulations
	// avoided entirely.
	Clones int64
	// Misses is the number of injected runs that fell back to from-scratch
	// simulation (no usable checkpoint, restore failure, or eviction).
	Misses int64
	// BytesHeld is the current checkpoint cache occupancy.
	BytesHeld int64
	// Evictions counts prefix entries dropped to stay under the byte bound.
	Evictions int64
}

// Avoided returns the number of shared-prefix simulations the cache
// saved: clones skip the whole run, forks skip the shared prefix.
func (s CheckpointStats) Avoided() int64 { return s.Hits + s.Clones }

// CheckpointStats returns a snapshot of the prefix-sharing counters.
func (d *Driver) CheckpointStats() CheckpointStats {
	st := CheckpointStats{
		PrefixRuns: d.pfRuns.Load(),
		Hits:       d.pfHits.Load(),
		Clones:     d.pfClones.Load(),
		Misses:     d.pfMisses.Load(),
	}
	if d.ckc != nil {
		st.BytesHeld, st.Evictions = d.ckc.usage()
	}
	return st
}

// --- checkpoint cache ---

// ckptCache is a byte-bounded LRU over the prefix entries' probe
// footprints. It tracks sizes and decides evictions but never locks an
// entry itself: update returns the victims and the *caller* drops them
// after releasing its own entry lock, so the cache mutex and the entry
// mutexes are never held together.
type ckptCache struct {
	mu        sync.Mutex
	limit     int64
	bytes     int64
	entries   map[ckKey]*ckptCacheEntry
	head      *ckptCacheEntry // most recently used
	tail      *ckptCacheEntry // least recently used
	evictions int64
}

type ckptCacheEntry struct {
	key        ckKey
	pe         *prefixEntry
	bytes      int64
	prev, next *ckptCacheEntry
}

func newCkptCache(limit int64) *ckptCache {
	return &ckptCache{limit: limit, entries: make(map[ckKey]*ckptCacheEntry)}
}

// unlink removes e from the LRU list (e must be linked).
func (c *ckptCache) unlink(e *ckptCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront links e as most recently used.
func (c *ckptCache) pushFront(e *ckptCacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// update records pe's current probe footprint and marks it most
// recently used, then evicts least-recently-used entries until the byte
// bound holds again. It returns the evicted entries for the caller to
// drop; the just-updated entry itself is evicted (last) only when it
// alone exceeds the bound.
func (c *ckptCache) update(pe *prefixEntry, bytes int64) []*prefixEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[pe.key]
	switch {
	case ok && bytes <= 0:
		c.unlink(e)
		delete(c.entries, pe.key)
		c.bytes -= e.bytes
		return nil
	case ok:
		c.bytes += bytes - e.bytes
		e.bytes = bytes
		c.unlink(e)
		c.pushFront(e)
	case bytes <= 0:
		return nil
	default:
		e = &ckptCacheEntry{key: pe.key, pe: pe, bytes: bytes}
		c.entries[pe.key] = e
		c.pushFront(e)
		c.bytes += bytes
	}
	var victims []*prefixEntry
	for c.bytes > c.limit && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.bytes -= victim.bytes
		c.evictions++
		victims = append(victims, victim.pe)
	}
	return victims
}

func (c *ckptCache) usage() (bytes, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, c.evictions
}

// reset forgets every entry (driver teardown; the entries are dropped
// by the caller).
func (c *ckptCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[ckKey]*ckptCacheEntry)
	c.head, c.tail = nil, nil
	c.bytes = 0
}

// --- prefix engine lifecycle ---

// prefixFor returns the (workload, seed) prefix entry, creating the
// (unstarted) slot on first use.
func (d *Driver) prefixFor(key ckKey) *prefixEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	pe := d.prefixes[key]
	if pe == nil {
		pe = &prefixEntry{key: key}
		d.prefixes[key] = pe
	}
	return pe
}

// isNoCkpt reports whether the workload's system was found not to set
// RunContext.Ckpt, so fork attempts can short-circuit without taking
// entry locks.
func (d *Driver) isNoCkpt(test string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.noCkpt[test]
}

func (d *Driver) markNoCkpt(test string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.noCkpt[test] = true
}

// ensure starts the prefix engine (pe.mu held): it constructs the
// workload on a checkpointing engine under the profile plan without
// simulating anything yet. A system that does not opt into
// Checkpointable kills the entry immediately.
func (pe *prefixEntry) ensure(d *Driver, w sysreg.Workload) {
	if pe.started || pe.dead {
		return
	}
	pe.started = true
	rec := d.pool.Get(w.Name, pe.key.seed)
	rt := inject.New(inject.Profile(), rec)
	eng := sim.NewEngine(sim.Options{Seed: pe.key.seed, Checkpointing: true})
	ctx := &sysreg.RunContext{Engine: eng, RT: rt}
	w.Run(ctx)
	if ctx.Ckpt == nil {
		eng.Close()
		d.pool.Put(rec)
		pe.dead = true
		d.markNoCkpt(w.Name)
		return
	}
	pe.eng, pe.ctx, pe.sys, pe.rec = eng, ctx, ctx.Ckpt, rec
	d.pfRuns.Add(1)
}

// capturePoints lists the instants to simulate-and-capture next: the
// backbone points inside (from, tstar), then tstar itself, ascending.
func capturePoints(from, tstar, horizon time.Duration) []time.Duration {
	// Only the closest backbone instant below tstar is captured en route:
	// a probe costs a full recorder copy plus a system snapshot, and on
	// real campaigns dense early probes were almost pure overhead (the
	// engine is forward-only, so a later attempt with a smaller tstar can
	// only use probes that already exist -- losing it to coverage costs
	// one scratch run, while capturing every grid point costs every
	// engine). One fallback probe below tstar absorbs an overshooting
	// divergence estimate.
	var last time.Duration
	for _, div := range backboneDivisors {
		if t := horizon / time.Duration(div); t > from && t < tstar {
			last = t
		}
	}
	var pts []time.Duration
	if last > 0 {
		pts = append(pts, last)
	}
	if tstar > from {
		pts = append(pts, tstar)
	}
	return pts
}

// advance simulates the prefix engine forward to tstar (pe.mu held),
// capturing a probe at (or just past) every backbone instant en route
// where the engine is quiescent. Busy instants are handled by creeping:
// a failed capture steps the simulation forward a small increment and
// retries, never past tstar -- quiescence checks fail fast, and the
// simulated time is spent on the way to tstar regardless. A run that
// ends before the horizon has no forkable suffix past that point, so
// the entry is closed (existing probes stay usable).
func (pe *prefixEntry) advance(d *Driver, w sysreg.Workload, tstar time.Duration) {
	if pe.dead || pe.eng == nil {
		return
	}
	step := w.Horizon / 1024
	if step < time.Millisecond {
		step = time.Millisecond
	}
	wanted := capturePoints(pe.at, tstar, w.Horizon)
	for len(wanted) > 0 {
		if d.cancelled() {
			return
		}
		next := wanted[0]
		if next <= pe.at {
			next = pe.at + step // busy at the wanted instant: creep on
		}
		if next > tstar {
			return
		}
		res := pe.eng.Run(next)
		pe.at = next
		if res.Reason != sim.StopHorizon {
			pe.close(d)
			return
		}
		ck, err := pe.eng.Checkpoint()
		if errors.Is(err, sim.ErrNotQuiescent) {
			continue
		}
		if err != nil {
			pe.close(d) // usage error: stop probing this prefix
			return
		}
		tr := d.pool.Get(w.Name, pe.key.seed)
		tr.CopyFrom(pe.rec)
		pe.probes = append(pe.probes, &prefixProbe{at: pe.at, ck: ck, snap: pe.ctx.Ckpt.Snapshot(), tr: tr})
		pe.bytes += int64(ck.SizeBytes()) + int64(tr.SizeBytes()) + snapSizeBytes
		for len(wanted) > 0 && wanted[0] <= pe.at {
			wanted = wanted[1:]
		}
	}
}

// close stops the live engine (pe.mu held), keeping captured probes.
func (pe *prefixEntry) close(d *Driver) {
	if pe.eng != nil {
		pe.eng.Close()
		pe.eng = nil
	}
	if pe.rec != nil {
		d.pool.Put(pe.rec)
		pe.rec = nil
	}
	pe.ctx = nil
	pe.dead = true
}

// drop releases the whole entry: the engine and the probe footprint
// (eviction and driver teardown). Probe traces are not returned to the
// run pool -- in-flight forks may still hold references; the collector
// reclaims them.
func (pe *prefixEntry) drop(d *Driver) {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	pe.close(d)
	pe.probes = nil
	pe.bytes = 0
}

// --- forking ---

// forkOnce attempts to satisfy one injected run from the prefix layer.
// It returns (record, true) on a clone or fork, and (nil, false) when
// the caller must simulate from scratch. The caller already holds the
// worker and pool slots, so this must never trigger a nested simulation
// through the profile cache -- it only *reads* a completed profile set.
func (d *Driver) forkOnce(w sysreg.Workload, plan inject.Plan, seed int64) (*trace.Run, bool) {
	e := d.entry(w.Name)
	if !e.done.Load() {
		return nil, false // profile not cached yet; scratch is always correct
	}

	// The divergence oracle: the profile twin's first reach time when this
	// seed is a profile seed (exact), the earliest sibling reach otherwise
	// (an estimate the probe coverage gate makes safe).
	var own *trace.Run
	reach := time.Duration(-1)
	exact := false
	for _, r := range e.set.Runs {
		if r.Seed == seed {
			own = r
		}
		if at, ok := r.FirstReach(plan.Target); ok && (reach < 0 || at < reach) {
			reach = at
		}
	}
	if own != nil {
		at, ok := own.FirstReach(plan.Target)
		if !ok {
			// The twin never evaluated the target, so the injection never
			// arms and the injected run IS the profile run.
			rec := d.pool.Get(w.Name, seed)
			rec.CopyFrom(own)
			d.sims.Add(1)
			d.pfClones.Add(1)
			return rec, true
		}
		reach, exact = at, true
	}
	if reach <= 0 || d.isNoCkpt(w.Name) {
		return nil, false
	}

	// Aim just below the divergence time. An estimate from sibling seeds
	// can overshoot this seed's true reach; the probe coverage gate below
	// rejects such probes, so the margin tunes performance, not
	// correctness.
	margin := reach / 16
	if exact || margin < time.Millisecond {
		margin = time.Millisecond
	}
	tstar := reach - margin
	// Profitability floor: forking only skips the simulated prefix, so a
	// divergence in the opening fraction of the horizon cannot repay the
	// fixed fork cost (engine construction, restore, recorder copies) --
	// let alone the prefix engine it would spin up. Points that are hot
	// from the start (the common case in real campaigns: replication and
	// IO loops reach within milliseconds) go straight to scratch.
	if tstar <= w.Horizon/16 {
		return nil, false
	}

	pe := d.prefixFor(ckKey{test: w.Name, seed: seed})
	pe.mu.Lock()
	pe.ensure(d, w)
	covered := false
	for _, p := range pe.probes {
		if p.tr.Covered(plan.Target) {
			covered = true
			break
		}
	}
	if !covered && pe.at < tstar {
		pe.advance(d, w, tstar)
	}
	// The latest probe that has not yet evaluated the target (coverage is
	// monotone, so probes past the first covering one are unusable too).
	var best *prefixProbe
	for _, p := range pe.probes {
		if p.tr.Covered(plan.Target) {
			break
		}
		best = p
	}
	sys := pe.sys
	bytes := pe.bytes
	pe.mu.Unlock()

	evicted := false
	for _, v := range d.ckc.update(pe, bytes) {
		v.drop(d)
		if v == pe {
			evicted = true
		}
	}
	if best == nil || sys == nil || evicted {
		return nil, false
	}

	rec := d.pool.Get(w.Name, seed)
	rec.CopyFrom(best.tr)
	rt := inject.New(plan, rec)
	eng := sim.NewEngine(sim.Options{Seed: seed, Checkpointing: true})
	start := time.Now()
	sess, err := best.ck.RestoreInto(eng)
	if err == nil {
		err = sys.Restore(&sysreg.RunContext{Engine: eng, RT: rt, Session: sess}, best.snap)
	}
	if err == nil {
		err = sess.Finish()
	}
	if err != nil {
		// A restore failure means the system's Checkpointable contract is
		// broken for this capture; fall back to a from-scratch run, which
		// is always correct.
		eng.Close()
		d.pool.Put(rec)
		return nil, false
	}
	res := eng.Run(w.Horizon)
	eng.Close()
	d.sims.Add(1)
	res.Events = eng.Events()
	rec.Result = res
	rec.Wall = time.Since(start)
	d.pfHits.Add(1)
	return rec, true
}
