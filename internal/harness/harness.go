// Package harness is CSnake's workload driver (§3): it executes profile
// and injection runs of (fault, workload) pairs against a target system,
// repeats each configuration across seeds, caches profile runs and
// coverage, applies fault causality analysis, and accumulates the causal
// edge set consumed by the bug detector.
package harness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core/alloc"
	"repro/internal/core/fca"
	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"
)

// Config tunes the driver.
type Config struct {
	// Reps is the number of seeds each run configuration is repeated with
	// (paper: 5).
	Reps int
	// DelayMagnitudes are the spin lengths swept per delay injection
	// (paper: seven values, 100ms-8s).
	DelayMagnitudes []time.Duration
	// BaseSeed offsets all run seeds, so campaigns are reproducible but
	// distinct.
	BaseSeed int64
	// FCA configures the counterfactual criteria.
	FCA fca.Config
}

// DefaultConfig returns the paper's execution parameters.
func DefaultConfig() Config {
	return Config{
		Reps:            5,
		DelayMagnitudes: inject.DelayMagnitudes,
		BaseSeed:        1,
		FCA:             fca.DefaultConfig(),
	}
}

func (c *Config) defaults() {
	if c.Reps == 0 {
		c.Reps = 5
	}
	if len(c.DelayMagnitudes) == 0 {
		c.DelayMagnitudes = inject.DelayMagnitudes
	}
	if c.FCA.PValue == 0 {
		c.FCA = fca.DefaultConfig()
	}
}

// Driver executes runs for one system. It implements alloc.Executor, so a
// 3PA protocol (or the random baseline) can schedule experiments directly
// against it.
type Driver struct {
	sys   sysreg.System
	space *faults.Space
	cfg   Config

	workloads map[string]sysreg.Workload
	order     []string

	profiles map[string]*trace.Set
	edges    []fca.Edge
	marks    []int

	// Sims counts simulated executions, for reporting.
	Sims int
}

// New builds a driver over sys.
func New(sys sysreg.System, space *faults.Space, cfg Config) *Driver {
	cfg.defaults()
	d := &Driver{
		sys:       sys,
		space:     space,
		cfg:       cfg,
		workloads: make(map[string]sysreg.Workload),
		profiles:  make(map[string]*trace.Set),
	}
	for _, w := range sys.Workloads() {
		d.workloads[w.Name] = w
		d.order = append(d.order, w.Name)
	}
	return d
}

// Space returns the system's filtered fault space.
func (d *Driver) Space() *faults.Space { return d.space }

// Workloads returns the workload names in declaration order.
func (d *Driver) Workloads() []string { return append([]string(nil), d.order...) }

// runOnce executes a single simulated run of workload w under plan.
// When record is false the trace recorder is disabled (overhead baseline).
func (d *Driver) runOnce(w sysreg.Workload, plan inject.Plan, seed int64, record bool) *trace.Run {
	var rec *trace.Run
	if record {
		rec = trace.NewRun(w.Name, seed)
	}
	rt := inject.New(plan, rec)
	eng := sim.NewEngine(sim.Options{Seed: seed})
	ctx := &sysreg.RunContext{Engine: eng, RT: rt}
	start := time.Now()
	w.Run(ctx)
	res := eng.Run(w.Horizon)
	eng.Close()
	d.Sims++
	if rec != nil {
		rec.Result = res
		rec.Wall = time.Since(start)
	}
	return rec
}

// runSet executes cfg.Reps seeded runs of (w, plan).
func (d *Driver) runSet(w sysreg.Workload, plan inject.Plan, salt int64) *trace.Set {
	set := &trace.Set{}
	for i := 0; i < d.cfg.Reps; i++ {
		seed := d.cfg.BaseSeed + salt*1_000_003 + int64(i)
		set.Add(d.runOnce(w, plan, seed, true))
	}
	return set
}

// Profile returns (running and caching on first use) the profile run set
// of a workload: the counterfactual baseline FCA diffs every injection run
// against. Five seeds (cfg.Reps) absorb scheduling nondeterminism, exactly
// as in §4.3.
func (d *Driver) Profile(test string) *trace.Set {
	if set, ok := d.profiles[test]; ok {
		return set
	}
	w, ok := d.workloads[test]
	if !ok {
		panic(fmt.Sprintf("harness: unknown workload %q", test))
	}
	set := d.runSet(w, inject.Profile(), saltOf(test, ""))
	d.profiles[test] = set
	return set
}

// ProfileAll forces profile runs of every workload (coverage map
// construction).
func (d *Driver) ProfileAll() {
	for _, name := range d.order {
		d.Profile(name)
	}
}

// OverheadSample measures one profile execution with monitoring on and
// off, returning the wall-clock times (§8.5).
func (d *Driver) OverheadSample(test string, seed int64) (instrumented, bare time.Duration) {
	w := d.workloads[test]
	start := time.Now()
	d.runOnce(w, inject.Profile(), seed, true)
	instrumented = time.Since(start)
	start = time.Now()
	d.runOnce(w, inject.Profile(), seed, false)
	bare = time.Since(start)
	return
}

// TestsFor implements alloc.Executor: the workloads whose profile runs
// cover f, with their total coverage as the phase-one ranking key.
func (d *Driver) TestsFor(f faults.ID) []alloc.TestInfo {
	var out []alloc.TestInfo
	for _, name := range d.order {
		cov := d.Profile(name).Coverage()
		if cov[f] {
			out = append(out, alloc.TestInfo{Name: name, Coverage: len(cov)})
		}
	}
	return out
}

// Execute implements alloc.Executor: it runs the full injection
// experiment for fault f under the named workload -- Reps seeds, and for
// delay faults the whole magnitude sweep -- applies FCA against the
// workload's profile set, accumulates the discovered edges, and returns
// the additional fault ids triggered.
func (d *Driver) Execute(f faults.ID, test string) []faults.ID {
	pt, ok := d.space.Lookup(f)
	if !ok {
		return nil
	}
	w, wok := d.workloads[test]
	if !wok {
		panic(fmt.Sprintf("harness: unknown workload %q", test))
	}
	profile := d.Profile(test)

	intfSet := make(map[faults.ID]bool)
	var intf []faults.ID
	collect := func(plan inject.Plan, salt int64) {
		injected := d.runSet(w, plan, salt)
		edges, add := fca.Analyze(d.space, plan, test, profile, injected, d.cfg.FCA)
		d.edges = append(d.edges, edges...)
		for _, id := range add {
			if !intfSet[id] {
				intfSet[id] = true
				intf = append(intf, id)
			}
		}
	}

	if pt.Kind == faults.Loop {
		for mi, mag := range d.cfg.DelayMagnitudes {
			plan := inject.PlanFor(pt, mag)
			collect(plan, saltOf(test, string(f))+int64(mi+1))
		}
	} else {
		collect(inject.PlanFor(pt, 0), saltOf(test, string(f)))
	}
	sort.Slice(intf, func(i, j int) bool { return intf[i] < intf[j] })
	d.marks = append(d.marks, len(d.edges))
	return intf
}

// Marks returns the cumulative dynamic-edge count after each Execute call,
// in call order. Combined with the allocation's run records this
// attributes every edge to the experiment (and hence 3PA phase) that
// discovered it.
func (d *Driver) Marks() []int { return append([]int(nil), d.marks...) }

// EdgesUpTo returns the dynamic edges discovered by the first n Execute
// calls plus the static loop edges, deduplicated.
func (d *Driver) EdgesUpTo(n int) []fca.Edge {
	if n >= len(d.marks) {
		return d.Edges()
	}
	cut := 0
	if n > 0 {
		cut = d.marks[n-1]
	}
	all := append([]fca.Edge(nil), d.edges[:cut]...)
	all = append(all, fca.StaticLoopEdges(d.space)...)
	return fca.Dedup(all)
}

// Edges returns the deduplicated causal edge set discovered so far,
// including the static ICFG/CFG loop edges.
func (d *Driver) Edges() []fca.Edge {
	all := append([]fca.Edge(nil), d.edges...)
	all = append(all, fca.StaticLoopEdges(d.space)...)
	return fca.Dedup(all)
}

// saltOf derives a stable per-(test,fault) seed salt.
func saltOf(test, fault string) int64 {
	h := int64(1469598103934665603)
	for _, s := range []string{test, fault} {
		for i := 0; i < len(s); i++ {
			h ^= int64(s[i])
			h *= 1099511628211
		}
	}
	if h < 0 {
		h = -h
	}
	return h % 1_000_000_007
}
