// Package harness is CSnake's workload driver (§3): it executes profile
// and injection runs of (fault, workload) pairs against a target system,
// repeats each configuration across seeds, caches profile runs and
// coverage, applies fault causality analysis, and accumulates the causal
// edges into an interned graph.Graph -- deduplicated by construction and
// sliceable into per-experiment prefixes -- consumed by the bug detector.
//
// The driver's internal state is mutex-guarded, and when
// Config.Parallelism > 1 the seeded simulation runs of a run set (and the
// magnitude sweep of a delay experiment) fan out across a bounded worker
// pool; every run owns an independent sim.Engine, and results are merged
// in deterministic (plan, seed-index) order, so a parallel campaign is
// bit-identical to a serial one. ExecuteWave additionally fans whole
// experiments out across the pool: each experiment accumulates into a
// private graph.Shard (no shared lock on the hot path) and the wave seal
// merges the shards into the campaign graph in wave order, so the edge
// stream, intern tables, mark boundaries, and observer event order are
// byte-identical to serial execution. Profile/TestsFor/read accessors may
// be called from any goroutine, but Execute (and ExecuteWave) calls must
// be issued serially relative to each other (as the allocation protocols
// do): concurrent calls would interleave edge insertions between mark
// boundaries and corrupt the Marks/GraphUpTo experiment-to-edge
// attribution.
package harness

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/alloc"
	"repro/internal/core/fca"
	"repro/internal/core/graph"
	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"
)

// Config tunes the driver.
type Config struct {
	// Reps is the number of seeds each run configuration is repeated with
	// (paper: 5).
	Reps int
	// DelayMagnitudes are the spin lengths swept per delay injection
	// (paper: seven values, 100ms-8s).
	DelayMagnitudes []time.Duration
	// BaseSeed offsets all run seeds, so campaigns are reproducible but
	// distinct.
	BaseSeed int64
	// FCA configures the counterfactual criteria.
	FCA fca.Config
	// Parallelism bounds how many simulated runs execute concurrently;
	// 0 or 1 means strictly serial execution. Results are independent of
	// the value (deterministic merge order).
	Parallelism int
	// Pool, when set, layers a shared cross-campaign simulation budget
	// under Parallelism: every run additionally holds one pool token
	// while it executes, so many drivers sharing a pool are bounded in
	// total. Results are independent of the pool (and of contention on
	// it); see TokenPool.
	Pool *TokenPool
	// NoPrefixShare disables fork-at-injection prefix sharing: every
	// injected run simulates from scratch. Results are byte-identical
	// either way; the flag is an escape hatch and the benchmark baseline.
	NoPrefixShare bool
	// CheckpointBytes bounds the retained prefix-checkpoint cache; the
	// least recently used probe sets are evicted past it (evicted forks
	// fall back to from-scratch runs). Zero means the default (64 MiB).
	CheckpointBytes int64
}

// DefaultConfig returns the paper's execution parameters.
func DefaultConfig() Config {
	return Config{
		Reps:            5,
		DelayMagnitudes: inject.DelayMagnitudes,
		BaseSeed:        1,
		FCA:             fca.DefaultConfig(),
	}
}

func (c *Config) defaults() {
	if c.Reps == 0 {
		c.Reps = 5
	}
	if len(c.DelayMagnitudes) == 0 {
		c.DelayMagnitudes = inject.DelayMagnitudes
	}
	if c.FCA.PValue == 0 {
		c.FCA = fca.DefaultConfig()
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 64 << 20
	}
}

// Observer receives driver-level progress events. The driver serializes
// the calls (no two events are delivered concurrently), but when
// Parallelism > 1 events from overlapping profile runs may arrive in any
// relative order.
type Observer interface {
	// ProfileCached fires once per workload, after its profile run set is
	// computed and cached; sims is the number of seeded runs it took.
	ProfileCached(test string, sims int)
	// ExperimentExecuted fires after each injection experiment with the
	// number of causal edges and interfered faults it discovered. It is
	// not emitted for experiments skipped after context cancellation,
	// even though their (empty) run records and marks still exist.
	ExperimentExecuted(fault faults.ID, test string, edges, interference int)
	// EdgeDiscovered fires for every dynamic causal edge FCA accepts.
	EdgeDiscovered(e fca.Edge)
}

// profileEntry caches one workload's profile run set and coverage map.
// The once gate means concurrent lookups compute the set exactly once;
// done flips (with release semantics) after the set is complete, so the
// prefix layer -- which must never *trigger* a build while holding a
// worker slot -- can read the cached runs without blocking on the gate.
type profileEntry struct {
	once sync.Once
	done atomic.Bool
	set  *trace.Set
	cov  map[faults.ID]bool
}

// Driver executes runs for one system. It implements alloc.Executor, so a
// 3PA protocol (or the random baseline) can schedule experiments directly
// against it.
type Driver struct {
	sys   sysreg.System
	space *faults.Space
	cfg   Config
	ctx   context.Context

	workloads map[string]sysreg.Workload
	order     []string

	// sem bounds concurrently-executing simulation runs (nil when serial).
	sem chan struct{}

	// pool recycles trace.Run records across seeded repetitions: injection
	// run sets are released back after FCA extracts their evidence, so a
	// campaign's steady state allocates no new trace state per run.
	pool *trace.Pool

	// mu guards the edge graph and the profiles/prefixes maps (the
	// entries gate themselves via sync.Once).
	mu       sync.Mutex
	profiles map[string]*profileEntry

	// prefixes holds the per-(workload, seed) prefix-sharing entries;
	// ckc is the byte-bounded checkpoint cache behind them, and noCkpt
	// marks workloads whose system never sets RunContext.Ckpt (see
	// prefix.go).
	prefixes map[ckKey]*prefixEntry
	ckc      *ckptCache
	noCkpt   map[string]bool

	pfRuns, pfHits, pfClones, pfMisses atomic.Int64
	// g accumulates the interned causal graph: static ICFG/CFG loop edges
	// are pre-inserted at construction (they order after every dynamic
	// edge when materialized), dynamic edges insert as FCA discovers them
	// (deduplicating by construction), and Mark records experiment
	// boundaries for prefix snapshots.
	g *graph.Graph

	// emitMu serializes observer callbacks.
	emitMu sync.Mutex
	obs    Observer

	sims atomic.Int64
}

// New builds a driver over sys.
func New(sys sysreg.System, space *faults.Space, cfg Config) *Driver {
	cfg.defaults()
	d := &Driver{
		sys:       sys,
		space:     space,
		cfg:       cfg,
		ctx:       context.Background(),
		workloads: make(map[string]sysreg.Workload),
		profiles:  make(map[string]*profileEntry),
		prefixes:  make(map[ckKey]*prefixEntry),
		ckc:       newCkptCache(cfg.CheckpointBytes),
		noCkpt:    make(map[string]bool),
		g:         graph.New(),
		pool:      trace.NewPool(space),
	}
	d.g.SetSystem(sys.Name())
	d.g.AddStatic(fca.StaticLoopEdges(space))
	if cfg.Parallelism > 1 {
		d.sem = make(chan struct{}, cfg.Parallelism)
	}
	for _, w := range sys.Workloads() {
		d.workloads[w.Name] = w
		d.order = append(d.order, w.Name)
	}
	return d
}

// Bind attaches a cancellation context: once ctx is cancelled the driver
// stops launching simulation runs and every Execute/Profile call returns
// promptly (with incomplete results).
func (d *Driver) Bind(ctx context.Context) {
	if ctx != nil {
		d.ctx = ctx
	}
}

// Observe installs a progress observer (nil disables events).
func (d *Driver) Observe(o Observer) {
	d.emitMu.Lock()
	d.obs = o
	d.emitMu.Unlock()
}

// Space returns the system's filtered fault space.
func (d *Driver) Space() *faults.Space { return d.space }

// Workloads returns the workload names in declaration order.
func (d *Driver) Workloads() []string { return append([]string(nil), d.order...) }

// SimCount returns the number of simulated executions performed so far.
func (d *Driver) SimCount() int { return int(d.sims.Load()) }

// cancelled reports whether the bound context is done.
func (d *Driver) cancelled() bool { return d.ctx.Err() != nil }

func (d *Driver) emitProfile(test string, sims int) {
	d.emitMu.Lock()
	defer d.emitMu.Unlock()
	if d.obs != nil {
		d.obs.ProfileCached(test, sims)
	}
}

func (d *Driver) emitExperiment(f faults.ID, test string, edges, intf int) {
	d.emitMu.Lock()
	defer d.emitMu.Unlock()
	if d.obs != nil {
		d.obs.ExperimentExecuted(f, test, edges, intf)
	}
}

func (d *Driver) emitEdges(edges []fca.Edge) {
	d.emitMu.Lock()
	defer d.emitMu.Unlock()
	if d.obs != nil {
		for _, e := range edges {
			d.obs.EdgeDiscovered(e)
		}
	}
}

// FanOut runs fn(0), ..., fn(n-1) across at most parallelism goroutines
// and waits for all of them; parallelism <= 1 runs them inline in index
// order. The baselines share this pool shape with the driver.
func FanOut(parallelism, n int, fn func(int)) {
	if parallelism <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if parallelism > n {
		parallelism = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// each spawns one goroutine per index (bounded by the run-level
// semaphore acquired in runOnce) when the driver is parallel, or runs
// inline when serial. Unlike FanOut it may nest: outer levels (workloads)
// hold no pool token while inner levels (seeded runs) execute.
//
// A panic on a worker goroutine is captured and re-raised on the calling
// goroutine after all workers finish, so a crashing simulation surfaces
// where the campaign runs (and a service wrapping campaigns in jobs can
// recover it per job) instead of killing the whole process from an
// anonymous goroutine.
func (d *Driver) each(n int, fn func(int)) {
	if d.sem == nil || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// runOnce executes a single simulated run of workload w under plan.
// When record is false the trace recorder is disabled (overhead baseline).
// Returns nil (without simulating) once the bound context is cancelled.
func (d *Driver) runOnce(w sysreg.Workload, plan inject.Plan, seed int64, record bool) *trace.Run {
	if d.sem != nil {
		d.sem <- struct{}{}
		defer func() { <-d.sem }()
	}
	if p := d.cfg.Pool; p != nil {
		// The local worker slot is held while waiting for a shared token;
		// tokens are always released after a finite run, so the layered
		// acquisition cannot deadlock.
		if !p.Acquire(d.ctx) {
			return nil
		}
		defer p.Release()
	}
	if d.cancelled() {
		return nil
	}
	if record && plan.Kind != inject.None && !d.cfg.NoPrefixShare {
		// Injected runs reuse their (workload, seed) profile prefix: clone
		// it outright when the target is never covered, fork from the last
		// checkpoint below the divergence time otherwise. Both paths are
		// byte-identical to the scratch run below; a miss falls through.
		if rec, ok := d.forkOnce(w, plan, seed); ok {
			return rec
		}
		d.pfMisses.Add(1)
	}
	var rec *trace.Run
	if record {
		rec = d.pool.Get(w.Name, seed)
	}
	rt := inject.New(plan, rec)
	eng := sim.NewEngine(sim.Options{Seed: seed})
	ctx := &sysreg.RunContext{Engine: eng, RT: rt}
	start := time.Now()
	w.Run(ctx)
	res := eng.Run(w.Horizon)
	eng.Close()
	d.sims.Add(1)
	res.Events = eng.Events()
	if rec != nil {
		rec.Result = res
		rec.Wall = time.Since(start)
	}
	return rec
}

// seedsOf expands a salt into the cfg.Reps consecutive run seeds of a
// run set: the (salt, rep) grid every profile and injection set draws
// from.
func (d *Driver) seedsOf(salt int64) []int64 {
	seeds := make([]int64, d.cfg.Reps)
	for ri := range seeds {
		seeds[ri] = d.cfg.BaseSeed + salt*1_000_003 + int64(ri)
	}
	return seeds
}

// runSets executes the seeded runs of every plan (seeds[pi] lists plan
// pi's run seeds), fanning the (plan, rep) grid across the worker pool,
// and merges the results in deterministic (plan, seed-index) order.
func (d *Driver) runSets(w sysreg.Workload, plans []inject.Plan, seeds [][]int64) []*trace.Set {
	reps := d.cfg.Reps
	runs := make([]*trace.Run, len(plans)*reps)
	d.each(len(runs), func(j int) {
		pi, ri := j/reps, j%reps
		runs[j] = d.runOnce(w, plans[pi], seeds[pi][ri], true)
	})
	sets := make([]*trace.Set, len(plans))
	for pi := range plans {
		set := &trace.Set{}
		for ri := 0; ri < reps; ri++ {
			if r := runs[pi*reps+ri]; r != nil {
				set.Add(r)
			}
		}
		sets[pi] = set
	}
	return sets
}

// runSet executes cfg.Reps seeded runs of (w, plan).
func (d *Driver) runSet(w sysreg.Workload, plan inject.Plan, salt int64) *trace.Set {
	return d.runSets(w, []inject.Plan{plan}, [][]int64{d.seedsOf(salt)})[0]
}

// entry returns the cache slot of a workload's profile, creating it on
// first use; it panics for unknown workloads.
func (d *Driver) entry(test string) *profileEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.profiles[test]; ok {
		return e
	}
	if _, ok := d.workloads[test]; !ok {
		panic(fmt.Sprintf("harness: unknown workload %q", test))
	}
	e := &profileEntry{}
	d.profiles[test] = e
	return e
}

// profile computes (once) and returns the cached profile entry.
func (d *Driver) profile(test string) *profileEntry {
	e := d.entry(test)
	e.once.Do(func() {
		w := d.workloads[test]
		e.set = d.runSet(w, inject.Profile(), saltOf(test, ""))
		e.cov = e.set.Coverage()
		e.done.Store(true)
		d.emitProfile(test, len(e.set.Runs))
	})
	return e
}

// Profile returns (running and caching on first use) the profile run set
// of a workload: the counterfactual baseline FCA diffs every injection run
// against. Five seeds (cfg.Reps) absorb scheduling nondeterminism, exactly
// as in §4.3.
func (d *Driver) Profile(test string) *trace.Set {
	return d.profile(test).set
}

// ProfileAll forces profile runs of every workload (coverage map
// construction), fanning the workloads out across the pool when the
// driver is parallel.
func (d *Driver) ProfileAll() {
	d.each(len(d.order), func(i int) {
		d.profile(d.order[i])
	})
}

// releaseSets returns every run of the given sets to the driver's pool.
func (d *Driver) releaseSets(sets []*trace.Set) {
	for _, s := range sets {
		for _, r := range s.Runs {
			d.pool.Put(r)
		}
		s.Runs = nil
	}
}

// OverheadSamples is the number of paired (instrumented, bare) profile
// executions OverheadSample averages over: single wall-clock pairs are
// dominated by allocator warm-up noise (§8.5 measurement discipline).
const OverheadSamples = 5

// OverheadSample measures the §8.5 instrumentation overhead for one
// workload: it executes OverheadSamples paired profile runs -- monitoring
// on, then monitoring off, with the same seed -- at seeds seed..seed+4 and
// returns the summed wall-clock times of each mode. This is the single
// source of truth for the overhead measurement; the report tables and the
// bench harness both call it directly.
func (d *Driver) OverheadSample(test string, seed int64) (instrumented, bare time.Duration) {
	w, ok := d.workloads[test]
	if !ok {
		panic(fmt.Sprintf("harness: unknown workload %q", test))
	}
	for i := 0; i < OverheadSamples; i++ {
		s := seed + int64(i)
		start := time.Now()
		rec := d.runOnce(w, inject.Profile(), s, true)
		instrumented += time.Since(start)
		d.pool.Put(rec)
		start = time.Now()
		d.runOnce(w, inject.Profile(), s, false)
		bare += time.Since(start)
	}
	return
}

// TestsFor implements alloc.Executor: the workloads whose profile runs
// cover f, with their total coverage as the phase-one ranking key.
// Coverage lookups go through the shared, lock-protected profile cache:
// profiling on demand stays (a cold cache still fills deterministically,
// in workload-declaration order when serial), but repeated allocation
// queries never re-run simulations or recompute coverage maps.
func (d *Driver) TestsFor(f faults.ID) []alloc.TestInfo {
	var out []alloc.TestInfo
	for _, name := range d.order {
		e := d.profile(name)
		if e.cov[f] {
			out = append(out, alloc.TestInfo{Name: name, Coverage: len(e.cov)})
		}
	}
	return out
}

// Execute implements alloc.Executor: it runs the full injection
// experiment for fault f under the named workload -- Reps seeds, and for
// delay faults the whole magnitude sweep -- applies FCA against the
// workload's profile set, accumulates the discovered edges, and returns
// the additional fault ids triggered. The (magnitude x rep) grid executes
// on the worker pool; FCA itself runs serially in magnitude order, so the
// edge stream is deterministic.
func (d *Driver) Execute(f faults.ID, test string) []faults.ID {
	pt, ok := d.space.Lookup(f)
	if !ok {
		return nil
	}
	w, wok := d.workloads[test]
	if !wok {
		panic(fmt.Sprintf("harness: unknown workload %q", test))
	}
	profile := d.Profile(test)

	// Every injection plan runs at the workload's *profile* seeds (the
	// same salt the profile cache uses): each injected run is then an
	// exact counterfactual twin of a cached profile run -- same workload,
	// same seed, only the fault differs -- which both sharpens FCA's
	// profile-vs-injection diff and is the precondition for prefix
	// sharing (an injected run is byte-identical to its profile twin up
	// to the injection's first reach time, so it can fork from a profile
	// checkpoint instead of re-simulating the warm-up).
	var plans []inject.Plan
	var seeds [][]int64
	if pt.Kind == faults.Loop {
		for mi, mag := range d.cfg.DelayMagnitudes {
			plans = append(plans, inject.PlanFor(pt, mag))
			seeds = append(seeds, d.planSeeds(test, f, mi))
		}
	} else {
		plans = append(plans, inject.PlanFor(pt, 0))
		seeds = append(seeds, d.planSeeds(test, f, 0))
	}
	sets := d.runSets(w, plans, seeds)
	// Injection runs are consumed by FCA below (which copies out the
	// occurrence evidence it keeps); recycle them once analysed. Profile
	// runs are cached for the campaign's lifetime and never released.
	defer d.releaseSets(sets)

	if d.cancelled() {
		// Partial run sets would make FCA nondeterministic; record an
		// empty experiment so mark indices stay aligned with run records.
		d.mu.Lock()
		d.g.Mark()
		d.mu.Unlock()
		return nil
	}

	intfSet := make(map[faults.ID]bool)
	var intf []faults.ID
	newEdges := 0
	for i, plan := range plans {
		edges, add := fca.Analyze(d.space, plan, test, profile, sets[i], d.cfg.FCA)
		d.mu.Lock()
		d.g.AddAll(edges)
		d.mu.Unlock()
		d.emitEdges(edges)
		newEdges += len(edges)
		for _, id := range add {
			if !intfSet[id] {
				intfSet[id] = true
				intf = append(intf, id)
			}
		}
	}
	sort.Slice(intf, func(i, j int) bool { return intf[i] < intf[j] })
	d.mu.Lock()
	d.g.Mark()
	d.mu.Unlock()
	d.emitExperiment(f, test, newEdges, len(intf))
	return intf
}

// ExecuteWave executes one scheduled wave of experiments -- each
// internally fanning its (magnitude x rep) grid across the worker pool --
// and returns the completed run records together with the causal-graph
// delta the wave contributed: the new and evidence-extended edges plus
// the fault ids they touch. The delta is the handoff artifact of the
// anytime pipeline (incremental search, round observers); like everything
// else the driver produces, it is deterministic for a given campaign
// configuration, serial or parallel.
//
// When the driver is parallel, the wave's experiments themselves execute
// concurrently: each accumulates into a private graph.Shard (edges,
// marks, and the precomputed occurrence intern keys -- no shared lock on
// the hot path) and buffers its observer events. At wave seal the shards
// are merged into the campaign graph in wave order and the buffered
// events are replayed in the same order, so the raw edge sequence,
// intern tables, mark boundaries, OccCap evidence merges, and the
// observer/trace-export stream are all byte-identical to serial
// execution. Serial drivers run the wave entries in order via Execute,
// exactly as before.
func (d *Driver) ExecuteWave(wave []alloc.PlannedRun) ([]alloc.RunRecord, graph.Delta) {
	d.mu.Lock()
	start := d.g.RawLen()
	d.mu.Unlock()
	recs := make([]alloc.RunRecord, len(wave))
	if d.sem == nil || len(wave) <= 1 {
		for i, pr := range wave {
			recs[i] = alloc.RunRecord{
				Fault: pr.Fault, Test: pr.Test, Phase: pr.Phase,
				Intf: d.Execute(pr.Fault, pr.Test),
			}
		}
		d.mu.Lock()
		delta := d.g.DeltaSince(start)
		d.mu.Unlock()
		return recs, delta
	}
	results := make([]*waveResult, len(wave))
	d.each(len(wave), func(i int) {
		results[i] = d.executeShard(wave[i].Fault, wave[i].Test)
	})
	d.mu.Lock()
	for _, res := range results {
		d.g.MergeShard(&res.shard)
	}
	delta := d.g.DeltaSince(start)
	d.mu.Unlock()
	for i, pr := range wave {
		recs[i] = alloc.RunRecord{
			Fault: pr.Fault, Test: pr.Test, Phase: pr.Phase,
			Intf: results[i].intf,
		}
		d.emitWaveResult(results[i])
	}
	return recs, delta
}

// waveResult is one experiment's buffered outcome inside a parallel
// wave: the private edge shard plus the observer events to replay --
// in wave order, after the shard merge -- at wave seal.
type waveResult struct {
	fault faults.ID
	test  string
	intf  []faults.ID
	shard graph.Shard
	// edges holds the per-plan FCA edge batches in analysis order;
	// executed is false for experiments skipped after cancellation
	// (their empty mark still merges, but no events are emitted).
	edges    [][]fca.Edge
	executed bool
}

// executeShard is Execute's parallel-wave twin: the same run sets, FCA
// analysis, and interference collection, but edges and the experiment
// mark accumulate into a private shard (with occurrence intern keys
// precomputed off-lock) and observer events are buffered instead of
// emitted. The caller merges the shard and replays the events in
// deterministic wave order.
func (d *Driver) executeShard(f faults.ID, test string) *waveResult {
	res := &waveResult{fault: f, test: test}
	pt, ok := d.space.Lookup(f)
	if !ok {
		// Mirror Execute: unknown faults run nothing and leave no mark.
		return res
	}
	w, wok := d.workloads[test]
	if !wok {
		panic(fmt.Sprintf("harness: unknown workload %q", test))
	}
	profile := d.Profile(test)

	var plans []inject.Plan
	var seeds [][]int64
	if pt.Kind == faults.Loop {
		for mi, mag := range d.cfg.DelayMagnitudes {
			plans = append(plans, inject.PlanFor(pt, mag))
			seeds = append(seeds, d.planSeeds(test, f, mi))
		}
	} else {
		plans = append(plans, inject.PlanFor(pt, 0))
		seeds = append(seeds, d.planSeeds(test, f, 0))
	}
	sets := d.runSets(w, plans, seeds)
	defer d.releaseSets(sets)

	if d.cancelled() {
		res.shard.Mark()
		return res
	}

	intfSet := make(map[faults.ID]bool)
	for i, plan := range plans {
		edges, add := fca.Analyze(d.space, plan, test, profile, sets[i], d.cfg.FCA)
		res.shard.AddAll(edges)
		res.edges = append(res.edges, edges)
		for _, id := range add {
			if !intfSet[id] {
				intfSet[id] = true
				res.intf = append(res.intf, id)
			}
		}
	}
	sort.Slice(res.intf, func(i, j int) bool { return res.intf[i] < res.intf[j] })
	res.shard.Mark()
	res.executed = true
	return res
}

// emitWaveResult replays one experiment's buffered observer events under
// a single emitMu acquisition (the serial path takes it once per edge
// batch plus once per experiment): per-edge discoveries in analysis
// order, then the experiment summary. Event order across the wave equals
// the serial emission order, so trace exports stay byte-identical.
func (d *Driver) emitWaveResult(res *waveResult) {
	if !res.executed {
		return
	}
	d.emitMu.Lock()
	defer d.emitMu.Unlock()
	if d.obs == nil {
		return
	}
	newEdges := 0
	for _, batch := range res.edges {
		for _, e := range batch {
			d.obs.EdgeDiscovered(e)
		}
		newEdges += len(batch)
	}
	d.obs.ExperimentExecuted(res.fault, res.test, newEdges, len(res.intf))
}

// AdoptGraph replaces the driver's pristine accumulated graph with g --
// the entry point for resuming a checkpointed campaign, where g is the
// round-sealed graph restored from persistence. It refuses to discard
// dynamic edges already accumulated (resume must install the graph
// before any Execute call) and to adopt a graph from a different
// system. The restored graph carries no experiment Marks, so per-phase
// prefix attribution is unavailable after a resume; everything else
// (edge intern order, evidence, DeltaSince) continues exactly where the
// checkpointed campaign left off.
func (d *Driver) AdoptGraph(g *graph.Graph) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.g.RawLen() != 0 {
		return fmt.Errorf("harness: AdoptGraph after %d dynamic edges accumulated", d.g.RawLen())
	}
	if g.System() != d.sys.Name() {
		return fmt.Errorf("harness: adopting graph for system %q into driver for %q", g.System(), d.sys.Name())
	}
	d.g = g
	return nil
}

// OffsetSims advances the simulation counter by n without running
// anything, so a resumed campaign reports cumulative SimCount across the
// interruption. n must be non-negative.
func (d *Driver) OffsetSims(n int) error {
	if n < 0 {
		return fmt.Errorf("harness: negative sim offset %d", n)
	}
	d.sims.Add(int64(n))
	return nil
}

// Marks returns the cumulative raw dynamic-edge count after each Execute
// call, in call order. Combined with the allocation's run records this
// attributes every edge to the experiment (and hence 3PA phase) that
// discovered it.
func (d *Driver) Marks() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.g.Marks()
}

// Graph returns a sealed snapshot of the full causal graph accumulated so
// far (dynamic edges plus the static ICFG/CFG loop edges): the indexed,
// serializable artifact the beam search, report tables, and cross-
// campaign stitching consume. The live graph's search index is refreshed
// (delta-aware) before snapshotting, so successive snapshots of a round-
// based campaign share incrementally-maintained indexes instead of each
// rebuilding one from scratch.
func (d *Driver) Graph() *graph.Graph {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.g.Index()
	return d.g.Snapshot()
}

// GraphUpTo returns a sealed prefix snapshot covering the first n Execute
// calls plus the static loop edges; n >= the number of experiments yields
// the full graph. Snapshots reuse the interned edge records -- no raw
// stream is replayed and no state keys are recomputed.
func (d *Driver) GraphUpTo(n int) *graph.Graph {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.g.Prefix(n)
}

// EdgesUpTo returns the dynamic edges discovered by the first n Execute
// calls plus the static loop edges, deduplicated (materialized from the
// graph prefix snapshot; identical to the legacy copy-and-rededup result).
func (d *Driver) EdgesUpTo(n int) []fca.Edge {
	return d.GraphUpTo(n).Edges()
}

// Edges returns the deduplicated causal edge set discovered so far,
// including the static ICFG/CFG loop edges.
func (d *Driver) Edges() []fca.Edge {
	return d.Graph().Edges()
}

// saltOf derives a stable per-(test,fault) seed salt. The FNV-1a hash
// accumulates in uint64 and reduces from there: the previous int64
// accumulate-negate-mod dance mapped a hash of math.MinInt64 back onto
// itself (negation overflow), producing a negative salt. Note that
// uint64(h) % p differs from the old |h| % p whenever the hash's top bit
// is set (roughly half of all inputs), so all run seeds -- and hence the
// exact edge sets of campaigns replayed from before this change -- moved;
// within any one build, campaigns remain fully reproducible.
// seedPoolSize is the per-workload seed pool width as a multiple of
// cfg.Reps. All plans of a workload draw their rep seeds from one pool
// of seedPoolSize*Reps seeds (rotated by fault and magnitude), so many
// injected runs share each (workload, seed) pair -- the precondition
// for prefix sharing -- while each experiment still sees a
// fault-and-magnitude-dependent seed subset (detection quality degrades
// measurably when all experiments are forced onto one shared subset).
const seedPoolSize = 6

// planSeeds returns the cfg.Reps run seeds for one plan of the (test,
// fault) experiment; mi is the magnitude index (0 for non-loop plans).
// Seeds are drawn from the workload's shared seed pool -- the same
// arithmetic family the profile set occupies (pool indices 0..Reps-1
// are exactly the profile seeds) -- with a rotation start derived from
// the fault id and magnitude.
func (d *Driver) planSeeds(test string, f faults.ID, mi int) []int64 {
	pool := seedPoolSize * d.cfg.Reps
	start := int((saltOf(test, string(f)) + int64(mi)*7919) % int64(pool))
	salt := saltOf(test, "")
	out := make([]int64, d.cfg.Reps)
	for ri := range out {
		out[ri] = d.cfg.BaseSeed + salt*1_000_003 + int64((start+ri)%pool)
	}
	return out
}

func saltOf(test, fault string) int64 {
	h := uint64(1469598103934665603)
	for _, s := range []string{test, fault} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return int64(h % 1_000_000_007)
}
