package harness

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/core/alloc"
	"repro/internal/core/fca"
	"repro/internal/faults"
	"repro/internal/systems/dfs"
	"repro/internal/systems/sysreg"
)

func lightDriver(t *testing.T) *Driver {
	t.Helper()
	return lightDriverParallel(t, 1)
}

func lightDriverParallel(t *testing.T, parallelism int) *Driver {
	t.Helper()
	sys := dfs.NewV2()
	return New(sys, sysreg.Space(sys), Config{
		Reps: 2,
		// With only two reps and one magnitude the fixture is seed-marginal:
		// BaseSeed is pinned to a value whose plan seeds provoke the storm.
		BaseSeed:        2,
		DelayMagnitudes: []time.Duration{2 * time.Second},
		Parallelism:     parallelism,
	})
}

func TestProfileIsCached(t *testing.T) {
	d := lightDriver(t)
	a := d.Profile("basic_write")
	sims := d.SimCount()
	b := d.Profile("basic_write")
	if a != b {
		t.Fatal("profile set not cached")
	}
	if d.SimCount() != sims {
		t.Fatal("cached profile re-ran simulations")
	}
}

func TestTestsForUsesCoverage(t *testing.T) {
	d := lightDriver(t)
	tests := d.TestsFor(dfs.PtDNIBRRPCIOE)
	if len(tests) == 0 {
		t.Fatal("no covering tests for a core fault")
	}
	for _, ti := range tests {
		if ti.Coverage <= 0 {
			t.Fatalf("coverage = %d for %s", ti.Coverage, ti.Name)
		}
	}
	// The recovery-worker fault is only reachable in lease-recovery
	// workloads.
	rec := d.TestsFor(dfs.PtDNRecoveryIOE)
	for _, ti := range rec {
		switch ti.Name {
		case "lease_storm", "pipeline_recovery", "recovery_deadline", "write_retry":
		default:
			t.Errorf("unexpected covering test %q for recovery fault", ti.Name)
		}
	}
}

// TestTestsForUsesSharedCoverageCache pins the satellite fix: repeated
// coverage lookups mid-allocation must neither re-run profile simulations
// nor recompute anything -- once the cache is warm the sim counter stays
// put.
func TestTestsForUsesSharedCoverageCache(t *testing.T) {
	d := lightDriver(t)
	first := d.TestsFor(dfs.PtDNIBRRPCIOE)
	warm := d.SimCount()
	second := d.TestsFor(dfs.PtDNIBRRPCIOE)
	if d.SimCount() != warm {
		t.Fatalf("TestsFor re-ran simulations: %d -> %d", warm, d.SimCount())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("coverage lookup unstable: %v vs %v", first, second)
	}
}

func TestExecuteAccumulatesEdgesAndMarks(t *testing.T) {
	d := lightDriver(t)
	d.Execute(dfs.PtNNIBRProcessLoop, "ibr_storm")
	marks := d.Marks()
	if len(marks) != 1 {
		t.Fatalf("marks = %v", marks)
	}
	if marks[0] == 0 {
		t.Fatal("no edges recorded for a storm-producing injection")
	}
	edges := d.EdgesUpTo(1)
	if len(edges) == 0 {
		t.Fatal("EdgesUpTo(1) empty")
	}
	if got := d.EdgesUpTo(0); len(got) >= len(edges) {
		t.Fatalf("EdgesUpTo(0) = %d edges, want only static ones (< %d)", len(got), len(edges))
	}
}

// TestParallelExecuteMatchesSerial checks the driver's core guarantee:
// fanning the (magnitude x rep) grid across a pool changes nothing about
// the discovered edges or interference sets.
func TestParallelExecuteMatchesSerial(t *testing.T) {
	serial := lightDriverParallel(t, 1)
	parallel := lightDriverParallel(t, 8)
	for _, d := range []*Driver{serial, parallel} {
		d.Execute(dfs.PtNNIBRProcessLoop, "ibr_storm")
		d.Execute(dfs.PtDNIBRRPCIOE, "ibr_interval")
	}
	if !reflect.DeepEqual(serial.Edges(), parallel.Edges()) {
		t.Fatalf("edge sets diverge:\nserial:   %v\nparallel: %v", serial.Edges(), parallel.Edges())
	}
	if !reflect.DeepEqual(serial.Marks(), parallel.Marks()) {
		t.Fatalf("marks diverge: %v vs %v", serial.Marks(), parallel.Marks())
	}
	if serial.SimCount() != parallel.SimCount() {
		t.Fatalf("sim counts diverge: %d vs %d", serial.SimCount(), parallel.SimCount())
	}
}

// TestExecuteWaveMatchesSerialExecutes: a wave-driven driver accumulates
// exactly the graph a call-by-call one does, and the published delta
// names the wave's edges and faults.
func TestExecuteWaveMatchesSerialExecutes(t *testing.T) {
	wave := []alloc.PlannedRun{
		{Fault: dfs.PtNNIBRProcessLoop, Test: "ibr_storm", Phase: alloc.Phase1},
		{Fault: dfs.PtDNIBRRPCIOE, Test: "ibr_interval", Phase: alloc.Phase1},
	}

	ref := lightDriver(t)
	var refIntf [][]faults.ID
	for _, pr := range wave {
		refIntf = append(refIntf, ref.Execute(pr.Fault, pr.Test))
	}

	d := lightDriver(t)
	recs, delta := d.ExecuteWave(wave)
	if len(recs) != len(wave) {
		t.Fatalf("records = %d, want %d", len(recs), len(wave))
	}
	for i, r := range recs {
		if r.Fault != wave[i].Fault || r.Test != wave[i].Test || r.Phase != wave[i].Phase {
			t.Fatalf("record %d = %+v, want plan %+v", i, r, wave[i])
		}
		if !reflect.DeepEqual(r.Intf, refIntf[i]) {
			t.Fatalf("record %d interference diverges from serial Execute", i)
		}
	}
	if !reflect.DeepEqual(d.Edges(), ref.Edges()) {
		t.Fatal("wave-driven edge set diverges from serial Executes")
	}
	if !reflect.DeepEqual(d.Marks(), ref.Marks()) {
		t.Fatal("wave-driven marks diverge from serial Executes")
	}

	if delta.FromSeq != 0 || delta.ToSeq != d.Graph().RawLen() {
		t.Fatalf("delta window [%d, %d) does not span the wave", delta.FromSeq, delta.ToSeq)
	}
	if delta.New == 0 || len(delta.Edges) == 0 || len(delta.Faults) == 0 {
		t.Fatalf("empty delta for an edge-producing wave: %+v", delta)
	}

	// A second wave's delta covers only its own window.
	recs2, delta2 := d.ExecuteWave(wave[:0])
	if len(recs2) != 0 || !delta2.Empty() {
		t.Fatalf("empty wave produced work: %v %+v", recs2, delta2)
	}
}

// TestCancelledDriverStopsSimulating checks that a cancelled context makes
// Execute a cheap no-op that still keeps mark bookkeeping aligned.
func TestCancelledDriverStopsSimulating(t *testing.T) {
	d := lightDriver(t)
	ctx, cancel := context.WithCancel(context.Background())
	d.Bind(ctx)
	d.Execute(dfs.PtNNIBRProcessLoop, "ibr_storm")
	sims := d.SimCount()
	cancel()
	if got := d.Execute(dfs.PtDNIBRRPCIOE, "ibr_interval"); got != nil {
		t.Fatalf("cancelled Execute returned interference %v", got)
	}
	if d.SimCount() != sims {
		t.Fatalf("cancelled Execute ran %d simulations", d.SimCount()-sims)
	}
	if marks := d.Marks(); len(marks) != 2 {
		t.Fatalf("marks not aligned with Execute calls: %v", marks)
	}
}

func TestOverheadSampleMeasuresBothModes(t *testing.T) {
	d := lightDriver(t)
	inst, bare := d.OverheadSample("quiet_baseline", 3)
	if inst <= 0 || bare <= 0 {
		t.Fatalf("inst=%v bare=%v", inst, bare)
	}
}

func TestUnknownWorkloadPanics(t *testing.T) {
	d := lightDriver(t)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for unknown workload")
		}
	}()
	d.Profile("nope")
}

func TestFanOutCoversAllIndices(t *testing.T) {
	for _, par := range []int{0, 1, 3, 16} {
		hits := make([]int, 40)
		FanOut(par, len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", par, i, h)
			}
		}
	}
}

// legacyRecorder replays the seed-era edge accounting: it collects the
// raw (pre-dedup) dynamic edge stream through the observer, so tests can
// recompute what the legacy copy-and-rededup EdgesUpTo produced.
type legacyRecorder struct {
	raw []fca.Edge
}

func (r *legacyRecorder) ProfileCached(string, int)                      {}
func (r *legacyRecorder) ExperimentExecuted(faults.ID, string, int, int) {}
func (r *legacyRecorder) EdgeDiscovered(e fca.Edge)                      { r.raw = append(r.raw, e) }

// TestEdgesUpToMatchesSeedSemantics pins the graph-backed prefix
// snapshots against the seed semantics on a real campaign slice: for
// every experiment count n, EdgesUpTo(n) must equal
// Dedup(raw[:marks[n-1]] ++ StaticLoopEdges), the legacy formula.
func TestEdgesUpToMatchesSeedSemantics(t *testing.T) {
	sys := dfs.NewV2()
	space := sysreg.Space(sys)
	d := New(sys, space, Config{
		Reps: 2, DelayMagnitudes: []time.Duration{2 * time.Second}})
	rec := &legacyRecorder{}
	d.Observe(rec)
	d.Execute(dfs.PtNNIBRProcessLoop, "ibr_storm")
	d.Execute(dfs.PtDNIBRRPCIOE, "ibr_interval")
	d.Execute(dfs.PtDNIBRRPCIOE, "ibr_storm")
	marks := d.Marks()
	if len(marks) != 3 {
		t.Fatalf("marks = %v", marks)
	}
	if marks[len(marks)-1] != len(rec.raw) {
		t.Fatalf("observer saw %d raw edges, marks end at %d", len(rec.raw), marks[len(marks)-1])
	}
	static := fca.StaticLoopEdges(space)
	for n := 0; n <= len(marks); n++ {
		cut := 0
		if n > 0 {
			cut = marks[n-1]
		}
		want := fca.Dedup(append(append([]fca.Edge(nil), rec.raw[:cut]...), static...))
		got := d.EdgesUpTo(n)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("EdgesUpTo(%d) diverges from seed semantics: got %d edges, want %d\ngot:  %v\nwant: %v",
				n, len(got), len(want), got, want)
		}
		if g := d.GraphUpTo(n); !reflect.DeepEqual(g.Edges(), want) {
			t.Fatalf("GraphUpTo(%d).Edges() diverges: %v", n, g.Edges())
		}
	}
}

// TestSaltOfNonNegative pins the uint64 hardening: salts are always in
// [0, 1e9+7) regardless of input.
func TestSaltOfNonNegative(t *testing.T) {
	inputs := [][2]string{
		{"", ""}, {"a", "b"}, {"ibr_storm", "dfs.dn.ibr.rpc_ioe"},
		{"\xff\xfe", "\x00"}, {"long", "longer-still-longer"},
	}
	for _, in := range inputs {
		s := saltOf(in[0], in[1])
		if s < 0 || s >= 1_000_000_007 {
			t.Errorf("saltOf(%q, %q) = %d, out of range", in[0], in[1], s)
		}
	}
}
