package harness

import (
	"testing"
	"time"

	"repro/internal/systems/dfs"
	"repro/internal/systems/sysreg"
)

func lightDriver(t *testing.T) *Driver {
	t.Helper()
	sys := dfs.NewV2()
	return New(sys, sysreg.Space(sys), Config{
		Reps:            2,
		DelayMagnitudes: []time.Duration{2 * time.Second},
	})
}

func TestProfileIsCached(t *testing.T) {
	d := lightDriver(t)
	a := d.Profile("basic_write")
	sims := d.Sims
	b := d.Profile("basic_write")
	if a != b {
		t.Fatal("profile set not cached")
	}
	if d.Sims != sims {
		t.Fatal("cached profile re-ran simulations")
	}
}

func TestTestsForUsesCoverage(t *testing.T) {
	d := lightDriver(t)
	tests := d.TestsFor(dfs.PtDNIBRRPCIOE)
	if len(tests) == 0 {
		t.Fatal("no covering tests for a core fault")
	}
	for _, ti := range tests {
		if ti.Coverage <= 0 {
			t.Fatalf("coverage = %d for %s", ti.Coverage, ti.Name)
		}
	}
	// The recovery-worker fault is only reachable in lease-recovery
	// workloads.
	rec := d.TestsFor(dfs.PtDNRecoveryIOE)
	for _, ti := range rec {
		switch ti.Name {
		case "lease_storm", "pipeline_recovery", "recovery_deadline", "write_retry":
		default:
			t.Errorf("unexpected covering test %q for recovery fault", ti.Name)
		}
	}
}

func TestExecuteAccumulatesEdgesAndMarks(t *testing.T) {
	d := lightDriver(t)
	d.Execute(dfs.PtNNIBRProcessLoop, "ibr_storm")
	marks := d.Marks()
	if len(marks) != 1 {
		t.Fatalf("marks = %v", marks)
	}
	if marks[0] == 0 {
		t.Fatal("no edges recorded for a storm-producing injection")
	}
	edges := d.EdgesUpTo(1)
	if len(edges) == 0 {
		t.Fatal("EdgesUpTo(1) empty")
	}
	if got := d.EdgesUpTo(0); len(got) >= len(edges) {
		t.Fatalf("EdgesUpTo(0) = %d edges, want only static ones (< %d)", len(got), len(edges))
	}
}

func TestOverheadSampleMeasuresBothModes(t *testing.T) {
	d := lightDriver(t)
	inst, bare := d.OverheadSample("quiet_baseline", 3)
	if inst <= 0 || bare <= 0 {
		t.Fatalf("inst=%v bare=%v", inst, bare)
	}
}

func TestUnknownWorkloadPanics(t *testing.T) {
	d := lightDriver(t)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for unknown workload")
		}
	}()
	d.Profile("nope")
}
