package harness

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/metastore"
	"repro/internal/systems/sysreg"
)

func entryFor(test string, seed int64) *prefixEntry {
	return &prefixEntry{key: ckKey{test: test, seed: seed}}
}

func TestCkptCacheEvictsLRU(t *testing.T) {
	c := newCkptCache(100)
	a, b, cc := entryFor("a", 1), entryFor("b", 1), entryFor("c", 1)
	if v := c.update(a, 40); v != nil {
		t.Fatalf("a evicted %v on insert", v)
	}
	if v := c.update(b, 40); v != nil {
		t.Fatalf("b evicted %v on insert", v)
	}
	// Touch a so b becomes least recently used; inserting 40 more bytes
	// must then evict b (and only b).
	c.update(a, 40)
	victims := c.update(cc, 40)
	if len(victims) != 1 || victims[0] != b {
		t.Fatalf("victims = %v, want [b]", victims)
	}
	bytes, evictions := c.usage()
	if bytes != 80 || evictions != 1 {
		t.Fatalf("usage = (%d, %d), want (80, 1)", bytes, evictions)
	}
}

func TestCkptCacheEvictsOversizedEntry(t *testing.T) {
	c := newCkptCache(100)
	a, big := entryFor("a", 1), entryFor("big", 1)
	c.update(a, 60)
	victims := c.update(big, 500)
	// Everything must go: a by LRU order, then big itself, since it alone
	// exceeds the bound.
	if len(victims) != 2 || victims[0] != a || victims[1] != big {
		t.Fatalf("victims = %v, want [a big]", victims)
	}
	if bytes, _ := c.usage(); bytes != 0 {
		t.Fatalf("bytes = %d after oversized insert, want 0", bytes)
	}
}

func TestCkptCacheGrowsSameKey(t *testing.T) {
	c := newCkptCache(100)
	a := entryFor("a", 1)
	c.update(a, 30)
	if v := c.update(a, 50); v != nil {
		t.Fatalf("growing a evicted %v", v)
	}
	if bytes, _ := c.usage(); bytes != 50 {
		t.Fatalf("bytes = %d after growth, want 50", bytes)
	}
	// A zero-byte update removes the entry entirely.
	c.update(a, 0)
	if bytes, _ := c.usage(); bytes != 0 {
		t.Fatalf("bytes = %d after removal, want 0", bytes)
	}
}

// checkpointableDriver builds a driver over one of the Checkpointable
// target systems, with sharing on or off.
func checkpointableDriver(t *testing.T, sys sysreg.System, parallelism int, noShare bool) *Driver {
	t.Helper()
	return New(sys, sysreg.Space(sys), Config{
		Reps:            2,
		DelayMagnitudes: []time.Duration{2 * time.Second},
		Parallelism:     parallelism,
		NoPrefixShare:   noShare,
	})
}

// TestPrefixShareMatchesScratch is the campaign-level identity check on
// both converted target systems: with prefix sharing on (the default),
// serial and parallel campaigns produce exactly the edges, marks,
// interference sets, and sim counts of a sharing-off campaign.
func TestPrefixShareMatchesScratch(t *testing.T) {
	cases := []struct {
		name string
		sys  sysreg.System
		work []struct {
			f    faults.ID
			test string
		}
	}{
		{
			name: "metastore",
			sys:  metastore.New(),
			work: []struct {
				f    faults.ID
				test string
			}{
				{metastore.PtElectionLoop, "leader_transfer"},
				{metastore.PtHBFresh, "slow_follower_catchup"},
			},
		},
		{
			name: "kvstore",
			sys:  kvstore.New(),
			work: []struct {
				f    faults.ID
				test string
			}{
				// flush_loop first fires ~2s in while both workloads have
				// quiescent instants well before that, so forks happen; the
				// storm pair exercises the always-busy fallback path.
				{kvstore.PtFlushLoop, "basic_put"},
				{kvstore.PtFlushLoop, "wal_quiet"},
				{kvstore.PtDeployLoop, "create_clone_storm"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scratch := checkpointableDriver(t, tc.sys, 1, true)
			shared := checkpointableDriver(t, tc.sys, 1, false)
			sharedPar := checkpointableDriver(t, tc.sys, 8, false)

			var scratchIntf, sharedIntf [][]faults.ID
			for _, wk := range tc.work {
				scratchIntf = append(scratchIntf, scratch.Execute(wk.f, wk.test))
				sharedIntf = append(sharedIntf, shared.Execute(wk.f, wk.test))
				sharedPar.Execute(wk.f, wk.test)
			}
			if !reflect.DeepEqual(sharedIntf, scratchIntf) {
				t.Errorf("interference sets diverge:\nshared:  %v\nscratch: %v", sharedIntf, scratchIntf)
			}
			for _, d := range []*Driver{shared, sharedPar} {
				if !reflect.DeepEqual(d.Edges(), scratch.Edges()) {
					t.Errorf("edges diverge:\nshared:  %v\nscratch: %v", d.Edges(), scratch.Edges())
				}
				if !reflect.DeepEqual(d.Marks(), scratch.Marks()) {
					t.Errorf("marks diverge: %v vs %v", d.Marks(), scratch.Marks())
				}
				if d.SimCount() != scratch.SimCount() {
					t.Errorf("sim counts diverge: shared %d vs scratch %d", d.SimCount(), scratch.SimCount())
				}
			}

			// The sharing driver must actually have shared something, and
			// the scratch driver must not have touched the machinery.
			st := shared.CheckpointStats()
			if st.Avoided() == 0 {
				t.Errorf("sharing driver avoided no simulations: %+v", st)
			}
			if st.PrefixRuns == 0 {
				t.Errorf("sharing driver built no prefixes: %+v", st)
			}
			if off := scratch.CheckpointStats(); off != (CheckpointStats{}) {
				t.Errorf("scratch driver has prefix activity: %+v", off)
			}
		})
	}
}

// TestPrefixShareFallsBackUnderTinyCache: a cache too small to hold any
// probe set degrades to clones and misses but never changes results.
func TestPrefixShareFallsBackUnderTinyCache(t *testing.T) {
	sys := metastore.New()
	scratch := checkpointableDriver(t, sys, 1, true)
	tiny := New(sys, sysreg.Space(sys), Config{
		Reps:            2,
		DelayMagnitudes: []time.Duration{2 * time.Second},
		CheckpointBytes: 1, // every probe set is immediately evicted
	})
	scratch.Execute(metastore.PtElectionLoop, "leader_transfer")
	tiny.Execute(metastore.PtElectionLoop, "leader_transfer")
	if !reflect.DeepEqual(tiny.Edges(), scratch.Edges()) {
		t.Fatalf("edges diverge under eviction pressure:\ntiny:    %v\nscratch: %v", tiny.Edges(), scratch.Edges())
	}
	st := tiny.CheckpointStats()
	if st.Hits != 0 {
		t.Errorf("tiny cache recorded %d fork hits", st.Hits)
	}
	if st.Evictions == 0 {
		t.Errorf("tiny cache evicted nothing: %+v", st)
	}
	if st.BytesHeld != 0 {
		t.Errorf("tiny cache holds %d bytes", st.BytesHeld)
	}
}
