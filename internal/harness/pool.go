// This file holds the cross-campaign simulation budget: a TokenPool is a
// counting semaphore several Drivers draw from, so a service running many
// campaigns concurrently can bound the *total* number of in-flight
// simulated runs independently of each campaign's own parallelism. It
// also holds the driver's teardown hook (Release), which returns the
// pooled traces a finished or cancelled campaign still retains.

package harness

import "context"

// TokenPool is a shared simulation-concurrency budget. Every simulated
// run of a Driver whose Config.Pool is set must hold one token for the
// duration of the run, in addition to the driver's own worker slot
// (Config.Parallelism), so N campaigns sharing one pool never execute
// more than the pool's capacity of runs at once in total.
//
// Sharing a pool affects only scheduling, never results: the driver
// merges run results in deterministic (plan, seed-index) order, so a
// campaign squeezed through a shared pool stays byte-identical to the
// same campaign running alone.
type TokenPool struct {
	ch chan struct{}
}

// NewTokenPool returns a pool of n tokens; n < 1 is treated as 1.
func NewTokenPool(n int) *TokenPool {
	if n < 1 {
		n = 1
	}
	return &TokenPool{ch: make(chan struct{}, n)}
}

// Cap returns the pool's capacity.
func (p *TokenPool) Cap() int { return cap(p.ch) }

// InUse returns the number of tokens currently held (a metrics gauge;
// instantaneous, may be stale by the time it is read).
func (p *TokenPool) InUse() int { return len(p.ch) }

// Acquire takes a token, blocking until one is free or ctx is done; it
// reports whether the token was acquired. A false return means the
// caller's campaign is being torn down and must not simulate.
func (p *TokenPool) Acquire(ctx context.Context) bool {
	select {
	case p.ch <- struct{}{}:
		return true
	default:
	}
	select {
	case p.ch <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// Release returns a token taken by Acquire.
func (p *TokenPool) Release() { <-p.ch }

// Release returns every pooled trace the driver still holds -- the
// cached profile run sets -- to its run pool and drops the profile
// cache. Call it once the campaign is torn down (finished or cancelled)
// and the driver will execute no further runs: FCA copies the occurrence
// evidence it keeps, so the accumulated graph and every read accessor
// over it (Graph, GraphUpTo, Marks, Edges) stay valid. Idempotent; a
// long-running service calls it after each job so retired campaigns do
// not pin trace state until the whole driver is collected.
func (d *Driver) Release() {
	d.mu.Lock()
	entries := d.profiles
	d.profiles = make(map[string]*profileEntry)
	d.mu.Unlock()
	for _, e := range entries {
		// Wait out an in-flight first computation (the once gate) so the
		// drain cannot race a profile run still being assembled.
		e.once.Do(func() {})
		if e.set == nil {
			continue
		}
		for _, r := range e.set.Runs {
			d.pool.Put(r)
		}
		e.set.Runs = nil
	}

	// Tear down the prefix-sharing layer too: close every live prefix
	// engine and release its probe footprint.
	d.mu.Lock()
	prefixes := d.prefixes
	d.prefixes = make(map[ckKey]*prefixEntry)
	d.mu.Unlock()
	for _, pe := range prefixes {
		pe.drop(d)
	}
	d.ckc.reset()
}

// ProfileRunsHeld counts the pooled trace runs currently retained by the
// profile cache (zero after Release). Exposed for teardown tests and
// service metrics.
func (d *Driver) ProfileRunsHeld() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, e := range d.profiles {
		if e.set != nil {
			n += len(e.set.Runs)
		}
	}
	return n
}
