// This file is the observability surface: a Prometheus-style text
// exposition at /metrics (hand-rolled -- no client library dependency)
// and a JSON liveness summary at /healthz.

package service

import (
	"fmt"
	"net/http"
	"time"
)

// Metrics is a point-in-time snapshot of the service counters.
type Metrics struct {
	JobsRunning   int   `json:"jobsRunning"`
	JobsQueued    int   `json:"jobsQueued"`
	JobsSucceeded int   `json:"jobsSucceeded"`
	JobsFailed    int   `json:"jobsFailed"`
	JobsCancelled int   `json:"jobsCancelled"`
	PoolCapacity  int   `json:"poolCapacity"`
	PoolInUse     int   `json:"poolInUse"`
	SimsTotal     int64 `json:"simsTotal"`
	RoundsTotal   int64 `json:"roundsTotal"`
	// Prefix-sharing counters, summed over finished jobs: full
	// simulations avoided by forking from checkpoints (hits) or cloning
	// cached profile runs (clones), versus fallbacks to scratch (misses).
	PrefixRunsTotal   int64 `json:"prefixRunsTotal"`
	PrefixHitsTotal   int64 `json:"prefixHitsTotal"`
	PrefixClonesTotal int64 `json:"prefixClonesTotal"`
	PrefixMissesTotal int64 `json:"prefixMissesTotal"`
	// Self-healing counters: failed attempts retried, jobs resumed from
	// the journal after a daemon restart, campaign panics contained by
	// the crash-isolation barrier, and submissions rejected by admission
	// control (queue full or load shed).
	JobsRetried       int64 `json:"jobsRetried"`
	JobsResumed       int64 `json:"jobsResumed"`
	JobsPanics        int64 `json:"jobsPanics"`
	AdmissionRejected int64 `json:"admissionRejected"`
	GraphsStored      int   `json:"graphsStored"`
	UptimeSeconds     int64 `json:"uptimeSeconds"`
	// Online-monitor counters: live instances plus lifetime ingest totals
	// (records parsed, malformed/oversized lines skipped, alerts fired --
	// deleted monitors included).
	MonitorsActive      int   `json:"monitorsActive"`
	MonitorRecordsTotal int64 `json:"monitorRecordsTotal"`
	MonitorSkippedTotal int64 `json:"monitorSkippedTotal"`
	MonitorAlertsTotal  int64 `json:"monitorAlertsTotal"`
}

// Snapshot collects the current metrics.
func (m *Manager) Snapshot() Metrics {
	m.mu.Lock()
	s := Metrics{
		JobsRunning:       m.running,
		JobsQueued:        len(m.queue),
		JobsSucceeded:     m.succeeded,
		JobsFailed:        m.failed,
		JobsCancelled:     m.cancelled,
		SimsTotal:         m.simsTotal,
		RoundsTotal:       m.roundsTotal,
		PrefixRunsTotal:   m.prefix.PrefixRuns,
		PrefixHitsTotal:   m.prefix.Hits,
		PrefixClonesTotal: m.prefix.Clones,
		PrefixMissesTotal: m.prefix.Misses,
		JobsRetried:       m.retries,
		JobsResumed:       m.resumed,
		JobsPanics:        m.panics,
		AdmissionRejected: m.admissionRejected,
	}
	m.mu.Unlock()
	s.PoolCapacity = m.pool.Cap()
	s.PoolInUse = m.pool.InUse()
	s.GraphsStored = m.store.Len()
	s.UptimeSeconds = int64(time.Since(m.start).Seconds())
	m.monMu.Lock()
	s.MonitorsActive = len(m.mons)
	m.monMu.Unlock()
	s.MonitorRecordsTotal = m.monRecords.Load()
	s.MonitorSkippedTotal = m.monSkipped.Load()
	s.MonitorAlertsTotal = m.monAlerts.Load()
	return s
}

func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s := m.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	lines := []struct {
		name, help string
		value      int64
	}{
		{"csnaked_jobs_running", "Campaign jobs currently executing.", int64(s.JobsRunning)},
		{"csnaked_jobs_queued", "Campaign jobs waiting for a run slot.", int64(s.JobsQueued)},
		{"csnaked_jobs_succeeded_total", "Campaign jobs finished successfully.", int64(s.JobsSucceeded)},
		{"csnaked_jobs_failed_total", "Campaign jobs finished in error.", int64(s.JobsFailed)},
		{"csnaked_jobs_cancelled_total", "Campaign jobs cancelled.", int64(s.JobsCancelled)},
		{"csnaked_pool_capacity", "Shared simulation worker tokens.", int64(s.PoolCapacity)},
		{"csnaked_pool_inuse", "Shared worker tokens currently held.", int64(s.PoolInUse)},
		{"csnaked_sims_total", "Simulated executions across finished jobs.", s.SimsTotal},
		{"csnaked_rounds_total", "Anytime rounds completed across all jobs.", s.RoundsTotal},
		{"csnaked_prefix_runs_total", "Prefix engines started for checkpoint sharing.", s.PrefixRunsTotal},
		{"csnaked_prefix_hits_total", "Injected runs forked from a prefix checkpoint.", s.PrefixHitsTotal},
		{"csnaked_prefix_clones_total", "Injected runs cloned from cached profile runs.", s.PrefixClonesTotal},
		{"csnaked_prefix_misses_total", "Injected runs that fell back to scratch simulation.", s.PrefixMissesTotal},
		{"csnaked_jobs_retries_total", "Failed attempts retried with backoff.", s.JobsRetried},
		{"csnaked_jobs_resumed_total", "Jobs recovered from the journal after a restart.", s.JobsResumed},
		{"csnaked_jobs_panics_total", "Campaign panics contained by the crash-isolation barrier.", s.JobsPanics},
		{"csnaked_admission_rejected_total", "Submissions rejected by admission control.", s.AdmissionRejected},
		{"csnaked_graphs_stored", "Graph artifacts in the store.", int64(s.GraphsStored)},
		{"csnaked_monitors_active", "Online cascade monitors currently registered.", int64(s.MonitorsActive)},
		{"csnaked_monitor_records_total", "Trace records ingested across all monitors.", s.MonitorRecordsTotal},
		{"csnaked_monitor_skipped_total", "Malformed or oversized trace lines skipped.", s.MonitorSkippedTotal},
		{"csnaked_monitor_alerts_total", "Cycle alerts fired across all monitors.", s.MonitorAlertsTotal},
		{"csnaked_uptime_seconds", "Seconds since the service started.", s.UptimeSeconds},
	}
	for _, l := range lines {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", l.name, l.help, l.name, l.name, l.value)
	}
}

func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status  string  `json:"status"`
		Metrics Metrics `json:"metrics"`
	}{Status: "ok", Metrics: m.Snapshot()})
}
