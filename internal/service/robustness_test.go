// Robustness tests: the durability layer (journal replay, torn tails,
// idempotence), crash recovery (hard kill mid-campaign, reboot,
// byte-identical resumed reports), self-healing (retries, panic stacks,
// deadlines), admission control, and graceful drain.

package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core/csnake"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
)

// svc-flaky panics on its first simulation after arming, then behaves
// exactly like svc-tiny -- a transient fault for the retry tests.
var flakyArm atomic.Int32

type flakySystem struct{ tinySystem }

func (flakySystem) Name() string { return "svc-flaky" }
func (f flakySystem) Workloads() []sysreg.Workload {
	wls := f.tinySystem.Workloads()
	out := make([]sysreg.Workload, len(wls))
	for i, wl := range wls {
		inner := wl.Run
		wl.Run = func(ctx *sysreg.RunContext) {
			ctx.Engine.Spawn("srv", "glitch", func(p *sim.Proc) {
				if flakyArm.CompareAndSwap(1, 0) {
					panic("transient glitch")
				}
			})
			inner(ctx)
		}
		out[i] = wl
	}
	return out
}

func init() {
	sysreg.Register("svc-flaky", func() sysreg.System { return flakySystem{} })
}

// isolatedReport runs spec outside the service and returns the report
// bytes a healthy job would serve -- the baseline for the crash tests.
func isolatedReport(t *testing.T, spec CampaignSpec) []byte {
	t.Helper()
	sys, opts, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := csnake.NewCampaign(sys, opts...).Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(report.NewJSON(rep, sys.Bugs()))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// servedReport fetches a finished job's report bytes from the manager.
func servedReport(t *testing.T, m *Manager, id string) []byte {
	t.Helper()
	rep, st, err := m.Report(id)
	if err != nil {
		t.Fatalf("report of %s: %v (state %s, err %q)", id, err, st.State, st.Error)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// holdAtRound arms the manager's round hook (must be called before any
// submission): the first campaign to seal round n blocks inside the
// hook and is announced on the returned channel -- deterministically
// mid-flight until release is called.
func holdAtRound(m *Manager, n int) (<-chan *Job, func()) {
	reached := make(chan *Job, 1)
	gate := make(chan struct{})
	var once sync.Once
	m.roundHook = func(j *Job, round int) {
		if round >= n {
			once.Do(func() { reached <- j })
			<-gate
		}
	}
	return reached, func() { close(gate) }
}

// --- journal ----------------------------------------------------------------

// TestJournalTornTail: a crash mid-append leaves a torn final line;
// replay returns every complete record and skips exactly the torn one.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(7)
	recs := []journalRecord{
		{T: "submit", Job: "job-1", Seq: 1, Spec: &spec, Created: time.Now().UTC()},
		{T: "state", Job: "job-1", State: StateRunning, Attempt: 1},
		{T: "round", Job: "job-1", Round: &report.JSONRound{Round: 1, Runs: 4}},
	}
	for _, rec := range recs {
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jl.close()
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"state","job":"job-1","sta`) // torn mid-write
	f.Close()

	jl2, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.close()
	got, skipped, err := jl2.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	if skipped != 1 {
		t.Fatalf("skipped %d lines, want 1 (the torn tail)", skipped)
	}
	if got[2].Round == nil || got[2].Round.Round != 1 || got[2].Round.Runs != 4 {
		t.Fatalf("round record did not round-trip: %+v", got[2])
	}
	// A fresh append after the torn tail is still replayable: the torn
	// line is skipped, not a poison pill.
	if err := jl2.append(journalRecord{T: "state", Job: "job-1", State: StateFailed}); err != nil {
		t.Fatal(err)
	}
	got, _, err = jl2.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs)+1 || got[len(got)-1].State != StateFailed {
		t.Fatalf("append after torn tail: replayed %d records", len(got))
	}
}

// TestJournalReplayIdempotent: a journal whose entire content was
// duplicated (the worst case of a crash racing compaction) replays into
// the same job table -- one job, correct terminal state, served report.
func TestJournalReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Workers: 2, MaxJobs: 1, DataDir: dir})
	spec := tinySpec(7)
	spec.WaveSize = 3
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := m.Await(st.ID); err != nil || fin.State != StateSucceeded {
		t.Fatalf("job: %v / %v", fin, err)
	}
	want := servedReport(t, m, st.ID)
	m.Close()

	// Double the journal: every record appears twice, in order.
	jpath := filepath.Join(dir, "jobs", "journal.jsonl")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, append(append([]byte(nil), data...), data...), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Config{Workers: 2, MaxJobs: 1, DataDir: dir})
	list := m2.List()
	if len(list) != 1 {
		t.Fatalf("doubled journal replayed into %d jobs, want 1", len(list))
	}
	fin, err := m2.Await(st.ID)
	if err != nil || fin.State != StateSucceeded {
		t.Fatalf("replayed job: %+v / %v", fin, err)
	}
	if got := servedReport(t, m2, st.ID); string(got) != string(want) {
		t.Fatalf("replayed report differs from the original:\n got: %s\nwant: %s", got, want)
	}
	// Fresh submissions continue the id sequence, never reusing job-1.
	st2, err := m2.Submit(tinySpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Fatalf("replayed manager reissued id %s", st.ID)
	}
	m2.Await(st2.ID)
}

// --- crash recovery ---------------------------------------------------------

// TestCrashRecoveryByteIdentical is the tentpole contract: hard-kill
// the daemon mid-campaign (journal frozen exactly as kill -9 would
// leave it), boot a fresh manager on the same data directory, and the
// recovered jobs finish with reports byte-identical to never having
// crashed. The anytime job resumes from its round checkpoint; the
// queued batch job re-runs from scratch.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	anytimeSpec := tinySpec(7)
	anytimeSpec.WaveSize = 2
	batchSpec := tinySpec(8)
	wantAnytime := isolatedReport(t, anytimeSpec)
	wantBatch := isolatedReport(t, batchSpec)

	dir := t.TempDir()
	m1 := newTestManager(t, Config{Workers: 1, MaxJobs: 1, DataDir: dir})
	// Catch the anytime job mid-flight, blocked after its second sealed
	// round, then pull the plug.
	reached, release := holdAtRound(m1, 2)
	a, err := m1.Submit(anytimeSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m1.Submit(batchSpec) // queued behind a (MaxJobs 1)
	if err != nil {
		t.Fatal(err)
	}
	<-reached
	m1.HardStop()
	release()

	// Reboot on the crashed state.
	m2 := newTestManager(t, Config{Workers: 2, MaxJobs: 2, DataDir: dir})
	snap := m2.Snapshot()
	if snap.JobsResumed < 1 {
		t.Fatalf("jobs resumed = %d, want >= 1", snap.JobsResumed)
	}
	list := m2.List()
	if len(list) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(list))
	}
	seen := map[string]bool{}
	for _, st := range list {
		if seen[st.ID] {
			t.Fatalf("duplicate job id %s after recovery", st.ID)
		}
		seen[st.ID] = true
	}
	if !seen[a.ID] || !seen[b.ID] {
		t.Fatalf("recovery lost jobs: have %v, want %s and %s", seen, a.ID, b.ID)
	}

	fa, err := m2.Await(a.ID)
	if err != nil || fa.State != StateSucceeded {
		t.Fatalf("resumed anytime job: %+v / %v", fa, err)
	}
	if !fa.Resumed {
		t.Fatal("recovered running job not marked resumed")
	}
	fb, err := m2.Await(b.ID)
	if err != nil || fb.State != StateSucceeded {
		t.Fatalf("recovered batch job: %+v / %v", fb, err)
	}
	if got := servedReport(t, m2, a.ID); string(got) != string(wantAnytime) {
		t.Fatalf("resumed anytime report differs from uninterrupted run\n got: %s\nwant: %s", got, wantAnytime)
	}
	if got := servedReport(t, m2, b.ID); string(got) != string(wantBatch) {
		t.Fatalf("recovered batch report differs from uninterrupted run\n got: %s\nwant: %s", got, wantBatch)
	}
	// Fresh ids continue past the recovered ones.
	c, err := m2.Submit(tinySpec(9))
	if err != nil {
		t.Fatal(err)
	}
	if seen[c.ID] {
		t.Fatalf("fresh submission reused recovered id %s", c.ID)
	}
	m2.Await(c.ID)
}

// TestDrainInterruptsAndResumes: graceful shutdown mid-campaign journals
// the job as interrupted; the next boot re-queues it and it finishes
// byte-identical to an uninterrupted run.
func TestDrainInterruptsAndResumes(t *testing.T) {
	spec := tinySpec(11)
	spec.WaveSize = 2
	want := isolatedReport(t, spec)

	dir := t.TempDir()
	m1 := newTestManager(t, Config{Workers: 1, MaxJobs: 1, DataDir: dir})
	reached, release := holdAtRound(m1, 2)
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-reached
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- m1.Drain(ctx)
	}()
	// Let the campaign out of the hook only once the drain has closed
	// admissions (and, microseconds later, cancelled the job's context),
	// so it cannot race ahead and finish.
	for {
		m1.mu.Lock()
		d := m1.draining
		m1.mu.Unlock()
		if d {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if is, _ := m1.Status(st.ID); is.State != StateInterrupted {
		t.Fatalf("drained job state = %s (%s), want interrupted", is.State, is.Error)
	}
	// Draining managers reject new work.
	if _, err := m1.Submit(tinySpec(12)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	m1.Close()

	m2 := newTestManager(t, Config{Workers: 2, MaxJobs: 1, DataDir: dir})
	fin, err := m2.Await(st.ID)
	if err != nil || fin.State != StateSucceeded {
		t.Fatalf("resumed job: %+v / %v", fin, err)
	}
	if !fin.Resumed {
		t.Fatal("interrupted job not marked resumed after reboot")
	}
	if got := servedReport(t, m2, st.ID); string(got) != string(want) {
		t.Fatalf("resumed report differs from uninterrupted run\n got: %s\nwant: %s", got, want)
	}
}

// --- self-healing -----------------------------------------------------------

// TestRetryAfterTransientFailure: a campaign that panics once succeeds
// on its retry; the attempt count, retry counter, and panic counter all
// say what happened.
func TestRetryAfterTransientFailure(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, MaxJobs: 1, RetryBase: 10 * time.Millisecond})
	flakyArm.Store(1)
	spec := tinySpec(7)
	spec.System = "svc-flaky"
	spec.MaxAttempts = 3
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := m.Await(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateSucceeded {
		t.Fatalf("flaky job state = %s (%s), want succeeded after retry", fin.State, fin.Error)
	}
	if fin.Error != "" {
		t.Fatalf("succeeded job still carries error %q", fin.Error)
	}
	if fin.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2", fin.Attempt)
	}
	snap := m.Snapshot()
	if snap.JobsRetried != 1 || snap.JobsPanics != 1 {
		t.Fatalf("retries=%d panics=%d, want 1/1", snap.JobsRetried, snap.JobsPanics)
	}
	if snap.JobsFailed != 0 || snap.JobsSucceeded != 1 {
		t.Fatalf("failed=%d succeeded=%d", snap.JobsFailed, snap.JobsSucceeded)
	}
}

// TestRetriesExhausted: a permanently-failing campaign burns all its
// attempts and fails.
func TestRetriesExhausted(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, MaxJobs: 1, RetryBase: time.Millisecond})
	spec := CampaignSpec{System: "svc-crash", Reps: 2, DelayMagnitudesMS: []int64{200}, MaxAttempts: 3}
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := m.Await(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed || fin.Attempt != 3 {
		t.Fatalf("state=%s attempt=%d, want failed after 3 attempts", fin.State, fin.Attempt)
	}
	if snap := m.Snapshot(); snap.JobsRetried != 2 {
		t.Fatalf("retries = %d, want 2", snap.JobsRetried)
	}
}

// TestPanicCapturesStack: the crash-isolation barrier records the panic
// value and the goroutine stack, so a crashed campaign is debuggable
// from the job's error alone.
func TestPanicCapturesStack(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, MaxJobs: 1})
	st, err := m.Submit(CampaignSpec{System: "svc-crash", Reps: 2, DelayMagnitudesMS: []int64{200}})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := m.Await(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed {
		t.Fatalf("state = %s, want failed", fin.State)
	}
	if !strings.Contains(fin.Error, "workload exploded") {
		t.Fatalf("error %q does not carry the panic value", fin.Error)
	}
	if !strings.Contains(fin.Error, "goroutine ") {
		t.Fatalf("error does not carry a stack trace:\n%s", fin.Error)
	}
	if snap := m.Snapshot(); snap.JobsPanics != 1 {
		t.Fatalf("panics = %d, want 1", snap.JobsPanics)
	}
}

// TestDeadlineExceeded: the watchdog cancels a job stuck past its
// deadline (here: starved of worker tokens) and it fails with the
// distinguished deadline_exceeded error.
func TestDeadlineExceeded(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxJobs: 1, WatchInterval: 10 * time.Millisecond})
	if !m.Pool().Acquire(context.Background()) {
		t.Fatal("could not starve the pool")
	}
	defer m.Pool().Release()
	spec := tinySpec(7)
	spec.DeadlineMS = 100
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := m.Await(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed || fin.Error != "deadline_exceeded" {
		t.Fatalf("state=%s error=%q, want failed/deadline_exceeded", fin.State, fin.Error)
	}
}

// --- admission control ------------------------------------------------------

// TestAdmissionQueueBound: the queue rejects past MaxQueue and the
// rejection counter advances.
func TestAdmissionQueueBound(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxJobs: 1, MaxQueue: 1})
	if !m.Pool().Acquire(context.Background()) {
		t.Fatal("could not starve the pool")
	}
	a, err := m.Submit(tinySpec(7)) // running (blocked on the pool)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(tinySpec(8)) // fills the queue
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tinySpec(9)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	if snap := m.Snapshot(); snap.AdmissionRejected != 1 {
		t.Fatalf("admission rejected = %d, want 1", snap.AdmissionRejected)
	}
	m.Pool().Release()
	m.Await(a.ID)
	m.Await(b.ID)
}

// TestAdmissionLoadShed: with a shed high-water mark, submissions are
// rejected while the pool is saturated and accepted once it drains.
func TestAdmissionLoadShed(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, MaxJobs: 2, ShedHighWater: 0.5})
	if !m.Pool().Acquire(context.Background()) {
		t.Fatal("could not take a token")
	}
	if _, err := m.Submit(tinySpec(7)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit under load: %v, want ErrOverloaded", err)
	}
	m.Pool().Release()
	st, err := m.Submit(tinySpec(7))
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	m.Await(st.ID)
}

// TestAdmissionHTTP: admission rejections surface as 429 with a
// Retry-After header.
func TestAdmissionHTTP(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxJobs: 1, MaxQueue: 1})
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	if !m.Pool().Acquire(context.Background()) {
		t.Fatal("could not starve the pool")
	}

	var a, b SubmitResponse
	if resp := postJSON(t, srv.URL+"/v1/campaigns", tinySpec(7), &a); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/v1/campaigns", tinySpec(8), &b); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d", resp.StatusCode)
	}
	resp := postJSON(t, srv.URL+"/v1/campaigns", tinySpec(9), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	m.Pool().Release()
	m.Await(a.ID)
	m.Await(b.ID)
}
