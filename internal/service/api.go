// Package service is the csnaked campaign server: campaigns become
// long-running jobs executed under one shared simulation budget, round
// progress streams to subscribers while detection is still running, and
// the causal graphs campaigns accumulate become served, mergeable
// artifacts.
//
// The package splits into four layers:
//
//   - api.go: the wire types (campaign specs, job status, stream events,
//     merge requests) and their resolution into campaign options;
//   - jobs.go + events.go: the job manager -- a priority queue of
//     campaign jobs over a bounded worker-token pool, with per-job
//     cancellation, crash isolation, and a round fan-out to subscribers;
//   - store.go: the graph artifact store (persisted schema-v1 graph
//     JSON, served and merged by id);
//   - monitors.go: online cascade monitors -- internal/monitor engines
//     ingesting JSONL trace batches over HTTP, with SSE alert fan-out;
//   - server.go + metrics.go: the HTTP surface (REST + SSE + /metrics).
package service

import (
	"fmt"
	"time"

	"repro/internal/core/csnake"
	"repro/internal/monitor"
	"repro/internal/report"
	"repro/internal/systems/sysreg"
)

// CampaignSpec is the POST /v1/campaigns request body: a declarative
// campaign description the job manager resolves into csnake options.
// Zero values mean "campaign default" throughout.
type CampaignSpec struct {
	// System is a registered system name or alias (required).
	System string `json:"system"`
	// Seed is the campaign seed (nil = default 42; distinct from zero,
	// which is a legitimate seed).
	Seed *int64 `json:"seed,omitempty"`
	// Reps is the seeds-per-configuration repetition count.
	Reps int `json:"reps,omitempty"`
	// BudgetFactor scales |F| into the experiment budget.
	BudgetFactor int `json:"budgetFactor,omitempty"`
	// DelayMagnitudesMS is the delay-injection magnitude sweep, in
	// milliseconds.
	DelayMagnitudesMS []int64 `json:"delayMagnitudesMs,omitempty"`
	// Parallelism bounds the job's own concurrent simulations; the
	// manager's shared worker pool bounds all jobs in total regardless.
	Parallelism int `json:"parallelism,omitempty"`
	// Anytime switches to the round-based streaming pipeline. Jobs that
	// want live round events need it (or one of the fields that imply
	// it: EarlyStopRounds, WaveSize, protocol "adaptive").
	Anytime bool `json:"anytime,omitempty"`
	// EarlyStopRounds stops the campaign once the clustered cycle set is
	// stable this many rounds (implies anytime).
	EarlyStopRounds int `json:"earlyStopRounds,omitempty"`
	// WaveSize is the experiments-per-round granularity (implies anytime).
	WaveSize int `json:"waveSize,omitempty"`
	// Protocol is "3pa" (default), "random", or "adaptive".
	Protocol string `json:"protocol,omitempty"`
	// NoPrefixShare disables fork-at-injection prefix sharing for this
	// job (results are byte-identical either way; the flag trades the
	// checkpoint cache's memory for re-simulated run prefixes).
	NoPrefixShare bool `json:"noPrefixShare,omitempty"`
	// Priority orders queued jobs (higher first; equal priorities run in
	// submission order).
	Priority int `json:"priority,omitempty"`
	// MaxAttempts is the total number of times the job may run (initial
	// attempt plus retries); 0 or 1 means no retries. Failed attempts are
	// retried with capped exponential backoff.
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// DeadlineMS bounds each attempt's wall-clock run time; a stuck job
	// past its deadline is cancelled by the watchdog and fails with
	// "deadline_exceeded" (0 = no deadline).
	DeadlineMS int64 `json:"deadlineMs,omitempty"`
}

// anytime reports whether the spec resolves to the round-based
// pipeline, and hence emits round-granular resume checkpoints.
func (s *CampaignSpec) anytime() bool {
	return s.Anytime || s.EarlyStopRounds > 0 || s.WaveSize > 0 || s.Protocol == "adaptive"
}

// Resolve validates the spec and returns the target system plus the
// campaign options it denotes (context, observer, and worker pool are
// the job manager's to add).
func (s *CampaignSpec) Resolve() (sysreg.System, []csnake.Option, error) {
	sys, err := sysreg.Resolve(s.System)
	if err != nil {
		return nil, nil, err
	}
	if s.MaxAttempts < 0 {
		return nil, nil, fmt.Errorf("maxAttempts = %d: must be non-negative", s.MaxAttempts)
	}
	if s.DeadlineMS < 0 {
		return nil, nil, fmt.Errorf("deadlineMs = %d: must be non-negative", s.DeadlineMS)
	}
	seed := int64(42)
	if s.Seed != nil {
		seed = *s.Seed
	}
	opts := []csnake.Option{
		csnake.WithSeed(seed),
		csnake.WithReps(s.Reps),
		csnake.WithBudgetFactor(s.BudgetFactor),
		csnake.WithParallelism(s.Parallelism),
	}
	if len(s.DelayMagnitudesMS) > 0 {
		mags := make([]time.Duration, len(s.DelayMagnitudesMS))
		for i, ms := range s.DelayMagnitudesMS {
			if ms <= 0 {
				return nil, nil, fmt.Errorf("delayMagnitudesMs[%d] = %d: must be positive", i, ms)
			}
			mags[i] = time.Duration(ms) * time.Millisecond
		}
		opts = append(opts, csnake.WithDelayMagnitudes(mags...))
	}
	switch s.Protocol {
	case "", "3pa":
	case "random":
		opts = append(opts, csnake.WithProtocol(csnake.ProtocolRandom))
	case "adaptive":
		opts = append(opts, csnake.WithProtocol(csnake.ProtocolAdaptive))
	default:
		return nil, nil, fmt.Errorf("unknown protocol %q (want 3pa, random, or adaptive)", s.Protocol)
	}
	if s.NoPrefixShare {
		opts = append(opts, csnake.WithPrefixSharing(false))
	}
	if s.Anytime {
		opts = append(opts, csnake.WithAnytime())
	}
	if s.EarlyStopRounds > 0 {
		opts = append(opts, csnake.WithEarlyStop(s.EarlyStopRounds))
	}
	if s.WaveSize > 0 {
		opts = append(opts, csnake.WithAnytime(), csnake.WithWaveSize(s.WaveSize))
	}
	return sys, opts, nil
}

// JobState is the lifecycle state of a campaign job:
//
//	queued -> running -> succeeded | failed | cancelled
//	queued -> cancelled                  (cancelled before starting)
//	running -> queued                    (failed attempt awaiting retry)
//	running -> interrupted               (graceful shutdown mid-campaign)
//	interrupted -> queued                (re-queued at next boot)
//
// interrupted is non-terminal: the job's journal entry and round
// checkpoint survive the restart and the next boot re-queues it, so it
// resumes from its last sealed round.
type JobState string

const (
	StateQueued      JobState = "queued"
	StateRunning     JobState = "running"
	StateSucceeded   JobState = "succeeded"
	StateFailed      JobState = "failed"
	StateCancelled   JobState = "cancelled"
	StateInterrupted JobState = "interrupted"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// JobStatus is the GET /v1/campaigns/{id} response: job identity and
// lifecycle plus the detection progress so far (for anytime jobs, the
// rounds stream even while the campaign is still running).
type JobStatus struct {
	ID      string       `json:"id"`
	State   JobState     `json:"state"`
	Spec    CampaignSpec `json:"spec"`
	Created time.Time    `json:"created"`
	Started *time.Time   `json:"started,omitempty"`
	// Finished is set in every terminal state.
	Finished *time.Time `json:"finished,omitempty"`
	// Error describes a failed (or cancelled) job.
	Error string `json:"error,omitempty"`
	// QueuePosition is the 1-based position among queued jobs (0 once
	// the job has started).
	QueuePosition int `json:"queuePosition,omitempty"`
	// Sims counts simulated executions so far (live for running jobs).
	Sims int `json:"sims"`
	// Rounds is the anytime round trajectory so far.
	Rounds []report.JSONRound `json:"rounds,omitempty"`
	// EarlyStopped marks a campaign that converged before its budget.
	EarlyStopped bool `json:"earlyStopped,omitempty"`
	// GraphID names the persisted causal-graph artifact of a succeeded
	// job (GET /v1/graphs/{id}).
	GraphID string `json:"graphId,omitempty"`
	// Attempt is the number of times the job has started running (> 1
	// after retries; 0 while first queued).
	Attempt int `json:"attempt,omitempty"`
	// Resumed marks a job recovered from the journal after a daemon
	// restart (it was queued, running, or interrupted when the previous
	// daemon stopped).
	Resumed bool `json:"resumed,omitempty"`
}

// SubmitResponse is the POST /v1/campaigns response.
type SubmitResponse struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
}

// Event is one server-sent stream element on
// GET /v1/campaigns/{id}/events.
type Event struct {
	// Type is "round" (a completed anytime round) or "state" (a job
	// lifecycle transition; a terminal state ends the stream).
	Type string `json:"type"`
	Job  string `json:"job"`
	// Round is set for "round" events.
	Round *report.JSONRound `json:"round,omitempty"`
	// State and Error are set for "state" events; Attempt additionally on
	// retry transitions (running -> queued).
	State   JobState `json:"state,omitempty"`
	Error   string   `json:"error,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	// Dropped counts rounds this subscriber lost to backpressure since
	// its last delivered event (slow consumers drop rounds, never block
	// the campaign).
	Dropped int `json:"dropped,omitempty"`
}

// MergeRequest is the POST /v1/graphs/merge request body: stitch the
// named persisted graphs into a new artifact, optionally re-searching
// the merged graph for cycles that only the cross-campaign evidence
// reveals.
type MergeRequest struct {
	Graphs   []string `json:"graphs"`
	Research bool     `json:"research,omitempty"`
}

// MergeResponse describes the merged artifact (and, with research, the
// cycles found in it).
type MergeResponse struct {
	Graph GraphInfo `json:"graph"`
	// Cycles/Clusters are set when research was requested. Clusters are
	// unlabelled: a merged graph spans campaigns, so no single system's
	// ground truth applies.
	Cycles   int                  `json:"cycles,omitempty"`
	Clusters []report.JSONCluster `json:"clusters,omitempty"`
}

// GraphInfo is the stored-artifact metadata served by GET /v1/graphs.
type GraphInfo struct {
	ID string `json:"id"`
	// System is the originating system ("" for cross-system merges).
	System string `json:"system,omitempty"`
	// Source says where the artifact came from: "campaign:<job>" or
	// "merge:<id>+<id>+...".
	Source  string    `json:"source"`
	Edges   int       `json:"edges"`
	Faults  int       `json:"faults"`
	Bytes   int       `json:"bytes"`
	Created time.Time `json:"created"`
}

// MonitorSpec is the POST /v1/monitors request body: an online cascade
// monitor that ingests JSONL trace batches and alerts on closed/broken
// self-sustaining cycles.
type MonitorSpec struct {
	// Name is an optional human label.
	Name string `json:"name,omitempty"`
	// WindowMS is the evidence retention span in milliseconds of stream
	// time; 0 retains everything (the offline-equivalent configuration).
	WindowMS int64 `json:"windowMs,omitempty"`
	// Buckets is the decay granularity (0 = default 8).
	Buckets int `json:"buckets,omitempty"`
}

// MonitorStatus is the GET /v1/monitors/{id} response.
type MonitorStatus struct {
	ID      string      `json:"id"`
	Spec    MonitorSpec `json:"spec"`
	Created time.Time   `json:"created"`
	// Stats is the engine's counter snapshot (records, skipped, active
	// cycles, window churn).
	Stats monitor.Stats `json:"stats"`
	// Subscribers counts live alert-stream connections.
	Subscribers int `json:"subscribers,omitempty"`
}

// IngestResponse is the POST /v1/monitors/{id}/events response: the
// batch summary including every alert the batch fired.
type IngestResponse monitor.BatchResult

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}
