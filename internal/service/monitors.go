// This file is the online-monitoring surface of csnaked: named monitor
// instances wrap internal/monitor engines, ingest JSONL trace batches
// over HTTP, and fan closed/broken cycle alerts out to SSE subscribers.
// Monitors are journaled like jobs (create/delete records), so a daemon
// restart re-creates them empty -- their evidence is stream-sourced and
// re-ingestable by the producer, unlike campaign state which the service
// itself owns.

package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/monitor"
)

// monitorBacklog bounds the per-monitor alert replay buffer; beyond it
// the oldest alerts are dropped (their Seq numbers expose the gap).
const monitorBacklog = 1024

// alertSub is one SSE subscriber of a monitor's alert stream.
type alertSub struct {
	ch      chan monitor.Alert
	dropped int // alerts lost to backpressure (slow consumer)
}

// monitorRuntime pairs a monitor engine with its service identity and
// alert fan-out. The engine serializes ingestion itself; mu only guards
// the backlog and subscriber list.
type monitorRuntime struct {
	id      string
	seq     int
	spec    MonitorSpec
	created time.Time
	mon     *monitor.Monitor

	mu     sync.Mutex
	alerts []monitor.Alert
	subs   []*alertSub
	closed bool
}

func newMonitorRuntime(id string, seq int, spec MonitorSpec, created time.Time) *monitorRuntime {
	rt := &monitorRuntime{id: id, seq: seq, spec: spec, created: created}
	rt.mon = monitor.New(monitor.Config{
		Window:  time.Duration(spec.WindowMS) * time.Millisecond,
		Buckets: spec.Buckets,
		OnAlert: rt.onAlert,
	})
	return rt
}

// onAlert records the alert in the replay backlog and offers it to every
// live subscriber without blocking (a slow consumer drops alerts, never
// stalls ingestion).
func (rt *monitorRuntime) onAlert(a monitor.Alert) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.alerts = append(rt.alerts, a)
	if len(rt.alerts) > monitorBacklog {
		rt.alerts = rt.alerts[len(rt.alerts)-monitorBacklog:]
	}
	for _, s := range rt.subs {
		select {
		case s.ch <- a:
		default:
			s.dropped++
		}
	}
}

// subscribe snapshots the alert backlog and, when follow is set,
// registers a live channel. The unsubscribe func is a no-op for
// non-follow subscriptions.
func (rt *monitorRuntime) subscribe(buffer int, follow bool) (backlog []monitor.Alert, ch chan monitor.Alert, unsubscribe func()) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	backlog = append([]monitor.Alert(nil), rt.alerts...)
	if !follow || rt.closed {
		return backlog, nil, func() {}
	}
	s := &alertSub{ch: make(chan monitor.Alert, buffer)}
	rt.subs = append(rt.subs, s)
	return backlog, s.ch, func() {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		for i, q := range rt.subs {
			if q == s {
				rt.subs = append(rt.subs[:i], rt.subs[i+1:]...)
				break
			}
		}
	}
}

// close ends every subscriber stream; further subscriptions get only
// the backlog.
func (rt *monitorRuntime) close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	for _, s := range rt.subs {
		close(s.ch)
	}
	rt.subs = nil
}

func errUnknownMonitor(id string) error { return fmt.Errorf("unknown monitor %q", id) }

// CreateMonitor registers a new online monitor and journals it.
func (m *Manager) CreateMonitor(spec MonitorSpec) (*MonitorStatus, error) {
	if spec.WindowMS < 0 {
		return nil, fmt.Errorf("windowMs = %d: must be non-negative", spec.WindowMS)
	}
	if spec.Buckets < 0 {
		return nil, fmt.Errorf("buckets = %d: must be non-negative", spec.Buckets)
	}
	m.monMu.Lock()
	m.monSeq++
	seq := m.monSeq
	rt := newMonitorRuntime(fmt.Sprintf("mon-%d", seq), seq, spec, time.Now())
	m.mons[rt.id] = rt
	m.monOrder = append(m.monOrder, rt.id)
	m.monMu.Unlock()
	sp := spec
	m.jlog(journalRecord{T: "mon-create", Job: rt.id, Seq: seq, Created: rt.created, MonSpec: &sp})
	return m.monitorStatus(rt), nil
}

// DeleteMonitor removes a monitor, ends its alert streams, and journals
// the deletion. Its lifetime counters stay in /metrics.
func (m *Manager) DeleteMonitor(id string) error {
	m.monMu.Lock()
	rt, ok := m.mons[id]
	if !ok {
		m.monMu.Unlock()
		return errUnknownMonitor(id)
	}
	delete(m.mons, id)
	for i, q := range m.monOrder {
		if q == id {
			m.monOrder = append(m.monOrder[:i], m.monOrder[i+1:]...)
			break
		}
	}
	m.monMu.Unlock()
	rt.close()
	m.jlog(journalRecord{T: "mon-delete", Job: id, Seq: rt.seq})
	return nil
}

// getMonitor looks a runtime up by id.
func (m *Manager) getMonitor(id string) (*monitorRuntime, bool) {
	m.monMu.Lock()
	defer m.monMu.Unlock()
	rt, ok := m.mons[id]
	return rt, ok
}

// Monitors lists every monitor's status in creation order.
func (m *Manager) Monitors() []*MonitorStatus {
	m.monMu.Lock()
	rts := make([]*monitorRuntime, 0, len(m.monOrder))
	for _, id := range m.monOrder {
		rts = append(rts, m.mons[id])
	}
	m.monMu.Unlock()
	// Engine stats are read outside monMu: Stats takes the engine's own
	// lock, which an in-flight Ingest may hold for a while.
	out := make([]*MonitorStatus, len(rts))
	for i, rt := range rts {
		out[i] = m.monitorStatus(rt)
	}
	return out
}

// monitorRecordsLocked renders the monitor table as journal records for
// compaction. Caller holds monMu.
func (m *Manager) monitorRecordsLocked() []journalRecord {
	var recs []journalRecord
	for _, id := range m.monOrder {
		rt := m.mons[id]
		sp := rt.spec
		recs = append(recs, journalRecord{T: "mon-create", Job: id, Seq: rt.seq, Created: rt.created, MonSpec: &sp})
	}
	return recs
}

func (m *Manager) monitorStatus(rt *monitorRuntime) *MonitorStatus {
	st := &MonitorStatus{
		ID:      rt.id,
		Spec:    rt.spec,
		Created: rt.created,
		Stats:   rt.mon.Stats(),
	}
	rt.mu.Lock()
	st.Subscribers = len(rt.subs)
	rt.mu.Unlock()
	return st
}

func (m *Manager) handleMonitorCreate(w http.ResponseWriter, r *http.Request) {
	var spec MonitorSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad monitor spec: %v", err)
		return
	}
	st, err := m.CreateMonitor(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (m *Manager) handleMonitors(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.Monitors())
}

func (m *Manager) handleMonitorStatus(w http.ResponseWriter, r *http.Request) {
	rt, ok := m.getMonitor(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "%v", errUnknownMonitor(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, m.monitorStatus(rt))
}

// handleMonitorIngest feeds the request body (JSONL trace records) into
// the monitor and returns the batch summary, alerts included. Malformed
// lines are counted in the response, never a request failure.
func (m *Manager) handleMonitorIngest(w http.ResponseWriter, r *http.Request) {
	rt, ok := m.getMonitor(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "%v", errUnknownMonitor(r.PathValue("id")))
		return
	}
	res, err := rt.mon.Ingest(r.Body)
	m.monRecords.Add(res.Records)
	m.monSkipped.Add(res.Skipped)
	m.monAlerts.Add(int64(len(res.Alerts)))
	if err != nil {
		// The body died mid-stream; everything parsed before the error is
		// already applied, so report what happened with the partial counts.
		writeError(w, http.StatusBadRequest, "ingest: %v (after %d records)", err, res.Records)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse(res))
}

// handleMonitorAlerts serves the alert stream as SSE "alert" events:
// the recorded backlog first, then live alerts as batches ingest.
// ?follow=0 ends the stream after the backlog (for scripted consumers).
func (m *Manager) handleMonitorAlerts(w http.ResponseWriter, r *http.Request) {
	rt, ok := m.getMonitor(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "%v", errUnknownMonitor(r.PathValue("id")))
		return
	}
	flusher, okf := w.(http.Flusher)
	if !okf {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	follow := r.URL.Query().Get("follow") != "0"
	backlog, ch, unsubscribe := rt.subscribe(m.cfg.SubBuffer, follow)
	defer unsubscribe()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	for _, a := range backlog {
		if !writeAlertEvent(w, a) {
			return
		}
	}
	flusher.Flush()
	if ch == nil {
		return
	}
	for {
		select {
		case a, open := <-ch:
			if !open {
				return
			}
			if !writeAlertEvent(w, a) {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeAlertEvent writes one SSE "alert" event; false means the stream
// is unwritable and the handler should end.
func writeAlertEvent(w http.ResponseWriter, a monitor.Alert) bool {
	data, err := json.Marshal(a)
	if err != nil {
		return false
	}
	_, err = fmt.Fprintf(w, "event: alert\ndata: %s\n\n", data)
	return err == nil
}

func (m *Manager) handleMonitorDelete(w http.ResponseWriter, r *http.Request) {
	if err := m.DeleteMonitor(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Deleted string `json:"deleted"`
	}{Deleted: r.PathValue("id")})
}
