// This file is the job manager: campaigns submitted to the service
// become jobs in a priority queue, at most MaxJobs run at once, and all
// running jobs share one harness.TokenPool so the total number of
// in-flight simulations is bounded no matter how many campaigns are
// active. Each job runs on its own goroutine with a recover barrier
// (a panicking campaign fails its job, never the daemon), owns a
// cancellation context (DELETE), and fans completed rounds out to
// event subscribers.

package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core/csnake"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/systems/sysreg"
)

// Config tunes the service.
type Config struct {
	// Workers is the shared simulation-token budget across all running
	// jobs (default: GOMAXPROCS).
	Workers int
	// MaxJobs bounds concurrently running jobs (default 4); further
	// submissions queue by priority.
	MaxJobs int
	// DataDir persists graph artifacts ("" = in-memory only).
	DataDir string
	// SubBuffer is the per-subscriber event buffer (default 64); a
	// subscriber that falls further behind drops rounds.
	SubBuffer int
}

func (c *Config) defaults() {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 4
	}
	if c.SubBuffer < 1 {
		c.SubBuffer = 64
	}
}

// Job is one campaign job. All mutable fields are guarded by the
// manager's mutex; Done is closed exactly once, on entry to a terminal
// state.
type Job struct {
	ID   string
	Spec CampaignSpec

	state    JobState
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	seq      int // submission order, the FIFO key within a priority

	cancel context.CancelFunc

	rounds       []report.JSONRound
	rep          *csnake.Report
	json         *report.JSONReport
	bugs         []sysreg.Bug
	graphID      string
	earlyStopped bool
	sims         int

	subs []*subscriber
	done chan struct{}
}

// Manager owns the job table, the run queue, and the shared worker pool.
type Manager struct {
	cfg   Config
	pool  *harness.TokenPool
	store *GraphStore
	start time.Time

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order, for listing
	queue   []*Job   // waiting jobs; popBest picks (priority desc, seq asc)
	running int
	nextID  int

	// lifetime counters for /metrics
	simsTotal   int64
	roundsTotal int64
	prefix      harness.CheckpointStats // summed over finished jobs
	succeeded   int
	failed      int
	cancelled   int
}

func errUnknownJob(id string) error { return fmt.Errorf("unknown job %q", id) }

// NewManager builds a manager (and its graph store) from cfg.
func NewManager(cfg Config) (*Manager, error) {
	cfg.defaults()
	store, err := NewGraphStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	return &Manager{
		cfg:   cfg,
		pool:  harness.NewTokenPool(cfg.Workers),
		store: store,
		start: time.Now(),
		jobs:  make(map[string]*Job),
	}, nil
}

// Store returns the graph artifact store.
func (m *Manager) Store() *GraphStore { return m.store }

// Pool returns the shared worker-token pool.
func (m *Manager) Pool() *harness.TokenPool { return m.pool }

// Submit validates spec, enqueues a job for it, and starts it
// immediately if a run slot is free.
func (m *Manager) Submit(spec CampaignSpec) (*JobStatus, error) {
	if _, _, err := spec.Resolve(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.nextID++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", m.nextID),
		Spec:    spec,
		state:   StateQueued,
		created: time.Now(),
		seq:     m.nextID,
		done:    make(chan struct{}),
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.queue = append(m.queue, j)
	m.mu.Unlock()
	m.schedule()
	return m.Status(j.ID)
}

// schedule starts queued jobs while run slots are free.
func (m *Manager) schedule() {
	for {
		m.mu.Lock()
		if m.running >= m.cfg.MaxJobs || len(m.queue) == 0 {
			m.mu.Unlock()
			return
		}
		j := m.popBest()
		m.running++
		j.state = StateRunning
		j.started = time.Now()
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		m.mu.Unlock()
		go m.runJob(j, ctx)
	}
}

// popBest removes and returns the highest-priority (then oldest) queued
// job. Caller holds m.mu.
func (m *Manager) popBest() *Job {
	best := 0
	for i, j := range m.queue[1:] {
		b := m.queue[best]
		if j.Spec.Priority > b.Spec.Priority || (j.Spec.Priority == b.Spec.Priority && j.seq < b.seq) {
			best = i + 1
		}
	}
	j := m.queue[best]
	m.queue = append(m.queue[:best], m.queue[best+1:]...)
	return j
}

// runJob executes one campaign job to a terminal state. The recover
// barrier is the crash-isolation boundary: a panic anywhere in the
// campaign (the harness re-raises worker-goroutine panics here) marks
// the job failed and leaves the daemon and its other jobs untouched.
func (m *Manager) runJob(j *Job, ctx context.Context) {
	defer func() {
		if r := recover(); r != nil {
			m.finish(j, nil, nil, fmt.Errorf("campaign panicked: %v", r))
		}
		m.mu.Lock()
		m.running--
		m.mu.Unlock()
		m.schedule()
	}()

	sys, opts, err := j.Spec.Resolve()
	if err != nil { // validated at submit; re-resolution cannot regress
		m.finish(j, nil, nil, err)
		return
	}
	bugs := sys.Bugs()
	m.mu.Lock()
	j.bugs = bugs
	m.mu.Unlock()

	opts = append(opts,
		csnake.WithContext(ctx),
		csnake.WithWorkerPool(m.pool),
		csnake.WithObserver(&jobObserver{m: m, j: j}),
	)
	rep, driver, err := csnake.NewCampaign(sys, opts...).RunWithDriver()
	driver.Release() // return pooled traces: jobs outlive their drivers
	m.finish(j, rep, driver, err)
}

// finish moves a job into a terminal state, encodes its report,
// persists its graph, and notifies subscribers. Safe to call once per
// job; later calls (e.g. a cancel racing completion) are ignored.
func (m *Manager) finish(j *Job, rep *csnake.Report, driver *harness.Driver, err error) {
	m.mu.Lock()
	if j.state.Terminal() {
		m.mu.Unlock()
		return
	}
	switch {
	case err == nil:
		j.state = StateSucceeded
		m.succeeded++
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err.Error()
		m.cancelled++
	default:
		j.state = StateFailed
		j.err = err.Error()
		m.failed++
	}
	j.finished = time.Now()
	if driver != nil {
		j.sims = driver.SimCount()
		m.simsTotal += int64(driver.SimCount())
		st := driver.CheckpointStats()
		m.prefix.PrefixRuns += st.PrefixRuns
		m.prefix.Hits += st.Hits
		m.prefix.Clones += st.Clones
		m.prefix.Misses += st.Misses
	}
	if rep != nil {
		j.rep = rep
		j.earlyStopped = rep.EarlyStopped
		j.json = report.NewJSON(rep, j.bugs)
	}
	var toStore *csnake.Report
	if j.state == StateSucceeded && rep != nil && rep.Graph != nil {
		toStore = rep
	}
	st, errMsg, id := j.state, j.err, j.ID
	m.mu.Unlock()

	if toStore != nil {
		if art, perr := m.store.Put("campaign:"+id, toStore.Graph); perr == nil {
			m.mu.Lock()
			j.graphID = art.Info.ID
			m.mu.Unlock()
		}
	}
	m.publish(j, Event{Type: "state", Job: id, State: st, Error: errMsg})
	m.closeSubs(j)
	close(j.done)
}

// Cancel cancels a job: a queued job moves straight to cancelled, a
// running one has its context cancelled (the campaign unwinds and the
// job finishes as cancelled). Cancelling a terminal job is a no-op that
// reports the job's existence.
func (m *Manager) Cancel(id string) (*JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, errUnknownJob(id)
	}
	if j.state == StateQueued {
		for i, q := range m.queue {
			if q == j {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		m.finish(j, nil, nil, context.Canceled)
		return m.Status(id)
	}
	cancel := j.cancel
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return m.Status(id)
}

// Await blocks until the job reaches a terminal state and returns its
// final status.
func (m *Manager) Await(id string) (*JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, errUnknownJob(id)
	}
	<-j.done
	return m.Status(id)
}

// Status returns a point-in-time copy of one job's status.
func (m *Manager) Status(id string) (*JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, errUnknownJob(id)
	}
	return m.statusLocked(j), nil
}

// List returns every job's status in submission order.
func (m *Manager) List() []*JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

func (m *Manager) statusLocked(j *Job) *JobStatus {
	st := &JobStatus{
		ID:           j.ID,
		State:        j.state,
		Spec:         j.Spec,
		Created:      j.created,
		Error:        j.err,
		Sims:         j.sims,
		Rounds:       append([]report.JSONRound(nil), j.rounds...),
		EarlyStopped: j.earlyStopped,
		GraphID:      j.graphID,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state == StateQueued {
		// Position among waiting jobs in dispatch order.
		pos := 1
		for _, q := range m.queue {
			if q == j {
				continue
			}
			if q.Spec.Priority > j.Spec.Priority || (q.Spec.Priority == j.Spec.Priority && q.seq < j.seq) {
				pos++
			}
		}
		st.QueuePosition = pos
	}
	return st
}

// Report returns the finished job's machine-readable report.
func (m *Manager) Report(id string) (*report.JSONReport, *JobStatus, error) {
	st, err := m.Status(id)
	if err != nil {
		return nil, nil, err
	}
	m.mu.Lock()
	j := m.jobs[id]
	rj := j.json
	m.mu.Unlock()
	if rj == nil {
		return nil, st, fmt.Errorf("job %s has no report (state %s)", id, st.State)
	}
	return rj, st, nil
}

// jobObserver bridges campaign events into the job: it captures the
// driver-independent progress (rounds) and fans it out to subscribers.
// Campaign observers may be called from pool goroutines; everything here
// locks through the manager.
type jobObserver struct {
	csnake.NopObserver
	m *Manager
	j *Job
}

func (o *jobObserver) RoundCompleted(r csnake.Round) {
	jr := report.JSONRoundOf(r, o.j.bugs)
	o.m.mu.Lock()
	o.j.rounds = append(o.j.rounds, jr)
	o.m.roundsTotal++
	o.m.mu.Unlock()
	o.m.publish(o.j, Event{Type: "round", Job: o.j.ID, Round: &jr})
}
