// This file is the job manager: campaigns submitted to the service
// become jobs in a priority queue, at most MaxJobs run at once, and all
// running jobs share one harness.TokenPool so the total number of
// in-flight simulations is bounded no matter how many campaigns are
// active. Each job runs on its own goroutine with a recover barrier
// (a panicking campaign fails its job, never the daemon), owns a
// cancellation context (DELETE), and fans completed rounds out to
// event subscribers.
//
// With a data directory configured the manager is crash-safe: every
// lifecycle transition is journaled (journal.go), anytime jobs persist
// a resume checkpoint after each round, and boot replays the journal to
// re-queue everything that was queued or running when the daemon died
// (recovery.go). Self-healing rides on top: failed attempts retry with
// capped exponential backoff up to the spec's maxAttempts, a watchdog
// cancels jobs stuck past their deadline, and admission control bounds
// the queue and sheds load when the worker pool saturates.

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/csnake"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/systems/sysreg"
)

// Config tunes the service.
type Config struct {
	// Workers is the shared simulation-token budget across all running
	// jobs (default: GOMAXPROCS).
	Workers int
	// MaxJobs bounds concurrently running jobs (default 4); further
	// submissions queue by priority.
	MaxJobs int
	// MaxQueue bounds the number of waiting jobs (default 256); beyond
	// it submissions are rejected with ErrQueueFull (HTTP 429).
	MaxQueue int
	// ShedHighWater enables load shedding: when the worker pool's in-use
	// fraction reaches this value (e.g. 0.9), new submissions are
	// rejected with ErrOverloaded until the pool drains. 0 disables.
	ShedHighWater float64
	// DataDir persists graph artifacts and the job journal ("" =
	// in-memory only: no durability, no crash recovery).
	DataDir string
	// SubBuffer is the per-subscriber event buffer (default 64); a
	// subscriber that falls further behind drops rounds.
	SubBuffer int
	// RetryBase is the first retry backoff; attempt n waits
	// RetryBase << (n-1), capped at 5s (default 500ms).
	RetryBase time.Duration
	// WatchInterval is the stuck-job watchdog's scan period (default
	// 250ms).
	WatchInterval time.Duration
}

func (c *Config) defaults() {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 4
	}
	if c.MaxQueue < 1 {
		c.MaxQueue = 256
	}
	if c.SubBuffer < 1 {
		c.SubBuffer = 64
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 500 * time.Millisecond
	}
	if c.WatchInterval <= 0 {
		c.WatchInterval = 250 * time.Millisecond
	}
}

// Admission-control errors; the HTTP layer maps them onto 429/503 with
// a Retry-After header.
var (
	// ErrQueueFull rejects a submission when MaxQueue jobs are waiting.
	ErrQueueFull = errors.New("job queue full")
	// ErrOverloaded rejects a submission while the worker pool is
	// saturated past the shed high-water mark.
	ErrOverloaded = errors.New("worker pool saturated, shedding load")
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("service is draining")
)

// Job is one campaign job. All mutable fields are guarded by the
// manager's mutex; Done is closed exactly once, on entry to a terminal
// state.
type Job struct {
	ID   string
	Spec CampaignSpec

	state    JobState
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	seq      int // submission order, the FIFO key within a priority

	cancel context.CancelFunc

	attempt     int
	deadline    time.Time
	deadlineHit bool
	userCancel  bool
	recovered   bool
	retryTimer  *time.Timer
	ckpt        *csnake.Checkpoint
	reportFile  string

	rounds       []report.JSONRound
	rep          *csnake.Report
	json         *report.JSONReport
	bugs         []sysreg.Bug
	graphID      string
	earlyStopped bool
	sims         int

	// emitMu serializes event emission for this job: publish's fan-out,
	// Subscribe's backlog replay, and closeSubs' channel closes. Lock
	// order: emitMu strictly before Manager.mu. It exists so offers to
	// subscriber channels happen outside the manager-wide lock.
	emitMu sync.Mutex
	subs   []*subscriber
	done   chan struct{}
}

// Manager owns the job table, the run queue, and the shared worker pool.
type Manager struct {
	cfg   Config
	pool  *harness.TokenPool
	store *GraphStore
	start time.Time

	// jl is the durable job journal (nil without a data directory). jmu
	// serializes journal appends against compaction; it is never
	// acquired while holding mu (compaction takes jmu then mu).
	jl  *journal
	jmu sync.Mutex

	stopWatch chan struct{}
	closeOnce sync.Once

	// roundHook, when set (tests only, before any submission), runs
	// synchronously on the campaign goroutine after each sealed round --
	// the deterministic way to catch a job mid-flight.
	roundHook func(j *Job, round int)

	// monMu guards the monitor table. Lock ordering: monMu is a leaf --
	// never acquire mu or call jlog/engine methods while holding it (an
	// engine's own lock is held across ingestion, and Stats would block
	// behind it).
	monMu    sync.Mutex
	mons     map[string]*monitorRuntime
	monOrder []string // creation order, for listing
	monSeq   int

	// Lifetime monitor counters (survive monitor deletion), updated by
	// the ingest handler.
	monRecords atomic.Int64
	monSkipped atomic.Int64
	monAlerts  atomic.Int64

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	queue    []*Job   // waiting jobs; popBest picks (priority desc, seq asc)
	running  int
	nextID   int
	draining bool

	// lifetime counters for /metrics
	simsTotal         int64
	roundsTotal       int64
	prefix            harness.CheckpointStats // summed over finished jobs
	succeeded         int
	failed            int
	cancelled         int
	retries           int64
	resumed           int64
	panics            int64
	admissionRejected int64
}

func errUnknownJob(id string) error { return fmt.Errorf("unknown job %q", id) }

// NewManager builds a manager (and its graph store) from cfg. With a
// data directory it also opens the job journal, replays it, and
// re-queues every job the previous daemon left unfinished.
func NewManager(cfg Config) (*Manager, error) {
	cfg.defaults()
	store, err := NewGraphStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:       cfg,
		pool:      harness.NewTokenPool(cfg.Workers),
		store:     store,
		start:     time.Now(),
		jobs:      make(map[string]*Job),
		mons:      make(map[string]*monitorRuntime),
		stopWatch: make(chan struct{}),
	}
	if cfg.DataDir != "" {
		jl, err := openJournal(filepath.Join(cfg.DataDir, "jobs"))
		if err != nil {
			return nil, err
		}
		m.jl = jl
		if err := m.recover(); err != nil {
			return nil, err
		}
	}
	go m.watchdog()
	m.schedule()
	return m, nil
}

// Store returns the graph artifact store.
func (m *Manager) Store() *GraphStore { return m.store }

// Pool returns the shared worker-token pool.
func (m *Manager) Pool() *harness.TokenPool { return m.pool }

// jlog appends a journal record (no-op without a journal) and compacts
// the journal when it outgrows the high-water mark. Callers must not
// hold m.mu.
func (m *Manager) jlog(rec journalRecord) {
	if m.jl == nil {
		return
	}
	m.jmu.Lock()
	if err := m.jl.append(rec); err != nil {
		log.Printf("csnaked: journal append: %v", err)
	}
	m.jmu.Unlock()
	if m.jl.oversize() {
		m.compactJournal()
	}
}

// compactJournal rewrites the journal to the minimal record set that
// reproduces the current job table. jmu blocks concurrent appends for
// the duration, so no record written after the snapshot can be lost.
func (m *Manager) compactJournal() {
	if m.jl == nil {
		return
	}
	m.jmu.Lock()
	defer m.jmu.Unlock()
	m.mu.Lock()
	recs := m.snapshotRecordsLocked()
	m.mu.Unlock()
	m.monMu.Lock()
	recs = append(recs, m.monitorRecordsLocked()...)
	m.monMu.Unlock()
	if err := m.jl.rewrite(recs); err != nil {
		log.Printf("csnaked: journal compaction: %v", err)
	}
}

// snapshotRecordsLocked renders the job table as journal records:
// a submit per job, round + checkpoint markers for unfinished anytime
// jobs (terminal jobs keep their rounds in the report file), and the
// latest state. Caller holds m.mu.
func (m *Manager) snapshotRecordsLocked() []journalRecord {
	var recs []journalRecord
	for _, id := range m.order {
		j := m.jobs[id]
		spec := j.Spec
		recs = append(recs, journalRecord{T: "submit", Job: j.ID, Seq: j.seq, Spec: &spec, Created: j.created})
		if !j.state.Terminal() {
			for i := range j.rounds {
				r := j.rounds[i]
				recs = append(recs, journalRecord{T: "round", Job: j.ID, Round: &r})
			}
			if j.ckpt != nil {
				recs = append(recs, journalRecord{T: "ckpt", Job: j.ID, Rounds: j.ckpt.Rounds})
			}
		}
		recs = append(recs, journalRecord{
			T: "state", Job: j.ID, State: j.state, Error: j.err, Attempt: j.attempt,
			At: j.finished, GraphID: j.graphID, Report: j.reportFile,
			Sims: j.sims, EarlyStopped: j.earlyStopped,
		})
	}
	return recs
}

// Submit validates spec, enqueues a job for it, and starts it
// immediately if a run slot is free. It rejects submissions while the
// service drains (ErrDraining), when MaxQueue jobs already wait
// (ErrQueueFull), and when the pool is shed-saturated (ErrOverloaded).
func (m *Manager) Submit(spec CampaignSpec) (*JobStatus, error) {
	if _, _, err := spec.Resolve(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if len(m.queue) >= m.cfg.MaxQueue {
		m.admissionRejected++
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d waiting)", ErrQueueFull, m.cfg.MaxQueue)
	}
	if hw := m.cfg.ShedHighWater; hw > 0 && float64(m.pool.InUse()) >= hw*float64(m.pool.Cap()) {
		m.admissionRejected++
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d/%d tokens held)", ErrOverloaded, m.pool.InUse(), m.pool.Cap())
	}
	m.nextID++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", m.nextID),
		Spec:    spec,
		state:   StateQueued,
		created: time.Now(),
		seq:     m.nextID,
		done:    make(chan struct{}),
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
	// Journal the submission before the job becomes runnable, so no
	// state record can ever precede its submit record.
	m.jlog(journalRecord{T: "submit", Job: j.ID, Seq: j.seq, Spec: &spec, Created: j.created})
	m.mu.Lock()
	m.queue = append(m.queue, j)
	m.mu.Unlock()
	m.schedule()
	return m.Status(j.ID)
}

// schedule starts queued jobs while run slots are free.
func (m *Manager) schedule() {
	for {
		m.mu.Lock()
		if m.draining || m.running >= m.cfg.MaxJobs || len(m.queue) == 0 {
			m.mu.Unlock()
			return
		}
		j := m.popBest()
		m.running++
		j.state = StateRunning
		j.attempt++
		j.deadlineHit = false
		if j.started.IsZero() {
			j.started = time.Now()
		}
		if j.Spec.DeadlineMS > 0 {
			j.deadline = time.Now().Add(time.Duration(j.Spec.DeadlineMS) * time.Millisecond)
		}
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		att := j.attempt
		m.mu.Unlock()
		m.jlog(journalRecord{T: "state", Job: j.ID, State: StateRunning, Attempt: att, At: time.Now()})
		go m.runJob(j, ctx)
	}
}

// popBest removes and returns the highest-priority (then oldest) queued
// job. Caller holds m.mu.
func (m *Manager) popBest() *Job {
	best := 0
	for i, j := range m.queue[1:] {
		b := m.queue[best]
		if j.Spec.Priority > b.Spec.Priority || (j.Spec.Priority == b.Spec.Priority && j.seq < b.seq) {
			best = i + 1
		}
	}
	j := m.queue[best]
	m.queue = append(m.queue[:best], m.queue[best+1:]...)
	return j
}

// runJob executes one campaign attempt to completion. The recover
// barrier is the crash-isolation boundary: a panic anywhere in the
// campaign (the harness re-raises worker-goroutine panics here) marks
// the job failed -- capturing the panic value and stack into the job's
// error -- and leaves the daemon and its other jobs untouched.
func (m *Manager) runJob(j *Job, ctx context.Context) {
	var rep *csnake.Report
	var driver *harness.Driver
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				m.mu.Lock()
				m.panics++
				m.mu.Unlock()
				err = fmt.Errorf("campaign panicked: %v\n%s", r, debug.Stack())
			}
		}()
		rep, driver, err = m.runCampaign(j, ctx)
	}()
	m.finish(j, rep, driver, err)
	m.mu.Lock()
	m.running--
	m.mu.Unlock()
	m.schedule()
}

// runCampaign resolves and runs the job's campaign, resuming from the
// job's checkpoint when one is loaded. A checkpoint the campaign
// rejects (ErrResume -- e.g. the spec changed shape across a daemon
// upgrade) is discarded and the campaign re-runs from scratch.
func (m *Manager) runCampaign(j *Job, ctx context.Context) (*csnake.Report, *harness.Driver, error) {
	sys, opts, err := j.Spec.Resolve()
	if err != nil { // validated at submit; re-resolution cannot regress
		return nil, nil, err
	}
	m.mu.Lock()
	j.bugs = sys.Bugs()
	ckpt := j.ckpt
	m.mu.Unlock()

	for {
		runOpts := append(append([]csnake.Option(nil), opts...),
			csnake.WithContext(ctx),
			csnake.WithWorkerPool(m.pool),
			csnake.WithObserver(&jobObserver{m: m, j: j}),
		)
		if m.jl != nil && j.Spec.anytime() {
			runOpts = append(runOpts, csnake.WithCheckpoints(func(cp *csnake.Checkpoint) {
				m.saveCheckpoint(j, cp)
			}))
		}
		if ckpt != nil {
			runOpts = append(runOpts, csnake.WithResume(ckpt))
		}
		rep, driver, err := csnake.NewCampaign(sys, runOpts...).RunWithDriver()
		driver.Release() // return pooled traces: jobs outlive their drivers
		if err != nil && errors.Is(err, csnake.ErrResume) {
			log.Printf("csnaked: job %s: discarding stale checkpoint: %v", j.ID, err)
			m.mu.Lock()
			j.ckpt = nil
			j.rounds = nil
			m.mu.Unlock()
			if m.jl != nil {
				m.jl.removeCheckpoint(j.ID)
			}
			ckpt = nil
			continue
		}
		return rep, driver, err
	}
}

// saveCheckpoint persists an anytime job's round checkpoint (atomic
// side file + journal marker). Runs on the campaign goroutine between
// rounds; persistence failures only shorten how far a crash can resume
// from, never fail the round.
func (m *Manager) saveCheckpoint(j *Job, cp *csnake.Checkpoint) {
	data, err := json.Marshal(cp)
	if err != nil {
		return
	}
	if err := m.jl.writeCheckpoint(j.ID, data); err != nil {
		log.Printf("csnaked: job %s: checkpoint: %v", j.ID, err)
		return
	}
	m.mu.Lock()
	j.ckpt = cp
	m.mu.Unlock()
	m.jlog(journalRecord{T: "ckpt", Job: j.ID, Rounds: cp.Rounds})
}

// retryBackoff is the wait before attempt n+1: RetryBase << (n-1),
// capped at 5s.
func (m *Manager) retryBackoff(attempt int) time.Duration {
	d := m.cfg.RetryBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= 5*time.Second {
			return 5 * time.Second
		}
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// requeue returns a retry-waiting job to the run queue once its backoff
// elapses.
func (m *Manager) requeue(j *Job) {
	m.mu.Lock()
	j.retryTimer = nil
	if j.state != StateQueued {
		m.mu.Unlock()
		return
	}
	for _, q := range m.queue {
		if q == j {
			m.mu.Unlock()
			return
		}
	}
	m.queue = append(m.queue, j)
	m.mu.Unlock()
	m.schedule()
}

// finish routes a completed attempt: success, failure (with retry when
// attempts remain), cancellation, or -- during a graceful drain --
// interruption, which journals the job for resume at next boot instead
// of closing it. Terminal transitions persist the report, drop the
// resume checkpoint, and notify subscribers. Safe to call once per
// attempt; calls racing a terminal state are ignored.
func (m *Manager) finish(j *Job, rep *csnake.Report, driver *harness.Driver, err error) {
	m.mu.Lock()
	if j.state.Terminal() {
		m.mu.Unlock()
		return
	}
	if driver != nil {
		j.sims = driver.SimCount()
		m.simsTotal += int64(driver.SimCount())
		st := driver.CheckpointStats()
		m.prefix.PrefixRuns += st.PrefixRuns
		m.prefix.Hits += st.Hits
		m.prefix.Clones += st.Clones
		m.prefix.Misses += st.Misses
	}

	// Classify the attempt's outcome.
	var state JobState
	switch {
	case err == nil:
		state = StateSucceeded
		j.err = ""
	case errors.Is(err, context.Canceled) && j.deadlineHit:
		state = StateFailed
		j.err = "deadline_exceeded"
	case errors.Is(err, context.Canceled) && m.draining && !j.userCancel:
		state = StateInterrupted
		j.err = "interrupted by shutdown"
	case errors.Is(err, context.Canceled):
		state = StateCancelled
		j.err = err.Error()
	default:
		state = StateFailed
		j.err = err.Error()
	}

	// Interrupted: journal and stop, but stay non-terminal -- the next
	// boot re-queues the job and it resumes from its last checkpoint.
	if state == StateInterrupted {
		j.state = StateInterrupted
		j.cancel = nil
		id, errMsg, att, sims := j.ID, j.err, j.attempt, j.sims
		m.mu.Unlock()
		m.jlog(journalRecord{T: "state", Job: id, State: StateInterrupted, Error: errMsg, Attempt: att, Sims: sims, At: time.Now()})
		m.publish(j, Event{Type: "state", Job: id, State: StateInterrupted, Error: errMsg, Attempt: att})
		m.closeSubs(j)
		return
	}

	// Failed with attempts remaining: back off and retry (unless the
	// service is draining or the user cancelled mid-failure).
	if state == StateFailed && !m.draining && !j.userCancel && j.attempt < j.Spec.MaxAttempts {
		j.state = StateQueued
		j.cancel = nil
		m.retries++
		backoff := m.retryBackoff(j.attempt)
		j.retryTimer = time.AfterFunc(backoff, func() { m.requeue(j) })
		id, errMsg, att := j.ID, j.err, j.attempt
		m.mu.Unlock()
		m.jlog(journalRecord{T: "state", Job: id, State: StateQueued, Error: errMsg, Attempt: att, At: time.Now()})
		m.publish(j, Event{Type: "state", Job: id, State: StateQueued, Error: errMsg, Attempt: att})
		return
	}

	j.state = state
	switch state {
	case StateSucceeded:
		m.succeeded++
	case StateFailed:
		m.failed++
	case StateCancelled:
		m.cancelled++
	}
	j.finished = time.Now()
	if rep != nil {
		j.rep = rep
		j.earlyStopped = rep.EarlyStopped
		j.json = report.NewJSON(rep, j.bugs)
		m.spliceRecoveredRoundsLocked(j)
	}
	var toStore *csnake.Report
	if j.state == StateSucceeded && rep != nil && rep.Graph != nil {
		toStore = rep
	}
	st, errMsg, id, att := j.state, j.err, j.ID, j.attempt
	js := j.json
	m.mu.Unlock()

	if toStore != nil {
		if art, perr := m.store.Put("campaign:"+id, toStore.Graph); perr == nil {
			m.mu.Lock()
			j.graphID = art.Info.ID
			m.mu.Unlock()
		}
	}
	if m.jl != nil {
		if st == StateSucceeded && js != nil {
			if data, jerr := json.Marshal(js); jerr == nil {
				if name, werr := m.jl.writeReport(id, data); werr == nil {
					m.mu.Lock()
					j.reportFile = name
					m.mu.Unlock()
				}
			}
		}
		m.jl.removeCheckpoint(id)
	}
	m.mu.Lock()
	rec := journalRecord{
		T: "state", Job: id, State: st, Error: errMsg, Attempt: att, At: j.finished,
		GraphID: j.graphID, Report: j.reportFile, Sims: j.sims, EarlyStopped: j.earlyStopped,
	}
	m.mu.Unlock()
	m.jlog(rec)
	m.publish(j, Event{Type: "state", Job: id, State: st, Error: errMsg, Attempt: att})
	m.closeSubs(j)
	close(j.done)
}

// spliceRecoveredRoundsLocked completes a resumed job's report: the
// campaign only re-ran rounds after the checkpoint, so the rounds the
// journal preserved from before the crash are spliced back in front.
// The spliced sequence is exactly what an uninterrupted run would have
// produced (both encodings are pure functions of identical rounds).
// Caller holds m.mu.
func (m *Manager) spliceRecoveredRoundsLocked(j *Job) {
	js := j.json
	if js == nil || len(j.rounds) == 0 {
		return
	}
	if len(js.Rounds) == 0 {
		// The resumed campaign ran no new rounds (e.g. it crashed after
		// the round that satisfied early stopping): the journal's rounds
		// are the whole trajectory.
		js.Rounds = append([]report.JSONRound(nil), j.rounds...)
	} else if first := js.Rounds[0].Round; first > 1 && first-1 <= len(j.rounds) {
		js.Rounds = append(append([]report.JSONRound(nil), j.rounds[:first-1]...), js.Rounds...)
	}
	if js.Budget == 0 && len(js.Rounds) > 0 {
		js.Budget = js.Rounds[len(js.Rounds)-1].Budget
	}
}

// watchdog scans running jobs for blown deadlines and cancels them; the
// attempt then fails with "deadline_exceeded" (and retries, if the spec
// allows attempts).
func (m *Manager) watchdog() {
	t := time.NewTicker(m.cfg.WatchInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopWatch:
			return
		case <-t.C:
			now := time.Now()
			var cancels []context.CancelFunc
			m.mu.Lock()
			for _, j := range m.jobs {
				if j.state == StateRunning && !j.deadline.IsZero() && now.After(j.deadline) && !j.deadlineHit {
					j.deadlineHit = true
					if j.cancel != nil {
						cancels = append(cancels, j.cancel)
					}
				}
			}
			m.mu.Unlock()
			for _, c := range cancels {
				c()
			}
		}
	}
}

// Drain gracefully stops the manager: admissions are rejected, queued
// jobs stay journaled as queued, and running jobs are cancelled -- they
// finish as interrupted, resumable from their last sealed round at the
// next boot. Drain returns once no job is running, or with ctx's error.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	var cancels []context.CancelFunc
	for _, j := range m.jobs {
		if j.state == StateRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	for {
		m.mu.Lock()
		n := m.running
		m.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Close stops the watchdog and releases the journal handle. Idempotent.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		close(m.stopWatch)
		if m.jl != nil {
			m.jl.close()
		}
	})
}

// HardStop simulates a daemon crash (kill -9) for tests: journal and
// side-file writes are frozen at their last completed state, then all
// running campaigns are cancelled so their goroutines exit. Nothing
// that happens after a HardStop reaches disk -- a manager booted on the
// same data directory sees exactly what a real crash would have left.
func (m *Manager) HardStop() {
	if m.jl != nil {
		m.jl.disable()
	}
	m.closeOnce.Do(func() { close(m.stopWatch) })
	m.mu.Lock()
	m.draining = true
	var cancels []context.CancelFunc
	for _, j := range m.jobs {
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Cancel cancels a job: a queued job (including one waiting out a retry
// backoff) moves straight to cancelled, a running one has its context
// cancelled (the campaign unwinds and the job finishes as cancelled).
// Cancelling a terminal job is a no-op that reports the job's
// existence.
func (m *Manager) Cancel(id string) (*JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, errUnknownJob(id)
	}
	j.userCancel = true
	if t := j.retryTimer; t != nil {
		t.Stop()
		j.retryTimer = nil
	}
	if j.state == StateQueued {
		for i, q := range m.queue {
			if q == j {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		m.finish(j, nil, nil, context.Canceled)
		return m.Status(id)
	}
	cancel := j.cancel
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return m.Status(id)
}

// Await blocks until the job reaches a terminal state and returns its
// final status.
func (m *Manager) Await(id string) (*JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, errUnknownJob(id)
	}
	<-j.done
	return m.Status(id)
}

// Status returns a point-in-time copy of one job's status.
func (m *Manager) Status(id string) (*JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, errUnknownJob(id)
	}
	return m.statusLocked(j), nil
}

// List returns every job's status in submission order.
func (m *Manager) List() []*JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

func (m *Manager) statusLocked(j *Job) *JobStatus {
	st := &JobStatus{
		ID:           j.ID,
		State:        j.state,
		Spec:         j.Spec,
		Created:      j.created,
		Error:        j.err,
		Sims:         j.sims,
		Rounds:       append([]report.JSONRound(nil), j.rounds...),
		EarlyStopped: j.earlyStopped,
		GraphID:      j.graphID,
		Attempt:      j.attempt,
		Resumed:      j.recovered,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state == StateQueued {
		// Position among waiting jobs in dispatch order.
		pos := 1
		for _, q := range m.queue {
			if q == j {
				continue
			}
			if q.Spec.Priority > j.Spec.Priority || (q.Spec.Priority == j.Spec.Priority && q.seq < j.seq) {
				pos++
			}
		}
		st.QueuePosition = pos
	}
	return st
}

// Report returns the finished job's machine-readable report.
func (m *Manager) Report(id string) (*report.JSONReport, *JobStatus, error) {
	st, err := m.Status(id)
	if err != nil {
		return nil, nil, err
	}
	m.mu.Lock()
	j := m.jobs[id]
	rj := j.json
	m.mu.Unlock()
	if rj == nil {
		return nil, st, fmt.Errorf("job %s has no report (state %s)", id, st.State)
	}
	return rj, st, nil
}

// jobObserver bridges campaign events into the job: it captures the
// driver-independent progress (rounds) and fans it out to subscribers.
// Campaign observers may be called from pool goroutines; everything here
// locks through the manager.
type jobObserver struct {
	csnake.NopObserver
	m *Manager
	j *Job
}

func (o *jobObserver) RoundCompleted(r csnake.Round) {
	jr := report.JSONRoundOf(r, o.j.bugs)
	o.m.mu.Lock()
	// Rounds index by their 1-based number: a resumed campaign continues
	// after the journal-restored prefix, a retried one starts over at
	// round 1 (truncating the failed attempt's trajectory).
	if jr.Round >= 1 && jr.Round <= len(o.j.rounds)+1 {
		o.j.rounds = append(o.j.rounds[:jr.Round-1], jr)
	} else {
		o.j.rounds = append(o.j.rounds, jr)
	}
	o.m.roundsTotal++
	o.m.mu.Unlock()
	o.m.jlog(journalRecord{T: "round", Job: o.j.ID, Round: &jr})
	o.m.publish(o.j, Event{Type: "round", Job: o.j.ID, Round: &jr})
	if h := o.m.roundHook; h != nil {
		h(o.j, jr.Round)
	}
}
