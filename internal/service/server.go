// This file is the HTTP surface of csnaked: REST endpoints over the job
// manager and graph store, plus the SSE round stream. Handlers are thin
// -- every decision lives in the manager/store so the API stays an
// encoding layer.

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core/beam"
	"repro/internal/faults"
	"repro/internal/report"
)

// NewServer wires the REST + SSE API over a manager.
func NewServer(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", m.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", m.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", m.handleStatus)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", m.handleCancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", m.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/report", m.handleReport)
	mux.HandleFunc("GET /v1/campaigns/{id}/cycles", m.handleCycles)
	mux.HandleFunc("GET /v1/graphs", m.handleGraphs)
	mux.HandleFunc("GET /v1/graphs/{id}", m.handleGraph)
	mux.HandleFunc("POST /v1/graphs/merge", m.handleMerge)
	mux.HandleFunc("POST /v1/monitors", m.handleMonitorCreate)
	mux.HandleFunc("GET /v1/monitors", m.handleMonitors)
	mux.HandleFunc("GET /v1/monitors/{id}", m.handleMonitorStatus)
	mux.HandleFunc("DELETE /v1/monitors/{id}", m.handleMonitorDelete)
	mux.HandleFunc("POST /v1/monitors/{id}/events", m.handleMonitorIngest)
	mux.HandleFunc("GET /v1/monitors/{id}/alerts", m.handleMonitorAlerts)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad campaign spec: %v", err)
		return
	}
	st, err := m.Submit(spec)
	if err != nil {
		// Admission-control rejections are transient: tell clients when to
		// come back. Everything else is a malformed spec.
		switch {
		case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: st.ID, State: st.State})
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.List())
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := m.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents serves the SSE stream: named events ("round", "state")
// with a JSON Event payload each. The stream replays recorded rounds,
// then follows the job live, and ends after the terminal state event.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	ch, unsubscribe, err := m.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer unsubscribe()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (m *Manager) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, st, err := m.Report(r.PathValue("id"))
	if err != nil {
		if st == nil {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusConflict, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (m *Manager) handleCycles(w http.ResponseWriter, r *http.Request) {
	rep, st, err := m.Report(r.PathValue("id"))
	if err != nil {
		if st == nil {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusConflict, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, rep.Clusters)
}

func (m *Manager) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.store.List())
}

// handleGraph serves the raw schema-v1 graph document, byte-identical
// to what graph.WriteFile would have produced.
func (m *Manager) handleGraph(w http.ResponseWriter, r *http.Request) {
	art, ok := m.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(art.Data())
}

// handleMerge stitches stored graphs server-side and, when research is
// requested, runs the offline cycle search over the merged graph --
// the same graph.Merge + beam.SearchGraph pipeline the csnake CLI's
// -research flag runs on files.
func (m *Manager) handleMerge(w http.ResponseWriter, r *http.Request) {
	var req MergeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad merge request: %v", err)
		return
	}
	art, merged, err := m.store.Merge(req.Graphs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := MergeResponse{Graph: art.Info}
	if req.Research {
		cycles := beam.SearchGraph(merged, nil, beam.Options{})
		clusters := beam.ClusterCycles(cycles, func(faults.ID) (int, bool) { return 0, false })
		resp.Cycles = len(cycles)
		resp.Clusters = report.JSONClustersOf(clusters, nil)
	}
	writeJSON(w, http.StatusOK, resp)
}
