package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
)

// cycleTrace is a minimal JSONL trace closing an a<->b cycle: the EI
// (k=2) exception-class (fc/tc=0) shape the beam matcher chains.
const cycleTrace = `{"t":"hello","v":1,"system":"mon-http"}
{"t":"edge","atMs":0,"edge":{"f":"a","t":"b","k":2,"fc":0,"tc":0,"w":"w1"}}
{"t":"edge","atMs":1,"edge":{"f":"b","t":"a","k":2,"fc":0,"tc":0,"w":"w2"}}
`

func postBody(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp
}

// TestMonitorHTTPLifecycle drives the monitor surface end to end:
// create, ingest a cycle-closing trace, read the alert backlog over
// SSE, check listing/status/metrics, delete.
func TestMonitorHTTPLifecycle(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	var st MonitorStatus
	if resp := postJSON(t, srv.URL+"/v1/monitors", MonitorSpec{Name: "live"}, &st); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if st.ID == "" {
		t.Fatal("create returned no id")
	}

	// Unknown fields must be rejected, like every other spec endpoint.
	if resp := postJSON(t, srv.URL+"/v1/monitors", map[string]any{"bogus": 1}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown spec field: status %d", resp.StatusCode)
	}

	var res IngestResponse
	if resp := postBody(t, srv.URL+"/v1/monitors/"+st.ID+"/events", cycleTrace+"garbage line\n", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	if res.Records != 3 || res.Skipped != 1 || res.CyclesActive != 1 {
		t.Fatalf("ingest response: %+v", res)
	}
	if len(res.Alerts) != 1 || res.Alerts[0].Kind != "closed" {
		t.Fatalf("ingest alerts: %+v", res.Alerts)
	}

	// Status and listing reflect the ingest.
	var got MonitorStatus
	getJSON(t, srv.URL+"/v1/monitors/"+st.ID, &got)
	if got.Stats.Records != 3 || got.Stats.Skipped != 1 || got.Stats.Alerts != 1 {
		t.Fatalf("status stats: %+v", got.Stats)
	}
	if got.Stats.System != "mon-http" {
		t.Fatalf("status system: %q", got.Stats.System)
	}
	var list []MonitorStatus
	getJSON(t, srv.URL+"/v1/monitors", &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("listing: %+v", list)
	}

	// Backlog-only SSE replay (?follow=0) ends after the recorded alerts.
	resp, err := http.Get(srv.URL + "/v1/monitors/" + st.ID + "/alerts?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("alerts content-type: %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	typ, data, err := readSSE(sc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != "alert" {
		t.Fatalf("event type %q", typ)
	}
	var a monitor.Alert
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatalf("alert payload %q: %v", data, err)
	}
	if a.Kind != "closed" || a.Signature != res.Alerts[0].Signature {
		t.Fatalf("replayed alert: %+v", a)
	}
	if _, _, err := readSSE(sc); err != io.EOF {
		t.Fatalf("follow=0 stream must end after backlog, got %v", err)
	}

	// Metrics expose the monitor counters.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"csnaked_monitors_active 1",
		"csnaked_monitor_records_total 3",
		"csnaked_monitor_skipped_total 1",
		"csnaked_monitor_alerts_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Delete; the monitor is gone from the API.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/monitors/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if r := getJSON(t, srv.URL+"/v1/monitors/"+st.ID, nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("status after delete: %d", r.StatusCode)
	}
}

// TestMonitorLiveAlertStream checks a follow subscriber sees an alert
// from an ingest that happens after it connected, and that deleting the
// monitor ends the stream.
func TestMonitorLiveAlertStream(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	var st MonitorStatus
	postJSON(t, srv.URL+"/v1/monitors", MonitorSpec{}, &st)

	resp, err := http.Get(srv.URL + "/v1/monitors/" + st.ID + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Wait until the subscriber is registered before ingesting, so the
	// alert must arrive via the live channel, not the backlog.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var cur MonitorStatus
		getJSON(t, srv.URL+"/v1/monitors/"+st.ID, &cur)
		if cur.Subscribers == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	postBody(t, srv.URL+"/v1/monitors/"+st.ID+"/events", cycleTrace, nil)

	sc := bufio.NewScanner(resp.Body)
	typ, data, err := readSSE(sc)
	if err != nil {
		t.Fatal(err)
	}
	var a monitor.Alert
	if typ != "alert" || json.Unmarshal(data, &a) != nil || a.Kind != "closed" {
		t.Fatalf("live alert: type=%q data=%s", typ, data)
	}

	// Deleting the monitor closes the live stream.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/monitors/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if _, _, err := readSSE(sc); err != io.EOF {
		t.Fatalf("stream must end on delete, got %v", err)
	}
}

// TestMonitorJournalRecreate: monitors survive a daemon restart as
// empty instances (their evidence is re-ingestable by the producer),
// deletions stick, and the id sequence never reuses a number.
func TestMonitorJournalRecreate(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Workers: 1, DataDir: dir})

	a, err := m.CreateMonitor(MonitorSpec{Name: "keep", WindowMS: 60_000, Buckets: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CreateMonitor(MonitorSpec{Name: "drop"})
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := m.getMonitor(a.ID)
	if _, err := rt.mon.Ingest(strings.NewReader(cycleTrace)); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteMonitor(b.ID); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2 := newTestManager(t, Config{Workers: 1, DataDir: dir})
	mons := m2.Monitors()
	if len(mons) != 1 {
		t.Fatalf("want 1 recovered monitor, got %+v", mons)
	}
	got := mons[0]
	if got.ID != a.ID || got.Spec.Name != "keep" || got.Spec.WindowMS != 60_000 || got.Spec.Buckets != 6 {
		t.Fatalf("recovered monitor: %+v", got)
	}
	if got.Stats.Records != 0 || got.Stats.CyclesActive != 0 {
		t.Fatalf("recovered monitor must be empty: %+v", got.Stats)
	}
	// Fresh ids continue past both journaled monitors.
	c, err := m2.CreateMonitor(MonitorSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != fmt.Sprintf("mon-%d", 3) {
		t.Fatalf("id sequence must continue past deletions: got %s", c.ID)
	}
}
