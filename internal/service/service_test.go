package service

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core/csnake"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
)

// --- test systems ---------------------------------------------------------
//
// svc-tiny is the csnake test suite's tiny retry-loop system, registered
// so specs can resolve it; svc-crash panics inside its workload, for the
// crash-isolation tests.

const (
	tinyWorkLoop faults.ID = "svct.worker.loop"
	tinyJobIOE   faults.ID = "svct.job.deadline_ioe"
)

type tinyJob struct{ deadline time.Duration }

type tinySystem struct{}

func (tinySystem) Name() string { return "svc-tiny" }
func (tinySystem) Points() []faults.Point {
	return []faults.Point{
		{ID: tinyWorkLoop, Kind: faults.Loop, System: "svc-tiny", Func: "worker", BodySize: 10, HasIO: true},
		{ID: tinyJobIOE, Kind: faults.Throw, System: "svc-tiny", Func: "worker"},
	}
}
func (tinySystem) Nests() []faults.LoopNest { return nil }
func (tinySystem) SourceDirs() []string     { return nil }
func (tinySystem) Bugs() []sysreg.Bug {
	return []sysreg.Bug{{
		ID: "SVCT-1", Title: "Front-of-queue retry",
		CoreFaults: []faults.ID{tinyWorkLoop, tinyJobIOE},
		Delays:     1, Exceptions: 1, SingleTest: true,
	}}
}
func (tinySystem) Workloads() []sysreg.Workload {
	run := func(jobs int, gap time.Duration) func(ctx *sysreg.RunContext) {
		return func(ctx *sysreg.RunContext) {
			eng, rt := ctx.Engine, ctx.RT
			q := eng.NewMailbox("srv", "jobs")
			eng.Spawn("srv", "worker", func(p *sim.Proc) {
				defer rt.Fn(p, "worker")()
				for {
					m, ok := p.Recv(q, -1)
					if !ok {
						return
					}
					j := m.(tinyJob)
					rt.Loop(p, tinyWorkLoop)
					p.Work(300 * time.Millisecond)
					if rt.Guard(p, tinyJobIOE, p.Now() > j.deadline) {
						p.Send(q, tinyJob{deadline: p.Now() + 200*time.Millisecond})
					}
				}
			})
			eng.Spawn("cli", "producer", func(p *sim.Proc) {
				for i := 0; i < jobs; i++ {
					p.Send(q, tinyJob{deadline: p.Now() + 2*time.Second})
					p.Sleep(gap)
				}
			})
		}
	}
	return []sysreg.Workload{
		{Name: "burst", Desc: "a burst of jobs", Horizon: 30 * time.Second, Run: run(12, 450*time.Millisecond)},
		{Name: "trickle", Desc: "a slow trickle", Horizon: 30 * time.Second, Run: run(6, 2*time.Second)},
	}
}

type crashSystem struct{ tinySystem }

func (crashSystem) Name() string { return "svc-crash" }
func (crashSystem) Workloads() []sysreg.Workload {
	return []sysreg.Workload{{
		Name: "boom", Desc: "panics immediately", Horizon: time.Second,
		Run: func(ctx *sysreg.RunContext) {
			ctx.Engine.Spawn("srv", "bomb", func(p *sim.Proc) {
				panic("workload exploded")
			})
		},
	}}
}

func init() {
	sysreg.Register("svc-tiny", func() sysreg.System { return tinySystem{} })
	sysreg.Register("svc-crash", func() sysreg.System { return crashSystem{} })
}

func tinySpec(seed int64) CampaignSpec {
	return CampaignSpec{
		System:            "svc-tiny",
		Seed:              &seed,
		Reps:              3,
		DelayMagnitudesMS: []int64{200, 1000},
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// --- spec resolution ------------------------------------------------------

func TestSpecResolve(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec CampaignSpec
		ok   bool
	}{
		{"minimal", CampaignSpec{System: "svc-tiny"}, true},
		{"full", CampaignSpec{System: "svc-tiny", Reps: 3, WaveSize: 4, EarlyStopRounds: 2, Protocol: "adaptive"}, true},
		{"unknown system", CampaignSpec{System: "no-such-system"}, false},
		{"bad protocol", CampaignSpec{System: "svc-tiny", Protocol: "psychic"}, false},
		{"bad magnitude", CampaignSpec{System: "svc-tiny", DelayMagnitudesMS: []int64{-5}}, false},
	} {
		_, _, err := tc.spec.Resolve()
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// --- job lifecycle --------------------------------------------------------

func TestJobLifecycle(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, MaxJobs: 2})
	st, err := m.Submit(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	final, err := m.Await(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateSucceeded {
		t.Fatalf("state = %s (%s), want succeeded", final.State, final.Error)
	}
	if final.Sims == 0 {
		t.Fatal("no simulations recorded")
	}
	if final.GraphID == "" {
		t.Fatal("succeeded job has no graph artifact")
	}
	if final.Finished == nil || final.Started == nil {
		t.Fatal("missing timestamps")
	}
	rep, _, err := m.Report(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.System != "svc-tiny" || rep.Schema != report.JSONSchema {
		t.Fatalf("report header: system=%q schema=%d", rep.System, rep.Schema)
	}
	if len(rep.DetectedBugs) == 0 || rep.DetectedBugs[0] != "SVCT-1" {
		t.Fatalf("detected bugs = %v, want [SVCT-1]", rep.DetectedBugs)
	}
	// The stored graph round-trips.
	g, err := m.Store().Load(final.GraphID)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != rep.Edges {
		t.Fatalf("stored graph has %d edges, report says %d", g.Len(), rep.Edges)
	}
}

func TestReportBeforeFinish(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxJobs: 1})
	// Occupy the only slot so the second job stays queued.
	a, err := m.Submit(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(tinySpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, st, err := m.Report(b.ID); err == nil {
		t.Fatalf("report of unfinished job succeeded (state %s)", st.State)
	}
	if _, _, err := m.Report("job-999"); err == nil {
		t.Fatal("report of unknown job succeeded")
	}
	m.Await(a.ID)
	m.Await(b.ID)
}

func TestUnknownJobErrors(t *testing.T) {
	m := newTestManager(t, Config{})
	if _, err := m.Status("job-404"); err == nil {
		t.Fatal("Status on unknown job succeeded")
	}
	if _, err := m.Cancel("job-404"); err == nil {
		t.Fatal("Cancel on unknown job succeeded")
	}
	if _, _, err := m.Subscribe("job-404"); err == nil {
		t.Fatal("Subscribe on unknown job succeeded")
	}
	if _, err := m.Submit(CampaignSpec{System: "no-such-system"}); err == nil {
		t.Fatal("Submit of invalid spec succeeded")
	}
}

// --- shared-budget determinism --------------------------------------------

// TestConcurrentJobsByteIdentical is the service determinism contract:
// N campaigns racing each other through one contended worker pool
// produce reports byte-identical to the same campaigns run in
// isolation. Run under -race this also exercises the manager, pool, and
// fan-out for data races.
func TestConcurrentJobsByteIdentical(t *testing.T) {
	specs := []CampaignSpec{
		tinySpec(7),
		tinySpec(8),
		func() CampaignSpec { s := tinySpec(9); s.WaveSize = 3; return s }(),
		func() CampaignSpec { s := tinySpec(10); s.Anytime = true; s.EarlyStopRounds = 2; return s }(),
	}

	// Isolated baseline: each campaign alone, no shared pool.
	want := make([][]byte, len(specs))
	for i, spec := range specs {
		sys, opts, err := spec.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := csnake.NewCampaign(sys, opts...).Run()
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = json.Marshal(report.NewJSON(rep, sys.Bugs()))
		if err != nil {
			t.Fatal(err)
		}
	}

	// All four at once, two worker tokens between them.
	m := newTestManager(t, Config{Workers: 2, MaxJobs: len(specs)})
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			m.Await(id)
		}(st.ID)
	}
	wg.Wait()

	for i, id := range ids {
		rep, st, err := m.Report(id)
		if err != nil {
			t.Fatalf("job %s: %v (state %s)", id, err, st.State)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want[i]) {
			t.Errorf("job %s (spec %d): served report differs from isolated run\n got: %s\nwant: %s",
				id, i, got, want[i])
		}
	}
	if m.Pool().InUse() != 0 {
		t.Fatalf("pool leaked %d tokens", m.Pool().InUse())
	}
}

// --- queueing, priority, cancellation -------------------------------------

func TestQueuePriorityOrder(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxJobs: 1})
	a, err := m.Submit(tinySpec(7)) // occupies the slot (or finishes fast; either way b/c order is what matters)
	if err != nil {
		t.Fatal(err)
	}
	lo := tinySpec(8)
	hi := tinySpec(9)
	hi.Priority = 5
	b, err := m.Submit(lo)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Submit(hi)
	if err != nil {
		t.Fatal(err)
	}
	// If both are still queued, the high-priority job is ahead.
	bs, _ := m.Status(b.ID)
	cs, _ := m.Status(c.ID)
	if bs.State == StateQueued && cs.State == StateQueued && bs.QueuePosition <= cs.QueuePosition {
		t.Fatalf("queue positions: low-pri=%d high-pri=%d", bs.QueuePosition, cs.QueuePosition)
	}
	for _, id := range []string{a.ID, b.ID, c.ID} {
		if st, err := m.Await(id); err != nil || st.State != StateSucceeded {
			t.Fatalf("job %s: state=%v err=%v", id, st.State, err)
		}
	}
	// With one slot, the high-priority job must have started before the
	// low-priority one submitted ahead of it.
	bs, _ = m.Status(b.ID)
	cs, _ = m.Status(c.ID)
	if bs.Started.Before(*cs.Started) {
		t.Fatalf("low-priority job started %v before high-priority job (%v)", bs.Started, cs.Started)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxJobs: 1})
	a, err := m.Submit(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(tinySpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Status(b.ID); st.State == StateQueued {
		cst, err := m.Cancel(b.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cst.State != StateCancelled {
			t.Fatalf("cancelled queued job state = %s", cst.State)
		}
		if _, _, err := m.Report(b.ID); err == nil {
			t.Fatal("cancelled-before-start job has a report")
		}
	}
	m.Await(a.ID)
	// Cancelling a terminal job is a no-op.
	if st, err := m.Cancel(a.ID); err != nil || st.State != StateSucceeded {
		t.Fatalf("cancel of finished job: state=%v err=%v", st.State, err)
	}
}

// --- crash isolation ------------------------------------------------------

// TestCrashIsolation: a campaign that panics fails its own job; the
// manager keeps serving and later jobs succeed.
func TestCrashIsolation(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, MaxJobs: 2})
	crash := CampaignSpec{System: "svc-crash", Reps: 2, DelayMagnitudesMS: []int64{200}}
	st, err := m.Submit(crash)
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Await(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed {
		t.Fatalf("crashed campaign state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "panicked") {
		t.Fatalf("error = %q, want a panic message", final.Error)
	}
	// The daemon survived: a healthy job still runs to completion.
	ok, err := m.Submit(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := m.Await(ok.ID); err != nil || fin.State != StateSucceeded {
		t.Fatalf("post-crash job: state=%v err=%v", fin.State, err)
	}
	snap := m.Snapshot()
	if snap.JobsFailed != 1 || snap.JobsSucceeded != 1 {
		t.Fatalf("metrics: failed=%d succeeded=%d", snap.JobsFailed, snap.JobsSucceeded)
	}
}

// --- event fan-out --------------------------------------------------------

// TestSubscribeReplayAndLive: a subscriber attached after completion
// still sees every round (replay) followed by the terminal state.
func TestSubscribeReplay(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, MaxJobs: 1})
	spec := tinySpec(7)
	spec.WaveSize = 3
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Await(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := m.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	var rounds int
	var last Event
	for ev := range ch {
		last = ev
		if ev.Type == "round" {
			rounds++
		}
	}
	if rounds != len(final.Rounds) {
		t.Fatalf("replayed %d rounds, job recorded %d", rounds, len(final.Rounds))
	}
	if last.Type != "state" || last.State != StateSucceeded {
		t.Fatalf("last event = %+v, want terminal state", last)
	}
}

// TestSlowSubscriberDropsNotBlocks: a subscriber that never drains must
// not stall the campaign; it loses rounds and the drop count says so.
func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, MaxJobs: 1, SubBuffer: 1})
	spec := tinySpec(7)
	spec.WaveSize = 1 // one round per experiment: many events
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := m.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	final, err := m.Await(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateSucceeded {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	// The undrained subscriber did not stall the campaign; whatever made
	// it into the buffer is still delivered, then the channel closes.
	for range ch {
	}
}

// TestOfferDropFolding pins the drop-accounting semantics: lost events
// increment a debt that rides along on the next event that does fit.
func TestOfferDropFolding(t *testing.T) {
	s := &subscriber{ch: make(chan Event, 1)}
	if !s.offer(Event{Type: "round"}) {
		t.Fatal("first offer into an empty buffer failed")
	}
	if s.offer(Event{Type: "round"}) || s.offer(Event{Type: "round"}) {
		t.Fatal("offer into a full buffer succeeded")
	}
	got := <-s.ch
	if got.Dropped != 0 {
		t.Fatalf("first delivered event carries drop debt %d", got.Dropped)
	}
	if !s.offer(Event{Type: "round"}) {
		t.Fatal("offer after drain failed")
	}
	got = <-s.ch
	if got.Dropped != 2 {
		t.Fatalf("drop debt = %d, want 2", got.Dropped)
	}
	// Debt resets once reported.
	if !s.offer(Event{Type: "state"}) {
		t.Fatal("offer failed")
	}
	if got = <-s.ch; got.Dropped != 0 {
		t.Fatalf("drop debt did not reset: %d", got.Dropped)
	}
}

// --- graph store ----------------------------------------------------------

func TestGraphStorePersistenceAndMerge(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Workers: 2, MaxJobs: 2, DataDir: dir})
	a, err := m.Submit(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(tinySpec(8))
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := m.Await(a.ID)
	fb, _ := m.Await(b.ID)
	if fa.GraphID == "" || fb.GraphID == "" {
		t.Fatalf("missing graph artifacts: %q %q", fa.GraphID, fb.GraphID)
	}

	art, merged, err := m.Store().Merge([]string{fa.GraphID, fb.GraphID})
	if err != nil {
		t.Fatal(err)
	}
	if art.Info.System != "svc-tiny" {
		t.Fatalf("merged same-system graphs lost the system name: %q", art.Info.System)
	}
	ga, _ := m.Store().Load(fa.GraphID)
	if merged.Len() < ga.Len() {
		t.Fatalf("merge shrank the graph: %d < %d", merged.Len(), ga.Len())
	}
	if _, _, err := m.Store().Merge([]string{"g-404"}); err == nil {
		t.Fatal("merge of unknown graph succeeded")
	}
	if _, _, err := m.Store().Merge(nil); err == nil {
		t.Fatal("empty merge succeeded")
	}

	// A fresh store over the same directory reloads everything,
	// byte-identically, and keeps allocating fresh ids after the max.
	reloaded, err := NewGraphStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != m.Store().Len() {
		t.Fatalf("reloaded %d artifacts, stored %d", reloaded.Len(), m.Store().Len())
	}
	orig, _ := m.Store().Get(art.Info.ID)
	got, ok := reloaded.Get(art.Info.ID)
	if !ok {
		t.Fatalf("merged artifact %s not reloaded", art.Info.ID)
	}
	if string(got.Data()) != string(orig.Data()) {
		t.Fatal("reloaded artifact bytes differ")
	}
	next, err := reloaded.Put("test", merged)
	if err != nil {
		t.Fatal(err)
	}
	if _, clash := m.Store().Get(next.Info.ID); clash {
		t.Fatalf("reloaded store reissued id %s", next.Info.ID)
	}
}

// --- metrics --------------------------------------------------------------

func TestMetricsSnapshot(t *testing.T) {
	m := newTestManager(t, Config{Workers: 3, MaxJobs: 1})
	st, err := m.Submit(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	m.Await(st.ID)
	snap := m.Snapshot()
	if snap.JobsSucceeded != 1 || snap.JobsRunning != 0 || snap.JobsQueued != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.PoolCapacity != 3 || snap.PoolInUse != 0 {
		t.Fatalf("pool: cap=%d inuse=%d", snap.PoolCapacity, snap.PoolInUse)
	}
	if snap.SimsTotal == 0 {
		t.Fatal("sims counter did not advance")
	}
	if snap.GraphsStored != 1 {
		t.Fatalf("graphs stored = %d", snap.GraphsStored)
	}
}

// --- list ordering --------------------------------------------------------

func TestListSubmissionOrder(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxJobs: 1})
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := m.Submit(tinySpec(int64(7 + i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("list has %d jobs", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Fatalf("list[%d] = %s, want %s", i, st.ID, ids[i])
		}
	}
	for _, id := range ids {
		m.Await(id)
	}
	_ = fmt.Sprintf // keep fmt if assertions above change
}
