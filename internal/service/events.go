// This file is the round fan-out: each job keeps a list of subscribers,
// every completed round (and the terminal state transition) is offered
// to each subscriber's buffered channel, and a subscriber that cannot
// keep up loses rounds -- never blocks the campaign. Subscribing to a
// job replays the rounds recorded so far before going live, so a late
// subscriber still sees the whole trajectory.

package service

import "repro/internal/report"

// subscriber is one event stream consumer. dropped counts rounds lost
// to a full buffer since the last delivered event; it is folded into
// the next event that does fit, so consumers can detect gaps.
type subscriber struct {
	ch      chan Event
	dropped int
}

// Subscribe attaches an event stream to a job: the returned channel
// first replays every recorded round, then delivers live events, and is
// closed after the terminal "state" event (immediately, for an already
// terminal job). The caller must drain the channel and eventually call
// Unsubscribe (idempotent; unnecessary after the channel closes but
// always safe).
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, errUnknownJob(id)
	}
	// Lock order: the per-job emit mutex strictly before the manager
	// lock (publish and closeSubs do the same). Holding it across the
	// backlog replay and the registration keeps per-subscriber event
	// order intact: a concurrent publish either lands entirely before
	// (its round is in the replayed backlog) or entirely after (the
	// subscriber is registered and gets it live). Jobs are never removed
	// from m.jobs, so the re-lock cannot lose j.
	j.emitMu.Lock()
	defer j.emitMu.Unlock()
	m.mu.Lock()
	sub := &subscriber{ch: make(chan Event, m.cfg.SubBuffer)}
	// Replay the backlog into the buffer. A backlog larger than the
	// buffer degrades gracefully: the overflow counts as dropped rounds,
	// exactly like falling behind live.
	for i := range j.rounds {
		r := j.rounds[i]
		ev := Event{Type: "round", Job: j.ID, Round: &r}
		if !sub.offer(ev) {
			break
		}
	}
	if j.state.Terminal() {
		sub.offer(Event{Type: "state", Job: j.ID, State: j.state, Error: j.err})
		close(sub.ch)
		m.mu.Unlock()
		return sub.ch, func() {}, nil
	}
	j.subs = append(j.subs, sub)
	m.mu.Unlock()
	return sub.ch, func() { m.unsubscribe(j, sub) }, nil
}

// offer delivers ev without blocking, folding in any drop debt; it
// reports whether the event was enqueued.
func (s *subscriber) offer(ev Event) bool {
	ev.Dropped = s.dropped
	select {
	case s.ch <- ev:
		s.dropped = 0
		return true
	default:
		s.dropped++
		return false
	}
}

// publish offers ev to every subscriber of j. The per-job emit mutex
// serializes offers against Subscribe's backlog replay (so a subscriber
// observes rounds in order) and against closeSubs (so an offer never
// races a channel close); the contended manager lock is held only long
// enough to snapshot the subscriber list, and the fan-out itself runs
// outside it -- subscriber activity can no longer extend the wave-seal
// critical section that RoundCompleted and the API handlers share.
func (m *Manager) publish(j *Job, ev Event) {
	j.emitMu.Lock()
	defer j.emitMu.Unlock()
	m.mu.Lock()
	subs := append([]*subscriber(nil), j.subs...)
	m.mu.Unlock()
	for _, s := range subs {
		s.offer(ev)
	}
}

// closeSubs closes every subscriber channel of a terminal job and
// detaches them. Holding the emit mutex across the close excludes any
// in-flight publish fan-out, which would otherwise offer on a closed
// channel.
func (m *Manager) closeSubs(j *Job) {
	j.emitMu.Lock()
	defer j.emitMu.Unlock()
	m.mu.Lock()
	subs := j.subs
	j.subs = nil
	m.mu.Unlock()
	for _, s := range subs {
		close(s.ch)
	}
}

func (m *Manager) unsubscribe(j *Job, sub *subscriber) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, s := range j.subs {
		if s == sub {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}

// RoundsOf returns a copy of the rounds recorded for a job so far.
func (m *Manager) RoundsOf(id string) ([]report.JSONRound, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, errUnknownJob(id)
	}
	return append([]report.JSONRound(nil), j.rounds...), nil
}
