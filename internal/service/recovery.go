// This file is the boot-time recovery path: replay the job journal,
// rebuild the job table, and re-queue every job that was queued,
// running, or interrupted when the previous daemon stopped. Anytime
// jobs pick their resume checkpoint back up and continue from their
// last sealed round; batch jobs (and anytime jobs whose checkpoint is
// missing or stale) re-run from scratch. Replay is idempotent: records
// duplicated by a crash between append and compaction coalesce into the
// same job states.

package service

import (
	"encoding/json"
	"log"

	"repro/internal/core/csnake"
	"repro/internal/report"
)

// recover rebuilds the manager's job table from the journal. Called
// from NewManager before the watchdog and scheduler start, so it needs
// no locking.
func (m *Manager) recover() error {
	recs, skipped, err := m.jl.replay()
	if err != nil {
		return err
	}
	if skipped > 0 {
		log.Printf("csnaked: journal replay skipped %d unparseable record(s)", skipped)
	}
	if len(recs) == 0 {
		return nil
	}

	// Fold the record stream into per-job state (last write wins; rounds
	// truncate-append exactly as the live observer does, so a retried
	// attempt's rounds overwrite the failed one's).
	ckptRounds := make(map[string]int)
	for _, rec := range recs {
		switch rec.T {
		case "submit":
			if _, ok := m.jobs[rec.Job]; ok || rec.Spec == nil {
				continue // idempotence: duplicate submit records coalesce
			}
			j := &Job{
				ID:      rec.Job,
				Spec:    *rec.Spec,
				state:   StateQueued,
				created: rec.Created,
				seq:     rec.Seq,
				done:    make(chan struct{}),
			}
			m.jobs[j.ID] = j
			m.order = append(m.order, j.ID)
			if rec.Seq > m.nextID {
				m.nextID = rec.Seq
			}
		case "state":
			j, ok := m.jobs[rec.Job]
			if !ok {
				continue
			}
			j.state = rec.State
			j.err = rec.Error
			j.attempt = rec.Attempt
			if rec.State == StateRunning && j.started.IsZero() {
				j.started = rec.At
			}
			if rec.State.Terminal() {
				j.finished = rec.At
			}
			if rec.GraphID != "" {
				j.graphID = rec.GraphID
			}
			if rec.Report != "" {
				j.reportFile = rec.Report
			}
			if rec.Sims != 0 {
				j.sims = rec.Sims
			}
			if rec.EarlyStopped {
				j.earlyStopped = true
			}
		case "round":
			j, ok := m.jobs[rec.Job]
			if !ok || rec.Round == nil {
				continue
			}
			jr := *rec.Round
			if jr.Round >= 1 && jr.Round <= len(j.rounds)+1 {
				j.rounds = append(j.rounds[:jr.Round-1], jr)
			} else {
				j.rounds = append(j.rounds, jr)
			}
		case "ckpt":
			if _, ok := m.jobs[rec.Job]; ok {
				ckptRounds[rec.Job] = rec.Rounds
			}
		case "mon-create":
			if rec.MonSpec == nil {
				continue
			}
			if _, ok := m.mons[rec.Job]; ok {
				continue // idempotence: duplicate create records coalesce
			}
			rt := newMonitorRuntime(rec.Job, rec.Seq, *rec.MonSpec, rec.Created)
			m.mons[rt.id] = rt
			m.monOrder = append(m.monOrder, rt.id)
			if rec.Seq > m.monSeq {
				m.monSeq = rec.Seq
			}
		case "mon-delete":
			if _, ok := m.mons[rec.Job]; ok {
				delete(m.mons, rec.Job)
				for i, id := range m.monOrder {
					if id == rec.Job {
						m.monOrder = append(m.monOrder[:i], m.monOrder[i+1:]...)
						break
					}
				}
			}
			if rec.Seq > m.monSeq {
				m.monSeq = rec.Seq
			}
		}
	}

	// Settle each job: terminal jobs are served from their persisted
	// report; everything else goes back on the queue.
	for _, id := range m.order {
		j := m.jobs[id]
		if j.state.Terminal() {
			switch j.state {
			case StateSucceeded:
				m.succeeded++
			case StateFailed:
				m.failed++
			case StateCancelled:
				m.cancelled++
			}
			if data := m.jl.readReport(j.reportFile); data != nil {
				var js report.JSONReport
				if err := json.Unmarshal(data, &js); err == nil {
					j.json = &js
					j.rounds = append([]report.JSONRound(nil), js.Rounds...)
					j.earlyStopped = js.EarlyStopped
				} else {
					log.Printf("csnaked: job %s: skipping corrupt report %s: %v", id, j.reportFile, err)
				}
			}
			m.simsTotal += int64(j.sims)
			m.roundsTotal += int64(len(j.rounds))
			close(j.done)
			continue
		}

		// The job was queued, running, or interrupted at the crash:
		// re-queue it. Running/interrupted jobs count as resumed.
		if j.state != StateQueued {
			j.recovered = true
			m.resumed++
		}
		j.state = StateQueued

		resumable := false
		if j.Spec.anytime() {
			if data := m.jl.readCheckpoint(id); data != nil {
				var cp csnake.Checkpoint
				if err := json.Unmarshal(data, &cp); err != nil {
					log.Printf("csnaked: job %s: skipping corrupt checkpoint: %v", id, err)
				} else if want, ok := ckptRounds[id]; ok && cp.Rounds != want {
					// The journal and side file disagree (crash between the
					// two writes): trust neither, re-run from scratch.
					log.Printf("csnaked: job %s: checkpoint covers %d rounds, journal says %d: re-running from scratch", id, cp.Rounds, want)
				} else if cp.Rounds > len(j.rounds) {
					log.Printf("csnaked: job %s: checkpoint covers %d rounds but journal replayed %d: re-running from scratch", id, cp.Rounds, len(j.rounds))
				} else {
					j.ckpt = &cp
					j.rounds = j.rounds[:cp.Rounds]
					resumable = true
				}
			}
		}
		if !resumable {
			// Scratch re-run: the trajectory will be regenerated.
			j.ckpt = nil
			j.rounds = nil
			m.jl.removeCheckpoint(id)
		} else {
			m.roundsTotal += int64(len(j.rounds))
		}
		m.queue = append(m.queue, j)
	}

	// Rotate the replayed journal down to the minimal equivalent record
	// set, so repeated crash/restart cycles don't grow it unboundedly.
	recs = append(m.snapshotRecordsLocked(), m.monitorRecordsLocked()...)
	if err := m.jl.rewrite(recs); err != nil {
		log.Printf("csnaked: boot journal compaction: %v", err)
	}
	return nil
}
