package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core/beam"
	"repro/internal/core/graph"
	"repro/internal/faults"
	"repro/internal/report"

	_ "repro/internal/systems/metastore"
)

// metaSpec is the proven MetaStore early-stop recipe (the anytime
// example): converges in ~16 rounds and detects both seeded Raft storms.
func metaSpec(seed int64) map[string]any {
	return map[string]any{
		"system":            "metastore",
		"seed":              seed,
		"reps":              3,
		"delayMagnitudesMs": []int64{500, 2000, 8000},
		"earlyStopRounds":   3,
		"waveSize":          4,
	}
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

// readSSE parses one "event:"+"data:" pair from the stream.
func readSSE(sc *bufio.Scanner) (string, []byte, error) {
	var typ string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && typ != "":
			return typ, data, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", nil, err
	}
	return "", nil, io.EOF
}

// TestServiceEndToEnd drives the full HTTP surface the way a client
// would: submit a MetaStore early-stop campaign, watch its rounds arrive
// over SSE while it runs, read the final report (both seeded Raft storms
// detected), run a second campaign, and merge the two persisted graphs
// server-side -- asserting the merge's cycle signatures are identical to
// the offline graph.Merge + beam.SearchGraph pipeline.
func TestServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full MetaStore campaigns; run without -short")
	}
	m := newTestManager(t, Config{Workers: 4, MaxJobs: 2})
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	var sub SubmitResponse
	if resp := postJSON(t, srv.URL+"/v1/campaigns", metaSpec(42), &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	// Stream rounds live. The SSE contract: round events arrive while the
	// campaign is still running, strictly before the terminal state event
	// that ends the stream.
	stream, err := http.Get(srv.URL + "/v1/campaigns/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	sc := bufio.NewScanner(stream.Body)
	var rounds int
	var terminal Event
	var stateMidStream JobState
	for {
		typ, data, err := readSSE(sc)
		if err != nil {
			t.Fatalf("stream ended without a terminal state event: %v", err)
		}
		var ev Event
		if err := json.Unmarshal(data, &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", data, err)
		}
		if typ == "round" {
			rounds++
			if rounds == 1 {
				// The job is observably alive mid-stream.
				var st JobStatus
				getJSON(t, srv.URL+"/v1/campaigns/"+sub.ID, &st)
				stateMidStream = st.State
			}
			continue
		}
		terminal = ev
		break
	}
	if rounds == 0 {
		t.Fatal("no round events arrived before the terminal state")
	}
	if terminal.State != StateSucceeded {
		t.Fatalf("terminal state = %s (%s)", terminal.State, terminal.Error)
	}
	if stateMidStream != StateRunning && stateMidStream != StateSucceeded {
		t.Fatalf("mid-stream status = %s", stateMidStream)
	}

	// Report: both seeded storms detected.
	var rep report.JSONReport
	if resp := getJSON(t, srv.URL+"/v1/campaigns/"+sub.ID+"/report", &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d", resp.StatusCode)
	}
	if !rep.EarlyStopped {
		t.Error("early-stop campaign did not early-stop")
	}
	detected := strings.Join(rep.DetectedBugs, ",")
	for _, bug := range []string{"RAFT-1", "RAFT-2"} {
		if !strings.Contains(detected, bug) {
			t.Fatalf("detected bugs %v, missing %s", rep.DetectedBugs, bug)
		}
	}
	if len(rep.Rounds) != rounds {
		t.Errorf("report has %d rounds, stream delivered %d", len(rep.Rounds), rounds)
	}

	// Second campaign (different seed), awaited via the manager.
	var sub2 SubmitResponse
	postJSON(t, srv.URL+"/v1/campaigns", metaSpec(43), &sub2)
	if st, err := m.Await(sub2.ID); err != nil || st.State != StateSucceeded {
		t.Fatalf("second campaign: %v / %v", st, err)
	}

	st1, _ := m.Status(sub.ID)
	st2, _ := m.Status(sub2.ID)
	if st1.GraphID == "" || st2.GraphID == "" {
		t.Fatalf("missing graph artifacts: %q %q", st1.GraphID, st2.GraphID)
	}

	// Both graphs are served raw; rebuild them client-side.
	offline := graph.New()
	for _, id := range []string{st1.GraphID, st2.GraphID} {
		resp, err := http.Get(srv.URL + "/v1/graphs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("graph %s: status %d err %v", id, resp.StatusCode, err)
		}
		g := graph.New()
		if err := g.UnmarshalJSON(data); err != nil {
			t.Fatalf("graph %s did not round-trip: %v", id, err)
		}
		offline.Merge(g)
	}

	// Server-side merge + re-search vs. the offline pipeline.
	var merged MergeResponse
	if resp := postJSON(t, srv.URL+"/v1/graphs/merge",
		MergeRequest{Graphs: []string{st1.GraphID, st2.GraphID}, Research: true}, &merged); resp.StatusCode != http.StatusOK {
		t.Fatalf("merge: status %d", resp.StatusCode)
	}
	if merged.Graph.System != "MetaStore" {
		t.Errorf("merged graph system = %q", merged.Graph.System)
	}
	wantCycles := beam.SearchGraph(offline, nil, beam.Options{})
	wantClusters := beam.ClusterCycles(wantCycles, func(faults.ID) (int, bool) { return 0, false })
	if merged.Cycles != len(wantCycles) {
		t.Fatalf("server merge found %d cycles, offline search %d", merged.Cycles, len(wantCycles))
	}
	if len(merged.Clusters) != len(wantClusters) {
		t.Fatalf("server merge has %d clusters, offline %d", len(merged.Clusters), len(wantClusters))
	}
	for i, wc := range wantClusters {
		got := merged.Clusters[i]
		if got.Key != wc.Key || got.Cycles != len(wc.Cycles) {
			t.Fatalf("cluster %d: got (%s, %d), offline (%s, %d)",
				i, got.Key, got.Cycles, wc.Key, len(wc.Cycles))
		}
		if want := wc.Cycles[0].String(); got.Best.Chain != want {
			t.Fatalf("cluster %d best cycle:\n  server:  %s\n  offline: %s", i, got.Best.Chain, want)
		}
	}

	// The merged artifact is itself served and loadable.
	var infos []GraphInfo
	getJSON(t, srv.URL+"/v1/graphs", &infos)
	if len(infos) != 3 {
		t.Fatalf("graph list has %d artifacts, want 3", len(infos))
	}

	// Observability.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"csnaked_jobs_succeeded_total 2",
		"csnaked_graphs_stored 3",
		"csnaked_jobs_running 0",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q:\n%s", want, mbody)
		}
	}
	var health struct {
		Status  string  `json:"status"`
		Metrics Metrics `json:"metrics"`
	}
	getJSON(t, srv.URL+"/healthz", &health)
	if health.Status != "ok" || health.Metrics.JobsSucceeded != 2 {
		t.Fatalf("healthz = %+v", health)
	}
}

// TestServiceHTTPErrors pins the error status codes.
func TestServiceHTTPErrors(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxJobs: 1})
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	check := func(method, path string, body string, want int) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s %s: status %d, want %d", method, path, resp.StatusCode, want)
		}
	}

	check("POST", "/v1/campaigns", `{"system":"no-such-system"}`, http.StatusBadRequest)
	check("POST", "/v1/campaigns", `{"system":"svc-tiny","bogusField":1}`, http.StatusBadRequest)
	check("GET", "/v1/campaigns/job-404", "", http.StatusNotFound)
	check("DELETE", "/v1/campaigns/job-404", "", http.StatusNotFound)
	check("GET", "/v1/campaigns/job-404/events", "", http.StatusNotFound)
	check("GET", "/v1/campaigns/job-404/report", "", http.StatusNotFound)
	check("GET", "/v1/graphs/g-404", "", http.StatusNotFound)
	check("POST", "/v1/graphs/merge", `{"graphs":[]}`, http.StatusBadRequest)
	check("POST", "/v1/graphs/merge", `{"graphs":["g-404"]}`, http.StatusBadRequest)

	// A job still running answers /report with 409, not 404.
	var sub SubmitResponse
	postJSON(t, srv.URL+"/v1/campaigns", tinySpec(7), &sub)
	var sub2 SubmitResponse
	postJSON(t, srv.URL+"/v1/campaigns", tinySpec(8), &sub2) // queued behind sub
	st, _ := m.Status(sub2.ID)
	if st.State == StateQueued {
		check("GET", "/v1/campaigns/"+sub2.ID+"/report", "", http.StatusConflict)
	}
	m.Await(sub.ID)
	m.Await(sub2.ID)
	_ = fmt.Sprintf
}
