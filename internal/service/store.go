// This file is the graph artifact store: every succeeded campaign job
// persists its annotated causal graph (the schema-v1 JSON round trip
// from internal/core/graph) as a served artifact, and POST
// /v1/graphs/merge stitches stored graphs into new artifacts --
// server-side cross-campaign stitching, where previously only the
// csnake CLI's -edges-out/-edges-in flags could. With a data directory
// configured, artifacts survive daemon restarts.

package service

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core/graph"
)

// GraphArtifact is one stored graph: metadata plus the serialized
// schema-v1 JSON document.
type GraphArtifact struct {
	Info GraphInfo
	data []byte
}

// Data returns the serialized graph document (schema-v1 JSON).
func (a *GraphArtifact) Data() []byte { return a.data }

// GraphStore holds graph artifacts in memory and, when dir is set,
// mirrors them to <dir>/<id>.graph.json. Artifacts are immutable once
// stored.
type GraphStore struct {
	mu    sync.Mutex
	dir   string
	arts  map[string]*GraphArtifact
	order []string
	seq   int
}

// NewGraphStore opens a store over dir ("" = memory only), reloading
// any artifacts a previous daemon left there.
func NewGraphStore(dir string) (*GraphStore, error) {
	s := &GraphStore{dir: dir, arts: make(map[string]*GraphArtifact)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graph store: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "g*.graph.json"))
	if err != nil {
		return nil, fmt.Errorf("graph store: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		id := strings.TrimSuffix(filepath.Base(path), ".graph.json")
		// A corrupt or unreadable artifact (e.g. torn by a crash predating
		// atomic writes) is skipped and logged, never fatal: one bad file
		// must not keep the daemon from booting.
		g, err := graph.ReadFile(path) // load = well-formedness pass
		if err != nil {
			log.Printf("csnaked: graph store: skipping corrupt artifact %s: %v", path, err)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			log.Printf("csnaked: graph store: skipping unreadable artifact %s: %v", path, err)
			continue
		}
		fi, _ := os.Stat(path)
		created := time.Time{}
		if fi != nil {
			created = fi.ModTime()
		}
		s.arts[id] = &GraphArtifact{
			Info: GraphInfo{
				ID: id, System: g.System(), Source: "reloaded",
				Edges: g.Len(), Faults: g.NumFaults(),
				Bytes: len(data), Created: created,
			},
			data: data,
		}
		s.order = append(s.order, id)
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "g")); err == nil && n > s.seq {
			s.seq = n
		}
	}
	return s, nil
}

// Put serializes g and stores it as a new artifact.
func (s *GraphStore) Put(source string, g *graph.Graph) (*GraphArtifact, error) {
	data, err := g.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("graph store: %w", err)
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("g%d", s.seq)
	art := &GraphArtifact{
		Info: GraphInfo{
			ID: id, System: g.System(), Source: source,
			Edges: g.Len(), Faults: g.NumFaults(),
			Bytes: len(data), Created: time.Now(),
		},
		data: data,
	}
	s.arts[id] = art
	s.order = append(s.order, id)
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		// Atomic (tmp + fsync + rename): a daemon crash mid-write leaves
		// either no artifact or a complete one, never a torn file.
		if err := atomicWriteFile(filepath.Join(dir, id+".graph.json"), data, 0o644); err != nil {
			return nil, fmt.Errorf("graph store: %w", err)
		}
	}
	return art, nil
}

// Get returns a stored artifact.
func (s *GraphStore) Get(id string) (*GraphArtifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.arts[id]
	return a, ok
}

// List returns artifact metadata in storage order.
func (s *GraphStore) List() []GraphInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphInfo, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.arts[id].Info)
	}
	return out
}

// Len returns the number of stored artifacts.
func (s *GraphStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.arts)
}

// Load deserializes a stored artifact back into a graph.
func (s *GraphStore) Load(id string) (*graph.Graph, error) {
	a, ok := s.Get(id)
	if !ok {
		return nil, fmt.Errorf("unknown graph %q", id)
	}
	g := graph.New()
	if err := g.UnmarshalJSON(a.data); err != nil {
		return nil, err
	}
	return g, nil
}

// Merge stitches the named artifacts into one graph (graph.Merge
// semantics: edge identities dedup, evidence accumulates up to the cap)
// and stores the result as a new artifact. At least one id is required;
// the merged artifact's system is the shared system name, or "" when
// the sources span systems.
func (s *GraphStore) Merge(ids []string) (*GraphArtifact, *graph.Graph, error) {
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("merge: no graph ids given")
	}
	merged := graph.New()
	system := ""
	for i, id := range ids {
		g, err := s.Load(id)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			system = g.System()
		} else if system != g.System() {
			system = ""
		}
		merged.Merge(g)
	}
	merged.SetSystem(system)
	art, err := s.Put("merge:"+strings.Join(ids, "+"), merged)
	if err != nil {
		return nil, nil, err
	}
	return art, merged, nil
}
