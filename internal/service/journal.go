// This file is the durability layer: an append-only journal of job
// lifecycle records under <data>/jobs plus atomically-written side files
// for per-job resume checkpoints and final reports. The journal is
// JSONL, fsynced per record, tolerant of a torn final record (a crash
// mid-append loses at most that record), and compacted by atomic
// tmp+fsync+rename rewrite. The manager replays it at boot to re-queue
// every job that was queued or running when the daemon died.

package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/report"
)

// journalMaxBytes is the compaction high-water mark: after an append
// pushes the journal past it, the manager rewrites the journal to the
// minimal record set reproducing the current job table.
const journalMaxBytes = 1 << 20

// journalRecord is one journal line. T selects the record type and
// which fields are meaningful:
//
//   - "submit": a job entered the system (Job, Seq, Spec, Created).
//   - "state": a lifecycle transition (State, Error, Attempt; terminal
//     records also carry GraphID, Report, Sims, EarlyStopped).
//   - "round": one completed anytime round (Round).
//   - "ckpt": a resume checkpoint was sealed (Rounds; the checkpoint
//     itself lives in the job's ck-<job>.json side file).
//   - "mon-create" / "mon-delete": online monitor lifecycle (Job is the
//     monitor id, MonSpec its spec). Monitors re-create empty at boot:
//     their evidence is stream-sourced, the producer re-ingests it.
type journalRecord struct {
	T   string `json:"t"`
	Job string `json:"job"`

	Seq     int           `json:"seq,omitempty"`
	Spec    *CampaignSpec `json:"spec,omitempty"`
	Created time.Time     `json:"created,omitempty"`

	State   JobState  `json:"state,omitempty"`
	Error   string    `json:"error,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	At      time.Time `json:"at,omitempty"`

	Round *report.JSONRound `json:"round,omitempty"`

	Rounds int `json:"rounds,omitempty"`

	GraphID      string `json:"graphId,omitempty"`
	Report       string `json:"report,omitempty"`
	Sims         int    `json:"sims,omitempty"`
	EarlyStopped bool   `json:"earlyStopped,omitempty"`

	MonSpec *MonitorSpec `json:"monitor,omitempty"`
}

// journal is the on-disk job log. Appends are serialized by the
// manager; the internal mutex only guards the handle against disable()
// (the test hook simulating a hard kill) racing an append.
type journal struct {
	dir string

	mu       sync.Mutex
	f        *os.File
	size     int64
	disabled bool
}

// openJournal opens (creating if needed) the journal under dir.
func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	l := &journal{dir: dir}
	f, err := os.OpenFile(l.path(), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if fi, err := f.Stat(); err == nil {
		l.size = fi.Size()
	}
	// Seal a torn tail: if the previous process died mid-append, the file
	// ends without a newline, and appending onto it would corrupt the next
	// record too. A newline caps the damage at the already-torn line.
	if l.size > 0 {
		buf := make([]byte, 1)
		if _, rerr := f.ReadAt(buf, l.size-1); rerr == nil && buf[0] != '\n' {
			if _, werr := f.Write([]byte{'\n'}); werr == nil {
				l.size++
			}
		}
	}
	l.f = f
	return l, nil
}

func (l *journal) path() string { return filepath.Join(l.dir, "journal.jsonl") }

func (l *journal) ckptPath(job string) string { return filepath.Join(l.dir, "ck-"+job+".json") }

func (l *journal) reportName(job string) string { return "report-" + job + ".json" }

// append writes one record followed by a newline and fsyncs. A record
// is either fully durable or (on a crash mid-write) a torn final line
// that replay skips.
func (l *journal) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.disabled || l.f == nil {
		return nil
	}
	if _, err := l.f.Write(data); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	l.size += int64(len(data))
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// oversize reports whether the journal passed the compaction mark.
func (l *journal) oversize() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size > journalMaxBytes
}

// replay reads every parseable record in order. Unparseable lines --
// the torn tail of a crashed append, or outright corruption -- are
// skipped, not fatal: the journal is an at-least-this-much record of
// history, and every skipped line costs at most one transition that the
// recovery path re-derives or re-executes.
func (l *journal) replay() ([]journalRecord, int, error) {
	f, err := os.Open(l.path())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var recs []journalRecord
	skipped := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.T == "" || rec.Job == "" {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, skipped, fmt.Errorf("journal: %w", err)
	}
	return recs, skipped, nil
}

// rewrite atomically replaces the journal with recs (tmp + fsync +
// rename) and reopens the append handle -- compaction and boot-time
// segment rotation.
func (l *journal) rewrite(recs []journalRecord) error {
	var buf bytes.Buffer
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.disabled {
		return nil
	}
	if err := atomicWriteFile(l.path(), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if l.f != nil {
		l.f.Close()
	}
	f, err := os.OpenFile(l.path(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil
		return fmt.Errorf("journal: %w", err)
	}
	l.f = f
	l.size = int64(buf.Len())
	return nil
}

// writeCheckpoint atomically persists a job's resume checkpoint.
func (l *journal) writeCheckpoint(job string, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.disabled {
		return nil
	}
	return atomicWriteFile(l.ckptPath(job), data, 0o644)
}

// removeCheckpoint deletes a terminal job's checkpoint.
func (l *journal) removeCheckpoint(job string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.disabled {
		return
	}
	os.Remove(l.ckptPath(job))
}

// readCheckpoint loads a job's checkpoint bytes (nil if absent).
func (l *journal) readCheckpoint(job string) []byte {
	data, err := os.ReadFile(l.ckptPath(job))
	if err != nil {
		return nil
	}
	return data
}

// writeReport atomically persists a job's final report and returns the
// file name recorded in the journal ("" when writes are disabled).
func (l *journal) writeReport(job string, data []byte) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.disabled {
		return "", nil
	}
	name := l.reportName(job)
	if err := atomicWriteFile(filepath.Join(l.dir, name), data, 0o644); err != nil {
		return "", err
	}
	return name, nil
}

// readReport loads a persisted report file by name (nil if absent).
func (l *journal) readReport(name string) []byte {
	if name == "" {
		return nil
	}
	data, err := os.ReadFile(filepath.Join(l.dir, name))
	if err != nil {
		return nil
	}
	return data
}

// disable is the hard-kill test hook: all further journal and side-file
// writes become no-ops, exactly as if the process had died. The on-disk
// state is frozen at the last completed write.
func (l *journal) disable() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.disabled = true
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
}

// close releases the append handle.
func (l *journal) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
}

// atomicWriteFile writes data to path via a temp file in the same
// directory, fsyncs it, and renames it into place, so a crash leaves
// either the old content or the new -- never a partial file. The
// containing directory is fsynced best-effort to persist the rename.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
