package metastore

// Checkpointable implementation: Snapshot copies every mutable Cluster
// field into plain values, Restore rebuilds an equivalent cluster on an
// engine primed from the matching sim.Checkpoint. The two must agree on
// process identity -- Snapshot records pids, Restore adopts them -- and
// on mailbox creation order, which newNode fixes (rpc then propose, node
// by node), exactly as NewCluster created them.

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/systems/sysreg"
)

// clusterState is the snapshot payload. Everything is a value copy:
// snapshots outlive the profile cluster and are shared across forks.
type clusterState struct {
	nodes     []nodeState
	clients   []clientState
	transfers []adminState
	pausers   []adminState
	crashers  []adminState
}

type nodeState struct {
	state     role
	term      int
	votedFor  int
	votedTerm int

	last      int
	commit    int
	applied   int
	compacted int

	lastHeard   time.Duration
	leaderHint  int
	campaigning bool

	next, match []int
	leadEpoch   int

	rpcPID, timerPID, applyPID, compactPID int
	propPIDs                               []int
	replRuns                               []replRun
}

type clientState struct {
	done   int
	target int
	pid    int
}

// adminState covers the three admin loops: crashers have no progress
// counter, so done stays 0 for them.
type adminState struct {
	done int
	pid  int
}

// Snapshot implements sysreg.Checkpointable.
func (c *Cluster) Snapshot() any {
	st := &clusterState{}
	for _, n := range c.nodes {
		ns := nodeState{
			state: n.state, term: n.term, votedFor: n.votedFor, votedTerm: n.votedTerm,
			last: n.last, commit: n.commit, applied: n.applied, compacted: n.compacted,
			lastHeard: n.lastHeard, leaderHint: n.leaderHint, campaigning: n.campaigning,
			next:      append([]int(nil), n.next...),
			match:     append([]int(nil), n.match...),
			leadEpoch: n.leadEpoch,
			rpcPID:    n.rpcProc.PID(),
			timerPID:  n.timerProc.PID(),
			applyPID:  n.applyProc.PID(),
		}
		ns.compactPID = -1
		if n.compactProc != nil {
			ns.compactPID = n.compactProc.PID()
		}
		for _, p := range n.propProcs {
			ns.propPIDs = append(ns.propPIDs, p.PID())
		}
		for _, rr := range n.replRuns {
			ns.replRuns = append(ns.replRuns, *rr)
		}
		st.nodes = append(st.nodes, ns)
	}
	for _, cl := range c.clients {
		st.clients = append(st.clients, clientState{done: cl.done, target: cl.target, pid: cl.proc.PID()})
	}
	for _, a := range c.transfers {
		st.transfers = append(st.transfers, adminState{done: a.done, pid: a.proc.PID()})
	}
	for _, a := range c.pausers {
		st.pausers = append(st.pausers, adminState{done: a.done, pid: a.proc.PID()})
	}
	for _, a := range c.crashers {
		st.crashers = append(st.crashers, adminState{pid: a.proc.PID()})
	}
	return st
}

// adoptIf adopts pid with the body built from its captured park tag. Dead
// processes (crashed nodes, exited clients and admins) are skipped: their
// stale wakes replay against tombstones the sim layer plants itself.
func adoptIf(s *sim.RestoreSession, pid int, body func(tag string) func(p *sim.Proc)) error {
	if pid < 0 {
		return nil
	}
	tag, ok := s.ParkTag(pid)
	if !ok {
		return nil
	}
	_, err := s.Adopt(pid, body(tag))
	return err
}

// Restore implements sysreg.Checkpointable. The receiver is the *profile*
// cluster, used purely as a factory for immutable configuration; the
// rebuilt cluster lives on ctx.Engine with ctx.RT and is kept alive by
// the adopted process bodies.
func (c *Cluster) Restore(ctx *sysreg.RunContext, state any) error {
	st, ok := state.(*clusterState)
	if !ok {
		return fmt.Errorf("metastore: snapshot type %T does not belong to this system", state)
	}
	if len(st.nodes) != c.cfg.Nodes || len(st.clients) != len(c.clients) ||
		len(st.transfers) != len(c.transfers) || len(st.pausers) != len(c.pausers) ||
		len(st.crashers) != len(c.crashers) {
		return fmt.Errorf("metastore: snapshot shape does not match this cluster")
	}
	s := ctx.Session
	nc := &Cluster{cfg: c.cfg, eng: ctx.Engine, rt: ctx.RT}
	// Mailbox creation order must replay NewCluster's exactly: rpc then
	// propose for node 0, then node 1, ... Finish verifies the ids.
	for i := 0; i < nc.cfg.Nodes; i++ {
		nc.nodes = append(nc.nodes, newNode(nc, i))
	}
	for i, n := range nc.nodes {
		ns := &st.nodes[i]
		n.state = ns.state
		n.term, n.votedFor, n.votedTerm = ns.term, ns.votedFor, ns.votedTerm
		n.last, n.commit, n.applied, n.compacted = ns.last, ns.commit, ns.applied, ns.compacted
		n.lastHeard, n.leaderHint, n.campaigning = ns.lastHeard, ns.leaderHint, ns.campaigning
		n.next = append([]int(nil), ns.next...)
		n.match = append([]int(nil), ns.match...)
		n.leadEpoch = ns.leadEpoch

		if err := adoptIf(s, ns.rpcPID, func(string) func(p *sim.Proc) {
			return n.rpcHandler
		}); err != nil {
			return err
		}
		if err := adoptIf(s, ns.timerPID, func(string) func(p *sim.Proc) {
			return func(p *sim.Proc) { n.electionTimer(p, true) }
		}); err != nil {
			return err
		}
		if err := adoptIf(s, ns.applyPID, func(string) func(p *sim.Proc) {
			return func(p *sim.Proc) { n.applyLoop(p, true) }
		}); err != nil {
			return err
		}
		if err := adoptIf(s, ns.compactPID, func(string) func(p *sim.Proc) {
			return func(p *sim.Proc) { n.compactLoop(p, true) }
		}); err != nil {
			return err
		}
		for _, pid := range ns.propPIDs {
			if err := adoptIf(s, pid, func(string) func(p *sim.Proc) {
				return n.proposeHandler
			}); err != nil {
				return err
			}
		}
		// Every captured replication record is re-created (the list is
		// cluster state), but only live loops get a body: a record whose
		// process was already killed unwinds in the original via the stale
		// wake, which the fork's tombstone skips identically.
		for _, rrv := range ns.replRuns {
			rr := &replRun{pid: rrv.pid, term: rrv.term, epoch: rrv.epoch}
			n.replRuns = append(n.replRuns, rr)
			if err := adoptIf(s, rr.pid, func(string) func(p *sim.Proc) {
				return func(p *sim.Proc) {
					defer n.dropRepl(rr)
					n.replicationLoop(p, rr.term, rr.epoch, true)
				}
			}); err != nil {
				return err
			}
		}
	}
	for i, src := range c.clients {
		cs := &st.clients[i]
		cl := &proposer{
			c: nc, name: src.name, props: src.props, batch: src.batch,
			gap: src.gap, start: src.start,
			done: cs.done, target: cs.target,
		}
		nc.clients = append(nc.clients, cl)
		if err := adoptIf(s, cs.pid, func(tag string) func(p *sim.Proc) {
			return func(p *sim.Proc) { cl.run(p, tag) }
		}); err != nil {
			return err
		}
	}
	for i, src := range c.transfers {
		as := &st.transfers[i]
		a := &transferLoop{c: nc, name: src.name, start: src.start, every: src.every, times: src.times, done: as.done}
		nc.transfers = append(nc.transfers, a)
		if err := adoptIf(s, as.pid, func(tag string) func(p *sim.Proc) {
			return func(p *sim.Proc) { a.run(p, tag) }
		}); err != nil {
			return err
		}
	}
	for i, src := range c.pausers {
		as := &st.pausers[i]
		a := &pauserLoop{c: nc, name: src.name, target: src.target, start: src.start, pauseFor: src.pauseFor, every: src.every, times: src.times, done: as.done}
		nc.pausers = append(nc.pausers, a)
		if err := adoptIf(s, as.pid, func(tag string) func(p *sim.Proc) {
			return func(p *sim.Proc) { a.run(p, tag) }
		}); err != nil {
			return err
		}
	}
	for i, src := range c.crashers {
		as := &st.crashers[i]
		a := &crasher{c: nc, target: src.target, at: src.at}
		nc.crashers = append(nc.crashers, a)
		if err := adoptIf(s, as.pid, func(tag string) func(p *sim.Proc) {
			return func(p *sim.Proc) { a.run(p, tag) }
		}); err != nil {
			return err
		}
	}
	return nil
}
