package metastore

import (
	"time"

	"repro/internal/faults"
	"repro/internal/systems/sysreg"
)

type sysImpl struct{}

// New returns the Raft-style metadata store target system.
func New() sysreg.System { return sysImpl{} }

func init() { sysreg.Register("MetaStore", New, "metastore", "raft") }

func (sysImpl) Name() string             { return "MetaStore" }
func (sysImpl) Points() []faults.Point   { return points() }
func (sysImpl) Nests() []faults.LoopNest { return nests() }
func (sysImpl) SourceDirs() []string     { return []string{"internal/systems/metastore"} }

func wl(name, desc string, horizon time.Duration, cfg Config, scenario func(c *Cluster)) sysreg.Workload {
	return sysreg.Workload{
		Name: name, Desc: desc, Horizon: horizon,
		Run: func(ctx *sysreg.RunContext) {
			c := NewCluster(ctx, cfg)
			scenario(c)
			ctx.Ckpt = c
		},
	}
}

func (sysImpl) Workloads() []sysreg.Workload {
	return []sysreg.Workload{
		wl("steady_commits", "steady proposal stream on three replicas", 30*time.Second,
			Config{},
			func(c *Cluster) {
				c.SpawnProposer("c1", 60, 4, 150*time.Millisecond, 0)
			}),
		wl("propose_heavy", "saturating proposal load", 40*time.Second,
			Config{},
			func(c *Cluster) {
				c.SpawnProposer("c1", 80, 6, 100*time.Millisecond, 0)
				c.SpawnProposer("c2", 80, 6, 120*time.Millisecond, 300*time.Millisecond)
				c.SpawnProposer("c3", 70, 5, 130*time.Millisecond, 600*time.Millisecond)
			}),
		wl("slow_follower_catchup", "a follower repeatedly pauses and needs entry catch-up (RAFT-1 t1)", 45*time.Second,
			Config{},
			func(c *Cluster) {
				c.SpawnProposer("c1", 90, 10, 110*time.Millisecond, 0)
				c.SpawnProposer("c2", 90, 10, 130*time.Millisecond, 200*time.Millisecond)
				c.SpawnPauser("churn", 2, 3*time.Second, 1800*time.Millisecond, 9*time.Second, 3)
			}),
		wl("leader_transfer", "planned leadership transfers under steady load (RAFT-1 t2)", 40*time.Second,
			Config{},
			func(c *Cluster) {
				c.SpawnProposer("c1", 80, 6, 130*time.Millisecond, 0)
				c.SpawnProposer("c2", 70, 5, 150*time.Millisecond, 300*time.Millisecond)
				c.SpawnTransferLoop("admin", 5*time.Second, 7*time.Second, 5)
			}),
		wl("cold_start", "leaderless boot: the first election happens naturally", 35*time.Second,
			Config{ColdStart: true},
			func(c *Cluster) {
				c.SpawnProposer("c1", 30, 3, 200*time.Millisecond, 6*time.Second)
			}),
		wl("compaction_catchup", "compaction racing a pausing follower's catch-up (RAFT-2 t1)", 60*time.Second,
			Config{Compaction: true, CompactKeep: 100, SnapLag: 40},
			func(c *Cluster) {
				c.SpawnProposer("c1", 140, 10, 140*time.Millisecond, 0)
				c.SpawnProposer("c2", 140, 10, 160*time.Millisecond, 250*time.Millisecond)
				c.SpawnPauser("churn", 2, 4*time.Second, 1800*time.Millisecond, 12*time.Second, 3)
			}),
		wl("snapshot_heavy", "five replicas, two pausing followers, aggressive compaction", 60*time.Second,
			Config{Nodes: 5, Compaction: true, CompactKeep: 160, SnapLag: 45},
			func(c *Cluster) {
				c.SpawnProposer("c1", 120, 8, 130*time.Millisecond, 0)
				c.SpawnProposer("c2", 120, 8, 150*time.Millisecond, 300*time.Millisecond)
				c.SpawnProposer("c3", 100, 6, 170*time.Millisecond, 600*time.Millisecond)
				c.SpawnPauser("churn-a", 3, 4*time.Second, 1800*time.Millisecond, 14*time.Second, 2)
				c.SpawnPauser("churn-b", 4, 9*time.Second, 1800*time.Millisecond, 14*time.Second, 2)
			}),
		wl("membership_churn", "a member leaves permanently and another pauses (5 replicas)", 45*time.Second,
			Config{Nodes: 5},
			func(c *Cluster) {
				c.SpawnProposer("c1", 90, 5, 130*time.Millisecond, 0)
				c.SpawnProposer("c2", 80, 4, 150*time.Millisecond, 400*time.Millisecond)
				c.CrashMember(4, 8*time.Second)
				c.SpawnPauser("churn", 3, 14*time.Second, 1800*time.Millisecond, 10*time.Second, 1)
			}),
		wl("quiet_baseline", "near-idle cluster", 20*time.Second,
			Config{},
			func(c *Cluster) {
				c.SpawnProposer("c1", 8, 2, 1500*time.Millisecond, 0)
			}),
	}
}

func (sysImpl) Bugs() []sysreg.Bug {
	return []sysreg.Bug{
		{
			ID: "RAFT-1", JIRA: "MetaStore#raft-election-loop", Title: "Leader election",
			CoreFaults: []faults.ID{PtElectionLoop, PtHBFresh},
			Delays:     1, Negations: 1,
		},
		{
			ID: "RAFT-2", JIRA: "MetaStore#snapshot-storm", Title: "Snapshot transfer",
			CoreFaults: []faults.ID{PtSnapSendLoop, PtLogAvail},
			Delays:     1, Negations: 1,
		},
	}
}
