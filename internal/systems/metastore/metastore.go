// Package metastore is a Raft-style replicated metadata store on the
// deterministic simulator, modeled on etcd-raft deployments (MetaStore):
// leader election with randomized timeouts, heartbeat rounds, log
// replication with follower catch-up, snapshot transfer with log
// compaction, and availability churn (nodes pausing, resuming, and
// leaving the group).
//
// It is the repository's control-plane consensus target: unlike the
// data-plane systems (HDFS, HBase, Flink, OZone analogues), its failure
// feedback runs through the *coordination* layer -- the leader's single
// serialized replication round is responsible for heartbeats, catch-up,
// and snapshot transfer all at once, so any load on one duty starves the
// others and the cluster responds by electing a new leader, which
// inherits (and amplifies) the same load.
//
// Two self-sustaining cascading failures are seeded as mechanistic
// feedback loops, mirroring the election-loop issue documented in the
// MetaStore repository:
//
//   - RAFT-1, the election-loop storm: a slow follower forces catch-up
//     replication; catch-up monopolizes the replication round; heartbeats
//     slip past the election timeout; followers elect a new leader; the
//     new leader inherits a cluster that is further behind, and client
//     retries of timed-out proposals duplicate entries, so the catch-up
//     load grows. Cycle: catch-up delay -> heartbeat-staleness negation
//     -> catch-up load.
//
//   - RAFT-2, the snapshot-transfer storm: log compaction during catch-up
//     forces full snapshot sends; a snapshot transfer occupies the round
//     for chunks x chunk-cost; meanwhile the log grows past the
//     compaction margin for every other lagging follower, so their
//     entries are compacted away too and they also need snapshots. Cycle:
//     snapshot-send delay -> log-availability negation -> snapshot load.
package metastore

import (
	"fmt"
	"time"

	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
)

// Config selects topology and features per workload.
type Config struct {
	Nodes int // replica count (default 3)
	// ColdStart boots the cluster leaderless: the first election happens
	// naturally at the first timer tick. The default pre-elects node 0 for
	// term 1 so steady-state workloads have profile runs with no election
	// activity at all.
	ColdStart bool
	// HeartbeatEvery is the leader's replication round period (default
	// 400ms).
	HeartbeatEvery time.Duration
	// ElectionTimeout is both the follower staleness bound and the election
	// timer base period; each tick adds a random jitter in [0,
	// ElectionJitter) -- the randomized timeout that breaks split votes
	// (default 2.5s + 700ms).
	ElectionTimeout time.Duration
	ElectionJitter  time.Duration
	// CatchupBatch is the number of entries per catch-up append (default 12).
	CatchupBatch int
	// Compaction enables the per-node log compaction loop, which trims the
	// log CompactKeep entries behind the apply frontier (default 150).
	Compaction  bool
	CompactKeep int
	// SnapLag, when positive, makes the leader prefer a full snapshot over
	// entry catch-up for any follower more than SnapLag entries behind.
	SnapLag int
	// SnapChunks is the number of chunks per snapshot transfer (default 12).
	SnapChunks int
	// ProposeTimeout is the client-side RPC deadline per proposal attempt
	// (default 1.2s); CommitWait is how long the leader holds a proposal
	// waiting for quorum commit before failing it back to the client
	// (default 700ms). A failed-but-appended proposal that the client
	// retries duplicates its entries -- the at-least-once amplification
	// that lets election storms feed themselves.
	ProposeTimeout time.Duration
	CommitWait     time.Duration
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 400 * time.Millisecond
	}
	if c.ElectionTimeout == 0 {
		c.ElectionTimeout = 2500 * time.Millisecond
	}
	if c.ElectionJitter == 0 {
		c.ElectionJitter = 700 * time.Millisecond
	}
	if c.CatchupBatch == 0 {
		c.CatchupBatch = 12
	}
	if c.CompactKeep == 0 {
		c.CompactKeep = 150
	}
	if c.SnapChunks == 0 {
		c.SnapChunks = 12
	}
	if c.ProposeTimeout == 0 {
		c.ProposeTimeout = 1200 * time.Millisecond
	}
	if c.CommitWait == 0 {
		c.CommitWait = 700 * time.Millisecond
	}
	return c
}

const (
	hbJitter         = 40 * time.Millisecond
	entrySendCost    = 4 * time.Millisecond
	fsyncCost        = 1 * time.Millisecond
	applyCost        = 2 * time.Millisecond
	applyEvery       = 150 * time.Millisecond
	snapChunkCost    = 45 * time.Millisecond
	snapRecvCost     = 8 * time.Millisecond
	voteRPCTimeout   = 300 * time.Millisecond
	electBackoff     = 400 * time.Millisecond
	compactEvery     = 1500 * time.Millisecond
	compactBatch     = 40
	compactBatchCost = 25 * time.Millisecond
	commitPoll       = 25 * time.Millisecond
	// catchupWindow caps the catch-up batches sent to one peer in one
	// round, so a permanently-dead peer loads the round by a bounded
	// amount instead of an ever-growing backlog scan.
	catchupWindow = 8
)

type role int

const (
	follower role = iota
	candidate
	leader
)

// Cluster is one simulated MetaStore deployment. It implements
// sysreg.Checkpointable: all mutable state lives in struct fields, every
// long-lived process parks only at tagged SleepQ/RecvQ sites, and
// clients/admins are structs whose progress counters are part of the
// snapshot.
type Cluster struct {
	cfg   Config
	eng   *sim.Engine
	rt    *inject.Runtime
	nodes []*node

	clients   []*proposer
	transfers []*transferLoop
	pausers   []*pauserLoop
	crashers  []*crasher
}

// NewCluster builds and starts the cluster.
func NewCluster(ctx *sysreg.RunContext, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, eng: ctx.Engine, rt: ctx.RT}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, newNode(c, i))
	}
	if !cfg.ColdStart {
		// Pre-elected bootstrap leader: steady-state profiles carry no
		// election activity, so election-side faults fire only under
		// perturbation (injection, churn).
		n0 := c.nodes[0]
		n0.state = leader
		n0.term = 1
		for i := range n0.next {
			n0.next[i] = 1
		}
		n0.spawnReplication(1, n0.leadEpoch)
	}
	for _, n := range c.nodes {
		n.start()
	}
	return c
}

// --- messages ---

type appendMsg struct {
	term, from     int
	fromIdx, toIdx int // entries fromIdx..toIdx inclusive; toIdx < fromIdx is a pure heartbeat
	commit         int
}

type appendAck struct {
	term, from, last int
	ok               bool
}

type snapMsg struct {
	term, from    int
	snapIdx       int
	chunk, chunks int
}

type voteReq struct {
	term, cand, last int
}

type voteResp struct {
	term    int
	granted bool
}

type proposeMsg struct {
	n int // entries in the proposal batch
}

// transferMsg asks the leader to hand leadership to its most caught-up
// follower; campaignMsg tells that follower to start an election now.
type transferMsg struct{}

type campaignMsg struct{}

// --- node ---

type node struct {
	c    *Cluster
	idx  int
	name string
	rpc  *sim.Mailbox // appends, snapshots, votes, acks: fast, non-blocking
	prop *sim.Mailbox // client proposals: handlers may wait for commit

	state     role
	term      int
	votedFor  int
	votedTerm int

	last      int // last log index
	commit    int
	applied   int
	compacted int // log compacted through this index

	lastHeard   time.Duration
	leaderHint  int
	campaigning bool

	// Leader-volatile replication state; leadEpoch invalidates a stale
	// replicationLoop after re-election.
	next, match []int
	leadEpoch   int

	// Process handles and live replication-loop records, kept so a
	// checkpoint snapshot can name every process to adopt on restore.
	// replRuns can briefly hold several entries: a deposed leader's stale
	// loop exits lazily at its next tick.
	rpcProc, timerProc, applyProc, compactProc *sim.Proc
	propProcs                                  []*sim.Proc
	replRuns                                   []*replRun
}

// replRun records one live replicationLoop process with the term/epoch
// pair its body closed over.
type replRun struct {
	pid, term, epoch int
}

func newNode(c *Cluster, idx int) *node {
	n := &node{
		c:        c,
		idx:      idx,
		name:     fmt.Sprintf("ms%d", idx),
		votedFor: -1,
		next:     make([]int, c.cfg.Nodes),
		match:    make([]int, c.cfg.Nodes),
	}
	n.rpc = c.eng.NewMailbox(n.name, "rpc")
	n.prop = c.eng.NewMailbox(n.name, "propose")
	return n
}

func (n *node) start() {
	n.rpcProc = n.c.eng.Spawn(n.name, "rpcHandler", n.rpcHandler)
	n.timerProc = n.c.eng.Spawn(n.name, "electionTimer", func(p *sim.Proc) { n.electionTimer(p, false) })
	n.applyProc = n.c.eng.Spawn(n.name, "applyLoop", func(p *sim.Proc) { n.applyLoop(p, false) })
	for i := 0; i < 2; i++ {
		n.propProcs = append(n.propProcs, n.c.eng.Spawn(n.name, "proposeHandler", n.proposeHandler))
	}
	if n.c.cfg.Compaction {
		n.compactProc = n.c.eng.Spawn(n.name, "compactLoop", func(p *sim.Proc) { n.compactLoop(p, false) })
	}
}

// spawnReplication starts a replicationLoop for (term, epoch) and tracks
// it in replRuns until the loop exits.
func (n *node) spawnReplication(term, epoch int) {
	rr := &replRun{term: term, epoch: epoch}
	pr := n.c.eng.Spawn(n.name, "replicationLoop", func(p *sim.Proc) {
		defer n.dropRepl(rr)
		n.replicationLoop(p, term, epoch, false)
	})
	rr.pid = pr.PID()
	n.replRuns = append(n.replRuns, rr)
}

func (n *node) dropRepl(rr *replRun) {
	for i, x := range n.replRuns {
		if x == rr {
			n.replRuns = append(n.replRuns[:i], n.replRuns[i+1:]...)
			return
		}
	}
}

func (n *node) stepDown() {
	if n.state == leader {
		// A deposed or abdicating leader was the authority a moment ago:
		// it grants itself one election-timeout grace period (raft's
		// "reset the election timer on stepping down"), since its
		// lastHeard was never refreshed while it led.
		n.lastHeard = n.c.eng.Now()
	}
	n.state = follower
}

// observeTerm adopts a higher term seen in any message (leaders and
// candidates step down).
func (n *node) observeTerm(term int) {
	if term > n.term {
		n.term = term
		n.stepDown()
	}
}

// --- RPC handling ---

func (n *node) rpcHandler(p *sim.Proc) {
	for {
		m := p.RecvQ(n.rpc, "ms.rpc")
		switch msg := m.(type) {
		case appendMsg:
			n.handleAppend(p, msg)
		case snapMsg:
			n.handleSnapshot(p, msg)
		case appendAck:
			n.handleAck(msg)
		case transferMsg:
			n.handleTransfer(p)
		case campaignMsg:
			n.startCampaign(p)
		case sim.Req:
			if vr, isVote := msg.Body.(voteReq); isVote {
				n.handleVote(p, vr, msg)
			} else {
				p.Reply(msg, nil, nil)
			}
		}
	}
}

// handleAppend is the follower side of heartbeats and catch-up batches.
func (n *node) handleAppend(p *sim.Proc, m appendMsg) {
	defer p.Enter("handleAppend")()
	rt := n.c.rt
	if m.term < n.term {
		p.Send(n.c.nodes[m.from].rpc, appendAck{term: n.term, from: n.idx, last: n.last, ok: false})
		return
	}
	n.observeTerm(m.term)
	if n.state == candidate {
		n.stepDown() // a live leader of the current term exists
	}
	n.leaderHint = m.from
	n.lastHeard = p.Now()
	// A gap between the leader's optimistic send position and this log is
	// the append rejection of raft's consistency check: the nack makes the
	// leader rewind to the acked index and catch this follower up.
	if rt.Guard(p, PtAppendRejectIOE, m.fromIdx > n.last+1) {
		p.Send(n.c.nodes[m.from].rpc, appendAck{term: n.term, from: n.idx, last: n.last, ok: false})
		return
	}
	if m.toIdx > n.last {
		n.persistEntries(p, m.toIdx-n.last)
		n.last = m.toIdx
	}
	if m.commit > n.commit {
		n.commit = min(m.commit, n.last)
	}
	rt.Branch(p, "ms.append.has_entries", m.toIdx >= m.fromIdx)
	p.Send(n.c.nodes[m.from].rpc, appendAck{term: n.term, from: n.idx, last: n.last, ok: true})
}

// handleSnapshot installs snapshot chunks; the final chunk replaces the
// follower's log and state machine up to the snapshot index.
func (n *node) handleSnapshot(p *sim.Proc, m snapMsg) {
	defer p.Enter("handleSnapshot")()
	if m.term < n.term {
		return
	}
	n.observeTerm(m.term)
	n.leaderHint = m.from
	n.lastHeard = p.Now()
	p.Work(snapRecvCost)
	if m.chunk < m.chunks {
		return
	}
	if m.snapIdx > n.last {
		n.last = m.snapIdx
	}
	if m.snapIdx > n.commit {
		n.commit = m.snapIdx
	}
	if m.snapIdx > n.applied {
		n.applied = m.snapIdx
	}
	if m.snapIdx > n.compacted {
		n.compacted = m.snapIdx
	}
	p.Send(n.c.nodes[m.from].rpc, appendAck{term: n.term, from: n.idx, last: n.last, ok: true})
}

// handleVote grants a vote per raft's rules: one vote per term, and only
// to candidates whose log is at least as up to date.
func (n *node) handleVote(p *sim.Proc, m voteReq, req sim.Req) {
	defer p.Enter("handleVote")()
	rt := n.c.rt
	n.observeTerm(m.term)
	upToDate := rt.Negate(p, PtLogUpToDate, m.last >= n.last, false)
	grant := m.term >= n.term && upToDate && (n.votedTerm < m.term || (n.votedTerm == m.term && n.votedFor == m.cand))
	if grant {
		n.votedTerm = m.term
		n.votedFor = m.cand
		n.lastHeard = p.Now() // granting a vote resets the election timer
	}
	p.Reply(req, voteResp{term: n.term, granted: grant}, nil)
}

// handleAck is the leader side of replication acknowledgements.
func (n *node) handleAck(m appendAck) {
	n.observeTerm(m.term)
	if n.state != leader || m.term < n.term {
		return
	}
	if m.last > n.match[m.from] {
		n.match[m.from] = m.last
	}
	if m.ok {
		// Positive acks only move the send position forward: a stale
		// in-order ack arriving after an optimistic snapshot jump must not
		// rewind next and re-trigger the snapshot branch.
		if m.last+1 > n.next[m.from] {
			n.next[m.from] = m.last + 1
		}
	} else {
		// A rejection rewinds to the follower's true log end: the raft
		// consistency-check backtrack.
		n.next[m.from] = m.last + 1
	}
	n.advanceCommit()
}

// advanceCommit moves the commit index to the quorum-replicated frontier.
func (n *node) advanceCommit() {
	frontier := make([]int, 0, len(n.c.nodes))
	for _, peer := range n.c.nodes {
		if peer == n {
			frontier = append(frontier, n.last)
		} else {
			frontier = append(frontier, n.match[peer.idx])
		}
	}
	// Descending insertion sort; the k-th largest (k = quorum) is the
	// commit frontier.
	for i := 1; i < len(frontier); i++ {
		for j := i; j > 0 && frontier[j] > frontier[j-1]; j-- {
			frontier[j], frontier[j-1] = frontier[j-1], frontier[j]
		}
	}
	quorum := len(n.c.nodes)/2 + 1
	c := frontier[quorum-1]
	if c > n.last {
		c = n.last // deposed-leader logs can run ahead of ours
	}
	if c > n.commit {
		n.commit = c
	}
}

// persistEntries models the per-entry WAL fsync on the append path (leader
// proposals and follower appends both pay it).
func (n *node) persistEntries(p *sim.Proc, count int) {
	defer p.Enter("persistEntries")()
	rt := n.c.rt
	for i := 0; i < count; i++ {
		rt.Loop(p, PtFsyncLoop)
		p.Work(fsyncCost)
	}
}

// --- elections ---

// handleTransfer abdicates in favour of the most caught-up follower: the
// graceful leadership-transfer path, and the one way elections happen with
// a perfectly healthy heartbeat stream.
func (n *node) handleTransfer(p *sim.Proc) {
	if n.state != leader {
		return
	}
	best := -1
	for _, peer := range n.c.nodes {
		if peer == n || n.c.eng.Crashed(peer.name) {
			continue
		}
		if best == -1 || n.match[peer.idx] > n.match[best] {
			best = peer.idx
		}
	}
	if best == -1 {
		return
	}
	n.stepDown()
	n.leaderHint = best
	p.Send(n.c.nodes[best].rpc, campaignMsg{})
}

// startCampaign launches runElection on a fresh process (at most one per
// node), so neither the election timer nor the RPC handler blocks for the
// duration of a campaign.
func (n *node) startCampaign(p *sim.Proc) {
	if n.campaigning || n.state == leader {
		return
	}
	n.campaigning = true
	p.Spawn("campaign", func(cp *sim.Proc) { n.runElection(cp) })
}

// electionTimer is the follower-side failure detector: at every randomized
// timeout tick it checks heartbeat freshness and campaigns when the leader
// has gone silent. adopted skips the leading park exactly once: a restored
// body enters at the wake instant, where the original had just finished
// the same sleep.
func (n *node) electionTimer(p *sim.Proc, adopted bool) {
	defer p.Enter("electionTimer")()
	rt := n.c.rt
	cfg := n.c.cfg
	for {
		if !adopted {
			p.SleepQ(cfg.ElectionTimeout+time.Duration(p.Rand().Int63n(int64(cfg.ElectionJitter))), "ms.electionTimer")
		}
		adopted = false
		if n.state == leader {
			continue
		}
		fresh := rt.Negate(p, PtHBFresh, p.Now()-n.lastHeard < cfg.ElectionTimeout, false)
		if fresh {
			continue
		}
		n.startCampaign(p)
	}
}

// runElection campaigns until this node wins, discovers a higher term, or
// hears from a live leader. Each iteration is one term bump: the election
// rounds an observer counts during an election-loop storm.
func (n *node) runElection(p *sim.Proc) {
	defer func() { n.campaigning = false }()
	defer p.Enter("runElection")()
	rt := n.c.rt
	c := n.c
	for {
		rt.Loop(p, PtElectionLoop)
		n.state = candidate
		n.term++
		n.votedTerm = n.term
		n.votedFor = n.idx
		term := n.term
		votes := 1
		for _, peer := range c.nodes {
			if peer == n {
				continue
			}
			resp, err := p.Call(peer.rpc, voteReq{term: term, cand: n.idx, last: n.last}, voteRPCTimeout)
			if rt.Guard(p, PtVoteRPCIOE, err != nil) {
				continue
			}
			vr := resp.(voteResp)
			if vr.term > n.term {
				n.observeTerm(vr.term)
				return
			}
			if vr.granted {
				votes++
			}
		}
		if n.term != term || n.state != candidate {
			return // a concurrent message moved the term or installed a leader
		}
		won := rt.Negate(p, PtQuorumOK, votes*2 > len(c.nodes), false)
		if won {
			n.becomeLeader(p)
			return
		}
		// Split vote: randomized backoff desynchronizes the candidates.
		p.Sleep(electBackoff + time.Duration(p.Rand().Int63n(int64(c.cfg.ElectionJitter))))
		if p.Now()-n.lastHeard < c.cfg.ElectionTimeout {
			n.stepDown()
			return // a leader emerged while we were backing off
		}
	}
}

func (n *node) becomeLeader(p *sim.Proc) {
	n.state = leader
	n.leaderHint = n.idx
	n.leadEpoch++
	epoch := n.leadEpoch
	term := n.term
	for i := range n.next {
		// Optimistic: the first heartbeat's consistency check rewinds
		// next[] to each follower's true log end via the reject nack.
		n.next[i] = n.last + 1
		n.match[i] = 0
	}
	n.spawnReplication(term, epoch)
}

// --- replication (leader) ---

// replicationLoop is the leader's single serialized duty cycle: one round
// per heartbeat interval serves every peer -- snapshot transfer for peers
// whose entries are gone or too far back, entry catch-up for lagging
// peers, and a plain heartbeat otherwise. Serializing all three on one
// process is what turns any per-peer load into missed heartbeats for
// everyone else.
func (n *node) replicationLoop(p *sim.Proc, term, epoch int, adopted bool) {
	defer p.Enter("replicationLoop")()
	rt := n.c.rt
	c := n.c
	for {
		if !adopted {
			p.SleepQ(c.cfg.HeartbeatEvery+time.Duration(p.Rand().Int63n(int64(hbJitter))), "ms.replicationLoop")
		}
		adopted = false
		if n.state != leader || n.term != term || n.leadEpoch != epoch {
			return
		}
		rt.Loop(p, PtReplRound)
		for _, peer := range c.nodes {
			if peer == n {
				continue
			}
			next := n.next[peer.idx]
			lag := n.last - next + 1
			avail := rt.Negate(p, PtLogAvail, next > n.compacted, false)
			if lag > 0 && (!avail || (c.cfg.SnapLag > 0 && lag > c.cfg.SnapLag)) {
				if !n.sendSnapshot(p, peer, term) {
					continue // transfer aborted; a later round retries
				}
				// Stream the log tail behind the snapshot in the same
				// round, so the follower comes out fully current instead
				// of permanently trailing by the apply gap.
				next = n.next[peer.idx]
				lag = n.last - next + 1
			}
			if lag > 0 {
				batches := 0
				for lo := next; lo <= n.last && batches < catchupWindow; lo += c.cfg.CatchupBatch {
					rt.Loop(p, PtCatchupLoop)
					batches++
					hi := lo + c.cfg.CatchupBatch - 1
					if hi > n.last {
						hi = n.last
					}
					p.Work(time.Duration(hi-lo+1) * entrySendCost)
					p.Send(peer.rpc, appendMsg{term: term, from: n.idx, fromIdx: lo, toIdx: hi, commit: n.commit})
				}
				continue
			}
			// Caught up: pure heartbeat (an empty append).
			p.Send(peer.rpc, appendMsg{term: term, from: n.idx, fromIdx: n.last + 1, toIdx: n.last, commit: n.commit})
		}
	}
}

// sendSnapshot streams a full state snapshot (up to the apply frontier) to
// one peer, chunk by chunk, reporting whether the transfer completed. The
// transfer runs inside the replication round: while it is in flight no
// other peer hears anything.
func (n *node) sendSnapshot(p *sim.Proc, peer *node, term int) bool {
	defer p.Enter("sendSnapshot")()
	rt := n.c.rt
	snapIdx := n.applied
	chunks := n.c.cfg.SnapChunks
	for i := 1; i <= chunks; i++ {
		rt.Loop(p, PtSnapSendLoop)
		if rt.Guard(p, PtSnapRPCIOE, false) {
			return false // transfer aborted; a later round retries from scratch
		}
		p.Work(snapChunkCost)
		p.Send(peer.rpc, snapMsg{term: term, from: n.idx, snapIdx: snapIdx, chunk: i, chunks: chunks})
	}
	if snapIdx+1 > n.next[peer.idx] {
		n.next[peer.idx] = snapIdx + 1 // optimistic; the ack corrects it
	}
	return true
}

// --- apply and compaction ---

// applyLoop advances the state machine to the commit frontier.
func (n *node) applyLoop(p *sim.Proc, adopted bool) {
	defer p.Enter("applyLoop")()
	rt := n.c.rt
	for {
		if !adopted {
			p.SleepQ(applyEvery, "ms.applyLoop")
		}
		adopted = false
		for n.applied < n.commit {
			rt.Loop(p, PtApplyLoop)
			p.Work(applyCost)
			n.applied++
		}
	}
}

// compactLoop trims the log CompactKeep entries behind the apply frontier.
// Compaction is what turns a long-lagging follower's catch-up into a full
// snapshot transfer: once next <= compacted the entries are simply gone.
func (n *node) compactLoop(p *sim.Proc, adopted bool) {
	defer p.Enter("compactLoop")()
	rt := n.c.rt
	c := n.c
	for {
		if !adopted {
			p.SleepQ(compactEvery+time.Duration(p.Rand().Intn(60))*time.Millisecond, "ms.compactLoop")
		}
		adopted = false
		target := n.applied - c.cfg.CompactKeep
		for n.compacted < target {
			rt.Loop(p, PtCompactLoop)
			step := compactBatch
			if n.compacted+step > target {
				step = target - n.compacted
			}
			p.Work(compactBatchCost)
			n.compacted += step
		}
	}
}

// --- proposals ---

var (
	errNotLeader     = fmt.Errorf("metastore: not the leader")
	errCommitTimeout = fmt.Errorf("metastore: proposal not committed in time")
)

// proposeHandler serves client proposals: the leader appends the batch,
// then holds the reply until the entries reach quorum commit (or the
// commit wait expires -- in which case the entries are already in the log
// and the client's retry will duplicate them).
func (n *node) proposeHandler(p *sim.Proc) {
	defer p.Enter("proposeHandler")()
	c := n.c
	for {
		m := p.RecvQ(n.prop, "ms.propose")
		req := m.(sim.Req)
		pm := req.Body.(proposeMsg)
		if n.state != leader {
			p.Reply(req, n.leaderHint, errNotLeader)
			continue
		}
		n.persistEntries(p, pm.n)
		n.last += pm.n
		idx := n.last
		deadline := p.Now() + c.cfg.CommitWait
		for n.commit < idx && n.state == leader && p.Now() < deadline {
			p.Sleep(commitPoll)
		}
		if n.commit >= idx {
			p.Reply(req, idx, nil)
		} else {
			p.Reply(req, n.leaderHint, errCommitTimeout)
		}
	}
}

// proposer is one proposal client. Its loop progress lives in struct
// fields so a checkpoint snapshot can rebuild the client mid-stream; the
// park sites are the start delay and the inter-proposal gap (the in-flight
// Call windows are deliberately untagged -- a capture attempt while any
// proposal is outstanding is rejected and the probe simply skipped).
type proposer struct {
	c            *Cluster
	name         string
	props, batch int
	gap, start   time.Duration

	done   int // completed proposals (their gap may still be pending)
	target int
	proc   *sim.Proc
}

func (cl *proposer) run(p *sim.Proc, resume string) {
	defer p.Enter("clientPropose")()
	rt := cl.c.rt
	c := cl.c
	if resume == "" && cl.start > 0 {
		p.SleepQ(cl.start, "ms.client.start")
	}
	// resume "ms.client.start" or "ms.client.gap": the wake lands exactly
	// where the original finished the corresponding sleep, which is the
	// loop condition below.
	for cl.done < cl.props {
		rt.Loop(p, PtProposeLoop)
		failures := 0
		nd := c.nodes[cl.target]
		for attempt := 0; attempt <= len(c.nodes); attempt++ {
			body, err := p.Call(nd.prop, proposeMsg{n: cl.batch}, c.cfg.ProposeTimeout)
			if err == nil {
				cl.target = nd.idx
				break
			}
			failures++
			if hint, isHint := body.(int); isHint && hint >= 0 && hint < len(c.nodes) && hint != nd.idx {
				nd = c.nodes[hint]
			} else {
				nd = c.nodes[(nd.idx+1)%len(c.nodes)]
			}
		}
		rt.Guard(p, PtProposeIOE, failures > len(c.nodes))
		rt.Branch(p, "ms.propose.redirected", failures > 0)
		cl.done++
		p.SleepQ(cl.gap+time.Duration(p.Rand().Intn(40))*time.Millisecond, "ms.client.gap")
	}
}

// SpawnProposer drives proposal batches at the cluster, following leader
// hints and retrying failures against the next replica -- at-least-once,
// so a proposal that was appended but not acknowledged is duplicated.
func (c *Cluster) SpawnProposer(name string, props, batch int, gap, start time.Duration) {
	if gap == 0 {
		gap = 150 * time.Millisecond
	}
	cl := &proposer{c: c, name: name, props: props, batch: batch, gap: gap, start: start}
	cl.proc = c.eng.Spawn("client-"+name, name, func(p *sim.Proc) { cl.run(p, "") })
	c.clients = append(c.clients, cl)
}

// transferLoop is the planned-leadership-transfer admin process.
type transferLoop struct {
	c            *Cluster
	name         string
	start, every time.Duration
	times        int

	done int
	proc *sim.Proc
}

func (a *transferLoop) run(p *sim.Proc, resume string) {
	if resume == "" && a.start > 0 {
		p.SleepQ(a.start, "ms.transfer.start")
	}
	for a.done < a.times {
		for _, n := range a.c.nodes {
			if n.state == leader && !a.c.eng.Crashed(n.name) {
				p.Send(n.rpc, transferMsg{})
				break
			}
		}
		a.done++
		p.SleepQ(a.every, "ms.transfer.idle")
	}
}

// SpawnTransferLoop periodically asks whoever currently leads to hand
// leadership over (etcd's MoveLeader): planned elections with a healthy
// heartbeat stream. Rounds where the cluster is leaderless are skipped.
func (c *Cluster) SpawnTransferLoop(name string, start, every time.Duration, times int) {
	a := &transferLoop{c: c, name: name, start: start, every: every, times: times}
	a.proc = c.eng.Spawn("admin-"+name, name, func(p *sim.Proc) { a.run(p, "") })
	c.transfers = append(c.transfers, a)
}

// pauserLoop is the node-freezing admin process. The "paused" park site
// needs its own resume arm: a body woken there must resume the node
// before rejoining the cycle.
type pauserLoop struct {
	c               *Cluster
	name, target    string
	start, pauseFor time.Duration
	every           time.Duration
	times           int

	done int
	proc *sim.Proc
}

func (a *pauserLoop) run(p *sim.Proc, resume string) {
	if resume == "" && a.start > 0 {
		p.SleepQ(a.start, "ms.pauser.start")
	}
	if resume == "ms.pauser.paused" {
		a.c.eng.ResumeNode(a.target)
		a.done++
		p.SleepQ(a.every, "ms.pauser.idle")
	}
	for a.done < a.times {
		a.c.eng.PauseNode(a.target)
		p.SleepQ(a.pauseFor, "ms.pauser.paused")
		a.c.eng.ResumeNode(a.target)
		a.done++
		p.SleepQ(a.every, "ms.pauser.idle")
	}
}

// SpawnPauser periodically freezes a node's network (a GC pause or an
// overloaded NIC): deliveries are held and flushed on resume, so the node
// falls behind and needs catch-up -- or, past the compaction margin, a
// full snapshot.
func (c *Cluster) SpawnPauser(name string, nodeIdx int, start, pauseFor, every time.Duration, times int) {
	a := &pauserLoop{c: c, name: name, target: c.nodes[nodeIdx].name, start: start, pauseFor: pauseFor, every: every, times: times}
	a.proc = c.eng.Spawn("admin-"+name, name, func(p *sim.Proc) { a.run(p, "") })
	c.pausers = append(c.pausers, a)
}

// crasher removes a member at a fixed virtual time, then exits.
type crasher struct {
	c      *Cluster
	target string
	at     time.Duration
	proc   *sim.Proc
}

func (a *crasher) run(p *sim.Proc, resume string) {
	if resume == "" {
		p.SleepQ(a.at, "ms.crasher.wait")
	}
	a.c.eng.CrashNode(a.target)
}

// CrashMember permanently removes a member at the given virtual time: the
// membership shrinks and the survivors keep serving as long as they still
// form a quorum of the original group.
func (c *Cluster) CrashMember(nodeIdx int, at time.Duration) {
	a := &crasher{c: c, target: c.nodes[nodeIdx].name, at: at}
	a.proc = c.eng.Spawn("admin-crash", "crashMember", func(p *sim.Proc) { a.run(p, "") })
	c.crashers = append(c.crashers, a)
}
