package metastore

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"
)

func runWorkload(t *testing.T, name string, plan inject.Plan, seed int64) *trace.Run {
	t.Helper()
	for _, w := range New().Workloads() {
		if w.Name != name {
			continue
		}
		rec := trace.NewRun(name, seed)
		rt := inject.New(plan, rec)
		eng := sim.NewEngine(sim.Options{Seed: seed})
		w.Run(&sysreg.RunContext{Engine: eng, RT: rt})
		rec.Result = eng.Run(w.Horizon)
		eng.Close()
		return rec
	}
	t.Fatalf("unknown workload %q", name)
	return nil
}

// TestProfilesQuiet: no noisy exception fires naturally in any workload's
// profile run -- the counterfactual baseline every injection experiment
// diffs against. (append_reject is exempt: rebalancing after elections and
// five-replica churn produce genuine consistency-check rejections.)
func TestProfilesQuiet(t *testing.T) {
	noisy := []faults.ID{PtVoteRPCIOE, PtSnapRPCIOE, PtProposeIOE}
	for _, w := range New().Workloads() {
		rec := runWorkload(t, w.Name, inject.Profile(), 7)
		for _, id := range noisy {
			if rec.Reached(id) > 0 {
				t.Errorf("%s: %s fired naturally %d times", w.Name, id, rec.Reached(id))
			}
		}
	}
}

// TestSteadyStateHasStableLeader: with a bootstrap leader and healthy
// heartbeats, no workload except cold_start elects anything -- elections
// only ever happen under churn, transfer, or injection.
func TestSteadyStateHasStableLeader(t *testing.T) {
	for _, w := range New().Workloads() {
		rec := runWorkload(t, w.Name, inject.Profile(), 11)
		switch w.Name {
		case "cold_start":
			if rec.LoopIters(PtElectionLoop) == 0 {
				t.Error("cold_start: no natural election")
			}
		case "leader_transfer":
			if rec.LoopIters(PtElectionLoop) != 5 {
				t.Errorf("leader_transfer: %d election rounds, want exactly the 5 planned transfers",
					rec.LoopIters(PtElectionLoop))
			}
			if rec.Reached(PtHBFresh) > 0 {
				t.Errorf("leader_transfer: %d natural staleness activations during planned transfers",
					rec.Reached(PtHBFresh))
			}
		default:
			if got := rec.LoopIters(PtElectionLoop); got != 0 {
				t.Errorf("%s: %d spontaneous election rounds in profile", w.Name, got)
			}
			if got := rec.Reached(PtHBFresh); got != 0 {
				t.Errorf("%s: heartbeat staleness fired naturally %d times", w.Name, got)
			}
		}
	}
}

// TestDelayedElectionStarvesHeartbeats pins the RAFT-1 t2 half: a delayed
// election after a planned leadership transfer leaves the cluster
// leaderless past the election timeout, so the staleness detector fires --
// the E(D) edge election_loop -> hb_fresh.
func TestDelayedElectionStarvesHeartbeats(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		rec := runWorkload(t, "leader_transfer",
			inject.Plan{Kind: inject.Delay, Target: PtElectionLoop, Delay: 8 * time.Second}, seed)
		if rec.Reached(PtHBFresh) == 0 {
			t.Fatalf("seed %d: delayed election caused no heartbeat staleness (elections=%d)",
				seed, rec.LoopIters(PtElectionLoop))
		}
	}
}

// TestNegatedStalenessBreedsElections pins the RAFT-1 closing half: a
// persistently-lying staleness detector campaigns against a perfectly
// healthy leader -- the S+(I) edge hb_fresh -> election_loop, measured in
// a workload whose profile holds zero elections.
func TestNegatedStalenessBreedsElections(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		prof := runWorkload(t, "slow_follower_catchup", inject.Profile(), seed)
		if prof.LoopIters(PtElectionLoop) != 0 {
			t.Fatalf("seed %d: profile not election-free: %d", seed, prof.LoopIters(PtElectionLoop))
		}
		rec := runWorkload(t, "slow_follower_catchup",
			inject.Plan{Kind: inject.Negate, Target: PtHBFresh}, seed)
		if rec.LoopIters(PtElectionLoop) < 3 {
			t.Fatalf("seed %d: no election storm under negated staleness: %d rounds",
				seed, rec.LoopIters(PtElectionLoop))
		}
	}
}

// TestCatchupDelayStarvesHeartbeats: a delayed catch-up batch monopolizes
// the replication round, so healthy followers miss heartbeats and elect --
// the contention on-ramp of the election-loop storm.
func TestCatchupDelayStarvesHeartbeats(t *testing.T) {
	rec := runWorkload(t, "slow_follower_catchup",
		inject.Plan{Kind: inject.Delay, Target: PtCatchupLoop, Delay: 2 * time.Second}, 5)
	if rec.Reached(PtHBFresh) == 0 {
		t.Fatalf("catch-up delay caused no heartbeat staleness (catchup iters=%d)",
			rec.LoopIters(PtCatchupLoop))
	}
	if rec.LoopIters(PtElectionLoop) == 0 {
		t.Fatal("catch-up delay caused no elections")
	}
}

// TestSnapshotDelayOutrunsCompaction pins the RAFT-2 t1 half: a crawling
// snapshot transfer keeps the lagging follower frozen while the log grows
// past the compaction margin, so the availability check fires naturally --
// the E(D) edge snap.send_loop -> log_avail.
func TestSnapshotDelayOutrunsCompaction(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		rec := runWorkload(t, "compaction_catchup",
			inject.Plan{Kind: inject.Delay, Target: PtSnapSendLoop, Delay: 2 * time.Second}, seed)
		if rec.Reached(PtLogAvail) == 0 {
			t.Fatalf("seed %d: snapshot delay never invalidated catch-up entries (snap iters=%d)",
				seed, rec.LoopIters(PtSnapSendLoop))
		}
	}
}

// TestNegatedAvailabilityForcesSnapshotStorm pins the RAFT-2 closing
// half: a detector that always claims the entries are compacted away turns
// every catch-up into a full snapshot transfer -- the S+(I) edge
// log_avail -> snap.send_loop.
func TestNegatedAvailabilityForcesSnapshotStorm(t *testing.T) {
	prof := runWorkload(t, "compaction_catchup", inject.Profile(), 5)
	rec := runWorkload(t, "compaction_catchup",
		inject.Plan{Kind: inject.Negate, Target: PtLogAvail}, 5)
	if rec.LoopIters(PtSnapSendLoop) <= 2*prof.LoopIters(PtSnapSendLoop) {
		t.Fatalf("no snapshot storm: %d vs profile %d",
			rec.LoopIters(PtSnapSendLoop), prof.LoopIters(PtSnapSendLoop))
	}
}

// TestProposalsCommitUnderChurn: availability churn (pauses, a crashed
// member) must not fail client proposals while a quorum is intact.
func TestProposalsCommitUnderChurn(t *testing.T) {
	for _, name := range []string{"slow_follower_catchup", "membership_churn"} {
		rec := runWorkload(t, name, inject.Profile(), 9)
		if rec.Reached(PtProposeIOE) > 0 {
			t.Errorf("%s: %d proposals failed despite quorum", name, rec.Reached(PtProposeIOE))
		}
		if rec.LoopIters(PtFsyncLoop) == 0 {
			t.Errorf("%s: no entries persisted", name)
		}
	}
}

// TestColdStartElectsExactlyOneLeader: the leaderless boot converges.
func TestColdStartElectsExactlyOneLeader(t *testing.T) {
	for _, w := range New().Workloads() {
		if w.Name != "cold_start" {
			continue
		}
		eng := sim.NewEngine(sim.Options{Seed: 3})
		rec := trace.NewRun(w.Name, 3)
		rt := inject.New(inject.Profile(), rec)
		ctx := &sysreg.RunContext{Engine: eng, RT: rt}
		c := NewCluster(ctx, Config{ColdStart: true})
		c.SpawnProposer("c1", 30, 3, 200*time.Millisecond, 6*time.Second)
		eng.Run(w.Horizon)
		leaders := 0
		for _, n := range c.nodes {
			if n.state == leader {
				leaders++
			}
		}
		eng.Close()
		if leaders != 1 {
			t.Fatalf("cold start converged to %d leaders", leaders)
		}
	}
}

// TestDeterminism: equal seeds produce identical schedules.
func TestDeterminism(t *testing.T) {
	a := runWorkload(t, "compaction_catchup", inject.Profile(), 13)
	b := runWorkload(t, "compaction_catchup", inject.Profile(), 13)
	if a.Result.Events != b.Result.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Result.Events, b.Result.Events)
	}
	if a.LoopIters(PtSnapSendLoop) != b.LoopIters(PtSnapSendLoop) {
		t.Fatal("snapshot schedules differ")
	}
}
