package metastore

import (
	"sort"

	"repro/internal/sim"
)

// Cold instrumented paths corresponding to the filtered point categories
// (§4.1, §7): they exist so the static analyzer's cross-check sees every
// registered point hooked in the source, and so the filtering rules have
// real sites to discard. See the matching file in internal/systems/dfs
// for the rationale per category.

// authenticate models a security check whose exception is filtered
// (ExcSecurity).
func (c *Cluster) authenticate(p *sim.Proc, token string) error {
	defer c.rt.Fn(p, "authenticate")()
	return c.rt.Err(p, PtSecAuthExc, token == "", "authentication failed")
}

// loadCodec models a reflective codec lookup whose exception is filtered
// (ExcReflection).
func (c *Cluster) loadCodec(p *sim.Proc, name string) error {
	defer c.rt.Fn(p, "loadCodec")()
	return c.rt.Err(p, PtReflCodecExc, name == "", "codec class not found")
}

// initNode is the constant-bound startup loop (filtered by the loop
// scalability analysis).
func (n *node) initNode(p *sim.Proc) {
	defer n.c.rt.Fn(p, "initNode")()
	for i := 0; i < 2; i++ {
		n.c.rt.Loop(p, PtInitLoop)
	}
}

// strictQuorum reads a configuration flag: a negation whose value depends
// only on config (filtered).
func (c *Cluster) strictQuorum(p *sim.Proc) bool {
	defer c.rt.Fn(p, "strictQuorum")()
	return c.rt.Negate(p, PtConfStrict, true, false)
}

// isSorted is a primitive-only utility negation (filtered).
func (c *Cluster) isSorted(p *sim.Proc, xs []int) bool {
	defer c.rt.Fn(p, "isSorted")()
	return c.rt.Negate(p, PtUtilSorted, sort.IntsAreSorted(xs), false)
}

// debugEnabled returns a constant (filtered).
func (c *Cluster) debugEnabled(p *sim.Proc) bool {
	defer c.rt.Fn(p, "debugEnabled")()
	return c.rt.Negate(p, PtDebugEnabled, false, false)
}
