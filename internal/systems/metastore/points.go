package metastore

import "repro/internal/faults"

// Injection/monitor point ids. The static analyzer cross-checks that every
// id named here appears in exactly these hook calls in the source.
const (
	// Leader loops. The replication round is the leader's single serialized
	// duty cycle: snapshot transfers and entry catch-up both run inside it,
	// so a delay in either child loop starves the heartbeats the round is
	// also responsible for -- the contention channel both seeded storms
	// propagate through.
	PtReplRound    faults.ID = "ms.leader.repl_round"
	PtSnapSendLoop faults.ID = "ms.leader.snap.send_loop"
	PtCatchupLoop  faults.ID = "ms.leader.catchup_loop"

	// Node loops.
	PtElectionLoop faults.ID = "ms.node.election_loop"
	PtFsyncLoop    faults.ID = "ms.node.wal.fsync_loop"
	PtApplyLoop    faults.ID = "ms.node.apply_loop"
	PtCompactLoop  faults.ID = "ms.node.compact_loop"
	PtInitLoop     faults.ID = "ms.node.init_loop" // const-bound: filtered

	// Client loops.
	PtProposeLoop faults.ID = "ms.client.propose_loop"

	// Exceptions.
	PtVoteRPCIOE      faults.ID = "ms.node.vote.rpc_ioe"
	PtAppendRejectIOE faults.ID = "ms.follower.append_reject"
	PtSnapRPCIOE      faults.ID = "ms.leader.snap.rpc_ioe" // libcall
	PtProposeIOE      faults.ID = "ms.client.propose_ioe"
	PtSecAuthExc      faults.ID = "ms.sec.auth_exc"   // security: filtered
	PtReflCodecExc    faults.ID = "ms.refl.codec_exc" // reflection: filtered

	// Negations (boolean error detectors).
	PtHBFresh      faults.ID = "ms.node.hb_fresh"    // leader-liveness (heartbeat freshness) check
	PtLogAvail     faults.ID = "ms.leader.log_avail" // catch-up entries still in the (uncompacted) log
	PtQuorumOK     faults.ID = "ms.node.vote.quorum" // candidate gathered a majority
	PtLogUpToDate  faults.ID = "ms.node.vote.log_up_to_date"
	PtConfStrict   faults.ID = "ms.conf.quorum_strict" // config-only: filtered
	PtUtilSorted   faults.ID = "ms.util.is_sorted"     // primitive-only: filtered
	PtDebugEnabled faults.ID = "ms.log.debug_enabled"  // const return: filtered
)

func points() []faults.Point {
	sys := "MetaStore"
	return []faults.Point{
		// Loops. BodySize reflects reachable work; HasIO marks loops whose
		// bodies touch disk or network.
		{ID: PtReplRound, Kind: faults.Loop, System: sys, Func: "replicationLoop", BodySize: 85, HasIO: true, Desc: "leader heartbeat/replication round"},
		{ID: PtSnapSendLoop, Kind: faults.Loop, System: sys, Func: "sendSnapshot", BodySize: 40, HasIO: true, Desc: "snapshot chunk transfer"},
		{ID: PtCatchupLoop, Kind: faults.Loop, System: sys, Func: "replicationLoop", BodySize: 50, HasIO: true, Desc: "follower catch-up batch send"},
		{ID: PtElectionLoop, Kind: faults.Loop, System: sys, Func: "runElection", BodySize: 65, HasIO: true, Desc: "election round (one term bump)"},
		{ID: PtFsyncLoop, Kind: faults.Loop, System: sys, Func: "persistEntries", BodySize: 20, HasIO: true, Desc: "per-entry WAL fsync"},
		{ID: PtApplyLoop, Kind: faults.Loop, System: sys, Func: "applyLoop", BodySize: 35, HasIO: true, Desc: "committed-entry state machine apply"},
		{ID: PtCompactLoop, Kind: faults.Loop, System: sys, Func: "compactLoop", BodySize: 30, HasIO: true, Desc: "log compaction batch"},
		{ID: PtProposeLoop, Kind: faults.Loop, System: sys, Func: "clientPropose", BodySize: 30, HasIO: true},
		{ID: PtInitLoop, Kind: faults.Loop, System: sys, Func: "initNode", BodySize: 5, ConstBound: true},

		// Exceptions.
		{ID: PtVoteRPCIOE, Kind: faults.Throw, System: sys, Func: "runElection", Desc: "RequestVote RPC failed"},
		{ID: PtAppendRejectIOE, Kind: faults.Throw, System: sys, Func: "handleAppend", Desc: "append rejected: log gap at follower"},
		{ID: PtSnapRPCIOE, Kind: faults.LibCall, System: sys, Func: "sendSnapshot", Category: faults.ExcLibrary, Desc: "snapshot chunk send failed"},
		{ID: PtProposeIOE, Kind: faults.Throw, System: sys, Func: "clientPropose", Desc: "proposal retries exhausted"},
		{ID: PtSecAuthExc, Kind: faults.Throw, System: sys, Func: "authenticate", Category: faults.ExcSecurity},
		{ID: PtReflCodecExc, Kind: faults.Throw, System: sys, Func: "loadCodec", Category: faults.ExcReflection},

		// Negations.
		{ID: PtHBFresh, Kind: faults.Negation, System: sys, Func: "electionTimer", Desc: "leader heartbeat freshness check"},
		{ID: PtLogAvail, Kind: faults.Negation, System: sys, Func: "replicationLoop", Desc: "catch-up entries available (not compacted)"},
		{ID: PtQuorumOK, Kind: faults.Negation, System: sys, Func: "runElection", Desc: "vote quorum check"},
		{ID: PtLogUpToDate, Kind: faults.Negation, System: sys, Func: "handleVote", Desc: "candidate log up-to-date check"},
		{ID: PtConfStrict, Kind: faults.Negation, System: sys, Func: "strictQuorum", ConfigOnly: true},
		{ID: PtUtilSorted, Kind: faults.Negation, System: sys, Func: "isSorted", PrimitiveOnly: true},
		{ID: PtDebugEnabled, Kind: faults.Negation, System: sys, Func: "debugEnabled", ConstReturn: true},
	}
}

// nests declares the leader round's loop nesting (§4.3, Figure 5): the
// replication round is the parent batch loop; the snapshot chunk loop and
// the catch-up batch loop are its children, in program order. The derived
// ICFG edges (child delay propagates to the round) and CFG edge (a delayed
// round propagates to the next child) are exactly the static contention
// channels of the two seeded storms.
func nests() []faults.LoopNest {
	return []faults.LoopNest{
		{Parent: PtReplRound, Children: []faults.ID{PtSnapSendLoop, PtCatchupLoop}},
	}
}
