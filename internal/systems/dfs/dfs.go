// Package dfs is an HDFS-like replicated block store built on the
// deterministic simulator: a NameNode with a handler pool and a global
// namesystem lock, DataNodes with a BPServiceActor-style service loop
// (heartbeat + command processing + incremental block reports), a write
// pipeline with packet streaming and commit acks, lease/block recovery,
// an edit log, a block cache, background deletion, and (in V3 mode) an
// async event queue with erasure-coding-style block reconstruction.
//
// It is the reproduction substrate for the HDFS 2 / HDFS 3 rows of the
// paper's evaluation: the self-sustaining cascading failures of Table 3
// are seeded as mechanistic feedback loops (unthrottled IBR retries,
// recovery re-enqueueing, staleness-triggered re-replication) rather than
// scripted outcomes, so CSnake must actually discover them by stitching
// causal edges across workloads.
package dfs

import (
	"time"

	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
)

// Config selects cluster topology, timeout tuning (the paper reduces
// system timeouts to 10-20s to sensitise the system to injected load),
// and feature toggles that differ across workloads.
type Config struct {
	// V3 enables the async event queue and block reconstruction paths.
	V3 bool

	DataNodes   int // cluster size (default 3)
	Replication int // pipeline width (default 3)
	NNHandlers  int // NameNode RPC handler pool size (default 2)

	HBInterval time.Duration // heartbeat period (default 1s)
	StaleAfter time.Duration // staleness threshold (default 10s)
	DeadAfter  time.Duration // death threshold (default 25s)
	RPCTimeout time.Duration // DN->NN RPC timeout (default 10s)
	AckTimeout time.Duration // pipeline commit-ack deadline (default 4s)

	// IBRInterval throttles incremental block reports; zero sends them
	// with every heartbeat (throttling off).
	IBRInterval time.Duration

	// LeaseRecovery enables the NameNode recovery scanner.
	LeaseRecovery bool

	// PreloadBlocks seeds this many finalized blocks per DataNode before
	// the workload starts (drives report sizes, Table 3 HDFS2-6's 5000
	// blocks vs 8 blocks conditions).
	PreloadBlocks int

	// CacheCapacity bounds the DN block cache; small values force
	// eviction churn. Zero disables the cache manager.
	CacheCapacity int

	// ClientRetries is how many times a writer rebuilds a failed
	// pipeline before surfacing an error.
	ClientRetries int

	// IBRBatch caps report entries per IBR RPC (default 64).
	IBRBatch int
}

func (c Config) withDefaults() Config {
	if c.DataNodes == 0 {
		c.DataNodes = 3
	}
	if c.Replication == 0 {
		c.Replication = 3
	}
	if c.Replication > c.DataNodes {
		c.Replication = c.DataNodes
	}
	if c.NNHandlers == 0 {
		c.NNHandlers = 2
	}
	if c.HBInterval == 0 {
		c.HBInterval = time.Second
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 10 * time.Second
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 25 * time.Second
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 4 * time.Second
	}
	if c.IBRBatch == 0 {
		c.IBRBatch = 64
	}
	return c
}

// Cost model constants: the per-operation virtual CPU/disk costs that turn
// queue lengths into latency. They are sized so profile runs stay well
// inside every timeout while injected delays (100ms-8s per loop
// iteration) can push marginal paths across thresholds.
const (
	ibrEntryCost      = 2 * time.Millisecond   // NN work per IBR entry
	fbrEntryCost      = 500 * time.Microsecond // NN work per FBR entry
	editFlushCost     = time.Millisecond       // NN work per edit flushed
	editFlushPeriod   = 500 * time.Millisecond
	recoveryScanGap   = time.Second // recovery scanner period
	recoveryTaskCost  = 300 * time.Millisecond
	recoveryDeadline  = 6 * time.Second        // per-task completion deadline
	recoveryExecCost  = 300 * time.Millisecond // salvage pass for a partial replica
	recoveryFastCost  = 100 * time.Millisecond // finalize pass for a valid replica
	recoveryLeaseHold = 4 * time.Second        // dangling lease left by a failed attempt
	replScanGap       = time.Second            // replication monitor period
	replCopyCost      = 200 * time.Millisecond
	diskWriteCost     = 50 * time.Millisecond // per pipeline packet
	diskReadCost      = 40 * time.Millisecond
	diskWaitDeadline  = 2 * time.Second // write's patience for the disk lock
	deletionCost      = 80 * time.Millisecond
	evictCost         = 60 * time.Millisecond
	packetsPerBlock   = 4
	readTimeout       = 2 * time.Second
	commitRetryGap    = 200 * time.Millisecond
	reconstructCost   = 1200 * time.Millisecond
	reconstructWait   = 8 * time.Second // NN re-dispatch threshold (V3)
	eventQueueCap     = 64              // V3 event queue capacity
)

// Cluster wires a NameNode, DataNodes, and shared injection runtime.
type Cluster struct {
	cfg Config
	eng *sim.Engine
	rt  *inject.Runtime

	nn  *nameNode
	dns []*dataNode
}

// NewCluster builds and starts a dfs cluster inside the run context.
func NewCluster(ctx *sysreg.RunContext, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, eng: ctx.Engine, rt: ctx.RT}
	c.nn = newNameNode(c)
	for i := 0; i < cfg.DataNodes; i++ {
		c.dns = append(c.dns, newDataNode(c, i))
	}
	c.nn.start()
	for _, dn := range c.dns {
		dn.start()
	}
	return c
}

// DN returns the i-th DataNode's name.
func (c *Cluster) DN(i int) string { return c.dns[i].node }

// NameNodeRPC exposes the NN data-RPC mailbox (used by clients).
func (c *Cluster) NameNodeRPC() *sim.Mailbox { return c.nn.rpc }
