package dfs

import "repro/internal/faults"

// Injection/monitor point ids. The static analyzer cross-checks that every
// id named here appears in exactly these hook calls in the source.
const (
	// NameNode loops.
	PtNNIBRProcessLoop  faults.ID = "dfs.nn.ibr.process_loop"
	PtNNFBRProcessLoop  faults.ID = "dfs.nn.fbr.process_loop"
	PtNNEditFlushLoop   faults.ID = "dfs.nn.editlog.flush_loop"
	PtNNRecoveryScan    faults.ID = "dfs.nn.recovery.scan_loop"
	PtNNReplMonitorLoop faults.ID = "dfs.nn.repl.monitor_loop"
	PtNNEventLoop       faults.ID = "dfs.nn.events.dispatch_loop" // V3
	PtNNStartupLoop     faults.ID = "dfs.nn.startup.init_loop"    // const-bound: filtered

	// DataNode loops.
	PtDNServiceLoop     faults.ID = "dfs.dn.bp.service_loop"
	PtDNCmdLoop         faults.ID = "dfs.dn.bp.cmd_loop"
	PtDNIBRSendLoop     faults.ID = "dfs.dn.ibr.send_loop"
	PtDNReceiveLoop     faults.ID = "dfs.dn.pipeline.receive_loop"
	PtDNDeletionLoop    faults.ID = "dfs.dn.deletion.loop"
	PtDNEvictLoop       faults.ID = "dfs.dn.cache.evict_loop"
	PtDNRecoveryLoop    faults.ID = "dfs.dn.recovery.loop"
	PtDNReconstructLoop faults.ID = "dfs.dn.reconstruct.loop" // V3
	PtDNChecksumLoop    faults.ID = "dfs.dn.checksum.loop"    // const-bound: filtered

	// Client loops.
	PtClientWriteLoop faults.ID = "dfs.client.write.loop"
	PtClientReadLoop  faults.ID = "dfs.client.read.loop"

	// Exceptions (throw points and library-call sites).
	PtDNIBRRPCIOE    faults.ID = "dfs.dn.ibr.rpc_ioe"
	PtDNHBRPCIOE     faults.ID = "dfs.dn.hb.rpc_ioe"
	PtDNAckIOE       faults.ID = "dfs.dn.pipeline.ack_ioe"
	PtDNMirrorIOE    faults.ID = "dfs.dn.pipeline.mirror_ioe"
	PtDNWriteIOE     faults.ID = "dfs.dn.pipeline.write_ioe" // libcall (disk)
	PtDNRecoveryIOE  faults.ID = "dfs.dn.recovery.ioe"
	PtDNReplCopyIOE  faults.ID = "dfs.dn.repl.copy_ioe"
	PtNNAddBlockIOE  faults.ID = "dfs.nn.addblock.ioe"
	PtNNEditSyncIOE  faults.ID = "dfs.nn.editlog.sync_ioe"     // libcall
	PtNNEventDropIOE faults.ID = "dfs.nn.events.dispatch_ioe"  // V3
	PtDNReconReadIOE faults.ID = "dfs.dn.reconstruct.read_ioe" // V3
	PtClientWriteIOE faults.ID = "dfs.client.write.ioe"
	PtClientReadIOE  faults.ID = "dfs.client.read.ioe"
	PtSecAuthExc     faults.ID = "dfs.sec.auth_exc"     // security: filtered
	PtReflProtoExc   faults.ID = "dfs.refl.proto_exc"   // reflection: filtered
	PtTestHarnessExc faults.ID = "dfs.test.harness_exc" // test-only: filtered

	// Negations (boolean error detectors).
	PtNNIsStale      faults.ID = "dfs.nn.dn.is_stale"
	PtNNIsDead       faults.ID = "dfs.nn.dn.is_dead"
	PtDNReplicaValid faults.ID = "dfs.dn.replica.is_valid"
	PtNNCanAllocate  faults.ID = "dfs.nn.pipeline.can_allocate"
	PtUtilIsSorted   faults.ID = "dfs.util.is_sorted"       // primitive-only: filtered
	PtConfHAEnabled  faults.ID = "dfs.conf.ha_enabled"      // config-only: filtered
	PtNNDebugEnabled faults.ID = "dfs.nn.log.debug_enabled" // const return: filtered
)

// points returns the full (pre-filter) point inventory; v3 selects the
// V3-only points.
func points(v3 bool) []faults.Point {
	sys := "HDFS 2"
	if v3 {
		sys = "HDFS 3"
	}
	pts := []faults.Point{
		// Loops. BodySize reflects reachable work; HasIO marks loops whose
		// bodies touch disk or network.
		{ID: PtNNIBRProcessLoop, Kind: faults.Loop, System: sys, Func: "processIBR", BodySize: 40, HasIO: false, Desc: "NN per-entry IBR processing"},
		{ID: PtNNFBRProcessLoop, Kind: faults.Loop, System: sys, Func: "processFBR", BodySize: 30},
		{ID: PtNNEditFlushLoop, Kind: faults.Loop, System: sys, Func: "flushEditLog", BodySize: 25, HasIO: true},
		{ID: PtNNRecoveryScan, Kind: faults.Loop, System: sys, Func: "recoveryScan", BodySize: 55, HasIO: true},
		{ID: PtNNReplMonitorLoop, Kind: faults.Loop, System: sys, Func: "replicationMonitor", BodySize: 45, HasIO: true},
		{ID: PtDNServiceLoop, Kind: faults.Loop, System: sys, Func: "BPServiceActor", BodySize: 90, HasIO: true, Desc: "DN heartbeat/report service loop"},
		{ID: PtDNCmdLoop, Kind: faults.Loop, System: sys, Func: "BPServiceActor", BodySize: 60, HasIO: true},
		{ID: PtDNIBRSendLoop, Kind: faults.Loop, System: sys, Func: "sendIBR", BodySize: 35, HasIO: true},
		{ID: PtDNReceiveLoop, Kind: faults.Loop, System: sys, Func: "BlockReceiver", BodySize: 70, HasIO: true},
		{ID: PtDNDeletionLoop, Kind: faults.Loop, System: sys, Func: "deletionService", BodySize: 20, HasIO: true},
		{ID: PtDNEvictLoop, Kind: faults.Loop, System: sys, Func: "cacheManager", BodySize: 18, HasIO: true},
		{ID: PtDNRecoveryLoop, Kind: faults.Loop, System: sys, Func: "recoveryWorker", BodySize: 50, HasIO: true},
		{ID: PtClientWriteLoop, Kind: faults.Loop, System: sys, Func: "writeFile", BodySize: 65, HasIO: true},
		{ID: PtClientReadLoop, Kind: faults.Loop, System: sys, Func: "readFile", BodySize: 40, HasIO: true},
		{ID: PtDNChecksumLoop, Kind: faults.Loop, System: sys, Func: "verifyChecksum", BodySize: 5, ConstBound: true},
		{ID: PtNNStartupLoop, Kind: faults.Loop, System: sys, Func: "initNameNode", BodySize: 8, ConstBound: true},

		// Exceptions.
		{ID: PtDNIBRRPCIOE, Kind: faults.Throw, System: sys, Func: "sendIBR", Desc: "IBR RPC failed"},
		{ID: PtDNHBRPCIOE, Kind: faults.Throw, System: sys, Func: "BPServiceActor", Desc: "heartbeat RPC failed"},
		{ID: PtDNAckIOE, Kind: faults.Throw, System: sys, Func: "BlockReceiver", Desc: "commit ack deadline exceeded"},
		{ID: PtDNMirrorIOE, Kind: faults.Throw, System: sys, Func: "BlockReceiver", Desc: "mirror forward failed"},
		{ID: PtDNWriteIOE, Kind: faults.LibCall, System: sys, Func: "BlockReceiver", Category: faults.ExcLibrary, Desc: "disk write failed"},
		{ID: PtDNRecoveryIOE, Kind: faults.Throw, System: sys, Func: "recoveryWorker", Desc: "block recovery failed"},
		{ID: PtDNReplCopyIOE, Kind: faults.Throw, System: sys, Func: "BPServiceActor", Desc: "replica copy failed"},
		{ID: PtNNAddBlockIOE, Kind: faults.Throw, System: sys, Func: "addBlock", Desc: "no viable pipeline targets"},
		{ID: PtNNEditSyncIOE, Kind: faults.LibCall, System: sys, Func: "flushEditLog", Category: faults.ExcLibrary, Desc: "edit sync failed"},
		{ID: PtClientWriteIOE, Kind: faults.Throw, System: sys, Func: "writeFile", Desc: "write retries exhausted"},
		{ID: PtClientReadIOE, Kind: faults.Throw, System: sys, Func: "readFile", Desc: "read failed"},
		{ID: PtSecAuthExc, Kind: faults.Throw, System: sys, Func: "authenticate", Category: faults.ExcSecurity},
		{ID: PtReflProtoExc, Kind: faults.Throw, System: sys, Func: "loadProto", Category: faults.ExcReflection},
		{ID: PtTestHarnessExc, Kind: faults.Throw, System: sys, Func: "testSetup", TestOnly: true},

		// Negations.
		{ID: PtNNIsStale, Kind: faults.Negation, System: sys, Func: "staleMonitor", Desc: "DN heartbeat staleness detector"},
		{ID: PtNNIsDead, Kind: faults.Negation, System: sys, Func: "staleMonitor", Desc: "DN death detector"},
		{ID: PtDNReplicaValid, Kind: faults.Negation, System: sys, Func: "recoveryWorker", Desc: "replica validity check"},
		{ID: PtNNCanAllocate, Kind: faults.Negation, System: sys, Func: "addBlock", Desc: "pipeline allocatability check"},
		{ID: PtUtilIsSorted, Kind: faults.Negation, System: sys, Func: "isSorted", PrimitiveOnly: true},
		{ID: PtConfHAEnabled, Kind: faults.Negation, System: sys, Func: "haEnabled", ConfigOnly: true},
		{ID: PtNNDebugEnabled, Kind: faults.Negation, System: sys, Func: "debugEnabled", ConstReturn: true},
	}
	if v3 {
		pts = append(pts,
			faults.Point{ID: PtNNEventLoop, Kind: faults.Loop, System: sys, Func: "eventDispatcher", BodySize: 35, HasIO: false},
			faults.Point{ID: PtDNReconstructLoop, Kind: faults.Loop, System: sys, Func: "reconstructionWorker", BodySize: 75, HasIO: true},
			faults.Point{ID: PtNNEventDropIOE, Kind: faults.Throw, System: sys, Func: "eventDispatcher", Desc: "event queue dispatch failure"},
			faults.Point{ID: PtDNReconReadIOE, Kind: faults.Throw, System: sys, Func: "reconstructionWorker", Desc: "reconstruction source read failed"},
		)
	}
	return pts
}

// nests declares the loop nesting of Figure 5: the DN service loop is the
// parent batch loop, with command processing and IBR sending as
// consecutive child loops.
func nests() []faults.LoopNest {
	return []faults.LoopNest{
		{Parent: PtDNServiceLoop, Children: []faults.ID{PtDNCmdLoop, PtDNIBRSendLoop}},
	}
}
