package dfs

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core/fca"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"
)

// runWorkload executes one named workload under a plan and returns its
// trace.
func runWorkload(t *testing.T, sys sysreg.System, name string, plan inject.Plan, seed int64) *trace.Run {
	t.Helper()
	for _, w := range sys.Workloads() {
		if w.Name != name {
			continue
		}
		rec := trace.NewRun(name, seed)
		rt := inject.New(plan, rec)
		eng := sim.NewEngine(sim.Options{Seed: seed})
		w.Run(&sysreg.RunContext{Engine: eng, RT: rt})
		res := eng.Run(w.Horizon)
		eng.Close()
		rec.Result = res
		return rec
	}
	t.Fatalf("unknown workload %q", name)
	return nil
}

func runSet(t *testing.T, sys sysreg.System, name string, plan inject.Plan, n int, base int64) *trace.Set {
	s := &trace.Set{}
	for i := 0; i < n; i++ {
		s.Add(runWorkload(t, sys, name, plan, base+int64(i)))
	}
	return s
}

func TestProfileRunsAreQuiet(t *testing.T) {
	// No profile run may naturally activate the seeded exception points:
	// counterfactual causality requires a quiet baseline.
	sys := NewV2()
	noisy := []faults.ID{PtDNIBRRPCIOE, PtDNAckIOE, PtDNWriteIOE, PtDNRecoveryIOE,
		PtDNMirrorIOE, PtNNAddBlockIOE, PtClientWriteIOE}
	for _, w := range sys.Workloads() {
		rec := runWorkload(t, sys, w.Name, inject.Profile(), 7)
		for _, id := range noisy {
			if rec.Reached(id) > 0 {
				t.Errorf("workload %s: %s activated naturally %d times", w.Name, id, rec.Reached(id))
			}
		}
	}
}

func TestProfileCoverageBasics(t *testing.T) {
	sys := NewV2()
	rec := runWorkload(t, sys, "basic_write", inject.Profile(), 3)
	for _, id := range []faults.ID{PtDNServiceLoop, PtDNIBRSendLoop, PtNNIBRProcessLoop,
		PtDNReceiveLoop, PtClientWriteLoop, PtNNIsStale, PtDNIBRRPCIOE} {
		if !rec.Covered(id) {
			t.Errorf("basic_write does not cover %s", id)
		}
	}
	if rec.LoopIters(PtDNReceiveLoop) == 0 {
		t.Error("no pipeline packets received")
	}
	if rec.LoopIters(PtNNIBRProcessLoop) == 0 {
		t.Error("no IBR entries processed")
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	sys := NewV2()
	a := runWorkload(t, sys, "ibr_storm", inject.Profile(), 11)
	b := runWorkload(t, sys, "ibr_storm", inject.Profile(), 11)
	if a.Result.Events != b.Result.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Result.Events, b.Result.Events)
	}
	aLoops, bLoops := a.LoopIDs(), b.LoopIDs()
	if !reflect.DeepEqual(aLoops, bLoops) {
		t.Fatalf("loop id sets differ: %v vs %v", aLoops, bLoops)
	}
	for _, id := range aLoops {
		if a.LoopIters(id) != b.LoopIters(id) {
			t.Fatalf("loop %s iters differ: %d vs %d", id, a.LoopIters(id), b.LoopIters(id))
		}
	}
}

// TestBugIBRStorm_EdgeA checks the §8.3.2 E(D) edge: delaying the NN IBR
// processing loop in the large-namespace workload times out DataNode IBR
// RPCs.
func TestBugIBRStorm_EdgeA(t *testing.T) {
	sys := NewV2()
	plan := inject.Plan{Kind: inject.Delay, Target: PtNNIBRProcessLoop, Delay: 4 * time.Second}
	rec := runWorkload(t, sys, "ibr_storm", plan, 5)
	if rec.Reached(PtDNIBRRPCIOE) == 0 {
		t.Fatalf("delaying NN IBR processing did not trigger IBR RPC IOEs (iters=%d)", rec.LoopIters(PtNNIBRProcessLoop))
	}
}

// TestBugIBRStorm_EdgeA_NotInSmallTest checks the conditionality: the same
// moderate delay that breaks the 5000-block workload leaves the throttled
// small-namespace workload healthy (which is why stitching across tests is
// needed: no single test satisfies all triggering conditions).
func TestBugIBRStorm_EdgeA_NotInSmallTest(t *testing.T) {
	sys := NewV2()
	small := runWorkload(t, sys, "ibr_interval",
		inject.Plan{Kind: inject.Delay, Target: PtNNIBRProcessLoop, Delay: 500 * time.Millisecond}, 5)
	if small.Reached(PtDNIBRRPCIOE) > 0 {
		t.Fatalf("small test unexpectedly triggered IBR IOE under NN delay")
	}
	storm := runWorkload(t, sys, "ibr_storm",
		inject.Plan{Kind: inject.Delay, Target: PtNNIBRProcessLoop, Delay: time.Second}, 5)
	if storm.Reached(PtDNIBRRPCIOE) == 0 {
		t.Fatalf("storm test did not trigger IBR IOE under NN delay")
	}
}

// TestBugIBRStorm_EdgeB checks the §8.3.2 S+(I) edge: injecting the IBR
// RPC exception in the throttled workload makes the failed report retry at
// the next heartbeat, inflating NN IBR processing counts.
func TestBugIBRStorm_EdgeB(t *testing.T) {
	sys := NewV2()
	profile := runSet(t, sys, "ibr_interval", inject.Profile(), 5, 100)
	injected := runSet(t, sys, "ibr_interval", inject.Plan{Kind: inject.Exception, Target: PtDNIBRRPCIOE}, 5, 200)
	space := sysreg.Space(sys)
	edges, _ := fca.Analyze(space, inject.Plan{Kind: inject.Exception, Target: PtDNIBRRPCIOE},
		"ibr_interval", profile, injected, fca.DefaultConfig())
	found := false
	for _, e := range edges {
		if e.To == PtNNIBRProcessLoop {
			found = true
		}
	}
	if !found {
		t.Fatalf("no S+(I) edge ibr_ioe -> nn.ibr.process_loop; edges = %v", edges)
	}
}

// TestBugRecoveryRetry checks HDFS2-3's single-test mechanics: delaying
// the DN recovery worker blows per-task deadlines, recovery IOEs fire, and
// the unbounded NameNode re-enqueue inflates the worker loop.
func TestBugRecoveryRetry(t *testing.T) {
	sys := NewV2()
	// A moderate per-task delay is the dangerous one: it keeps the worker
	// saturated so re-enqueued recoveries pile up (metastable overload);
	// a huge delay merely slows the loop down.
	plan := inject.Plan{Kind: inject.Delay, Target: PtDNRecoveryLoop, Delay: 2 * time.Second}
	rec := runWorkload(t, sys, "recovery_deadline", plan, 5)
	if rec.Reached(PtDNRecoveryIOE) == 0 {
		t.Fatalf("delayed recovery worker did not miss deadlines (iters=%d)", rec.LoopIters(PtDNRecoveryLoop))
	}
	prof := runWorkload(t, sys, "recovery_deadline", inject.Profile(), 5)
	if rec.LoopIters(PtDNRecoveryLoop) <= prof.LoopIters(PtDNRecoveryLoop) {
		t.Fatalf("no retry storm: injected iters %d <= profile iters %d",
			rec.LoopIters(PtDNRecoveryLoop), prof.LoopIters(PtDNRecoveryLoop))
	}
}

// TestBugEditLog checks HDFS2-2 edge A: delaying the edit-log flush loop
// (which holds the namesystem lock) stalls IBR handling into RPC timeouts.
func TestBugEditLog(t *testing.T) {
	sys := NewV2()
	plan := inject.Plan{Kind: inject.Delay, Target: PtNNEditFlushLoop, Delay: 2 * time.Second}
	rec := runWorkload(t, sys, "meta_churn", plan, 5)
	if rec.Reached(PtDNIBRRPCIOE) == 0 {
		t.Fatalf("edit-log delay did not stall IBRs into IOEs (flush iters=%d)", rec.LoopIters(PtNNEditFlushLoop))
	}
}

// TestBugLeaseScan checks HDFS2-1 edge A: a delayed recovery scan holds
// the namesystem lock long enough to stall pipeline commit acks.
func TestBugLeaseScan(t *testing.T) {
	sys := NewV2()
	plan := inject.Plan{Kind: inject.Delay, Target: PtNNRecoveryScan, Delay: 4 * time.Second}
	rec := runWorkload(t, sys, "lease_storm", plan, 5)
	if rec.Reached(PtDNAckIOE) == 0 {
		t.Fatalf("recovery-scan delay did not stall commit acks (scan iters=%d)", rec.LoopIters(PtNNRecoveryScan))
	}
}

// TestBugLeaseScan_ReverseEdge checks HDFS2-1 edge B: injected pipeline
// ack failures push blocks into lease recovery, inflating the scan loop.
func TestBugLeaseScan_ReverseEdge(t *testing.T) {
	sys := NewV2()
	prof := runWorkload(t, sys, "pipeline_recovery", inject.Profile(), 5)
	rec := runWorkload(t, sys, "pipeline_recovery",
		inject.Plan{Kind: inject.Exception, Target: PtDNAckIOE}, 5)
	if rec.LoopIters(PtNNRecoveryScan) <= prof.LoopIters(PtNNRecoveryScan) {
		t.Fatalf("ack failure did not grow recovery scans: %d <= %d",
			rec.LoopIters(PtNNRecoveryScan), prof.LoopIters(PtNNRecoveryScan))
	}
}

// TestBugCacheEvict checks HDFS2-5 edge A: eviction batches holding the
// disk lock starve pipeline writes past their patience.
func TestBugCacheEvict(t *testing.T) {
	sys := NewV2()
	plan := inject.Plan{Kind: inject.Delay, Target: PtDNEvictLoop, Delay: 2 * time.Second}
	rec := runWorkload(t, sys, "cache_churn", plan, 5)
	if rec.Reached(PtDNWriteIOE) == 0 {
		t.Fatalf("eviction delay did not starve writes (evict iters=%d)", rec.LoopIters(PtDNEvictLoop))
	}
}

// TestBugPipelineDelay checks HDFS2-4 edge A: a delayed packet receive
// loop blows the commit-ack deadline.
func TestBugPipelineDelay(t *testing.T) {
	sys := NewV2()
	plan := inject.Plan{Kind: inject.Delay, Target: PtDNReceiveLoop, Delay: 2 * time.Second}
	rec := runWorkload(t, sys, "write_heavy", plan, 5)
	if rec.Reached(PtDNAckIOE) == 0 && rec.Reached(PtDNWriteIOE) == 0 {
		t.Fatalf("pipeline delay caused no write-path faults")
	}
}

// TestStaleNegationStorm checks that persistently flipping the staleness
// detector triggers mass redistribution churn.
func TestStaleNegationStorm(t *testing.T) {
	sys := NewV2()
	prof := runWorkload(t, sys, "cache_churn", inject.Profile(), 5)
	rec := runWorkload(t, sys, "cache_churn",
		inject.Plan{Kind: inject.Negate, Target: PtNNIsStale}, 5)
	if rec.LoopIters(PtNNReplMonitorLoop) <= prof.LoopIters(PtNNReplMonitorLoop) {
		t.Fatalf("stale negation caused no redistribution: %d <= %d",
			rec.LoopIters(PtNNReplMonitorLoop), prof.LoopIters(PtNNReplMonitorLoop))
	}
}

// TestV3ReconstructionFlow checks the HDFS3 substrate: a crashed DN leads
// to reconstruction commands processed by the workers.
func TestV3ReconstructionFlow(t *testing.T) {
	sys := NewV3()
	rec := runWorkload(t, sys, "ec_base", inject.Profile(), 5)
	if rec.LoopIters(PtDNReconstructLoop) == 0 {
		t.Fatal("no reconstruction work after DN crash")
	}
	if rec.LoopIters(PtNNEventLoop) == 0 {
		t.Fatal("event dispatcher idle after DN crash")
	}
}

// TestHarnessExecuteProducesEdges wires the real driver: executing the
// §8.3.2 injection must register causal edges.
func TestHarnessExecuteProducesEdges(t *testing.T) {
	sys := NewV2()
	cfg := harness.Config{Reps: 3, DelayMagnitudes: []time.Duration{2 * time.Second, 4 * time.Second}}
	d := harness.New(sys, sysreg.Space(sys), cfg)
	intf := d.Execute(PtNNIBRProcessLoop, "ibr_storm")
	if len(intf) == 0 {
		t.Fatal("no interference from NN IBR delay in ibr_storm")
	}
	found := false
	for _, id := range intf {
		if id == PtDNIBRRPCIOE {
			found = true
		}
	}
	if !found {
		t.Fatalf("interference %v misses dn.ibr.rpc_ioe", intf)
	}
}
