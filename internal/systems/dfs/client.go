package dfs

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// writeClientTimeout is the client's patience for a whole-block pipeline
// write (generously above the in-pipeline ack deadline so receiver-side
// errors surface as error replies, not bare timeouts).
const writeClientTimeout = 9 * time.Second

// WriterOpts shapes a writer process.
type WriterOpts struct {
	Name   string
	Files  int
	Blocks int // blocks per file
	Gap    time.Duration
	// AbortMidWrite abandons each file's last block halfway through,
	// leaving partial replicas behind (lease-recovery fodder).
	AbortMidWrite bool
	// Delete removes each file right after writing it (churn).
	Delete bool
	// Start delays the writer's first operation.
	Start time.Duration
}

// SpawnWriter starts a writer client process against the cluster.
func (c *Cluster) SpawnWriter(opts WriterOpts) {
	node := "client-" + opts.Name
	c.eng.Spawn(node, opts.Name, func(p *sim.Proc) {
		defer p.Enter("writeFile")()
		rt := c.rt
		if opts.Start > 0 {
			p.Sleep(opts.Start)
		}
		if opts.Gap == 0 {
			opts.Gap = 300 * time.Millisecond
		}
		for f := 0; f < opts.Files; f++ {
			file := fmt.Sprintf("/%s/f%d", opts.Name, f)
			for b := 0; b < opts.Blocks; b++ {
				rt.Loop(p, PtClientWriteLoop)
				abort := opts.AbortMidWrite && b == opts.Blocks-1
				c.writeBlock(p, file, abort)
				p.Sleep(opts.Gap + time.Duration(p.Rand().Intn(60))*time.Millisecond)
			}
			if opts.Delete {
				p.Call(c.nn.rpc, deleteFileMsg{file: file}, c.cfg.RPCTimeout)
				p.Sleep(opts.Gap)
			}
		}
	})
}

// writeBlock allocates and writes one block, rebuilding the pipeline on
// failure up to cfg.ClientRetries times.
func (c *Cluster) writeBlock(p *sim.Proc, file string, abort bool) {
	rt := c.rt
	exclude := map[string]bool{}
	attempts := 0
	for {
		attempts++
		resp, err := p.Call(c.nn.rpc, addBlockMsg{file: file, exclude: exclude}, c.cfg.RPCTimeout)
		if err != nil {
			if rt.Guard(p, PtClientWriteIOE, attempts > c.cfg.ClientRetries) {
				return // write abandoned at the client surface
			}
			p.Sleep(500 * time.Millisecond)
			continue
		}
		alloc := resp.(addBlockReply)
		primary := c.dnByName(alloc.targets[0])
		if abort {
			// Stream half the packets then abandon the block: the lease
			// is left dangling and the NameNode must recover it.
			for i := 0; i < packetsPerBlock/2; i++ {
				p.Call(primary.mirror, packetMsg{block: alloc.block}, 3*time.Second)
			}
			p.Call(c.nn.rpc, abandonMsg{block: alloc.block, file: file}, c.cfg.RPCTimeout)
			return
		}
		_, err = p.Call(primary.xfer, writeBlockMsg{
			block:    alloc.block,
			file:     file,
			pipeline: alloc.targets,
			packets:  packetsPerBlock,
		}, writeClientTimeout)
		if err == nil {
			return
		}
		// Pipeline failure: abandon the attempt (queueing cleanup and,
		// when enabled, lease recovery) and retry with the primary
		// excluded.
		p.Call(c.nn.rpc, abandonMsg{block: alloc.block, file: file, failedDN: alloc.targets[0]}, c.cfg.RPCTimeout)
		exclude[alloc.targets[0]] = true
		if rt.Guard(p, PtClientWriteIOE, attempts > c.cfg.ClientRetries) {
			return
		}
		p.Sleep(300 * time.Millisecond)
	}
}

// ReaderOpts shapes a reader process.
type ReaderOpts struct {
	Name  string
	Ops   int
	Gap   time.Duration
	Start time.Duration
}

// SpawnReader starts a reader that cycles over the preloaded blocks.
func (c *Cluster) SpawnReader(opts ReaderOpts) {
	node := "client-" + opts.Name
	c.eng.Spawn(node, opts.Name, func(p *sim.Proc) {
		defer p.Enter("readFile")()
		rt := c.rt
		if opts.Start > 0 {
			p.Sleep(opts.Start)
		}
		if opts.Gap == 0 {
			opts.Gap = 200 * time.Millisecond
		}
		for i := 0; i < opts.Ops; i++ {
			rt.Loop(p, PtClientReadLoop)
			c.readAny(p, i)
			p.Sleep(opts.Gap + time.Duration(p.Rand().Intn(40))*time.Millisecond)
		}
	})
}

// readAny reads some finalized block from some DataNode, retrying once on
// a different replica before surfacing a read error.
func (c *Cluster) readAny(p *sim.Proc, salt int) {
	rt := c.rt
	done := false
	for attempt := 0; attempt < 2 && !done; attempt++ {
		dn := c.dns[(salt+attempt)%len(c.dns)]
		block := dn.anyFinalized(salt)
		if block < 0 {
			continue
		}
		if _, err := p.Call(dn.xfer, readBlockMsg{block: block}, readTimeout); err == nil {
			done = true
		}
	}
	rt.Guard(p, PtClientReadIOE, !done)
}

// anyFinalized picks a deterministic finalized block, or -1.
func (dn *dataNode) anyFinalized(salt int) int {
	if len(dn.cache) > 0 {
		return dn.cache[salt%len(dn.cache)]
	}
	best := -1
	for b := range dn.finalized {
		if best == -1 || b < best {
			best = b
		}
	}
	return best
}

// dnByName resolves a DataNode by node name.
func (c *Cluster) dnByName(name string) *dataNode {
	for _, d := range c.dns {
		if d.node == name {
			return d
		}
	}
	return nil
}

// Preload installs cfg.PreloadBlocks committed blocks per DataNode and
// registers every DataNode with the NameNode. Call once per workload,
// before spawning clients.
func (c *Cluster) Preload() {
	id := 1_000_000 // preloaded block ids live above client allocations
	for _, dn := range c.dns {
		var blocks []int
		for i := 0; i < c.cfg.PreloadBlocks; i++ {
			blocks = append(blocks, id)
			c.nn.preloadBlock(id, []string{dn.node})
			id++
		}
		dn.preload(blocks)
		c.nn.registerDN(dn.node, blocks)
	}
	if c.cfg.PreloadBlocks == 0 {
		for _, dn := range c.dns {
			c.nn.registerDN(dn.node, nil)
		}
	}
}
