package dfs

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// --- DataNode transfer messages ---

type writeBlockMsg struct {
	block    int
	file     string
	pipeline []string // all replica holders, primary first
	packets  int
}

type packetMsg struct {
	block int
	last  bool
}

type readBlockMsg struct{ block int }

type copyBlockMsg struct{ block int }

type dataNode struct {
	c    *Cluster
	idx  int
	node string

	xfer   *sim.Mailbox // data transfer server (writes, reads, copies)
	mirror *sim.Mailbox // dedicated mirror-packet lane (prevents pipeline
	// self-deadlock when every xceiver is a busy primary)
	diskMu *sim.Mutex

	blocks    map[int]bool
	finalized map[int]bool

	pendingIBR []ibrEntry
	ibrRetry   bool // failed IBR pending: retried at next heartbeat,
	// bypassing the configured interval (the HDFS2-6 bug)
	lastIBR time.Duration

	recoverQ *sim.Mailbox
	deleteQ  *sim.Mailbox
	reconQ   *sim.Mailbox

	// recoveryLease tracks dangling per-block recovery leases left by
	// failed attempts; attempts on a leased block fail fast and extend
	// the lease -- the self-sustaining core of the HDFS2-3 bug.
	recoveryLease map[int]time.Duration

	cache    []int
	cacheSet map[int]bool
}

func newDataNode(c *Cluster, idx int) *dataNode {
	dn := &dataNode{
		c:             c,
		idx:           idx,
		node:          fmt.Sprintf("dn%d", idx),
		blocks:        make(map[int]bool),
		finalized:     make(map[int]bool),
		cacheSet:      make(map[int]bool),
		recoveryLease: make(map[int]time.Duration),
	}
	dn.xfer = c.eng.NewMailbox(dn.node, "xfer")
	dn.mirror = c.eng.NewMailbox(dn.node, "mirror")
	dn.diskMu = sim.NewMutex(c.eng, dn.node)
	dn.recoverQ = c.eng.NewMailbox(dn.node, "recoverq")
	dn.deleteQ = c.eng.NewMailbox(dn.node, "deleteq")
	dn.reconQ = c.eng.NewMailbox(dn.node, "reconq")
	return dn
}

func (dn *dataNode) start() {
	for i := 0; i < 2; i++ {
		dn.c.eng.Spawn(dn.node, "xceiver", dn.xceiverLoop)
		dn.c.eng.Spawn(dn.node, "mirrorWorker", dn.mirrorLoop)
	}
	dn.c.eng.Spawn(dn.node, "bpServiceActor", dn.bpServiceActor)
	dn.c.eng.Spawn(dn.node, "deletionService", dn.deletionService)
	dn.c.eng.Spawn(dn.node, "recoveryWorker", dn.recoveryWorker)
	if dn.c.cfg.CacheCapacity > 0 {
		dn.c.eng.Spawn(dn.node, "cacheManager", dn.cacheManager)
	}
	if dn.c.cfg.V3 {
		dn.c.eng.Spawn(dn.node, "reconstructionWorker", dn.reconstructionWorker)
	}
}

func (dn *dataNode) preload(blocks []int) {
	for _, b := range blocks {
		dn.blocks[b] = true
		dn.finalized[b] = true
	}
}

func (dn *dataNode) queueIBR(e ibrEntry) { dn.pendingIBR = append(dn.pendingIBR, e) }

// diskOp acquires the disk with a patience deadline; ok is false when the
// disk stayed busy past the deadline (the caller's write/read fails).
func (dn *dataNode) diskOp(p *sim.Proc, cost time.Duration, patience time.Duration) bool {
	start := p.Now()
	dn.diskMu.Lock(p)
	waited := p.Now() - start
	if patience > 0 && waited > patience {
		dn.diskMu.Unlock(p)
		return false
	}
	p.Work(cost)
	dn.diskMu.Unlock(p)
	return true
}

// --- BPServiceActor: the Figure 5 service loop ---
// Loop 1 (service) contains Loop 2 (command processing) and Loop 3 (IBR
// sending) as consecutive children; a delayed child stalls its parent and
// sibling, which is exactly what the ICFG/CFG edges model.

func (dn *dataNode) bpServiceActor(p *sim.Proc) {
	defer p.Enter("BPServiceActor")()
	rt := dn.c.rt
	cfg := dn.c.cfg
	nn := dn.c.nn

	// Initial registration: a full block report covering the preload.
	p.Call(nn.rpc, fbrMsg{dn: dn.node, blocks: len(dn.blocks)}, cfg.RPCTimeout)

	for {
		rt.Loop(p, PtDNServiceLoop)
		p.Sleep(cfg.HBInterval + time.Duration(p.Rand().Intn(50))*time.Millisecond)

		resp, err := p.Call(nn.svc, hbMsg{dn: dn.node}, cfg.RPCTimeout)
		if rt.Guard(p, PtDNHBRPCIOE, err != nil) {
			continue // heartbeat lost; retried next round
		}
		reply := resp.(hbReply)
		for _, cmd := range reply.cmds {
			rt.Loop(p, PtDNCmdLoop)
			dn.processCommand(p, cmd)
		}

		if dn.shouldSendIBR(p) {
			dn.sendIBR(p)
		}
	}
}

// shouldSendIBR applies the IBR throttle -- except that a previously
// failed report is retried at the very next heartbeat, ignoring the
// configured interval (Table 3 HDFS2-6, §8.3.2).
func (dn *dataNode) shouldSendIBR(p *sim.Proc) bool {
	if len(dn.pendingIBR) == 0 {
		return false
	}
	if dn.c.cfg.IBRInterval == 0 {
		return true
	}
	if dn.ibrRetry {
		return true
	}
	return p.Now()-dn.lastIBR >= dn.c.cfg.IBRInterval
}

// sendIBR streams the pending entries to the NameNode in batches.
func (dn *dataNode) sendIBR(p *sim.Proc) {
	defer p.Enter("sendIBR")()
	rt := dn.c.rt
	cfg := dn.c.cfg
	var batch []ibrEntry
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		_, err := p.Call(dn.c.nn.rpc, ibrMsg{dn: dn.node, entries: batch}, cfg.RPCTimeout)
		if rt.Guard(p, PtDNIBRRPCIOE, err != nil) {
			// Keep everything still pending and retry at the next
			// heartbeat (bypassing the throttle interval).
			dn.ibrRetry = true
			return false
		}
		dn.pendingIBR = dn.pendingIBR[len(batch):]
		batch = batch[:0]
		return true
	}
	pending := append([]ibrEntry(nil), dn.pendingIBR...)
	for _, e := range pending {
		rt.Loop(p, PtDNIBRSendLoop)
		p.Work(500 * time.Microsecond)
		batch = append(batch, e)
		if len(batch) >= cfg.IBRBatch {
			if !flush() {
				return
			}
		}
	}
	if !flush() {
		return
	}
	dn.ibrRetry = false
	dn.lastIBR = p.Now()
}

func (dn *dataNode) processCommand(p *sim.Proc, cmd command) {
	switch cmd.kind {
	case "replicate":
		dn.copyReplica(p, cmd.block, cmd.target)
	case "delete":
		p.Send(dn.deleteQ, cmd.block)
	case "recover":
		p.Send(dn.recoverQ, cmd)
	case "reconstruct":
		p.Send(dn.reconQ, cmd.block)
	}
}

// copyReplica performs an inline replica copy to the target DN: a local
// disk read followed by a transfer RPC. Running inline in the command
// loop, heavy replication traffic delays heartbeats -- the staleness
// feedback path.
func (dn *dataNode) copyReplica(p *sim.Proc, block int, target string) {
	defer p.Enter("copyReplica")()
	rt := dn.c.rt
	if !dn.blocks[block] {
		return
	}
	dn.diskOp(p, diskReadCost, 0)
	var tgt *dataNode
	for _, d := range dn.c.dns {
		if d.node == target {
			tgt = d
			break
		}
	}
	var err error
	if tgt == nil {
		err = &pipelineError{"unknown target"}
	} else {
		_, err = p.Call(tgt.xfer, copyBlockMsg{block: block}, dn.c.cfg.RPCTimeout)
	}
	if rt.Guard(p, PtDNReplCopyIOE, err != nil) {
		// Copy failed; the block stays under-replicated and the monitor
		// will retry on a later scan.
		dn.c.nn.mu.Lock(p)
		dn.c.nn.underRepl = append(dn.c.nn.underRepl, block)
		dn.c.nn.mu.Unlock(p)
	}
}

// --- data transfer server ---

func (dn *dataNode) xceiverLoop(p *sim.Proc) {
	for {
		m, ok := p.Recv(dn.xfer, -1)
		if !ok {
			return
		}
		req := m.(sim.Req)
		switch body := req.Body.(type) {
		case writeBlockMsg:
			dn.blockReceiver(p, req, body)
		case readBlockMsg:
			dn.handleRead(p, req, body)
		case copyBlockMsg:
			dn.handleCopy(p, req, body)
		default:
			p.Reply(req, nil, nil)
		}
	}
}

func (dn *dataNode) mirrorLoop(p *sim.Proc) {
	for {
		m, ok := p.Recv(dn.mirror, -1)
		if !ok {
			return
		}
		req := m.(sim.Req)
		if body, isPacket := req.Body.(packetMsg); isPacket {
			dn.handleMirrorPacket(p, req, body)
		} else {
			p.Reply(req, nil, nil)
		}
	}
}

// blockReceiver runs the primary end of the write pipeline: it receives
// packets, persists them, mirrors them downstream, and finally waits for
// the NameNode commit ack within the ack deadline.
func (dn *dataNode) blockReceiver(p *sim.Proc, req sim.Req, msg writeBlockMsg) {
	defer p.Enter("BlockReceiver")()
	rt := dn.c.rt
	cfg := dn.c.cfg
	start := p.Now()
	deadline := start + cfg.AckTimeout

	var downstream []*dataNode
	for _, name := range msg.pipeline[1:] {
		for _, d := range dn.c.dns {
			if d.node == name {
				downstream = append(downstream, d)
			}
		}
	}

	dn.blocks[msg.block] = true
	rt.Branch(p, "dfs.pipeline.has_downstream", len(downstream) > 0)
	for i := 0; i < msg.packets; i++ {
		rt.Loop(p, PtDNReceiveLoop)
		// Local persistence; fails if the disk is hogged past patience
		// (deletion/eviction/recovery contention) or by injection.
		ok := dn.diskOp(p, diskWriteCost, diskWaitDeadline)
		if rt.Guard(p, PtDNWriteIOE, !ok) {
			p.Reply(req, nil, &pipelineError{"disk write failed"})
			return
		}
		// Mirror to each downstream replica.
		for _, d := range downstream {
			_, err := p.Call(d.mirror, packetMsg{block: msg.block, last: i == msg.packets-1}, 3*time.Second)
			if rt.Guard(p, PtDNMirrorIOE, err != nil) {
				p.Reply(req, nil, &pipelineError{"mirror forward failed"})
				return
			}
		}
	}
	dn.finalizeBlock(p, msg.block)

	// Commit ack: the block must be committed on the NameNode within the
	// ack deadline; a namesystem lock stalled past the deadline surfaces
	// here as the pipeline ack exception. The guard is evaluated before
	// each attempt so an injected ack failure aborts an uncommitted
	// block, exactly like a real early throw.
	for {
		if rt.Guard(p, PtDNAckIOE, p.Now() >= deadline) {
			p.Reply(req, nil, &pipelineError{"commit ack deadline exceeded"})
			return
		}
		resp, err := p.Call(dn.c.nn.rpc, commitMsg{block: msg.block}, cfg.RPCTimeout)
		if err == nil && p.Now() < deadline {
			if ready, _ := resp.(bool); ready {
				break
			}
		}
		// Late or failed commit: a stale ack is worthless to the client;
		// loop back so the deadline guard fires.
		p.Sleep(commitRetryGap)
	}
	p.Reply(req, msg.block, nil)
}

// handleMirrorPacket is the downstream end of the pipeline.
func (dn *dataNode) handleMirrorPacket(p *sim.Proc, req sim.Req, msg packetMsg) {
	defer p.Enter("mirrorReceiver")()
	rt := dn.c.rt
	dn.blocks[msg.block] = true
	ok := dn.diskOp(p, diskWriteCost, diskWaitDeadline)
	if rt.Guard(p, PtDNWriteIOE, !ok) {
		p.Reply(req, nil, &pipelineError{"disk write failed"})
		return
	}
	if msg.last {
		dn.finalizeBlock(p, msg.block)
	}
	p.Reply(req, nil, nil)
}

// finalizeBlock completes a local replica: it becomes reportable (IBR) and
// cached.
func (dn *dataNode) finalizeBlock(p *sim.Proc, block int) {
	dn.finalized[block] = true
	dn.queueIBR(ibrEntry{block: block, kind: "received"})
	if dn.c.cfg.CacheCapacity > 0 && !dn.cacheSet[block] {
		dn.cache = append(dn.cache, block)
		dn.cacheSet[block] = true
	}
}

func (dn *dataNode) handleRead(p *sim.Proc, req sim.Req, msg readBlockMsg) {
	defer p.Enter("readBlock")()
	if !dn.blocks[msg.block] {
		p.Reply(req, nil, &pipelineError{"replica not found"})
		return
	}
	if !dn.diskOp(p, diskReadCost, readTimeout) {
		p.Reply(req, nil, &pipelineError{"read too slow"})
		return
	}
	p.Reply(req, msg.block, nil)
}

func (dn *dataNode) handleCopy(p *sim.Proc, req sim.Req, msg copyBlockMsg) {
	defer p.Enter("receiveCopy")()
	if !dn.diskOp(p, diskWriteCost*packetsPerBlock, 0) {
		p.Reply(req, nil, &pipelineError{"copy write failed"})
		return
	}
	dn.blocks[msg.block] = true
	dn.finalizeBlock(p, msg.block)
	p.Reply(req, nil, nil)
}

// --- background services ---

// deletionService drains the deletion queue in batches under the disk
// lock; writes racing a large batch wait -- the HDFS3-1 contention source.
func (dn *dataNode) deletionService(p *sim.Proc) {
	defer p.Enter("deletionService")()
	rt := dn.c.rt
	for {
		m, ok := p.Recv(dn.deleteQ, -1)
		if !ok {
			return
		}
		batch := []int{m.(int)}
		for dn.deleteQ.Len() > 0 {
			if m2, ok2 := p.Recv(dn.deleteQ, 0); ok2 {
				batch = append(batch, m2.(int))
			}
		}
		dn.diskMu.Lock(p)
		for _, b := range batch {
			rt.Loop(p, PtDNDeletionLoop)
			p.Work(deletionCost)
			delete(dn.blocks, b)
			delete(dn.finalized, b)
			dn.queueIBR(ibrEntry{block: b, kind: "deleted"})
		}
		dn.diskMu.Unlock(p)
	}
}

// cacheManager evicts blocks beyond capacity in batches under the disk
// lock -- the HDFS2-5 contention source.
func (dn *dataNode) cacheManager(p *sim.Proc) {
	defer p.Enter("cacheManager")()
	rt := dn.c.rt
	for {
		p.Sleep(500*time.Millisecond + time.Duration(p.Rand().Intn(20))*time.Millisecond)
		if len(dn.cache) <= dn.c.cfg.CacheCapacity {
			continue
		}
		dn.diskMu.Lock(p)
		for len(dn.cache) > dn.c.cfg.CacheCapacity {
			rt.Loop(p, PtDNEvictLoop)
			p.Work(evictCost)
			victim := dn.cache[0]
			dn.cache = dn.cache[1:]
			delete(dn.cacheSet, victim)
		}
		dn.diskMu.Unlock(p)
	}
}

// recoveryWorker executes block recovery commands: it validates the local
// replica, truncates/finalizes it, and reports back. Recoveries that miss
// their deadline fail and are re-enqueued by the NameNode without bound
// (Table 3 HDFS2-3).
func (dn *dataNode) recoveryWorker(p *sim.Proc) {
	defer p.Enter("recoveryWorker")()
	rt := dn.c.rt
	cfg := dn.c.cfg
	for {
		m, ok := p.Recv(dn.recoverQ, -1)
		if !ok {
			return
		}
		cmd := m.(command)
		rt.Loop(p, PtDNRecoveryLoop)
		rt.Branch(p, "dfs.recovery.replica_present", dn.blocks[cmd.block])
		valid := rt.Negate(p, PtDNReplicaValid, dn.finalized[cmd.block], false)
		if !valid {
			// Partial replica: salvage requires a full rewrite pass.
			dn.diskOp(p, recoveryExecCost, 0)
		} else {
			dn.diskOp(p, recoveryFastCost, 0)
		}
		// A failed attempt leaves a dangling recovery lease; while it is
		// held every new attempt on the block fails fast AND extends the
		// lease. One deadline miss therefore breeds an indefinite
		// miss-retry-miss loop (Table 3 HDFS2-3).
		leased := p.Now() < dn.recoveryLease[cmd.block]
		if rt.Guard(p, PtDNRecoveryIOE, leased || p.Now() > cmd.deadline) {
			dn.recoveryLease[cmd.block] = p.Now() + recoveryLeaseHold
			p.Call(dn.c.nn.rpc, recoveryDoneMsg{block: cmd.block, dn: dn.node, ok: false}, cfg.RPCTimeout)
			continue
		}
		delete(dn.recoveryLease, cmd.block)
		dn.finalized[cmd.block] = true
		dn.queueIBR(ibrEntry{block: cmd.block, kind: "received"})
		p.Call(dn.c.nn.rpc, recoveryDoneMsg{block: cmd.block, dn: dn.node, ok: true}, cfg.RPCTimeout)
	}
}

// reconstructionWorker (V3) rebuilds missing replicas by reading chunks
// from the surviving holders -- expensive work whose duplication under
// re-dispatch is the HDFS3-2 feedback loop.
func (dn *dataNode) reconstructionWorker(p *sim.Proc) {
	defer p.Enter("reconstructionWorker")()
	rt := dn.c.rt
	cfg := dn.c.cfg
	for {
		m, ok := p.Recv(dn.reconQ, -1)
		if !ok {
			return
		}
		block := m.(int)
		rt.Loop(p, PtDNReconstructLoop)
		start := p.Now()
		// Read source chunks from up to two peers.
		sources := 0
		var readErr error
		for _, peer := range dn.c.dns {
			if peer == dn || !peer.blocks[block] {
				continue
			}
			if sources >= 2 {
				break
			}
			if _, err := p.Call(peer.xfer, readBlockMsg{block: block}, readTimeout); err != nil {
				readErr = err
			}
			sources++
		}
		tooSlow := p.Now()-start > reconstructWait
		if rt.Guard(p, PtDNReconReadIOE, readErr != nil || tooSlow) {
			// Failed reconstruction: report failure; the block remains
			// pending and will be re-dispatched.
			p.Call(dn.c.nn.rpc, reconDoneMsg{block: block, dn: dn.node, ok: false}, cfg.RPCTimeout)
			continue
		}
		dn.diskOp(p, reconstructCost, 0)
		dn.blocks[block] = true
		dn.finalizeBlock(p, block)
		p.Call(dn.c.nn.rpc, reconDoneMsg{block: block, dn: dn.node, ok: true}, cfg.RPCTimeout)
	}
}
