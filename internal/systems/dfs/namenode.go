package dfs

import (
	"sort"
	"time"

	"repro/internal/sim"
)

// --- RPC message types ---

type hbMsg struct{ dn string }

type hbReply struct{ cmds []command }

type ibrEntry struct {
	block int
	kind  string // "received" or "deleted"
}

type ibrMsg struct {
	dn      string
	entries []ibrEntry
}

type fbrMsg struct {
	dn     string
	blocks int
}

type addBlockMsg struct {
	file    string
	exclude map[string]bool
}

type addBlockReply struct {
	block   int
	targets []string
}

type commitMsg struct{ block int }

type abandonMsg struct {
	block    int
	file     string
	failedDN string
}

type recoveryDoneMsg struct {
	block int
	dn    string
	ok    bool
}

type deleteFileMsg struct{ file string }

type reconDoneMsg struct {
	block int
	dn    string
	ok    bool
}

// command is a NameNode instruction piggybacked on a heartbeat reply.
type command struct {
	kind     string // "replicate", "delete", "recover", "reconstruct"
	block    int
	target   string
	deadline time.Duration
}

// nnEvent is an entry of the V3 async event queue.
type nnEvent struct {
	kind  string // "underReplicated"
	block int
}

type dnInfo struct {
	name   string
	lastHB time.Duration
	stale  bool
	dead   bool
	cmds   []command
	blocks map[int]bool
}

type blockInfo struct {
	id        int
	file      string
	replicas  map[string]bool // DNs holding (possibly partial) replicas
	reported  map[string]bool // DNs that reported the replica via IBR
	committed bool
	partial   bool // left by an abandoned pipeline
}

// recoveryTask is a lease/block recovery work item; failed recoveries are
// re-enqueued without bound -- one of the seeded feedback loops.
type recoveryTask struct {
	block     int
	notBefore time.Duration
}

type nameNode struct {
	c    *Cluster
	node string
	rpc  *sim.Mailbox // data RPCs, served by the handler pool
	svc  *sim.Mailbox // heartbeat service, served separately
	mu   *sim.Mutex   // the namesystem lock

	dns       map[string]*dnInfo
	dnNames   []string
	blocks    map[int]*blockInfo
	nextBlock int

	editQ     int // pending edit-log entries
	recoveryQ []recoveryTask
	underRepl []int

	// V3: async event queue and reconstruction re-dispatch tracking.
	events       []nnEvent
	eventSignal  *sim.Mailbox
	pendingRecon map[int]time.Duration
}

func newNameNode(c *Cluster) *nameNode {
	nn := &nameNode{
		c:            c,
		node:         "nn",
		dns:          make(map[string]*dnInfo),
		blocks:       make(map[int]*blockInfo),
		pendingRecon: make(map[int]time.Duration),
	}
	nn.rpc = c.eng.NewMailbox(nn.node, "rpc")
	nn.svc = c.eng.NewMailbox(nn.node, "svc")
	nn.mu = sim.NewMutex(c.eng, nn.node)
	nn.eventSignal = c.eng.NewMailbox(nn.node, "events")
	return nn
}

func (nn *nameNode) start() {
	for i := 0; i < nn.c.cfg.NNHandlers; i++ {
		nn.c.eng.Spawn(nn.node, "handler", nn.handlerLoop)
	}
	nn.c.eng.Spawn(nn.node, "service", nn.serviceLoop)
	nn.c.eng.Spawn(nn.node, "staleMonitor", nn.staleMonitor)
	nn.c.eng.Spawn(nn.node, "replMonitor", nn.replicationMonitor)
	nn.c.eng.Spawn(nn.node, "editFlusher", nn.editFlusher)
	if nn.c.cfg.LeaseRecovery {
		nn.c.eng.Spawn(nn.node, "recoveryScanner", nn.recoveryScanner)
	}
	if nn.c.cfg.V3 {
		nn.c.eng.Spawn(nn.node, "eventDispatcher", nn.eventDispatcher)
	}
}

func (nn *nameNode) registerDN(name string, preload []int) {
	info := &dnInfo{name: name, blocks: make(map[int]bool)}
	for _, b := range preload {
		info.blocks[b] = true
	}
	nn.dns[name] = info
	nn.dnNames = append(nn.dnNames, name)
	sort.Strings(nn.dnNames)
}

// preloadBlock registers a pre-existing committed block.
func (nn *nameNode) preloadBlock(id int, holders []string) {
	b := &blockInfo{id: id, file: "preload", replicas: map[string]bool{}, reported: map[string]bool{}, committed: true}
	for _, h := range holders {
		b.replicas[h] = true
		b.reported[h] = true
	}
	nn.blocks[id] = b
	if id >= nn.nextBlock {
		nn.nextBlock = id + 1
	}
}

func (nn *nameNode) logEdit() { nn.editQ++ }

// --- heartbeat service (dedicated, lock-free like HDFS's service RPC) ---

func (nn *nameNode) serviceLoop(p *sim.Proc) {
	defer p.Enter("heartbeatService")()
	rt := nn.c.rt
	for {
		m, ok := p.Recv(nn.svc, -1)
		if !ok {
			return
		}
		req := m.(sim.Req)
		hb := req.Body.(hbMsg)
		p.Work(time.Millisecond)
		info := nn.dns[hb.dn]
		if info == nil {
			p.Reply(req, hbReply{}, nil)
			continue
		}
		info.lastHB = p.Now()
		cmds := info.cmds
		info.cmds = nil
		_ = rt
		p.Reply(req, hbReply{cmds: cmds}, nil)
	}
}

// --- data RPC handler pool ---

func (nn *nameNode) handlerLoop(p *sim.Proc) {
	for {
		m, ok := p.Recv(nn.rpc, -1)
		if !ok {
			return
		}
		req := m.(sim.Req)
		switch body := req.Body.(type) {
		case ibrMsg:
			nn.handleIBR(p, req, body)
		case fbrMsg:
			nn.handleFBR(p, req, body)
		case addBlockMsg:
			nn.handleAddBlock(p, req, body)
		case commitMsg:
			nn.handleCommit(p, req, body)
		case abandonMsg:
			nn.handleAbandon(p, req, body)
		case recoveryDoneMsg:
			nn.handleRecoveryDone(p, req, body)
		case deleteFileMsg:
			nn.handleDeleteFile(p, req, body)
		case reconDoneMsg:
			nn.handleReconDone(p, req, body)
		default:
			p.Reply(req, nil, nil)
		}
	}
}

func (nn *nameNode) handleIBR(p *sim.Proc, req sim.Req, msg ibrMsg) {
	defer p.Enter("processIBR")()
	rt := nn.c.rt
	nn.mu.Lock(p)
	for _, e := range msg.entries {
		rt.Loop(p, PtNNIBRProcessLoop)
		p.Work(ibrEntryCost)
		b := nn.blocks[e.block]
		if b == nil {
			continue
		}
		switch e.kind {
		case "received":
			b.reported[msg.dn] = true
			b.replicas[msg.dn] = true
			if info := nn.dns[msg.dn]; info != nil {
				info.blocks[e.block] = true
			}
		case "deleted":
			delete(b.reported, msg.dn)
			delete(b.replicas, msg.dn)
			if info := nn.dns[msg.dn]; info != nil {
				delete(info.blocks, e.block)
			}
		}
		nn.logEdit()
	}
	nn.mu.Unlock(p)
	p.Reply(req, nil, nil)
}

func (nn *nameNode) handleFBR(p *sim.Proc, req sim.Req, msg fbrMsg) {
	defer p.Enter("processFBR")()
	rt := nn.c.rt
	nn.mu.Lock(p)
	for i := 0; i < msg.blocks; i++ {
		rt.Loop(p, PtNNFBRProcessLoop)
		p.Work(fbrEntryCost)
	}
	nn.mu.Unlock(p)
	p.Reply(req, nil, nil)
}

func (nn *nameNode) handleAddBlock(p *sim.Proc, req sim.Req, msg addBlockMsg) {
	defer p.Enter("addBlock")()
	rt := nn.c.rt
	nn.mu.Lock(p)
	p.Work(2 * time.Millisecond)
	var candidates []string
	var fallback []string
	for _, name := range nn.dnNames {
		info := nn.dns[name]
		if info.dead || msg.exclude[name] {
			continue
		}
		fallback = append(fallback, name)
		if !info.stale {
			candidates = append(candidates, name)
		}
	}
	// canPlacePipeline: enough non-stale nodes for a full pipeline.
	ok := rt.Negate(p, PtNNCanAllocate, len(candidates) >= nn.c.cfg.Replication, false)
	if !ok && len(fallback) >= nn.c.cfg.Replication {
		// Degraded placement: accept stale nodes rather than fail the
		// client outright (best-effort, like HDFS's stale-avoidance).
		candidates = fallback
		ok = true
	}
	if rt.Guard(p, PtNNAddBlockIOE, !ok) {
		nn.mu.Unlock(p)
		p.Reply(req, nil, &pipelineError{"no viable pipeline targets"})
		return
	}
	// Prefer emptier DNs for balance; stable tie-break by name.
	sort.SliceStable(candidates, func(i, j int) bool {
		return len(nn.dns[candidates[i]].blocks) < len(nn.dns[candidates[j]].blocks)
	})
	n := nn.c.cfg.Replication
	if n > len(candidates) {
		n = len(candidates)
	}
	targets := append([]string(nil), candidates[:n]...)
	id := nn.nextBlock
	nn.nextBlock++
	b := &blockInfo{id: id, file: msg.file, replicas: map[string]bool{}, reported: map[string]bool{}}
	for _, t := range targets {
		b.replicas[t] = true
	}
	nn.blocks[id] = b
	nn.logEdit()
	nn.mu.Unlock(p)
	p.Reply(req, addBlockReply{block: id, targets: targets}, nil)
}

func (nn *nameNode) handleCommit(p *sim.Proc, req sim.Req, msg commitMsg) {
	defer p.Enter("commitBlock")()
	nn.mu.Lock(p)
	p.Work(time.Millisecond)
	b := nn.blocks[msg.block]
	ready := b != nil
	if ready && !b.committed {
		b.committed = true
		nn.logEdit()
	}
	nn.mu.Unlock(p)
	p.Reply(req, ready, nil)
}

func (nn *nameNode) handleAbandon(p *sim.Proc, req sim.Req, msg abandonMsg) {
	defer p.Enter("abandonBlock")()
	nn.mu.Lock(p)
	p.Work(time.Millisecond)
	if b := nn.blocks[msg.block]; b != nil && !b.committed {
		b.partial = true
		if nn.c.cfg.LeaseRecovery {
			// Recovery owns the partial replicas; they are salvaged, not
			// deleted.
			nn.recoveryQ = append(nn.recoveryQ, recoveryTask{block: b.id})
		} else {
			// No recovery: partial replicas are queued for deletion.
			for _, name := range nn.dnNames {
				if b.replicas[name] {
					nn.dns[name].cmds = append(nn.dns[name].cmds, command{kind: "delete", block: b.id})
				}
			}
		}
		nn.logEdit()
	}
	nn.mu.Unlock(p)
	p.Reply(req, nil, nil)
}

func (nn *nameNode) handleRecoveryDone(p *sim.Proc, req sim.Req, msg recoveryDoneMsg) {
	defer p.Enter("recoveryDone")()
	nn.mu.Lock(p)
	p.Work(time.Millisecond)
	if b := nn.blocks[msg.block]; b != nil {
		if msg.ok {
			b.committed = true
			b.partial = false
		} else {
			// Unbounded re-enqueue: the block-recovery retry feedback loop
			// (Table 3, HDFS2-3).
			nn.recoveryQ = append(nn.recoveryQ, recoveryTask{block: msg.block, notBefore: p.Now() + recoveryScanGap})
		}
		nn.logEdit()
	}
	nn.mu.Unlock(p)
	p.Reply(req, nil, nil)
}

func (nn *nameNode) handleDeleteFile(p *sim.Proc, req sim.Req, msg deleteFileMsg) {
	defer p.Enter("deleteFile")()
	nn.mu.Lock(p)
	p.Work(time.Millisecond)
	ids := make([]int, 0, 4)
	for id, b := range nn.blocks {
		if b.file == msg.file {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		b := nn.blocks[id]
		for _, name := range nn.dnNames {
			if b.replicas[name] {
				nn.dns[name].cmds = append(nn.dns[name].cmds, command{kind: "delete", block: id})
			}
		}
		delete(nn.blocks, id)
		nn.logEdit()
	}
	nn.mu.Unlock(p)
	p.Reply(req, nil, nil)
}

func (nn *nameNode) handleReconDone(p *sim.Proc, req sim.Req, msg reconDoneMsg) {
	defer p.Enter("reconstructionDone")()
	nn.mu.Lock(p)
	p.Work(time.Millisecond)
	if msg.ok {
		delete(nn.pendingRecon, msg.block)
		if b := nn.blocks[msg.block]; b != nil {
			b.replicas[msg.dn] = true
			b.reported[msg.dn] = true
		}
	}
	// Failed reconstructions stay pending; the replication monitor
	// re-dispatches them after reconstructWait (duplicate-work feedback).
	nn.mu.Unlock(p)
	p.Reply(req, nil, nil)
}

// --- monitors ---

// staleMonitor periodically classifies DataNodes via the is-stale/is-dead
// error detectors. Stale nodes' blocks are queued for redistribution
// (mirroring stale-avoidance placement plus the AWS incident's
// redistribution behaviour); dead nodes' replicas are dropped.
func (nn *nameNode) staleMonitor(p *sim.Proc) {
	defer p.Enter("staleMonitor")()
	rt := nn.c.rt
	cfg := nn.c.cfg
	for {
		p.Sleep(time.Second + time.Duration(p.Rand().Intn(40))*time.Millisecond)
		for _, name := range nn.dnNames {
			info := nn.dns[name]
			sinceHB := p.Now() - info.lastHB
			stale := rt.Negate(p, PtNNIsStale, sinceHB > cfg.StaleAfter, true)
			dead := rt.Negate(p, PtNNIsDead, sinceHB > cfg.DeadAfter, true)
			if stale && !info.stale {
				nn.enqueueRedistribution(p, name)
			}
			info.stale = stale
			if dead && !info.dead {
				info.dead = true
				nn.dropReplicasOf(p, name)
			} else if !dead {
				info.dead = false
			}
		}
	}
}

// enqueueRedistribution queues all of a newly-stale DN's blocks for
// re-replication.
func (nn *nameNode) enqueueRedistribution(p *sim.Proc, name string) {
	nn.mu.Lock(p)
	info := nn.dns[name]
	ids := make([]int, 0, len(info.blocks))
	for id := range info.blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	nn.underRepl = append(nn.underRepl, ids...)
	nn.mu.Unlock(p)
}

func (nn *nameNode) dropReplicasOf(p *sim.Proc, name string) {
	nn.mu.Lock(p)
	info := nn.dns[name]
	ids := make([]int, 0, len(info.blocks))
	for id := range info.blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if b := nn.blocks[id]; b != nil {
			delete(b.replicas, name)
			delete(b.reported, name)
			nn.underRepl = append(nn.underRepl, id)
		}
	}
	nn.mu.Unlock(p)
}

// replicationMonitor scans the under-replication queue and issues
// replicate commands (V2) or posts reconstruction events (V3).
func (nn *nameNode) replicationMonitor(p *sim.Proc) {
	defer p.Enter("replicationMonitor")()
	rt := nn.c.rt
	for {
		p.Sleep(replScanGap + time.Duration(p.Rand().Intn(30))*time.Millisecond)
		nn.mu.Lock(p)
		queue := nn.underRepl
		nn.underRepl = nil
		nn.mu.Unlock(p)
		for _, id := range queue {
			rt.Loop(p, PtNNReplMonitorLoop)
			nn.mu.Lock(p)
			p.Work(2 * time.Millisecond)
			nn.scheduleReplication(p, id)
			nn.mu.Unlock(p)
		}
		// V3: re-dispatch reconstructions that stayed pending too long
		// (duplicate-dispatch feedback, Table 3 HDFS3-2).
		if nn.c.cfg.V3 {
			nn.redispatchStaleRecon(p)
		}
	}
}

// scheduleReplication decides what to do with one possibly-under- or
// over-replicated block. Caller holds the namesystem lock.
func (nn *nameNode) scheduleReplication(p *sim.Proc, id int) {
	b := nn.blocks[id]
	if b == nil || b.partial {
		return
	}
	live := 0
	for name := range b.replicas {
		if info := nn.dns[name]; info != nil && !info.dead {
			live++
		}
	}
	want := nn.c.cfg.Replication
	switch {
	case live < want:
		if nn.c.cfg.V3 {
			nn.postEvent(p, nnEvent{kind: "underReplicated", block: id})
			return
		}
		src, dst := nn.pickCopyPair(b)
		if src == "" || dst == "" {
			return
		}
		nn.dns[src].cmds = append(nn.dns[src].cmds, command{kind: "replicate", block: id, target: dst})
	case live > want:
		// Excess replica: delete from a stale holder first.
		victim := ""
		for _, name := range nn.dnNames {
			if b.replicas[name] && !nn.dns[name].dead {
				if victim == "" || nn.dns[name].stale {
					victim = name
				}
			}
		}
		if victim != "" {
			nn.dns[victim].cmds = append(nn.dns[victim].cmds, command{kind: "delete", block: id})
			delete(b.replicas, victim)
			delete(b.reported, victim)
			delete(nn.dns[victim].blocks, id)
		}
	}
}

// pickCopyPair chooses a live source replica and a live non-holder target
// with the fewest blocks (best-effort: stale nodes allowed when nothing
// else is available).
func (nn *nameNode) pickCopyPair(b *blockInfo) (src, dst string) {
	for _, name := range nn.dnNames {
		if b.replicas[name] && !nn.dns[name].dead {
			src = name
			break
		}
	}
	best := -1
	var bestStale string
	bestStaleN := -1
	for _, name := range nn.dnNames {
		info := nn.dns[name]
		if b.replicas[name] || info.dead {
			continue
		}
		if !info.stale && (best == -1 || len(info.blocks) < best) {
			best = len(info.blocks)
			dst = name
		}
		if info.stale && (bestStaleN == -1 || len(info.blocks) < bestStaleN) {
			bestStaleN = len(info.blocks)
			bestStale = name
		}
	}
	if dst == "" {
		dst = bestStale
	}
	return src, dst
}

// recoveryScanner drives lease/block recovery: each scan issues recover
// commands for due tasks, doing per-task bookkeeping under the namesystem
// lock -- the delayed task of Table 3 HDFS2-1.
func (nn *nameNode) recoveryScanner(p *sim.Proc) {
	defer p.Enter("recoveryScan")()
	rt := nn.c.rt
	for {
		p.Sleep(recoveryScanGap + time.Duration(p.Rand().Intn(30))*time.Millisecond)
		// The whole due batch is processed under the namesystem lock,
		// like FSNamesystem's lease release path: a slow scan therefore
		// stalls commits and report processing -- the HDFS2-1 mechanism.
		nn.mu.Lock(p)
		due := nn.recoveryQ
		nn.recoveryQ = nil
		var later []recoveryTask
		for _, task := range due {
			if task.notBefore > p.Now() {
				later = append(later, task)
				continue
			}
			rt.Loop(p, PtNNRecoveryScan)
			p.Work(recoveryTaskCost)
			if b := nn.blocks[task.block]; b != nil && !b.committed {
				primary := ""
				for _, name := range nn.dnNames {
					if b.replicas[name] && !nn.dns[name].dead {
						primary = name
						break
					}
				}
				if primary != "" {
					nn.dns[primary].cmds = append(nn.dns[primary].cmds,
						command{kind: "recover", block: task.block, deadline: p.Now() + recoveryDeadline})
				} else {
					later = append(later, recoveryTask{block: task.block, notBefore: p.Now() + recoveryScanGap})
				}
			}
		}
		nn.recoveryQ = append(nn.recoveryQ, later...)
		nn.mu.Unlock(p)
	}
}

// editFlusher batches pending edits to stable storage under the namesystem
// lock -- the delayed task of Table 3 HDFS2-2.
func (nn *nameNode) editFlusher(p *sim.Proc) {
	defer p.Enter("flushEditLog")()
	rt := nn.c.rt
	for {
		p.Sleep(editFlushPeriod + time.Duration(p.Rand().Intn(20))*time.Millisecond)
		if nn.editQ == 0 {
			continue
		}
		nn.mu.Lock(p)
		batch := nn.editQ
		flushed := 0
		failed := false
		for i := 0; i < batch; i++ {
			rt.Loop(p, PtNNEditFlushLoop)
			if rt.Guard(p, PtNNEditSyncIOE, false) {
				// Sync failure: keep the remaining edits for the next
				// flush round (they will be re-flushed).
				failed = true
				break
			}
			p.Work(editFlushCost)
			flushed++
		}
		nn.editQ -= flushed
		_ = failed
		nn.mu.Unlock(p)
	}
}

// --- V3 async event queue ---

// postEvent appends to the bounded event queue; overflow raises the
// dispatch failure exception (Table 3 OZone-1's analogue lives in
// objstore; here the queue feeds reconstruction).
func (nn *nameNode) postEvent(p *sim.Proc, ev nnEvent) {
	if len(nn.events) < eventQueueCap {
		nn.events = append(nn.events, ev)
	}
	p.Send(nn.eventSignal, struct{}{})
}

func (nn *nameNode) eventDispatcher(p *sim.Proc) {
	defer p.Enter("eventDispatcher")()
	rt := nn.c.rt
	for {
		if _, ok := p.Recv(nn.eventSignal, -1); !ok {
			return
		}
		for len(nn.events) > 0 {
			rt.Loop(p, PtNNEventLoop)
			ev := nn.events[0]
			nn.events = nn.events[1:]
			p.Work(2 * time.Millisecond)
			if rt.Guard(p, PtNNEventDropIOE, len(nn.events) >= eventQueueCap-1) {
				continue // event dropped under pressure
			}
			if ev.kind == "underReplicated" {
				nn.dispatchReconstruction(p, ev.block)
			}
		}
	}
}

// dispatchReconstruction sends a reconstruct command for the block to the
// emptiest live non-holder.
func (nn *nameNode) dispatchReconstruction(p *sim.Proc, id int) {
	nn.mu.Lock(p)
	defer nn.mu.Unlock(p)
	b := nn.blocks[id]
	if b == nil {
		return
	}
	if _, already := nn.pendingRecon[id]; already {
		// A reconstruction is in flight; the re-dispatch path goes
		// through redispatchStaleRecon.
		return
	}
	_, dst := nn.pickCopyPair(b)
	if dst == "" {
		return
	}
	nn.dns[dst].cmds = append(nn.dns[dst].cmds, command{kind: "reconstruct", block: id})
	nn.pendingRecon[id] = p.Now()
}

// redispatchStaleRecon re-issues reconstructions pending longer than
// reconstructWait. Because the original command may still be queued on a
// busy worker, this duplicates work -- the HDFS3-2 feedback loop.
func (nn *nameNode) redispatchStaleRecon(p *sim.Proc) {
	nn.mu.Lock(p)
	ids := make([]int, 0, len(nn.pendingRecon))
	for id, at := range nn.pendingRecon {
		if p.Now()-at > reconstructWait {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		delete(nn.pendingRecon, id)
	}
	nn.mu.Unlock(p)
	for _, id := range ids {
		nn.mu.Lock(p)
		b := nn.blocks[id]
		var dst string
		if b != nil {
			_, dst = nn.pickCopyPair(b)
			if dst != "" {
				nn.dns[dst].cmds = append(nn.dns[dst].cmds, command{kind: "reconstruct", block: id})
				nn.pendingRecon[id] = p.Now()
			}
		}
		nn.mu.Unlock(p)
	}
}

// pipelineError is the dfs error type for failed allocations.
type pipelineError struct{ msg string }

func (e *pipelineError) Error() string { return "dfs: " + e.msg }
