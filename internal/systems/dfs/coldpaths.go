package dfs

import (
	"sort"

	"repro/internal/sim"
)

// This file holds the instrumented code paths that exist in the real
// systems but are filtered out of the fault space by the static rules of
// §4.1/§7 (security/reflection exceptions, test-only throws, constant-
// bound loops, config-only / constant-return / primitive-only boolean
// functions). They are deliberately present in the source so the static
// analyzer's inventory -- and hence Table 2's pre-filter counts -- are
// derived from real hook sites rather than hand-written numbers.

// authenticate models a security check whose exception is filtered
// (security-related exceptions tend to terminate rather than propagate).
func (c *Cluster) authenticate(p *sim.Proc, token string) error {
	defer c.rt.Fn(p, "authenticate")()
	return c.rt.Err(p, PtSecAuthExc, token == "", "authentication failed")
}

// loadProto models a reflection-driven codec lookup (filtered).
func (c *Cluster) loadProto(p *sim.Proc, name string) error {
	defer c.rt.Fn(p, "loadProto")()
	return c.rt.Err(p, PtReflProtoExc, name == "", "proto class not found")
}

// testSetup models an exception reachable only from the test harness
// (filtered: CSnake ignores exceptions only reachable from tests).
func (c *Cluster) testSetup(p *sim.Proc) error {
	defer c.rt.Fn(p, "testSetup")()
	return c.rt.Err(p, PtTestHarnessExc, false, "test fixture failure")
}

// verifyChecksum iterates a constant-bound loop (filtered from contention
// injection by the loop scalability analysis).
func (dn *dataNode) verifyChecksum(p *sim.Proc, block int) uint32 {
	defer dn.c.rt.Fn(p, "verifyChecksum")()
	var sum uint32
	for i := 0; i < 4; i++ { // fixed 4 checksum words per chunk
		dn.c.rt.Loop(p, PtDNChecksumLoop)
		sum = sum*31 + uint32(block+i)
	}
	return sum
}

// initNameNode runs a constant-bound startup loop (filtered).
func (nn *nameNode) initNameNode(p *sim.Proc) {
	defer nn.c.rt.Fn(p, "initNameNode")()
	for i := 0; i < 3; i++ {
		nn.c.rt.Loop(p, PtNNStartupLoop)
	}
}

// isSorted is a primitive-only utility detector (filtered: negating it
// causes an incorrect calculation, not a system error).
func (c *Cluster) isSorted(p *sim.Proc, xs []int) bool {
	defer c.rt.Fn(p, "isSorted")()
	return c.rt.Negate(p, PtUtilIsSorted, sort.IntsAreSorted(xs), false)
}

// haEnabled depends only on configuration (filtered: configuration errors
// are out of scope).
func (c *Cluster) haEnabled(p *sim.Proc) bool {
	defer c.rt.Fn(p, "haEnabled")()
	return c.rt.Negate(p, PtConfHAEnabled, false, false)
}

// debugEnabled returns a constant (filtered: negation has no effect).
func (nn *nameNode) debugEnabled(p *sim.Proc) bool {
	defer nn.c.rt.Fn(p, "debugEnabled")()
	return nn.c.rt.Negate(p, PtNNDebugEnabled, false, false)
}
