package dfs

import (
	"time"

	"repro/internal/faults"
	"repro/internal/systems/sysreg"
)

// sysImpl implements sysreg.System for both HDFS variants.
type sysImpl struct {
	name string
	v3   bool
}

// NewV2 returns the HDFS 2 target system.
func NewV2() sysreg.System { return &sysImpl{name: "HDFS 2", v3: false} }

// NewV3 returns the HDFS 3 target system (async events + reconstruction).
func NewV3() sysreg.System { return &sysImpl{name: "HDFS 3", v3: true} }

func init() {
	sysreg.Register("HDFS 2", NewV2, "hdfs2")
	sysreg.Register("HDFS 3", NewV3, "hdfs3")
}

func (s *sysImpl) Name() string             { return s.name }
func (s *sysImpl) Points() []faults.Point   { return points(s.v3) }
func (s *sysImpl) Nests() []faults.LoopNest { return nests() }
func (s *sysImpl) SourceDirs() []string     { return []string{"internal/systems/dfs"} }

func (s *sysImpl) Workloads() []sysreg.Workload {
	if s.v3 {
		return workloadsV3()
	}
	return workloadsV2()
}

func (s *sysImpl) Bugs() []sysreg.Bug {
	if s.v3 {
		return bugsV3()
	}
	return bugsV2()
}

// wl builds a workload that runs a cluster scenario.
func wl(name, desc string, horizon time.Duration, cfg Config, scenario func(c *Cluster)) sysreg.Workload {
	return sysreg.Workload{
		Name:    name,
		Desc:    desc,
		Horizon: horizon,
		Run: func(ctx *sysreg.RunContext) {
			c := NewCluster(ctx, cfg)
			c.Preload()
			scenario(c)
		},
	}
}

func workloadsV2() []sysreg.Workload {
	return []sysreg.Workload{
		wl("basic_write", "three writers on a 3-DN cluster", 30*time.Second,
			Config{ClientRetries: 1},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 3, Blocks: 2})
				c.SpawnWriter(WriterOpts{Name: "w2", Files: 3, Blocks: 2, Start: 500 * time.Millisecond})
			}),
		wl("write_retry", "writers with pipeline retries enabled", 40*time.Second,
			Config{ClientRetries: 2, LeaseRecovery: true},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 4, Blocks: 2})
				c.SpawnWriter(WriterOpts{Name: "w2", Files: 4, Blocks: 2, Start: time.Second})
			}),
		wl("write_heavy", "six concurrent writers saturating the pipelines", 45*time.Second,
			Config{DataNodes: 4, ClientRetries: 1},
			func(c *Cluster) {
				for i := 0; i < 6; i++ {
					c.SpawnWriter(WriterOpts{Name: wname(i), Files: 3, Blocks: 3,
						Gap: 150 * time.Millisecond, Start: time.Duration(i) * 200 * time.Millisecond})
				}
			}),
		wl("ibr_interval", "IBR throttling configured, small namespace", 60*time.Second,
			Config{IBRInterval: 15 * time.Second, PreloadBlocks: 8, ClientRetries: 1},
			func(c *Cluster) {
				// All eight blocks land inside the first throttle window,
				// so one failed report retried at the next heartbeat
				// visibly inflates the report-processing counts (§8.3.2).
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 4, Blocks: 1, Gap: 3 * time.Second})
			}),
		wl("ibr_storm", "5000-block namespace with heavy report churn", 45*time.Second,
			Config{PreloadBlocks: 1700, ClientRetries: 1},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 6, Blocks: 3, Gap: 120 * time.Millisecond, Delete: true})
				c.SpawnWriter(WriterOpts{Name: "w2", Files: 6, Blocks: 3, Gap: 140 * time.Millisecond, Delete: true, Start: 300 * time.Millisecond})
			}),
		wl("lease_storm", "aborted writers queueing lease recovery", 45*time.Second,
			Config{LeaseRecovery: true, ClientRetries: 1},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "aborter1", Files: 5, Blocks: 2, AbortMidWrite: true, Gap: 400 * time.Millisecond})
				c.SpawnWriter(WriterOpts{Name: "aborter2", Files: 5, Blocks: 2, AbortMidWrite: true, Gap: 500 * time.Millisecond, Start: 700 * time.Millisecond})
				c.SpawnWriter(WriterOpts{Name: "steady", Files: 5, Blocks: 2})
			}),
		wl("pipeline_recovery", "writers with retries plus lease recovery", 45*time.Second,
			Config{LeaseRecovery: true, ClientRetries: 2},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 5, Blocks: 2, Gap: 250 * time.Millisecond})
				c.SpawnWriter(WriterOpts{Name: "w2", Files: 4, Blocks: 2, Start: time.Second})
			}),
		wl("cache_churn", "tiny block cache forcing eviction batches", 45*time.Second,
			Config{CacheCapacity: 3, ClientRetries: 2},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 6, Blocks: 3, Gap: 150 * time.Millisecond})
				c.SpawnWriter(WriterOpts{Name: "w2", Files: 6, Blocks: 3, Gap: 180 * time.Millisecond, Start: 400 * time.Millisecond})
			}),
		wl("delete_churn", "write-then-delete churn stressing deletion batches", 45*time.Second,
			Config{ClientRetries: 2},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 8, Blocks: 2, Delete: true, Gap: 150 * time.Millisecond})
				c.SpawnWriter(WriterOpts{Name: "w2", Files: 8, Blocks: 2, Delete: true, Gap: 170 * time.Millisecond, Start: 300 * time.Millisecond})
			}),
		wl("read_write_mix", "readers and writers sharing the disks", 40*time.Second,
			Config{PreloadBlocks: 40, ClientRetries: 1},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 5, Blocks: 2})
				c.SpawnReader(ReaderOpts{Name: "r1", Ops: 60})
				c.SpawnReader(ReaderOpts{Name: "r2", Ops: 60, Start: 300 * time.Millisecond})
			}),
		wl("meta_churn", "metadata-heavy load keeping the edit log busy", 40*time.Second,
			Config{ClientRetries: 1},
			func(c *Cluster) {
				for i := 0; i < 4; i++ {
					c.SpawnWriter(WriterOpts{Name: wname(i), Files: 6, Blocks: 2,
						Delete: true, Gap: 100 * time.Millisecond, Start: time.Duration(i) * 150 * time.Millisecond})
				}
			}),
		wl("stale_watch", "tight staleness threshold under load", 45*time.Second,
			Config{StaleAfter: 8 * time.Second, ClientRetries: 1, PreloadBlocks: 10},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 5, Blocks: 2})
				c.SpawnReader(ReaderOpts{Name: "r1", Ops: 50})
			}),
		wl("recovery_deadline", "recovery tasks concentrating on one worker", 55*time.Second,
			Config{LeaseRecovery: true, ClientRetries: 1},
			func(c *Cluster) {
				// Aborted blocks all recover on dn0 (the name-ordered
				// primary), so a moderately delayed worker tips into the
				// metastable miss-retry-miss regime.
				c.SpawnWriter(WriterOpts{Name: "aborter1", Files: 6, Blocks: 2, AbortMidWrite: true, Gap: 200 * time.Millisecond})
				c.SpawnWriter(WriterOpts{Name: "aborter2", Files: 6, Blocks: 2, AbortMidWrite: true, Gap: 250 * time.Millisecond, Start: 300 * time.Millisecond})
			}),
		wl("quiet_baseline", "near-idle cluster (coverage floor)", 25*time.Second,
			Config{PreloadBlocks: 4, ClientRetries: 1},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 1, Blocks: 1})
				c.SpawnReader(ReaderOpts{Name: "r1", Ops: 10})
			}),
	}
}

func workloadsV3() []sysreg.Workload {
	base := []sysreg.Workload{
		wl("basic_write", "three writers on a 3-DN cluster", 30*time.Second,
			Config{V3: true, ClientRetries: 1},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 3, Blocks: 2})
				c.SpawnWriter(WriterOpts{Name: "w2", Files: 3, Blocks: 2, Start: 500 * time.Millisecond})
			}),
		wl("ibr_interval", "IBR throttling configured, small namespace", 60*time.Second,
			Config{V3: true, IBRInterval: 15 * time.Second, PreloadBlocks: 8, ClientRetries: 1},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 4, Blocks: 1, Gap: 3 * time.Second})
			}),
		wl("ibr_storm", "large namespace with heavy report churn", 45*time.Second,
			Config{V3: true, PreloadBlocks: 1700, ClientRetries: 1},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 6, Blocks: 3, Gap: 120 * time.Millisecond, Delete: true})
				c.SpawnWriter(WriterOpts{Name: "w2", Files: 6, Blocks: 3, Gap: 140 * time.Millisecond, Delete: true, Start: 300 * time.Millisecond})
			}),
		wl("recovery_deadline", "recovery tasks concentrating on one worker", 55*time.Second,
			Config{V3: true, LeaseRecovery: true, ClientRetries: 1},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "aborter1", Files: 6, Blocks: 2, AbortMidWrite: true, Gap: 200 * time.Millisecond})
				c.SpawnWriter(WriterOpts{Name: "aborter2", Files: 6, Blocks: 2, AbortMidWrite: true, Gap: 250 * time.Millisecond, Start: 300 * time.Millisecond})
			}),
		wl("delete_churn", "write-then-delete churn stressing deletion batches", 45*time.Second,
			Config{V3: true, ClientRetries: 2},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 8, Blocks: 2, Delete: true, Gap: 150 * time.Millisecond})
				c.SpawnWriter(WriterOpts{Name: "w2", Files: 8, Blocks: 2, Delete: true, Gap: 170 * time.Millisecond, Start: 300 * time.Millisecond})
			}),
		wl("ec_base", "a DataNode loss triggering reconstruction", 50*time.Second,
			Config{V3: true, DataNodes: 4, ClientRetries: 1, PreloadBlocks: 6},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 4, Blocks: 2})
				victim := c.DN(3)
				c.eng.After(12*time.Second, func() { c.eng.CrashNode(victim) })
			}),
		wl("ec_reconstruct", "many under-replicated blocks queueing reconstruction", 60*time.Second,
			Config{V3: true, DataNodes: 4, ClientRetries: 1, PreloadBlocks: 20},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 6, Blocks: 2, Gap: 200 * time.Millisecond})
				victim := c.DN(3)
				c.eng.After(10*time.Second, func() { c.eng.CrashNode(victim) })
			}),
		wl("hb_tight", "tight death threshold with report churn", 50*time.Second,
			Config{V3: true, DeadAfter: 16 * time.Second, StaleAfter: 8 * time.Second,
				ClientRetries: 1, PreloadBlocks: 30},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 8, Blocks: 2, Delete: true, Gap: 120 * time.Millisecond})
				c.SpawnWriter(WriterOpts{Name: "w2", Files: 8, Blocks: 2, Delete: true, Gap: 140 * time.Millisecond, Start: 200 * time.Millisecond})
			}),
		wl("event_storm", "event-queue pressure from mass staleness churn", 50*time.Second,
			Config{V3: true, DataNodes: 4, StaleAfter: 8 * time.Second, ClientRetries: 1, PreloadBlocks: 50},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 6, Blocks: 2, Gap: 150 * time.Millisecond})
				c.SpawnReader(ReaderOpts{Name: "r1", Ops: 60})
			}),
		wl("quiet_baseline", "near-idle cluster (coverage floor)", 25*time.Second,
			Config{V3: true, PreloadBlocks: 4, ClientRetries: 1},
			func(c *Cluster) {
				c.SpawnWriter(WriterOpts{Name: "w1", Files: 1, Blocks: 1})
			}),
	}
	return base
}

func wname(i int) string {
	return string(rune('a'+i)) + "writer"
}

func bugsV2() []sysreg.Bug {
	return []sysreg.Bug{
		{
			ID: "HDFS2-1", JIRA: "HDFS-17661", Title: "Lease recovery",
			CoreFaults: []faults.ID{PtNNRecoveryScan, PtDNAckIOE},
			Delays:     1, Exceptions: 2,
		},
		{
			ID: "HDFS2-2", JIRA: "HDFS-17836", Title: "Edit log flushing",
			CoreFaults: []faults.ID{PtNNEditFlushLoop, PtDNIBRRPCIOE},
			Delays:     1, Exceptions: 1,
		},
		{
			ID: "HDFS2-3", JIRA: "HDFS-17662", Title: "Block recovery",
			CoreFaults: []faults.ID{PtDNRecoveryLoop, PtDNRecoveryIOE},
			Delays:     1, Exceptions: 1, SingleTest: true,
		},
		{
			ID: "HDFS2-4", JIRA: "HDFS-17837", Title: "Write pipeline",
			CoreFaults: []faults.ID{PtDNReceiveLoop, PtDNAckIOE},
			Delays:     1, Exceptions: 3,
		},
		{
			ID: "HDFS2-5", JIRA: "HDFS-17660", Title: "Block cache",
			CoreFaults: []faults.ID{PtDNEvictLoop, PtDNWriteIOE},
			Delays:     1, Exceptions: 1, Negations: 1,
		},
		{
			ID: "HDFS2-6", JIRA: "HDFS-17780", Title: "IBR",
			CoreFaults: []faults.ID{PtNNIBRProcessLoop, PtDNIBRRPCIOE},
			Delays:     1, Exceptions: 1,
		},
	}
}

func bugsV3() []sysreg.Bug {
	return []sysreg.Bug{
		{
			ID: "HDFS3-1", JIRA: "HDFS-17838", Title: "Block deletion",
			CoreFaults: []faults.ID{PtDNDeletionLoop, PtDNWriteIOE},
			Delays:     1, Exceptions: 1, Negations: 1,
		},
		{
			ID: "HDFS3-2", JIRA: "HDFS-17782", Title: "Block reconstruction; IBR",
			CoreFaults: []faults.ID{PtDNReconstructLoop, PtDNReconReadIOE},
			Delays:     2, Exceptions: 1, Negations: 1,
		},
		// Duplicates of HDFS 2 bugs that the V3 suite also rediscovers
		// (the Table 3/4 footnotes).
		{
			ID: "HDFS2-6", JIRA: "HDFS-17780", Title: "IBR (duplicate)",
			CoreFaults: []faults.ID{PtNNIBRProcessLoop, PtDNIBRRPCIOE},
			Delays:     1, Exceptions: 1, Duplicate: true,
		},
		{
			ID: "HDFS2-3", JIRA: "HDFS-17662", Title: "Block recovery (duplicate)",
			CoreFaults: []faults.ID{PtDNRecoveryLoop, PtDNRecoveryIOE},
			Delays:     1, Exceptions: 1, SingleTest: true, Duplicate: true,
		},
	}
}
