package objstore

import (
	"sort"

	"repro/internal/sim"
)

// Cold instrumented paths for the filtered point categories; see the
// matching file in internal/systems/dfs for rationale.

func (c *Cluster) verifyToken(p *sim.Proc, token string) error {
	defer c.rt.Fn(p, "verifyToken")()
	return c.rt.Err(p, PtSecExc, token == "", "token verification failed")
}

func (s *scm) bootSCM(p *sim.Proc) {
	defer s.c.rt.Fn(p, "bootSCM")()
	for i := 0; i < 2; i++ {
		s.c.rt.Loop(p, PtBootLoop)
	}
}

func (c *Cluster) ratisEnabled(p *sim.Proc) bool {
	defer c.rt.Fn(p, "ratisEnabled")()
	return c.rt.Negate(p, PtConfRatis, true, false)
}

func (c *Cluster) isSorted(p *sim.Proc, xs []int) bool {
	defer c.rt.Fn(p, "isSorted")()
	return c.rt.Negate(p, PtUtilSorted, sort.IntsAreSorted(xs), false)
}
