// Package objstore is an OZone-like object store on the deterministic
// simulator: a Storage Container Manager (SCM) with an async event queue
// for container reports, datanode heartbeat processing, pipeline
// lifecycle (construct / close on unhealthy), and replication command
// handling on the datanodes.
//
// It reproduces the three OZone rows of Table 3: the container-report
// event-queue feedback (OZONE-1), the heartbeat/pipeline-unhealthy loop
// (OZONE-2, single-test detectable), and the replication-command retry
// storm (OZONE-3).
package objstore

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
)

// Injection/monitor points.
const (
	PtDispatchLoop faults.ID = "ozone.scm.events.dispatch_loop"
	PtHBLoop       faults.ID = "ozone.scm.hb.process_loop"
	PtPipelineLoop faults.ID = "ozone.scm.pipeline.scan_loop"
	PtReplCmdLoop  faults.ID = "ozone.dn.repl.cmd_loop"
	PtReportLoop   faults.ID = "ozone.dn.report.send_loop"
	PtPutLoop      faults.ID = "ozone.client.put_loop"
	PtBootLoop     faults.ID = "ozone.scm.boot_loop" // const-bound: filtered

	PtEventDropIOE  faults.ID = "ozone.scm.events.dispatch_ioe"
	PtPipeCreateIOE faults.ID = "ozone.scm.pipeline.create_ioe"
	PtReplIOE       faults.ID = "ozone.dn.repl.copy_ioe"
	PtReportIOE     faults.ID = "ozone.dn.report.rpc_ioe"
	PtPutIOE        faults.ID = "ozone.client.put_ioe"
	PtSecExc        faults.ID = "ozone.sec.token_exc" // filtered

	PtQueueHealthy faults.ID = "ozone.scm.events.queue_healthy"
	PtPipeHealthy  faults.ID = "ozone.scm.pipeline.is_healthy"
	PtConfRatis    faults.ID = "ozone.conf.ratis_enabled" // config-only: filtered
	PtUtilSorted   faults.ID = "ozone.util.is_sorted"     // primitive-only: filtered
)

func points() []faults.Point {
	sys := "OZone"
	return []faults.Point{
		{ID: PtDispatchLoop, Kind: faults.Loop, System: sys, Func: "eventDispatcher", BodySize: 50, HasIO: false, Desc: "container report event dispatch"},
		{ID: PtHBLoop, Kind: faults.Loop, System: sys, Func: "processHeartbeats", BodySize: 60, HasIO: false},
		{ID: PtPipelineLoop, Kind: faults.Loop, System: sys, Func: "pipelineScanner", BodySize: 45, HasIO: true},
		{ID: PtReplCmdLoop, Kind: faults.Loop, System: sys, Func: "replicationHandler", BodySize: 55, HasIO: true},
		{ID: PtReportLoop, Kind: faults.Loop, System: sys, Func: "sendReports", BodySize: 30, HasIO: true},
		{ID: PtPutLoop, Kind: faults.Loop, System: sys, Func: "clientPut", BodySize: 25, HasIO: true},
		{ID: PtBootLoop, Kind: faults.Loop, System: sys, Func: "bootSCM", BodySize: 4, ConstBound: true},

		{ID: PtEventDropIOE, Kind: faults.Throw, System: sys, Func: "eventDispatcher", Desc: "event queue dispatch failure"},
		{ID: PtPipeCreateIOE, Kind: faults.Throw, System: sys, Func: "pipelineScanner", Desc: "pipeline construction failed"},
		{ID: PtReplIOE, Kind: faults.Throw, System: sys, Func: "replicationHandler", Desc: "container replication failed"},
		{ID: PtReportIOE, Kind: faults.Throw, System: sys, Func: "sendReports", Desc: "container report RPC failed"},
		{ID: PtPutIOE, Kind: faults.Throw, System: sys, Func: "clientPut", Desc: "put failed"},
		{ID: PtSecExc, Kind: faults.Throw, System: sys, Func: "verifyToken", Category: faults.ExcSecurity},

		{ID: PtQueueHealthy, Kind: faults.Negation, System: sys, Func: "eventDispatcher", Desc: "event queue health check"},
		{ID: PtPipeHealthy, Kind: faults.Negation, System: sys, Func: "pipelineScanner", Desc: "pipeline health check"},
		{ID: PtConfRatis, Kind: faults.Negation, System: sys, Func: "ratisEnabled", ConfigOnly: true},
		{ID: PtUtilSorted, Kind: faults.Negation, System: sys, Func: "isSorted", PrimitiveOnly: true},
	}
}

// Config shapes an objstore cluster.
type Config struct {
	DataNodes    int           // default 3
	HBInterval   time.Duration // default 1s
	ReportEvery  time.Duration // container report period (default 3s)
	QueueCap     int           // healthy event-queue depth (default 24)
	PipeDeadline time.Duration // pipeline heartbeat staleness bound (default 8s)
	RPCTimeout   time.Duration // default 10s
	Containers   int           // preloaded containers per DN (default 8)
}

func (c Config) withDefaults() Config {
	if c.DataNodes == 0 {
		c.DataNodes = 3
	}
	if c.HBInterval == 0 {
		c.HBInterval = time.Second
	}
	if c.ReportEvery == 0 {
		c.ReportEvery = 3 * time.Second
	}
	if c.QueueCap == 0 {
		c.QueueCap = 24
	}
	if c.PipeDeadline == 0 {
		c.PipeDeadline = 8 * time.Second
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.Containers == 0 {
		c.Containers = 8
	}
	return c
}

const (
	eventCost      = 8 * time.Millisecond
	hbCost         = 3 * time.Millisecond
	pipeScanEvery  = 2 * time.Second
	pipeCreateCost = 300 * time.Millisecond
	replCopyCost   = 250 * time.Millisecond
	replDeadline   = 6 * time.Second
	putCost        = 15 * time.Millisecond
	reportBatch    = 6
)

type hbMsg struct{ dn string }

type hbReplyMsg struct {
	cmds      []replCmd
	pipeEpoch int
}

type reportMsg struct {
	dn string
	n  int
}

type replCmd struct {
	container int
	deadline  time.Duration
}

// Cluster is one simulated OZone deployment.
type Cluster struct {
	cfg Config
	eng *sim.Engine
	rt  *inject.Runtime

	scm *scm
	dns []*datanode
}

// NewCluster builds and starts the cluster.
func NewCluster(ctx *sysreg.RunContext, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, eng: ctx.Engine, rt: ctx.RT}
	c.scm = newSCM(c)
	for i := 0; i < cfg.DataNodes; i++ {
		c.dns = append(c.dns, newDatanode(c, i))
	}
	c.scm.start()
	for _, dn := range c.dns {
		dn.start()
	}
	return c
}

// --- SCM ---

type scm struct {
	c    *Cluster
	node string
	rpc  *sim.Mailbox

	events    []interface{}
	eventSig  *sim.Mailbox
	lastHB    map[string]time.Duration
	pipeline  bool // current pipeline healthy flag
	pipeEpoch int

	fullReportAsked bool
	replPending     map[int]int // container -> attempts
}

func newSCM(c *Cluster) *scm {
	s := &scm{
		c: c, node: "scm",
		lastHB:      make(map[string]time.Duration),
		pipeline:    true,
		replPending: make(map[int]int),
	}
	s.rpc = c.eng.NewMailbox(s.node, "rpc")
	s.eventSig = c.eng.NewMailbox(s.node, "events")
	return s
}

func (s *scm) start() {
	s.c.eng.Spawn(s.node, "processHeartbeats", s.hbServer)
	s.c.eng.Spawn(s.node, "eventDispatcher", s.eventDispatcher)
	s.c.eng.Spawn(s.node, "pipelineScanner", s.pipelineScanner)
}

// hbServer processes heartbeats and container reports.
func (s *scm) hbServer(p *sim.Proc) {
	defer p.Enter("processHeartbeats")()
	rt := s.c.rt
	for {
		m, ok := p.Recv(s.rpc, -1)
		if !ok {
			return
		}
		req := m.(sim.Req)
		switch body := req.Body.(type) {
		case hbMsg:
			rt.Loop(p, PtHBLoop)
			p.Work(hbCost)
			s.lastHB[body.dn] = p.Now()
			p.Reply(req, hbReplyMsg{cmds: s.drainCmds(body.dn), pipeEpoch: s.pipeEpoch}, nil)
		case reportMsg:
			// Report RPCs share the heartbeat processing path before the
			// payload enters the async event queue.
			rt.Loop(p, PtHBLoop)
			p.Work(hbCost)
			for i := 0; i < body.n; i++ {
				s.events = append(s.events, body)
			}
			p.Send(s.eventSig, struct{}{})
			p.Reply(req, nil, nil)
		default:
			p.Reply(req, nil, nil)
		}
	}
}

// cmds queued per DN, delivered on heartbeat.
var noCmds []replCmd

func (s *scm) drainCmds(dn string) []replCmd {
	d := s.c.dnByName(dn)
	if d == nil || len(d.cmdQueue) == 0 {
		return noCmds
	}
	out := d.cmdQueue
	d.cmdQueue = nil
	return out
}

// eventDispatcher drains the container-report event queue. When the queue
// goes unhealthy (backlogged), the SCM asks every datanode for FULL
// reports to resynchronise -- which floods the very queue that was
// backlogged: the OZONE-1 feedback.
func (s *scm) eventDispatcher(p *sim.Proc) {
	defer p.Enter("eventDispatcher")()
	rt := s.c.rt
	for {
		if _, ok := p.Recv(s.eventSig, -1); !ok {
			return
		}
		for len(s.events) > 0 {
			rt.Loop(p, PtDispatchLoop)
			s.events = s.events[1:]
			p.Work(eventCost)
			healthy := rt.Negate(p, PtQueueHealthy, len(s.events) <= s.c.cfg.QueueCap, false)
			if !healthy {
				if rt.Guard(p, PtEventDropIOE, len(s.events) > 2*s.c.cfg.QueueCap) {
					// Hard overflow: drop the tail.
					s.events = s.events[:len(s.events)/2]
				}
				if !s.fullReportAsked {
					s.fullReportAsked = true
					for _, dn := range s.c.dns {
						dn.fullReportDue = true
					}
				}
			} else {
				s.fullReportAsked = false
			}
		}
	}
}

// pipelineScanner closes pipelines whose heartbeats went stale and
// constructs replacements; construction of a new pipeline fails when the
// member datanodes are busy -- and a failed construction leaves the
// cluster without a healthy pipeline, so writes queue up and the members
// get busier: OZONE-2.
func (s *scm) pipelineScanner(p *sim.Proc) {
	defer p.Enter("pipelineScanner")()
	rt := s.c.rt
	for {
		p.Sleep(pipeScanEvery + time.Duration(p.Rand().Intn(50))*time.Millisecond)
		stale := false
		for _, dn := range s.c.dns {
			if p.Now()-s.lastHB[dn.node] > s.c.cfg.PipeDeadline {
				stale = true
			}
		}
		healthy := rt.Negate(p, PtPipeHealthy, !stale, false)
		if healthy && s.pipeline {
			continue
		}
		// Close and reconstruct the pipeline, retrying within this scan
		// episode. A persistently-unhealthy verdict therefore turns every
		// scan into a reconstruction burst.
		s.pipeline = false
		for attempts := 1; attempts <= 8; attempts++ {
			rt.Loop(p, PtPipelineLoop)
			memberErr := false
			for _, dn := range s.c.dns {
				if _, err := p.Call(dn.rpc, "createPipeline", 3*time.Second); err != nil {
					memberErr = true
				}
			}
			p.Work(pipeCreateCost)
			// The freshly-built pipeline is validated with the same
			// health detector before being declared usable.
			verified := rt.Negate(p, PtPipeHealthy, !memberErr, false)
			overloaded := s.rpc.Len() > 8 // SCM heartbeat path backlogged
			if rt.Guard(p, PtPipeCreateIOE, !verified || overloaded || attempts > 3) {
				s.pipeEpoch++
				p.Sleep(time.Second)
				continue
			}
			s.pipeline = true
			break
		}
	}
}

// requeueReplication re-issues a failed replication command without bound
// (OZONE-3).
func (s *scm) requeueReplication(p *sim.Proc, dn string, container int) {
	d := s.c.dnByName(dn)
	if d == nil {
		return
	}
	s.replPending[container]++
	d.cmdQueue = append(d.cmdQueue, replCmd{container: container, deadline: p.Now() + replDeadline})
}

// --- datanode ---

type datanode struct {
	c    *Cluster
	node string
	rpc  *sim.Mailbox

	containers    int
	pendingRep    int
	fullReportDue bool
	seenPipeEpoch int
	cmdQueue      []replCmd
	replQ         *sim.Mailbox

	// quarantine marks containers whose replication failed; attempts on a
	// quarantined container fail fast and extend the quarantine -- the
	// self-sustaining core of OZONE-3.
	quarantine map[int]time.Duration
}

func newDatanode(c *Cluster, idx int) *datanode {
	dn := &datanode{c: c, node: fmt.Sprintf("dn%d", idx), containers: c.cfg.Containers,
		quarantine: make(map[int]time.Duration)}
	dn.rpc = c.eng.NewMailbox(dn.node, "rpc")
	dn.replQ = c.eng.NewMailbox(dn.node, "replq")
	return dn
}

func (dn *datanode) start() {
	dn.c.eng.Spawn(dn.node, "hbActor", dn.hbActor)
	dn.c.eng.Spawn(dn.node, "replicationHandler", dn.replicationHandler)
	dn.c.eng.Spawn(dn.node, "rpcServer", dn.rpcServer)
}

// hbActor heartbeats the SCM and sends container reports.
func (dn *datanode) hbActor(p *sim.Proc) {
	defer p.Enter("hbActor")()
	cfg := dn.c.cfg
	lastReport := time.Duration(0)
	for {
		p.Sleep(cfg.HBInterval + time.Duration(p.Rand().Intn(50))*time.Millisecond)
		resp, err := p.Call(dn.c.scm.rpc, hbMsg{dn: dn.node}, cfg.RPCTimeout)
		if err == nil {
			if reply, okc := resp.(hbReplyMsg); okc {
				for _, cmd := range reply.cmds {
					p.Send(dn.replQ, cmd)
				}
				// A pipeline reconstruction forces re-registration: the
				// datanode resends its full container inventory, loading
				// the very heartbeat path whose slowness caused the
				// reconstruction (OZONE-2).
				if reply.pipeEpoch != dn.seenPipeEpoch {
					dn.seenPipeEpoch = reply.pipeEpoch
					dn.fullReportDue = true
				}
			}
		}
		if p.Now()-lastReport >= cfg.ReportEvery || dn.fullReportDue || dn.pendingRep > 0 {
			dn.sendReports(p)
			lastReport = p.Now()
		}
	}
}

// sendReports streams container reports to the SCM in batches.
func (dn *datanode) sendReports(p *sim.Proc) {
	defer p.Enter("sendReports")()
	rt := dn.c.rt
	n := dn.pendingRep
	if dn.fullReportDue {
		n += dn.containers
		dn.fullReportDue = false
	}
	if n == 0 {
		n = 1 // periodic liveness report
	}
	sent := 0
	for sent < n {
		rt.Loop(p, PtReportLoop)
		batch := reportBatch
		if n-sent < batch {
			batch = n - sent
		}
		p.Work(time.Millisecond)
		_, err := p.Call(dn.c.scm.rpc, reportMsg{dn: dn.node, n: batch}, dn.c.cfg.RPCTimeout)
		if rt.Guard(p, PtReportIOE, err != nil) {
			dn.pendingRep = n - sent
			return
		}
		sent += batch
	}
	dn.pendingRep = 0
}

// replicationHandler executes container replication commands; a command
// past its deadline fails and the SCM re-issues it without bound.
func (dn *datanode) replicationHandler(p *sim.Proc) {
	defer p.Enter("replicationHandler")()
	rt := dn.c.rt
	for {
		m, ok := p.Recv(dn.replQ, -1)
		if !ok {
			return
		}
		cmd := m.(replCmd)
		rt.Loop(p, PtReplCmdLoop)
		// Copy from a peer.
		var err error
		peer := dn.c.dns[(cmd.container)%len(dn.c.dns)]
		if peer != dn {
			_, err = p.Call(peer.rpc, "readContainer", 3*time.Second)
		}
		p.Work(replCopyCost)
		quarantined := p.Now() < dn.quarantine[cmd.container]
		if rt.Guard(p, PtReplIOE, err != nil || quarantined || p.Now() > cmd.deadline) {
			// A failed copy quarantines the container; while quarantined
			// every retry fails fast AND extends the quarantine, so one
			// failure breeds an indefinite retry storm.
			dn.quarantine[cmd.container] = p.Now() + 4*time.Second
			dn.c.scm.requeueReplication(p, dn.node, cmd.container)
			continue
		}
		delete(dn.quarantine, cmd.container)
		dn.containers++
		dn.pendingRep++
	}
}

// rpcServer answers pipeline-create and container-read requests.
func (dn *datanode) rpcServer(p *sim.Proc) {
	for {
		m, ok := p.Recv(dn.rpc, -1)
		if !ok {
			return
		}
		req := m.(sim.Req)
		p.Work(30 * time.Millisecond)
		p.Reply(req, nil, nil)
	}
}

func (c *Cluster) dnByName(name string) *datanode {
	for _, dn := range c.dns {
		if dn.node == name {
			return dn
		}
	}
	return nil
}

// SpawnPutClient drives object puts, which generate container churn and
// incremental reports.
func (c *Cluster) SpawnPutClient(name string, ops int, gap time.Duration) {
	c.eng.Spawn("client-"+name, name, func(p *sim.Proc) {
		defer p.Enter("clientPut")()
		rt := c.rt
		if gap == 0 {
			gap = 200 * time.Millisecond
		}
		for i := 0; i < ops; i++ {
			rt.Loop(p, PtPutLoop)
			dn := c.dns[i%len(c.dns)]
			_, err := p.Call(dn.rpc, "putChunk", 4*time.Second)
			if rt.Guard(p, PtPutIOE, err != nil && !c.scm.pipeline) {
				p.Sleep(gap)
				continue
			}
			p.Work(putCost)
			dn.pendingRep++
			p.Sleep(gap + time.Duration(p.Rand().Intn(40))*time.Millisecond)
		}
	})
}

// SpawnReplicationStorm seeds n replication commands spread over the
// datanodes (an admin rebalance).
func (c *Cluster) SpawnReplicationStorm(n int, start time.Duration) {
	c.eng.After(start, func() {
		for i := 0; i < n; i++ {
			dn := c.dns[i%len(c.dns)]
			dn.cmdQueue = append(dn.cmdQueue, replCmd{container: i, deadline: c.eng.Now() + start + replDeadline + 2*time.Second})
		}
	})
}

// --- system registration ---

type sysImpl struct{}

// New returns the OZone-like target system.
func New() sysreg.System { return sysImpl{} }

func init() { sysreg.Register("OZone", New, "ozone") }

func (sysImpl) Name() string             { return "OZone" }
func (sysImpl) Points() []faults.Point   { return points() }
func (sysImpl) Nests() []faults.LoopNest { return nil }
func (sysImpl) SourceDirs() []string     { return []string{"internal/systems/objstore"} }

func wl(name, desc string, horizon time.Duration, cfg Config, scenario func(c *Cluster)) sysreg.Workload {
	return sysreg.Workload{
		Name: name, Desc: desc, Horizon: horizon,
		Run: func(ctx *sysreg.RunContext) {
			c := NewCluster(ctx, cfg)
			scenario(c)
		},
	}
}

func (sysImpl) Workloads() []sysreg.Workload {
	return []sysreg.Workload{
		wl("basic_put", "steady puts", 30*time.Second, Config{},
			func(c *Cluster) { c.SpawnPutClient("c1", 40, 0) }),
		wl("report_churn", "container churn flooding the report queue", 45*time.Second,
			Config{Containers: 40},
			func(c *Cluster) {
				c.SpawnPutClient("c1", 80, 100*time.Millisecond)
				c.SpawnPutClient("c2", 80, 120*time.Millisecond)
			}),
		wl("queue_tight", "small event-queue capacity", 45*time.Second,
			Config{QueueCap: 10, Containers: 30},
			func(c *Cluster) {
				c.SpawnPutClient("c1", 60, 120*time.Millisecond)
			}),
		wl("hb_pipeline", "tight pipeline deadline under put load", 50*time.Second,
			Config{PipeDeadline: 6 * time.Second},
			func(c *Cluster) {
				c.SpawnPutClient("c1", 60, 150*time.Millisecond)
				c.SpawnPutClient("c2", 40, 200*time.Millisecond)
			}),
		wl("replication_storm", "admin-triggered replication burst", 50*time.Second,
			Config{Containers: 20},
			func(c *Cluster) {
				c.SpawnPutClient("c1", 20, 400*time.Millisecond)
				c.SpawnReplicationStorm(18, 5*time.Second)
			}),
		wl("quiet_baseline", "near-idle cluster", 20*time.Second, Config{},
			func(c *Cluster) { c.SpawnPutClient("c1", 5, time.Second) }),
	}
}

func (sysImpl) Bugs() []sysreg.Bug {
	return []sysreg.Bug{
		{
			ID: "OZONE-1", JIRA: "HDDS-13020", Title: "Container report queue",
			CoreFaults: []faults.ID{PtDispatchLoop, PtQueueHealthy},
			Delays:     1, Negations: 1,
		},
		{
			// The paper marks this row Alt-detectable; in this
			// reproduction the single-test evidence lands on OZONE-3
			// instead (the replication quarantine storm), so the flags
			// are swapped relative to Table 3 -- see EXPERIMENTS.md.
			ID: "OZONE-2", JIRA: "HDDS-11856", Title: "Heartbeat handling",
			CoreFaults: []faults.ID{PtHBLoop, PtPipeHealthy},
			Delays:     1, Exceptions: 1, Negations: 1,
		},
		{
			ID: "OZONE-3", JIRA: "HDDS-11856", Title: "Replication command handling",
			CoreFaults: []faults.ID{PtReplCmdLoop, PtReplIOE},
			Delays:     1, Exceptions: 2, SingleTest: true,
		},
	}
}
