package objstore

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"
)

func runWorkload(t *testing.T, name string, plan inject.Plan, seed int64) *trace.Run {
	t.Helper()
	for _, w := range New().Workloads() {
		if w.Name != name {
			continue
		}
		rec := trace.NewRun(name, seed)
		rt := inject.New(plan, rec)
		eng := sim.NewEngine(sim.Options{Seed: seed})
		w.Run(&sysreg.RunContext{Engine: eng, RT: rt})
		rec.Result = eng.Run(w.Horizon)
		eng.Close()
		return rec
	}
	t.Fatalf("unknown workload %q", name)
	return nil
}

func TestProfilesQuiet(t *testing.T) {
	noisy := []faults.ID{PtEventDropIOE, PtPipeCreateIOE, PtReplIOE, PtReportIOE, PtPutIOE}
	for _, w := range New().Workloads() {
		rec := runWorkload(t, w.Name, inject.Profile(), 7)
		for _, id := range noisy {
			if rec.Reached(id) > 0 {
				t.Errorf("%s: %s fired naturally %d times", w.Name, id, rec.Reached(id))
			}
		}
	}
}

// TestQueueFeedback covers OZONE-1: a delayed dispatcher backs up the
// event queue, the health check trips, and full reports flood the queue.
func TestQueueFeedback(t *testing.T) {
	rec := runWorkload(t, "queue_tight",
		inject.Plan{Kind: inject.Delay, Target: PtDispatchLoop, Delay: 500 * time.Millisecond}, 5)
	if rec.Reached(PtQueueHealthy) == 0 {
		t.Fatalf("dispatcher delay did not trip the queue health check (iters=%d)", rec.LoopIters(PtDispatchLoop))
	}
	prof := runWorkload(t, "report_churn", inject.Profile(), 5)
	neg := runWorkload(t, "report_churn",
		inject.Plan{Kind: inject.Negate, Target: PtQueueHealthy}, 5)
	if neg.LoopIters(PtDispatchLoop) <= prof.LoopIters(PtDispatchLoop) {
		t.Fatalf("queue-health negation caused no dispatch storm: %d <= %d",
			neg.LoopIters(PtDispatchLoop), prof.LoopIters(PtDispatchLoop))
	}
}

// TestPipelineFeedback covers OZONE-2: a delayed heartbeat processor makes
// the pipeline look stale; reconstruction fails while datanodes are busy.
func TestPipelineFeedback(t *testing.T) {
	rec := runWorkload(t, "hb_pipeline",
		inject.Plan{Kind: inject.Delay, Target: PtHBLoop, Delay: 2 * time.Second}, 5)
	if rec.Reached(PtPipeHealthy) == 0 {
		t.Fatalf("heartbeat delay did not trip the pipeline health check (iters=%d)", rec.LoopIters(PtHBLoop))
	}
	prof := runWorkload(t, "hb_pipeline", inject.Profile(), 5)
	neg := runWorkload(t, "hb_pipeline",
		inject.Plan{Kind: inject.Negate, Target: PtPipeHealthy}, 5)
	if neg.Reached(PtPipeCreateIOE) == 0 && neg.LoopIters(PtPipelineLoop) <= prof.LoopIters(PtPipelineLoop) {
		t.Fatal("pipeline-health negation caused no reconstruction churn")
	}
}

// TestReplicationRetryStorm covers OZONE-3: a delayed replication handler
// misses command deadlines; the SCM re-issues commands without bound.
func TestReplicationRetryStorm(t *testing.T) {
	prof := runWorkload(t, "replication_storm", inject.Profile(), 5)
	rec := runWorkload(t, "replication_storm",
		inject.Plan{Kind: inject.Delay, Target: PtReplCmdLoop, Delay: 2 * time.Second}, 5)
	if rec.Reached(PtReplIOE) == 0 {
		t.Fatalf("replication delay missed no deadlines (iters=%d, profile=%d)",
			rec.LoopIters(PtReplCmdLoop), prof.LoopIters(PtReplCmdLoop))
	}
	if rec.LoopIters(PtReplCmdLoop) <= prof.LoopIters(PtReplCmdLoop) {
		t.Fatalf("no retry storm: %d <= %d", rec.LoopIters(PtReplCmdLoop), prof.LoopIters(PtReplCmdLoop))
	}
}

func TestDeterminism(t *testing.T) {
	a := runWorkload(t, "report_churn", inject.Profile(), 11)
	b := runWorkload(t, "report_churn", inject.Profile(), 11)
	if a.Result.Events != b.Result.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Result.Events, b.Result.Events)
	}
}
