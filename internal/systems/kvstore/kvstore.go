// Package kvstore is an HBase-like region store on the deterministic
// simulator: a Master with an assignment manager and a pluggable load
// balancer (including a FavoredStochastic-style balancer that needs three
// live RegionServers), RegionServers with a write-ahead log, memstore
// flushes, and a WAL replay path.
//
// It reproduces the two HBase rows of Table 3: the WAL premature-EOF
// replay loop (HBASE-1) and the §8.3.1 region-deployment-retry cascade
// (HBASE-2), both seeded as mechanistic feedback loops.
package kvstore

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
)

// Injection/monitor points.
const (
	// Master loops.
	PtDeployLoop   faults.ID = "hbase.master.assign.deploy_loop"
	PtBalancerLoop faults.ID = "hbase.master.balancer.loop"
	PtProcWALLoop  faults.ID = "hbase.master.proc.wal_loop"
	PtInitLoop     faults.ID = "hbase.master.init_loop" // const-bound: filtered

	// RegionServer loops.
	PtWALSyncLoop   faults.ID = "hbase.rs.wal.sync_loop"
	PtWALReplayLoop faults.ID = "hbase.rs.wal.replay_loop"
	PtFlushLoop     faults.ID = "hbase.rs.flush_loop"
	PtOpenLoop      faults.ID = "hbase.rs.open_region_loop"
	PtPutLoop       faults.ID = "hbase.client.put_loop"

	// Exceptions.
	PtAssignIOE  faults.ID = "hbase.rs.assign.rpc_ioe"
	PtPutIOE     faults.ID = "hbase.rs.put_ioe"
	PtWALSyncIOE faults.ID = "hbase.rs.wal.sync_ioe" // libcall
	PtCloneIOE   faults.ID = "hbase.master.clone_ioe"
	PtClientIOE  faults.ID = "hbase.client.put_ioe"
	PtSecAuthExc faults.ID = "hbase.sec.auth_exc"  // filtered
	PtReflExc    faults.ID = "hbase.refl.load_exc" // filtered

	// Negations.
	PtWALComplete  faults.ID = "hbase.rs.wal.is_complete"
	PtCanPlace     faults.ID = "hbase.master.balancer.can_place_favored"
	PtRSAlive      faults.ID = "hbase.master.rs.is_alive"
	PtConfFavored  faults.ID = "hbase.conf.favored_enabled" // config-only: filtered
	PtUtilIsSorted faults.ID = "hbase.util.is_sorted"       // primitive-only: filtered
	PtTraceEnabled faults.ID = "hbase.log.trace_enabled"    // const return: filtered
)

func points() []faults.Point {
	sys := "HBase"
	return []faults.Point{
		{ID: PtDeployLoop, Kind: faults.Loop, System: sys, Func: "assignmentManager", BodySize: 70, HasIO: true, Desc: "region deployment loop"},
		{ID: PtBalancerLoop, Kind: faults.Loop, System: sys, Func: "runBalancer", BodySize: 45},
		{ID: PtProcWALLoop, Kind: faults.Loop, System: sys, Func: "procWAL", BodySize: 25, HasIO: true},
		{ID: PtInitLoop, Kind: faults.Loop, System: sys, Func: "initMaster", BodySize: 6, ConstBound: true},
		{ID: PtWALSyncLoop, Kind: faults.Loop, System: sys, Func: "walSync", BodySize: 30, HasIO: true},
		{ID: PtWALReplayLoop, Kind: faults.Loop, System: sys, Func: "walReplay", BodySize: 55, HasIO: true},
		{ID: PtFlushLoop, Kind: faults.Loop, System: sys, Func: "memstoreFlush", BodySize: 35, HasIO: true},
		{ID: PtOpenLoop, Kind: faults.Loop, System: sys, Func: "openRegion", BodySize: 40, HasIO: true},
		{ID: PtPutLoop, Kind: faults.Loop, System: sys, Func: "clientPut", BodySize: 30, HasIO: true},

		{ID: PtAssignIOE, Kind: faults.Throw, System: sys, Func: "assignmentManager", Desc: "region assignment RPC failed"},
		{ID: PtPutIOE, Kind: faults.Throw, System: sys, Func: "handlePut", Desc: "put rejected under load"},
		{ID: PtWALSyncIOE, Kind: faults.LibCall, System: sys, Func: "walSync", Category: faults.ExcLibrary},
		{ID: PtCloneIOE, Kind: faults.Throw, System: sys, Func: "cloneTable", Desc: "table clone failed"},
		{ID: PtClientIOE, Kind: faults.Throw, System: sys, Func: "clientPut", Desc: "put retries exhausted"},
		{ID: PtSecAuthExc, Kind: faults.Throw, System: sys, Func: "authenticate", Category: faults.ExcSecurity},
		{ID: PtReflExc, Kind: faults.Throw, System: sys, Func: "loadCoprocessor", Category: faults.ExcReflection},

		{ID: PtWALComplete, Kind: faults.Negation, System: sys, Func: "walReplay", Desc: "WAL trailer completeness check"},
		{ID: PtCanPlace, Kind: faults.Negation, System: sys, Func: "runBalancer", Desc: "canPlaceFavoredNodes"},
		{ID: PtRSAlive, Kind: faults.Negation, System: sys, Func: "serverMonitor", Desc: "RS liveness check"},
		{ID: PtConfFavored, Kind: faults.Negation, System: sys, Func: "favoredEnabled", ConfigOnly: true},
		{ID: PtUtilIsSorted, Kind: faults.Negation, System: sys, Func: "isSorted", PrimitiveOnly: true},
		{ID: PtTraceEnabled, Kind: faults.Negation, System: sys, Func: "traceEnabled", ConstReturn: true},
	}
}

// Config selects topology and features per workload.
type Config struct {
	RegionServers int  // default 3
	Favored       bool // use the FavoredStochastic-style balancer
	Replay        bool // run a WAL replay reader
	Regions       int  // initial regions per server (default 2)
	PutTimeout    time.Duration
	AssignTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.RegionServers == 0 {
		c.RegionServers = 3
	}
	if c.Regions == 0 {
		c.Regions = 2
	}
	if c.PutTimeout == 0 {
		c.PutTimeout = 5 * time.Second
	}
	if c.AssignTimeout == 0 {
		c.AssignTimeout = 10 * time.Second
	}
	return c
}

const (
	putCost         = 20 * time.Millisecond
	openRegionCost  = 250 * time.Millisecond
	walAppendCost   = 2 * time.Millisecond
	walSyncCost     = 5 * time.Millisecond
	walSyncEvery    = 400 * time.Millisecond
	replayEntryGap  = 100 * time.Millisecond
	replayRetryGap  = 300 * time.Millisecond
	replayScanEvery = 3 * time.Second
	flushEvery      = 2 * time.Second
	flushCost       = 150 * time.Millisecond
	balanceEvery    = 2 * time.Second
	assignRetryGap  = 500 * time.Millisecond
)

// Cluster is one simulated HBase deployment. It implements
// sysreg.Checkpointable: long-lived processes park only at tagged
// SleepQ/RecvQ sites and all mutable state lives in struct fields.
type Cluster struct {
	cfg Config
	eng *sim.Engine
	rt  *inject.Runtime

	master *master
	rss    []*regionServer

	clients  []*loadClient
	creators []*tableCreator
}

// NewCluster builds and starts the cluster.
func NewCluster(ctx *sysreg.RunContext, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, eng: ctx.Engine, rt: ctx.RT}
	c.master = newMaster(c)
	for i := 0; i < cfg.RegionServers; i++ {
		c.rss = append(c.rss, newRegionServer(c, i))
	}
	c.master.bootstrapRegions()
	c.master.start()
	for _, rs := range c.rss {
		rs.start()
	}
	return c
}

// --- Master ---

type assignment struct {
	region  string
	rs      string
	retries int
}

type master struct {
	c    *Cluster
	node string
	rpc  *sim.Mailbox

	regions   map[string]string // region -> RS (or "" when unassigned)
	excluded  map[string]bool   // RSes excluded from favored placement
	pending   []assignment
	pendSig   *sim.Mailbox
	balanceOK bool

	assignProc, balancerProc, rpcProc *sim.Proc
}

func newMaster(c *Cluster) *master {
	m := &master{
		c: c, node: "master",
		regions:  make(map[string]string),
		excluded: make(map[string]bool),
	}
	m.rpc = c.eng.NewMailbox(m.node, "rpc")
	m.pendSig = c.eng.NewMailbox(m.node, "pending")
	return m
}

func (m *master) bootstrapRegions() {
	for i, rs := range m.c.rss {
		for r := 0; r < m.c.cfg.Regions; r++ {
			m.regions[fmt.Sprintf("region-%d-%d", i, r)] = rs.node
		}
	}
}

func (m *master) start() {
	m.assignProc = m.c.eng.Spawn(m.node, "assignmentManager", m.assignmentManager)
	m.balancerProc = m.c.eng.Spawn(m.node, "balancer", func(p *sim.Proc) { m.balancerLoop(p, false) })
	m.rpcProc = m.c.eng.Spawn(m.node, "rpcHandler", m.rpcHandler)
}

func (m *master) enqueue(p *sim.Proc, a assignment) {
	m.pending = append(m.pending, a)
	p.Send(m.pendSig, struct{}{})
}

// assignmentManager drives region deployment: the delayed task of the
// §8.3.1 case study. Failed assignments are retried indefinitely -- the
// seeded feedback.
func (m *master) assignmentManager(p *sim.Proc) {
	defer p.Enter("assignmentManager")()
	rt := m.c.rt
	for {
		p.RecvQ(m.pendSig, "hb.assign.signal")
		// Each drain is a batched deployment with one overall deadline:
		// a slow sub-deployment times out the whole batch, the batched-
		// RPC pattern of §4.3.
		batchDeadline := p.Now() + m.c.cfg.AssignTimeout
		for len(m.pending) > 0 {
			rt.Loop(p, PtDeployLoop)
			a := m.pending[0]
			m.pending = m.pending[1:]
			// Monitor point: the balancer mode is part of the activation
			// condition of every assignment fault (§6.2), so workloads
			// with different balancers must not be stitched together.
			rt.Branch(p, "hbase.assign.favored_mode", m.c.cfg.Favored)
			p.Work(10 * time.Millisecond)
			target := m.pickServer(p, a)
			if target == "" {
				// Balancer failure: blind retry after a pause.
				a.retries++
				p.SendAfter(assignRetryGap, m.pendSig, struct{}{})
				m.pending = append(m.pending, a)
				continue
			}
			rs := m.c.rsByName(target)
			var err error
			if p.Now() > batchDeadline {
				err = fmt.Errorf("hbase: assignment batch timed out")
			} else {
				_, err = p.Call(rs.rpc, openRegionMsg{region: a.region}, m.c.cfg.AssignTimeout)
			}
			if rt.Guard(p, PtAssignIOE, err != nil) {
				// An RS that failed an assignment RPC is excluded from
				// favored placement, and the assignment retried blindly.
				m.excluded[target] = true
				a.retries++
				p.SendAfter(assignRetryGap, m.pendSig, struct{}{})
				m.pending = append(m.pending, a)
				continue
			}
			m.regions[a.region] = target
		}
	}
}

// pickServer selects a target RS, via the favored balancer when enabled.
func (m *master) pickServer(p *sim.Proc, a assignment) string {
	rt := m.c.rt
	var live []string
	for _, rs := range m.c.rss {
		if !m.excluded[rs.node] && !m.c.eng.Crashed(rs.node) {
			live = append(live, rs.node)
		}
	}
	sort.Strings(live)
	if m.c.cfg.Favored {
		// canPlaceFavoredNodes: the favored balancer needs at least three
		// live, non-excluded servers.
		ok := rt.Negate(p, PtCanPlace, len(live) >= 3, false)
		if !ok {
			return ""
		}
	}
	if len(live) == 0 {
		return ""
	}
	// Least regions first.
	counts := map[string]int{}
	for _, owner := range m.regions {
		counts[owner]++
	}
	best := live[0]
	for _, s := range live[1:] {
		if counts[s] < counts[best] {
			best = s
		}
	}
	return best
}

// balancerLoop periodically rebalances regions; each move is a deployment.
// adopted skips the leading park exactly once: a restored body enters at
// the wake instant, where the original had just finished the same sleep.
func (m *master) balancerLoop(p *sim.Proc, adopted bool) {
	defer p.Enter("runBalancer")()
	rt := m.c.rt
	for {
		if !adopted {
			p.SleepQ(balanceEvery+time.Duration(p.Rand().Intn(50))*time.Millisecond, "hb.balancer")
		}
		adopted = false
		counts := map[string]int{}
		for _, owner := range m.regions {
			counts[owner]++
		}
		max, min := "", ""
		for _, rs := range m.c.rss {
			if m.excluded[rs.node] {
				continue
			}
			if max == "" || counts[rs.node] > counts[max] {
				max = rs.node
			}
			if min == "" || counts[rs.node] < counts[min] {
				min = rs.node
			}
		}
		if max == "" || min == "" || counts[max]-counts[min] < 2 {
			continue
		}
		rt.Loop(p, PtBalancerLoop)
		// Move one region from max to min via the assignment manager.
		for region, owner := range m.regions {
			if owner == max {
				m.regions[region] = ""
				m.enqueue(p, assignment{region: region, rs: min})
				break
			}
		}
	}
}

type createTableMsg struct {
	name    string
	regions int
	clone   bool
}

type putMsg struct {
	region string
	n      int
}

func (m *master) rpcHandler(p *sim.Proc) {
	defer p.Enter("masterRPC")()
	rt := m.c.rt
	for {
		msg := p.RecvQ(m.rpc, "hb.master.rpc")
		req := msg.(sim.Req)
		switch body := req.Body.(type) {
		case createTableMsg:
			p.Work(20 * time.Millisecond)
			if rt.Guard(p, PtCloneIOE, body.clone && len(m.pending) > 24) {
				p.Reply(req, nil, fmt.Errorf("hbase: clone overloaded"))
				continue
			}
			for i := 0; i < body.regions; i++ {
				m.enqueue(p, assignment{region: fmt.Sprintf("%s-r%d", body.name, i)})
			}
			p.Reply(req, nil, nil)
		default:
			p.Reply(req, nil, nil)
		}
	}
}

// --- RegionServer ---

type openRegionMsg struct{ region string }

type regionServer struct {
	c    *Cluster
	node string
	rpc  *sim.Mailbox

	walPending int // appended, not yet synced
	walSynced  int
	walTotal   int
	lastSync   time.Duration // when the sync loop last caught up
	replayed   int           // replay reader's high-water mark
	regions    map[string]bool
	walMu      *sim.Mutex

	handlerProcs                    []*sim.Proc
	syncProc, flushProc, replayProc *sim.Proc
}

func newRegionServer(c *Cluster, idx int) *regionServer {
	rs := &regionServer{
		c:       c,
		node:    fmt.Sprintf("rs%d", idx),
		regions: make(map[string]bool),
	}
	rs.rpc = c.eng.NewMailbox(rs.node, "rpc")
	rs.walMu = sim.NewMutex(c.eng, rs.node)
	return rs
}

func (rs *regionServer) start() {
	for i := 0; i < 2; i++ {
		rs.handlerProcs = append(rs.handlerProcs, rs.c.eng.Spawn(rs.node, "handler", rs.handlerLoop))
	}
	rs.syncProc = rs.c.eng.Spawn(rs.node, "walSync", func(p *sim.Proc) { rs.walSyncLoop(p, false) })
	rs.flushProc = rs.c.eng.Spawn(rs.node, "memstoreFlush", func(p *sim.Proc) { rs.flushLoop(p, false) })
	if rs.c.cfg.Replay {
		rs.replayProc = rs.c.eng.Spawn(rs.node, "walReplay", rs.walReplay)
	}
}

func (rs *regionServer) handlerLoop(p *sim.Proc) {
	rt := rs.c.rt
	for {
		msg := p.RecvQ(rs.rpc, "hb.rs.rpc")
		req := msg.(sim.Req)
		switch body := req.Body.(type) {
		case openRegionMsg:
			func() {
				defer p.Enter("openRegion")()
				rt.Loop(p, PtOpenLoop)
				p.Work(openRegionCost)
				rs.regions[body.region] = true
				p.Reply(req, nil, nil)
			}()
		case putMsg:
			func() {
				defer p.Enter("handlePut")()
				// Backpressure: puts are rejected when the WAL has a deep
				// unsynced backlog (an overloaded server).
				if rt.Guard(p, PtPutIOE, rs.walPending > 120) {
					p.Reply(req, nil, fmt.Errorf("hbase: region server overloaded"))
					return
				}
				for i := 0; i < body.n; i++ {
					p.Work(putCost)
					rs.walMu.Lock(p)
					rs.walPending++
					rs.walTotal++
					p.Work(walAppendCost)
					rs.walMu.Unlock(p)
				}
				p.Reply(req, nil, nil)
			}()
		default:
			p.Reply(req, nil, nil)
		}
	}
}

// walSyncLoop flushes appended WAL entries to stable storage; a lagging
// sync leaves the on-disk WAL without its trailer, which the replay reader
// observes as a premature end-of-file.
func (rs *regionServer) walSyncLoop(p *sim.Proc, adopted bool) {
	defer p.Enter("walSync")()
	rt := rs.c.rt
	for {
		if !adopted {
			p.SleepQ(walSyncEvery+time.Duration(p.Rand().Intn(30))*time.Millisecond, "hb.walSync")
		}
		adopted = false
		if rs.walPending == 0 {
			rs.lastSync = p.Now()
			continue
		}
		rs.walMu.Lock(p)
		n := rs.walPending
		for i := 0; i < n; i++ {
			rt.Loop(p, PtWALSyncLoop)
			if rt.Guard(p, PtWALSyncIOE, false) {
				break // sync failure: remaining entries stay pending
			}
			p.Work(walSyncCost)
			rs.walPending--
			rs.walSynced++
		}
		if rs.walPending == 0 {
			rs.lastSync = p.Now()
		}
		rs.walMu.Unlock(p)
	}
}

// walReplay models a WAL split/replay reader (e.g. during region moves):
// it repeatedly reads the WAL tail; an incomplete file (missing trailer)
// is retried after a pause, without bound -- the HBASE-1 feedback loop.
// Both of its park sites sit at the bottom of the loop, so an adopted
// body re-entered from the top continues exactly like the original
// regardless of which site it was captured at.
func (rs *regionServer) walReplay(p *sim.Proc) {
	defer p.Enter("walReplay")()
	rt := rs.c.rt
	for {
		rs.walMu.Lock(p)
		// The reader holds the WAL lock while scanning (the loop hook
		// sits inside the critical section, so an injected per-iteration
		// delay starves sync), competing with appends and sync. The file
		// is "complete" when the sync backlog is shallow -- a reader
		// racing an ordinarily-healthy writer does not see a premature
		// EOF, but a stalled sync does surface one.
		rt.Loop(p, PtWALReplayLoop)
		p.Work(replayEntryGap)
		syncFresh := p.Now()-rs.lastSync < 2*walSyncEvery+200*time.Millisecond
		complete := rt.Negate(p, PtWALComplete, rs.walPending < 30 && syncFresh, false)
		synced := rs.walSynced
		rs.walMu.Unlock(p)
		if !complete {
			// PrematureEndOfFile: retry from scratch shortly, without
			// bound -- the HBASE-1 feedback (each retry holds the WAL
			// lock, making the sync lag it is waiting out even worse).
			p.SleepQ(replayRetryGap, "hb.replay.retry")
			continue
		}
		if synced > rs.replayed {
			rs.replayed = synced
		}
		p.SleepQ(replayScanEvery, "hb.replay.scan")
	}
}

// flushLoop drains memstores periodically (background disk load).
func (rs *regionServer) flushLoop(p *sim.Proc, adopted bool) {
	defer p.Enter("memstoreFlush")()
	rt := rs.c.rt
	for {
		if !adopted {
			p.SleepQ(flushEvery+time.Duration(p.Rand().Intn(40))*time.Millisecond, "hb.flush")
		}
		adopted = false
		if len(rs.regions) == 0 && rs.walSynced == 0 {
			continue
		}
		rt.Loop(p, PtFlushLoop)
		rs.walMu.Lock(p)
		p.Work(flushCost)
		rs.walMu.Unlock(p)
	}
}

func (c *Cluster) rsByName(name string) *regionServer {
	for _, rs := range c.rss {
		if rs.node == name {
			return rs
		}
	}
	return nil
}

// --- clients ---

// loadClient is one put-driving client. Progress lives in done so a
// checkpoint snapshot can rebuild the client mid-stream; its only park
// site is the loop-last gap sleep (in-flight Call windows are untagged
// and simply make that instant uncapturable).
type loadClient struct {
	c          *Cluster
	name       string
	ops, batch int
	gap        time.Duration

	done int // completed puts (their gap may still be pending)
	proc *sim.Proc
}

func (cl *loadClient) run(p *sim.Proc) {
	defer p.Enter("clientPut")()
	rt := cl.c.rt
	c := cl.c
	for cl.done < cl.ops {
		rt.Loop(p, PtPutLoop)
		i := cl.done
		rs := c.rss[i%len(c.rss)]
		_, err := p.Call(rs.rpc, putMsg{region: "any", n: cl.batch}, c.cfg.PutTimeout)
		failures := 0
		if err != nil {
			failures++
			rs2 := c.rss[(i+1)%len(c.rss)]
			if _, err2 := p.Call(rs2.rpc, putMsg{region: "any", n: cl.batch}, c.cfg.PutTimeout); err2 != nil {
				failures++
			}
		}
		rt.Guard(p, PtClientIOE, failures >= 2)
		cl.done++
		p.SleepQ(cl.gap+time.Duration(p.Rand().Intn(40))*time.Millisecond, "hb.client.gap")
	}
}

// SpawnLoadClient drives puts at the cluster.
func (c *Cluster) SpawnLoadClient(name string, ops, batch int, gap time.Duration) {
	if gap == 0 {
		gap = 150 * time.Millisecond
	}
	cl := &loadClient{c: c, name: name, ops: ops, batch: batch, gap: gap}
	cl.proc = c.eng.Spawn("client-"+name, name, cl.run)
	c.clients = append(c.clients, cl)
}

// tableCreator issues table create/clone storms (the §8.3.1 t1
// condition).
type tableCreator struct {
	c               *Cluster
	name            string
	tables, regions int
	clone           bool
	gap             time.Duration

	done int
	proc *sim.Proc
}

func (cl *tableCreator) run(p *sim.Proc) {
	defer p.Enter("createTable")()
	c := cl.c
	for cl.done < cl.tables {
		p.Call(c.master.rpc, createTableMsg{name: fmt.Sprintf("%s-t%d", cl.name, cl.done), regions: cl.regions, clone: cl.clone}, 10*time.Second)
		cl.done++
		p.SleepQ(cl.gap+time.Duration(p.Rand().Intn(60))*time.Millisecond, "hb.create.gap")
	}
}

// SpawnTableCreator issues table create/clone storms (the §8.3.1 t1
// condition).
func (c *Cluster) SpawnTableCreator(name string, tables, regions int, clone bool, gap time.Duration) {
	if gap == 0 {
		gap = 600 * time.Millisecond
	}
	cl := &tableCreator{c: c, name: name, tables: tables, regions: regions, clone: clone, gap: gap}
	cl.proc = c.eng.Spawn("client-"+name, name, cl.run)
	c.creators = append(c.creators, cl)
}
