package kvstore

// Checkpointable implementation: Snapshot copies every mutable Cluster
// field into plain values, Restore rebuilds an equivalent cluster on an
// engine primed from the matching sim.Checkpoint. Mailbox creation order
// must replay NewCluster's exactly -- master rpc, master pending signal,
// then per region server its rpc box and its WAL mutex token box.

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/systems/sysreg"
)

type clusterState struct {
	master  masterState
	rss     []rsState
	clients []clientState
}

type masterState struct {
	regions   map[string]string
	excluded  map[string]bool
	pending   []assignment
	balanceOK bool

	assignPID, balancerPID, rpcPID int
}

type rsState struct {
	walPending int
	walSynced  int
	walTotal   int
	lastSync   time.Duration
	replayed   int
	regions    map[string]bool

	handlerPIDs                  []int
	syncPID, flushPID, replayPID int
}

// clientState covers both client kinds: put drivers first, then table
// creators, in spawn order within each slice.
type clientState struct {
	done int
	pid  int
}

func copyStrMap[V comparable](m map[string]V) map[string]V {
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Snapshot implements sysreg.Checkpointable.
func (c *Cluster) Snapshot() any {
	m := c.master
	st := &clusterState{
		master: masterState{
			regions:     copyStrMap(m.regions),
			excluded:    copyStrMap(m.excluded),
			pending:     append([]assignment(nil), m.pending...),
			balanceOK:   m.balanceOK,
			assignPID:   m.assignProc.PID(),
			balancerPID: m.balancerProc.PID(),
			rpcPID:      m.rpcProc.PID(),
		},
	}
	for _, rs := range c.rss {
		rss := rsState{
			walPending: rs.walPending, walSynced: rs.walSynced, walTotal: rs.walTotal,
			lastSync: rs.lastSync, replayed: rs.replayed,
			regions:   copyStrMap(rs.regions),
			syncPID:   rs.syncProc.PID(),
			flushPID:  rs.flushProc.PID(),
			replayPID: -1,
		}
		if rs.replayProc != nil {
			rss.replayPID = rs.replayProc.PID()
		}
		for _, p := range rs.handlerProcs {
			rss.handlerPIDs = append(rss.handlerPIDs, p.PID())
		}
		st.rss = append(st.rss, rss)
	}
	for _, cl := range c.clients {
		st.clients = append(st.clients, clientState{done: cl.done, pid: cl.proc.PID()})
	}
	for _, cl := range c.creators {
		st.clients = append(st.clients, clientState{done: cl.done, pid: cl.proc.PID()})
	}
	return st
}

// adoptIf adopts pid with body when the checkpoint holds it as runnable;
// dead processes (crashed nodes, exited clients) are skipped.
func adoptIf(s *sim.RestoreSession, pid int, body func(p *sim.Proc)) error {
	if pid < 0 {
		return nil
	}
	if _, ok := s.ParkTag(pid); !ok {
		return nil
	}
	_, err := s.Adopt(pid, body)
	return err
}

// Restore implements sysreg.Checkpointable. The receiver is the *profile*
// cluster, used purely as a factory for immutable configuration.
func (c *Cluster) Restore(ctx *sysreg.RunContext, state any) error {
	st, ok := state.(*clusterState)
	if !ok {
		return fmt.Errorf("kvstore: snapshot type %T does not belong to this system", state)
	}
	if len(st.rss) != c.cfg.RegionServers || len(st.clients) != len(c.clients)+len(c.creators) {
		return fmt.Errorf("kvstore: snapshot shape does not match this cluster")
	}
	s := ctx.Session
	nc := &Cluster{cfg: c.cfg, eng: ctx.Engine, rt: ctx.RT}
	nc.master = newMaster(nc)
	for i := 0; i < nc.cfg.RegionServers; i++ {
		nc.rss = append(nc.rss, newRegionServer(nc, i))
	}

	m := nc.master
	ms := &st.master
	m.regions = copyStrMap(ms.regions)
	m.excluded = copyStrMap(ms.excluded)
	m.pending = append([]assignment(nil), ms.pending...)
	m.balanceOK = ms.balanceOK
	if err := adoptIf(s, ms.assignPID, m.assignmentManager); err != nil {
		return err
	}
	if err := adoptIf(s, ms.balancerPID, func(p *sim.Proc) { m.balancerLoop(p, true) }); err != nil {
		return err
	}
	if err := adoptIf(s, ms.rpcPID, m.rpcHandler); err != nil {
		return err
	}

	for i, rs := range nc.rss {
		rss := &st.rss[i]
		rs.walPending, rs.walSynced, rs.walTotal = rss.walPending, rss.walSynced, rss.walTotal
		rs.lastSync, rs.replayed = rss.lastSync, rss.replayed
		rs.regions = copyStrMap(rss.regions)
		for _, pid := range rss.handlerPIDs {
			if err := adoptIf(s, pid, rs.handlerLoop); err != nil {
				return err
			}
		}
		if err := adoptIf(s, rss.syncPID, func(p *sim.Proc) { rs.walSyncLoop(p, true) }); err != nil {
			return err
		}
		if err := adoptIf(s, rss.flushPID, func(p *sim.Proc) { rs.flushLoop(p, true) }); err != nil {
			return err
		}
		if err := adoptIf(s, rss.replayPID, rs.walReplay); err != nil {
			return err
		}
	}

	for i, src := range c.clients {
		cs := &st.clients[i]
		cl := &loadClient{c: nc, name: src.name, ops: src.ops, batch: src.batch, gap: src.gap, done: cs.done}
		nc.clients = append(nc.clients, cl)
		if err := adoptIf(s, cs.pid, cl.run); err != nil {
			return err
		}
	}
	for i, src := range c.creators {
		cs := &st.clients[len(c.clients)+i]
		cl := &tableCreator{c: nc, name: src.name, tables: src.tables, regions: src.regions, clone: src.clone, gap: src.gap, done: cs.done}
		nc.creators = append(nc.creators, cl)
		if err := adoptIf(s, cs.pid, cl.run); err != nil {
			return err
		}
	}
	return nil
}
