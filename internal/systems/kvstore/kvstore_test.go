package kvstore

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"
)

func runWorkload(t *testing.T, name string, plan inject.Plan, seed int64) *trace.Run {
	t.Helper()
	for _, w := range New().Workloads() {
		if w.Name != name {
			continue
		}
		rec := trace.NewRun(name, seed)
		rt := inject.New(plan, rec)
		eng := sim.NewEngine(sim.Options{Seed: seed})
		w.Run(&sysreg.RunContext{Engine: eng, RT: rt})
		res := eng.Run(w.Horizon)
		eng.Close()
		rec.Result = res
		return rec
	}
	t.Fatalf("unknown workload %q", name)
	return nil
}

func TestProfilesQuiet(t *testing.T) {
	noisy := []faults.ID{PtAssignIOE, PtPutIOE, PtClientIOE, PtCloneIOE}
	for _, w := range New().Workloads() {
		rec := runWorkload(t, w.Name, inject.Profile(), 7)
		for _, id := range noisy {
			if rec.Reached(id) > 0 {
				t.Errorf("%s: %s fired naturally %d times", w.Name, id, rec.Reached(id))
			}
		}
	}
}

func TestCoverage(t *testing.T) {
	rec := runWorkload(t, "create_clone_storm", inject.Profile(), 3)
	for _, id := range []faults.ID{PtDeployLoop, PtOpenLoop, PtWALSyncLoop, PtCanPlace, PtAssignIOE, PtPutLoop} {
		if !rec.Covered(id) {
			t.Errorf("create_clone_storm does not cover %s", id)
		}
	}
}

// TestRegionRetryCase reproduces the §8.3.1 mechanics step by step.
func TestRegionRetryCase(t *testing.T) {
	// t1: a delayed deployment loop on a loaded cluster times out
	// assignment RPCs.
	rec := runWorkload(t, "create_clone_storm",
		inject.Plan{Kind: inject.Delay, Target: PtDeployLoop, Delay: 4 * time.Second}, 5)
	if rec.Reached(PtAssignIOE) == 0 {
		t.Fatalf("deployment delay did not time out assignments (deploy iters=%d)", rec.LoopIters(PtDeployLoop))
	}

	// t2: injecting the assignment IOE excludes a server; with only three
	// servers the favored balancer's canPlaceFavoredNodes turns false.
	rec2 := runWorkload(t, "rs_fault_tolerance",
		inject.Plan{Kind: inject.Exception, Target: PtAssignIOE}, 5)
	if rec2.Reached(PtCanPlace) == 0 {
		t.Fatal("assignment IOE did not trip canPlaceFavoredNodes on the 3-RS cluster")
	}

	// Foil: with five servers the same injection leaves the balancer
	// healthy (the condition the compatibility machinery must respect).
	rec5 := runWorkload(t, "balancer_5rs",
		inject.Plan{Kind: inject.Exception, Target: PtAssignIOE}, 5)
	if rec5.Reached(PtCanPlace) != 0 {
		t.Fatal("balancer negation fired on the 5-RS cluster")
	}

	// t3: negating the balancer check makes the assignment manager retry
	// blindly, inflating the deployment loop.
	prof := runWorkload(t, "balancer_long", inject.Profile(), 5)
	rec3 := runWorkload(t, "balancer_long",
		inject.Plan{Kind: inject.Negate, Target: PtCanPlace}, 5)
	if rec3.LoopIters(PtDeployLoop) <= 2*prof.LoopIters(PtDeployLoop) {
		t.Fatalf("balancer negation caused no deployment retry storm: %d vs %d",
			rec3.LoopIters(PtDeployLoop), prof.LoopIters(PtDeployLoop))
	}
}

// TestWALReplayCase reproduces the HBASE-1 mechanics.
func TestWALReplayCase(t *testing.T) {
	// A delayed replay loop holds the WAL lock, so sync lags and the
	// reader observes premature end-of-file naturally.
	rec := runWorkload(t, "wal_replay",
		inject.Plan{Kind: inject.Delay, Target: PtWALReplayLoop, Delay: 2 * time.Second}, 5)
	if rec.Reached(PtWALComplete) == 0 {
		t.Fatalf("replay delay did not surface premature EOF (replay iters=%d)", rec.LoopIters(PtWALReplayLoop))
	}

	// Negating the completeness check makes the reader retry forever.
	prof := runWorkload(t, "wal_quiet", inject.Profile(), 5)
	rec2 := runWorkload(t, "wal_quiet",
		inject.Plan{Kind: inject.Negate, Target: PtWALComplete}, 5)
	if rec2.LoopIters(PtWALReplayLoop) <= 2*prof.LoopIters(PtWALReplayLoop) {
		t.Fatalf("completeness negation caused no replay storm: %d vs %d",
			rec2.LoopIters(PtWALReplayLoop), prof.LoopIters(PtWALReplayLoop))
	}
}

func TestDeterminism(t *testing.T) {
	a := runWorkload(t, "put_heavy", inject.Profile(), 11)
	b := runWorkload(t, "put_heavy", inject.Profile(), 11)
	if a.Result.Events != b.Result.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Result.Events, b.Result.Events)
	}
}
