package kvstore

import (
	"time"

	"repro/internal/faults"
	"repro/internal/systems/sysreg"
)

type sysImpl struct{}

// New returns the HBase-like target system.
func New() sysreg.System { return sysImpl{} }

func init() { sysreg.Register("HBase", New, "hbase") }

func (sysImpl) Name() string             { return "HBase" }
func (sysImpl) Points() []faults.Point   { return points() }
func (sysImpl) Nests() []faults.LoopNest { return nil }
func (sysImpl) SourceDirs() []string     { return []string{"internal/systems/kvstore"} }

func wl(name, desc string, horizon time.Duration, cfg Config, scenario func(c *Cluster)) sysreg.Workload {
	return sysreg.Workload{
		Name:    name,
		Desc:    desc,
		Horizon: horizon,
		Run: func(ctx *sysreg.RunContext) {
			c := NewCluster(ctx, cfg)
			scenario(c)
			ctx.Ckpt = c
		},
	}
}

func (sysImpl) Workloads() []sysreg.Workload {
	return []sysreg.Workload{
		wl("basic_put", "steady puts on three servers", 30*time.Second,
			Config{},
			func(c *Cluster) {
				c.SpawnLoadClient("c1", 40, 3, 0)
			}),
		wl("create_clone_storm", "table create/clone storm on a loaded 3-RS cluster (§8.3.1 t1)", 50*time.Second,
			Config{Favored: true},
			func(c *Cluster) {
				c.SpawnTableCreator("adm", 8, 4, true, 400*time.Millisecond)
				c.SpawnLoadClient("c1", 60, 6, 120*time.Millisecond)
				c.SpawnLoadClient("c2", 60, 6, 140*time.Millisecond)
			}),
		wl("rs_fault_tolerance", "RS fault-tolerance test with the favored balancer and 3 nodes (§8.3.1 t2)", 40*time.Second,
			Config{Favored: true, RegionServers: 3},
			func(c *Cluster) {
				c.SpawnTableCreator("adm", 3, 3, false, 800*time.Millisecond)
				c.SpawnLoadClient("c1", 30, 3, 0)
			}),
		wl("balancer_long", "long balancer soak with the favored balancer (§8.3.1 t3)", 80*time.Second,
			Config{Favored: true, RegionServers: 3},
			func(c *Cluster) {
				c.SpawnTableCreator("adm", 6, 3, false, 1200*time.Millisecond)
				c.SpawnLoadClient("c1", 80, 4, 300*time.Millisecond)
			}),
		wl("balancer_5rs", "favored balancer with five servers (condition foil)", 50*time.Second,
			Config{Favored: true, RegionServers: 5},
			func(c *Cluster) {
				c.SpawnTableCreator("adm", 4, 3, false, time.Second)
				c.SpawnLoadClient("c1", 40, 3, 0)
			}),
		wl("wal_replay", "WAL replay reader racing an active writer", 50*time.Second,
			Config{Replay: true},
			func(c *Cluster) {
				c.SpawnLoadClient("c1", 70, 8, 120*time.Millisecond)
				c.SpawnLoadClient("c2", 70, 8, 150*time.Millisecond)
			}),
		wl("wal_quiet", "WAL replay over a quiescent log", 40*time.Second,
			Config{Replay: true},
			func(c *Cluster) {
				c.SpawnLoadClient("c1", 8, 2, 1500*time.Millisecond)
			}),
		wl("put_heavy", "saturating put load", 40*time.Second,
			Config{},
			func(c *Cluster) {
				for i := 0; i < 4; i++ {
					c.SpawnLoadClient(string(rune('a'+i))+"cli", 70, 8, 100*time.Millisecond)
				}
			}),
		wl("simple_balancer", "default balancer control workload", 40*time.Second,
			Config{Favored: false},
			func(c *Cluster) {
				c.SpawnTableCreator("adm", 5, 3, false, 800*time.Millisecond)
				c.SpawnLoadClient("c1", 40, 4, 0)
			}),
		wl("quiet_baseline", "near-idle cluster", 20*time.Second,
			Config{},
			func(c *Cluster) {
				c.SpawnLoadClient("c1", 6, 1, time.Second)
			}),
	}
}

func (sysImpl) Bugs() []sysreg.Bug {
	return []sysreg.Bug{
		{
			ID: "HBASE-1", JIRA: "HBASE-29600", Title: "Write ahead log (WAL)",
			CoreFaults: []faults.ID{PtWALReplayLoop, PtWALComplete},
			Delays:     1, Negations: 1, SingleTest: true,
		},
		{
			ID: "HBASE-2", JIRA: "HBASE-29006", Title: "Region assignment",
			CoreFaults: []faults.ID{PtDeployLoop, PtAssignIOE},
			Delays:     1, Exceptions: 1, Negations: 1,
		},
	}
}
