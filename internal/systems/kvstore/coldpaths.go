package kvstore

import (
	"sort"

	"repro/internal/sim"
)

// Cold instrumented paths corresponding to the filtered point categories;
// see the matching file in internal/systems/dfs for rationale.

func (c *Cluster) authenticate(p *sim.Proc, token string) error {
	defer c.rt.Fn(p, "authenticate")()
	return c.rt.Err(p, PtSecAuthExc, token == "", "authentication failed")
}

func (c *Cluster) loadCoprocessor(p *sim.Proc, name string) error {
	defer c.rt.Fn(p, "loadCoprocessor")()
	return c.rt.Err(p, PtReflExc, name == "", "coprocessor class not found")
}

func (m *master) initMaster(p *sim.Proc) {
	defer m.c.rt.Fn(p, "initMaster")()
	for i := 0; i < 2; i++ {
		m.c.rt.Loop(p, PtInitLoop)
	}
}

func (c *Cluster) favoredEnabled(p *sim.Proc) bool {
	defer c.rt.Fn(p, "favoredEnabled")()
	return c.rt.Negate(p, PtConfFavored, c.cfg.Favored, false)
}

func (c *Cluster) isSorted(p *sim.Proc, xs []int) bool {
	defer c.rt.Fn(p, "isSorted")()
	return c.rt.Negate(p, PtUtilIsSorted, sort.IntsAreSorted(xs), false)
}

func (c *Cluster) traceEnabled(p *sim.Proc) bool {
	defer c.rt.Fn(p, "traceEnabled")()
	return c.rt.Negate(p, PtTraceEnabled, false, false)
}

// serverMonitor hosts the RS liveness detector used by the master; it is
// consulted rarely in this reproduction but registered as a negation
// point.
func (m *master) serverMonitor(p *sim.Proc, rs string) bool {
	defer m.c.rt.Fn(p, "serverMonitor")()
	return m.c.rt.Negate(p, PtRSAlive, !m.c.eng.Crashed(rs), false)
}

// procWAL models the master's procedure-WAL compaction loop.
func (m *master) procWAL(p *sim.Proc, entries int) {
	defer m.c.rt.Fn(p, "procWAL")()
	for i := 0; i < entries; i++ {
		m.c.rt.Loop(p, PtProcWALLoop)
		p.Work(walAppendCost)
	}
}
