package stream

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"
)

func runWorkload(t *testing.T, name string, plan inject.Plan, seed int64) *trace.Run {
	t.Helper()
	for _, w := range New().Workloads() {
		if w.Name != name {
			continue
		}
		rec := trace.NewRun(name, seed)
		rt := inject.New(plan, rec)
		eng := sim.NewEngine(sim.Options{Seed: seed})
		w.Run(&sysreg.RunContext{Engine: eng, RT: rt})
		rec.Result = eng.Run(w.Horizon)
		eng.Close()
		return rec
	}
	t.Fatalf("unknown workload %q", name)
	return nil
}

func TestProfilesQuiet(t *testing.T) {
	noisy := []faults.ID{PtHeadFailIOE, PtSinkCancel, PtBarrierIOE, PtStateTransFail, PtEmitIOE}
	for _, w := range New().Workloads() {
		rec := runWorkload(t, w.Name, inject.Profile(), 7)
		for _, id := range noisy {
			if rec.Reached(id) > 0 {
				t.Errorf("%s: %s fired naturally %d times", w.Name, id, rec.Reached(id))
			}
		}
	}
}

func TestWorkerDelayTriggersHeadFailure(t *testing.T) {
	rec := runWorkload(t, "heavy_records",
		inject.Plan{Kind: inject.Delay, Target: PtWorkerLoop, Delay: 2 * time.Second}, 5)
	if rec.Reached(PtHeadFailIOE) == 0 {
		t.Fatalf("worker delay did not fail the head task (worker iters=%d)", rec.LoopIters(PtWorkerLoop))
	}
	if rec.Reached(PtSinkCancel) == 0 {
		t.Fatal("head failure did not cancel the sink")
	}
}

func TestInjectedHeadFailureCausesRestartReplay(t *testing.T) {
	prof := runWorkload(t, "restart_soak", inject.Profile(), 5)
	rec := runWorkload(t, "restart_soak",
		inject.Plan{Kind: inject.Exception, Target: PtHeadFailIOE}, 5)
	if rec.LoopIters(PtWorkerLoop) <= prof.LoopIters(PtWorkerLoop) {
		t.Fatalf("no replay growth: %d <= %d", rec.LoopIters(PtWorkerLoop), prof.LoopIters(PtWorkerLoop))
	}
	if rec.LoopIters(PtDeployLoop) <= prof.LoopIters(PtDeployLoop) {
		t.Fatalf("no redeploy: %d <= %d", rec.LoopIters(PtDeployLoop), prof.LoopIters(PtDeployLoop))
	}
}

func TestAggDelayTimesOutBarrier(t *testing.T) {
	rec := runWorkload(t, "ckpt_tight",
		inject.Plan{Kind: inject.Delay, Target: PtAggLoop, Delay: time.Second}, 5)
	if rec.Reached(PtBarrierIOE) == 0 {
		t.Fatalf("agg delay did not time out barriers (agg iters=%d)", rec.LoopIters(PtAggLoop))
	}
}

func TestInjectedBarrierFailureRestarts(t *testing.T) {
	prof := runWorkload(t, "checkpointed", inject.Profile(), 5)
	rec := runWorkload(t, "checkpointed",
		inject.Plan{Kind: inject.Exception, Target: PtBarrierIOE}, 5)
	if rec.LoopIters(PtAggLoop) <= prof.LoopIters(PtAggLoop) {
		t.Fatalf("no agg replay growth: %d <= %d", rec.LoopIters(PtAggLoop), prof.LoopIters(PtAggLoop))
	}
}

func TestDeterminism(t *testing.T) {
	a := runWorkload(t, "heavy_records", inject.Profile(), 11)
	b := runWorkload(t, "heavy_records", inject.Profile(), 11)
	if a.Result.Events != b.Result.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Result.Events, b.Result.Events)
	}
}
