package stream

import "repro/internal/sim"

// Cold instrumented paths for the filtered point categories; see the
// matching file in internal/systems/dfs for rationale.

func (c *Cluster) loadUDF(p *sim.Proc, name string) error {
	defer c.rt.Fn(p, "loadUDF")()
	return c.rt.Err(p, PtReflExc, name == "", "udf class not found")
}

func (jm *jobManager) initJM(p *sim.Proc) {
	defer jm.c.rt.Fn(p, "initJM")()
	for i := 0; i < 2; i++ {
		jm.c.rt.Loop(p, PtInitLoop)
	}
}

func (c *Cluster) haEnabled(p *sim.Proc) bool {
	defer c.rt.Fn(p, "haEnabled")()
	return c.rt.Negate(p, PtConfHA, false, false)
}

func (c *Cluster) debugEnabled(p *sim.Proc) bool {
	defer c.rt.Fn(p, "debugEnabled")()
	return c.rt.Negate(p, PtDbgEnabled, false, false)
}

// cancelDownstream hosts the sink-cancellation throw point name expected
// by the analyzer (the live call sits in taskMonitor).
func (jm *jobManager) cancelDownstream(p *sim.Proc) error {
	defer jm.c.rt.Fn(p, "cancelDownstream")()
	return nil
}
