// Package stream is a Flink-like dataflow engine on the deterministic
// simulator: a JobManager deploying source->agg->sink pipelines onto task
// workers, checkpoint barriers with an alignment deadline, task heartbeat
// monitoring, and a full-restart recovery strategy.
//
// It reproduces the two Flink rows of Table 3: the task-worker restart
// loop (FLINK-1: head task failure cancels the sink, the restart redeploys
// everything, redeployment loads the workers that caused the failure) and
// the aggregation/barrier feedback (FLINK-2).
package stream

import (
	"time"

	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
)

// Injection/monitor points.
const (
	PtWorkerLoop  faults.ID = "flink.tm.worker_loop"
	PtAggLoop     faults.ID = "flink.tm.agg_loop"
	PtSinkLoop    faults.ID = "flink.tm.sink_loop"
	PtDeployLoop  faults.ID = "flink.jm.deploy_loop"
	PtBarrierLoop faults.ID = "flink.jm.barrier_loop"
	PtEmitLoop    faults.ID = "flink.client.emit_loop"
	PtInitLoop    faults.ID = "flink.jm.init_loop" // const-bound: filtered

	PtHeadFailIOE    faults.ID = "flink.jm.head_task_fail"
	PtSinkCancel     faults.ID = "flink.jm.sink_cancel"
	PtBarrierIOE     faults.ID = "flink.jm.barrier_timeout"
	PtStateTransFail faults.ID = "flink.tm.state_transition_fail"
	PtEmitIOE        faults.ID = "flink.client.emit_ioe"
	PtReflExc        faults.ID = "flink.refl.udf_load_exc" // filtered

	PtTaskHealthy  faults.ID = "flink.jm.task.is_healthy"
	PtCkptComplete faults.ID = "flink.jm.ckpt.is_complete"
	PtConfHA       faults.ID = "flink.conf.ha_enabled"   // config-only: filtered
	PtDbgEnabled   faults.ID = "flink.log.debug_enabled" // const return: filtered
)

func points() []faults.Point {
	sys := "Flink"
	return []faults.Point{
		{ID: PtWorkerLoop, Kind: faults.Loop, System: sys, Func: "taskWorker", BodySize: 80, HasIO: true, Desc: "per-record task worker loop"},
		{ID: PtAggLoop, Kind: faults.Loop, System: sys, Func: "aggTask", BodySize: 60, HasIO: false},
		{ID: PtSinkLoop, Kind: faults.Loop, System: sys, Func: "sinkTask", BodySize: 45, HasIO: true},
		{ID: PtDeployLoop, Kind: faults.Loop, System: sys, Func: "deployJob", BodySize: 50, HasIO: true},
		{ID: PtBarrierLoop, Kind: faults.Loop, System: sys, Func: "checkpointCoordinator", BodySize: 40},
		{ID: PtEmitLoop, Kind: faults.Loop, System: sys, Func: "clientEmit", BodySize: 20, HasIO: true},
		{ID: PtInitLoop, Kind: faults.Loop, System: sys, Func: "initJM", BodySize: 5, ConstBound: true},

		{ID: PtHeadFailIOE, Kind: faults.Throw, System: sys, Func: "taskMonitor", Desc: "head task declared failed"},
		{ID: PtSinkCancel, Kind: faults.Throw, System: sys, Func: "cancelDownstream", Desc: "sink task cancellation"},
		{ID: PtBarrierIOE, Kind: faults.Throw, System: sys, Func: "checkpointCoordinator", Desc: "barrier alignment timeout"},
		{ID: PtStateTransFail, Kind: faults.Throw, System: sys, Func: "deployJob", Desc: "task state transition failed"},
		{ID: PtEmitIOE, Kind: faults.Throw, System: sys, Func: "clientEmit", Desc: "emit rejected"},
		{ID: PtReflExc, Kind: faults.Throw, System: sys, Func: "loadUDF", Category: faults.ExcReflection},

		{ID: PtTaskHealthy, Kind: faults.Negation, System: sys, Func: "taskMonitor", Desc: "task heartbeat health check"},
		{ID: PtCkptComplete, Kind: faults.Negation, System: sys, Func: "checkpointCoordinator", Desc: "checkpoint completeness check"},
		{ID: PtConfHA, Kind: faults.Negation, System: sys, Func: "haEnabled", ConfigOnly: true},
		{ID: PtDbgEnabled, Kind: faults.Negation, System: sys, Func: "debugEnabled", ConstReturn: true},
	}
}

// Config shapes a job.
type Config struct {
	Workers        int           // task managers (default 2)
	Records        int           // records per source burst (default 30)
	Bursts         int           // source bursts (default 6)
	Checkpoints    bool          // run the checkpoint coordinator
	BarrierTimeout time.Duration // default 6s
	TaskTimeout    time.Duration // task heartbeat timeout (default 10s)
	RestartLimit   int           // max full restarts (default unbounded)
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Records == 0 {
		c.Records = 30
	}
	if c.Bursts == 0 {
		c.Bursts = 6
	}
	if c.BarrierTimeout == 0 {
		c.BarrierTimeout = 6 * time.Second
	}
	if c.TaskTimeout == 0 {
		c.TaskTimeout = 10 * time.Second
	}
	return c
}

const (
	recordCost   = 15 * time.Millisecond
	aggCost      = 10 * time.Millisecond
	sinkCost     = 8 * time.Millisecond
	deployCost   = 200 * time.Millisecond
	ckptEvery    = 2 * time.Second
	monitorEvery = time.Second
	restartPause = 500 * time.Millisecond
)

// Cluster is one simulated Flink deployment running a single job.
type Cluster struct {
	cfg Config
	eng *sim.Engine
	rt  *inject.Runtime

	jm       *jobManager
	inputQ   *sim.Mailbox // source input
	aggQ     *sim.Mailbox
	sinkQ    *sim.Mailbox
	sinkDone int

	epoch     int // incremented on every restart; stale tasks exit
	lastAlive time.Duration
	processed int // records fully processed since last restart
	replayLow int // records to replay after restart
}

// NewCluster builds and starts the job.
func NewCluster(ctx *sysreg.RunContext, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, eng: ctx.Engine, rt: ctx.RT}
	c.inputQ = c.eng.NewMailbox("tm0", "input")
	c.aggQ = c.eng.NewMailbox("tm1", "agg")
	c.sinkQ = c.eng.NewMailbox("tm1", "sink")
	c.jm = &jobManager{c: c, node: "jm"}
	c.jm.start()
	return c
}

type jobManager struct {
	c    *Cluster
	node string
}

func (jm *jobManager) start() {
	jm.c.eng.Spawn(jm.node, "deployJob", func(p *sim.Proc) { jm.deploy(p, 1) })
	jm.c.eng.Spawn(jm.node, "taskMonitor", jm.taskMonitor)
	if jm.c.cfg.Checkpoints {
		jm.c.eng.Spawn(jm.node, "checkpointCoordinator", jm.checkpointCoordinator)
	}
}

// deploy (re)starts the pipeline tasks for a new epoch. Every restart
// replays unacknowledged records into the source -- the feedback that lets
// restart storms sustain themselves.
func (jm *jobManager) deploy(p *sim.Proc, epoch int) {
	defer p.Enter("deployJob")()
	rt := jm.c.rt
	c := jm.c
	c.epoch = epoch
	tasks := []string{"source", "agg", "sink"}
	for _, task := range tasks {
		rt.Loop(p, PtDeployLoop)
		p.Work(deployCost)
		// A deployment racing an undead prior epoch fails its state
		// transition and forces another full restart.
		if rt.Guard(p, PtStateTransFail, false) {
			jm.scheduleRestart(p, epoch)
			return
		}
		switch task {
		case "source":
			c.eng.Spawn("tm0", "taskWorker", func(tp *sim.Proc) { c.sourceTask(tp, epoch) })
		case "agg":
			c.eng.Spawn("tm1", "aggTask", func(tp *sim.Proc) { c.aggTask(tp, epoch) })
		case "sink":
			c.eng.Spawn("tm1", "sinkTask", func(tp *sim.Proc) { c.sinkTask(tp, epoch) })
		}
	}
	c.lastAlive = p.Now()
	// Replay unacknowledged records.
	if c.replayLow > 0 {
		for i := 0; i < c.replayLow; i++ {
			p.Send(c.inputQ, record{epoch: epoch})
		}
	}
}

func (jm *jobManager) scheduleRestart(p *sim.Proc, failedEpoch int) {
	c := jm.c
	if c.epoch != failedEpoch {
		return // a newer epoch is already (re)starting
	}
	if c.cfg.RestartLimit > 0 && failedEpoch >= c.cfg.RestartLimit {
		return
	}
	c.epoch = failedEpoch + 1
	c.replayLow = c.processed/2 + 4 // conservative replay window
	c.processed = 0
	next := c.epoch
	c.eng.After(restartPause, func() {
		c.eng.Spawn(jm.node, "deployJob", func(np *sim.Proc) { jm.deploy(np, next) })
	})
}

// taskMonitor watches task liveness: a silent pipeline head is declared
// failed, the sink is cancelled, and the job restarts -- FLINK-1.
func (jm *jobManager) taskMonitor(p *sim.Proc) {
	defer p.Enter("taskMonitor")()
	rt := jm.c.rt
	c := jm.c
	for {
		p.Sleep(monitorEvery + time.Duration(p.Rand().Intn(40))*time.Millisecond)
		healthy := rt.Negate(p, PtTaskHealthy, p.Now()-c.lastAlive <= c.cfg.TaskTimeout, false)
		if rt.Guard(p, PtHeadFailIOE, !healthy) {
			if rt.Guard(p, PtSinkCancel, true) {
				// Cancelling the sink drops its in-flight batch.
				c.sinkDone -= c.sinkDone / 4
			}
			jm.scheduleRestart(p, c.epoch)
			c.lastAlive = p.Now() // restart grace
		}
	}
}

// checkpointCoordinator runs periodic barrier alignments; a barrier that
// misses its deadline aborts the checkpoint and restarts the job -- the
// FLINK-2 feedback.
func (jm *jobManager) checkpointCoordinator(p *sim.Proc) {
	defer p.Enter("checkpointCoordinator")()
	rt := jm.c.rt
	c := jm.c
	for {
		p.Sleep(ckptEvery + time.Duration(p.Rand().Intn(50))*time.Millisecond)
		rt.Loop(p, PtBarrierLoop)
		// The barrier aligns when the agg queue drains within the
		// deadline.
		start := p.Now()
		aligned := true
		for c.aggQ.Len()+c.sinkQ.Len() > 0 {
			if p.Now()-start > c.cfg.BarrierTimeout {
				aligned = false
				break
			}
			p.Sleep(100 * time.Millisecond)
		}
		complete := rt.Negate(p, PtCkptComplete, aligned, false)
		if rt.Guard(p, PtBarrierIOE, !complete) {
			jm.scheduleRestart(p, c.epoch)
			c.lastAlive = p.Now()
		}
	}
}

type record struct{ epoch int }

// sourceTask forwards input records to the aggregator. Liveness is
// reported when the task is CAUGHT UP (its input queue drained) or idle;
// a task grinding through a standing backlog reports nothing and is
// eventually declared failed -- the head-task health semantics FLINK-1
// exploits.
func (c *Cluster) sourceTask(p *sim.Proc, epoch int) {
	defer p.Enter("taskWorker")()
	rt := c.rt
	for {
		m, ok := p.Recv(c.inputQ, time.Second)
		if c.epoch != epoch {
			return
		}
		if !ok {
			c.lastAlive = p.Now() // idle is healthy
			continue
		}
		rt.Loop(p, PtWorkerLoop)
		p.Work(recordCost)
		if c.inputQ.Len() == 0 {
			c.lastAlive = p.Now() // caught up
		}
		p.Send(c.aggQ, m)
	}
}

// aggTask aggregates and forwards to the sink.
func (c *Cluster) aggTask(p *sim.Proc, epoch int) {
	defer p.Enter("aggTask")()
	rt := c.rt
	for {
		m, ok := p.Recv(c.aggQ, -1)
		if !ok || c.epoch != epoch {
			return
		}
		rt.Loop(p, PtAggLoop)
		p.Work(aggCost)
		p.Send(c.sinkQ, m)
	}
}

// sinkTask commits results.
func (c *Cluster) sinkTask(p *sim.Proc, epoch int) {
	defer p.Enter("sinkTask")()
	rt := c.rt
	for {
		_, ok := p.Recv(c.sinkQ, -1)
		if !ok || c.epoch != epoch {
			return
		}
		rt.Loop(p, PtSinkLoop)
		p.Work(sinkCost)
		c.sinkDone++
		c.processed++
	}
}

// SpawnSource drives record bursts into the pipeline.
func (c *Cluster) SpawnSource(name string, start time.Duration) {
	c.eng.Spawn("client-"+name, name, func(p *sim.Proc) {
		defer p.Enter("clientEmit")()
		rt := c.rt
		if start > 0 {
			p.Sleep(start)
		}
		for b := 0; b < c.cfg.Bursts; b++ {
			for i := 0; i < c.cfg.Records; i++ {
				rt.Loop(p, PtEmitLoop)
				if rt.Guard(p, PtEmitIOE, c.inputQ.Len() > 400) {
					continue // backpressure drop
				}
				p.Send(c.inputQ, record{})
			}
			p.Sleep(2*time.Second + time.Duration(p.Rand().Intn(100))*time.Millisecond)
		}
	})
}

type sysImpl struct{}

// New returns the Flink-like target system.
func New() sysreg.System { return sysImpl{} }

func init() { sysreg.Register("Flink", New, "flink") }

func (sysImpl) Name() string             { return "Flink" }
func (sysImpl) Points() []faults.Point   { return points() }
func (sysImpl) Nests() []faults.LoopNest { return nil }
func (sysImpl) SourceDirs() []string     { return []string{"internal/systems/stream"} }

func wl(name, desc string, horizon time.Duration, cfg Config, scenario func(c *Cluster)) sysreg.Workload {
	return sysreg.Workload{
		Name: name, Desc: desc, Horizon: horizon,
		Run: func(ctx *sysreg.RunContext) {
			c := NewCluster(ctx, cfg)
			scenario(c)
		},
	}
}

func (sysImpl) Workloads() []sysreg.Workload {
	return []sysreg.Workload{
		wl("steady_job", "steady record flow", 30*time.Second, Config{},
			func(c *Cluster) { c.SpawnSource("s1", 0) }),
		wl("heavy_records", "record-heavy job loading the head task", 45*time.Second,
			Config{Records: 55, Bursts: 8},
			func(c *Cluster) {
				c.SpawnSource("s1", 0)
				c.SpawnSource("s2", 900*time.Millisecond)
			}),
		wl("restart_soak", "restart-strategy soak (failures replay records)", 60*time.Second,
			Config{Records: 40, Bursts: 10},
			func(c *Cluster) { c.SpawnSource("s1", 0) }),
		wl("checkpointed", "checkpointed job with barrier alignment", 50*time.Second,
			Config{Checkpoints: true, Records: 40, Bursts: 8},
			func(c *Cluster) { c.SpawnSource("s1", 0) }),
		wl("ckpt_tight", "tight barrier deadline under load", 60*time.Second,
			Config{Checkpoints: true, BarrierTimeout: 3 * time.Second, Records: 60, Bursts: 10},
			func(c *Cluster) {
				c.SpawnSource("s1", 0)
				c.SpawnSource("s2", time.Second)
			}),
		wl("quiet_baseline", "near-idle job", 20*time.Second, Config{Records: 5, Bursts: 2},
			func(c *Cluster) { c.SpawnSource("s1", 0) }),
	}
}

func (sysImpl) Bugs() []sysreg.Bug {
	return []sysreg.Bug{
		{
			ID: "FLINK-1", JIRA: "FLINK-38367", Title: "Task worker",
			CoreFaults: []faults.ID{PtWorkerLoop, PtHeadFailIOE},
			Delays:     1, Exceptions: 2,
		},
		{
			ID: "FLINK-2", JIRA: "FLINK-38368", Title: "Aggregation task",
			CoreFaults: []faults.ID{PtAggLoop, PtBarrierIOE},
			Delays:     1, Exceptions: 2,
		},
	}
}
