// Package sysreg defines the contract between CSnake and its target
// systems, and the global registry that binaries resolve them from.
//
// A System exposes its instrumented fault points, loop nesting,
// integration-test workloads, source directories (for the static
// analyzer's cross-check), and ground-truth bug labels used by the
// evaluation (Tables 3 and 4). Space builds the filtered fault space F
// from a system's declared points.
//
// System packages self-register a factory in init() under a canonical
// display name plus CLI aliases:
//
//	func init() { sysreg.Register("HBase", New, "hbase") }
//
// Binaries blank-import the system packages they want available and
// resolve by any accepted name: Lookup returns (System, bool); Resolve
// returns an error that lists every known name and suggests the closest
// match on a miss. Registration stores factories rather than instances,
// so every Lookup hands out an independent value; claiming a name that
// already resolves to a different system panics at init() time.
package sysreg

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
)

// RunContext is handed to a workload: the simulator instance to build the
// cluster on and the injection runtime the instrumented system code calls.
type RunContext struct {
	Engine *sim.Engine
	RT     *inject.Runtime

	// Ckpt is set by a workload's Run when the cluster it built supports
	// checkpoint/restore (prefix-sharing forks). Workloads that leave it
	// nil silently fall back to from-scratch execution for every injected
	// run; nothing else changes.
	Ckpt Checkpointable

	// Session is non-nil only while the harness is rebuilding a cluster
	// from a checkpoint: Checkpointable.Restore adopts its processes
	// through it. Workload Run functions never see it.
	Session *sim.RestoreSession
}

// Checkpointable is the opt-in contract for prefix-sharing simulation: a
// built workload cluster that can capture its own mutable state and
// rebuild an equivalent cluster on a fresh engine restored from a
// sim.Checkpoint taken at the same instant.
//
// Snapshot returns a self-contained copy of the cluster's mutable Go
// state (counters, role assignments, queues mirrored in struct fields,
// process pids and park tags). It is called between Engine.Run calls at
// the same quiescent instant as Engine.Checkpoint, and must not mutate
// the cluster.
//
// Restore is called on the *profile* cluster instance -- acting as a
// factory carrying immutable configuration -- with a RunContext whose
// Engine is a fresh engine primed by Checkpoint.RestoreInto and whose
// Session is the open restore session. It must rebuild the cluster:
// re-create every mailbox in the original creation order, adopt every
// runnable process via ctx.Session.Adopt with bodies bound to ctx.RT
// (the forked run's injection runtime, not the profile's), and restore
// struct state from the snapshot. The harness calls Session.Finish
// afterwards; Restore must not Spawn, Send, or schedule anything.
type Checkpointable interface {
	Snapshot() any
	Restore(ctx *RunContext, state any) error
}

// Workload is one integration test shipped with a target system. Run sets
// up the cluster and client processes; the harness then drives the engine
// until Horizon.
type Workload struct {
	Name string
	Desc string
	// Horizon is the virtual-time budget of the test.
	Horizon time.Duration
	// Run builds the scenario. It must not call Engine.Run itself.
	Run func(ctx *RunContext)
}

// Bug is a ground-truth self-sustaining cascading failure seeded in a
// target system, mirroring one Table 3 row.
type Bug struct {
	// ID is the per-system index, e.g. "HDFS2-6".
	ID string
	// JIRA is the upstream issue the paper reported (for documentation).
	JIRA string
	// Title summarises the delayed task, Table 3 column 2.
	Title string
	// CoreFaults must all appear among a detected cycle's faults for the
	// cycle to be labelled as this bug.
	CoreFaults []faults.ID
	// Delays/Exceptions/Negations are the expected cycle composition
	// (Table 3 "Cycle" column).
	Delays, Exceptions, Negations int
	// SingleTest marks bugs whose triggering conditions co-occur in one
	// workload, i.e. the §8.2 naive strategy can find them ("Alt?").
	SingleTest bool
	// Duplicate marks a bug also present in a sibling system variant
	// (the HDFS 2 bugs rediscovered on HDFS 3); Table 3 skips them and
	// Table 4 footnotes them.
	Duplicate bool
}

// System is a CSnake target.
type System interface {
	// Name is the display name used in tables (e.g. "HDFS 2").
	Name() string
	// Points lists every instrumented injection/monitor point, before
	// filtering. The static analyzer cross-checks this inventory.
	Points() []faults.Point
	// Nests lists loop nesting relations for the ICFG/CFG edges.
	Nests() []faults.LoopNest
	// Workloads lists the integration tests.
	Workloads() []Workload
	// Bugs lists the seeded ground-truth cascading failures.
	Bugs() []Bug
	// SourceDirs names the Go package directories (relative to the repo
	// root) holding this system's instrumented source, for the static
	// analyzer.
	SourceDirs() []string
}

// Space builds the filtered fault space of a system.
func Space(s System) *faults.Space {
	return faults.NewSpace(s.Points(), s.Nests())
}

// Factory constructs a fresh System instance. Registration stores
// factories rather than instances so that package init stays cheap and
// every Lookup hands out an independent value.
type Factory func() System

type entry struct {
	name    string
	factory Factory
}

var (
	regMu   sync.Mutex
	regged  = map[string]*entry{} // canonical name -> entry
	aliases = map[string]string{} // alias (and canonical name) -> canonical name
)

// Register adds a system factory to the global registry under its
// canonical display name plus any CLI aliases (e.g. "HDFS 2" with alias
// "hdfs2"). System packages call this from init(); re-registering a name
// replaces the previous entry (its existing aliases keep pointing at it).
// Claiming a name or alias that already resolves to a *different* system
// panics: a silent hijack of another system's name is always a
// programming error, and init()-time is the moment to hear about it.
func Register(name string, factory Factory, names ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, a := range append([]string{name}, names...) {
		if canon, taken := aliases[a]; taken && canon != name {
			panic(fmt.Sprintf("sysreg: alias %q for system %q already registered for system %q", a, name, canon))
		}
	}
	regged[name] = &entry{name: name, factory: factory}
	aliases[name] = name
	for _, a := range names {
		aliases[a] = name
	}
}

// All constructs one instance of every registered system, sorted by
// canonical name.
func All() []System {
	regMu.Lock()
	factories := make([]Factory, 0, len(regged))
	names := make([]string, 0, len(regged))
	for n := range regged {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		factories = append(factories, regged[n].factory)
	}
	regMu.Unlock()
	out := make([]System, 0, len(factories))
	for _, f := range factories {
		out = append(out, f())
	}
	return out
}

// Names returns the sorted canonical names of all registered systems.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(regged))
	for n := range regged {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Aliases returns every name Lookup accepts (canonical names and
// aliases), sorted.
func Aliases() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(aliases))
	for a := range aliases {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// AliasesOf returns the sorted aliases registered for a canonical name,
// excluding the name itself. Unknown names yield nil.
func AliasesOf(name string) []string {
	regMu.Lock()
	defer regMu.Unlock()
	var out []string
	for a, canon := range aliases {
		if canon == name && a != name {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Lookup constructs the system registered under a canonical name or
// alias.
func Lookup(name string) (System, bool) {
	regMu.Lock()
	canon, ok := aliases[name]
	var f Factory
	if ok {
		f = regged[canon].factory
	}
	regMu.Unlock()
	if !ok {
		return nil, false
	}
	return f(), true
}

// Resolve is Lookup with a self-explanatory failure: the error of an
// unknown name suggests the closest registered name (case-insensitive,
// small edit distance) and always lists everything Lookup would accept.
func Resolve(name string) (System, error) {
	if sys, ok := Lookup(name); ok {
		return sys, nil
	}
	known := Aliases()
	msg := fmt.Sprintf("unknown system %q", name)
	if s := closest(name, known); s != "" {
		msg += fmt.Sprintf(" (did you mean %q?)", s)
	}
	return nil, fmt.Errorf("%s; known systems: %s", msg, strings.Join(known, ", "))
}

// closest returns the candidate within a small edit distance of name,
// case-insensitively; "" when nothing is plausibly a typo.
func closest(name string, candidates []string) string {
	best, bestDist := "", 3 // accept at most two edits
	lower := strings.ToLower(name)
	for _, c := range candidates {
		if d := editDistance(lower, strings.ToLower(c)); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is plain Levenshtein over bytes; the inputs are short
// registry names, so the quadratic table is irrelevant.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
