package sysreg_test

import (
	"testing"

	"repro/internal/core/csnake"
	"repro/internal/systems/sysreg"

	_ "repro/internal/systems/dfs"
	_ "repro/internal/systems/kvstore"
	_ "repro/internal/systems/metastore"
	_ "repro/internal/systems/objstore"
	_ "repro/internal/systems/stream"
)

// TestEveryRegisteredSystemRoundTripsThroughNewCampaign: each shipped
// system must come out of the registry ready to campaign -- resolvable by
// every alias, with a non-empty fault space, workloads, and a campaign
// builder that adopts it under default configuration. (The campaign is
// built, not run: executing six full campaigns belongs to the csnake
// package's detection tests.)
func TestEveryRegisteredSystemRoundTripsThroughNewCampaign(t *testing.T) {
	// The shipped systems by canonical name. Names() also reports the
	// throwaway fakes other tests in this binary register, so the sweep
	// pins exactly this set rather than iterating the registry blindly.
	names := []string{"Flink", "HBase", "HDFS 2", "HDFS 3", "MetaStore", "OZone"}
	reg := map[string]bool{}
	for _, n := range sysreg.Names() {
		reg[n] = true
	}
	for _, name := range names {
		if !reg[name] {
			t.Fatalf("shipped system %q missing from the registry (have %v)", name, sysreg.Names())
		}
	}
	for _, name := range names {
		sys, err := sysreg.Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", name, err)
		}
		if sys.Name() != name {
			t.Errorf("%s: Name() = %q", name, sys.Name())
		}
		for _, alias := range sysreg.AliasesOf(name) {
			via, err := sysreg.Resolve(alias)
			if err != nil || via.Name() != name {
				t.Errorf("alias %q of %s resolves to %v, %v", alias, name, via, err)
			}
		}
		space := sysreg.Space(sys)
		if space.Size() == 0 {
			t.Errorf("%s: empty fault space", name)
		}
		if len(sys.Workloads()) == 0 {
			t.Errorf("%s: no workloads", name)
		}
		c := csnake.NewCampaign(sys)
		if c.System().Name() != name {
			t.Errorf("%s: campaign adopted system %q", name, c.System().Name())
		}
		if got, want := c.Config(), csnake.DefaultConfig(42); got.BudgetFactor != want.BudgetFactor ||
			got.Harness.Reps != want.Harness.Reps || got.Seed != want.Seed {
			t.Errorf("%s: campaign defaults diverge: %+v", name, got)
		}
		// Every declared bug must reference faults that survive filtering:
		// a bug whose core fault fell out of the space can never be
		// detected, so the ground-truth table would silently rot.
		for _, bug := range sys.Bugs() {
			for _, f := range bug.CoreFaults {
				if _, ok := space.Lookup(f); !ok {
					t.Errorf("%s: bug %s core fault %s not in the filtered space", name, bug.ID, f)
				}
			}
		}
	}
}
