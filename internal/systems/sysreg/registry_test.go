package sysreg

import (
	"strings"
	"testing"
)

func regFake(name string, aliases ...string) {
	Register(name, func() System { return fakeSys{name: name} }, aliases...)
}

func TestDuplicateRegistrationReplaces(t *testing.T) {
	Register("Dup", func() System { return fakeSys{name: "DupOld"} }, "dup")
	Register("Dup", func() System { return fakeSys{name: "DupNew"} }, "dup")
	sys, ok := Lookup("Dup")
	if !ok || sys.Name() != "DupNew" {
		t.Fatalf("re-registration did not replace the factory: %v", sys)
	}
	// The alias keeps pointing at the replaced entry.
	if sys, ok = Lookup("dup"); !ok || sys.Name() != "DupNew" {
		t.Fatalf("alias survived but resolves stale entry: %v", sys)
	}
	// The canonical name appears once in Names despite two registrations.
	n := 0
	for _, name := range Names() {
		if name == "Dup" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("canonical name registered %d times", n)
	}
}

func TestAliasCollisionPanics(t *testing.T) {
	regFake("CollideA", "shared-alias")
	defer func() {
		if recover() == nil {
			t.Fatal("claiming another system's alias did not panic")
		}
	}()
	regFake("CollideB", "shared-alias")
}

func TestCanonicalNameAsAliasCollisionPanics(t *testing.T) {
	regFake("CollideC")
	defer func() {
		if recover() == nil {
			t.Fatal("claiming another system's canonical name as an alias did not panic")
		}
	}()
	regFake("CollideD", "CollideC")
}

func TestResolveKnownNames(t *testing.T) {
	regFake("Resolvable", "rsv")
	for _, name := range []string{"Resolvable", "rsv"} {
		sys, err := Resolve(name)
		if err != nil || sys.Name() != "Resolvable" {
			t.Fatalf("Resolve(%q) = %v, %v", name, sys, err)
		}
	}
}

func TestResolveMissErrorText(t *testing.T) {
	regFake("Typoable", "typo-sys")
	_, err := Resolve("typo-sy")
	if err == nil {
		t.Fatal("Resolve of unknown name succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown system "typo-sy"`) {
		t.Errorf("error does not name the miss: %q", msg)
	}
	if !strings.Contains(msg, `did you mean "typo-sys"?`) {
		t.Errorf("error does not suggest the close match: %q", msg)
	}
	if !strings.Contains(msg, "known systems: ") || !strings.Contains(msg, "typo-sys") {
		t.Errorf("error does not list the known names: %q", msg)
	}
	// A miss with no plausible neighbour lists names without guessing.
	if _, err = Resolve("zzzzzzzzzzzz"); err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off miss still produced a suggestion: %v", err)
	}
}

func TestAliasesOf(t *testing.T) {
	regFake("Aliased", "al-b", "al-a")
	got := AliasesOf("Aliased")
	if len(got) != 2 || got[0] != "al-a" || got[1] != "al-b" {
		t.Fatalf("AliasesOf = %v, want sorted aliases without the canonical name", got)
	}
	if AliasesOf("NotRegisteredEver") != nil {
		t.Fatal("AliasesOf invented aliases for an unknown system")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"hdfs2", "hdfs3", 1},
		{"metastore", "metastor", 1},
		{"flink", "blink", 1},
		{"kitten", "sitting", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
