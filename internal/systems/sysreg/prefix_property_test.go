package sysreg_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
	"repro/internal/trace"

	_ "repro/internal/systems/dfs"
	_ "repro/internal/systems/kvstore"
	_ "repro/internal/systems/metastore"
	_ "repro/internal/systems/objstore"
	_ "repro/internal/systems/stream"
)

// TestCheckpointRestoreIsInvisible is the prefix-sharing correctness
// property, run against every shipped system that implements
// sysreg.Checkpointable: for a grid of seeds and divergence points,
//
//	run straight to the horizon
//	  ==  run segmented with checkpoints captured along the way
//	  ==  checkpoint -> restore into a fresh engine -> run the suffix
//
// byte-for-byte, as observed through the trace fingerprint (counters,
// coverage times, occurrence evidence, sim result). Systems that do not
// set RunContext.Ckpt are reported and skipped -- they fall back to
// from-scratch simulation in the harness, which is always correct.
func TestCheckpointRestoreIsInvisible(t *testing.T) {
	const (
		seeds     = 5
		divPoints = 3
	)
	checkpointable := map[string]bool{}
	for _, name := range []string{"Flink", "HBase", "HDFS 2", "HDFS 3", "MetaStore", "OZone"} {
		sys, err := sysreg.Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", name, err)
		}
		w := sys.Workloads()[0]
		forks := 0
		for seed := int64(1); seed <= seeds; seed++ {
			straight := runStraight(w, seed)

			// One segmented engine per seed: pause at each divergence
			// point, capture, and keep going. Its final trace must match
			// the straight run even when no fork ever happens.
			rec := trace.NewRun(w.Name, seed)
			rt := inject.New(inject.Profile(), rec)
			eng := sim.NewEngine(sim.Options{Seed: seed, Checkpointing: true})
			ctx := &sysreg.RunContext{Engine: eng, RT: rt}
			w.Run(ctx)
			if ctx.Ckpt == nil {
				eng.Run(w.Horizon)
				eng.Close()
				break // not checkpointable; skip the system
			}
			checkpointable[name] = true

			type capture struct {
				ck   *sim.Checkpoint
				snap any
				tr   *trace.Run
			}
			var caps []capture
			var res sim.RunResult
			ended := false
			for k := 1; k <= divPoints && !ended; k++ {
				at := time.Duration(int64(w.Horizon) * int64(k) / int64(divPoints+1))
				if res = eng.Run(at); res.Reason != sim.StopHorizon {
					ended = true
					break
				}
				ck, err := eng.Checkpoint()
				if errors.Is(err, sim.ErrNotQuiescent) {
					continue
				}
				if err != nil {
					t.Fatalf("%s seed %d: Checkpoint at %v: %v", name, seed, at, err)
				}
				tr := trace.NewRun(w.Name, seed)
				tr.CopyFrom(rec)
				caps = append(caps, capture{ck: ck, snap: ctx.Ckpt.Snapshot(), tr: tr})
			}
			if !ended {
				res = eng.Run(w.Horizon)
			}
			eng.Close()
			rec.Result = res
			rec.Result.Events = eng.Events()
			if rec.Fingerprint() != straight.Fingerprint() {
				t.Errorf("%s seed %d: segmented run diverges from straight run", name, seed)
			}

			for _, c := range caps {
				forked := runForked(t, name, w, seed, ctx.Ckpt, c.ck, c.snap, c.tr)
				if forked == nil {
					continue
				}
				if forked.Fingerprint() != straight.Fingerprint() {
					t.Errorf("%s seed %d: fork at %v diverges from straight run (events %d vs %d)",
						name, seed, c.ck.Now(), forked.Result.Events, straight.Result.Events)
				}
				forks++
			}
		}
		if checkpointable[name] && forks == 0 {
			t.Errorf("%s: checkpointable but no divergence point was capturable -- property vacuous", name)
		}
	}
	// The two systems converted in this change must actually participate;
	// otherwise the property above silently tests nothing.
	for _, name := range []string{"MetaStore", "HBase"} {
		if !checkpointable[name] {
			t.Errorf("%s does not implement sysreg.Checkpointable", name)
		}
	}
}

// runStraight executes w's profile run from scratch on a plain engine.
func runStraight(w sysreg.Workload, seed int64) *trace.Run {
	rec := trace.NewRun(w.Name, seed)
	rt := inject.New(inject.Profile(), rec)
	eng := sim.NewEngine(sim.Options{Seed: seed})
	w.Run(&sysreg.RunContext{Engine: eng, RT: rt})
	rec.Result = eng.Run(w.Horizon)
	eng.Close()
	rec.Result.Events = eng.Events()
	return rec
}

// runForked restores (ck, snap) into a fresh engine and runs the suffix.
func runForked(t *testing.T, name string, w sysreg.Workload, seed int64,
	ckpt sysreg.Checkpointable, ck *sim.Checkpoint, snap any, tr *trace.Run) *trace.Run {
	t.Helper()
	rec := trace.NewRun(w.Name, seed)
	rec.CopyFrom(tr)
	rt := inject.New(inject.Profile(), rec)
	eng := sim.NewEngine(sim.Options{Seed: seed, Checkpointing: true})
	sess, err := ck.RestoreInto(eng)
	if err == nil {
		err = ckpt.Restore(&sysreg.RunContext{Engine: eng, RT: rt, Session: sess}, snap)
	}
	if err == nil {
		err = sess.Finish()
	}
	if err != nil {
		eng.Close()
		t.Errorf("%s seed %d: restore at %v failed: %v", name, seed, ck.Now(), err)
		return nil
	}
	rec.Result = eng.Run(w.Horizon)
	eng.Close()
	rec.Result.Events = eng.Events()
	return rec
}
