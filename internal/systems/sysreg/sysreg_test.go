package sysreg

import (
	"testing"
	"time"

	"repro/internal/faults"
)

type fakeSys struct{ name string }

func (f fakeSys) Name() string { return f.name }
func (f fakeSys) Points() []faults.Point {
	return []faults.Point{
		{ID: "x.loop", Kind: faults.Loop},
		{ID: "x.sec", Kind: faults.Throw, Category: faults.ExcSecurity},
	}
}
func (f fakeSys) Nests() []faults.LoopNest { return nil }
func (f fakeSys) Workloads() []Workload {
	return []Workload{{Name: "w", Horizon: time.Second}}
}
func (f fakeSys) Bugs() []Bug          { return nil }
func (f fakeSys) SourceDirs() []string { return nil }

func TestSpaceAppliesFilters(t *testing.T) {
	sp := Space(fakeSys{name: "X"})
	if sp.Size() != 1 {
		t.Fatalf("size = %d, want 1 (security exception filtered)", sp.Size())
	}
	if _, ok := sp.Lookup("x.sec"); ok {
		t.Fatal("filtered point still in space")
	}
}

func TestRegistry(t *testing.T) {
	Register("Bsys", func() System { return fakeSys{name: "Bsys"} })
	Register("Asys", func() System { return fakeSys{name: "Asys"} }, "asys")
	all := All()
	var names []string
	for _, s := range all {
		names = append(names, s.Name())
	}
	// Sorted by name, both present.
	foundA, foundB := false, false
	for i, n := range names {
		if n == "Asys" {
			foundA = true
			for j := i + 1; j < len(names); j++ {
				if names[j] == "Bsys" {
					foundB = true
				}
			}
		}
	}
	if !foundA || !foundB {
		t.Fatalf("registry order/content wrong: %v", names)
	}
	if _, ok := Lookup("Asys"); !ok {
		t.Fatal("Lookup by canonical name failed")
	}
	sys, ok := Lookup("asys")
	if !ok || sys.Name() != "Asys" {
		t.Fatalf("Lookup by alias: ok=%v sys=%v", ok, sys)
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup invented a system")
	}
	wantNames := map[string]bool{"Asys": true, "Bsys": true}
	for _, n := range Names() {
		delete(wantNames, n)
	}
	if len(wantNames) != 0 {
		t.Fatalf("Names() missing %v", wantNames)
	}
	gotAlias := false
	for _, a := range Aliases() {
		if a == "asys" {
			gotAlias = true
		}
	}
	if !gotAlias {
		t.Fatalf("Aliases() missing alias: %v", Aliases())
	}
}

func TestLookupReturnsFreshInstances(t *testing.T) {
	Register("Fresh", func() System { return &fakeSys{name: "Fresh"} })
	a, _ := Lookup("Fresh")
	b, _ := Lookup("Fresh")
	if a.(*fakeSys) == b.(*fakeSys) {
		t.Fatal("Lookup returned a shared instance")
	}
}
