// Fuzzing the trace ingestion path: whatever bytes arrive -- malformed
// JSON, truncated records, oversized lines, binary garbage -- ingestion
// must never panic and must account for every line as either applied or
// skipped. Seeds cover each record type plus the classic failure shapes;
// testdata/fuzz/FuzzIngest pins regressions.
package monitor_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/monitor"
)

func FuzzIngest(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"t":"hello","v":1,"system":"MetaStore"}`),
		[]byte(`{"t":"edge","atMs":5,"edge":{"f":"a","t":"b","k":2,"fc":0,"tc":0,"w":"w1"}}`),
		[]byte(`{"t":"edge","atMs":6,"edge":{"f":"b","t":"a","k":2,"fc":0,"tc":0,"w":"w2"}}`),
		[]byte(`{"t":"static","edge":{"f":"a","t":"b","k":4,"fc":2,"tc":2,"w":""}}`),
		[]byte("{\"t\":\"nest\",\"fault\":\"a\",\"group\":1}\n{\"t\":\"score\",\"fault\":\"a\",\"score\":0.5}"),
		[]byte(`{"t":"mark"}`),
		[]byte(`{"t":"edge"`),                         // truncated mid-record
		[]byte(`{"t":"edge","edge":{"f":"","t":""}}`), // empty endpoints
		[]byte(`{"t":"edge","atMs":-3,"edge":{"f":"a","t":"b","k":2,"fc":0,"tc":0,"w":"w"}}`), // negative timestamp
		[]byte(`{"t":"edge","atMs":1,"edge":{"f":"a","t":"b","k":99,"fc":0,"tc":0,"w":"w"}}`), // kind out of range
		[]byte(`{"t":"hello","v":999}`), // future schema version
		[]byte(`{"t":"wat"}`),           // unknown type
		[]byte("\x00\x01binary\xffgarbage\nnot json at all"),
		bytes.Repeat([]byte("x"), 9000), // oversized line
		[]byte("\n\n\n"),                // blank lines only
		{},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		mon := monitor.New(monitor.Config{
			Window:       time.Second,
			Buckets:      4,
			MaxLineBytes: 4096,
		})
		res, err := mon.Ingest(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("in-memory ingest returned a reader error: %v", err)
		}
		if res.Records < 0 || res.Skipped < 0 || res.Stale < 0 {
			t.Fatalf("negative counters: %+v", res)
		}
		st := mon.Stats()
		if st.Records != res.Records {
			t.Fatalf("stats records %d != batch records %d", st.Records, res.Records)
		}
		if st.Skipped != res.Skipped {
			t.Fatalf("stats skipped %d != batch skipped %d", st.Skipped, res.Skipped)
		}
		if st.Batches != 1 {
			t.Fatalf("one ingest must count one batch, got %d", st.Batches)
		}
		// Ingesting the same bytes again must also hold up (dedup paths,
		// stale-window paths, evidence caps).
		if _, err := mon.Ingest(bytes.NewReader(data)); err != nil {
			t.Fatalf("second ingest: %v", err)
		}
	})
}
