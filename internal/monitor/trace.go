// This file holds TraceWriter, the exporter side of the monitor wire
// format: campaigns stream their causal-edge discoveries through it
// (csnake -trace-out / csnake.WithTraceExport), producing a JSONL trace
// any monitor can replay. Writes are serialized internally, so the
// harness may emit edges from pool goroutines; errors are sticky and
// surfaced by Flush/Err rather than per record, matching the exporter's
// fire-and-forget call sites inside observer callbacks.
package monitor

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"

	"repro/internal/core/fca"
	"repro/internal/faults"
)

// TraceWriter streams trace records to w. Safe for concurrent use.
type TraceWriter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	edges int64 // edge records written; doubles as the virtual clock (ms)
	err   error
}

// NewTraceWriter wraps w in a buffered trace stream.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{bw: bufio.NewWriterSize(w, 64*1024)}
}

// emit marshals and writes one record line under the lock.
func (t *TraceWriter) emitLocked(rec Record) {
	if t.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.bw.Write(append(data, '\n')); err != nil {
		t.err = err
	}
}

// Hello writes the stream preamble.
func (t *TraceWriter) Hello(system string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Record{T: "hello", Version: TraceVersion, System: system})
}

// Static writes the static connector edge set, one record per edge, in
// the given (deterministic) order.
func (t *TraceWriter) Static(edges []fca.Edge) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range edges {
		t.emitLocked(Record{T: "static", Edge: wireEdge(e)})
	}
}

// NestGroups writes the loop-nest family annotations, sorted by fault
// id for a deterministic stream.
func (t *TraceWriter) NestGroups(groups map[faults.ID]int) {
	ids := make([]string, 0, len(groups))
	for f := range groups {
		ids = append(ids, string(f))
	}
	sort.Strings(ids)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range ids {
		t.emitLocked(Record{T: "nest", Fault: f, Group: groups[faults.ID(f)]})
	}
}

// Edge writes one dynamic edge observation, stamped with the virtual
// clock (one millisecond per edge record).
func (t *TraceWriter) Edge(e fca.Edge) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Record{T: "edge", AtMS: t.edges, Edge: wireEdge(e)})
	t.edges++
}

// Mark writes an experiment boundary record.
func (t *TraceWriter) Mark() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Record{T: "mark"})
}

// Score writes one SimScore annotation.
func (t *TraceWriter) Score(f faults.ID, score float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Record{T: "score", Fault: string(f), Score: score})
}

// Edges returns the number of edge records written so far.
func (t *TraceWriter) Edges() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.edges
}

// Flush drains the buffer and returns the first error seen.
func (t *TraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Err returns the sticky write error, if any.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
