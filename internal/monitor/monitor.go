// Package monitor turns CSnake's incremental beam search into a
// continuous online detector: it ingests an externally produced trace
// stream (JSONL edge-observation records -- a replayed campaign export
// or a live feed), folds it into a decaying evidence window over a
// causal graph, and runs the incremental cycle search after every
// batch, alerting on newly closed and newly broken self-sustaining
// cycles.
//
// Data flow:
//
//	stream -> parse (tolerant, torn lines counted+skipped)
//	       -> graph.Window (time-bucketed decay, rebuild-by-replay)
//	       -> graph.Delta  (implicit: the window's live graph grows)
//	       -> beam.Incremental (reset on window rebuilds)
//	       -> signature diff -> Alert callbacks
//
// Equivalence contract: with a window spanning the whole stream, the
// monitor's active cycle signatures after replaying a campaign's
// exported trace are byte-identical to an offline beam.SearchGraph over
// that campaign's final graph -- for any batching of the stream. The
// monitor package's tests pin this wall.
package monitor

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core/beam"
	"repro/internal/core/graph"
	"repro/internal/faults"
)

// Config tunes a Monitor.
type Config struct {
	// Window is the evidence retention span: edge observations older
	// than this (by their stream timestamps) decay out of the graph.
	// 0 retains everything -- the replay-equivalence configuration.
	Window time.Duration
	// Buckets is the decay granularity (default 8): evidence expires a
	// bucket (Window/Buckets) at a time.
	Buckets int
	// Beam configures the cycle search (zero value = campaign defaults).
	Beam beam.Options
	// MaxLineBytes bounds one trace line (default 1 MiB); longer lines
	// are counted as skipped and discarded, like torn journal records.
	MaxLineBytes int
	// OnAlert, when set, receives every alert as it fires, in order,
	// from inside the ingesting call.
	OnAlert func(Alert)
}

func (c *Config) defaults() {
	if c.Buckets < 1 {
		c.Buckets = 8
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
}

// Alert is one cycle transition: a self-sustaining cycle newly closed
// by the evidence (kind "closed") or one that stopped being reported
// because its evidence decayed or was contradicted (kind "broken").
type Alert struct {
	Kind      string   `json:"kind"` // "closed" or "broken"
	Signature string   `json:"signature"`
	Cycle     string   `json:"cycle,omitempty"` // human-readable rendering
	Score     float64  `json:"score,omitempty"`
	Faults    []string `json:"faults,omitempty"` // injected faults on the cycle
	Len       int      `json:"len,omitempty"`    // edges on the cycle
	Seq       int64    `json:"seq"`              // per-monitor alert sequence
	Records   int64    `json:"records"`          // records ingested when it fired
}

// Stats is a point-in-time snapshot of a monitor's counters.
type Stats struct {
	System       string `json:"system,omitempty"`
	Records      int64  `json:"records"` // parsed + applied records
	Edges        int64  `json:"edges"`   // dynamic edge observations admitted
	Statics      int64  `json:"statics"`
	Marks        int64  `json:"marks"`
	Skipped      int64  `json:"skipped"` // malformed/oversized lines
	Stale        int64  `json:"stale"`   // edges older than the window
	Batches      int64  `json:"batches"`
	Alerts       int64  `json:"alerts"`
	CyclesActive int    `json:"cyclesActive"`
	Rebuilds     int    `json:"rebuilds"` // window evictions (graph replays)
	Evicted      int    `json:"evicted"`  // observations expired
	Retained     int    `json:"retained"` // observations currently windowed
}

// BatchResult summarizes one ingested batch.
type BatchResult struct {
	Records int64   `json:"records"`
	Skipped int64   `json:"skipped"`
	Stale   int64   `json:"stale,omitempty"`
	Alerts  []Alert `json:"alerts,omitempty"`
	// CyclesActive is the size of the reported cycle set after the batch.
	CyclesActive int `json:"cyclesActive"`
}

// Monitor is one online detector instance. Safe for concurrent use;
// batches are serialized internally.
type Monitor struct {
	cfg Config

	mu     sync.Mutex
	win    *graph.Window
	inc    *beam.Incremental
	known  map[string]beam.Cycle // active cycles by signature
	cycles []beam.Cycle          // last search result, report order

	system      string
	pinnedNests int
	alertSeq    int64
	stats       Stats
}

// New builds a monitor from cfg.
func New(cfg Config) *Monitor {
	cfg.defaults()
	return &Monitor{
		cfg:   cfg,
		win:   graph.NewWindow(cfg.Window, cfg.Buckets),
		inc:   beam.NewIncremental(cfg.Beam),
		known: make(map[string]beam.Cycle),
	}
}

// Ingest parses one batch of JSONL trace records from r, folds them
// into the evidence window, runs the incremental cycle search, and
// returns the batch summary including any alerts it fired. Malformed,
// truncated, and oversized lines are counted and skipped -- only a
// reader error is returned, after applying everything read so far.
func (m *Monitor) Ingest(r io.Reader) (BatchResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var res BatchResult
	rebuilt := false
	scanErr := scanLines(r, m.cfg.MaxLineBytes, func(line []byte, oversize bool) {
		if oversize {
			res.Skipped++
			return
		}
		rec, err := decodeRecord(line)
		if err != nil {
			res.Skipped++
			return
		}
		res.Records++
		switch rec.T {
		case "hello":
			m.system = rec.System
			m.win.SetSystem(rec.System)
		case "static":
			m.win.AddStatic(rec.Edge.fcaEdge())
			m.stats.Statics++
		case "nest":
			m.win.SetNestGroup(faults.ID(rec.Fault), rec.Group)
		case "score":
			m.win.SetScore(faults.ID(rec.Fault), rec.Score)
		case "mark":
			m.stats.Marks++
		case "edge":
			at := time.Unix(0, rec.AtMS*int64(time.Millisecond))
			ok, rb := m.win.Observe(rec.Edge.fcaEdge(), at)
			if rb {
				rebuilt = true
			}
			if ok {
				m.stats.Edges++
			} else {
				res.Stale++
			}
		}
	})
	m.stats.Records += res.Records
	m.stats.Skipped += res.Skipped
	m.stats.Stale += res.Stale
	m.stats.Batches++
	res.Alerts = m.searchLocked(rebuilt)
	res.CyclesActive = len(m.cycles)
	return res, scanErr
}

// searchLocked runs the incremental search over the window's graph and
// diffs the reported signature set against the previous batch, firing
// alerts for every transition. Closed alerts follow the search's
// deterministic report order; broken alerts sort by signature.
func (m *Monitor) searchLocked(rebuilt bool) []Alert {
	m.win.Annotate()
	g := m.win.Graph()
	if n := countNests(g); rebuilt || n != m.pinnedNests {
		// A rebuilt graph voids the searcher's watermarks; a grown nest
		// family set voids its pinned filter. Either way a reset re-primes
		// the next search from scratch, which is always exact.
		m.inc.Reset()
		m.pinnedNests = n
	}
	cycles := m.inc.Search(g, nil)
	cur := make(map[string]beam.Cycle, len(cycles))
	var alerts []Alert
	for _, c := range cycles {
		sig := c.Signature()
		if _, dup := cur[sig]; dup {
			continue
		}
		cur[sig] = c
		if _, ok := m.known[sig]; !ok {
			alerts = append(alerts, m.alertLocked("closed", sig, c))
		}
	}
	var gone []string
	for sig := range m.known {
		if _, ok := cur[sig]; !ok {
			gone = append(gone, sig)
		}
	}
	sort.Strings(gone)
	for _, sig := range gone {
		alerts = append(alerts, m.alertLocked("broken", sig, m.known[sig]))
	}
	m.known = cur
	m.cycles = cycles
	m.stats.Alerts += int64(len(alerts))
	if m.cfg.OnAlert != nil {
		for _, a := range alerts {
			m.cfg.OnAlert(a)
		}
	}
	return alerts
}

func (m *Monitor) alertLocked(kind, sig string, c beam.Cycle) Alert {
	m.alertSeq++
	fids := c.Faults()
	fs := make([]string, len(fids))
	for i, f := range fids {
		fs[i] = string(f)
	}
	return Alert{
		Kind:      kind,
		Signature: sig,
		Cycle:     c.String(),
		Score:     c.Score,
		Faults:    fs,
		Len:       len(c.Edges),
		Seq:       m.alertSeq,
		Records:   m.stats.Records,
	}
}

// Stats returns a snapshot of the monitor's counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.System = m.system
	s.CyclesActive = len(m.cycles)
	s.Rebuilds = m.win.Rebuilds()
	s.Evicted = m.win.Evicted()
	s.Retained = m.win.Retained()
	return s
}

// Cycles returns the currently reported cycle set, in report order.
func (m *Monitor) Cycles() []beam.Cycle {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]beam.Cycle(nil), m.cycles...)
}

// Signatures returns the active cycle signatures, sorted.
func (m *Monitor) Signatures() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.known))
	for sig := range m.known {
		out = append(out, sig)
	}
	sort.Strings(out)
	return out
}

// countNests sizes the graph's effective nest family map without
// copying it.
func countNests(g *graph.Graph) int {
	return len(g.NestGroups())
}

// scanLines feeds r to fn one newline-terminated line at a time, lines
// longer than max reported as oversize (content discarded) -- the
// streaming analogue of the journal's torn-tail tolerance. A final
// unterminated line is still delivered; only reader errors propagate.
func scanLines(r io.Reader, max int, fn func(line []byte, oversize bool)) error {
	if max < 32 {
		max = 32
	}
	br := bufio.NewReaderSize(r, max)
	for {
		line, err := br.ReadSlice('\n')
		if errors.Is(err, bufio.ErrBufferFull) {
			fn(nil, true)
			for errors.Is(err, bufio.ErrBufferFull) {
				_, err = br.ReadSlice('\n')
			}
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return err
			}
			continue
		}
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			fn(trimmed, false)
		}
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
