// The equivalence wall: replaying a campaign's exported trace through
// the online monitor must report exactly the cycle signatures the
// offline beam search finds on the campaign's final graph -- for any
// batching of the stream. This is the contract that makes the monitor
// trustworthy: streaming adds latency, never changes the answer.
package monitor_test

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/core/beam"
	"repro/internal/core/csnake"
	"repro/internal/monitor"
	"repro/internal/systems/sysreg"

	_ "repro/internal/systems/metastore"
)

// exportedCampaign runs the fast metastore configuration (the one the
// service smoke uses: both seeded RAFT storms detected in ~16 rounds)
// with trace export, returning the report and the recorded trace.
func exportedCampaign(t *testing.T) (*csnake.Report, []byte) {
	t.Helper()
	sys, err := sysreg.Resolve("metastore")
	if err != nil {
		t.Fatalf("resolve metastore: %v", err)
	}
	var buf bytes.Buffer
	rep, err := csnake.NewCampaign(sys,
		csnake.WithSeed(42),
		csnake.WithReps(3),
		csnake.WithDelayMagnitudes(500*time.Millisecond, 2*time.Second, 8*time.Second),
		csnake.WithEarlyStop(3),
		csnake.WithWaveSize(4),
		csnake.WithTraceExport(&buf),
	).Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("campaign exported an empty trace")
	}
	return rep, buf.Bytes()
}

func sigSet(cycles []beam.Cycle) []string {
	seen := make(map[string]bool, len(cycles))
	for _, c := range cycles {
		seen[c.Signature()] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// traceLines splits a JSONL trace into its non-empty lines.
func traceLines(trace []byte) [][]byte {
	var lines [][]byte
	for _, l := range bytes.Split(trace, []byte("\n")) {
		if len(bytes.TrimSpace(l)) > 0 {
			lines = append(lines, l)
		}
	}
	return lines
}

// replay feeds the lines through a full-retention monitor in the given
// chunks (each chunk is one Ingest batch) and returns the monitor.
func replay(t *testing.T, lines [][]byte, chunks []int) *monitor.Monitor {
	t.Helper()
	mon := monitor.New(monitor.Config{}) // Window 0: retain everything
	i := 0
	for _, n := range chunks {
		var batch bytes.Buffer
		for j := 0; j < n && i < len(lines); j++ {
			batch.Write(lines[i])
			batch.WriteByte('\n')
			i++
		}
		res, err := mon.Ingest(&batch)
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		if res.Skipped != 0 {
			t.Fatalf("replay of a clean trace skipped %d records", res.Skipped)
		}
	}
	if i != len(lines) {
		t.Fatalf("chunks covered %d of %d lines", i, len(lines))
	}
	return mon
}

func TestReplayEquivalence(t *testing.T) {
	rep, trace := exportedCampaign(t)
	lines := traceLines(trace)

	// The reference: the offline search over the campaign's final
	// annotated graph, which also equals the campaign's own reported set.
	offline := sigSet(beam.SearchGraph(rep.Graph, nil, beam.Options{}))
	if len(offline) == 0 {
		t.Fatal("offline search found no cycles")
	}
	if got := sigSet(rep.Cycles); !equalStrings(got, offline) {
		t.Fatalf("campaign cycles != offline re-search:\ncampaign: %v\noffline:  %v", got, offline)
	}

	chunkings := map[string][]int{
		"one-batch":  {len(lines)},
		"per-record": manyChunks(len(lines), 1),
	}
	// Shuffled batch boundaries: random chunk sizes, three seeds.
	for _, seed := range []int64{1, 7, 23} {
		rng := rand.New(rand.NewSource(seed))
		var chunks []int
		rem := len(lines)
		for rem > 0 {
			n := 1 + rng.Intn(17)
			if n > rem {
				n = rem
			}
			chunks = append(chunks, n)
			rem -= n
		}
		chunkings["shuffled-"+string(rune('a'+seed%26))] = chunks
	}

	for name, chunks := range chunkings {
		t.Run(name, func(t *testing.T) {
			mon := replay(t, lines, chunks)
			got := mon.Signatures()
			if !equalStrings(got, offline) {
				t.Fatalf("online signature set diverges from offline search\nonline:  %v\noffline: %v", got, offline)
			}
			// The two seeded RAFT storms must both have alerted.
			wantFaults := []string{"ms.node.election_loop", "ms.leader.snap.send_loop"}
			faults := make(map[string]bool)
			for _, c := range mon.Cycles() {
				for _, f := range c.Faults() {
					faults[string(f)] = true
				}
			}
			for _, f := range wantFaults {
				if !faults[f] {
					t.Errorf("storm fault %s missing from active cycles", f)
				}
			}
			st := mon.Stats()
			if st.Rebuilds != 0 || st.Evicted != 0 || st.Stale != 0 {
				t.Fatalf("full-retention replay must never evict: %+v", st)
			}
		})
	}
}

func manyChunks(total, size int) []int {
	var chunks []int
	for total > 0 {
		n := size
		if n > total {
			n = total
		}
		chunks = append(chunks, n)
		total -= n
	}
	return chunks
}
