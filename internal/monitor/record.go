// This file defines the monitor's wire format: the JSONL trace stream a
// campaign exports (csnake -trace-out) and a monitor ingests, one record
// per line. The stream is self-contained -- edges carry fault ids, test
// names, and occurrence evidence inline (no intern tables), so any
// suffix of a stream is still parseable and streams from different
// producers can interleave.
//
// Record types:
//
//	hello   stream preamble: schema version + originating system
//	static  one static ICFG/CFG connector edge (no timestamp, no decay)
//	nest    loop-nest family annotation for one fault
//	score   SimScore annotation for one fault
//	edge    one dynamic causal-edge observation, stamped atMs
//	mark    an experiment boundary (informational)
//
// Parsing is tolerant by design, mirroring the service journal's
// torn-tail discipline: a malformed, truncated, or oversized line is
// counted and skipped, never fatal and never a panic.
package monitor

import (
	"encoding/json"
	"fmt"

	"repro/internal/core/compat"
	"repro/internal/core/fca"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TraceVersion is the trace stream schema version.
const TraceVersion = 1

// Record is one JSONL trace line. T selects the type and which fields
// are meaningful.
type Record struct {
	T string `json:"t"`

	// hello
	Version int    `json:"v,omitempty"`
	System  string `json:"system,omitempty"`

	// edge / static
	Edge *EdgeRecord `json:"edge,omitempty"`
	// AtMS is the edge's virtual timestamp in milliseconds since stream
	// start. The exporter stamps each edge with its record index, so a
	// replayed trace is deterministic; live producers use wall-clock
	// offsets.
	AtMS int64 `json:"atMs,omitempty"`

	// nest / score
	Fault string  `json:"fault,omitempty"`
	Group int     `json:"group,omitempty"`
	Score float64 `json:"score,omitempty"`
}

// EdgeRecord is a self-contained dynamic or static causal edge: the
// schema-v1 graph edge shape with fault ids and the test name inlined
// instead of table indices.
type EdgeRecord struct {
	From      string      `json:"f"`
	To        string      `json:"t"`
	Kind      int         `json:"k"`
	FromClass int         `json:"fc"`
	ToClass   int         `json:"tc"`
	Test      string      `json:"w"`
	FromDelay bool        `json:"fd,omitempty"`
	ToDelay   bool        `json:"td,omitempty"`
	FromOcc   []OccRecord `json:"fo,omitempty"`
	ToOcc     []OccRecord `json:"to,omitempty"`
}

// OccRecord is one piece of occurrence evidence (stack + branch trace).
type OccRecord struct {
	Stack    []string       `json:"s,omitempty"`
	Branches []BranchRecord `json:"b,omitempty"`
}

// BranchRecord is one evaluated branch in an occurrence.
type BranchRecord struct {
	ID    string `json:"i"`
	Taken bool   `json:"t"`
}

// maxOccRecords bounds the evidence a single line may carry; anything
// past the graph's own merge cap can never be admitted anyway, so
// oversupplied evidence is truncated at parse time rather than trusted.
const maxOccRecords = trace.OccCap

// decodeRecord parses and validates one trace line. It returns an error
// for anything a monitor cannot safely apply; callers count and skip.
func decodeRecord(line []byte) (Record, error) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, err
	}
	switch rec.T {
	case "hello":
		if rec.Version != TraceVersion {
			return rec, fmt.Errorf("monitor: unsupported trace version %d (want %d)", rec.Version, TraceVersion)
		}
	case "static":
		if err := validateEdge(rec.Edge, true); err != nil {
			return rec, err
		}
	case "edge":
		if err := validateEdge(rec.Edge, false); err != nil {
			return rec, err
		}
		if rec.AtMS < 0 {
			return rec, fmt.Errorf("monitor: negative edge timestamp %d", rec.AtMS)
		}
	case "nest", "score":
		if rec.Fault == "" {
			return rec, fmt.Errorf("monitor: %s record without fault", rec.T)
		}
	case "mark":
	case "":
		return rec, fmt.Errorf("monitor: record without type")
	default:
		return rec, fmt.Errorf("monitor: unknown record type %q", rec.T)
	}
	return rec, nil
}

func validateEdge(e *EdgeRecord, static bool) error {
	if e == nil {
		return fmt.Errorf("monitor: edge record without edge")
	}
	if e.From == "" || e.To == "" {
		return fmt.Errorf("monitor: edge with empty endpoint")
	}
	if e.Kind < int(faults.ED) || e.Kind > int(faults.CFG) {
		return fmt.Errorf("monitor: edge kind %d out of range", e.Kind)
	}
	if faults.EdgeKind(e.Kind).Static() != static {
		if static {
			return fmt.Errorf("monitor: dynamic kind %d in static record", e.Kind)
		}
		return fmt.Errorf("monitor: static kind %d in edge record", e.Kind)
	}
	for _, c := range []int{e.FromClass, e.ToClass} {
		if c < int(faults.ClassException) || c > int(faults.ClassDelay) {
			return fmt.Errorf("monitor: edge fault class %d out of range", c)
		}
	}
	return nil
}

// fcaEdge materializes the validated record as an fca.Edge.
func (e *EdgeRecord) fcaEdge() fca.Edge {
	return fca.Edge{
		From: faults.ID(e.From), To: faults.ID(e.To),
		Kind:      faults.EdgeKind(e.Kind),
		FromClass: faults.FaultClass(e.FromClass), ToClass: faults.FaultClass(e.ToClass),
		Test:      e.Test,
		FromState: compat.State{Occ: unwireOcc(e.FromOcc), DelayFault: e.FromDelay},
		ToState:   compat.State{Occ: unwireOcc(e.ToOcc), DelayFault: e.ToDelay},
	}
}

func unwireOcc(occ []OccRecord) []trace.Occurrence {
	if len(occ) == 0 {
		return nil
	}
	if len(occ) > maxOccRecords {
		occ = occ[:maxOccRecords]
	}
	out := make([]trace.Occurrence, len(occ))
	for i, jo := range occ {
		o := trace.Occurrence{Stack: jo.Stack}
		for _, b := range jo.Branches {
			o.Branches = append(o.Branches, sim.BranchEval{ID: b.ID, Taken: b.Taken})
		}
		out[i] = o
	}
	return out
}

func wireOcc(occ []trace.Occurrence) []OccRecord {
	if len(occ) == 0 {
		return nil
	}
	out := make([]OccRecord, len(occ))
	for i, o := range occ {
		jo := OccRecord{Stack: o.Stack}
		for _, b := range o.Branches {
			jo.Branches = append(jo.Branches, BranchRecord{ID: b.ID, Taken: b.Taken})
		}
		out[i] = jo
	}
	return out
}

// wireEdge converts an fca.Edge to its record form.
func wireEdge(e fca.Edge) *EdgeRecord {
	return &EdgeRecord{
		From: string(e.From), To: string(e.To),
		Kind:      int(e.Kind),
		FromClass: int(e.FromClass), ToClass: int(e.ToClass),
		Test:      e.Test,
		FromDelay: e.FromState.DelayFault, ToDelay: e.ToState.DelayFault,
		FromOcc: wireOcc(e.FromState.Occ), ToOcc: wireOcc(e.ToState.Occ),
	}
}
