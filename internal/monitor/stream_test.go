// Table-driven determinism tests for the decaying evidence window as
// seen through the monitor: the same (record, timestamp) stream must
// produce identical evidence and identical cycle sets no matter how it
// is batched, evidence past the window must break cycles (with broken
// alerts), and fresh evidence must close them again.
package monitor_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/monitor"
)

// edgeLine renders one dynamic EI edge record (exception classes, no
// occurrence evidence): the minimal shape the beam matcher chains into
// cycles.
func edgeLine(t *testing.T, from, to, test string, atMS int64) string {
	t.Helper()
	rec := monitor.Record{
		T:    "edge",
		AtMS: atMS,
		Edge: &monitor.EdgeRecord{
			From: from, To: to,
			Kind:      int(faults.EI),
			FromClass: int(faults.ClassException),
			ToClass:   int(faults.ClassException),
			Test:      test,
		},
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

// ingestLines feeds lines to mon in one batch and returns the result.
func ingestLines(t *testing.T, mon *monitor.Monitor, lines ...string) monitor.BatchResult {
	t.Helper()
	res, err := mon.Ingest(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	return res
}

// syntheticStream is a 40-record stream over a 2-cycle (a<->b) plus
// unrelated c->d noise, with timestamps walking forward far enough to
// cross several window boundaries under a 1s window.
func syntheticStream(t *testing.T) []string {
	t.Helper()
	var lines []string
	for i := 0; i < 10; i++ {
		at := int64(i) * 300 // 0, 300ms, ... 2.7s: crosses 1s-window buckets
		lines = append(lines,
			edgeLine(t, "a", "b", "w1", at),
			edgeLine(t, "b", "a", "w2", at+1),
			edgeLine(t, "c", "d", "w1", at+2),
			edgeLine(t, "d", "e", "w2", at+3),
		)
	}
	return lines
}

// TestWindowBatchIndependence pins the decay determinism contract: the
// same stream ingested with different batch sizes yields identical
// evidence, eviction counts, and cycle signatures -- bucket assignment
// depends only on record timestamps, never on batch boundaries.
func TestWindowBatchIndependence(t *testing.T) {
	lines := syntheticStream(t)
	type outcome struct {
		sigs    []string
		edges   int64
		stale   int64
		evicted int
		active  int
	}
	run := func(batch int) outcome {
		mon := monitor.New(monitor.Config{Window: time.Second, Buckets: 4})
		for i := 0; i < len(lines); i += batch {
			end := i + batch
			if end > len(lines) {
				end = len(lines)
			}
			ingestLines(t, mon, lines[i:end]...)
		}
		st := mon.Stats()
		return outcome{
			sigs:    mon.Signatures(),
			edges:   st.Edges,
			stale:   st.Stale,
			evicted: st.Evicted,
			active:  st.CyclesActive,
		}
	}
	ref := run(1)
	if ref.evicted == 0 {
		t.Fatal("stream must cross window boundaries for this test to bite")
	}
	if ref.active == 0 {
		t.Fatal("the a<->b cycle should be live at stream end")
	}
	for _, batch := range []int{2, 3, 7, len(lines)} {
		got := run(batch)
		if !equalStrings(got.sigs, ref.sigs) {
			t.Errorf("batch=%d: signatures diverge: %v vs %v", batch, got.sigs, ref.sigs)
		}
		if got.edges != ref.edges || got.stale != ref.stale || got.evicted != ref.evicted {
			t.Errorf("batch=%d: evidence accounting diverges: %+v vs %+v", batch, got, ref)
		}
	}
}

// TestDecayBreaksAndRearms walks one cycle through its lifecycle:
// closed by fresh evidence, broken when the window advances past it,
// re-closed when fresh evidence for the same edges returns.
func TestDecayBreaksAndRearms(t *testing.T) {
	var alerts []monitor.Alert
	mon := monitor.New(monitor.Config{
		Window:  time.Second,
		Buckets: 4,
		OnAlert: func(a monitor.Alert) { alerts = append(alerts, a) },
	})

	// Close the cycle at t=0.
	res := ingestLines(t, mon,
		edgeLine(t, "a", "b", "w1", 0),
		edgeLine(t, "b", "a", "w2", 1))
	if res.CyclesActive == 0 {
		t.Fatalf("a<->b should close a cycle, got %+v", res)
	}
	if len(alerts) == 0 || alerts[0].Kind != "closed" {
		t.Fatalf("want a closed alert first, got %+v", alerts)
	}
	closedSig := alerts[0].Signature

	// Far-future evidence for an unrelated edge advances the window past
	// every cycle edge: the cycle must break.
	alerts = nil
	ingestLines(t, mon, edgeLine(t, "c", "d", "w1", 10_000))
	if mon.Stats().CyclesActive != 0 {
		t.Fatalf("decayed cycle still active: %v", mon.Signatures())
	}
	broken := false
	for _, a := range alerts {
		if a.Kind == "broken" && a.Signature == closedSig {
			broken = true
		}
	}
	if !broken {
		t.Fatalf("no broken alert for %s, alerts: %+v", closedSig, alerts)
	}

	// Evidence older than the advanced window is stale-dropped, not
	// resurrected.
	res = ingestLines(t, mon, edgeLine(t, "a", "b", "w1", 5))
	if res.Stale != 1 {
		t.Fatalf("pre-window record must count stale, got %+v", res)
	}
	if mon.Stats().CyclesActive != 0 {
		t.Fatal("stale evidence must not re-close the cycle")
	}

	// Fresh evidence for the same edges re-closes the same signature.
	alerts = nil
	ingestLines(t, mon,
		edgeLine(t, "a", "b", "w1", 10_100),
		edgeLine(t, "b", "a", "w2", 10_101))
	reclosed := false
	for _, a := range alerts {
		if a.Kind == "closed" && a.Signature == closedSig {
			reclosed = true
		}
	}
	if !reclosed {
		t.Fatalf("fresh evidence must re-close %s, alerts: %+v", closedSig, alerts)
	}
}

// TestAlertSequencing pins the alert metadata invariants: Seq is a
// strictly increasing per-monitor counter and Records carries the
// ingest watermark the alert fired at.
func TestAlertSequencing(t *testing.T) {
	var alerts []monitor.Alert
	mon := monitor.New(monitor.Config{
		OnAlert: func(a monitor.Alert) { alerts = append(alerts, a) },
	})
	ingestLines(t, mon,
		edgeLine(t, "a", "b", "w1", 0),
		edgeLine(t, "b", "a", "w2", 1))
	ingestLines(t, mon,
		edgeLine(t, "c", "d", "w1", 2),
		edgeLine(t, "d", "c", "w2", 3))
	if len(alerts) < 2 {
		t.Fatalf("want at least 2 closed alerts, got %+v", alerts)
	}
	var last int64
	for _, a := range alerts {
		if a.Seq <= last {
			t.Fatalf("alert Seq must strictly increase: %+v", alerts)
		}
		last = a.Seq
		if a.Records <= 0 {
			t.Fatalf("alert must carry its record watermark: %+v", a)
		}
	}
}

// TestIngestTolerance mixes malformed and oversized lines into a valid
// stream: the good records apply, the bad ones count as skipped.
func TestIngestTolerance(t *testing.T) {
	mon := monitor.New(monitor.Config{MaxLineBytes: 256})
	huge := strings.Repeat("x", 1024)
	stream := strings.Join([]string{
		`{"t":"hello","v":1,"system":"Toy"}`,
		`not json`,
		edgeLine(t, "a", "b", "w1", 0),
		huge,
		`{"t":"edge","edge":{"f":"a","t":"b","k":99,"fc":0,"tc":0,"w":"w"}}`,
		edgeLine(t, "b", "a", "w2", 1),
	}, "\n")
	res, err := mon.Ingest(bytes.NewReader([]byte(stream)))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if res.Records != 3 {
		t.Errorf("want 3 applied records, got %d", res.Records)
	}
	if res.Skipped != 3 {
		t.Errorf("want 3 skipped lines, got %d", res.Skipped)
	}
	if res.CyclesActive == 0 {
		t.Error("valid records around the garbage must still close the cycle")
	}
}
