package sim

import (
	"fmt"
	"time"
)

// Mailbox is an unbounded, FIFO message queue attached to a node. Multiple
// processes may Recv from the same mailbox, forming a worker pool; this is
// the primitive the target systems use to model RPC handler threads and
// bounded service capacity.
type Mailbox struct {
	eng  *Engine
	id   int
	node string
	name string
	// queue[head:] are the pending messages: popping advances head and the
	// backing array is reclaimed whenever the queue fully drains, so a
	// busy mailbox reaches a steady state with no per-message growth.
	queue   []interface{}
	head    int
	waiters []*Proc
}

// NewMailbox creates a mailbox hosted on the given node. Messages to a
// mailbox are subject to the node's partitions, pauses, and crashes.
func (e *Engine) NewMailbox(node, name string) *Mailbox {
	e.nextMailboxID++
	mb := &Mailbox{eng: e, id: e.nextMailboxID, node: node, name: name}
	if e.checkpointing {
		e.mailboxes = append(e.mailboxes, mb)
	}
	return mb
}

// Node returns the hosting node.
func (mb *Mailbox) Node() string { return mb.node }

// Name returns the mailbox name.
func (mb *Mailbox) Name() string { return mb.name }

// Len returns the number of queued (undelivered-to-a-waiter) messages.
// Systems use it to implement load probes and ad-hoc throttling.
func (mb *Mailbox) Len() int { return len(mb.queue) - mb.head }

func (mb *Mailbox) String() string { return fmt.Sprintf("%s/%s", mb.node, mb.name) }

// deliver enqueues the message and wakes one waiter. Runs in engine context.
func (mb *Mailbox) deliver(body interface{}) {
	mb.queue = append(mb.queue, body)
	for len(mb.waiters) > 0 {
		w := mb.waiters[0]
		mb.waiters = mb.waiters[1:]
		if w.done || w.killed || mb.eng.crashed[w.node] {
			continue
		}
		w.wakeNow()
		break
	}
}

// Send delivers body to mb after the network latency between the calling
// process's node and the mailbox's node. Sends never block. Messages are
// dropped silently when the link is partitioned or the destination node is
// crashed, exactly like a datagram network; paused destinations hold the
// message until resume.
func (p *Proc) Send(to *Mailbox, body interface{}) {
	p.SendAfter(0, to, body)
}

// SendAfter is Send with an extra artificial delay before the message
// enters the network. Deliveries are value events (evDeliver), not
// closures: a send allocates nothing beyond any boxing of body itself.
func (p *Proc) SendAfter(extra time.Duration, to *Mailbox, body interface{}) {
	if p.killed {
		panic(errKilled)
	}
	e := p.eng
	lat := e.latency(e.rng, p.node, to.node) + extra
	e.scheduleDeliver(e.now+lat, to, body, p.node)
}

// Recv dequeues the next message from mb, blocking up to timeout. A
// negative timeout blocks forever. The second result is false on timeout.
func (p *Proc) Recv(mb *Mailbox, timeout time.Duration) (interface{}, bool) {
	if p.killed {
		panic(errKilled)
	}
	if mb.Len() > 0 {
		return mb.pop(), true
	}
	deadline := p.eng.now + timeout
	for {
		mb.waiters = append(mb.waiters, p)
		p.block(timeout)
		if mb.Len() > 0 {
			mb.removeWaiter(p)
			return mb.pop(), true
		}
		if timeout >= 0 && p.eng.now >= deadline {
			mb.removeWaiter(p)
			return nil, false
		}
		// Spurious wake (message consumed by another pool worker);
		// re-arm with the remaining timeout.
		mb.removeWaiter(p)
		if timeout >= 0 {
			timeout = deadline - p.eng.now
		}
	}
}

func (mb *Mailbox) pop() interface{} {
	m := mb.queue[mb.head]
	mb.queue[mb.head] = nil // release the reference
	mb.head++
	switch {
	case mb.head == len(mb.queue):
		mb.queue = mb.queue[:0]
		mb.head = 0
	case mb.head >= 32 && mb.head*2 >= len(mb.queue):
		// Compact once the dead prefix dominates, so a never-draining
		// mailbox (retry storms) keeps memory O(live backlog) instead of
		// O(total messages delivered).
		n := copy(mb.queue, mb.queue[mb.head:])
		clear(mb.queue[n:])
		mb.queue = mb.queue[:n]
		mb.head = 0
	}
	return m
}

func (mb *Mailbox) removeWaiter(p *Proc) {
	for i, w := range mb.waiters {
		if w == p {
			mb.waiters = append(mb.waiters[:i], mb.waiters[i+1:]...)
			return
		}
	}
}

// Req is the conventional request envelope used by Call/Serve.
type Req struct {
	ReplyTo *Mailbox
	Body    interface{}
}

// Resp is the conventional response envelope used by Call/Serve.
type Resp struct {
	Body interface{}
	Err  error
}

// Call performs a synchronous RPC: it sends Req{ReplyTo, body} to the
// destination mailbox and waits up to timeout for a Resp. Timeouts return
// ErrTimeout -- the caller cannot distinguish a slow server from a dead
// one, which is the ambiguity cascading failures exploit.
func (p *Proc) Call(to *Mailbox, body interface{}, timeout time.Duration) (interface{}, error) {
	reply := p.eng.NewMailbox(p.node, "reply")
	p.Send(to, Req{ReplyTo: reply, Body: body})
	m, ok := p.Recv(reply, timeout)
	if !ok {
		return nil, ErrTimeout
	}
	resp, isResp := m.(Resp)
	if !isResp {
		return m, nil
	}
	return resp.Body, resp.Err
}

// Reply answers a Req received from Call.
func (p *Proc) Reply(req Req, body interface{}, err error) {
	if req.ReplyTo == nil {
		return
	}
	p.Send(req.ReplyTo, Resp{Body: body, Err: err})
}
