package sim

import (
	"math/rand"
	"testing"
)

// The engine hands Source to math/rand; the checkpoint layer depends on
// the Source64 fast path (no hidden Rand state feeding Int63n).
var _ rand.Source64 = (*Source)(nil)

func TestSourceDeterminismPerSeed(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40} {
		a, b := NewSource(seed), NewSource(seed)
		for i := 0; i < 1000; i++ {
			if av, bv := a.Uint64(), b.Uint64(); av != bv {
				t.Fatalf("seed %d: stream diverged at %d: %x vs %x", seed, i, av, bv)
			}
		}
	}
	// Nearby seeds must give distinct streams.
	a, b := NewSource(7), NewSource(8)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided on %d of 64 draws", same)
	}
}

func TestSourceSeedResets(t *testing.T) {
	s := NewSource(99)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(99)
	for i := range first {
		if v := s.Uint64(); v != first[i] {
			t.Fatalf("Seed did not reset: draw %d = %x, want %x", i, v, first[i])
		}
	}
}

func TestSourceCopyIndependence(t *testing.T) {
	orig := NewSource(1234)
	for i := 0; i < 100; i++ {
		orig.Uint64() // advance mid-stream
	}
	cp := orig.Clone()
	// The copy must continue the identical stream...
	want := make([]uint64, 200)
	for i := range want {
		want[i] = orig.Uint64()
	}
	// ...and advancing the original must not have perturbed the copy.
	for i := range want {
		if v := cp.Uint64(); v != want[i] {
			t.Fatalf("clone stream diverged at %d", i)
		}
	}
}

func TestSourceSnapshotRestore(t *testing.T) {
	s := NewSource(5)
	for i := 0; i < 37; i++ {
		s.Uint64()
	}
	st := s.Snapshot()
	want := make([]uint64, 64)
	for i := range want {
		want[i] = s.Uint64()
	}
	s.Restore(st)
	for i := range want {
		if v := s.Uint64(); v != want[i] {
			t.Fatalf("restored stream diverged at %d", i)
		}
	}
}

func TestSourceInt63Contract(t *testing.T) {
	s := NewSource(11)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
	// rand.Rand over the source must be deterministic per seed, including
	// the bounded-draw helpers the latency model uses.
	r1 := rand.New(NewSource(77))
	r2 := rand.New(NewSource(77))
	for i := 0; i < 1000; i++ {
		if r1.Int63n(1000003) != r2.Int63n(1000003) {
			t.Fatalf("rand.Rand streams diverged at %d", i)
		}
	}
}

func TestSourceGammaIsOdd(t *testing.T) {
	for _, seed := range []int64{0, 1, -5, 123456789, 1 << 62} {
		s := NewSource(seed)
		if s.gamma&1 == 0 {
			t.Fatalf("seed %d: gamma %x is even (Weyl sequence would lose full period)", seed, s.gamma)
		}
	}
}
